module inputtune

go 1.24
