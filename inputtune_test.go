// Facade-level test: the public API trains and deploys end to end on a
// real benchmark, exactly as the README shows.
package inputtune_test

import (
	"testing"

	"inputtune"
	"inputtune/internal/benchmarks/sortbench"
)

func TestFacadeEndToEnd(t *testing.T) {
	prog := sortbench.New()
	var train []inputtune.Input
	for _, l := range sortbench.GenerateMix(sortbench.MixOptions{Count: 60, Seed: 1, MaxSize: 512}) {
		train = append(train, l)
	}
	model := inputtune.Train(prog, train, inputtune.Options{
		K1: 6, Seed: 2, TunerPopulation: 8, TunerGenerations: 6, Parallel: true,
	})
	if model.Report.Benchmark != "sort" {
		t.Fatalf("report benchmark %q", model.Report.Benchmark)
	}
	fresh := sortbench.GenerateMix(sortbench.MixOptions{Count: 10, Seed: 99, MaxSize: 512})
	for _, l := range fresh {
		meter := inputtune.NewMeter()
		landmark, acc := model.Run(l, meter)
		if landmark < 0 || landmark >= len(model.Landmarks) {
			t.Fatalf("landmark %d out of range", landmark)
		}
		if acc != 1 {
			t.Fatalf("sort accuracy %v", acc)
		}
		if meter.Elapsed() <= 0 {
			t.Fatal("no work charged")
		}
	}
}

func TestFacadeMeasure(t *testing.T) {
	prog := sortbench.New()
	l := sortbench.GenerateMix(sortbench.MixOptions{Count: 1, Seed: 5, MaxSize: 256})[0]
	cfg := prog.Space().DefaultConfig()
	tm, acc := inputtune.Measure(prog, cfg, l)
	if tm <= 0 || acc != 1 {
		t.Fatalf("Measure = (%v, %v)", tm, acc)
	}
}

func TestFacadeSpaceAndFeatureSet(t *testing.T) {
	sp := inputtune.NewSpace()
	sp.AddSite("s", "a", "b")
	if sp.SiteIndex("s") != 0 {
		t.Fatal("facade space broken")
	}
	if _, err := inputtune.NewFeatureSet(); err == nil {
		t.Fatal("empty feature set accepted")
	}
}
