// Quickstart: train an input-adaptive sorting routine in ~40 lines.
//
// The Sort benchmark offers five algorithms behind one either…or choice
// site. We train the two-level learner on a mixed input battery, then
// deploy it on fresh inputs and show which algorithm the model picks for
// differently shaped lists.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"inputtune"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/rng"
)

func main() {
	prog := sortbench.New()

	// Training battery: 160 lists spanning sorted/random/duplicated shapes.
	var train []inputtune.Input
	for _, l := range sortbench.GenerateMix(sortbench.MixOptions{Count: 160, Seed: 1}) {
		train = append(train, l)
	}

	fmt.Println("training the two-level input-adaptive model...")
	model := inputtune.Train(prog, train, inputtune.Options{
		K1: 12, Seed: 7, Parallel: true,
	})
	rep := model.Report
	fmt.Printf("  %d landmark configurations, production classifier: %s\n",
		rep.K1, rep.Production)
	fmt.Printf("  features it may extract: %v\n\n", rep.SelectedFeatures)

	// Deploy on fresh inputs of very different character.
	fresh := []struct {
		name string
		list *sortbench.List
	}{
		{"sorted list", sortbench.GenSorted(1500, rng.New(100))},
		{"random list", sortbench.GenRandom(1500, rng.New(101))},
		{"few distinct", sortbench.GenFewDistinct(1500, rng.New(102))},
		{"registry extract", sortbench.GenRegistry(1500, rng.New(103))},
	}
	for _, f := range fresh {
		meter := inputtune.NewMeter()
		landmark, _ := model.Run(f.list, meter)
		cfg := model.Landmarks[landmark]
		alg := sortbench.AltNames[cfg.Decide(0, f.list.Size())]
		fmt.Printf("%-17s -> landmark %2d (top-level %s), %8.0f virtual time units\n",
			f.name, landmark, alg, meter.Elapsed())
	}
}
