// Adaptive sort on registry-style real-world data — the paper's sort1
// scenario (Central Contractor Registration FOIA extract, simulated per
// DESIGN.md substitution 2).
//
// The example trains on registry slices, then contrasts three deployment
// policies on held-out slices: the trained two-level model, the best
// single configuration (static oracle), and the per-input best landmark
// (dynamic oracle). It also prints the largest per-input wins, the
// heavy-tail phenomenon of the paper's Figure 6.
//
//	go run ./examples/adaptivesort
package main

import (
	"fmt"
	"sort"

	"inputtune"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/core"
)

func main() {
	prog := sortbench.New()

	mix := func(seed uint64, count int) []inputtune.Input {
		var out []inputtune.Input
		lists := sortbench.GenerateMix(sortbench.MixOptions{
			Count: count, Seed: seed, RealLike: true, MaxSize: 2048,
		})
		for _, l := range lists {
			out = append(out, l)
		}
		return out
	}
	train := mix(11, 200)
	test := mix(23, 200)

	fmt.Println("training on 200 registry slices...")
	model := inputtune.Train(prog, train, inputtune.Options{K1: 12, Seed: 3, Parallel: true})
	fmt.Printf("  production classifier: %s, features: %v\n\n",
		model.Report.Production, model.Report.SelectedFeatures)

	// Measure all landmarks on the test slices to build the comparison.
	testData := core.BuildDataset(prog, test, model, true)
	idx := core.AllRows(testData)
	so := core.StaticOracleIndex(prog, model.Train, core.AllRows(model.Train), 0.95)
	static := core.EvalStatic(prog, testData, idx, so)
	dyn := core.EvalDynamicOracle(prog, testData, idx)
	two := core.EvalTwoLevel(model, testData, idx)

	speedups := make([]float64, len(idx))
	sum2, sumD := 0.0, 0.0
	for i := range idx {
		speedups[i] = static.PerInputExec[i] / two.PerInputTotal[i]
		sum2 += speedups[i]
		sumD += static.PerInputExec[i] / dyn.PerInputExec[i]
	}
	fmt.Printf("mean per-slice speedup over the static oracle:\n")
	fmt.Printf("  two-level model  %5.2fx\n", sum2/float64(len(idx)))
	fmt.Printf("  dynamic oracle   %5.2fx (upper bound)\n\n", sumD/float64(len(idx)))

	sort.Sort(sort.Reverse(sort.Float64Slice(speedups)))
	fmt.Println("largest per-slice wins (the Figure 6 tail):")
	for i := 0; i < 5 && i < len(speedups); i++ {
		fmt.Printf("  #%d  %6.2fx\n", i+1, speedups[i])
	}
}
