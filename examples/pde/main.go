// Input-adaptive PDE solving — the paper's Poisson 2D scenario.
//
// The solver family spans a direct sine-transform solve (O(N³), exact),
// multigrid with tunable cycle shape (O(N²) per cycle), and pointwise
// smoothers (cheap per sweep, only viable when the right-hand side is
// high-frequency). Which solver reaches 7 decades of error reduction
// fastest depends on both the grid size and the spectral content of the
// input — exactly the kind of deep input feature the paper targets.
//
//	go run ./examples/pde
package main

import (
	"fmt"

	"inputtune"
	"inputtune/internal/benchmarks/poisson2d"
	"inputtune/internal/rng"
)

func main() {
	prog := poisson2d.New()

	var train []inputtune.Input
	for _, p := range poisson2d.GenerateMix(poisson2d.MixOptions{Count: 120, Seed: 13}) {
		train = append(train, p)
	}

	fmt.Println("training on 120 Poisson instances (N in {31, 63, 127})...")
	model := inputtune.Train(prog, train, inputtune.Options{K1: 10, Seed: 21, Parallel: true})
	fmt.Printf("  production classifier: %s, features: %v\n\n",
		model.Report.Production, model.Report.SelectedFeatures)

	r := rng.New(31)
	cases := []struct {
		name string
		prob *poisson2d.Problem
	}{
		{"smooth RHS, N=31", poisson2d.GenSmooth(31, r)},
		{"smooth RHS, N=63", poisson2d.GenSmooth(63, r)},
		{"smooth RHS, N=127", poisson2d.GenSmooth(127, r)},
		{"high-freq RHS, N=63", poisson2d.GenHighFreq(63, r)},
		{"point sources, N=63", poisson2d.GenPointSources(63, r)},
		{"sparse RHS, N=127", poisson2d.GenSparse(127, r)},
	}
	fmt.Println("deployment decisions (accuracy = decades of error reduction):")
	for _, c := range cases {
		meter := inputtune.NewMeter()
		landmark, acc := model.Run(c.prob, meter)
		solver := poisson2d.SolverNames[model.Landmarks[landmark].Decide(0, c.prob.Size())]
		fmt.Printf("  %-20s -> %-12s %5.1f decades, %10.0f units\n",
			c.name, solver, acc, meter.Elapsed())
	}
}
