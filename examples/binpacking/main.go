// Variable-accuracy bin packing — the paper's dual-objective scenario.
//
// Thirteen packing heuristics trade speed against packing density. The
// program's accuracy metric is the mean occupied bin fraction with
// threshold H1 = 0.95, and the learner must keep the satisfaction rate
// (fraction of inputs meeting H1) at or above H2 = 95% while minimising
// time. This example shows how the chosen heuristic differs between item
// distributions, and what each choice costs.
//
//	go run ./examples/binpacking
package main

import (
	"fmt"

	"inputtune"
	"inputtune/internal/benchmarks/binpack"
	"inputtune/internal/cost"
	"inputtune/internal/rng"
)

func main() {
	prog := binpack.New()

	var train []inputtune.Input
	for _, it := range binpack.GenerateMix(binpack.MixOptions{Count: 200, Seed: 5}) {
		train = append(train, it)
	}

	fmt.Println("training with accuracy threshold H1=0.95, satisfaction H2=95%...")
	model := inputtune.Train(prog, train, inputtune.Options{K1: 12, Seed: 9, Parallel: true})
	fmt.Printf("  production classifier: %s\n\n", model.Report.Production)

	r := rng.New(77)
	cases := []struct {
		name  string
		items *binpack.Items
	}{
		{"tiny items (easy)", binpack.GenTiny(2000, r)},
		{"uniform (0,0.6)", binpack.GenUniform(400, r)},
		{"complement pairs", binpack.GenComplementPairs(400, r)},
		{"triplets + dust", binpack.GenTriplets(400, r)},
		{"near-half (unpackable)", binpack.GenNearHalf(400, r)},
	}
	fmt.Println("deployment decisions on fresh instances:")
	for _, c := range cases {
		meter := inputtune.NewMeter()
		landmark, acc := model.Run(c.items, meter)
		alg := binpack.AlgNames[model.Landmarks[landmark].Decide(0, c.items.Size())]
		status := "meets H1"
		if acc < prog.AccuracyThreshold() {
			status = "below H1"
		}
		fmt.Printf("  %-24s -> %-26s occupancy %.3f (%s), %7.0f units\n",
			c.name, alg, acc, status, meter.Elapsed())
	}

	// Contrast: what the cheapest and densest heuristics would have done
	// on the uniform instance.
	fmt.Println("\nwhy adaptation matters on uniform items:")
	items := cases[1].items
	for _, alg := range []int{binpack.NextFit, binpack.BestFitDecreasing} {
		m := cost.NewMeter()
		occ := binpack.Occupancy(binpack.Pack(alg, items.Sizes, m))
		fmt.Printf("  %-26s occupancy %.3f, %7.0f units\n", binpack.AlgNames[alg], occ, m.Elapsed())
	}
}
