// Model persistence: train once, save the model, reload it in a fresh
// process, and verify the reloaded model makes identical decisions. At the
// paper's scale training takes hours (autotuning 100 landmarks), so the
// trained artifact — landmark configurations plus the production
// classifier — is the thing a deployment actually ships.
//
//	go run ./examples/persistence
package main

import (
	"bytes"
	"fmt"
	"log"

	"inputtune"
	"inputtune/internal/benchmarks/binpack"
)

func main() {
	prog := binpack.New()
	var train []inputtune.Input
	for _, it := range binpack.GenerateMix(binpack.MixOptions{Count: 160, Seed: 17}) {
		train = append(train, it)
	}

	fmt.Println("training...")
	model := inputtune.Train(prog, train, inputtune.Options{K1: 10, Seed: 29, Parallel: true})
	fmt.Printf("  production classifier: %s\n", model.Report.Production)

	// Save to an in-memory buffer (a file works the same way; see
	// `inputtuner -save model.json`).
	var buf bytes.Buffer
	if err := inputtune.SaveModel(model, &buf); err != nil {
		log.Fatalf("save: %v", err)
	}
	fmt.Printf("  serialised model: %d bytes of JSON\n\n", buf.Len())

	// A "fresh process" constructs its own Program and loads the artifact.
	freshProg := binpack.New()
	loaded, err := inputtune.LoadModel(freshProg, &buf)
	if err != nil {
		log.Fatalf("load: %v", err)
	}

	// Identical decisions on fresh inputs.
	test := binpack.GenerateMix(binpack.MixOptions{Count: 30, Seed: 99})
	agree := 0
	for _, it := range test {
		a := model.Classify(it, nil)
		b := loaded.Classify(it, nil)
		if a == b {
			agree++
		}
	}
	fmt.Printf("reloaded model agrees with the original on %d/%d fresh inputs\n", agree, len(test))
	if agree != len(test) {
		log.Fatal("persistence round trip changed decisions")
	}

	meter := inputtune.NewMeter()
	landmark, acc := loaded.Run(test[0], meter)
	fmt.Printf("deployment via the loaded model: landmark %d, occupancy %.3f, %0.f units\n",
		landmark, acc, meter.Elapsed())
}
