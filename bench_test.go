// Package-level benchmarks regenerating the paper's artifacts under
// `go test -bench`. One benchmark per table/figure (DESIGN.md experiment
// index E1-E8), at a reduced scale so the full suite stays minutes-fast:
//
//	BenchmarkTable1_*      one Table 1 row per benchmark program (E1, E8)
//	BenchmarkFig6_*        per-input speedup distribution (E2)
//	BenchmarkFig7Model     theoretical-model curves (E3, E4)
//	BenchmarkFig8_*        speedup vs #landmarks sweep (E5)
//	BenchmarkAblation_*    K-means vs random landmark selection (E7)
//
// The measured op/ns numbers are secondary; the point is that each bench
// reproduces its artifact end to end and reports headline metrics via
// b.ReportMetric (speedup_x, satisfaction_pct).
package inputtune_test

import (
	"testing"

	"inputtune/internal/autotuner"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/exp"
	"inputtune/internal/model"
)

// benchScale is smaller than exp.DefaultScale so -bench=. completes
// quickly; use cmd/experiments for full-scale artifacts.
func benchScale() exp.Scale {
	return exp.Scale{
		TrainInputs: 96, TestInputs: 96, K1: 8,
		TunerPop: 10, TunerGens: 8, Seed: 42, Parallel: true,
	}
}

func benchTable1(b *testing.B, name string) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		row := exp.RunCase(exp.BuildCase(name, sc), sc, nil)
		b.ReportMetric(row.TwoLevelFX, "two_level_speedup_x")
		b.ReportMetric(row.DynamicOracle, "dynamic_oracle_x")
		b.ReportMetric(row.OneLevelFX, "one_level_speedup_x")
		b.ReportMetric(100*row.TwoLevelAccuracy, "two_level_satisfaction_pct")
		// Same scope as BENCH_1.json's cache_hit_rate: training + test eval.
		b.ReportMetric(100*row.Report.Engine.Add(row.EvalEngine).HitRate(), "cache_hit_pct")
		// The whole Level-2 span — relabeling, cost matrices, classifier
		// zoo, production selection — the phase the presorted-feature
		// backbone targets (BENCH_2.json trajectory).
		b.ReportMetric(1000*row.Report.Phases.Get("classifiers"), "classifier_phase_ms")
	}
}

// BenchmarkTable1_Sort1_NoCache runs Sort1 through the cache-disabled
// escape hatch — the A/B baseline for the engine's measurement cache.
// Results are bit-identical to the cached run; only wall-clock differs.
func BenchmarkTable1_Sort1_NoCache(b *testing.B) {
	sc := benchScale()
	sc.DisableCache = true
	for i := 0; i < b.N; i++ {
		row := exp.RunCase(exp.BuildCase("sort1", sc), sc, nil)
		b.ReportMetric(row.TwoLevelFX, "two_level_speedup_x")
	}
}

func BenchmarkTable1_Sort1(b *testing.B)       { benchTable1(b, "sort1") }
func BenchmarkTable1_Sort2(b *testing.B)       { benchTable1(b, "sort2") }
func BenchmarkTable1_Clustering1(b *testing.B) { benchTable1(b, "clustering1") }
func BenchmarkTable1_Clustering2(b *testing.B) { benchTable1(b, "clustering2") }
func BenchmarkTable1_Binpacking(b *testing.B)  { benchTable1(b, "binpacking") }
func BenchmarkTable1_SVD(b *testing.B)         { benchTable1(b, "svd") }
func BenchmarkTable1_Poisson2D(b *testing.B)   { benchTable1(b, "poisson2d") }
func BenchmarkTable1_Helmholtz3D(b *testing.B) { benchTable1(b, "helmholtz3d") }

func benchFig6(b *testing.B, name string) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		row := exp.RunCase(exp.BuildCase(name, sc), sc, nil)
		series := exp.Fig6Series(row)
		b.ReportMetric(series[len(series)-1], "max_per_input_speedup_x")
		b.ReportMetric(series[len(series)/2], "median_per_input_speedup_x")
	}
}

func BenchmarkFig6_Sort2(b *testing.B)      { benchFig6(b, "sort2") }
func BenchmarkFig6_Binpacking(b *testing.B) { benchFig6(b, "binpacking") }

func BenchmarkFig7Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, k := range []int{2, 3, 4, 5, 6, 7, 8, 9} {
			model.Fig7aCurve(k, 99)
		}
		_, fr := model.Fig7bCurve(100)
		b.ReportMetric(fr[9], "fraction_at_10_landmarks")
		b.ReportMetric(fr[99], "fraction_at_100_landmarks")
	}
}

func benchFig8(b *testing.B, name string) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		row := exp.RunCase(exp.BuildCase(name, sc), sc, nil)
		pts := exp.Fig8Sweep(row.Model.Program, row.TestData, row.StaticPerInput,
			exp.DefaultFig8Sizes(sc.K1), 10, sc.Seed+5)
		b.ReportMetric(pts[0].Median, "median_speedup_1_landmark_x")
		b.ReportMetric(pts[len(pts)-1].Median, "median_speedup_all_landmarks_x")
	}
}

func BenchmarkFig8_Sort2(b *testing.B)       { benchFig8(b, "sort2") }
func BenchmarkFig8_Clustering2(b *testing.B) { benchFig8(b, "clustering2") }

func benchAblation(b *testing.B, name string) {
	b.Helper()
	sc := benchScale()
	sc.K1 = 5 // the paper quantifies the gap at 5 landmarks
	for i := 0; i < b.N; i++ {
		res := exp.AblationLandmarks(exp.BuildCase(name, sc), sc, nil)
		b.ReportMetric(res.KmeansSpeedup, "kmeans_dynamic_oracle_x")
		b.ReportMetric(res.RandomSpeedup, "random_dynamic_oracle_x")
	}
}

func BenchmarkAblation_Sort2(b *testing.B)      { benchAblation(b, "sort2") }
func BenchmarkAblation_Binpacking(b *testing.B) { benchAblation(b, "binpacking") }

func BenchmarkAblationTuneSamples_Binpacking(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res := exp.AblationTuneSamples(exp.BuildCase("binpacking", sc), sc, []int{1, 3}, nil)
		b.ReportMetric(100*res[0].Satisfaction, "satisfaction_1_sample_pct")
		b.ReportMetric(100*res[1].Satisfaction, "satisfaction_3_samples_pct")
	}
}

// BenchmarkTunerStrategies compares the evolutionary autotuner against
// random search and hill climbing at an equal evaluation budget on one
// landmark-tuning problem — the ablation behind the paper's reliance on
// structured search.
func BenchmarkTunerStrategies(b *testing.B) {
	prog := sortbench.New()
	in := sortbench.GenerateMix(sortbench.MixOptions{Count: 1, Seed: 9, MaxSize: 1024})[0]
	eval := func(cfg *choice.Config) autotuner.Result {
		m := cost.NewMeter()
		prog.Run(cfg, in, m)
		return autotuner.Result{Time: m.Elapsed(), Accuracy: 1}
	}
	opts := autotuner.Options{Space: prog.Space(), Eval: eval, Seed: 11, Population: 16, Generations: 14}
	const budget = 16 * 15
	for i := 0; i < b.N; i++ {
		evo, _ := autotuner.Tune(opts)
		rnd, _ := autotuner.RandomSearch(opts, budget)
		hill, _ := autotuner.HillClimb(opts, budget, 20)
		b.ReportMetric(eval(evo).Time, "evolution_time_units")
		b.ReportMetric(eval(rnd).Time, "random_time_units")
		b.ReportMetric(eval(hill).Time, "hillclimb_time_units")
	}
}
