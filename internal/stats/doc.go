// Package stats provides the descriptive statistics and normalisation
// helpers used by the feature pipeline and the learning framework: means,
// medians and quantiles, geometric means (the tuner's scale-free time
// objective), z-score fitting and transformation (ZScorer, applied to
// feature vectors before Level-1 clustering so no single feature's scale
// dominates the distance metric), and squared-Euclidean distance (the
// k-means and cluster-sampling metric).
//
// Everything is allocation-light, dependency-free and deterministic —
// these helpers sit inside the training hot loops, so they must never
// introduce ordering or precision surprises of their own.
package stats
