package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest element of xs. It panics on an
// empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Median returns the median of xs (average of the two middle elements for
// even lengths). It panics on an empty slice.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile of xs using linear interpolation
// between closest ranks, with q clamped to [0, 1]. It panics on an empty
// slice. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: QuantileSorted of empty slice")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Summary bundles the five-number summary plus mean of a sample.
type Summary struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Summarize computes a Summary of xs. It panics on an empty slice.
func Summarize(xs []float64) Summary {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		Min:    sorted[0],
		Q1:     QuantileSorted(sorted, 0.25),
		Median: QuantileSorted(sorted, 0.5),
		Q3:     QuantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
		N:      len(sorted),
	}
}

// ZScorer normalises feature columns to zero mean and unit variance, with
// degenerate (constant) columns mapped to zero. The same transform learned
// on training data is applied to test data.
type ZScorer struct {
	Means  []float64
	Stds   []float64
	fitted bool
}

// NewZScorer reconstructs a scorer from stored means and standard
// deviations (model persistence).
func NewZScorer(means, stds []float64) *ZScorer {
	if len(means) != len(stds) {
		panic("stats: means/stds length mismatch")
	}
	return &ZScorer{Means: means, Stds: stds, fitted: true}
}

// FitZScore learns per-column means and standard deviations from rows.
// Every row must have the same length.
func FitZScore(rows [][]float64) *ZScorer {
	if len(rows) == 0 {
		return &ZScorer{fitted: true}
	}
	dim := len(rows[0])
	z := &ZScorer{
		Means:  make([]float64, dim),
		Stds:   make([]float64, dim),
		fitted: true,
	}
	col := make([]float64, len(rows))
	for j := 0; j < dim; j++ {
		for i, row := range rows {
			if len(row) != dim {
				panic("stats: ragged feature matrix")
			}
			col[i] = row[j]
		}
		z.Means[j] = Mean(col)
		z.Stds[j] = StdDev(col)
	}
	return z
}

// Transform returns a normalised copy of row.
func (z *ZScorer) Transform(row []float64) []float64 {
	if !z.fitted {
		panic("stats: ZScorer not fitted")
	}
	out := make([]float64, len(row))
	for j, x := range row {
		if j < len(z.Stds) && z.Stds[j] > 1e-12 {
			out[j] = (x - z.Means[j]) / z.Stds[j]
		} else {
			out[j] = 0
		}
	}
	return out
}

// TransformAll normalises every row.
func (z *ZScorer) TransformAll(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, row := range rows {
		out[i] = z.Transform(row)
	}
	return out
}

// Euclidean returns the L2 distance between a and b, which must have equal
// length.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: dimension mismatch")
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// SquaredEuclidean returns the squared L2 distance between a and b.
func SquaredEuclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: dimension mismatch")
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Pearson returns the Pearson correlation coefficient between xs and ys,
// or 0 if either side is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: dimension mismatch")
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx <= 0 || syy <= 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram counts xs into n equal-width bins spanning [lo, hi]. Values
// outside the range are clamped into the terminal bins.
func Histogram(xs []float64, n int, lo, hi float64) []int {
	if n <= 0 {
		panic("stats: Histogram with non-positive bin count")
	}
	bins := make([]int, n)
	if hi <= lo {
		bins[0] = len(xs)
		return bins
	}
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}

// ArgMin returns the index of the smallest element, breaking ties toward
// the lowest index. It panics on an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMin of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element, breaking ties toward the
// lowest index. It panics on an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMax of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
