package stats

import (
	"math"
	"testing"
	"testing/quick"

	"inputtune/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", m)
	}
	if v := Variance(xs); !almostEqual(v, 4, 1e-12) {
		t.Fatalf("variance = %v, want 4", v)
	}
	if s := StdDev(xs); !almostEqual(s, 2, 1e-12) {
		t.Fatalf("stddev = %v, want 2", s)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("variance of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Fatalf("MinMax = (%v, %v), want (-1, 5)", lo, hi)
	}
}

func TestMedianQuantile(t *testing.T) {
	if m := Median([]float64{1, 2, 3, 4}); !almostEqual(m, 2.5, 1e-12) {
		t.Fatalf("median = %v, want 2.5", m)
	}
	if m := Median([]float64{5, 1, 3}); !almostEqual(m, 3, 1e-12) {
		t.Fatalf("median = %v, want 3", m)
	}
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := Quantile(xs, 0.25); !almostEqual(q, 2.5, 1e-12) {
		t.Fatalf("q25 = %v, want 2.5", q)
	}
	if q := Quantile(xs, 0); q != 0 {
		t.Fatalf("q0 = %v, want 0", q)
	}
	if q := Quantile(xs, 1); q != 10 {
		t.Fatalf("q1 = %v, want 10", q)
	}
	// Clamping out-of-range q.
	if q := Quantile(xs, 1.5); q != 10 {
		t.Fatalf("clamped q = %v, want 10", q)
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := rng.New(1)
	check := func(seed uint32) bool {
		rr := rng.New(uint64(seed) + r.Uint64()%17)
		n := rr.IntRange(1, 50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Norm(0, 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); !almostEqual(g, 4, 1e-9) {
		t.Fatalf("geomean = %v, want 4", g)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.N != 5 {
		t.Fatalf("bad summary %+v", s)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Fatalf("summary mean %v", s.Mean)
	}
}

func TestZScore(t *testing.T) {
	rows := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	z := FitZScore(rows)
	out := z.TransformAll(rows)
	for j := 0; j < 2; j++ {
		col := []float64{out[0][j], out[1][j], out[2][j]}
		if !almostEqual(Mean(col), 0, 1e-9) {
			t.Fatalf("column %d mean %v not 0", j, Mean(col))
		}
		if !almostEqual(StdDev(col), 1, 1e-9) {
			t.Fatalf("column %d stddev %v not 1", j, StdDev(col))
		}
	}
}

func TestZScoreConstantColumn(t *testing.T) {
	rows := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	z := FitZScore(rows)
	out := z.Transform([]float64{5, 2})
	if out[0] != 0 {
		t.Fatalf("constant column should map to 0, got %v", out[0])
	}
}

func TestEuclidean(t *testing.T) {
	d := Euclidean([]float64{0, 0}, []float64{3, 4})
	if !almostEqual(d, 5, 1e-12) {
		t.Fatalf("distance = %v, want 5", d)
	}
	if sq := SquaredEuclidean([]float64{0, 0}, []float64{3, 4}); !almostEqual(sq, 25, 1e-12) {
		t.Fatalf("squared distance = %v, want 25", sq)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if p := Pearson(xs, ys); !almostEqual(p, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", p)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if p := Pearson(xs, neg); !almostEqual(p, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", p)
	}
	if p := Pearson(xs, []float64{3, 3, 3, 3, 3}); p != 0 {
		t.Fatalf("constant series correlation = %v, want 0", p)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 0.1, 0.5, 0.9, 1.0, -5, 10}, 2, 0, 1)
	if bins[0]+bins[1] != 7 {
		t.Fatalf("histogram lost values: %v", bins)
	}
	// 0, 0.1, -5 (clamped) fall in bin 0; 0.5, 0.9, 1.0 and 10 (clamped) in bin 1.
	if bins[0] != 3 || bins[1] != 4 {
		t.Fatalf("histogram = %v, want [3 4]", bins)
	}
}

func TestArgMinArgMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if i := ArgMin(xs); i != 1 {
		t.Fatalf("ArgMin = %d, want 1 (first tie)", i)
	}
	if i := ArgMax(xs); i != 4 {
		t.Fatalf("ArgMax = %d, want 4", i)
	}
}

func TestZScoreRoundTripProperty(t *testing.T) {
	r := rng.New(99)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed)*2654435761 + r.Uint64()%13)
		n, d := rr.IntRange(2, 30), rr.IntRange(1, 8)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rr.Norm(float64(j*10), 3)
			}
		}
		z := FitZScore(rows)
		for _, row := range rows {
			tr := z.Transform(row)
			for j, v := range tr {
				// Invert the transform and compare.
				back := v*z.Stds[j] + z.Means[j]
				if z.Stds[j] > 1e-12 && math.Abs(back-row[j]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
