// Package model implements the paper's theoretical analysis of
// diminishing returns from additional landmark configurations (Section
// 4.3): if region i of the input space has size p_i and speedup s_i under
// its dominant configuration, and k landmarks are sampled uniformly at
// random, the expected lost speedup is
//
//	L = Σ_i (1 - p_i)^k · p_i · s_i / Σ_i s_i ,
//
// maximised over region sizes at the worst case p* = 1/(k+1).
//
// Fig7aCurve and Fig7bCurve regenerate the two panels of Figure 7: the
// worst-case lost-speedup curve as k grows, and the fraction of the
// achievable speedup captured by k landmarks. The experiment harness
// (internal/exp) plots them next to the measured Figure 8 sweep, closing
// the loop between the model's prediction — a handful of landmarks
// suffices — and the empirical K1 choice the training options default to.
package model
