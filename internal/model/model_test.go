package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLossZeroAtExtremes(t *testing.T) {
	for _, k := range []int{1, 5, 20} {
		if l := LossForUniformRegion(0, k); l != 0 {
			t.Fatalf("L(0, %d) = %v", k, l)
		}
		if l := LossForUniformRegion(1, k); l != 0 {
			t.Fatalf("L(1, %d) = %v", k, l)
		}
	}
}

// The paper derives p* = 1/(k+1) from dL/dp = 0; verify numerically that
// the analytic worst case maximises the loss.
func TestWorstCaseMaximisesLoss(t *testing.T) {
	for k := 1; k <= 30; k++ {
		pStar := WorstCaseRegionSize(k)
		lStar := LossForUniformRegion(pStar, k)
		for p := 0.01; p < 1; p += 0.01 {
			if LossForUniformRegion(p, k) > lStar+1e-12 {
				t.Fatalf("k=%d: loss at p=%v exceeds analytic worst case", k, p)
			}
		}
	}
}

func TestDiminishingReturns(t *testing.T) {
	// Fraction of full speedup must increase monotonically in k and
	// approach 1.
	_, fr := Fig7bCurve(100)
	for i := 1; i < len(fr); i++ {
		if fr[i] < fr[i-1] {
			t.Fatalf("fraction not monotone at k=%d: %v -> %v", i+1, fr[i-1], fr[i])
		}
	}
	if fr[0] > 0.8 {
		t.Fatalf("one landmark should lose substantial speedup, fraction %v", fr[0])
	}
	if fr[99] < 0.99 {
		t.Fatalf("100 landmarks should capture nearly all speedup, fraction %v", fr[99])
	}
	// Diminishing increments: the gain from k=50→51 is below k=1→2.
	if fr[50]-fr[49] >= fr[1]-fr[0] {
		t.Fatal("increments not diminishing")
	}
}

func TestLostSpeedupWeightsBySpeedup(t *testing.T) {
	// A high-speedup region contributes more loss than a low-speedup one
	// of the same size.
	hi := []Region{{P: 0.1, S: 10}, {P: 0.9, S: 1}}
	lo := []Region{{P: 0.1, S: 1}, {P: 0.9, S: 1}}
	if LostSpeedup(hi, 3) <= LostSpeedup(lo, 3) {
		t.Fatal("speedup weighting missing")
	}
	if LostSpeedup(nil, 3) != 0 {
		t.Fatal("empty region set should lose nothing")
	}
}

func TestLostSpeedupDecreasesWithK(t *testing.T) {
	regions := []Region{{P: 0.2, S: 3}, {P: 0.3, S: 2}, {P: 0.5, S: 1}}
	check := func(k8 uint8) bool {
		k := int(k8%50) + 1
		return LostSpeedup(regions, k+1) <= LostSpeedup(regions, k)+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCurveShapes(t *testing.T) {
	ps, losses := Fig7aCurve(4, 99)
	if len(ps) != 99 || len(losses) != 99 {
		t.Fatal("curve size wrong")
	}
	// Peak should be near p* = 0.2.
	peak := 0
	for i, l := range losses {
		if l > losses[peak] {
			peak = i
		}
	}
	if math.Abs(ps[peak]-0.2) > 0.02 {
		t.Fatalf("Fig7a peak at %v, want ~0.2", ps[peak])
	}
	ks, fr := Fig7bCurve(10)
	if ks[0] != 1 || ks[9] != 10 || len(fr) != 10 {
		t.Fatal("Fig7b axes wrong")
	}
}

func TestFractionFormula(t *testing.T) {
	// For k=1: p* = 1/2, L = (1/2)^1 * 1/2 = 1/4, fraction = 3/4.
	if f := FractionOfFullSpeedup(1); math.Abs(f-0.75) > 1e-12 {
		t.Fatalf("FractionOfFullSpeedup(1) = %v, want 0.75", f)
	}
}
