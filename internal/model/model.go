package model

import "math"

// Region is one dominated region of the input space.
type Region struct {
	P float64 // fraction of the input space
	S float64 // speedup when its dominant configuration is used
}

// LostSpeedup evaluates L for a set of regions and k sampled landmarks.
func LostSpeedup(regions []Region, k int) float64 {
	var num, den float64
	for _, r := range regions {
		num += math.Pow(1-r.P, float64(k)) * r.P * r.S
		den += r.S
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// LossForUniformRegion evaluates the single-region integrand
// (1-p)^k · p — the curve family of Figure 7a (all s_i equal).
func LossForUniformRegion(p float64, k int) float64 {
	return math.Pow(1-p, float64(k)) * p
}

// WorstCaseRegionSize returns the region size maximising the expected loss
// for k landmarks: p* = 1/(k+1), obtained from dL/dp = 0.
func WorstCaseRegionSize(k int) float64 { return 1 / float64(k+1) }

// FractionOfFullSpeedup returns the model's prediction for Figure 7b: the
// fraction of the ideal speedup retained when k landmarks are sampled and
// the region size is adversarially set to the worst case for k landmarks.
func FractionOfFullSpeedup(k int) float64 {
	p := WorstCaseRegionSize(k)
	return 1 - LossForUniformRegion(p, k)
}

// Fig7aCurve samples the Figure 7a loss curve for a given landmark count
// over points region sizes in (0, 1).
func Fig7aCurve(k, points int) (ps, losses []float64) {
	ps = make([]float64, points)
	losses = make([]float64, points)
	for i := 0; i < points; i++ {
		p := float64(i+1) / float64(points+1)
		ps[i] = p
		losses[i] = LossForUniformRegion(p, k)
	}
	return ps, losses
}

// Fig7bCurve samples the Figure 7b fraction-of-full-speedup curve for
// k = 1..maxK.
func Fig7bCurve(maxK int) (ks []int, fractions []float64) {
	ks = make([]int, maxK)
	fractions = make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		ks[k-1] = k
		fractions[k-1] = FractionOfFullSpeedup(k)
	}
	return ks, fractions
}
