package engine

import "sync"

// Measurement is one deterministic evaluation of a configuration on an
// input: virtual execution time plus achieved accuracy.
type Measurement struct {
	Time     float64
	Accuracy float64
}

// Key identifies one measurement: a canonical configuration fingerprint
// (choice.Config.Key) and the index of the input within the set the cache
// was built for. A Cache is scoped to ONE input set — train and test sets
// get separate caches, since their indices name different inputs.
type Key struct {
	Config string
	Input  int
}

// DefaultCacheCapacity bounds a cache built with capacity <= 0. At ~100
// bytes per entry this caps memory in the tens of MB while comfortably
// holding every distinct (config, input) pair of a full training run.
const DefaultCacheCapacity = 1 << 19

// Cache is a concurrency-safe memoized measurement store. Concurrent
// requests for one key collapse into a single computation; later requests
// block until the first completes and then share its result. The nil
// *Cache is valid and memoizes nothing (the cache-disabled escape hatch).
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry
	fifo    []Key // insertion order, for eviction
	cap     int

	hits, misses, evictions uint64
}

type cacheEntry struct {
	once sync.Once
	m    Measurement
}

// NewCache returns a cache bounded at capacity entries (<= 0 selects
// DefaultCacheCapacity).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{entries: make(map[Key]*cacheEntry), cap: capacity}
}

// Measure returns the memoized measurement for key, invoking compute at
// most once per cached key. With a nil receiver it simply runs compute.
// compute must be deterministic for the key, so a hit is bit-identical to
// a recomputation.
func (c *Cache) Measure(key Key, compute func() Measurement) Measurement {
	if c == nil {
		return compute()
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &cacheEntry{}
		c.entries[key] = e
		c.fifo = append(c.fifo, key)
		// cap >= 1 and fifo mirrors entries, so when the map overflows the
		// oldest entry is never the one just inserted.
		for len(c.entries) > c.cap {
			victim := c.fifo[0]
			c.fifo = c.fifo[1:]
			delete(c.entries, victim)
			c.evictions++
		}
	}
	c.mu.Unlock()
	// An evicted entry stays reachable through e for goroutines already
	// computing it; eviction only forgets it for future lookups.
	e.once.Do(func() { e.m = compute() })
	return e.m
}

// CacheStats is a point-in-time snapshot of cache effectiveness, surfaced
// in core.Report and the bench runner.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the counters. The nil cache reports zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.entries)}
}

// Add merges another snapshot into s (for aggregating train + test caches).
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
		Entries:   s.Entries + o.Entries,
	}
}
