package engine

import (
	"fmt"
	"sync"
	"testing"
)

func TestMemoLongestPrefix(t *testing.T) {
	var m Memo // zero value must be usable
	if _, _, ok := m.LongestPrefix("a|", 10); ok {
		t.Fatal("empty memo returned a prefix")
	}
	m.PutStep("a|", 4, "four")
	m.PutStep("a|", 7, "seven")
	m.PutStep("b|", 9, "other-stem")

	v, k, ok := m.LongestPrefix("a|", 10)
	if !ok || k != 7 || v.(string) != "seven" {
		t.Fatalf("got (%v, %d, %v), want (seven, 7, true)", v, k, ok)
	}
	v, k, ok = m.LongestPrefix("a|", 6)
	if !ok || k != 4 || v.(string) != "four" {
		t.Fatalf("got (%v, %d, %v), want (four, 4, true)", v, k, ok)
	}
	if _, _, ok := m.LongestPrefix("a|", 3); ok {
		t.Fatal("found prefix below the smallest stored step")
	}
	// Exact-step hit.
	v, k, ok = m.LongestPrefix("a|", 4)
	if !ok || k != 4 || v.(string) != "four" {
		t.Fatalf("exact hit got (%v, %d, %v)", v, k, ok)
	}

	st := m.Stats()
	if st.Hits != 3 || st.Misses != 2 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 3 hits, 2 misses, 3 entries", st)
	}
	if st.HitRate() != 0.6 {
		t.Fatalf("hit rate %v", st.HitRate())
	}
}

func TestMemoStemIsolation(t *testing.T) {
	var m Memo
	m.PutStep("x|", 5, 1)
	if _, _, ok := m.LongestPrefix("y|", 9); ok {
		t.Fatal("stems leaked into each other")
	}
}

func TestMemoDuplicatePutKeepsFirst(t *testing.T) {
	var m Memo
	m.PutStep("s|", 2, "first")
	m.PutStep("s|", 2, "second")
	v, _, _ := m.LongestPrefix("s|", 2)
	if v.(string) != "first" {
		t.Fatalf("duplicate put replaced entry: %v", v)
	}
	if st := m.Stats(); st.Entries != 1 {
		t.Fatalf("duplicate put grew the memo: %+v", st)
	}
}

func TestMemoEviction(t *testing.T) {
	m := NewMemo(3)
	for i := 1; i <= 5; i++ {
		m.PutStep(fmt.Sprintf("k%d|", i), 1, i)
	}
	st := m.Stats()
	if st.Entries != 3 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want 3 entries, 2 evictions", st)
	}
	if _, _, ok := m.LongestPrefix("k1|", 1); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, _, ok := m.LongestPrefix("k5|", 1); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestMemoNilReceiver(t *testing.T) {
	var m *Memo
	m.PutStep("a|", 1, "x")
	if _, _, ok := m.LongestPrefix("a|", 1); ok {
		t.Fatal("nil memo stored something")
	}
	if st := m.Stats(); st != (MemoStats{}) {
		t.Fatalf("nil memo stats %+v", st)
	}
}

func TestMemoConcurrent(t *testing.T) {
	var m Memo
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stem := fmt.Sprintf("g%d|", g%2)
			for i := 1; i <= 200; i++ {
				if v, k, ok := m.LongestPrefix(stem, i); ok {
					if k > i || v.(int) != k {
						t.Errorf("bad prefix (%v, %d) for steps %d", v, k, i)
						return
					}
				}
				m.PutStep(stem, i, i)
			}
		}(g)
	}
	wg.Wait()
}
