// Package engine is the shared evaluation engine behind the training
// pipeline: a bounded worker pool and a memoized measurement cache that the
// evolutionary autotuner, the landmark measurement pass, and the classifier
// zoo all share.
//
// # Worker pool
//
// Pool bounds the TOTAL parallelism of the pipeline at GOMAXPROCS
// executors, however deeply parallel sections nest. Earlier code spawned an
// independent GOMAXPROCS-wide worker set at every parallel site, so the
// outer per-landmark loop and the inner GA-generation loop either
// oversubscribed the machine (both parallel) or left it idle (inner loop
// serial, as train.go used to run it). Pool.ForEach instead hands out
// helper slots from one shared semaphore and always lets the calling
// goroutine work the loop itself: when the pool is saturated, a nested
// ForEach simply degrades to an inline serial loop on the worker that
// called it. Results are written by index, so schedules never change
// results.
//
// # Measurement cache
//
// Cache memoizes configuration evaluations keyed by (config fingerprint,
// input index) — see choice.Config.Key for the fingerprint. PetaBricks-
// style autotuners win by never paying for the same measurement twice: the
// GA re-breeds structurally identical genomes (no-op mutations, crossover
// of near-identical parents, converged populations), and the landmark
// measurement pass re-runs configurations the tuner already measured on
// the same inputs. Because every Program.Run is deterministic in
// (config, input), a cache hit returns the bit-identical measurement the
// original run produced, so training results are unchanged — only faster.
// Concurrent misses on one key are collapsed to a single computation
// (singleflight), and the cache is bounded with FIFO eviction; hit, miss
// and eviction counts are surfaced in core.Report.
package engine
