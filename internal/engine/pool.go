package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded work-sharing pool. A Pool created for w workers hands
// out w-1 shared helper slots; the calling goroutine always participates
// without holding a slot, so a single pipeline — however deeply its
// parallel sections nest — runs at most w loop bodies at once, and a
// ForEach on a saturated pool degrades to an inline serial loop instead of
// deadlocking. Note the bound is per calling tree: k independent top-level
// callers sharing one pool can run up to k+(w-1) bodies at once, since
// each contributes its own inline executor.
//
// The zero Pool and the nil *Pool are valid and run everything serially.
type Pool struct {
	// sem holds the helper slots: capacity workers-1, because the caller
	// of ForEach is itself the w-th executor.
	sem chan struct{}
}

// NewPool returns a pool bounding total parallelism at workers executors.
// workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers-1)}
}

var (
	defaultPool     *Pool
	defaultPoolOnce sync.Once
)

// Default returns the process-wide pool, sized at GOMAXPROCS.
func Default() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// Workers returns the pool's executor bound.
func (p *Pool) Workers() int {
	if p == nil || p.sem == nil {
		return 1
	}
	return cap(p.sem) + 1
}

// ForEach runs fn(i) for every i in [0, n), using up to Workers()
// executors. Iterations are claimed from a shared counter, so uneven
// bodies balance automatically. fn must write any result it produces to a
// slot owned by its index; under that discipline results are independent
// of the schedule. ForEach returns once every iteration has finished.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.sem == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	// Recruit helpers only while both spare iterations and free slots
	// exist; on a saturated pool this loop exits immediately and the
	// caller runs the whole range inline.
recruit:
	for h := 0; h < n-1; h++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.sem }()
				work()
			}()
		default:
			break recruit
		}
	}
	work()
	wg.Wait()
}
