package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheMemoizes(t *testing.T) {
	c := NewCache(0)
	calls := 0
	compute := func() Measurement { calls++; return Measurement{Time: 42, Accuracy: 0.5} }
	k := Key{Config: "cfg", Input: 3}
	a := c.Measure(k, compute)
	b := c.Measure(k, compute)
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if a != b || a.Time != 42 || a.Accuracy != 0.5 {
		t.Fatalf("hit returned %+v, first run %+v", b, a)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Evictions != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestCacheDistinguishesKeys(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 10; i++ {
		i := i
		got := c.Measure(Key{Config: "x", Input: i}, func() Measurement {
			return Measurement{Time: float64(i)}
		})
		if got.Time != float64(i) {
			t.Fatalf("input %d returned %v", i, got.Time)
		}
	}
	got := c.Measure(Key{Config: "y", Input: 0}, func() Measurement {
		return Measurement{Time: -1}
	})
	if got.Time != -1 {
		t.Fatalf("distinct config shared a cache slot: %v", got)
	}
}

func TestNilCacheComputesEveryTime(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 3; i++ {
		c.Measure(Key{Config: "k"}, func() Measurement { calls++; return Measurement{} })
	}
	if calls != 3 {
		t.Fatalf("nil cache memoized: %d calls", calls)
	}
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(4)
	for i := 0; i < 10; i++ {
		i := i
		c.Measure(Key{Input: i}, func() Measurement { return Measurement{Time: float64(i)} })
	}
	s := c.Stats()
	if s.Entries > 4 {
		t.Fatalf("capacity not enforced: %d entries", s.Entries)
	}
	if s.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", s.Evictions)
	}
	// An evicted key recomputes — and still returns the deterministic value.
	recomputed := false
	got := c.Measure(Key{Input: 0}, func() Measurement { recomputed = true; return Measurement{Time: 0} })
	if !recomputed || got.Time != 0 {
		t.Fatalf("evicted key: recomputed=%v got=%v", recomputed, got)
	}
}

// TestCacheConcurrentDeterminism hammers a small key space from many
// goroutines (run under -race): every reader of a key must observe the one
// original measurement, and each key's compute must run exactly once.
func TestCacheConcurrentDeterminism(t *testing.T) {
	c := NewCache(0)
	const keys = 16
	const readers = 8
	var computes [keys]int64
	var wg sync.WaitGroup
	errs := make(chan string, readers*100)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 100; rep++ {
				k := (g + rep) % keys
				got := c.Measure(Key{Config: "c", Input: k}, func() Measurement {
					atomic.AddInt64(&computes[k], 1)
					return Measurement{Time: float64(k) * 10, Accuracy: float64(k)}
				})
				if got.Time != float64(k)*10 || got.Accuracy != float64(k) {
					errs <- fmt.Sprintf("key %d returned %+v", k, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	for k, n := range computes {
		if n != 1 {
			t.Fatalf("key %d computed %d times, want 1 (singleflight)", k, n)
		}
	}
	s := c.Stats()
	if s.Misses != keys || s.Hits != readers*100-keys {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheStatsAdd(t *testing.T) {
	a := CacheStats{Hits: 1, Misses: 2, Evictions: 3, Entries: 4}
	b := CacheStats{Hits: 10, Misses: 20, Evictions: 30, Entries: 40}
	got := a.Add(b)
	want := CacheStats{Hits: 11, Misses: 22, Evictions: 33, Entries: 44}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}
