package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]int32, n)
			p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEachNilPoolSerial(t *testing.T) {
	var p *Pool
	order := []int{}
	p.ForEach(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool not serial in-order: %v", order)
		}
	}
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d", p.Workers())
	}
}

// TestForEachNestedComposes is the regression test for the pool's reason to
// exist: an outer parallel loop whose bodies run inner parallel loops must
// neither deadlock nor exceed the executor bound.
func TestForEachNestedComposes(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	var active, peak int64
	enter := func() {
		a := atomic.AddInt64(&active, 1)
		for {
			pk := atomic.LoadInt64(&peak)
			if a <= pk || atomic.CompareAndSwapInt64(&peak, pk, a) {
				break
			}
		}
	}
	var total int64
	p.ForEach(8, func(i int) {
		p.ForEach(8, func(j int) {
			enter()
			for k := 0; k < 1000; k++ { // widen the overlap window
				_ = k * k
			}
			atomic.AddInt64(&total, 1)
			atomic.AddInt64(&active, -1)
		})
	})
	if total != 64 {
		t.Fatalf("ran %d inner bodies, want 64", total)
	}
	if got := atomic.LoadInt64(&peak); got > workers {
		t.Fatalf("peak concurrency %d exceeded pool bound %d", got, workers)
	}
}

// TestForEachConcurrentCallers exercises many goroutines sharing one pool.
func TestForEachConcurrentCallers(t *testing.T) {
	p := NewPool(3)
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.ForEach(50, func(i int) { atomic.AddInt64(&total, 1) })
		}()
	}
	wg.Wait()
	if total != 500 {
		t.Fatalf("total = %d, want 500", total)
	}
}
