package engine

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"strconv"
	"sync"
)

// DefaultMemoCapacity bounds a zero-value or capacity<=0 Memo. The cap
// counts entries, not bytes: solver snapshots run from a few KB to
// ~130 KB each at benchmark sizes, so the theoretical ceiling is ~130 MB
// if every entry were a largest-grid snapshot; in practice the stored mix
// follows the solve-size mix (mostly small grids) and stays in the tens
// of MB. Callers with bigger states should pass a smaller capacity.
const DefaultMemoCapacity = 1024

// Memo is a bounded, concurrency-safe store for deterministic intermediate
// solver state, keyed by (problem fingerprint, configuration prefix)
// strings. It is the sub-run layer of the engine cache path: Cache
// memoizes whole (config, input) measurements, while a Memo lets a
// Program.Run that shares a *prefix* of its work with an earlier run —
// e.g. a multigrid solve whose cycle shape matches but whose cycle count
// differs, the GA's favourite mutation — resume from the stored state
// instead of recomputing it. Stored values must be deterministic functions
// of their key and immutable once stored, so a resumed run is bit-identical
// to a from-scratch run; only wall-clock changes.
//
// The zero value is ready to use (DefaultMemoCapacity). Entries are
// evicted FIFO past the capacity.
type Memo struct {
	mu      sync.Mutex
	entries map[string]any
	fifo    []string
	cap     int

	hits, misses, evictions uint64
}

// NewMemo returns a memo bounded at capacity entries (<= 0 selects
// DefaultMemoCapacity).
func NewMemo(capacity int) *Memo {
	m := &Memo{}
	m.cap = capacity
	return m
}

// init lazily prepares the zero value; callers hold m.mu.
func (m *Memo) init() {
	if m.entries == nil {
		m.entries = make(map[string]any)
	}
	if m.cap <= 0 {
		m.cap = DefaultMemoCapacity
	}
}

// stepKey appends the integer step to the stem: one stored state per
// (stem, step) pair.
func stepKey(stem string, step int) string {
	return stem + strconv.Itoa(step)
}

// LongestPrefix returns the stored state with the largest step ≤ steps
// under stem, scanning downward from an exact match. It records one
// logical lookup: a hit if any prefix was found, a miss otherwise.
func (m *Memo) LongestPrefix(stem string, steps int) (v any, step int, ok bool) {
	if m == nil {
		return nil, 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.init()
	for k := steps; k >= 1; k-- {
		if e, found := m.entries[stepKey(stem, k)]; found {
			m.hits++
			return e, k, true
		}
	}
	m.misses++
	return nil, 0, false
}

// PutStep stores state v for (stem, step). The caller must not mutate v
// after storing it. If the key is already present the existing entry is
// kept — by determinism it holds the identical value.
func (m *Memo) PutStep(stem string, step int, v any) {
	if m == nil {
		return
	}
	key := stepKey(stem, step)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.init()
	if _, exists := m.entries[key]; exists {
		return
	}
	m.entries[key] = v
	m.fifo = append(m.fifo, key)
	for len(m.entries) > m.cap {
		victim := m.fifo[0]
		m.fifo = m.fifo[1:]
		delete(m.entries, victim)
		m.evictions++
	}
}

// Fingerprint hashes scalar words plus the exact bit patterns of float64
// slices into a compact content-identity string (FNV-128a), the problem
// half of a Memo key. Two inputs share a fingerprint exactly when their
// hashed content is identical (up to hash collision, negligible at 128
// bits), in which case sharing memoized solver state is not just safe but
// correct — the solves are the same computation.
func Fingerprint(words []uint64, chunks ...[]float64) string {
	h := fnv.New128a()
	var buf [1024]byte
	n := 0
	put := func(x uint64) {
		if n+8 > len(buf) {
			h.Write(buf[:n])
			n = 0
		}
		binary.LittleEndian.PutUint64(buf[n:], x)
		n += 8
	}
	for _, wd := range words {
		put(wd)
	}
	for _, c := range chunks {
		// Length-prefix each chunk so different chunk splits of the same
		// concatenated values can never collide.
		put(uint64(len(c)))
		for _, v := range c {
			put(math.Float64bits(v))
		}
	}
	h.Write(buf[:n])
	return string(h.Sum(nil))
}

// MemoStats is a point-in-time snapshot of memo effectiveness. Hits and
// misses count logical LongestPrefix lookups, not individual key probes.
type MemoStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s MemoStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the counters. The nil memo reports zeros.
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses, Evictions: m.evictions, Entries: len(m.entries)}
}
