package engine

import "sync"

// KeyMemo memoizes the canonical (live-subspace) key derived from a full
// configuration fingerprint. TrainModel keys its per-(config, input)
// measurement cache canonically so dead-gene variants of one behaviour
// share cache entries across landmarks and training phases; deriving the
// canonical key means cloning and re-encoding the configuration, so the
// mapping full→canonical is memoized here. Safe for concurrent use — the
// tuner evaluates candidates on the shared pool.
type KeyMemo struct {
	mu     sync.RWMutex
	m      map[string]string
	hits   int
	misses int
}

// NewKeyMemo returns an empty memo.
func NewKeyMemo() *KeyMemo {
	return &KeyMemo{m: make(map[string]string)}
}

// Canonical returns the canonical key for full, calling derive only on the
// first sighting of full. derive must be pure: concurrent first sightings
// may both call it, and either result is stored (they are equal).
func (k *KeyMemo) Canonical(full string, derive func() string) string {
	k.mu.RLock()
	c, ok := k.m[full]
	k.mu.RUnlock()
	if ok {
		k.mu.Lock()
		k.hits++
		k.mu.Unlock()
		return c
	}
	c = derive()
	k.mu.Lock()
	k.m[full] = c
	k.misses++
	k.mu.Unlock()
	return c
}

// Stats returns (hits, misses) so far.
func (k *KeyMemo) Stats() (hits, misses int) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.hits, k.misses
}
