package engine

import (
	"fmt"
	"sync"
	"testing"
)

func TestKeyMemoDerivesOnce(t *testing.T) {
	m := NewKeyMemo()
	derivations := 0
	derive := func() string { derivations++; return "canon" }
	for i := 0; i < 5; i++ {
		if got := m.Canonical("full", derive); got != "canon" {
			t.Fatalf("Canonical = %q", got)
		}
	}
	if derivations != 1 {
		t.Fatalf("derive ran %d times", derivations)
	}
	hits, misses := m.Stats()
	if hits != 4 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestKeyMemoDistinctKeys(t *testing.T) {
	m := NewKeyMemo()
	for i := 0; i < 10; i++ {
		full := fmt.Sprintf("full-%d", i)
		want := fmt.Sprintf("canon-%d", i%3) // canonical keys collide across fulls
		if got := m.Canonical(full, func() string { return want }); got != want {
			t.Fatalf("Canonical(%q) = %q, want %q", full, got, want)
		}
	}
	if _, misses := m.Stats(); misses != 10 {
		t.Fatalf("misses = %d", misses)
	}
}

func TestKeyMemoConcurrent(t *testing.T) {
	m := NewKeyMemo()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				full := fmt.Sprintf("full-%d", i%17)
				want := fmt.Sprintf("canon-%d", i%17)
				if got := m.Canonical(full, func() string { return want }); got != want {
					t.Errorf("Canonical(%q) = %q", full, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := m.Stats()
	if hits+misses != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*200)
	}
}
