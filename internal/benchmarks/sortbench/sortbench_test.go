package sortbench

import (
	"sort"
	"testing"
	"testing/quick"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/rng"
)

// cfgFor builds a config that always dispatches to the given alternative.
func cfgFor(p *Program, alt int) *choice.Config {
	c := p.Space().DefaultConfig()
	c.Selectors[0].Else = alt
	return c
}

func sortedCopy(d []float64) []float64 {
	out := append([]float64(nil), d...)
	sort.Float64s(out)
	return out
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEveryAlgorithmSortsEveryGenerator(t *testing.T) {
	p := New()
	r := rng.New(1)
	for alt := 0; alt < numAlts; alt++ {
		cfg := cfgFor(p, alt)
		for _, g := range Generators() {
			for _, n := range []int{0, 1, 2, 17, 100, 513} {
				l := g.Gen(n, r)
				work := append([]float64(nil), l.Data...)
				SortWith(work, cfg, 0, 4, cost.NewMeter())
				if !equal(work, sortedCopy(l.Data)) {
					t.Fatalf("%s failed on %s (n=%d)", AltNames[alt], g.Name, n)
				}
			}
		}
	}
}

func TestRegistryGeneratorSorts(t *testing.T) {
	p := New()
	r := rng.New(2)
	l := GenRegistry(500, r)
	for alt := 0; alt < numAlts; alt++ {
		work := append([]float64(nil), l.Data...)
		SortWith(work, cfgFor(p, alt), 0, 2, cost.NewMeter())
		if !sort.Float64sAreSorted(work) {
			t.Fatalf("%s failed on registry input", AltNames[alt])
		}
	}
}

func TestPolyalgorithmSelector(t *testing.T) {
	// Figure 2's selector: merge above 1420, quick above 600, insertion
	// below. Must sort correctly and dispatch as configured.
	p := New()
	cfg := p.Space().DefaultConfig()
	cfg.Selectors[0] = choice.Selector{
		Levels: []choice.Level{
			{Cutoff: 600, Choice: AltInsertion},
			{Cutoff: 1420, Choice: AltQuick},
		},
		Else: AltMerge,
	}
	r := rng.New(3)
	l := GenRandom(5000, r)
	work := append([]float64(nil), l.Data...)
	SortWith(work, cfg, 0, 2, cost.NewMeter())
	if !sort.Float64sAreSorted(work) {
		t.Fatal("polyalgorithm failed to sort")
	}
}

func TestSortPropertyAllConfigs(t *testing.T) {
	p := New()
	r := rng.New(4)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		cfg := p.Space().RandomConfig(rr)
		gens := Generators()
		l := gens[rr.Intn(len(gens))].Gen(rr.IntRange(0, 600), rr)
		work := append([]float64(nil), l.Data...)
		SortWith(work, cfg, 0, cfg.Int(0), cost.NewMeter())
		return equal(work, sortedCopy(l.Data))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInputSensitivityExists(t *testing.T) {
	// The paper's premise: quicksort pathological on sorted inputs where
	// insertion is linear; on random inputs the ranking flips.
	p := New()
	r := rng.New(5)
	timeOf := func(alt int, l *List) float64 {
		m := cost.NewMeter()
		work := append([]float64(nil), l.Data...)
		SortWith(work, cfgFor(p, alt), 0, 4, m)
		return m.Elapsed()
	}
	sorted := GenSorted(2000, r)
	if ti, tq := timeOf(AltInsertion, sorted), timeOf(AltQuick, sorted); ti*10 > tq {
		t.Fatalf("sorted input: insertion %v should crush quicksort %v", ti, tq)
	}
	random := GenRandom(2000, r)
	if ti, tq := timeOf(AltInsertion, random), timeOf(AltQuick, random); tq > ti {
		t.Fatalf("random input: quicksort %v should beat insertion %v", tq, ti)
	}
	fewDistinct := GenFewDistinct(2000, r)
	if tr, tq := timeOf(AltRadix, fewDistinct), timeOf(AltQuick, fewDistinct); tr*5 > tq {
		t.Fatalf("few-distinct input: radix %v should crush quicksort %v", tr, tq)
	}
}

func TestMergeWaysAffectsCost(t *testing.T) {
	p := New()
	r := rng.New(6)
	l := GenRandom(4096, r)
	timeOf := func(ways int) float64 {
		m := cost.NewMeter()
		work := append([]float64(nil), l.Data...)
		SortWith(work, cfgFor(p, AltMerge), 0, ways, m)
		return m.Elapsed()
	}
	if timeOf(2) == timeOf(8) {
		t.Fatal("merge ways tunable has no effect on cost")
	}
}

func TestFeatureExtractorsDiscriminate(t *testing.T) {
	p := New()
	r := rng.New(7)
	set := p.Features()
	full := func(l *List, prop int) float64 {
		vals, _ := set.ExtractAll(l)
		return vals[set.Index(prop, 2)] // most accurate level
	}
	sorted := GenSorted(1000, r)
	random := GenRandom(1000, r)
	fewDistinct := GenFewDistinct(1000, r)
	// sortedness (property 0): sorted ~1, random ~0.5.
	if s := full(sorted, 0); s < 0.99 {
		t.Fatalf("sortedness of sorted input = %v", s)
	}
	if s := full(random, 0); s < 0.3 || s > 0.7 {
		t.Fatalf("sortedness of random input = %v", s)
	}
	// duplication (property 1): few-distinct close to 1, random ~0.
	if d := full(fewDistinct, 1); d < 0.9 {
		t.Fatalf("duplication of few-distinct = %v", d)
	}
	if d := full(random, 1); d > 0.1 {
		t.Fatalf("duplication of random = %v", d)
	}
	// testsort (property 3): sorted input needs fewer comparisons.
	if ts, tr := full(sorted, 3), full(random, 3); ts >= tr {
		t.Fatalf("testsort: sorted %v should cost less than random %v", ts, tr)
	}
}

func TestFeatureCostsIncreaseWithLevel(t *testing.T) {
	p := New()
	r := rng.New(8)
	l := GenRandom(4096, r)
	_, costs := p.Features().ExtractAll(l)
	set := p.Features()
	for prop := 0; prop < set.NumProperties(); prop++ {
		for lev := 1; lev < set.LevelsPerProperty(); lev++ {
			lo := costs[set.Index(prop, lev-1)]
			hi := costs[set.Index(prop, lev)]
			if hi < lo {
				t.Fatalf("property %d: level %d cost %v below level %d cost %v",
					prop, lev, hi, lev-1, lo)
			}
		}
	}
}

func TestRunIsPure(t *testing.T) {
	p := New()
	r := rng.New(9)
	l := GenRandom(500, r)
	before := append([]float64(nil), l.Data...)
	cfg := p.Space().DefaultConfig()
	p.Run(cfg, l, cost.NewMeter())
	if !equal(l.Data, before) {
		t.Fatal("Run mutated its input")
	}
	// Determinism: same config, same input, same cost.
	m1, m2 := cost.NewMeter(), cost.NewMeter()
	p.Run(cfg, l, m1)
	p.Run(cfg, l, m2)
	if m1.Elapsed() != m2.Elapsed() {
		t.Fatal("Run is nondeterministic")
	}
}

func TestSortedCheck(t *testing.T) {
	p := New()
	r := rng.New(10)
	cfg := p.Space().RandomConfig(r)
	if !p.SortedCheck(cfg, GenRandom(300, r)) {
		t.Fatal("SortedCheck failed for a valid config")
	}
}

func TestGenerateMix(t *testing.T) {
	lists := GenerateMix(MixOptions{Count: 20, MinSize: 50, MaxSize: 100, Seed: 1})
	if len(lists) != 20 {
		t.Fatalf("got %d lists", len(lists))
	}
	seen := map[string]bool{}
	for _, l := range lists {
		if len(l.Data) < 50 || len(l.Data) > 100 {
			t.Fatalf("size %d out of range", len(l.Data))
		}
		seen[l.Gen] = true
	}
	if len(seen) < 5 {
		t.Fatalf("mix covers only %d generators", len(seen))
	}
	real := GenerateMix(MixOptions{Count: 5, Seed: 2, RealLike: true})
	for _, l := range real {
		if l.Gen != "registry" {
			t.Fatalf("real-like mix produced %q", l.Gen)
		}
	}
	// Determinism.
	a := GenerateMix(MixOptions{Count: 3, Seed: 7})
	b := GenerateMix(MixOptions{Count: 3, Seed: 7})
	for i := range a {
		if !equal(a[i].Data, b[i].Data) {
			t.Fatal("GenerateMix not deterministic")
		}
	}
}

func TestRegistryShape(t *testing.T) {
	r := rng.New(11)
	// Registry slices vary, but on average they are far more sorted and
	// duplicated than random data.
	var ascFrac, dupFrac float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		l := GenRegistry(1000, r)
		if len(l.Data) != 1000 {
			t.Fatalf("size %d", len(l.Data))
		}
		asc := 0
		for i := 0; i+1 < len(l.Data); i++ {
			if l.Data[i] <= l.Data[i+1] {
				asc++
			}
		}
		ascFrac += float64(asc) / 999
		seen := map[float64]int{}
		for _, v := range l.Data {
			seen[v]++
		}
		dupFrac += 1 - float64(len(seen))/1000
	}
	ascFrac /= trials
	dupFrac /= trials
	if ascFrac < 0.65 {
		t.Fatalf("registry inputs only %.2f sorted on average", ascFrac)
	}
	if dupFrac < 0.1 {
		t.Fatalf("registry inputs only %.2f duplicated on average", dupFrac)
	}
}
