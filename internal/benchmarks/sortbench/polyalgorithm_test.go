package sortbench

import (
	"sort"
	"testing"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/rng"
)

// TestRecursiveDispatchComposesAlgorithms verifies the defining PetaBricks
// property: a single configuration realises a polyalgorithm, with the
// selector consulted again at every recursive sub-problem.
func TestRecursiveDispatchComposesAlgorithms(t *testing.T) {
	p := New()
	// Merge above 256, insertion below: a 1024-element sort must cost far
	// less than pure merge all the way down on a nearly sorted input,
	// because the sorted sub-blocks hit insertion's O(n) path.
	hybrid := p.Space().DefaultConfig()
	hybrid.Selectors[0] = choice.Selector{
		Levels: []choice.Level{{Cutoff: 256, Choice: AltInsertion}},
		Else:   AltMerge,
	}
	pureMerge := p.Space().DefaultConfig()
	pureMerge.Selectors[0].Else = AltMerge

	r := rng.New(1)
	l := GenNearlySorted(1024, r)
	timeOf := func(cfg *choice.Config) float64 {
		m := cost.NewMeter()
		work := append([]float64(nil), l.Data...)
		SortWith(work, cfg, 0, 2, m)
		if !sort.Float64sAreSorted(work) {
			t.Fatal("hybrid failed to sort")
		}
		return m.Elapsed()
	}
	th, tm := timeOf(hybrid), timeOf(pureMerge)
	if th >= tm {
		t.Fatalf("insertion-below-256 hybrid (%v) not cheaper than pure merge (%v) on nearly sorted input", th, tm)
	}
}

// TestQuickRecursionRespectsSelector: quicksort's partitions re-enter the
// dispatcher, so a quick-then-insertion cutoff must change the cost
// profile relative to quick-only.
func TestQuickRecursionRespectsSelector(t *testing.T) {
	p := New()
	r := rng.New(2)
	l := GenRandom(2048, r)
	quickOnly := p.Space().DefaultConfig()
	quickOnly.Selectors[0].Else = AltQuick
	quickInsertion := p.Space().DefaultConfig()
	quickInsertion.Selectors[0] = choice.Selector{
		Levels: []choice.Level{{Cutoff: 64, Choice: AltInsertion}},
		Else:   AltQuick,
	}
	mA, mB := cost.NewMeter(), cost.NewMeter()
	wa := append([]float64(nil), l.Data...)
	wb := append([]float64(nil), l.Data...)
	SortWith(wa, quickOnly, 0, 2, mA)
	SortWith(wb, quickInsertion, 0, 2, mB)
	if !sort.Float64sAreSorted(wa) || !sort.Float64sAreSorted(wb) {
		t.Fatal("sort failure")
	}
	if mA.Elapsed() == mB.Elapsed() {
		t.Fatal("insertion cutoff had no effect — recursion is not consulting the selector")
	}
}

// TestRadixEqualKeysTerminates guards the early-out for constant buckets.
func TestRadixEqualKeysTerminates(t *testing.T) {
	p := New()
	cfg := p.Space().DefaultConfig()
	cfg.Selectors[0].Else = AltRadix
	data := make([]float64, 500)
	for i := range data {
		data[i] = 42.0
	}
	m := cost.NewMeter()
	SortWith(data, cfg, 0, 2, m)
	if !sort.Float64sAreSorted(data) {
		t.Fatal("constant array not sorted")
	}
	// One min/max scan, no distribution passes.
	if m.Count(cost.Move) != 0 {
		t.Fatalf("constant array triggered %d moves", m.Count(cost.Move))
	}
}

// TestSortKeyOrderPreserving: the IEEE-754 sort key must be monotone.
func TestSortKeyOrderPreserving(t *testing.T) {
	vals := []float64{-1e300, -5, -0.1, -1e-300, 0, 1e-300, 0.1, 5, 1e300}
	for i := 1; i < len(vals); i++ {
		if sortKey(vals[i-1]) >= sortKey(vals[i]) {
			t.Fatalf("sortKey not monotone between %v and %v", vals[i-1], vals[i])
		}
	}
}

// TestBitonicCostContentInsensitive: bitonic performs the same comparisons
// regardless of input content (its defining property).
func TestBitonicCostContentInsensitive(t *testing.T) {
	p := New()
	cfg := p.Space().DefaultConfig()
	cfg.Selectors[0].Else = AltBitonic
	r := rng.New(3)
	mRand, mSort := cost.NewMeter(), cost.NewMeter()
	a := GenRandom(512, r)
	b := GenSorted(512, r)
	wa := append([]float64(nil), a.Data...)
	wb := append([]float64(nil), b.Data...)
	SortWith(wa, cfg, 0, 2, mRand)
	SortWith(wb, cfg, 0, 2, mSort)
	if mRand.Count(cost.Compare) != mSort.Count(cost.Compare) {
		t.Fatalf("bitonic comparisons differ: %d vs %d",
			mRand.Count(cost.Compare), mSort.Count(cost.Compare))
	}
}
