package sortbench

import (
	"math"
	"sort"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/feature"
)

// List is a sort input.
type List struct {
	Data []float64
	// Gen names the generator that produced the list (diagnostics only).
	Gen string
}

// Size implements feature.Input.
func (l *List) Size() int { return len(l.Data) }

// Program is the Sort benchmark: time-only (the paper's sole non-variable-
// accuracy benchmark), with four input properties at three sampling levels.
type Program struct {
	space *choice.Space
	set   *feature.Set
	// tunable indices
	waysIdx int
}

// New constructs the Sort program.
func New() *Program {
	p := &Program{}
	p.space = choice.NewSpace()
	p.space.AddSite("sort", AltNames...)
	p.waysIdx = p.space.AddInt("mergeWays", 2, 8, 2)
	// mergeWays is read only inside MergeSort; under selectors that never
	// dispatch to it the gene is dead and the tuner skips it.
	p.space.DependsOn(p.waysIdx, 0, AltMerge)
	p.set = feature.MustNewSet(
		feature.Extractor{Name: "sortedness", Levels: []feature.LevelFunc{
			sortednessLevel(32), sortednessLevel(256), sortednessLevel(0),
		}},
		feature.Extractor{Name: "duplication", Levels: []feature.LevelFunc{
			duplicationLevel(32), duplicationLevel(256), duplicationLevel(0),
		}},
		feature.Extractor{Name: "deviation", Levels: []feature.LevelFunc{
			deviationLevel(32), deviationLevel(256), deviationLevel(0),
		}},
		feature.Extractor{Name: "testsort", Levels: []feature.LevelFunc{
			testsortLevel(16), testsortLevel(64), testsortLevel(256),
		}},
	)
	return p
}

// Name implements core.Program.
func (p *Program) Name() string { return "sort" }

// Space implements core.Program.
func (p *Program) Space() *choice.Space { return p.space }

// Features implements core.Program.
func (p *Program) Features() *feature.Set { return p.set }

// HasAccuracy implements core.Program: sorting is exact.
func (p *Program) HasAccuracy() bool { return false }

// AccuracyThreshold implements core.Program.
func (p *Program) AccuracyThreshold() float64 { return 0 }

// Run sorts a copy of the list under cfg, charging work to meter.
func (p *Program) Run(cfg *choice.Config, in feature.Input, meter *cost.Meter) float64 {
	l := in.(*List)
	work := append([]float64(nil), l.Data...)
	SortWith(work, cfg, 0, cfg.Int(p.waysIdx), meter)
	return 1
}

// SortedCheck reports whether Run's algorithm family sorts correctly; used
// by tests (Run itself discards the sorted copy: the learner only needs
// timing and the algorithms are verified separately).
func (p *Program) SortedCheck(cfg *choice.Config, l *List) bool {
	work := append([]float64(nil), l.Data...)
	SortWith(work, cfg, 0, cfg.Int(p.waysIdx), cost.NewMeter())
	return sort.Float64sAreSorted(work)
}

// --- feature extractors -------------------------------------------------

// sampleCount resolves a level budget: 0 means "the whole input".
func sampleCount(budget, n int) int {
	if budget <= 0 || budget > n {
		return n
	}
	return budget
}

// sortednessLevel measures the fraction of correctly ordered element pairs
// at a stride chosen so that about `budget` pairs are probed (the paper's
// step = level*n sampling).
func sortednessLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		data := in.(*List).Data
		n := len(data)
		if n < 2 {
			return 1
		}
		pairs := sampleCount(budget, n-1)
		step := (n - 1) / pairs
		if step < 1 {
			step = 1
		}
		sorted, count := 0, 0
		for i := 0; i+step < n; i += step {
			m.Charge(cost.Scan, 2)
			if data[i] <= data[i+step] {
				sorted++
			}
			count++
		}
		if count == 0 {
			return 1
		}
		return float64(sorted) / float64(count)
	}
}

// duplicationLevel estimates the duplicate fraction from a sample.
func duplicationLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		data := in.(*List).Data
		n := len(data)
		if n == 0 {
			return 0
		}
		s := sampleCount(budget, n)
		stride := n / s
		if stride < 1 {
			stride = 1
		}
		seen := make(map[float64]struct{}, s)
		count := 0
		for i := 0; i < n; i += stride {
			m.Charge1(cost.Scan)
			seen[data[i]] = struct{}{}
			count++
		}
		if count == 0 {
			return 0
		}
		return 1 - float64(len(seen))/float64(count)
	}
}

// deviationLevel estimates the standard deviation from a sample,
// normalised by the sample mean magnitude so the feature is scale-free.
func deviationLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		data := in.(*List).Data
		n := len(data)
		if n == 0 {
			return 0
		}
		s := sampleCount(budget, n)
		stride := n / s
		if stride < 1 {
			stride = 1
		}
		var sum, sumsq, cnt float64
		for i := 0; i < n; i += stride {
			m.Charge1(cost.Scan)
			sum += data[i]
			sumsq += data[i] * data[i]
			cnt++
		}
		mean := sum / cnt
		variance := sumsq/cnt - mean*mean
		if variance < 0 {
			variance = 0
		}
		scale := math.Abs(mean) + 1
		return math.Sqrt(variance) / scale
	}
}

// testsortLevel insertion-sorts a strided sample and reports the work per
// element against the n·log n ideal — a direct probe of how hard the list
// is to sort (the paper's "performance of a test sort on a subsequence").
func testsortLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		data := in.(*List).Data
		n := len(data)
		if n < 2 {
			return 0
		}
		s := sampleCount(budget, n)
		stride := n / s
		if stride < 1 {
			stride = 1
		}
		sample := make([]float64, 0, s)
		for i := 0; i < n && len(sample) < s; i += stride {
			m.Charge1(cost.Scan)
			sample = append(sample, data[i])
		}
		comparisons := 0
		for i := 1; i < len(sample); i++ {
			v := sample[i]
			j := i - 1
			for j >= 0 {
				comparisons++
				m.Charge1(cost.Scan)
				if sample[j] <= v {
					break
				}
				sample[j+1] = sample[j]
				j--
			}
			sample[j+1] = v
		}
		denom := float64(len(sample)) * math.Log2(float64(len(sample))+1)
		return float64(comparisons) / denom
	}
}
