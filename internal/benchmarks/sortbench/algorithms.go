// Package sortbench reproduces the paper's Sort benchmark: a PetaBricks-
// style polyalgorithm over InsertionSort, QuickSort, MergeSort (variable
// ways), RadixSort and BitonicSort, with recursive algorithm selection
// through the configuration's selector at every sub-call — exactly the
// either…or structure of Figure 1.
package sortbench

import (
	"math"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
)

// Alternative indices for the "sort" choice site.
const (
	AltInsertion = iota
	AltQuick
	AltMerge
	AltRadix
	AltBitonic
	numAlts
)

// AltNames lists the algorithm names in site order.
var AltNames = []string{"InsertionSort", "QuickSort", "MergeSort", "RadixSort", "BitonicSort"}

// sorter carries the active configuration through the recursion.
type sorter struct {
	cfg   *choice.Config
	site  int
	ways  int // merge fan-in from the mergeWays tunable
	meter *cost.Meter
}

// dispatch sorts data in place using the algorithm the selector picks for
// the current (sub-)problem size. Recursive algorithms re-enter dispatch,
// so one configuration realises a polyalgorithm (e.g. merge sort down to
// 1420 elements, quicksort to 600, insertion sort below).
func (s *sorter) dispatch(data []float64) {
	n := len(data)
	if n <= 1 {
		return
	}
	s.meter.Charge1(cost.Branch)
	switch s.cfg.Decide(s.site, n) {
	case AltInsertion:
		s.insertion(data)
	case AltQuick:
		s.quick(data)
	case AltMerge:
		s.merge(data)
	case AltRadix:
		s.radix(data)
	case AltBitonic:
		s.bitonic(data)
	default:
		s.insertion(data)
	}
}

// insertion is the terminal algorithm: O(n + inversions), unbeatable on
// tiny or nearly sorted ranges.
func (s *sorter) insertion(data []float64) {
	// Ops are tallied locally and charged in bulk: the meter records
	// integer counts, so this is exactly equivalent to per-op charging
	// while keeping the inner loop free of memory traffic.
	compares, moves := 0, 0
	for i := 1; i < len(data); i++ {
		v := data[i]
		j := i - 1
		for j >= 0 {
			compares++
			if data[j] <= v {
				break
			}
			data[j+1] = data[j]
			moves++
			j--
		}
		data[j+1] = v
		moves++
	}
	s.meter.Charge(cost.Compare, compares)
	s.meter.Charge(cost.Move, moves)
}

// quick uses Lomuto partitioning with a last-element pivot — deliberately
// the classic textbook variant with pathological O(n²) behaviour on sorted,
// reversed and heavily duplicated inputs. That pathology is precisely the
// input sensitivity the paper's Sort benchmark exhibits.
func (s *sorter) quick(data []float64) {
	n := len(data)
	if n <= 16 {
		s.insertion(data)
		return
	}
	pivot := data[n-1]
	i := 0
	for j := 0; j < n-1; j++ {
		if data[j] < pivot {
			data[i], data[j] = data[j], data[i]
			i++
		}
	}
	data[i], data[n-1] = data[n-1], data[i]
	s.meter.Charge(cost.Compare, n-1)
	s.meter.Charge(cost.Move, 2*i+2)
	// Recurse through the dispatcher so the polyalgorithm can switch
	// strategies at smaller sizes.
	s.dispatch(data[:i])
	s.dispatch(data[i+1:])
}

// merge is a k-way merge sort; k comes from the mergeWays tunable.
func (s *sorter) merge(data []float64) {
	n := len(data)
	ways := s.ways
	if ways < 2 {
		ways = 2
	}
	if ways > n {
		ways = n
	}
	if n <= 16 {
		s.insertion(data)
		return
	}
	// Split into `ways` chunks and sort each via the dispatcher.
	bounds := make([]int, ways+1)
	for i := 0; i <= ways; i++ {
		bounds[i] = i * n / ways
	}
	for i := 0; i < ways; i++ {
		s.dispatch(data[bounds[i]:bounds[i+1]])
	}
	// k-way merge by linear scan of the chunk heads (k is small).
	heads := make([]int, ways)
	out := make([]float64, 0, n)
	s.meter.Charge(cost.Alloc, n)
	compares := 0
	for len(out) < n {
		best := -1
		for c := 0; c < ways; c++ {
			if heads[c] >= bounds[c+1]-bounds[c] {
				continue
			}
			if best >= 0 {
				compares++
			}
			if best < 0 || data[bounds[c]+heads[c]] < data[bounds[best]+heads[best]] {
				best = c
			}
		}
		out = append(out, data[bounds[best]+heads[best]])
		heads[best]++
	}
	s.meter.Charge(cost.Compare, compares)
	s.meter.Charge(cost.Move, n) // one move per merged element
	copy(data, out)
	s.meter.Charge(cost.Move, n)
}

// radix is a true MSD byte-radix sort on the IEEE-754 bit representation
// (sign-flipped so unsigned byte order matches float order), with
// common-prefix skipping: each level buckets on the most significant byte
// where the min and max keys differ, then recurses through the dispatcher.
// Narrow-range inputs share long key prefixes and need several passes,
// while duplicated inputs collapse immediately — radix's input sensitivity
// comes straight from the bit patterns, as on real machines.
func (s *sorter) radix(data []float64) {
	n := len(data)
	if n <= 32 {
		s.insertion(data)
		return
	}
	loK, hiK := sortKey(data[0]), sortKey(data[0])
	for _, v := range data[1:] {
		k := sortKey(v)
		if k < loK {
			loK = k
		}
		if k > hiK {
			hiK = k
		}
	}
	s.meter.Charge(cost.Scan, n)
	if hiK == loK {
		return // all equal: already sorted
	}
	// First byte (from the MSB) where min and max keys differ.
	shift := 56
	for shift > 0 && (loK>>shift)&0xFF == (hiK>>shift)&0xFF {
		shift -= 8
	}
	const buckets = 256
	counts := [buckets]int{}
	bucketOf := func(v float64) int {
		return int((sortKey(v) >> shift) & 0xFF)
	}
	// Cost model: the count pass scans each element and computes its
	// bucket (scale + clamp); the scatter pass recomputes the bucket and
	// writes to an effectively random target — on hardware those writes
	// are cache-hostile, so they are charged at 4 moves each. The bucket
	// bookkeeping costs a branch-heavy 256-entry loop and fresh buffers.
	// These constants are what keep comparison sorts competitive at small
	// and mid sizes, as they are on real machines.
	for _, v := range data {
		counts[bucketOf(v)]++
	}
	s.meter.Charge(cost.Scan, n)
	s.meter.Charge(cost.Flop, 2*n)
	starts := [buckets]int{}
	sum := 0
	for b := 0; b < buckets; b++ {
		starts[b] = sum
		sum += counts[b]
	}
	s.meter.Charge(cost.Branch, 2*buckets)
	out := make([]float64, n)
	s.meter.Charge(cost.Alloc, n+buckets)
	next := starts
	for _, v := range data {
		b := bucketOf(v)
		out[next[b]] = v
		next[b]++
	}
	s.meter.Charge(cost.Move, 4*n)
	copy(data, out)
	s.meter.Charge(cost.Move, n)
	// Recurse per bucket through the dispatcher.
	for b := 0; b < buckets; b++ {
		if counts[b] > 1 {
			s.dispatch(data[starts[b] : starts[b]+counts[b]])
		}
	}
}

// sortKey maps a float64 to a uint64 whose unsigned order matches the
// float order (standard sign-flip trick; NaNs do not occur in our inputs).
func sortKey(v float64) uint64 {
	k := math.Float64bits(v)
	if k&(1<<63) != 0 {
		return ^k
	}
	return k | 1<<63
}

// bitonic runs the bitonic sorting network on a power-of-two padded copy.
// Sequentially it performs Θ(n log² n) compare-exchanges regardless of
// input — in PetaBricks it exists for its parallel depth; here it is the
// (usually dominated) fifth alternative.
func (s *sorter) bitonic(data []float64) {
	n := len(data)
	if n <= 8 {
		s.insertion(data)
		return
	}
	p := 1
	for p < n {
		p <<= 1
	}
	buf := make([]float64, p)
	s.meter.Charge(cost.Alloc, p)
	copy(buf, data)
	for i := n; i < p; i++ {
		buf[i] = math.Inf(1)
	}
	s.meter.Charge(cost.Move, n)
	// Iterative bitonic network.
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < p; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				s.meter.Charge1(cost.Compare)
				ascending := i&k == 0
				if (ascending && buf[i] > buf[l]) || (!ascending && buf[i] < buf[l]) {
					buf[i], buf[l] = buf[l], buf[i]
					s.meter.Charge(cost.Move, 2)
				}
			}
		}
	}
	copy(data, buf[:n])
	s.meter.Charge(cost.Move, n)
}

// SortWith sorts data in place under the given configuration, charging all
// work to meter. site is the index of the "sort" choice site; ways the
// merge fan-in.
func SortWith(data []float64, cfg *choice.Config, site, ways int, meter *cost.Meter) {
	s := &sorter{cfg: cfg, site: site, ways: ways, meter: meter}
	s.dispatch(data)
}
