package sortbench

import (
	"math"

	"inputtune/internal/rng"
)

// Generator produces a sort input of roughly the requested size.
type Generator struct {
	Name string
	Gen  func(n int, r *rng.RNG) *List
}

// Generators is the synthetic battery spanning the feature space — the
// sort2 workload of the paper ("inputs generated from a collection of
// input generators meant to span the space of features").
func Generators() []Generator {
	return []Generator{
		{"random", GenRandom},
		{"sorted", GenSorted},
		{"reversed", GenReversed},
		{"nearly-sorted", GenNearlySorted},
		{"few-distinct", GenFewDistinct},
		{"gaussian", GenGaussian},
		{"exponential", GenExponential},
		{"organ-pipe", GenOrganPipe},
		{"sawtooth", GenSawtooth},
		{"runs", GenRuns},
	}
}

// GenRandom draws i.i.d. uniforms — quicksort/radix territory.
func GenRandom(n int, r *rng.RNG) *List {
	d := make([]float64, n)
	for i := range d {
		d[i] = r.Float64()
	}
	return &List{Data: d, Gen: "random"}
}

// GenSorted is fully ascending — insertion sort's best case, Lomuto
// quicksort's catastrophe.
func GenSorted(n int, r *rng.RNG) *List {
	d := make([]float64, n)
	x := 0.0
	for i := range d {
		x += r.Float64()
		d[i] = x
	}
	return &List{Data: d, Gen: "sorted"}
}

// GenReversed is strictly descending.
func GenReversed(n int, r *rng.RNG) *List {
	l := GenSorted(n, r)
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		l.Data[i], l.Data[j] = l.Data[j], l.Data[i]
	}
	l.Gen = "reversed"
	return l
}

// GenNearlySorted perturbs a sorted list with ~2% random transpositions.
func GenNearlySorted(n int, r *rng.RNG) *List {
	l := GenSorted(n, r)
	l.Gen = "nearly-sorted"
	if n < 2 {
		return l
	}
	swaps := n / 50
	if swaps < 1 {
		swaps = 1
	}
	for s := 0; s < swaps; s++ {
		i, j := r.Intn(n), r.Intn(n)
		l.Data[i], l.Data[j] = l.Data[j], l.Data[i]
	}
	l.Gen = "nearly-sorted"
	return l
}

// GenFewDistinct draws from a tiny alphabet — heavy duplication, where
// distribution sorts shine and Lomuto quicksort degrades.
func GenFewDistinct(n int, r *rng.RNG) *List {
	k := r.IntRange(2, 8)
	alphabet := make([]float64, k)
	for i := range alphabet {
		alphabet[i] = r.Float64() * 100
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = alphabet[r.Intn(k)]
	}
	return &List{Data: d, Gen: "few-distinct"}
}

// GenGaussian draws normals.
func GenGaussian(n int, r *rng.RNG) *List {
	d := make([]float64, n)
	for i := range d {
		d[i] = r.Norm(0, 100)
	}
	return &List{Data: d, Gen: "gaussian"}
}

// GenExponential draws a heavy-tailed distribution (skews radix buckets).
func GenExponential(n int, r *rng.RNG) *List {
	d := make([]float64, n)
	for i := range d {
		d[i] = r.ExpFloat64() * 10
	}
	return &List{Data: d, Gen: "exponential"}
}

// GenOrganPipe ascends then descends.
func GenOrganPipe(n int, r *rng.RNG) *List {
	d := make([]float64, n)
	half := n / 2
	x := 0.0
	for i := 0; i < half; i++ {
		x += r.Float64()
		d[i] = x
	}
	for i := half; i < n; i++ {
		x -= r.Float64()
		d[i] = x
	}
	return &List{Data: d, Gen: "organ-pipe"}
}

// GenSawtooth repeats short ascending ramps.
func GenSawtooth(n int, r *rng.RNG) *List {
	period := r.IntRange(8, 64)
	d := make([]float64, n)
	for i := range d {
		d[i] = float64(i%period) + r.Float64()*0.1
	}
	return &List{Data: d, Gen: "sawtooth"}
}

// GenRuns concatenates presorted runs — merge sort's natural prey.
func GenRuns(n int, r *rng.RNG) *List {
	d := make([]float64, 0, n)
	for len(d) < n {
		runLen := r.IntRange(16, 128)
		if runLen > n-len(d) {
			runLen = n - len(d)
		}
		start := r.Float64() * 1000
		x := start
		for i := 0; i < runLen; i++ {
			x += r.Float64()
			d = append(d, x)
		}
	}
	return &List{Data: d, Gen: "runs"}
}

// GenRegistry simulates the paper's sort1 workload, the Central Contractor
// Registration FOIA extract (DESIGN.md substitution 2). Extract slices vary
// widely: some are fully sorted by registration id, some are concatenations
// of per-agency sorted blocks, some carry heavy duplication from
// re-registrations, and recent appends arrive unsorted — so sortedness and
// duplication genuinely vary across inputs, as they do across FOIA slices.
func GenRegistry(n int, r *rng.RNG) *List {
	d := make([]float64, 0, n)
	maxDup := r.IntRange(1, 8)
	blocks := r.IntRange(1, 5) // main extract + per-batch appends, each id-sorted
	blockLen := n/blocks + 1
	for b := 0; b < blocks && len(d) < n; b++ {
		id := 1e6 * r.Float64()
		end := len(d) + blockLen
		for len(d) < end && len(d) < n {
			dup := r.IntRange(1, maxDup)
			for j := 0; j < dup && len(d) < n; j++ {
				d = append(d, id)
			}
			id += math.Floor(r.ExpFloat64()*10) + 1
		}
	}
	// Data corrections displace a small, varying fraction of rows.
	displaced := int(r.Range(0, 0.1) * float64(n))
	for s := 0; s < displaced; s++ {
		i, j := r.Intn(n), r.Intn(n)
		d[i], d[j] = d[j], d[i]
	}
	return &List{Data: d, Gen: "registry"}
}

// MixOptions controls the input battery.
type MixOptions struct {
	Count    int
	MinSize  int // default 64
	MaxSize  int // default 2048
	Seed     uint64
	RealLike bool // registry-only workload (sort1) instead of the battery
}

// GenerateMix produces a deterministic battery of inputs, cycling through
// generators with random sizes.
func GenerateMix(opts MixOptions) []*List {
	if opts.MinSize <= 0 {
		opts.MinSize = 64
	}
	if opts.MaxSize < opts.MinSize {
		opts.MaxSize = 2048
	}
	r := rng.New(opts.Seed)
	gens := Generators()
	out := make([]*List, opts.Count)
	for i := range out {
		n := r.IntRange(opts.MinSize, opts.MaxSize)
		if opts.RealLike {
			out[i] = GenRegistry(n, r)
		} else {
			out[i] = gens[i%len(gens)].Gen(n, r)
		}
	}
	return out
}
