// Package svd reproduces the paper's Singular Value Decomposition
// benchmark: approximate a matrix with a rank-k SVD, where the autotuner
// chooses both the technique used to find the eigenpairs (one-sided Jacobi,
// Gram-matrix Jacobi, or power iteration with deflation) and how many
// singular values to keep. The accuracy metric is the log10 ratio of the
// initial (zero-matrix) RMS error to the final RMS error, threshold 0.7.
package svd

import (
	"math"
	"sync"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/feature"
	"inputtune/internal/linalg"
)

// Technique alternatives for the "eigen" choice site.
const (
	TechJacobi = iota // one-sided Jacobi on A (robust, most work)
	TechGram          // symmetric Jacobi on AᵀA (fast for tall matrices)
	TechPower         // power iteration + deflation (cheap for few values)
	numTechs
)

// TechNames lists the eigen techniques in site order.
var TechNames = []string{"jacobi", "gram", "power"}

// MatrixInput wraps a matrix to approximate.
type MatrixInput struct {
	A   *linalg.Matrix
	Gen string

	exactOnce sync.Once
	rmsA      float64
}

// Size implements feature.Input: total elements.
func (mi *MatrixInput) Size() int { return mi.A.Rows * mi.A.Cols }

// rms caches the input RMS (the accuracy metric's numerator: the RMS error
// of the zero-matrix initial guess).
func (mi *MatrixInput) rms() float64 {
	mi.exactOnce.Do(func() {
		mi.rmsA = mi.A.RMS()
		if mi.rmsA == 0 {
			mi.rmsA = 1e-300
		}
	})
	return mi.rmsA
}

// Program is the SVD benchmark.
type Program struct {
	space    *choice.Space
	set      *feature.Set
	rankIdx  int
	itersIdx int
}

// New constructs the SVD program.
func New() *Program {
	p := &Program{}
	p.space = choice.NewSpace()
	p.space.AddSite("eigen", TechNames...)
	p.rankIdx = p.space.AddFloat("rankFrac", 0.05, 1.0, 0.5)
	p.itersIdx = p.space.AddInt("iterations", 2, 60, 20)
	p.set = feature.MustNewSet(
		feature.Extractor{Name: "range", Levels: []feature.LevelFunc{
			rangeLevel(64), rangeLevel(512), rangeLevel(0),
		}},
		feature.Extractor{Name: "deviation", Levels: []feature.LevelFunc{
			deviationLevel(64), deviationLevel(512), deviationLevel(0),
		}},
		feature.Extractor{Name: "zeros", Levels: []feature.LevelFunc{
			zerosLevel(64), zerosLevel(512), zerosLevel(0),
		}},
	)
	return p
}

// Name implements core.Program.
func (p *Program) Name() string { return "svd" }

// Space implements core.Program.
func (p *Program) Space() *choice.Space { return p.space }

// Features implements core.Program.
func (p *Program) Features() *feature.Set { return p.set }

// HasAccuracy implements core.Program.
func (p *Program) HasAccuracy() bool { return true }

// AccuracyThreshold implements core.Program: the paper sets 0.7.
func (p *Program) AccuracyThreshold() float64 { return 0.7 }

// Run computes a rank-k approximation with the configured technique and
// returns log10(RMS(A)/RMS(A - Ak)).
func (p *Program) Run(cfg *choice.Config, in feature.Input, meter *cost.Meter) float64 {
	mi := in.(*MatrixInput)
	a := mi.A
	m, n := a.Rows, a.Cols
	small := n
	if m < n {
		small = m
	}
	k := int(cfg.Float(p.rankIdx)*float64(small) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > small {
		k = small
	}
	iters := cfg.Int(p.itersIdx)
	tech := cfg.Decide(0, mi.Size())

	var res *linalg.SVDResult
	switch tech {
	case TechJacobi:
		sweeps := iters / 4
		if sweeps < 2 {
			sweeps = 2
		}
		res = linalg.JacobiSVD(a, sweeps, 1e-12)
		// One-sided Jacobi: each rotation touches 2 columns of length m (plus
		// the 2x2 Gram evaluation), ~10m flops; each sweep re-examines every
		// column pair, ~3·m·n²/2 flops of Gram checks.
		meter.Charge(cost.Flop, res.Stats.Rotations*10*m)
		meter.Charge(cost.Flop, res.Stats.Sweeps*3*m*n*n/2)
		res = res.Truncate(k)
	case TechGram:
		res = linalg.EigenSVD(a, k, func(g *linalg.Matrix) ([]float64, *linalg.Matrix, linalg.EigenStats) {
			sweeps := iters / 4
			if sweeps < 2 {
				sweeps = 2
			}
			vals, vecs, st := linalg.SymmetricEigen(g, sweeps, 1e-12)
			return vals, vecs, st
		})
		meter.Charge(cost.Flop, m*n*n)                    // forming AᵀA
		meter.Charge(cost.Flop, res.Stats.Rotations*12*n) // Jacobi on n×n Gram
		meter.Charge(cost.Flop, k*m*n)                    // back-mapping U = A V Σ⁻¹
	default: // TechPower
		res = linalg.EigenSVD(a, k, func(g *linalg.Matrix) ([]float64, *linalg.Matrix, linalg.EigenStats) {
			return linalg.PowerIteration(g, k, iters, 1e-10, nil)
		})
		meter.Charge(cost.Flop, m*n*n)                   // forming AᵀA
		meter.Charge(cost.Flop, res.Stats.MatVecs*2*n*n) // matvec + Rayleigh
		meter.Charge(cost.Flop, k*n*n)                   // deflation updates
		meter.Charge(cost.Flop, k*m*n)                   // back-mapping
	}

	errRMS := res.Reconstruct().Sub(a).RMS()
	if errRMS <= 1e-14 {
		return 14 // machine-precision reconstruction
	}
	acc := math.Log10(mi.rms() / errRMS)
	if acc < 0 {
		acc = 0
	}
	return acc
}

// --- feature extractors -------------------------------------------------

// sampleStride picks a stride so about budget entries are scanned
// (budget 0 = all entries).
func sampleStride(budget, total int) int {
	if budget <= 0 || budget >= total {
		return 1
	}
	return total / budget
}

func rangeLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		a := in.(*MatrixInput).A
		total := len(a.Data)
		stride := sampleStride(budget, total)
		lo, hi := a.Data[0], a.Data[0]
		for i := 0; i < total; i += stride {
			m.Charge1(cost.Scan)
			if a.Data[i] < lo {
				lo = a.Data[i]
			}
			if a.Data[i] > hi {
				hi = a.Data[i]
			}
		}
		return hi - lo
	}
}

func deviationLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		a := in.(*MatrixInput).A
		total := len(a.Data)
		stride := sampleStride(budget, total)
		var sum, sumsq, cnt float64
		for i := 0; i < total; i += stride {
			m.Charge1(cost.Scan)
			sum += a.Data[i]
			sumsq += a.Data[i] * a.Data[i]
			cnt++
		}
		mean := sum / cnt
		v := sumsq/cnt - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v)
	}
}

// zerosLevel is the fraction of (near-)zero entries — the paper's cheap
// stand-in for the eigenvalue count ("a matrix with many 0s has fewer
// eigenvalues than a matrix with only a few 0s").
func zerosLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		a := in.(*MatrixInput).A
		total := len(a.Data)
		stride := sampleStride(budget, total)
		zeros, cnt := 0.0, 0.0
		for i := 0; i < total; i += stride {
			m.Charge1(cost.Scan)
			if math.Abs(a.Data[i]) < 1e-12 {
				zeros++
			}
			cnt++
		}
		return zeros / cnt
	}
}
