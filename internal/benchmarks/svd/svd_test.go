package svd

import (
	"testing"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/rng"
)

func cfgWith(p *Program, tech int, rankFrac float64, iters int) *choice.Config {
	c := p.Space().DefaultConfig()
	c.Selectors[0].Else = tech
	c.Values[p.rankIdx] = rankFrac
	c.Values[p.itersIdx] = float64(iters)
	return c
}

func TestFullRankJacobiIsExact(t *testing.T) {
	p := New()
	r := rng.New(1)
	in := GenFullRank(400, r)
	acc := p.Run(cfgWith(p, TechJacobi, 1.0, 60), in, cost.NewMeter())
	if acc < 10 {
		t.Fatalf("full-rank Jacobi accuracy = %v decades, want ~machine precision", acc)
	}
}

func TestLowRankNeedsFewValues(t *testing.T) {
	p := New()
	r := rng.New(2)
	in := GenLowRank(600, r)
	// Rank fraction 0.25 on a rank-≤3 matrix with ≥8 columns keeps ≥2
	// values: should easily clear 0.7 decades.
	acc := p.Run(cfgWith(p, TechJacobi, 0.25, 40), in, cost.NewMeter())
	if acc < p.AccuracyThreshold() {
		t.Fatalf("low-rank input accuracy %v below threshold", acc)
	}
}

func TestFullRankSmallFractionFails(t *testing.T) {
	p := New()
	r := rng.New(3)
	in := GenFullRank(600, r)
	acc := p.Run(cfgWith(p, TechJacobi, 0.1, 40), in, cost.NewMeter())
	if acc >= p.AccuracyThreshold() {
		t.Fatalf("flat spectrum with 10%% of values reached %v decades; sensitivity premise broken", acc)
	}
}

func TestMoreRankCostsMore(t *testing.T) {
	p := New()
	r := rng.New(4)
	in := GenDecaying(600, r)
	mLo, mHi := cost.NewMeter(), cost.NewMeter()
	p.Run(cfgWith(p, TechPower, 0.1, 30), in, mLo)
	p.Run(cfgWith(p, TechPower, 0.9, 30), in, mHi)
	if mLo.Elapsed() >= mHi.Elapsed() {
		t.Fatalf("rank 0.1 cost %v not below rank 0.9 cost %v", mLo.Elapsed(), mHi.Elapsed())
	}
}

func TestAllTechniquesReasonableOnDecaying(t *testing.T) {
	p := New()
	r := rng.New(5)
	in := GenDecaying(500, r)
	for tech := 0; tech < numTechs; tech++ {
		acc := p.Run(cfgWith(p, tech, 0.8, 50), in, cost.NewMeter())
		if acc < 0.5 {
			t.Fatalf("%s accuracy %v on decaying spectrum", TechNames[tech], acc)
		}
	}
}

func TestAccuracyMonotoneInRank(t *testing.T) {
	p := New()
	r := rng.New(6)
	in := GenDecaying(500, r)
	prev := -1.0
	for _, frac := range []float64{0.1, 0.3, 0.6, 1.0} {
		acc := p.Run(cfgWith(p, TechJacobi, frac, 60), in, cost.NewMeter())
		if acc < prev-0.2 { // allow slack for numerics
			t.Fatalf("accuracy dropped from %v to %v as rank grew", prev, acc)
		}
		prev = acc
	}
}

func TestRunDeterministic(t *testing.T) {
	p := New()
	r := rng.New(7)
	in := GenBlock(400, r)
	cfg := cfgWith(p, TechGram, 0.5, 20)
	m1, m2 := cost.NewMeter(), cost.NewMeter()
	a1 := p.Run(cfg, in, m1)
	a2 := p.Run(cfg, in, m2)
	if a1 != a2 || m1.Elapsed() != m2.Elapsed() {
		t.Fatal("Run not deterministic")
	}
}

func TestZerosFeatureDiscriminates(t *testing.T) {
	p := New()
	set := p.Features()
	r := rng.New(8)
	top := func(in *MatrixInput) float64 {
		vals, _ := set.ExtractAll(in)
		return vals[set.Index(2, 2)]
	}
	sparse := GenSparse(600, r)
	dense := GenFullRank(600, r)
	if zs, zd := top(sparse), top(dense); zs < 0.7 || zd > 0.1 {
		t.Fatalf("zeros: sparse %v dense %v", zs, zd)
	}
}

func TestFeatureCostsScaleWithLevel(t *testing.T) {
	p := New()
	r := rng.New(9)
	in := GenFullRank(1200, r)
	set := p.Features()
	_, costs := set.ExtractAll(in)
	for prop := 0; prop < set.NumProperties(); prop++ {
		if costs[set.Index(prop, 0)] > costs[set.Index(prop, 2)] {
			t.Fatalf("property %d level-0 cost above level-2 cost", prop)
		}
	}
}

func TestGenerateMixDeterministic(t *testing.T) {
	a := GenerateMix(MixOptions{Count: 6, Seed: 3})
	b := GenerateMix(MixOptions{Count: 6, Seed: 3})
	if len(a) != 6 {
		t.Fatalf("count %d", len(a))
	}
	for i := range a {
		if !a[i].A.EqualTol(b[i].A, 0) {
			t.Fatal("GenerateMix not deterministic")
		}
	}
	kinds := map[string]bool{}
	for _, in := range a {
		kinds[in.Gen] = true
	}
	if len(kinds) < 4 {
		t.Fatalf("mix kinds %d", len(kinds))
	}
}

func TestDimsBounds(t *testing.T) {
	r := rng.New(10)
	for i := 0; i < 100; i++ {
		m, n := dims(r.IntRange(100, 1000), r)
		if m < n || n < 8 || m > 48 {
			t.Fatalf("dims out of contract: %dx%d", m, n)
		}
	}
}
