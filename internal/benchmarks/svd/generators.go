package svd

import (
	"inputtune/internal/linalg"
	"inputtune/internal/rng"
)

// Generator produces a matrix input of roughly the requested element count.
type Generator struct {
	Name string
	Gen  func(elems int, r *rng.RNG) *MatrixInput
}

// Generators spans spectra from rank-1 to flat — the drivers of how many
// singular values the approximation needs.
func Generators() []Generator {
	return []Generator{
		{"low-rank", GenLowRank},
		{"decaying", GenDecaying},
		{"full-rank", GenFullRank},
		{"sparse", GenSparse},
		{"diagonal-heavy", GenDiagonalHeavy},
		{"block", GenBlock},
	}
}

// dims derives (m, n) with m >= n from a target element count.
func dims(elems int, r *rng.RNG) (int, int) {
	n := 8 + r.Intn(17) // 8..24 columns
	m := elems / n
	if m < n {
		m = n
	}
	if m > 48 {
		m = 48
	}
	return m, n
}

// GenLowRank sums r outer products (r ≤ 3) plus faint noise: a tiny rank
// fraction reaches the accuracy target.
func GenLowRank(elems int, r *rng.RNG) *MatrixInput {
	m, n := dims(elems, r)
	rank := r.IntRange(1, 3)
	a := linalg.NewMatrix(m, n)
	for k := 0; k < rank; k++ {
		scale := r.Range(1, 5)
		u := make([]float64, m)
		v := make([]float64, n)
		for i := range u {
			u[i] = r.Norm(0, 1)
		}
		for j := range v {
			v[j] = r.Norm(0, 1)
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, a.At(i, j)+scale*u[i]*v[j])
			}
		}
	}
	for i := range a.Data {
		a.Data[i] += r.Norm(0, 0.01)
	}
	return &MatrixInput{A: a, Gen: "low-rank"}
}

// GenDecaying has geometrically decaying singular values. The decay band
// is kept narrow so the family needs a consistent rank fraction — the
// cheap surface features (deviation, range) identify the family but not an
// individual matrix's spectrum, exactly the paper's svd situation where
// zeros stands in for the unaffordable eigenvalue count.
func GenDecaying(elems int, r *rng.RNG) *MatrixInput {
	m, n := dims(elems, r)
	a := linalg.NewMatrix(m, n)
	decay := r.Range(0.5, 0.62)
	sigma := 5.0
	for k := 0; k < n; k++ {
		u := make([]float64, m)
		v := make([]float64, n)
		for i := range u {
			u[i] = r.Norm(0, 1)
		}
		for j := range v {
			v[j] = r.Norm(0, 1)
		}
		linalg.Normalize(u)
		linalg.Normalize(v)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, a.At(i, j)+sigma*u[i]*v[j])
			}
		}
		sigma *= decay
	}
	return &MatrixInput{A: a, Gen: "decaying"}
}

// GenFullRank is dense i.i.d. noise — a flat spectrum needing nearly all
// singular values.
func GenFullRank(elems int, r *rng.RNG) *MatrixInput {
	m, n := dims(elems, r)
	a := linalg.Random(m, n, r)
	return &MatrixInput{A: a, Gen: "full-rank"}
}

// GenSparse zeroes ~90% of entries — few effective directions.
func GenSparse(elems int, r *rng.RNG) *MatrixInput {
	m, n := dims(elems, r)
	a := linalg.NewMatrix(m, n)
	for i := range a.Data {
		if r.Coin(0.1) {
			a.Data[i] = r.Norm(0, 2)
		}
	}
	return &MatrixInput{A: a, Gen: "sparse"}
}

// GenDiagonalHeavy concentrates mass on the diagonal.
func GenDiagonalHeavy(elems int, r *rng.RNG) *MatrixInput {
	m, n := dims(elems, r)
	a := linalg.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				a.Set(i, j, r.Range(2, 6))
			} else {
				a.Set(i, j, r.Norm(0, 0.05))
			}
		}
	}
	return &MatrixInput{A: a, Gen: "diagonal-heavy"}
}

// GenBlock embeds a few dense blocks in a zero matrix.
func GenBlock(elems int, r *rng.RNG) *MatrixInput {
	m, n := dims(elems, r)
	a := linalg.NewMatrix(m, n)
	blocks := r.IntRange(1, 3)
	for b := 0; b < blocks; b++ {
		bi, bj := r.Intn(m), r.Intn(n)
		bh := r.IntRange(2, 6)
		bw := r.IntRange(2, 6)
		val := r.Range(1, 4)
		for i := bi; i < bi+bh && i < m; i++ {
			for j := bj; j < bj+bw && j < n; j++ {
				a.Set(i, j, val+r.Norm(0, 0.1))
			}
		}
	}
	return &MatrixInput{A: a, Gen: "block"}
}

// MixOptions controls the input battery.
type MixOptions struct {
	Count    int
	MinElems int // default 200
	MaxElems int // default 800
	Seed     uint64
}

// GenerateMix produces a deterministic battery of matrices.
func GenerateMix(opts MixOptions) []*MatrixInput {
	if opts.MinElems <= 0 {
		opts.MinElems = 200
	}
	if opts.MaxElems < opts.MinElems {
		opts.MaxElems = 800
	}
	r := rng.New(opts.Seed)
	gens := Generators()
	out := make([]*MatrixInput, opts.Count)
	for i := range out {
		elems := r.IntRange(opts.MinElems, opts.MaxElems)
		out[i] = gens[i%len(gens)].Gen(elems, r)
	}
	return out
}
