// Package poisson2d reproduces the paper's Poisson 2D benchmark: solve the
// elliptic equation -Δu = f on the unit square with the solver family
// {multigrid (tunable cycle shape), Jacobi, Gauss-Seidel, SOR, direct}. The
// accuracy metric is the log10 ratio of the initial-guess RMS error to the
// final RMS error, relative to the exact discrete solution; threshold 7
// decades.
package poisson2d

import (
	"math"
	"sync"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/engine"
	"inputtune/internal/feature"
	"inputtune/internal/pde"
	"inputtune/internal/rng"
)

// Solver alternatives for the "solver" choice site.
const (
	SolverMultigrid = iota
	SolverJacobi
	SolverGaussSeidel
	SolverSOR
	SolverDirect
	numSolvers

	// SolverFastDirect is the O(N² log N) sine-transform direct solver
	// (pde.FastDirectPoisson2D). It sits AFTER numSolvers because it is
	// opt-in (NewWithFastDirect): extending the default solver site would
	// shift every r.Intn(nAlts) draw in RandomConfig and silently change
	// all established GA trajectories and saved artifacts.
	SolverFastDirect = numSolvers
)

// SolverNames lists the default solvers in site order.
var SolverNames = []string{"multigrid", "jacobi", "gauss-seidel", "sor", "direct"}

// FastDirectName names the opt-in sixth alternative.
const FastDirectName = "fast-direct"

// Problem is a Poisson instance: the right-hand side on an N×N grid.
type Problem struct {
	N   int
	F   *pde.Grid2D
	Gen string

	exactOnce sync.Once
	exact     *pde.Grid2D
	exactRMS  float64

	// fpOnce/fp cache the content fingerprint keying the solver memo;
	// hpool pools multigrid workspaces so concurrent evaluations of this
	// problem never share scratch.
	fpOnce sync.Once
	fp     string
	hpool  sync.Pool
}

// Size implements feature.Input.
func (p *Problem) Size() int { return p.N * p.N }

// exactSolution lazily computes the exact discrete solution via the direct
// sine-transform solver (metric evaluation; never charged).
func (p *Problem) exactSolution() (*pde.Grid2D, float64) {
	p.exactOnce.Do(func() {
		var w pde.Work
		p.exact = pde.DirectPoisson2D(p.F, &w)
		p.exactRMS = p.exact.RMS()
	})
	return p.exact, p.exactRMS
}

// Program is the Poisson 2D benchmark.
type Program struct {
	space    *choice.Space
	set      *feature.Set
	itersIdx int
	omegaIdx int
	cycIdx   int
	preIdx   int
	postIdx  int
	gammaIdx int

	// memo is the sub-run solver-state memo (see solve.go); memoOff is the
	// test hook proving results are identical with the memo disabled.
	memo    engine.Memo
	memoOff bool
}

// New constructs the Poisson 2D program with the paper's five solver
// alternatives.
func New() *Program { return newProgram(false) }

// NewWithFastDirect constructs the program with a sixth "fast-direct"
// alternative: the O(N² log N) DST-backed direct solver. The autotuner
// then weighs it against dense direct and multigrid per input size —
// the raw-speed experiment arm. Kept out of New so default trajectories
// and artifacts stay byte-identical.
func NewWithFastDirect() *Program { return newProgram(true) }

func newProgram(fastDirect bool) *Program {
	p := &Program{}
	p.space = choice.NewSpace()
	names := SolverNames
	if fastDirect {
		names = append(append([]string(nil), SolverNames...), FastDirectName)
	}
	p.space.AddSite("solver", names...)
	p.itersIdx = p.space.AddInt("iterations", 1, 300, 60)
	p.omegaIdx = p.space.AddFloat("omega", 1.0, 1.95, 1.5)
	p.cycIdx = p.space.AddInt("mgCycles", 1, 16, 6)
	p.preIdx = p.space.AddInt("mgPre", 0, 3, 2)
	p.postIdx = p.space.AddInt("mgPost", 0, 3, 2)
	p.gammaIdx = p.space.AddInt("gamma", 1, 2, 1)
	// Selector→tunable dependency graph: the sweep count is read only by
	// the stationary iterative solvers, the over-relaxation factor only by
	// SOR, and the cycle-shape knobs only by multigrid. Direct solvers
	// read no tunables at all, so their genes are dead and the tuner
	// collapses such variants before evaluating them.
	p.space.DependsOn(p.itersIdx, 0, SolverJacobi, SolverGaussSeidel, SolverSOR)
	p.space.DependsOn(p.omegaIdx, 0, SolverSOR)
	p.space.DependsOn(p.cycIdx, 0, SolverMultigrid)
	p.space.DependsOn(p.preIdx, 0, SolverMultigrid)
	p.space.DependsOn(p.postIdx, 0, SolverMultigrid)
	p.space.DependsOn(p.gammaIdx, 0, SolverMultigrid)
	p.set = newFeatureSet2D()
	return p
}

// Name implements core.Program.
func (p *Program) Name() string { return "poisson2d" }

// Space implements core.Program.
func (p *Program) Space() *choice.Space { return p.space }

// Features implements core.Program.
func (p *Program) Features() *feature.Set { return p.set }

// HasAccuracy implements core.Program.
func (p *Program) HasAccuracy() bool { return true }

// AccuracyThreshold implements core.Program: the paper sets 7 (decades).
func (p *Program) AccuracyThreshold() float64 { return 7 }

// Run solves the instance with the configured solver and returns the
// achieved decades of error reduction.
func (p *Program) Run(cfg *choice.Config, in feature.Input, meter *cost.Meter) float64 {
	prob := in.(*Problem)
	solver := cfg.Decide(0, prob.Size())
	var w pde.Work
	var u *pde.Grid2D
	switch solver {
	case SolverDirect:
		u = pde.DirectPoisson2D(prob.F, &w)
	case SolverFastDirect:
		u = pde.FastDirectPoisson2D(prob.F, &w)
	case SolverJacobi:
		u = p.smoothSolve(prob, smootherJacobi, 0.8, cfg.Int(p.itersIdx), &w)
	case SolverGaussSeidel:
		u = p.smoothSolve(prob, smootherSOR, 1.0, cfg.Int(p.itersIdx), &w)
	case SolverSOR:
		u = p.smoothSolve(prob, smootherSOR, cfg.Float(p.omegaIdx), cfg.Int(p.itersIdx), &w)
	default: // SolverMultigrid
		opt := pde.MGOptions2D{
			Pre:   cfg.Int(p.preIdx),
			Post:  cfg.Int(p.postIdx),
			Gamma: cfg.Int(p.gammaIdx),
			Omega: 1.0,
		}
		if opt.Pre == 0 && opt.Post == 0 {
			opt.Post = 1 // a smoother-free cycle cannot converge
		}
		u = p.mgSolve(prob, opt, cfg.Int(p.cycIdx), &w)
	}
	meter.Charge(cost.Flop, w.Flops)
	exact, exactRMS := prob.exactSolution()
	if exactRMS <= 1e-300 {
		return 14 // zero RHS: the zero guess is already exact
	}
	err := u.SubRMS(exact)
	if err <= exactRMS*1e-14 {
		return 14
	}
	acc := math.Log10(exactRMS / err)
	if acc < 0 {
		acc = 0
	}
	return acc
}

// newFeatureSet2D builds the paper's three features for this benchmark:
// the residual measure of the input, its standard deviation, and its count
// of (near-)zeros, each at three sampling levels.
func newFeatureSet2D() *feature.Set {
	return feature.MustNewSet(
		feature.Extractor{Name: "residual", Levels: []feature.LevelFunc{
			residualLevel(64), residualLevel(512), residualLevel(0),
		}},
		feature.Extractor{Name: "deviation", Levels: []feature.LevelFunc{
			deviationLevel(64), deviationLevel(512), deviationLevel(0),
		}},
		feature.Extractor{Name: "zeros", Levels: []feature.LevelFunc{
			zerosLevel(64), zerosLevel(512), zerosLevel(0),
		}},
	)
}

func strideFor(budget, n int) int {
	if budget <= 0 || budget >= n {
		return 1
	}
	return n / budget
}

// residualLevel is the RMS of the right-hand side — the residual of the
// zero initial guess.
func residualLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		f := in.(*Problem).F.Data
		stride := strideFor(budget, len(f))
		var sum, cnt float64
		for i := 0; i < len(f); i += stride {
			m.Charge1(cost.Scan)
			sum += f[i] * f[i]
			cnt++
		}
		return math.Sqrt(sum / cnt)
	}
}

func deviationLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		f := in.(*Problem).F.Data
		stride := strideFor(budget, len(f))
		var sum, sumsq, cnt float64
		for i := 0; i < len(f); i += stride {
			m.Charge1(cost.Scan)
			sum += f[i]
			sumsq += f[i] * f[i]
			cnt++
		}
		mean := sum / cnt
		v := sumsq/cnt - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v)
	}
}

func zerosLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		f := in.(*Problem).F.Data
		stride := strideFor(budget, len(f))
		var zeros, cnt float64
		for i := 0; i < len(f); i += stride {
			m.Charge1(cost.Scan)
			if math.Abs(f[i]) < 1e-12 {
				zeros++
			}
			cnt++
		}
		return zeros / cnt
	}
}

// --- input generators ----------------------------------------------------

// Generator produces a Poisson instance on an N×N grid.
type Generator struct {
	Name string
	Gen  func(n int, r *rng.RNG) *Problem
}

// Generators spans smooth, oscillatory, localised and noisy right-hand
// sides.
func Generators() []Generator {
	return []Generator{
		{"smooth", GenSmooth},
		{"highfreq", GenHighFreq},
		{"point-sources", GenPointSources},
		{"sparse", GenSparse},
		{"noise", GenNoise},
		{"mixed", GenMixed},
	}
}

func newProblem(n int, gen string) *Problem {
	return &Problem{N: n, F: pde.NewGrid2D(n), Gen: gen}
}

// GenSmooth combines a few low-frequency sine modes — the classic hard
// case for plain smoothers, multigrid's home turf.
func GenSmooth(n int, r *rng.RNG) *Problem {
	p := newProblem(n, "smooth")
	h := 1.0 / float64(n+1)
	modes := r.IntRange(1, 3)
	for mth := 0; mth < modes; mth++ {
		a, b := r.IntRange(1, 3), r.IntRange(1, 3)
		amp := r.Range(0.5, 2)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				x, y := float64(i+1)*h, float64(j+1)*h
				p.F.Set(i, j, p.F.At(i, j)+amp*math.Sin(float64(a)*math.Pi*x)*math.Sin(float64(b)*math.Pi*y))
			}
		}
	}
	return p
}

// GenHighFreq uses modes near the grid Nyquist — smoothers kill these in a
// handful of sweeps, so cheap iterative solvers suffice.
func GenHighFreq(n int, r *rng.RNG) *Problem {
	p := newProblem(n, "highfreq")
	h := 1.0 / float64(n+1)
	a := n - r.IntRange(0, 2)
	b := n - r.IntRange(0, 2)
	amp := r.Range(0.5, 2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(i+1)*h, float64(j+1)*h
			p.F.Set(i, j, amp*math.Sin(float64(a)*math.Pi*x)*math.Sin(float64(b)*math.Pi*y))
		}
	}
	return p
}

// GenPointSources places a few delta spikes.
func GenPointSources(n int, r *rng.RNG) *Problem {
	p := newProblem(n, "point-sources")
	k := r.IntRange(1, 5)
	for s := 0; s < k; s++ {
		p.F.Set(r.Intn(n), r.Intn(n), r.Range(5, 20)/(1.0/float64(n+1)))
	}
	return p
}

// GenSparse fills ~5% of cells with noise.
func GenSparse(n int, r *rng.RNG) *Problem {
	p := newProblem(n, "sparse")
	for i := range p.F.Data {
		if r.Coin(0.05) {
			p.F.Data[i] = r.Norm(0, 5)
		}
	}
	return p
}

// GenNoise is dense i.i.d. noise (energy across all frequencies).
func GenNoise(n int, r *rng.RNG) *Problem {
	p := newProblem(n, "noise")
	for i := range p.F.Data {
		p.F.Data[i] = r.Norm(0, 1)
	}
	return p
}

// GenMixed is smooth plus 10% noise.
func GenMixed(n int, r *rng.RNG) *Problem {
	p := GenSmooth(n, r)
	p.Gen = "mixed"
	for i := range p.F.Data {
		p.F.Data[i] += r.Norm(0, 0.1)
	}
	return p
}

// MixOptions controls the input battery.
type MixOptions struct {
	Count int
	Seed  uint64
	// Sizes are the grid dimensions to cycle through (default {31, 63},
	// straddling the direct/multigrid cost crossover, with an occasional
	// 127). Multigrid needs 2^k - 1.
	Sizes []int
}

// GenerateMix produces a deterministic battery of Poisson instances.
func GenerateMix(opts MixOptions) []*Problem {
	if len(opts.Sizes) == 0 {
		opts.Sizes = []int{31, 63}
	}
	r := rng.New(opts.Seed)
	gens := Generators()
	out := make([]*Problem, opts.Count)
	for i := range out {
		n := opts.Sizes[r.Intn(len(opts.Sizes))]
		if i%8 == 7 {
			n = 127 // occasional large instance exercises size selectors
		}
		out[i] = gens[i%len(gens)].Gen(n, r)
	}
	return out
}
