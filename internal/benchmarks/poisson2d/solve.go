package poisson2d

import (
	"math"
	"strconv"

	"inputtune/internal/engine"
	"inputtune/internal/pde"
)

// This file is the solver plumbing behind Program.Run: per-problem
// multigrid hierarchies (pooled, so concurrent evaluations of one problem
// never share scratch) and the sub-run solver-state memo layered on
// engine.Memo. The memo resumes a solve from the longest stored
// (problem fingerprint, solver-parameter prefix) state — the GA breeds
// populations full of genomes that differ only in iteration/cycle count or
// in tunables the selected solver ignores, and all of those share work
// here. Resumed solves are bit-identical to from-scratch solves (the
// stored state and flop total are exact), so results never depend on memo
// contents; memoOff is the A/B test hook that proves it.

// Smoother kinds for the iterative solver family. Gauss-Seidel is SOR at
// omega = 1, so the two share memo stems by construction.
const (
	smootherJacobi = byte('j')
	smootherSOR    = byte('s')
)

// solveSnap is one memoized solver state: the solution grid after a known
// number of sweeps/cycles, plus the exact flops spent producing it from
// the zero guess. Immutable once stored.
type solveSnap struct {
	data  []float64
	flops int
}

// fingerprint lazily content-hashes the problem (the solve depends only on
// N and the right-hand side).
func (p *Problem) fingerprint() string {
	p.fpOnce.Do(func() {
		p.fp = engine.Fingerprint([]uint64{uint64(p.N)}, p.F.Data)
	})
	return p.fp
}

// hier checks a multigrid workspace out of the problem's pool.
func (p *Problem) hier() *pde.Hierarchy2D {
	if h, ok := p.hpool.Get().(*pde.Hierarchy2D); ok {
		return h
	}
	return pde.NewHierarchy2D(p.N)
}

func (p *Problem) putHier(h *pde.Hierarchy2D) { p.hpool.Put(h) }

// SolverMemoStats exposes the sub-run solver-state memo counters; the
// bench runner surfaces them as solver_memo_hits / solver_memo_misses.
func (p *Program) SolverMemoStats() engine.MemoStats { return p.memo.Stats() }

// smoothSolve runs sweeps of one pointwise smoother from the zero guess,
// resuming from the longest memoized prefix with the same smoother and
// omega.
func (p *Program) smoothSolve(prob *Problem, kind byte, omega float64, sweeps int, w *pde.Work) *pde.Grid2D {
	u := pde.NewGrid2D(prob.N)
	var stem string
	start, base := 0, 0
	if !p.memoOff {
		stem = prob.fingerprint() + "|s" + string(kind) + "|" +
			strconv.FormatUint(math.Float64bits(omega), 16) + "|"
		if v, k, ok := p.memo.LongestPrefix(stem, sweeps); ok {
			s := v.(solveSnap)
			copy(u.Data, s.data)
			start, base = k, s.flops
		}
	}
	var cw pde.Work
	if start < sweeps {
		if kind == smootherJacobi {
			h := prob.hier()
			for it := start; it < sweeps; it++ {
				h.Jacobi(u, prob.F, omega, &cw)
			}
			prob.putHier(h)
		} else {
			for it := start; it < sweeps; it++ {
				pde.SOR2D(u, prob.F, omega, &cw)
			}
		}
	}
	total := base + cw.Flops
	if !p.memoOff && start < sweeps {
		p.memo.PutStep(stem, sweeps, solveSnap{data: append([]float64(nil), u.Data...), flops: total})
	}
	w.Flops += total
	return u
}

// mgSolve runs multigrid cycles from the zero guess on a pooled hierarchy,
// resuming from the longest memoized prefix with the same cycle shape.
func (p *Program) mgSolve(prob *Problem, opt pde.MGOptions2D, cycles int, w *pde.Work) *pde.Grid2D {
	u := pde.NewGrid2D(prob.N)
	var stem string
	start, base := 0, 0
	if !p.memoOff {
		stem = prob.fingerprint() + "|mg|" +
			strconv.Itoa(opt.Pre) + "," + strconv.Itoa(opt.Post) + "," + strconv.Itoa(opt.Gamma) + "," +
			strconv.FormatUint(math.Float64bits(opt.Omega), 16) + "|"
		if v, k, ok := p.memo.LongestPrefix(stem, cycles); ok {
			s := v.(solveSnap)
			copy(u.Data, s.data)
			start, base = k, s.flops
		}
	}
	var cw pde.Work
	if start < cycles {
		h := prob.hier()
		for c := start; c < cycles; c++ {
			h.Cycle(u, prob.F, opt, &cw)
		}
		prob.putHier(h)
	}
	total := base + cw.Flops
	if !p.memoOff && start < cycles {
		p.memo.PutStep(stem, cycles, solveSnap{data: append([]float64(nil), u.Data...), flops: total})
	}
	w.Flops += total
	return u
}
