package poisson2d

import (
	"bytes"
	"testing"

	"inputtune/internal/choice"
	"inputtune/internal/core"
	"inputtune/internal/cost"
	"inputtune/internal/rng"
)

// memoConfigs builds a battery of configurations that share solver
// prefixes in every way the memo exploits: same cycle shape at different
// cycle counts, same smoother at different sweep counts, and genomes that
// differ only in tunables the selected solver ignores.
func memoConfigs(p *Program) []*choice.Config {
	var cfgs []*choice.Config
	for _, cycles := range []int{6, 3, 8, 6} {
		c := cfgSolver(p, SolverMultigrid)
		c.Values[p.cycIdx] = float64(cycles)
		cfgs = append(cfgs, c)
	}
	// Same cycle shape, different irrelevant iteration tunable.
	c := cfgSolver(p, SolverMultigrid)
	c.Values[p.cycIdx] = 6
	c.Values[p.itersIdx] = 250
	cfgs = append(cfgs, c)
	for _, iters := range []int{40, 25, 60} {
		c := cfgSolver(p, SolverSOR)
		c.Values[p.itersIdx] = float64(iters)
		c.Values[p.omegaIdx] = 1.5
		cfgs = append(cfgs, c)
	}
	// Gauss-Seidel shares stems with SOR at omega = 1.
	c = cfgSolver(p, SolverGaussSeidel)
	c.Values[p.itersIdx] = 30
	cfgs = append(cfgs, c)
	c = cfgSolver(p, SolverSOR)
	c.Values[p.itersIdx] = 45
	c.Values[p.omegaIdx] = 1.0
	cfgs = append(cfgs, c)
	c = cfgSolver(p, SolverJacobi)
	c.Values[p.itersIdx] = 35
	cfgs = append(cfgs, c)
	cfgs = append(cfgs, cfgSolver(p, SolverDirect))
	return cfgs
}

// TestSolverMemoBitIdentical proves a memo-warm Run returns exactly the
// measurement a memo-cold Run does, for every configuration, in multiple
// evaluation orders.
func TestSolverMemoBitIdentical(t *testing.T) {
	r := rng.New(41)
	probs := []*Problem{GenSmooth(31, r), GenNoise(15, r), GenPointSources(31, r)}

	cold := New()
	cold.memoOff = true
	want := make(map[int]map[int][2]float64)
	cfgs := memoConfigs(cold)
	for pi, prob := range probs {
		want[pi] = make(map[int][2]float64)
		for ci, cfg := range cfgs {
			m := cost.NewMeter()
			acc := cold.Run(cfg, prob, m)
			want[pi][ci] = [2]float64{m.Elapsed(), acc}
		}
	}

	for _, order := range [][]int{forwardOrder(len(cfgs)), reverseOrder(len(cfgs))} {
		warm := New()
		warmCfgs := memoConfigs(warm)
		for pass := 0; pass < 2; pass++ { // second pass hits every stem exactly
			for pi, prob := range probs {
				for _, ci := range order {
					m := cost.NewMeter()
					acc := warm.Run(warmCfgs[ci], prob, m)
					if got := [2]float64{m.Elapsed(), acc}; got != want[pi][ci] {
						t.Fatalf("prob %d cfg %d pass %d: memo-warm (time %v, acc %v) != cold (time %v, acc %v)",
							pi, ci, pass, got[0], got[1], want[pi][ci][0], want[pi][ci][1])
					}
				}
			}
		}
		if st := warm.SolverMemoStats(); st.Hits == 0 {
			t.Fatal("memo recorded no hits across overlapping configurations")
		}
	}
}

func forwardOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

func reverseOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = n - 1 - i
	}
	return o
}

// TestTrainModelMemoParity proves end-to-end training serialises to the
// exact same bytes with the solver memo on and off — the same guarantee
// the engine cache and the presorted-tree backbone carry.
func TestTrainModelMemoParity(t *testing.T) {
	train := func(memoOff bool) []byte {
		p := New()
		p.memoOff = memoOff
		var inputs []core.Input
		for _, pr := range GenerateMix(MixOptions{Count: 12, Seed: 9, Sizes: []int{15, 31}}) {
			inputs = append(inputs, pr)
		}
		m := core.TrainModel(p, inputs, core.Options{
			K1: 3, Seed: 5, TunerPopulation: 6, TunerGenerations: 4,
		})
		var buf bytes.Buffer
		if err := core.SaveModel(m, &buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		return buf.Bytes()
	}
	withMemo := train(false)
	without := train(true)
	if !bytes.Equal(withMemo, without) {
		t.Fatal("SaveModel bytes differ between memo-on and memo-off training")
	}
}
