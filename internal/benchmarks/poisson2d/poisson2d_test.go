package poisson2d

import (
	"testing"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/rng"
)

func cfgSolver(p *Program, solver int) *choice.Config {
	c := p.Space().DefaultConfig()
	c.Selectors[0].Else = solver
	return c
}

func TestDirectHitsMachinePrecision(t *testing.T) {
	p := New()
	r := rng.New(1)
	prob := GenSmooth(31, r)
	acc := p.Run(cfgSolver(p, SolverDirect), prob, cost.NewMeter())
	if acc < 12 {
		t.Fatalf("direct accuracy = %v decades", acc)
	}
}

func TestMultigridMeetsThreshold(t *testing.T) {
	p := New()
	r := rng.New(2)
	for _, gen := range Generators() {
		prob := gen.Gen(31, r)
		cfg := cfgSolver(p, SolverMultigrid)
		cfg.Values[p.cycIdx] = 10
		acc := p.Run(cfg, prob, cost.NewMeter())
		if acc < p.AccuracyThreshold() {
			t.Fatalf("multigrid only %v decades on %s", acc, gen.Name)
		}
	}
}

func TestJacobiInsufficientOnSmooth(t *testing.T) {
	p := New()
	r := rng.New(3)
	prob := GenSmooth(31, r)
	cfg := cfgSolver(p, SolverJacobi)
	cfg.Values[p.itersIdx] = 300
	acc := p.Run(cfg, prob, cost.NewMeter())
	if acc >= p.AccuracyThreshold() {
		t.Fatalf("Jacobi reached %v decades on smooth RHS at N=31; sensitivity premise broken", acc)
	}
}

func TestSORFeasibleOnHighFreq(t *testing.T) {
	p := New()
	r := rng.New(4)
	prob := GenHighFreq(31, r)
	cfg := cfgSolver(p, SolverSOR)
	cfg.Values[p.itersIdx] = 120
	cfg.Values[p.omegaIdx] = 1.5
	acc := p.Run(cfg, prob, cost.NewMeter())
	if acc < p.AccuracyThreshold() {
		t.Fatalf("SOR only %v decades on high-frequency RHS", acc)
	}
}

func TestIterationsTradeTimeForAccuracy(t *testing.T) {
	p := New()
	r := rng.New(5)
	prob := GenMixed(15, r)
	cfg := cfgSolver(p, SolverSOR)
	var prevAcc, prevCost float64
	for i, iters := range []float64{10, 50, 200} {
		cfg.Values[p.itersIdx] = iters
		m := cost.NewMeter()
		acc := p.Run(cfg, prob, m)
		if i > 0 {
			if m.Elapsed() <= prevCost {
				t.Fatalf("more iterations not more expensive: %v <= %v", m.Elapsed(), prevCost)
			}
			if acc < prevAcc-0.1 {
				t.Fatalf("more iterations less accurate: %v -> %v", prevAcc, acc)
			}
		}
		prevAcc, prevCost = acc, m.Elapsed()
	}
}

func TestCrossoverDirectVsMultigridBySize(t *testing.T) {
	// Direct is O(N³), multigrid O(N²) per cycle: at N=63 multigrid should
	// be cheaper than direct while still feasible.
	p := New()
	r := rng.New(6)
	prob := GenSmooth(63, r)
	mDir, mMG := cost.NewMeter(), cost.NewMeter()
	p.Run(cfgSolver(p, SolverDirect), prob, mDir)
	cfgMG := cfgSolver(p, SolverMultigrid)
	cfgMG.Values[p.cycIdx] = 8
	accMG := p.Run(cfgMG, prob, mMG)
	if accMG < p.AccuracyThreshold() {
		t.Fatalf("multigrid infeasible at N=63 (%v decades)", accMG)
	}
	if mMG.Elapsed() >= mDir.Elapsed() {
		t.Fatalf("multigrid cost %v not below direct %v at N=63", mMG.Elapsed(), mDir.Elapsed())
	}
}

func TestRunDeterministic(t *testing.T) {
	p := New()
	r := rng.New(7)
	prob := GenNoise(15, r)
	cfg := cfgSolver(p, SolverMultigrid)
	m1, m2 := cost.NewMeter(), cost.NewMeter()
	a1 := p.Run(cfg, prob, m1)
	a2 := p.Run(cfg, prob, m2)
	if a1 != a2 || m1.Elapsed() != m2.Elapsed() {
		t.Fatal("Run not deterministic")
	}
}

func TestZerosFeatureDiscriminates(t *testing.T) {
	p := New()
	set := p.Features()
	r := rng.New(8)
	top := func(prob *Problem) float64 {
		vals, _ := set.ExtractAll(prob)
		return vals[set.Index(2, 2)]
	}
	sparse := GenSparse(31, r)
	noise := GenNoise(31, r)
	if zs, zn := top(sparse), top(noise); zs < 0.8 || zn > 0.05 {
		t.Fatalf("zeros: sparse %v noise %v", zs, zn)
	}
}

func TestResidualFeatureScalesWithRHS(t *testing.T) {
	p := New()
	set := p.Features()
	r := rng.New(9)
	prob := GenSmooth(15, r)
	vals, _ := set.ExtractAll(prob)
	small := vals[set.Index(0, 2)]
	// Double the RHS: residual should double.
	for i := range prob.F.Data {
		prob.F.Data[i] *= 2
	}
	vals2, _ := set.ExtractAll(prob)
	big := vals2[set.Index(0, 2)]
	if big < 1.8*small || big > 2.2*small {
		t.Fatalf("residual %v -> %v under RHS doubling", small, big)
	}
}

func TestGenerateMixSizes(t *testing.T) {
	probs := GenerateMix(MixOptions{Count: 20, Seed: 1})
	if len(probs) != 20 {
		t.Fatalf("count %d", len(probs))
	}
	saw127 := false
	for _, pr := range probs {
		switch pr.N {
		case 31, 63:
		case 127:
			saw127 = true
		default:
			t.Fatalf("unexpected grid size %d", pr.N)
		}
	}
	if !saw127 {
		t.Fatal("mix never produced a 127-grid instance")
	}
}
