package helmholtz3d

import (
	"math"
	"strconv"

	"inputtune/internal/engine"
	"inputtune/internal/pde"
)

// Solver plumbing behind Program.Run, mirroring poisson2d/solve.go: the
// problem's coarsened operator chain is built once (sync.Once) and shared
// read-only, multigrid workspaces over it are pooled, and every iterative
// solve resumes from the longest (problem fingerprint, solver-parameter
// prefix) state memoized in engine.Memo. Resumed solves are bit-identical
// to from-scratch solves; memoOff is the A/B test hook.

// Smoother kinds. Gauss-Seidel is SOR at omega = 1 and shares its stems.
const (
	smootherJacobi = byte('j')
	smootherSOR    = byte('s')
)

// solveSnap is one memoized solver state: the solution grid after a known
// number of sweeps/cycles plus the exact flops spent producing it from the
// zero guess. Immutable once stored.
type solveSnap struct {
	data  []float64
	flops int
}

// fingerprint lazily content-hashes the problem: the solve depends on the
// operator (a, c) as well as the right-hand side.
func (p *Problem) fingerprint() string {
	p.fpOnce.Do(func() {
		p.fp = engine.Fingerprint(
			[]uint64{uint64(p.N), math.Float64bits(p.Op.C)}, p.Op.A.Data, p.F.Data)
	})
	return p.fp
}

// opChain lazily builds the coarsened operator ladder, shared by every
// hierarchy (and goroutine) solving this problem.
func (p *Problem) opChain() *pde.OpChain3D {
	p.chainOnce.Do(func() {
		p.chain = pde.NewOpChain3D(p.Op)
	})
	return p.chain
}

// hier checks a multigrid workspace out of the problem's pool.
func (p *Problem) hier() *pde.Hierarchy3D {
	if h, ok := p.hpool.Get().(*pde.Hierarchy3D); ok {
		return h
	}
	return pde.NewHierarchy3DFromChain(p.opChain())
}

func (p *Problem) putHier(h *pde.Hierarchy3D) { p.hpool.Put(h) }

// SolverMemoStats exposes the sub-run solver-state memo counters; the
// bench runner surfaces them as solver_memo_hits / solver_memo_misses.
func (p *Program) SolverMemoStats() engine.MemoStats { return p.memo.Stats() }

// smoothSolve runs sweeps of one pointwise smoother from the zero guess,
// resuming from the longest memoized prefix with the same smoother and
// omega.
func (p *Program) smoothSolve(prob *Problem, kind byte, omega float64, sweeps int, w *pde.Work) *pde.Grid3D {
	u := pde.NewGrid3D(prob.N)
	var stem string
	start, base := 0, 0
	if !p.memoOff {
		stem = prob.fingerprint() + "|s" + string(kind) + "|" +
			strconv.FormatUint(math.Float64bits(omega), 16) + "|"
		if v, k, ok := p.memo.LongestPrefix(stem, sweeps); ok {
			s := v.(solveSnap)
			copy(u.Data, s.data)
			start, base = k, s.flops
		}
	}
	var cw pde.Work
	if start < sweeps {
		if kind == smootherJacobi {
			// Only Jacobi needs workspace (its out-of-place scratch buffer).
			h := prob.hier()
			for it := start; it < sweeps; it++ {
				h.Jacobi(u, prob.F, omega, &cw)
			}
			prob.putHier(h)
		} else {
			for it := start; it < sweeps; it++ {
				pde.SOR3D(prob.Op, u, prob.F, omega, &cw)
			}
		}
	}
	total := base + cw.Flops
	if !p.memoOff && start < sweeps {
		p.memo.PutStep(stem, sweeps, solveSnap{data: append([]float64(nil), u.Data...), flops: total})
	}
	w.Flops += total
	return u
}

// mgSolve runs multigrid cycles from the zero guess on a pooled hierarchy,
// resuming from the longest memoized prefix with the same cycle shape —
// and, when no full-cycle prefix exists, assembling the FIRST cycle out
// of states shared with other genomes:
//
//   - Cycle 1's fine-level pre-smooth starts from the zero guess, so its
//     Pre sweeps are bit-for-bit the first Pre sweeps of the plain SOR
//     solve at the same omega. They resume from and feed the plain
//     smoother stem ("|ss|"), which every Gauss-Seidel genome (SOR at
//     omega 1, the fine-level omega Run always passes) also populates.
//   - On TWO-LEVEL ladders (fine grid coarsens straight to the ≤3 base
//     case, i.e. the benchmark's N=7 instances), the coarse solve is a
//     fixed 8-sweep SOR at omega 1 that never reads opt.Post, so the
//     state after cycle 1's pre-smooth + coarse correction is a pure
//     function of (Pre, Gamma, omega). It is checkpointed under a
//     half-cycle stem with exactly that key, and genomes differing in
//     Post share everything up to the first post-smooth. On deeper
//     ladders Post reaches the coarse cycles' own post-smooths, so the
//     checkpoint would need the full shape key and add nothing over the
//     full-cycle stem — it is skipped there.
//
// A flat key canonicalisation such as collapsing (Pre, Post) with
// (Post, Pre) — "pre/post exchange symmetry" — would be unsound:
// smoothing and coarse correction do not commute (S^b·K·S^a ≠ S^a·K·S^b
// already in exact arithmetic), so those shapes produce different
// states. The phase checkpoints capture the sharing that IS exact, and
// resumed solves stay bit-identical to from-scratch solves (A/B-tested
// against memoOff): every phase runs the arithmetic Hierarchy3D.Cycle
// runs, in the same order, on the same scratch.
func (p *Program) mgSolve(prob *Problem, opt pde.MGOptions3D, cycles int, w *pde.Work) *pde.Grid3D {
	// Apply Cycle's clamps up front so the stems below never key one
	// effective cycle shape under two names.
	if opt.Gamma < 1 {
		opt.Gamma = 1
	}
	if opt.Omega <= 0 {
		opt.Omega = 1
	}
	u := pde.NewGrid3D(prob.N)
	var stem string
	start, base := 0, 0
	if !p.memoOff {
		stem = prob.fingerprint() + "|mg|" +
			strconv.Itoa(opt.Pre) + "," + strconv.Itoa(opt.Post) + "," + strconv.Itoa(opt.Gamma) + "," +
			strconv.FormatUint(math.Float64bits(opt.Omega), 16) + "|"
		if v, k, ok := p.memo.LongestPrefix(stem, cycles); ok {
			s := v.(solveSnap)
			copy(u.Data, s.data)
			start, base = k, s.flops
		}
	}
	var cw pde.Work
	if start < cycles {
		h := prob.hier()
		if start == 0 && !p.memoOff && prob.N > 3 {
			base = p.firstCycle(prob, h, u, opt)
			start = 1
			// Checkpoint the completed first cycle under the full-cycle
			// stem too: step 1 is the prefix every larger mgCycles count
			// of this shape extends.
			p.memo.PutStep(stem, 1, solveSnap{data: append([]float64(nil), u.Data...), flops: base})
		}
		for c := start; c < cycles; c++ {
			h.Cycle(u, prob.F, opt, &cw)
		}
		prob.putHier(h)
	}
	total := base + cw.Flops
	if !p.memoOff && start < cycles {
		p.memo.PutStep(stem, cycles, solveSnap{data: append([]float64(nil), u.Data...), flops: total})
	}
	w.Flops += total
	return u
}

// firstCycle advances the zero guess through one full cycle of shape opt
// (clamped, fine grid above coarsest size), resuming from and feeding
// the cross-genome phase checkpoints described on mgSolve. It returns
// the from-zero flop total after the cycle; snapshot flop totals compose
// additively because sweep charges are deterministic in the grid size,
// so a resumed total equals the from-scratch total exactly.
func (p *Program) firstCycle(prob *Problem, h *pde.Hierarchy3D, u *pde.Grid3D, opt pde.MGOptions3D) int {
	fp := prob.fingerprint()
	omegaBits := strconv.FormatUint(math.Float64bits(opt.Omega), 16)
	// Post-independence of the half-cycle state holds only when the
	// ladder is two levels deep (see the soundness note on mgSolve).
	twoLevel := (prob.N-1)/2 <= 3
	halfStem := ""
	if twoLevel {
		halfStem = fp + "|mgc|" +
			strconv.Itoa(opt.Pre) + "," + strconv.Itoa(opt.Gamma) + "," + omegaBits + "|"
	}
	var cw pde.Work
	base := 0
	var half any
	if twoLevel {
		half, _, _ = p.memo.LongestPrefix(halfStem, 1)
	}
	if half != nil {
		s := half.(solveSnap)
		copy(u.Data, s.data)
		base = s.flops
	} else {
		preDone := 0
		if opt.Pre > 0 {
			sorStem := fp + "|s" + string(smootherSOR) + "|" + omegaBits + "|"
			if v, k, ok := p.memo.LongestPrefix(sorStem, opt.Pre); ok {
				s := v.(solveSnap)
				copy(u.Data, s.data)
				preDone, base = k, s.flops
			}
			for s := preDone; s < opt.Pre; s++ {
				h.SOR(u, prob.F, opt.Omega, &cw)
			}
			if preDone < opt.Pre {
				p.memo.PutStep(sorStem, opt.Pre,
					solveSnap{data: append([]float64(nil), u.Data...), flops: base + cw.Flops})
			}
		}
		h.CoarseCorrect(u, prob.F, opt, &cw)
		if twoLevel {
			p.memo.PutStep(halfStem, 1,
				solveSnap{data: append([]float64(nil), u.Data...), flops: base + cw.Flops})
		}
	}
	for s := 0; s < opt.Post; s++ {
		h.SOR(u, prob.F, opt.Omega, &cw)
	}
	return base + cw.Flops
}
