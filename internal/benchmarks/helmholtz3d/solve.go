package helmholtz3d

import (
	"math"
	"strconv"

	"inputtune/internal/engine"
	"inputtune/internal/pde"
)

// Solver plumbing behind Program.Run, mirroring poisson2d/solve.go: the
// problem's coarsened operator chain is built once (sync.Once) and shared
// read-only, multigrid workspaces over it are pooled, and every iterative
// solve resumes from the longest (problem fingerprint, solver-parameter
// prefix) state memoized in engine.Memo. Resumed solves are bit-identical
// to from-scratch solves; memoOff is the A/B test hook.

// Smoother kinds. Gauss-Seidel is SOR at omega = 1 and shares its stems.
const (
	smootherJacobi = byte('j')
	smootherSOR    = byte('s')
)

// solveSnap is one memoized solver state: the solution grid after a known
// number of sweeps/cycles plus the exact flops spent producing it from the
// zero guess. Immutable once stored.
type solveSnap struct {
	data  []float64
	flops int
}

// fingerprint lazily content-hashes the problem: the solve depends on the
// operator (a, c) as well as the right-hand side.
func (p *Problem) fingerprint() string {
	p.fpOnce.Do(func() {
		p.fp = engine.Fingerprint(
			[]uint64{uint64(p.N), math.Float64bits(p.Op.C)}, p.Op.A.Data, p.F.Data)
	})
	return p.fp
}

// opChain lazily builds the coarsened operator ladder, shared by every
// hierarchy (and goroutine) solving this problem.
func (p *Problem) opChain() *pde.OpChain3D {
	p.chainOnce.Do(func() {
		p.chain = pde.NewOpChain3D(p.Op)
	})
	return p.chain
}

// hier checks a multigrid workspace out of the problem's pool.
func (p *Problem) hier() *pde.Hierarchy3D {
	if h, ok := p.hpool.Get().(*pde.Hierarchy3D); ok {
		return h
	}
	return pde.NewHierarchy3DFromChain(p.opChain())
}

func (p *Problem) putHier(h *pde.Hierarchy3D) { p.hpool.Put(h) }

// SolverMemoStats exposes the sub-run solver-state memo counters; the
// bench runner surfaces them as solver_memo_hits / solver_memo_misses.
func (p *Program) SolverMemoStats() engine.MemoStats { return p.memo.Stats() }

// smoothSolve runs sweeps of one pointwise smoother from the zero guess,
// resuming from the longest memoized prefix with the same smoother and
// omega.
func (p *Program) smoothSolve(prob *Problem, kind byte, omega float64, sweeps int, w *pde.Work) *pde.Grid3D {
	u := pde.NewGrid3D(prob.N)
	var stem string
	start, base := 0, 0
	if !p.memoOff {
		stem = prob.fingerprint() + "|s" + string(kind) + "|" +
			strconv.FormatUint(math.Float64bits(omega), 16) + "|"
		if v, k, ok := p.memo.LongestPrefix(stem, sweeps); ok {
			s := v.(solveSnap)
			copy(u.Data, s.data)
			start, base = k, s.flops
		}
	}
	var cw pde.Work
	if start < sweeps {
		if kind == smootherJacobi {
			// Only Jacobi needs workspace (its out-of-place scratch buffer).
			h := prob.hier()
			for it := start; it < sweeps; it++ {
				h.Jacobi(u, prob.F, omega, &cw)
			}
			prob.putHier(h)
		} else {
			for it := start; it < sweeps; it++ {
				pde.SOR3D(prob.Op, u, prob.F, omega, &cw)
			}
		}
	}
	total := base + cw.Flops
	if !p.memoOff && start < sweeps {
		p.memo.PutStep(stem, sweeps, solveSnap{data: append([]float64(nil), u.Data...), flops: total})
	}
	w.Flops += total
	return u
}

// mgSolve runs multigrid cycles from the zero guess on a pooled hierarchy,
// resuming from the longest memoized prefix with the same cycle shape.
func (p *Program) mgSolve(prob *Problem, opt pde.MGOptions3D, cycles int, w *pde.Work) *pde.Grid3D {
	u := pde.NewGrid3D(prob.N)
	var stem string
	start, base := 0, 0
	if !p.memoOff {
		stem = prob.fingerprint() + "|mg|" +
			strconv.Itoa(opt.Pre) + "," + strconv.Itoa(opt.Post) + "," + strconv.Itoa(opt.Gamma) + "," +
			strconv.FormatUint(math.Float64bits(opt.Omega), 16) + "|"
		if v, k, ok := p.memo.LongestPrefix(stem, cycles); ok {
			s := v.(solveSnap)
			copy(u.Data, s.data)
			start, base = k, s.flops
		}
	}
	var cw pde.Work
	if start < cycles {
		h := prob.hier()
		for c := start; c < cycles; c++ {
			h.Cycle(u, prob.F, opt, &cw)
		}
		prob.putHier(h)
	}
	total := base + cw.Flops
	if !p.memoOff && start < cycles {
		p.memo.PutStep(stem, cycles, solveSnap{data: append([]float64(nil), u.Data...), flops: total})
	}
	w.Flops += total
	return u
}
