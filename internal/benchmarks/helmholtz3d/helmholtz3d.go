// Package helmholtz3d reproduces the paper's Helmholtz 3D benchmark: solve
// the variable-coefficient equation -∇·(a∇u) + c·u = f on the unit cube
// with the solver family {multigrid (tunable cycle shape), Jacobi,
// Gauss-Seidel, SOR, direct}. The direct solver is a sine-transform solve
// of the constant-coefficient surrogate — exact when the coefficient field
// is uniform, increasingly wrong as it varies, which couples solver choice
// to the input's coefficient deviation. Accuracy is measured in decades of
// error reduction against a converged reference; threshold 7.
package helmholtz3d

import (
	"math"
	"sync"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/engine"
	"inputtune/internal/feature"
	"inputtune/internal/pde"
	"inputtune/internal/rng"
)

// Solver alternatives for the "solver" choice site.
const (
	SolverMultigrid = iota
	SolverJacobi
	SolverGaussSeidel
	SolverSOR
	SolverDirect
	numSolvers

	// SolverFastDirect is the O(N³ log N) sine-transform direct solve of
	// the constant-coefficient surrogate (pde.FastDirectHelmholtz3D) —
	// same surrogate semantics as SolverDirect, different asymptotics.
	// Opt-in via NewWithFastDirect, for the same trajectory-preservation
	// reason as poisson2d.SolverFastDirect.
	SolverFastDirect = numSolvers
)

// SolverNames lists the default solvers in site order.
var SolverNames = []string{"multigrid", "jacobi", "gauss-seidel", "sor", "direct"}

// FastDirectName names the opt-in sixth alternative.
const FastDirectName = "fast-direct"

// Problem is a Helmholtz instance: operator (a, c) and right-hand side f.
type Problem struct {
	N   int
	Op  *pde.Helmholtz3D
	F   *pde.Grid3D
	Gen string

	exactOnce sync.Once
	exact     *pde.Grid3D
	exactRMS  float64

	// chainOnce/chain cache the coarsened operator ladder (immutable,
	// shared); fpOnce/fp the content fingerprint keying the solver memo;
	// hpool pools multigrid workspaces over the chain.
	chainOnce sync.Once
	chain     *pde.OpChain3D
	fpOnce    sync.Once
	fp        string
	hpool     sync.Pool
}

// Size implements feature.Input.
func (p *Problem) Size() int { return p.N * p.N * p.N }

// exactSolution lazily computes a converged reference via W-cycle
// multigrid on the true operator (metric evaluation; never charged). It
// runs on the pooled hierarchy, which is bit-identical to the original
// per-cycle MGCycle3D (differential-test enforced), so the reference —
// and every accuracy derived from it — is unchanged.
func (p *Problem) exactSolution() (*pde.Grid3D, float64) {
	p.exactOnce.Do(func() {
		var w pde.Work
		u := pde.NewGrid3D(p.N)
		opt := pde.MGOptions3D{Pre: 3, Post: 3, Gamma: 2, Omega: 1}
		h := p.hier()
		for c := 0; c < 25; c++ {
			h.Cycle(u, p.F, opt, &w)
		}
		p.putHier(h)
		p.exact = u
		p.exactRMS = u.RMS()
	})
	return p.exact, p.exactRMS
}

// Program is the Helmholtz 3D benchmark.
type Program struct {
	space    *choice.Space
	set      *feature.Set
	itersIdx int
	omegaIdx int
	cycIdx   int
	preIdx   int
	postIdx  int
	gammaIdx int

	// memo is the sub-run solver-state memo (see solve.go); memoOff is the
	// test hook proving results are identical with the memo disabled.
	memo    engine.Memo
	memoOff bool
}

// New constructs the Helmholtz 3D program with the paper's five solver
// alternatives.
func New() *Program { return newProgram(false) }

// NewWithFastDirect constructs the program with the sixth "fast-direct"
// alternative, letting the autotuner weigh the DST-backed surrogate
// solve against the dense one and multigrid per input. Opt-in so default
// trajectories and artifacts stay byte-identical.
func NewWithFastDirect() *Program { return newProgram(true) }

func newProgram(fastDirect bool) *Program {
	p := &Program{}
	p.space = choice.NewSpace()
	names := SolverNames
	if fastDirect {
		names = append(append([]string(nil), SolverNames...), FastDirectName)
	}
	p.space.AddSite("solver", names...)
	p.itersIdx = p.space.AddInt("iterations", 1, 150, 40)
	p.omegaIdx = p.space.AddFloat("omega", 1.0, 1.9, 1.4)
	p.cycIdx = p.space.AddInt("mgCycles", 1, 12, 5)
	p.preIdx = p.space.AddInt("mgPre", 0, 3, 2)
	p.postIdx = p.space.AddInt("mgPost", 0, 3, 2)
	p.gammaIdx = p.space.AddInt("gamma", 1, 2, 1)
	// Selector→tunable dependency graph, mirroring poisson2d: sweep count
	// for the stationary solvers, omega for SOR, cycle shape for
	// multigrid; the direct solvers read no tunables.
	p.space.DependsOn(p.itersIdx, 0, SolverJacobi, SolverGaussSeidel, SolverSOR)
	p.space.DependsOn(p.omegaIdx, 0, SolverSOR)
	p.space.DependsOn(p.cycIdx, 0, SolverMultigrid)
	p.space.DependsOn(p.preIdx, 0, SolverMultigrid)
	p.space.DependsOn(p.postIdx, 0, SolverMultigrid)
	p.space.DependsOn(p.gammaIdx, 0, SolverMultigrid)
	p.set = feature.MustNewSet(
		feature.Extractor{Name: "residual", Levels: []feature.LevelFunc{
			residualLevel(64), residualLevel(512), residualLevel(0),
		}},
		feature.Extractor{Name: "deviation", Levels: []feature.LevelFunc{
			deviationLevel(64), deviationLevel(512), deviationLevel(0),
		}},
		feature.Extractor{Name: "zeros", Levels: []feature.LevelFunc{
			zerosLevel(64), zerosLevel(512), zerosLevel(0),
		}},
	)
	return p
}

// Name implements core.Program.
func (p *Program) Name() string { return "helmholtz3d" }

// Space implements core.Program.
func (p *Program) Space() *choice.Space { return p.space }

// Features implements core.Program.
func (p *Program) Features() *feature.Set { return p.set }

// HasAccuracy implements core.Program.
func (p *Program) HasAccuracy() bool { return true }

// AccuracyThreshold implements core.Program: the paper sets 7 (decades).
func (p *Program) AccuracyThreshold() float64 { return 7 }

// Run solves the instance with the configured solver and returns the
// achieved decades of error reduction.
func (p *Program) Run(cfg *choice.Config, in feature.Input, meter *cost.Meter) float64 {
	prob := in.(*Problem)
	solver := cfg.Decide(0, prob.Size())
	var w pde.Work
	var u *pde.Grid3D
	switch solver {
	case SolverDirect:
		u = pde.DirectHelmholtz3D(prob.Op, prob.F, &w)
	case SolverFastDirect:
		u = pde.FastDirectHelmholtz3D(prob.Op, prob.F, &w)
	case SolverJacobi:
		u = p.smoothSolve(prob, smootherJacobi, 0.8, cfg.Int(p.itersIdx), &w)
	case SolverGaussSeidel:
		u = p.smoothSolve(prob, smootherSOR, 1.0, cfg.Int(p.itersIdx), &w)
	case SolverSOR:
		u = p.smoothSolve(prob, smootherSOR, cfg.Float(p.omegaIdx), cfg.Int(p.itersIdx), &w)
	default: // SolverMultigrid
		opt := pde.MGOptions3D{
			Pre:   cfg.Int(p.preIdx),
			Post:  cfg.Int(p.postIdx),
			Gamma: cfg.Int(p.gammaIdx),
			Omega: 1.0,
		}
		if opt.Pre == 0 && opt.Post == 0 {
			opt.Post = 1
		}
		u = p.mgSolve(prob, opt, cfg.Int(p.cycIdx), &w)
	}
	meter.Charge(cost.Flop, w.Flops)
	exact, exactRMS := prob.exactSolution()
	if exactRMS <= 1e-300 {
		return 14
	}
	err := u.SubRMS(exact)
	if err <= exactRMS*1e-13 {
		return 13
	}
	acc := math.Log10(exactRMS / err)
	if acc < 0 {
		acc = 0
	}
	return acc
}

// --- feature extractors -------------------------------------------------

func strideFor(budget, n int) int {
	if budget <= 0 || budget >= n {
		return 1
	}
	return n / budget
}

// residualLevel is the RMS of the right-hand side.
func residualLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		f := in.(*Problem).F.Data
		stride := strideFor(budget, len(f))
		var sum, cnt float64
		for i := 0; i < len(f); i += stride {
			m.Charge1(cost.Scan)
			sum += f[i] * f[i]
			cnt++
		}
		return math.Sqrt(sum / cnt)
	}
}

// deviationLevel is the standard deviation of the COEFFICIENT field — the
// quantity that decides whether the constant-coefficient direct solver is
// usable on this input.
func deviationLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		a := in.(*Problem).Op.A.Data
		stride := strideFor(budget, len(a))
		var sum, sumsq, cnt float64
		for i := 0; i < len(a); i += stride {
			m.Charge1(cost.Scan)
			sum += a[i]
			sumsq += a[i] * a[i]
			cnt++
		}
		mean := sum / cnt
		v := sumsq/cnt - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v)
	}
}

// zerosLevel is the fraction of near-zero RHS entries.
func zerosLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		f := in.(*Problem).F.Data
		stride := strideFor(budget, len(f))
		var zeros, cnt float64
		for i := 0; i < len(f); i += stride {
			m.Charge1(cost.Scan)
			if math.Abs(f[i]) < 1e-12 {
				zeros++
			}
			cnt++
		}
		return zeros / cnt
	}
}

// --- input generators ----------------------------------------------------

// Generator produces a Helmholtz instance on an N×N×N grid.
type Generator struct {
	Name string
	Gen  func(n int, r *rng.RNG) *Problem
}

// Generators varies both the right-hand side and the coefficient field.
func Generators() []Generator {
	return []Generator{
		{"const-smooth", GenConstSmooth},
		{"varying-coeff", GenVaryingCoeff},
		{"rough-coeff", GenRoughCoeff},
		{"point-sources", GenPointSources},
		{"highfreq", GenHighFreq},
		{"sparse", GenSparse},
	}
}

func constantA(n int, val float64) *pde.Grid3D {
	a := pde.NewGrid3D(n)
	for i := range a.Data {
		a.Data[i] = val
	}
	return a
}

func smoothRHS(n int, r *rng.RNG) *pde.Grid3D {
	f := pde.NewGrid3D(n)
	h := 1.0 / float64(n+1)
	a, b, c := r.IntRange(1, 2), r.IntRange(1, 2), r.IntRange(1, 2)
	amp := r.Range(0.5, 2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				x, y, z := float64(i+1)*h, float64(j+1)*h, float64(k+1)*h
				f.Set(i, j, k, amp*math.Sin(float64(a)*math.Pi*x)*
					math.Sin(float64(b)*math.Pi*y)*math.Sin(float64(c)*math.Pi*z))
			}
		}
	}
	return f
}

// GenConstSmooth has a uniform coefficient and smooth RHS: the direct
// solver is exact and unbeatable here.
func GenConstSmooth(n int, r *rng.RNG) *Problem {
	return &Problem{
		N:   n,
		Op:  &pde.Helmholtz3D{A: constantA(n, r.Range(0.5, 2)), C: r.Range(0, 5)},
		F:   smoothRHS(n, r),
		Gen: "const-smooth",
	}
}

// GenVaryingCoeff has a smoothly varying coefficient: direct is close but
// not exact; multigrid earns its keep.
func GenVaryingCoeff(n int, r *rng.RNG) *Problem {
	a := pde.NewGrid3D(n)
	h := 1.0 / float64(n+1)
	base := r.Range(0.8, 1.5)
	amp := r.Range(0.2, 0.6)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				x := float64(i+1) * h
				a.Set(i, j, k, base+amp*math.Sin(math.Pi*x))
			}
		}
	}
	return &Problem{
		N:   n,
		Op:  &pde.Helmholtz3D{A: a, C: r.Range(0, 3)},
		F:   smoothRHS(n, r),
		Gen: "varying-coeff",
	}
}

// GenRoughCoeff has a strongly heterogeneous coefficient: the direct
// surrogate is badly wrong and only the true-operator solvers reach the
// accuracy target.
func GenRoughCoeff(n int, r *rng.RNG) *Problem {
	a := pde.NewGrid3D(n)
	for i := range a.Data {
		a.Data[i] = r.Range(0.2, 3)
	}
	return &Problem{
		N:   n,
		Op:  &pde.Helmholtz3D{A: a, C: r.Range(0, 3)},
		F:   smoothRHS(n, r),
		Gen: "rough-coeff",
	}
}

// GenPointSources places spikes under a constant coefficient.
func GenPointSources(n int, r *rng.RNG) *Problem {
	f := pde.NewGrid3D(n)
	for s := 0; s < r.IntRange(1, 4); s++ {
		f.Set(r.Intn(n), r.Intn(n), r.Intn(n), r.Range(5, 15)*float64(n+1))
	}
	return &Problem{
		N:   n,
		Op:  &pde.Helmholtz3D{A: constantA(n, 1), C: r.Range(0, 5)},
		F:   f,
		Gen: "point-sources",
	}
}

// GenHighFreq uses the highest grid mode — smoothers alone converge fast.
func GenHighFreq(n int, r *rng.RNG) *Problem {
	f := pde.NewGrid3D(n)
	h := 1.0 / float64(n+1)
	amp := r.Range(0.5, 2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				x, y, z := float64(i+1)*h, float64(j+1)*h, float64(k+1)*h
				f.Set(i, j, k, amp*math.Sin(float64(n)*math.Pi*x)*
					math.Sin(float64(n)*math.Pi*y)*math.Sin(float64(n)*math.Pi*z))
			}
		}
	}
	return &Problem{
		N:   n,
		Op:  &pde.Helmholtz3D{A: constantA(n, 1), C: r.Range(0, 2)},
		F:   f,
		Gen: "highfreq",
	}
}

// GenSparse fills ~5% of RHS cells.
func GenSparse(n int, r *rng.RNG) *Problem {
	f := pde.NewGrid3D(n)
	for i := range f.Data {
		if r.Coin(0.05) {
			f.Data[i] = r.Norm(0, 5)
		}
	}
	return &Problem{
		N:   n,
		Op:  &pde.Helmholtz3D{A: constantA(n, 1), C: r.Range(0, 2)},
		F:   f,
		Gen: "sparse",
	}
}

// MixOptions controls the input battery.
type MixOptions struct {
	Count int
	Seed  uint64
	Sizes []int // default {7, 15}; multigrid needs 2^k - 1
}

// GenerateMix produces a deterministic battery of Helmholtz instances.
func GenerateMix(opts MixOptions) []*Problem {
	if len(opts.Sizes) == 0 {
		opts.Sizes = []int{7, 15}
	}
	r := rng.New(opts.Seed)
	gens := Generators()
	out := make([]*Problem, opts.Count)
	for i := range out {
		n := opts.Sizes[r.Intn(len(opts.Sizes))]
		out[i] = gens[i%len(gens)].Gen(n, r)
	}
	return out
}
