package helmholtz3d

import (
	"testing"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/rng"
)

func cfgSolver(p *Program, solver int) *choice.Config {
	c := p.Space().DefaultConfig()
	c.Selectors[0].Else = solver
	return c
}

func TestDirectExactOnConstantCoeff(t *testing.T) {
	p := New()
	r := rng.New(1)
	prob := GenConstSmooth(15, r)
	acc := p.Run(cfgSolver(p, SolverDirect), prob, cost.NewMeter())
	if acc < p.AccuracyThreshold() {
		t.Fatalf("direct on constant coefficients = %v decades", acc)
	}
}

func TestDirectFailsOnRoughCoeff(t *testing.T) {
	p := New()
	r := rng.New(2)
	prob := GenRoughCoeff(15, r)
	acc := p.Run(cfgSolver(p, SolverDirect), prob, cost.NewMeter())
	if acc >= p.AccuracyThreshold() {
		t.Fatalf("constant-coefficient direct reached %v decades on rough coefficients; sensitivity premise broken", acc)
	}
}

func TestMultigridFeasibleEverywhere(t *testing.T) {
	p := New()
	r := rng.New(3)
	for _, gen := range Generators() {
		prob := gen.Gen(15, r)
		cfg := cfgSolver(p, SolverMultigrid)
		cfg.Values[p.cycIdx] = 10
		acc := p.Run(cfg, prob, cost.NewMeter())
		if acc < p.AccuracyThreshold() {
			t.Fatalf("multigrid only %v decades on %s", acc, gen.Name)
		}
	}
}

func TestHighFreqCheapWithSOR(t *testing.T) {
	p := New()
	r := rng.New(4)
	prob := GenHighFreq(15, r)
	cfg := cfgSolver(p, SolverSOR)
	cfg.Values[p.itersIdx] = 60
	acc := p.Run(cfg, prob, cost.NewMeter())
	if acc < p.AccuracyThreshold() {
		t.Fatalf("SOR only %v decades on high-frequency RHS", acc)
	}
}

func TestDeviationFeatureSeparatesCoefficients(t *testing.T) {
	p := New()
	set := p.Features()
	r := rng.New(5)
	top := func(prob *Problem) float64 {
		vals, _ := set.ExtractAll(prob)
		return vals[set.Index(1, 2)]
	}
	constant := GenConstSmooth(7, r)
	rough := GenRoughCoeff(7, r)
	if dc, dr := top(constant), top(rough); dc > 0.01 || dr < 0.2 {
		t.Fatalf("coefficient deviation: const %v rough %v", dc, dr)
	}
}

func TestRunDeterministic(t *testing.T) {
	p := New()
	r := rng.New(6)
	prob := GenVaryingCoeff(7, r)
	cfg := cfgSolver(p, SolverMultigrid)
	m1, m2 := cost.NewMeter(), cost.NewMeter()
	a1 := p.Run(cfg, prob, m1)
	a2 := p.Run(cfg, prob, m2)
	if a1 != a2 || m1.Elapsed() != m2.Elapsed() {
		t.Fatal("Run not deterministic")
	}
}

func TestDirectCheaperThanConvergedMG(t *testing.T) {
	// On constant coefficients the direct solve should beat multigrid run
	// to a comparable accuracy at N=7 (6·N⁴ vs several 15·N³ cycles).
	p := New()
	r := rng.New(7)
	prob := GenConstSmooth(7, r)
	mDir, mMG := cost.NewMeter(), cost.NewMeter()
	accDir := p.Run(cfgSolver(p, SolverDirect), prob, mDir)
	cfgMG := cfgSolver(p, SolverMultigrid)
	cfgMG.Values[p.cycIdx] = 8
	p.Run(cfgMG, prob, mMG)
	if accDir < p.AccuracyThreshold() {
		t.Fatalf("direct infeasible on constant coefficients: %v", accDir)
	}
	if mDir.Elapsed() >= mMG.Elapsed() {
		t.Fatalf("direct cost %v not below 8-cycle multigrid %v at N=7", mDir.Elapsed(), mMG.Elapsed())
	}
}

func TestGenerateMixDeterministic(t *testing.T) {
	a := GenerateMix(MixOptions{Count: 6, Seed: 1})
	b := GenerateMix(MixOptions{Count: 6, Seed: 1})
	if len(a) != 6 {
		t.Fatalf("count %d", len(a))
	}
	for i := range a {
		if a[i].Gen != b[i].Gen || a[i].N != b[i].N {
			t.Fatal("mix not deterministic")
		}
		for j := range a[i].F.Data {
			if a[i].F.Data[j] != b[i].F.Data[j] {
				t.Fatal("RHS not deterministic")
			}
		}
	}
	for _, prob := range a {
		if prob.N != 7 && prob.N != 15 {
			t.Fatalf("unexpected size %d", prob.N)
		}
	}
}

func TestIterationsMonotone(t *testing.T) {
	p := New()
	r := rng.New(8)
	prob := GenVaryingCoeff(7, r)
	cfg := cfgSolver(p, SolverGaussSeidel)
	var prevAcc, prevCost float64
	for i, iters := range []float64{5, 30, 120} {
		cfg.Values[p.itersIdx] = iters
		m := cost.NewMeter()
		acc := p.Run(cfg, prob, m)
		if i > 0 {
			if m.Elapsed() <= prevCost {
				t.Fatal("cost not monotone in iterations")
			}
			if acc < prevAcc-0.1 {
				t.Fatalf("accuracy regressed: %v -> %v", prevAcc, acc)
			}
		}
		prevAcc, prevCost = acc, m.Elapsed()
	}
}
