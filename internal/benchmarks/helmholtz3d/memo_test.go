package helmholtz3d

import (
	"bytes"
	"testing"

	"inputtune/internal/choice"
	"inputtune/internal/core"
	"inputtune/internal/cost"
	"inputtune/internal/rng"
)

// memoConfigs builds configurations sharing solver prefixes: same cycle
// shape at different cycle counts, same smoother at different sweep
// counts, and genomes differing only in tunables the solver ignores.
func memoConfigs(p *Program) []*choice.Config {
	var cfgs []*choice.Config
	for _, cycles := range []int{5, 2, 7, 5} {
		c := cfgSolver(p, SolverMultigrid)
		c.Values[p.cycIdx] = float64(cycles)
		cfgs = append(cfgs, c)
	}
	c := cfgSolver(p, SolverMultigrid)
	c.Values[p.cycIdx] = 5
	c.Values[p.itersIdx] = 120 // irrelevant to the multigrid path
	cfgs = append(cfgs, c)
	for _, iters := range []int{30, 18, 40} {
		c := cfgSolver(p, SolverSOR)
		c.Values[p.itersIdx] = float64(iters)
		c.Values[p.omegaIdx] = 1.4
		cfgs = append(cfgs, c)
	}
	c = cfgSolver(p, SolverGaussSeidel)
	c.Values[p.itersIdx] = 25
	cfgs = append(cfgs, c)
	c = cfgSolver(p, SolverSOR)
	c.Values[p.itersIdx] = 35
	c.Values[p.omegaIdx] = 1.0 // shares stems with Gauss-Seidel
	cfgs = append(cfgs, c)
	c = cfgSolver(p, SolverJacobi)
	c.Values[p.itersIdx] = 28
	cfgs = append(cfgs, c)
	cfgs = append(cfgs, cfgSolver(p, SolverDirect))
	return cfgs
}

// TestSolverMemoBitIdentical proves a memo-warm Run returns exactly the
// measurement a memo-cold Run does, in multiple evaluation orders.
func TestSolverMemoBitIdentical(t *testing.T) {
	r := rng.New(43)
	probs := []*Problem{GenVaryingCoeff(15, r), GenRoughCoeff(7, r), GenSparse(15, r)}

	cold := New()
	cold.memoOff = true
	cfgs := memoConfigs(cold)
	want := make(map[int]map[int][2]float64)
	for pi, prob := range probs {
		want[pi] = make(map[int][2]float64)
		for ci, cfg := range cfgs {
			m := cost.NewMeter()
			acc := cold.Run(cfg, prob, m)
			want[pi][ci] = [2]float64{m.Elapsed(), acc}
		}
	}

	for _, reverse := range []bool{false, true} {
		warm := New()
		warmCfgs := memoConfigs(warm)
		for pass := 0; pass < 2; pass++ {
			for pi, prob := range probs {
				for x := range warmCfgs {
					ci := x
					if reverse {
						ci = len(warmCfgs) - 1 - x
					}
					m := cost.NewMeter()
					acc := warm.Run(warmCfgs[ci], prob, m)
					if got := [2]float64{m.Elapsed(), acc}; got != want[pi][ci] {
						t.Fatalf("prob %d cfg %d pass %d: memo-warm (time %v, acc %v) != cold (time %v, acc %v)",
							pi, ci, pass, got[0], got[1], want[pi][ci][0], want[pi][ci][1])
					}
				}
			}
		}
		if st := warm.SolverMemoStats(); st.Hits == 0 {
			t.Fatal("memo recorded no hits across overlapping configurations")
		}
	}
}

// TestSolverMemoCrossGenomeSharing exercises the phase checkpoints that
// let genomes of DIFFERENT solver families share state: a multigrid run
// seeds the plain-SOR stem with its fine-level pre-smooth, which a later
// Gauss-Seidel genome resumes; a multigrid genome differing only in
// post-sweeps resumes the half-cycle checkpoint. Every measurement must
// stay bit-identical to a memo-off run.
func TestSolverMemoCrossGenomeSharing(t *testing.T) {
	r := rng.New(11)
	// N=7 coarsens straight to the ≤3 base case (two-level ladder): the
	// half-cycle checkpoint is sound and active. N=15 is three levels:
	// Post reaches the coarse cycles, so only the SOR-stem and
	// full-cycle-prefix sharing apply — and must stay bit-identical.
	probs := []*Problem{GenVaryingCoeff(7, r), GenVaryingCoeff(15, r)}
	cold := New()
	cold.memoOff = true
	warm := New()

	mkMG := func(p *Program, pre, post, cycles int) *choice.Config {
		c := cfgSolver(p, SolverMultigrid)
		c.Values[p.preIdx] = float64(pre)
		c.Values[p.postIdx] = float64(post)
		c.Values[p.cycIdx] = float64(cycles)
		return c
	}
	mkGS := func(p *Program, iters int) *choice.Config {
		c := cfgSolver(p, SolverGaussSeidel)
		c.Values[p.itersIdx] = float64(iters)
		return c
	}
	steps := []struct {
		name string
		cfg  func(p *Program) *choice.Config
	}{
		// Seeds: mg stem steps {1,3}, half stem (Pre=2,γ=1,ω=1) on the
		// two-level problem, sor stem step 2.
		{"mg 2/2 x3", func(p *Program) *choice.Config { return mkMG(p, 2, 2, 3) }},
		// Resumes the sor stem the multigrid pre-smooth stored.
		{"gauss-seidel x20", func(p *Program) *choice.Config { return mkGS(p, 20) }},
		// Same Pre/Gamma, different Post: resumes the half-cycle state on
		// N=7; recomputes (bit-identically) on N=15.
		{"mg 2/1 x2", func(p *Program) *choice.Config { return mkMG(p, 2, 1, 2) }},
		// Same shape, more cycles: resumes the full-cycle prefix.
		{"mg 2/2 x5", func(p *Program) *choice.Config { return mkMG(p, 2, 2, 5) }},
	}
	for _, prob := range probs {
		for _, st := range steps {
			mc, mw := cost.NewMeter(), cost.NewMeter()
			accC := cold.Run(st.cfg(cold), prob, mc)
			accW := warm.Run(st.cfg(warm), prob, mw)
			if accC != accW || mc.Elapsed() != mw.Elapsed() {
				t.Fatalf("N=%d %s: memo-warm (time %v, acc %v) != cold (time %v, acc %v)",
					prob.N, st.name, mw.Elapsed(), accW, mc.Elapsed(), accC)
			}
		}
	}
	// Per problem: the GS genome, the full-cycle prefix, and (on N=7)
	// the half-cycle checkpoint must all resume.
	if st := warm.SolverMemoStats(); st.Hits < 5 {
		t.Fatalf("expected sor-stem, half-cycle and full-cycle resumes to hit; stats %+v", st)
	}
}

// TestTrainModelMemoParity proves end-to-end training serialises to the
// exact same bytes with the solver memo on and off.
func TestTrainModelMemoParity(t *testing.T) {
	train := func(memoOff bool) []byte {
		p := New()
		p.memoOff = memoOff
		var inputs []core.Input
		for _, pr := range GenerateMix(MixOptions{Count: 10, Seed: 9}) {
			inputs = append(inputs, pr)
		}
		m := core.TrainModel(p, inputs, core.Options{
			K1: 2, Seed: 5, TunerPopulation: 5, TunerGenerations: 3,
		})
		var buf bytes.Buffer
		if err := core.SaveModel(m, &buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(train(false), train(true)) {
		t.Fatal("SaveModel bytes differ between memo-on and memo-off training")
	}
}
