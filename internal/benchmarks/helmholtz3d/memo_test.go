package helmholtz3d

import (
	"bytes"
	"testing"

	"inputtune/internal/choice"
	"inputtune/internal/core"
	"inputtune/internal/cost"
	"inputtune/internal/rng"
)

// memoConfigs builds configurations sharing solver prefixes: same cycle
// shape at different cycle counts, same smoother at different sweep
// counts, and genomes differing only in tunables the solver ignores.
func memoConfigs(p *Program) []*choice.Config {
	var cfgs []*choice.Config
	for _, cycles := range []int{5, 2, 7, 5} {
		c := cfgSolver(p, SolverMultigrid)
		c.Values[p.cycIdx] = float64(cycles)
		cfgs = append(cfgs, c)
	}
	c := cfgSolver(p, SolverMultigrid)
	c.Values[p.cycIdx] = 5
	c.Values[p.itersIdx] = 120 // irrelevant to the multigrid path
	cfgs = append(cfgs, c)
	for _, iters := range []int{30, 18, 40} {
		c := cfgSolver(p, SolverSOR)
		c.Values[p.itersIdx] = float64(iters)
		c.Values[p.omegaIdx] = 1.4
		cfgs = append(cfgs, c)
	}
	c = cfgSolver(p, SolverGaussSeidel)
	c.Values[p.itersIdx] = 25
	cfgs = append(cfgs, c)
	c = cfgSolver(p, SolverSOR)
	c.Values[p.itersIdx] = 35
	c.Values[p.omegaIdx] = 1.0 // shares stems with Gauss-Seidel
	cfgs = append(cfgs, c)
	c = cfgSolver(p, SolverJacobi)
	c.Values[p.itersIdx] = 28
	cfgs = append(cfgs, c)
	cfgs = append(cfgs, cfgSolver(p, SolverDirect))
	return cfgs
}

// TestSolverMemoBitIdentical proves a memo-warm Run returns exactly the
// measurement a memo-cold Run does, in multiple evaluation orders.
func TestSolverMemoBitIdentical(t *testing.T) {
	r := rng.New(43)
	probs := []*Problem{GenVaryingCoeff(15, r), GenRoughCoeff(7, r), GenSparse(15, r)}

	cold := New()
	cold.memoOff = true
	cfgs := memoConfigs(cold)
	want := make(map[int]map[int][2]float64)
	for pi, prob := range probs {
		want[pi] = make(map[int][2]float64)
		for ci, cfg := range cfgs {
			m := cost.NewMeter()
			acc := cold.Run(cfg, prob, m)
			want[pi][ci] = [2]float64{m.Elapsed(), acc}
		}
	}

	for _, reverse := range []bool{false, true} {
		warm := New()
		warmCfgs := memoConfigs(warm)
		for pass := 0; pass < 2; pass++ {
			for pi, prob := range probs {
				for x := range warmCfgs {
					ci := x
					if reverse {
						ci = len(warmCfgs) - 1 - x
					}
					m := cost.NewMeter()
					acc := warm.Run(warmCfgs[ci], prob, m)
					if got := [2]float64{m.Elapsed(), acc}; got != want[pi][ci] {
						t.Fatalf("prob %d cfg %d pass %d: memo-warm (time %v, acc %v) != cold (time %v, acc %v)",
							pi, ci, pass, got[0], got[1], want[pi][ci][0], want[pi][ci][1])
					}
				}
			}
		}
		if st := warm.SolverMemoStats(); st.Hits == 0 {
			t.Fatal("memo recorded no hits across overlapping configurations")
		}
	}
}

// TestTrainModelMemoParity proves end-to-end training serialises to the
// exact same bytes with the solver memo on and off.
func TestTrainModelMemoParity(t *testing.T) {
	train := func(memoOff bool) []byte {
		p := New()
		p.memoOff = memoOff
		var inputs []core.Input
		for _, pr := range GenerateMix(MixOptions{Count: 10, Seed: 9}) {
			inputs = append(inputs, pr)
		}
		m := core.TrainModel(p, inputs, core.Options{
			K1: 2, Seed: 5, TunerPopulation: 5, TunerGenerations: 3,
		})
		var buf bytes.Buffer
		if err := core.SaveModel(m, &buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(train(false), train(true)) {
		t.Fatal("SaveModel bytes differ between memo-on and memo-off training")
	}
}
