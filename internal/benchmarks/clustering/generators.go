package clustering

import (
	"math"

	"inputtune/internal/rng"
)

// Generator produces a clustering instance of roughly the requested size.
type Generator struct {
	Name string
	Gen  func(n int, r *rng.RNG) *Points
}

// Generators spans tight/overlapping/structureless point sets — the
// clustering2 synthetic battery.
func Generators() []Generator {
	return []Generator{
		{"blobs", GenBlobs},
		{"overlapping", GenOverlapping},
		{"uniform", GenUniform},
		{"ring", GenRing},
		{"anisotropic", GenAnisotropic},
		{"outliers", GenOutliers},
	}
}

func newPoints(n int, gen string, r *rng.RNG) *Points {
	return &Points{
		X:    make([]float64, n),
		Y:    make([]float64, n),
		Gen:  gen,
		seed: r.Uint64(),
	}
}

// GenBlobs scatters k well-separated Gaussian clusters: easy — even prefix
// or random initialisation with few iterations reaches the target.
func GenBlobs(n int, r *rng.RNG) *Points {
	p := newPoints(n, "blobs", r)
	k := r.IntRange(2, 8)
	cx := make([]float64, k)
	cy := make([]float64, k)
	for c := range cx {
		cx[c] = r.Range(-100, 100)
		cy[c] = r.Range(-100, 100)
	}
	for i := 0; i < n; i++ {
		c := r.Intn(k)
		p.X[i] = cx[c] + r.Norm(0, 3)
		p.Y[i] = cy[c] + r.Norm(0, 3)
	}
	return p
}

// GenOverlapping scatters close, wide Gaussians: initialisation quality
// and iteration count matter.
func GenOverlapping(n int, r *rng.RNG) *Points {
	p := newPoints(n, "overlapping", r)
	k := r.IntRange(3, 6)
	for i := 0; i < n; i++ {
		c := r.Intn(k)
		p.X[i] = float64(c)*15 + r.Norm(0, 10)
		p.Y[i] = float64(c%2)*15 + r.Norm(0, 10)
	}
	return p
}

// GenUniform has no cluster structure at all.
func GenUniform(n int, r *rng.RNG) *Points {
	p := newPoints(n, "uniform", r)
	for i := 0; i < n; i++ {
		p.X[i] = r.Range(-100, 100)
		p.Y[i] = r.Range(-100, 100)
	}
	return p
}

// GenRing places points on an annulus — k-means approximates it with arc
// segments, needing enough centers and iterations.
func GenRing(n int, r *rng.RNG) *Points {
	p := newPoints(n, "ring", r)
	for i := 0; i < n; i++ {
		theta := r.Range(0, 2*math.Pi)
		rad := 50 + r.Norm(0, 3)
		p.X[i] = rad * math.Cos(theta)
		p.Y[i] = rad * math.Sin(theta)
	}
	return p
}

// GenAnisotropic stretches blobs along one axis.
func GenAnisotropic(n int, r *rng.RNG) *Points {
	p := newPoints(n, "anisotropic", r)
	k := r.IntRange(2, 5)
	for i := 0; i < n; i++ {
		c := r.Intn(k)
		p.X[i] = float64(c)*60 + r.Norm(0, 20)
		p.Y[i] = float64(c)*10 + r.Norm(0, 2)
	}
	return p
}

// GenOutliers is blobs plus 5% uniform noise.
func GenOutliers(n int, r *rng.RNG) *Points {
	p := GenBlobs(n, r)
	p.Gen = "outliers"
	for i := 0; i < n; i++ {
		if r.Coin(0.05) {
			p.X[i] = r.Range(-200, 200)
			p.Y[i] = r.Range(-200, 200)
		}
	}
	return p
}

// GenLattice simulates the paper's clustering1 workload, the UCI Poker
// Hand data set (DESIGN.md substitution 3): discrete integer-valued
// attributes projected to 2-D, producing a small number of dense lattice
// sites with massive duplication.
func GenLattice(n int, r *rng.RNG) *Points {
	p := newPoints(n, "lattice", r)
	// Poker-hand-like: suits 1..4 and ranks 1..13 combined into lattice
	// coordinates; a few (suit, rank) combinations dominate.
	kHot := r.IntRange(4, 10)
	hotX := make([]float64, kHot)
	hotY := make([]float64, kHot)
	for c := range hotX {
		hotX[c] = float64(r.IntRange(1, 13))
		hotY[c] = float64(r.IntRange(1, 4))
	}
	for i := 0; i < n; i++ {
		if r.Coin(0.8) {
			c := r.Intn(kHot)
			p.X[i] = hotX[c]
			p.Y[i] = hotY[c]
		} else {
			p.X[i] = float64(r.IntRange(1, 13))
			p.Y[i] = float64(r.IntRange(1, 4))
		}
	}
	return p
}

// MixOptions controls the input battery.
type MixOptions struct {
	Count    int
	MinSize  int // default 100
	MaxSize  int // default 1000
	Seed     uint64
	RealLike bool // lattice-only workload (clustering1) instead of battery
}

// GenerateMix produces a deterministic battery of clustering inputs.
func GenerateMix(opts MixOptions) []*Points {
	if opts.MinSize <= 0 {
		opts.MinSize = 100
	}
	if opts.MaxSize < opts.MinSize {
		opts.MaxSize = 1000
	}
	r := rng.New(opts.Seed)
	gens := Generators()
	out := make([]*Points, opts.Count)
	for i := range out {
		n := r.IntRange(opts.MinSize, opts.MaxSize)
		if opts.RealLike {
			out[i] = GenLattice(n, r)
		} else {
			out[i] = gens[i%len(gens)].Gen(n, r)
		}
	}
	return out
}
