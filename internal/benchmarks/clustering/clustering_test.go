package clustering

import (
	"testing"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/rng"
)

func cfgWith(p *Program, init, k, iters int) *choice.Config {
	c := p.Space().DefaultConfig()
	c.Selectors[0].Else = init
	c.Values[p.kIdx] = float64(k)
	c.Values[p.itersIdx] = float64(iters)
	return c
}

func TestCanonicalConfigScoresPerfect(t *testing.T) {
	p := New()
	r := rng.New(1)
	pts := GenBlobs(500, r)
	// Matching the canonical algorithm exactly must give accuracy ~1+.
	cfg := cfgWith(p, InitCenterPlus, canonicalK, canonicalIters)
	acc := p.Run(cfg, pts, cost.NewMeter())
	if acc < 0.999 {
		t.Fatalf("canonical-matching config accuracy = %v", acc)
	}
}

func TestFewerIterationsCheaperAndNoBetter(t *testing.T) {
	p := New()
	r := rng.New(2)
	pts := GenOverlapping(800, r)
	mCheap, mFull := cost.NewMeter(), cost.NewMeter()
	accCheap := p.Run(cfgWith(p, InitPrefix, 8, 1), pts, mCheap)
	accFull := p.Run(cfgWith(p, InitCenterPlus, 8, 20), pts, mFull)
	if mCheap.Elapsed() >= mFull.Elapsed() {
		t.Fatalf("1-iteration run cost %v not below 20-iteration %v", mCheap.Elapsed(), mFull.Elapsed())
	}
	if accCheap > accFull+1e-9 {
		t.Fatalf("cheap config more accurate (%v) than full (%v)?", accCheap, accFull)
	}
}

func TestSmallKIsFastButInaccurateOnBlobs(t *testing.T) {
	p := New()
	r := rng.New(3)
	// Force many distinct blobs so k=2 is starved.
	pts := GenBlobs(1000, r)
	m2, m8 := cost.NewMeter(), cost.NewMeter()
	acc2 := p.Run(cfgWith(p, InitCenterPlus, 2, 10), pts, m2)
	acc8 := p.Run(cfgWith(p, InitCenterPlus, 8, 10), pts, m8)
	if m2.Elapsed() >= m8.Elapsed() {
		t.Fatalf("k=2 cost %v not below k=8 cost %v", m2.Elapsed(), m8.Elapsed())
	}
	if acc2 >= acc8 {
		t.Fatalf("k=2 accuracy %v not below k=8 accuracy %v", acc2, acc8)
	}
}

func TestRunDeterministic(t *testing.T) {
	p := New()
	r := rng.New(4)
	pts := GenOutliers(600, r)
	cfg := cfgWith(p, InitRandom, 6, 5)
	m1, m2 := cost.NewMeter(), cost.NewMeter()
	a1 := p.Run(cfg, pts, m1)
	a2 := p.Run(cfg, pts, m2)
	if a1 != a2 || m1.Elapsed() != m2.Elapsed() {
		t.Fatalf("Run not deterministic: acc %v/%v cost %v/%v", a1, a2, m1.Elapsed(), m2.Elapsed())
	}
}

func TestAllInitsReasonableOnEasyData(t *testing.T) {
	p := New()
	r := rng.New(5)
	pts := GenBlobs(500, r)
	for init := 0; init < numInits; init++ {
		acc := p.Run(cfgWith(p, init, 8, 15), pts, cost.NewMeter())
		if acc < 0.5 {
			t.Fatalf("%s init accuracy %v on easy blobs", InitNames[init], acc)
		}
	}
}

func TestAccuracyClamped(t *testing.T) {
	p := New()
	r := rng.New(6)
	pts := GenBlobs(300, r)
	// A very generous configuration can beat the canonical reference, but
	// accuracy must be clamped at 1.25.
	acc := p.Run(cfgWith(p, InitCenterPlus, 16, 20), pts, cost.NewMeter())
	if acc > 1.25 {
		t.Fatalf("accuracy %v above clamp", acc)
	}
}

func TestCentersFeatureTracksClusterCount(t *testing.T) {
	p := New()
	set := p.Features()
	r := rng.New(7)
	est := func(pts *Points) float64 {
		vals, _ := set.ExtractAll(pts)
		return vals[set.Index(1, 2)] // centers at the most accurate level
	}
	// Uniform data should show more leaders than 2 tight blobs.
	two := newPoints(600, "two", r)
	for i := 0; i < 600; i++ {
		c := i % 2
		two.X[i] = float64(c)*200 + r.Norm(0, 1)
		two.Y[i] = float64(c)*200 + r.Norm(0, 1)
	}
	uniform := GenUniform(600, r)
	if a, b := est(two), est(uniform); a >= b {
		t.Fatalf("centers estimate: 2 blobs %v should be below uniform %v", a, b)
	}
}

func TestCentersFeatureIsExpensive(t *testing.T) {
	p := New()
	set := p.Features()
	r := rng.New(8)
	pts := GenUniform(2000, r)
	_, costs := set.ExtractAll(pts)
	// centers@2 must dominate range@2 in extraction cost.
	if costs[set.Index(1, 2)] <= costs[set.Index(3, 2)] {
		t.Fatalf("centers cost %v not above range cost %v",
			costs[set.Index(1, 2)], costs[set.Index(3, 2)])
	}
}

func TestDensityDiscriminates(t *testing.T) {
	p := New()
	set := p.Features()
	r := rng.New(9)
	top := func(pts *Points) float64 {
		vals, _ := set.ExtractAll(pts)
		return vals[set.Index(2, 2)]
	}
	blobs := GenBlobs(800, r)
	uniform := GenUniform(800, r)
	if a, b := top(blobs), top(uniform); a >= b {
		t.Fatalf("density: blobs %v should be below uniform %v", a, b)
	}
}

func TestLatticeGeneratorShape(t *testing.T) {
	r := rng.New(10)
	pts := GenLattice(1000, r)
	// Integer coordinates with heavy duplication.
	distinct := map[[2]float64]int{}
	for i := range pts.X {
		if pts.X[i] != float64(int(pts.X[i])) || pts.Y[i] != float64(int(pts.Y[i])) {
			t.Fatal("lattice coordinates not integral")
		}
		distinct[[2]float64{pts.X[i], pts.Y[i]}]++
	}
	if len(distinct) > 60 {
		t.Fatalf("lattice has %d distinct sites; expected heavy duplication", len(distinct))
	}
}

func TestGenerateMix(t *testing.T) {
	pts := GenerateMix(MixOptions{Count: 12, Seed: 1})
	if len(pts) != 12 {
		t.Fatalf("count %d", len(pts))
	}
	kinds := map[string]bool{}
	for _, p := range pts {
		kinds[p.Gen] = true
	}
	if len(kinds) < 4 {
		t.Fatalf("only %d generator kinds in mix", len(kinds))
	}
	real := GenerateMix(MixOptions{Count: 4, Seed: 2, RealLike: true})
	for _, p := range real {
		if p.Gen != "lattice" {
			t.Fatalf("real-like mix produced %q", p.Gen)
		}
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	p := New()
	cfg := p.Space().DefaultConfig()
	empty := &Points{Gen: "empty"}
	if acc := p.Run(cfg, empty, cost.NewMeter()); acc != 1 {
		t.Fatalf("empty input accuracy %v", acc)
	}
	r := rng.New(11)
	one := GenBlobs(1, r)
	if acc := p.Run(cfg, one, cost.NewMeter()); acc <= 0 {
		t.Fatalf("singleton accuracy %v", acc)
	}
}
