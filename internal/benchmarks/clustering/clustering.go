// Package clustering reproduces the paper's Clustering benchmark: 2-D
// points are grouped by a k-means variant whose initial conditions (random,
// prefix, or centerplus), cluster count k, and Lloyd iteration count are
// all set by the autotuner. The accuracy metric compares the achieved mean
// point-to-center distance against a canonical clustering (threshold 0.8),
// so cheap configurations trade accuracy for time — the paper's
// variable-accuracy dual objective in its purest form.
package clustering

import (
	"math"
	"sync"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/feature"
)

// Init-condition alternatives for the "init" choice site.
const (
	InitRandom = iota
	InitPrefix
	InitCenterPlus
	numInits
)

// InitNames lists the initialisation strategies in site order.
var InitNames = []string{"random", "prefix", "centerplus"}

// canonicalK is the cluster count of the canonical reference clustering.
const canonicalK = 8

// canonicalIters is the Lloyd budget of the canonical reference. The
// reference plays the role of "a standard implementation" in the paper's
// accuracy metric: configurations are accurate when they come within the
// 0.8 threshold of its mean point-to-center distance. It deliberately does
// NOT exhaust the tunable iteration range (1..20), so well-tuned
// configurations clear the bar with margin while aggressive ones fail on
// hard inputs.
const canonicalIters = 10

// Points is a clustering input: n points in 2-D.
type Points struct {
	X, Y []float64
	Gen  string
	// seed decorrelates the random-init alternative across inputs while
	// keeping Run deterministic.
	seed uint64

	canonOnce sync.Once
	canonDist float64
}

// Size implements feature.Input.
func (p *Points) Size() int { return len(p.X) }

// Program is the Clustering benchmark.
type Program struct {
	space    *choice.Space
	set      *feature.Set
	kIdx     int
	itersIdx int
}

// New constructs the Clustering program.
func New() *Program {
	p := &Program{}
	p.space = choice.NewSpace()
	p.space.AddSite("init", InitNames...)
	p.kIdx = p.space.AddInt("k", 2, 16, 8)
	p.itersIdx = p.space.AddInt("iterations", 1, 20, 5)
	p.set = feature.MustNewSet(
		feature.Extractor{Name: "radius", Levels: []feature.LevelFunc{
			radiusLevel(32), radiusLevel(256), radiusLevel(0),
		}},
		feature.Extractor{Name: "centers", Levels: []feature.LevelFunc{
			centersLevel(32), centersLevel(128), centersLevel(512),
		}},
		feature.Extractor{Name: "density", Levels: []feature.LevelFunc{
			densityLevel(32), densityLevel(256), densityLevel(0),
		}},
		feature.Extractor{Name: "range", Levels: []feature.LevelFunc{
			rangeLevel(32), rangeLevel(256), rangeLevel(0),
		}},
	)
	return p
}

// Name implements core.Program.
func (p *Program) Name() string { return "clustering" }

// Space implements core.Program.
func (p *Program) Space() *choice.Space { return p.space }

// Features implements core.Program.
func (p *Program) Features() *feature.Set { return p.set }

// HasAccuracy implements core.Program.
func (p *Program) HasAccuracy() bool { return true }

// AccuracyThreshold implements core.Program: the paper sets 0.8.
func (p *Program) AccuracyThreshold() float64 { return 0.8 }

// Run clusters the points under cfg and returns the accuracy: the ratio of
// the canonical mean point-to-center distance to the achieved one (≥ 1
// means we matched or beat the canonical reference; clamped at 1.25).
func (p *Program) Run(cfg *choice.Config, in feature.Input, meter *cost.Meter) float64 {
	pts := in.(*Points)
	n := len(pts.X)
	if n == 0 {
		return 1
	}
	k := cfg.Int(p.kIdx)
	iters := cfg.Int(p.itersIdx)
	init := cfg.Decide(0, n)
	dist := kmeansRun(pts, k, iters, init, meter)
	canon := pts.canonical()
	if dist <= 1e-12 {
		return 1.25
	}
	acc := canon / dist
	if acc > 1.25 {
		acc = 1.25
	}
	return acc
}

// canonical lazily computes and caches the canonical mean distance:
// centerplus initialisation, canonicalK clusters, canonicalIters Lloyd
// steps. It is the accuracy yardstick, not part of the measured execution.
func (pts *Points) canonical() float64 {
	pts.canonOnce.Do(func() {
		m := cost.NewMeter() // discarded: metric evaluation is free
		pts.canonDist = kmeansRun(pts, canonicalK, canonicalIters, InitCenterPlus, m)
		if pts.canonDist <= 1e-12 {
			pts.canonDist = 1e-12
		}
	})
	return pts.canonDist
}

// kmeansRun executes the parameterised k-means variant and returns the mean
// point-to-center distance.
func kmeansRun(pts *Points, k, iters, init int, meter *cost.Meter) float64 {
	n := len(pts.X)
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	cx := make([]float64, k)
	cy := make([]float64, k)
	switch init {
	case InitPrefix:
		// First k points: free of charge beyond the copy, and hopeless when
		// the prefix is not representative.
		for i := 0; i < k; i++ {
			cx[i], cy[i] = pts.X[i], pts.Y[i]
		}
		meter.Charge(cost.Move, k)
	case InitRandom:
		// Deterministic stride-based pseudo-random pick seeded by the
		// input: cheap, but can draw two centers from one cluster.
		stride := int(pts.seed%uint64(n))%n + 1
		if gcd(stride, n) != 1 {
			stride = 1
		}
		idx := int(pts.seed>>7) % n
		for i := 0; i < k; i++ {
			cx[i], cy[i] = pts.X[idx], pts.Y[idx]
			idx = (idx + stride) % n
		}
		meter.Charge(cost.Move, k)
		meter.Charge(cost.Scan, k)
	default: // InitCenterPlus
		// Farthest-point (k-means++-style greedy) initialisation: k·n
		// distance evaluations, the most expensive and most robust start.
		cx[0], cy[0] = pts.X[0], pts.Y[0]
		minD := make([]float64, n)
		for i := range minD {
			minD[i] = math.Inf(1)
		}
		for c := 1; c < k; c++ {
			far, farD := 0, -1.0
			for i := 0; i < n; i++ {
				d := sq(pts.X[i]-cx[c-1]) + sq(pts.Y[i]-cy[c-1])
				meter.Charge(cost.Flop, 3)
				if d < minD[i] {
					minD[i] = d
				}
				if minD[i] > farD {
					far, farD = i, minD[i]
				}
			}
			cx[c], cy[c] = pts.X[far], pts.Y[far]
		}
		meter.Charge(cost.Move, k)
	}

	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		// Assignment: n·k distance evaluations.
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d := sq(pts.X[i]-cx[c]) + sq(pts.Y[i]-cy[c])
				meter.Charge(cost.Flop, 3)
				if d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
		meter.Charge(cost.Move, n)
		// Update.
		sumX := make([]float64, k)
		sumY := make([]float64, k)
		cnt := make([]int, k)
		for i := 0; i < n; i++ {
			sumX[assign[i]] += pts.X[i]
			sumY[assign[i]] += pts.Y[i]
			cnt[assign[i]]++
		}
		meter.Charge(cost.Flop, n)
		for c := 0; c < k; c++ {
			if cnt[c] > 0 {
				cx[c] = sumX[c] / float64(cnt[c])
				cy[c] = sumY[c] / float64(cnt[c])
			}
		}
		meter.Charge(cost.Flop, k)
	}
	// Final mean distance.
	total := 0.0
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		for c := 0; c < k; c++ {
			d := sq(pts.X[i]-cx[c]) + sq(pts.Y[i]-cy[c])
			meter.Charge(cost.Flop, 3)
			if d < best {
				best = d
			}
		}
		total += math.Sqrt(best)
	}
	return total / float64(n)
}

func sq(x float64) float64 { return x * x }

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// --- feature extractors -------------------------------------------------

func strideFor(budget, n int) int {
	if budget <= 0 || budget >= n {
		return 1
	}
	return n / budget
}

// radiusLevel is the RMS distance of a sample from its centroid.
func radiusLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		pts := in.(*Points)
		n := len(pts.X)
		if n == 0 {
			return 0
		}
		stride := strideFor(budget, n)
		var sx, sy, cnt float64
		for i := 0; i < n; i += stride {
			m.Charge1(cost.Scan)
			sx += pts.X[i]
			sy += pts.Y[i]
			cnt++
		}
		mx, my := sx/cnt, sy/cnt
		var sum float64
		for i := 0; i < n; i += stride {
			m.Charge1(cost.Scan)
			sum += sq(pts.X[i]-mx) + sq(pts.Y[i]-my)
		}
		return math.Sqrt(sum / cnt)
	}
}

// centersLevel estimates the number of natural clusters with a leader scan
// over a sample: a point more than range/6 from every leader becomes a new
// leader. It is the most informative and by far the most expensive feature
// (O(s·c) distance evaluations) — the paper's "centers" feature whose cost
// eats the clustering1 speedup of the one-level method.
func centersLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		pts := in.(*Points)
		n := len(pts.X)
		if n == 0 {
			return 0
		}
		stride := strideFor(budget, n)
		// Bounding box of the sample first.
		loX, hiX := pts.X[0], pts.X[0]
		loY, hiY := pts.Y[0], pts.Y[0]
		for i := 0; i < n; i += stride {
			m.Charge1(cost.Scan)
			loX = math.Min(loX, pts.X[i])
			hiX = math.Max(hiX, pts.X[i])
			loY = math.Min(loY, pts.Y[i])
			hiY = math.Max(hiY, pts.Y[i])
		}
		diag := math.Hypot(hiX-loX, hiY-loY)
		if diag == 0 {
			return 1
		}
		thresh := sq(diag / 6)
		var lx, ly []float64
		for i := 0; i < n; i += stride {
			m.Charge1(cost.Scan)
			isNew := true
			for j := range lx {
				m.Charge(cost.Flop, 3)
				if sq(pts.X[i]-lx[j])+sq(pts.Y[i]-ly[j]) < thresh {
					isNew = false
					break
				}
			}
			if isNew {
				lx = append(lx, pts.X[i])
				ly = append(ly, pts.Y[i])
			}
		}
		return float64(len(lx))
	}
}

// densityLevel is the fraction of occupied cells in a 16x16 grid over the
// sample's bounding box — low for tight clusters, high for uniform spread.
func densityLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		pts := in.(*Points)
		n := len(pts.X)
		if n == 0 {
			return 0
		}
		stride := strideFor(budget, n)
		loX, hiX := pts.X[0], pts.X[0]
		loY, hiY := pts.Y[0], pts.Y[0]
		for i := 0; i < n; i += stride {
			m.Charge1(cost.Scan)
			loX = math.Min(loX, pts.X[i])
			hiX = math.Max(hiX, pts.X[i])
			loY = math.Min(loY, pts.Y[i])
			hiY = math.Max(hiY, pts.Y[i])
		}
		const g = 16
		if hiX == loX || hiY == loY {
			return 1.0 / (g * g)
		}
		var grid [g * g]bool
		occupied := 0
		for i := 0; i < n; i += stride {
			m.Charge1(cost.Scan)
			gx := int(float64(g) * (pts.X[i] - loX) / (hiX - loX))
			gy := int(float64(g) * (pts.Y[i] - loY) / (hiY - loY))
			if gx >= g {
				gx = g - 1
			}
			if gy >= g {
				gy = g - 1
			}
			if !grid[gy*g+gx] {
				grid[gy*g+gx] = true
				occupied++
			}
		}
		return float64(occupied) / (g * g)
	}
}

// rangeLevel is the bounding-box diagonal of a sample.
func rangeLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		pts := in.(*Points)
		n := len(pts.X)
		if n == 0 {
			return 0
		}
		stride := strideFor(budget, n)
		loX, hiX := pts.X[0], pts.X[0]
		loY, hiY := pts.Y[0], pts.Y[0]
		for i := 0; i < n; i += stride {
			m.Charge1(cost.Scan)
			loX = math.Min(loX, pts.X[i])
			hiX = math.Max(hiX, pts.X[i])
			loY = math.Min(loY, pts.Y[i])
			hiY = math.Max(hiY, pts.Y[i])
		}
		return math.Hypot(hiX-loX, hiY-loY)
	}
}
