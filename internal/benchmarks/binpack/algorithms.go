// Package binpack reproduces the paper's Bin Packing benchmark: 13
// approximation heuristics over unit-capacity bins, with the mean occupied
// fraction of bins as the accuracy metric (threshold 0.95). Cheap heuristics
// (NextFit) are fast but loose; the Decreasing family pays an up-front sort
// for denser packings — which heuristic is the fastest one meeting the
// accuracy bar depends on the item-size distribution, the benchmark's
// input sensitivity.
package binpack

import (
	"sort"

	"inputtune/internal/cost"
)

// Algorithm indices for the "pack" choice site, in the paper's order.
const (
	AlmostWorstFit = iota
	AlmostWorstFitDecreasing
	BestFit
	BestFitDecreasing
	FirstFit
	FirstFitDecreasing
	LastFit
	LastFitDecreasing
	ModifiedFirstFitDecreasing
	NextFit
	NextFitDecreasing
	WorstFit
	WorstFitDecreasing
	numAlgorithms
)

// AlgNames lists the heuristic names in site order.
var AlgNames = []string{
	"AlmostWorstFit", "AlmostWorstFitDecreasing", "BestFit",
	"BestFitDecreasing", "FirstFit", "FirstFitDecreasing", "LastFit",
	"LastFitDecreasing", "ModifiedFirstFitDecreasing", "NextFit",
	"NextFitDecreasing", "WorstFit", "WorstFitDecreasing",
}

// Pack assigns items (sizes in (0, 1]) to unit bins with the chosen
// heuristic, charging work to meter. It returns the bin fill levels.
func Pack(alg int, items []float64, meter *cost.Meter) []float64 {
	switch alg {
	case NextFit:
		return nextFit(items, meter)
	case NextFitDecreasing:
		return nextFit(sortedDecreasing(items, meter), meter)
	case FirstFit:
		return scanFit(items, meter, pickFirst)
	case FirstFitDecreasing:
		return scanFit(sortedDecreasing(items, meter), meter, pickFirst)
	case BestFit:
		return scanFit(items, meter, pickBest)
	case BestFitDecreasing:
		return scanFit(sortedDecreasing(items, meter), meter, pickBest)
	case WorstFit:
		return scanFit(items, meter, pickWorst)
	case WorstFitDecreasing:
		return scanFit(sortedDecreasing(items, meter), meter, pickWorst)
	case AlmostWorstFit:
		return scanFit(items, meter, pickAlmostWorst)
	case AlmostWorstFitDecreasing:
		return scanFit(sortedDecreasing(items, meter), meter, pickAlmostWorst)
	case LastFit:
		return scanFit(items, meter, pickLast)
	case LastFitDecreasing:
		return scanFit(sortedDecreasing(items, meter), meter, pickLast)
	case ModifiedFirstFitDecreasing:
		return mffd(items, meter)
	default:
		panic("binpack: unknown algorithm")
	}
}

// sortedDecreasing returns a descending copy, charging the comparison cost
// of the sort.
func sortedDecreasing(items []float64, meter *cost.Meter) []float64 {
	out := append([]float64(nil), items...)
	sort.Sort(sort.Reverse(meteredSlice{out, meter}))
	meter.Charge(cost.Move, len(items))
	return out
}

// meteredSlice charges one comparison per Less call so the Decreasing
// variants pay their true sorting cost.
type meteredSlice struct {
	s []float64
	m *cost.Meter
}

func (ms meteredSlice) Len() int { return len(ms.s) }
func (ms meteredSlice) Less(i, j int) bool {
	ms.m.Charge1(cost.Compare)
	return ms.s[i] < ms.s[j]
}
func (ms meteredSlice) Swap(i, j int) {
	ms.m.Charge(cost.Move, 2)
	ms.s[i], ms.s[j] = ms.s[j], ms.s[i]
}

// nextFit keeps a single open bin.
func nextFit(items []float64, meter *cost.Meter) []float64 {
	var bins []float64
	cur := -1
	for _, it := range items {
		meter.Charge1(cost.Compare)
		if cur < 0 || bins[cur]+it > 1 {
			bins = append(bins, 0)
			cur = len(bins) - 1
			meter.Charge1(cost.Alloc)
		}
		bins[cur] += it
		meter.Charge1(cost.Move)
	}
	return bins
}

// picker chooses a bin index for an item among bins where it fits, or -1 to
// open a new bin. Implementations charge one comparison per bin examined.
type picker func(bins []float64, item float64, meter *cost.Meter) int

func pickFirst(bins []float64, item float64, meter *cost.Meter) int {
	for i, b := range bins {
		meter.Charge1(cost.Compare)
		if b+item <= 1 {
			return i
		}
	}
	return -1
}

func pickLast(bins []float64, item float64, meter *cost.Meter) int {
	for i := len(bins) - 1; i >= 0; i-- {
		meter.Charge1(cost.Compare)
		if bins[i]+item <= 1 {
			return i
		}
	}
	return -1
}

func pickBest(bins []float64, item float64, meter *cost.Meter) int {
	best := -1
	for i, b := range bins {
		meter.Charge1(cost.Compare)
		if b+item <= 1 && (best < 0 || b > bins[best]) {
			best = i
		}
	}
	return best
}

func pickWorst(bins []float64, item float64, meter *cost.Meter) int {
	worst := -1
	for i, b := range bins {
		meter.Charge1(cost.Compare)
		if b+item <= 1 && (worst < 0 || b < bins[worst]) {
			worst = i
		}
	}
	return worst
}

// pickAlmostWorst picks the second-emptiest fitting bin (falling back to
// the emptiest when only one fits).
func pickAlmostWorst(bins []float64, item float64, meter *cost.Meter) int {
	worst, second := -1, -1
	for i, b := range bins {
		meter.Charge1(cost.Compare)
		if b+item > 1 {
			continue
		}
		if worst < 0 || b < bins[worst] {
			second = worst
			worst = i
		} else if second < 0 || b < bins[second] {
			second = i
		}
	}
	if second >= 0 {
		return second
	}
	return worst
}

func scanFit(items []float64, meter *cost.Meter, pick picker) []float64 {
	var bins []float64
	for _, it := range items {
		i := pick(bins, it, meter)
		if i < 0 {
			bins = append(bins, 0)
			i = len(bins) - 1
			meter.Charge1(cost.Alloc)
		}
		bins[i] += it
		meter.Charge1(cost.Move)
	}
	return bins
}

// mffd is the Modified First Fit Decreasing heuristic (Johnson & Garey):
// large items (> 1/2) each open a bin; bins are then revisited largest-gap
// first, greedily pairing a smallest small item with the largest companion
// that still fits; the leftovers are packed FFD.
func mffd(items []float64, meter *cost.Meter) []float64 {
	sorted := sortedDecreasing(items, meter)
	var bins []float64
	var small []float64 // ≤ 1/2, still descending
	for _, it := range sorted {
		meter.Charge1(cost.Compare)
		if it > 0.5 {
			bins = append(bins, it)
			meter.Charge1(cost.Alloc)
		} else {
			small = append(small, it)
		}
	}
	used := make([]bool, len(small))
	remaining := len(small)
	// Large-item bins in reverse order = increasing large-item size =
	// decreasing gap? No: bins were appended in decreasing item order, so
	// reverse order visits the smallest large item (largest gap) first.
	for b := len(bins) - 1; b >= 0 && remaining >= 2; b-- {
		gap := 1 - bins[b]
		// Smallest two unused small items.
		sm1, sm2 := -1, -1
		for i := len(small) - 1; i >= 0; i-- {
			meter.Charge1(cost.Compare)
			if used[i] {
				continue
			}
			if sm1 < 0 {
				sm1 = i
			} else {
				sm2 = i
				break
			}
		}
		if sm2 < 0 || small[sm1]+small[sm2] > gap {
			continue
		}
		// Place the smallest item, then the largest companion that fits.
		used[sm1] = true
		bins[b] += small[sm1]
		remaining--
		meter.Charge1(cost.Move)
		rest := 1 - bins[b]
		for i := 0; i < len(small); i++ {
			meter.Charge1(cost.Compare)
			if !used[i] && small[i] <= rest {
				used[i] = true
				bins[b] += small[i]
				remaining--
				meter.Charge1(cost.Move)
				break
			}
		}
	}
	// FFD the leftovers over all bins.
	for i, it := range small {
		if used[i] {
			continue
		}
		j := pickFirst(bins, it, meter)
		if j < 0 {
			bins = append(bins, 0)
			j = len(bins) - 1
			meter.Charge1(cost.Alloc)
		}
		bins[j] += it
		meter.Charge1(cost.Move)
	}
	return bins
}

// Occupancy is the accuracy metric: the mean occupied fraction of the bins
// used (1 = perfect packing).
func Occupancy(bins []float64) float64 {
	if len(bins) == 0 {
		return 1
	}
	total := 0.0
	for _, b := range bins {
		total += b
	}
	return total / float64(len(bins))
}
