package binpack

import (
	"testing"
	"testing/quick"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/rng"
)

func TestAllAlgorithmsProduceValidPackings(t *testing.T) {
	r := rng.New(1)
	for alg := 0; alg < numAlgorithms; alg++ {
		for _, g := range Generators() {
			items := g.Gen(200, r)
			bins := Pack(alg, items.Sizes, cost.NewMeter())
			validatePacking(t, AlgNames[alg], g.Name, items.Sizes, bins)
		}
	}
}

func validatePacking(t *testing.T, alg, gen string, items, bins []float64) {
	t.Helper()
	total := 0.0
	for _, b := range bins {
		if b > 1+1e-9 {
			t.Fatalf("%s on %s: bin over capacity: %v", alg, gen, b)
		}
		if b <= 0 {
			t.Fatalf("%s on %s: empty bin emitted", alg, gen)
		}
		total += b
	}
	sum := 0.0
	for _, it := range items {
		sum += it
	}
	if diff := total - sum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("%s on %s: mass not conserved: packed %v of %v", alg, gen, total, sum)
	}
}

func TestPackingValidityProperty(t *testing.T) {
	r := rng.New(2)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		n := rr.IntRange(1, 300)
		items := make([]float64, n)
		for i := range items {
			items[i] = 0.01 + 0.98*rr.Float64()
		}
		alg := rr.Intn(numAlgorithms)
		bins := Pack(alg, items, cost.NewMeter())
		total := 0.0
		for _, b := range bins {
			if b > 1+1e-9 {
				return false
			}
			total += b
		}
		sum := 0.0
		for _, it := range items {
			sum += it
		}
		return total > sum-1e-9 && total < sum+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFFDBeatsNFOnUniform(t *testing.T) {
	r := rng.New(3)
	items := GenUniform(500, r)
	nf := Pack(NextFit, items.Sizes, cost.NewMeter())
	ffd := Pack(FirstFitDecreasing, items.Sizes, cost.NewMeter())
	if len(ffd) > len(nf) {
		t.Fatalf("FFD used %d bins, NF only %d", len(ffd), len(nf))
	}
	if Occupancy(ffd) <= Occupancy(nf) {
		t.Fatalf("FFD occupancy %v not above NF %v", Occupancy(ffd), Occupancy(nf))
	}
}

func TestNFIsCheapest(t *testing.T) {
	r := rng.New(4)
	items := GenUniform(500, r)
	mNF, mBFD := cost.NewMeter(), cost.NewMeter()
	Pack(NextFit, items.Sizes, mNF)
	Pack(BestFitDecreasing, items.Sizes, mBFD)
	if mNF.Elapsed() >= mBFD.Elapsed() {
		t.Fatalf("NextFit cost %v not below BestFitDecreasing %v", mNF.Elapsed(), mBFD.Elapsed())
	}
}

func TestTripletsPackNearPerfectWithFFD(t *testing.T) {
	r := rng.New(5)
	items := GenTriplets(300, r)
	occ := Occupancy(Pack(FirstFitDecreasing, items.Sizes, cost.NewMeter()))
	if occ < 0.9 {
		t.Fatalf("FFD occupancy on triplets = %v", occ)
	}
}

func TestNearHalfIsUnpackable(t *testing.T) {
	r := rng.New(6)
	items := GenNearHalf(100, r)
	for alg := 0; alg < numAlgorithms; alg++ {
		occ := Occupancy(Pack(alg, items.Sizes, cost.NewMeter()))
		if occ > 0.6 {
			t.Fatalf("%s achieved %v occupancy on near-half items (impossible)", AlgNames[alg], occ)
		}
	}
}

func TestMFFDPairsSmallItems(t *testing.T) {
	// One large item (0.6) and two small (0.2, 0.15): MFFD should fit the
	// small ones with the large one, using a single bin.
	items := []float64{0.6, 0.2, 0.15}
	bins := Pack(ModifiedFirstFitDecreasing, items, cost.NewMeter())
	if len(bins) != 1 {
		t.Fatalf("MFFD used %d bins, want 1 (%v)", len(bins), bins)
	}
}

func TestAlmostWorstFitDiffersFromWorstFit(t *testing.T) {
	// Three bins at fills 0.1, 0.3, 0.5 after placing setup items; a new
	// 0.2 item goes to the emptiest (WF) vs second-emptiest (AWF).
	setup := []float64{0.9, 0.7, 0.5} // opens three bins decreasingly full? No: each opens its own bin.
	wf := Pack(WorstFit, append(append([]float64(nil), setup...), 0.2), cost.NewMeter())
	awf := Pack(AlmostWorstFit, append(append([]float64(nil), setup...), 0.2), cost.NewMeter())
	// WF adds 0.2 to the 0.5 bin -> fills {0.9, 0.7, 0.7}; AWF to the 0.7
	// bin -> {0.9, 0.9, 0.5}.
	if !containsFill(wf, 0.7, 2) {
		t.Fatalf("WorstFit fills = %v", wf)
	}
	if !containsFill(awf, 0.9, 2) {
		t.Fatalf("AlmostWorstFit fills = %v", awf)
	}
}

func containsFill(bins []float64, fill float64, want int) bool {
	n := 0
	for _, b := range bins {
		if b > fill-1e-9 && b < fill+1e-9 {
			n++
		}
	}
	return n == want
}

func TestOccupancyMetric(t *testing.T) {
	if occ := Occupancy(nil); occ != 1 {
		t.Fatalf("empty packing occupancy = %v", occ)
	}
	if occ := Occupancy([]float64{1, 1, 0.5}); occ < 0.83 || occ > 0.84 {
		t.Fatalf("occupancy = %v", occ)
	}
}

func TestProgramRunAccuracy(t *testing.T) {
	p := New()
	r := rng.New(7)
	items := GenTiny(300, r)
	cfg := p.Space().DefaultConfig() // AlmostWorstFit
	m := cost.NewMeter()
	acc := p.Run(cfg, items, m)
	if acc < 0.9 {
		t.Fatalf("tiny items should pack densely, accuracy %v", acc)
	}
	if m.Elapsed() == 0 {
		t.Fatal("no work charged")
	}
}

func TestSelectorPicksAlgorithmBySize(t *testing.T) {
	// NextFit below 100 items, BestFitDecreasing above: the small instance
	// must pay NF's O(n) cost and the big one BFD's sort + scan cost.
	p := New()
	cfg := p.Space().DefaultConfig()
	cfg.Selectors[0].Levels = []choice.Level{{Cutoff: 100, Choice: NextFit}}
	cfg.Selectors[0].Else = BestFitDecreasing
	r := rng.New(8)
	small := GenUniform(90, r)
	mSel, mNF := cost.NewMeter(), cost.NewMeter()
	p.Run(cfg, small, mSel)
	Pack(NextFit, small.Sizes, mNF)
	if mSel.Elapsed() != mNF.Elapsed() {
		t.Fatalf("selector did not dispatch small instance to NextFit: %v vs %v", mSel.Elapsed(), mNF.Elapsed())
	}
	big := GenUniform(400, r)
	mSelBig, mBFD := cost.NewMeter(), cost.NewMeter()
	p.Run(cfg, big, mSelBig)
	Pack(BestFitDecreasing, big.Sizes, mBFD)
	if mSelBig.Elapsed() != mBFD.Elapsed() {
		t.Fatalf("selector did not dispatch big instance to BFD: %v vs %v", mSelBig.Elapsed(), mBFD.Elapsed())
	}
}

func TestFeatureExtractorsDiscriminate(t *testing.T) {
	p := New()
	set := p.Features()
	r := rng.New(9)
	top := func(it *Items, prop int) float64 {
		vals, _ := set.ExtractAll(it)
		return vals[set.Index(prop, 2)]
	}
	tiny := GenTiny(400, r)
	nearHalf := GenNearHalf(400, r)
	sorted := GenSortedAscending(400, r)
	if a, b := top(tiny, 0), top(nearHalf, 0); a >= b {
		t.Fatalf("average: tiny %v should be below near-half %v", a, b)
	}
	if s := top(sorted, 3); s < 0.99 {
		t.Fatalf("sortedness of ascending input = %v", s)
	}
	if rg := top(tiny, 2); rg > 0.12 {
		t.Fatalf("range of tiny items = %v", rg)
	}
}

func TestGenerateMixShape(t *testing.T) {
	items := GenerateMix(MixOptions{Count: 32, Seed: 1})
	if len(items) != 32 {
		t.Fatalf("count = %d", len(items))
	}
	nearHalf := 0
	for _, it := range items {
		if it.Gen == "near-half" {
			nearHalf++
		}
	}
	if nearHalf == 0 || nearHalf > 4 {
		t.Fatalf("near-half instances = %d, want 1-4 of 32", nearHalf)
	}
	// Determinism.
	a := GenerateMix(MixOptions{Count: 5, Seed: 3})
	b := GenerateMix(MixOptions{Count: 5, Seed: 3})
	for i := range a {
		for j := range a[i].Sizes {
			if a[i].Sizes[j] != b[i].Sizes[j] {
				t.Fatal("GenerateMix not deterministic")
			}
		}
	}
}

func TestInputSensitivityAcrossHeuristics(t *testing.T) {
	// The fastest accuracy-feasible heuristic should differ between tiny
	// and uniform items: NF suffices on tiny; uniform needs a Decreasing
	// variant to hit 0.95 occupancy.
	r := rng.New(10)
	// Tiny items need enough bins that the partial last bin is amortised.
	tiny := GenTiny(4000, r)
	uniform := GenUniform(400, r)
	if occ := Occupancy(Pack(NextFit, tiny.Sizes, cost.NewMeter())); occ < 0.95 {
		t.Fatalf("NF on tiny should be feasible, occupancy %v", occ)
	}
	if occ := Occupancy(Pack(NextFit, uniform.Sizes, cost.NewMeter())); occ >= 0.95 {
		t.Fatalf("NF on uniform unexpectedly feasible (%v); sensitivity premise broken", occ)
	}
	best := 0.0
	for _, alg := range []int{FirstFitDecreasing, BestFitDecreasing, ModifiedFirstFitDecreasing} {
		if occ := Occupancy(Pack(alg, uniform.Sizes, cost.NewMeter())); occ > best {
			best = occ
		}
	}
	if best < 0.9 {
		t.Fatalf("no decreasing heuristic packs uniform well (best %v)", best)
	}
}
