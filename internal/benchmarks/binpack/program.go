package binpack

import (
	"math"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/feature"
	"inputtune/internal/rng"
)

// Items is a bin-packing input: item sizes in (0, 1].
type Items struct {
	Sizes []float64
	Gen   string
}

// Size implements feature.Input.
func (it *Items) Size() int { return len(it.Sizes) }

// Program is the Bin Packing benchmark: variable accuracy (mean bin
// occupancy, threshold 0.95) over the 13 heuristics.
type Program struct {
	space *choice.Space
	set   *feature.Set
}

// New constructs the Bin Packing program.
func New() *Program {
	p := &Program{}
	p.space = choice.NewSpace()
	p.space.AddSite("pack", AlgNames...)
	p.set = feature.MustNewSet(
		feature.Extractor{Name: "average", Levels: []feature.LevelFunc{
			momentLevel(32, false), momentLevel(256, false), momentLevel(0, false),
		}},
		feature.Extractor{Name: "deviation", Levels: []feature.LevelFunc{
			momentLevel(32, true), momentLevel(256, true), momentLevel(0, true),
		}},
		feature.Extractor{Name: "range", Levels: []feature.LevelFunc{
			rangeLevel(32), rangeLevel(256), rangeLevel(0),
		}},
		feature.Extractor{Name: "sortedness", Levels: []feature.LevelFunc{
			sortednessLevel(32), sortednessLevel(256), sortednessLevel(0),
		}},
	)
	return p
}

// Name implements core.Program.
func (p *Program) Name() string { return "binpacking" }

// Space implements core.Program.
func (p *Program) Space() *choice.Space { return p.space }

// Features implements core.Program.
func (p *Program) Features() *feature.Set { return p.set }

// HasAccuracy implements core.Program.
func (p *Program) HasAccuracy() bool { return true }

// AccuracyThreshold implements core.Program: the paper sets 0.95.
func (p *Program) AccuracyThreshold() float64 { return 0.95 }

// Run packs the items with the heuristic the selector picks for this input
// size and returns the occupancy accuracy.
func (p *Program) Run(cfg *choice.Config, in feature.Input, meter *cost.Meter) float64 {
	items := in.(*Items)
	alg := cfg.Decide(0, len(items.Sizes))
	bins := Pack(alg, items.Sizes, meter)
	return Occupancy(bins)
}

// --- feature extractors -------------------------------------------------

func strideFor(budget, n int) int {
	if budget <= 0 || budget >= n {
		return 1
	}
	return n / budget
}

// momentLevel returns the sample mean (wantDev=false) or standard
// deviation (wantDev=true) of the item sizes.
func momentLevel(budget int, wantDev bool) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		sizes := in.(*Items).Sizes
		n := len(sizes)
		if n == 0 {
			return 0
		}
		stride := strideFor(budget, n)
		var sum, sumsq, cnt float64
		for i := 0; i < n; i += stride {
			m.Charge1(cost.Scan)
			sum += sizes[i]
			sumsq += sizes[i] * sizes[i]
			cnt++
		}
		mean := sum / cnt
		if !wantDev {
			return mean
		}
		v := sumsq/cnt - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v)
	}
}

func rangeLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		sizes := in.(*Items).Sizes
		n := len(sizes)
		if n == 0 {
			return 0
		}
		stride := strideFor(budget, n)
		lo, hi := sizes[0], sizes[0]
		for i := 0; i < n; i += stride {
			m.Charge1(cost.Scan)
			if sizes[i] < lo {
				lo = sizes[i]
			}
			if sizes[i] > hi {
				hi = sizes[i]
			}
		}
		return hi - lo
	}
}

func sortednessLevel(budget int) feature.LevelFunc {
	return func(in feature.Input, m *cost.Meter) float64 {
		sizes := in.(*Items).Sizes
		n := len(sizes)
		if n < 2 {
			return 1
		}
		stride := strideFor(budget, n-1)
		sorted, count := 0, 0
		for i := 0; i+stride < n; i += stride {
			m.Charge(cost.Scan, 2)
			if sizes[i] <= sizes[i+stride] {
				sorted++
			}
			count++
		}
		if count == 0 {
			return 1
		}
		return float64(sorted) / float64(count)
	}
}

// --- input generators ----------------------------------------------------

// Generator produces a packing instance of roughly the requested size.
type Generator struct {
	Name string
	Gen  func(n int, r *rng.RNG) *Items
}

// Generators spans easy (tiny, complementary) and hard (near-half)
// distributions so that the fastest accuracy-feasible heuristic varies.
func Generators() []Generator {
	return []Generator{
		{"tiny", GenTiny},
		{"small-uniform", GenSmallUniform},
		{"uniform", GenUniform},
		{"triplets", GenTriplets},
		{"complement-pairs", GenComplementPairs},
		{"near-half", GenNearHalf},
		{"skewed", GenSkewed},
		{"sorted-ascending", GenSortedAscending},
	}
}

// GenTiny draws items ≤ 0.05: any heuristic packs densely; NextFit's O(n)
// pass is the fastest feasible choice.
func GenTiny(n int, r *rng.RNG) *Items {
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.002 + 0.048*r.Float64()
	}
	return &Items{Sizes: s, Gen: "tiny"}
}

// GenSmallUniform draws from (0, 0.3).
func GenSmallUniform(n int, r *rng.RNG) *Items {
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.01 + 0.29*r.Float64()
	}
	return &Items{Sizes: s, Gen: "small-uniform"}
}

// GenUniform draws from (0, 0.6) — dense packings exist but greedy online
// heuristics leave gaps; the Decreasing family earns its sort.
func GenUniform(n int, r *rng.RNG) *Items {
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.01 + 0.59*r.Float64()
	}
	return &Items{Sizes: s, Gen: "uniform"}
}

// GenTriplets emits shuffled triples summing exactly to 1 plus ~15% tiny
// "dust" items. A perfect packing of the triples exists and the dust lets
// greedy heuristics fill the gaps they leave, so good heuristics can reach
// the 0.95 occupancy target while careless ones cannot.
func GenTriplets(n int, r *rng.RNG) *Items {
	var s []float64
	budget := n * 60 / 100
	for len(s)+3 <= budget {
		a := 0.25 + 0.2*r.Float64()
		b := 0.25 + 0.2*r.Float64()
		s = append(s, a, b, 1-a-b)
	}
	for len(s) < n {
		s = append(s, 0.005+0.045*r.Float64())
	}
	r.ShuffleFloats(s)
	return &Items{Sizes: s, Gen: "triplets"}
}

// GenComplementPairs emits shuffled pairs (x, 1-x).
func GenComplementPairs(n int, r *rng.RNG) *Items {
	var s []float64
	for len(s)+2 <= n {
		x := 0.15 + 0.55*r.Float64()
		s = append(s, x, 1-x)
	}
	for len(s) < n {
		s = append(s, 0.3)
	}
	r.ShuffleFloats(s)
	return &Items{Sizes: s, Gen: "complement-pairs"}
}

// GenNearHalf draws items just above 1/2: every bin holds one item, so no
// heuristic can exceed ~0.5 occupancy — the accuracy target is unreachable
// and the learner must fall back to max-accuracy labelling.
func GenNearHalf(n int, r *rng.RNG) *Items {
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.51 + 0.05*r.Float64()
	}
	return &Items{Sizes: s, Gen: "near-half"}
}

// GenSkewed draws a truncated exponential — many small items, a few large.
func GenSkewed(n int, r *rng.RNG) *Items {
	s := make([]float64, n)
	for i := range s {
		v := r.ExpFloat64() * 0.15
		if v > 0.95 {
			v = 0.95
		}
		if v < 0.01 {
			v = 0.01
		}
		s[i] = v
	}
	return &Items{Sizes: s, Gen: "skewed"}
}

// GenSortedAscending emits an already ascending stream — the Decreasing
// variants' sort is pure overhead turned upside down.
func GenSortedAscending(n int, r *rng.RNG) *Items {
	it := GenUniform(n, r)
	sortAscending(it.Sizes)
	it.Gen = "sorted-ascending"
	return it
}

func sortAscending(s []float64) {
	// Insertion sort: generator-side, not charged to any meter.
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// MixOptions controls the input battery.
type MixOptions struct {
	Count   int
	MinSize int // default 64
	MaxSize int // default 512
	Seed    uint64
}

// GenerateMix produces a deterministic battery cycling the generators.
// The unreachable near-half instances are kept rare (1 in 32) so the 95%
// satisfaction threshold stays attainable, as in the paper's workloads;
// tiny-item instances are scaled up so the partial final bin does not sink
// their occupancy below the accuracy threshold.
func GenerateMix(opts MixOptions) []*Items {
	if opts.MinSize <= 0 {
		opts.MinSize = 64
	}
	if opts.MaxSize < opts.MinSize {
		opts.MaxSize = 512
	}
	r := rng.New(opts.Seed)
	gens := Generators()
	out := make([]*Items, opts.Count)
	easy := 0
	for i := range out {
		n := r.IntRange(opts.MinSize, opts.MaxSize)
		if i%32 == 31 {
			out[i] = GenNearHalf(n, r)
			continue
		}
		g := gens[easy%len(gens)]
		easy++
		if g.Name == "near-half" {
			g = gens[easy%len(gens)]
			easy++
		}
		if g.Name == "tiny" || g.Name == "skewed" {
			n *= 8 // many bins needed before occupancy can reach 0.95
		}
		out[i] = g.Gen(n, r)
	}
	return out
}
