package drift_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/core"
	"inputtune/internal/drift"
	"inputtune/internal/feature"
	"inputtune/internal/serve"
)

// TestConcurrentClassifyThroughRetrain is the zero-downtime contract under
// the race detector: several goroutines hammer Classify with shifted
// traffic while the drift controller detects, retrains in the background,
// and hot-publishes a new generation mid-run. Every request must succeed,
// and every response's label must match ground-truth classification by the
// exact model generation that served it — the response is only correct
// relative to the snapshot it came from, so the test captures each
// published artifact and replays every unique (generation, input) pair
// against an offline reload of that artifact.
func TestConcurrentClassifyThroughRetrain(t *testing.T) {
	_, artifact := fixture(t)
	reg := serve.NewRegistry()
	if err := reg.Register(sortbench.New()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load(artifact); err != nil {
		t.Fatal(err)
	}
	svc := serve.NewService(reg, serve.Options{})
	defer svc.Close()

	// Every generation's artifact bytes, including the one serving before
	// the run starts. Publish routes through the service hot-reload path.
	var artMu sync.Mutex
	artifacts := map[uint64][]byte{1: artifact}
	ctrl := drift.NewController(drift.Options{
		Registry:  reg,
		Train:     core.Options{K1: 4, Seed: 11, TunerPopulation: 6, TunerGenerations: 4, Parallel: true},
		Detector:  drift.DetectorOptions{Window: 48},
		Capacity:  32,
		MinRetain: 12,
		Seed:      2,
		Publish: func(_ string, art []byte) error {
			snap, err := svc.Load(art)
			if err != nil {
				return err
			}
			artMu.Lock()
			artifacts[snap.Generation] = append([]byte(nil), art...)
			artMu.Unlock()
			return nil
		},
	})
	ctrl.Bind(svc)

	const workers = 4
	const perWorker = 400
	const maxPasses = 400
	type rec struct {
		gen   uint64
		label int
		idx   int
	}
	workerInputs := make([][]core.Input, workers)
	for w := range workerInputs {
		workerInputs[w] = shiftedInputs(perWorker, 9000+uint64(w))
	}
	results := make([][]rec, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ins := workerInputs[w]
			for pass := 0; pass < maxPasses; pass++ {
				// A pass that STARTS after a retrain has published is
				// guaranteed post-reload traffic; run one such full pass,
				// then stop. Until then, keep hammering so the publish
				// lands while requests are in flight.
				before := ctrl.Retrains("sort")
				for i, in := range ins {
					d, err := svc.Classify("sort", in)
					if err != nil {
						errs[w] = fmt.Errorf("pass %d request %d: %w", pass, i, err)
						return
					}
					results[w] = append(results[w], rec{gen: d.Generation, label: d.Landmark, idx: i})
				}
				if before >= 1 {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ctrl.Wait()

	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: request failed during retrain/reload: %v", w, err)
		}
	}
	if ctrl.Retrains("sort") == 0 {
		t.Fatal("no retrain published during the run; the reload path was never exercised")
	}

	// Dedupe to unique (generation, worker, input) triples; the same input
	// served by the same generation must always get the same label.
	type key struct {
		gen    uint64
		worker int
		idx    int
	}
	seen := make(map[key]int)
	var maxGen uint64
	for w := range results {
		for _, r := range results[w] {
			k := key{gen: r.gen, worker: w, idx: r.idx}
			if prev, ok := seen[k]; ok {
				if prev != r.label {
					t.Fatalf("worker %d input %d: generation %d served labels %d and %d", w, r.idx, r.gen, prev, r.label)
				}
				continue
			}
			seen[k] = r.label
			if r.gen > maxGen {
				maxGen = r.gen
			}
		}
	}
	if maxGen < 2 {
		t.Fatalf("no response served by a retrained generation (max generation seen %d)", maxGen)
	}

	// Reload every captured artifact and check each unique response against
	// ground truth for the generation that served it.
	type oracle struct {
		model *core.Model
		set   *feature.Set
	}
	artMu.Lock()
	oracles := make(map[uint64]oracle, len(artifacts))
	for gen, art := range artifacts {
		m, err := core.LoadModel(sortbench.New(), bytes.NewReader(art))
		if err != nil {
			t.Fatalf("generation %d artifact does not reload: %v", gen, err)
		}
		oracles[gen] = oracle{model: m, set: m.Program.Features()}
	}
	artMu.Unlock()
	checked := 0
	for k, label := range seen {
		o, ok := oracles[k.gen]
		if !ok {
			t.Fatalf("response served by generation %d, but no artifact was ever published for it", k.gen)
		}
		want := o.model.Production.ClassifyInput(o.set, workerInputs[k.worker][k.idx], nil)
		if label != want {
			t.Fatalf("worker %d input %d: generation %d served label %d, ground truth is %d", k.worker, k.idx, k.gen, label, want)
		}
		checked++
	}
	t.Logf("verified %d unique (generation, input) responses across %d generations", checked, len(oracles))
}
