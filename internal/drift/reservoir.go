package drift

import (
	"container/heap"
	"math"
	"sort"

	"inputtune/internal/rng"
)

// Reservoir is a bounded weighted sample of served inputs, kept as
// encoded binary wire frames (the only deep-copyable form of a pooled
// request input). It implements Efraimidis–Spirakis A-Res: each offered
// item draws key = u^(1/w) for u ~ U(0,1), and the reservoir keeps the
// capacity items with the largest keys via a min-heap — a single pass,
// O(log C) per retained item, where an item's retention probability grows
// with its weight. With boundary-proximity weights this retains the
// inputs that say the most about where the landmark regions meet, instead
// of a uniform sample dominated by easy interior points.
//
// The payload is produced lazily: Offer decides acceptance from the
// weight alone and only then asks for the frame bytes, so rejected
// requests (the common case once the reservoir is warm) cost one RNG draw
// and one float compare — nothing on the serving path encodes or copies.
//
// Not safe for concurrent use; the Controller serializes access.
type Reservoir struct {
	capacity int
	r        *rng.RNG
	h        resHeap
	seq      uint64 // arrival counter, for deterministic snapshot order
	offered  uint64
}

type resItem struct {
	key   float64
	seq   uint64
	frame []byte
}

type resHeap []resItem

func (h resHeap) Len() int           { return len(h) }
func (h resHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h resHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resHeap) Push(x any)        { *h = append(*h, x.(resItem)) }
func (h *resHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// NewReservoir builds a reservoir of the given capacity (default 256)
// with a deterministic RNG.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		capacity = 256
	}
	return &Reservoir{capacity: capacity, r: rng.New(seed)}
}

// Offer considers one input with the given weight (> 0). When the A-Res
// draw accepts it, encode is called exactly once to materialise the
// frame; encode returning nil aborts the insertion (an input that cannot
// be encoded cannot be replayed into a retrain).
func (s *Reservoir) Offer(weight float64, encode func() []byte) {
	s.offered++
	if weight <= 0 || math.IsNaN(weight) {
		return
	}
	u := s.r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	key := math.Pow(u, 1/weight)
	if len(s.h) >= s.capacity && key <= s.h[0].key {
		return
	}
	frame := encode()
	if frame == nil {
		return
	}
	if len(s.h) >= s.capacity {
		heap.Pop(&s.h)
	}
	heap.Push(&s.h, resItem{key: key, seq: s.seq, frame: frame})
	s.seq++
}

// Len reports the current occupancy.
func (s *Reservoir) Len() int { return len(s.h) }

// Offered reports how many inputs have been considered since the last
// Reset.
func (s *Reservoir) Offered() uint64 { return s.offered }

// Snapshot returns the retained frames in arrival order — the stable,
// schedule-independent-given-the-same-stream ordering the deterministic
// retrain differential relies on. The returned slices are the retained
// backing arrays; the caller must not mutate them.
func (s *Reservoir) Snapshot() [][]byte {
	items := append([]resItem(nil), s.h...)
	sort.Slice(items, func(i, j int) bool { return items[i].seq < items[j].seq })
	frames := make([][]byte, len(items))
	for i, it := range items {
		frames[i] = it.frame
	}
	return frames
}

// Reset drops every retained frame and the counters; the RNG stream
// continues (resetting it would correlate consecutive baselines).
func (s *Reservoir) Reset() {
	s.h = s.h[:0]
	s.seq = 0
	s.offered = 0
}
