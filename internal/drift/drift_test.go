package drift_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/core"
	"inputtune/internal/drift"
	"inputtune/internal/serve"
)

// The fixture distribution pair: the model trains on the synthetic
// generator battery at small sizes; shifted traffic is the registry-like
// workload (heavy duplication, block-sorted structure) at much larger
// sizes — a genuine feature-distribution shift on sortedness, duplication
// and size, not just noise.
func trainOpts() core.Options {
	return core.Options{K1: 4, Seed: 19, TunerPopulation: 6, TunerGenerations: 4, Parallel: true}
}

func stationaryInputs(n int, seed uint64) []core.Input {
	lists := sortbench.GenerateMix(sortbench.MixOptions{Count: n, Seed: seed, MaxSize: 512})
	out := make([]core.Input, len(lists))
	for i, l := range lists {
		out[i] = l
	}
	return out
}

func shiftedInputs(n int, seed uint64) []core.Input {
	lists := sortbench.GenerateMix(sortbench.MixOptions{Count: n, Seed: seed, RealLike: true, MinSize: 1024, MaxSize: 2048})
	out := make([]core.Input, len(lists))
	for i, l := range lists {
		out[i] = l
	}
	return out
}

var fix struct {
	once     sync.Once
	model    *core.Model
	artifact []byte
}

// fixture trains the shared sort model once per test binary and requires
// a static-subset production classifier — the path the sampling hook
// taps; every test here is vacuous without it.
func fixture(t *testing.T) (*core.Model, []byte) {
	t.Helper()
	fix.once.Do(func() {
		fix.model = core.TrainModel(sortbench.New(), stationaryInputs(48, 5), trainOpts())
		var buf bytes.Buffer
		if err := core.SaveModel(fix.model, &buf); err != nil {
			panic(err)
		}
		fix.artifact = buf.Bytes()
	})
	if fix.model.Production.Kind != core.SubsetTree || len(fix.model.Production.Static) == 0 {
		t.Fatalf("fixture model production is %q, need a static-subset tree for the sampling hook", fix.model.Production.Name)
	}
	return fix.model, fix.artifact
}

// rows extracts full feature rows for detector-level tests.
func rows(t *testing.T, m *core.Model, inputs []core.Input) [][]float64 {
	t.Helper()
	set := m.Program.Features()
	out := make([][]float64, len(inputs))
	for i, in := range inputs {
		r, _ := set.ExtractAll(in)
		out[i] = r
	}
	return out
}

// TestDetectorQuietOnStationaryTraffic is the false-positive bound: live
// traffic drawn from the SAME distribution the model trained on (fresh
// seeds) must never fire the detector, across many seeds and windows.
func TestDetectorQuietOnStationaryTraffic(t *testing.T) {
	m, _ := fixture(t)
	const window = 256 // the default window the thresholds are calibrated to
	for seed := uint64(1); seed <= 8; seed++ {
		det := drift.NewDetector(m.Summary, m.Scaler.Means, m.Scaler.Stds, drift.DetectorOptions{})
		for _, row := range rows(t, m, stationaryInputs(3*window, 1000+seed)) {
			det.Observe(row, m.Production.Static)
		}
		if det.Fired() {
			effect, tv := det.Stats()
			t.Errorf("seed %d: detector fired on stationary traffic (effect %.3f, tv %.3f)", seed, effect, tv)
		}
	}
}

// TestDetectorFiresOnShiftWithinBound: a genuine distribution shift must
// fire within two windows — the tail of the window the shift lands in
// plus one fully shifted window.
func TestDetectorFiresOnShiftWithinBound(t *testing.T) {
	m, _ := fixture(t)
	const window = 256 // default window: bound is 2×Window at default thresholds
	for seed := uint64(1); seed <= 4; seed++ {
		det := drift.NewDetector(m.Summary, m.Scaler.Means, m.Scaler.Stds, drift.DetectorOptions{})
		fired := -1
		for i, row := range rows(t, m, shiftedInputs(2*window, 2000+seed)) {
			det.Observe(row, m.Production.Static)
			if det.Fired() {
				fired = i + 1
				break
			}
		}
		if fired < 0 {
			effect, tv := det.Stats()
			t.Fatalf("seed %d: detector never fired on shifted traffic within %d samples (effect %.3f, tv %.3f)",
				seed, 2*window, effect, tv)
		}
		if fired > 2*window {
			t.Fatalf("seed %d: detector took %d samples, bound is %d", seed, fired, 2*window)
		}
	}
}

// TestDetectorResetRequiresFreshEvidence: after Reset (a retrain
// published), the old verdict must not linger.
func TestDetectorResetRequiresFreshEvidence(t *testing.T) {
	m, _ := fixture(t)
	det := drift.NewDetector(m.Summary, m.Scaler.Means, m.Scaler.Stds, drift.DetectorOptions{Window: 32})
	for _, row := range rows(t, m, shiftedInputs(64, 7)) {
		det.Observe(row, m.Production.Static)
	}
	if !det.Fired() {
		t.Fatal("detector did not fire on shifted traffic")
	}
	det.Reset()
	if det.Fired() {
		t.Fatal("fired flag survived Reset")
	}
	for _, row := range rows(t, m, stationaryInputs(64, 11)) {
		det.Observe(row, m.Production.Static)
	}
	if det.Fired() {
		t.Fatal("detector re-fired on stationary traffic after reset")
	}
}

func TestReservoirBoundedAndDeterministic(t *testing.T) {
	enc := func(i int) func() []byte {
		return func() []byte { return []byte(fmt.Sprintf("frame-%d", i)) }
	}
	a := drift.NewReservoir(8, 42)
	b := drift.NewReservoir(8, 42)
	for i := 0; i < 500; i++ {
		a.Offer(1, enc(i))
		b.Offer(1, enc(i))
	}
	if a.Len() != 8 {
		t.Fatalf("reservoir holds %d, capacity 8", a.Len())
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa) != len(sb) {
		t.Fatalf("same-seed reservoirs retained %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if !bytes.Equal(sa[i], sb[i]) {
			t.Fatalf("same-seed reservoirs diverged at %d: %q vs %q", i, sa[i], sb[i])
		}
	}
	// Snapshot returns retained frames in arrival order.
	prev := -1
	for _, f := range sa {
		var n int
		if _, err := fmt.Sscanf(string(f), "frame-%d", &n); err != nil {
			t.Fatalf("unexpected frame %q", f)
		}
		if n <= prev {
			t.Fatalf("snapshot out of arrival order: frame-%d after frame-%d", n, prev)
		}
		prev = n
	}
}

// TestReservoirPrefersInformativeInputs: with boundary-proximity weights,
// high-weight items must dominate the retained set.
func TestReservoirPrefersInformativeInputs(t *testing.T) {
	r := drift.NewReservoir(10, 7)
	for i := 0; i < 400; i++ {
		w := 0.02
		tag := byte('l')
		if i%2 == 0 {
			w, tag = 2.0, 'h'
		}
		func(tag byte) { r.Offer(w, func() []byte { return []byte{tag} }) }(tag)
	}
	high := 0
	for _, f := range r.Snapshot() {
		if f[0] == 'h' {
			high++
		}
	}
	if high < 8 {
		t.Fatalf("only %d/10 retained items are high-weight; A-Res should strongly prefer them", high)
	}
}

// TestReservoirEncodesLazily: once the reservoir is warm, most offers are
// rejected on the key draw alone and never pay for encoding.
func TestReservoirEncodesLazily(t *testing.T) {
	r := drift.NewReservoir(10, 3)
	encodes := 0
	for i := 0; i < 2000; i++ {
		r.Offer(1, func() []byte { encodes++; return []byte{0} })
	}
	if encodes >= 400 {
		t.Fatalf("%d encodes for 2000 offers at capacity 10; acceptance should be rare once warm", encodes)
	}
	if r.Offered() != 2000 {
		t.Fatalf("offered counter %d, want 2000", r.Offered())
	}
}

// driveUntilRetrain pushes shifted traffic through the service until the
// controller completes `want` retrains (or the input budget runs out).
func driveUntilRetrain(t *testing.T, svc *serve.Service, ctrl *drift.Controller, inputs []core.Input, want uint64) {
	t.Helper()
	for i, in := range inputs {
		if _, err := svc.Classify("sort", in); err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
		if ctrl.Retrains("sort") >= want {
			return
		}
	}
	ctrl.Wait()
	if ctrl.Retrains("sort") < want {
		st := ctrl.Status()["sort"]
		t.Fatalf("no retrain after %d shifted requests (status %+v)", len(inputs), st)
	}
}

// TestControllerRetrainByteParity is the deterministic-seed differential:
// the artifact a drift-triggered background retrain publishes must be
// byte-identical to an offline TrainModel+SaveModel over the identical
// retained input set, decoded from the same frames.
func TestControllerRetrainByteParity(t *testing.T) {
	_, artifact := fixture(t)
	reg := serve.NewRegistry()
	if err := reg.Register(sortbench.New()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load(artifact); err != nil {
		t.Fatal(err)
	}
	svc := serve.NewService(reg, serve.Options{})
	defer svc.Close()

	retrainOpts := core.Options{K1: 4, Seed: 7, TunerPopulation: 6, TunerGenerations: 4, Parallel: true}
	var mu sync.Mutex
	var events []drift.RetrainEvent
	ctrl := drift.NewController(drift.Options{
		Registry:  reg,
		Train:     retrainOpts,
		Detector:  drift.DetectorOptions{Window: 48},
		Capacity:  32,
		MinRetain: 12,
		Seed:      1,
		Publish: func(_ string, artifact []byte) error {
			_, err := svc.Load(artifact)
			return err
		},
		OnRetrain: func(ev drift.RetrainEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	ctrl.Bind(svc)

	driveUntilRetrain(t, svc, ctrl, shiftedInputs(2000, 77), 1)
	ctrl.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no retrain event recorded")
	}
	ev := events[0]
	if ev.Err != nil {
		t.Fatalf("retrain failed: %v", ev.Err)
	}
	if len(ev.Artifact) == 0 {
		t.Fatal("retrain event carries no artifact")
	}

	// Offline differential: decode the retained frames by hand and run
	// the offline pipeline — NOT RetrainArtifact — so the test would
	// catch the online path diverging from offline training semantics.
	inputs := make([]core.Input, len(ev.Frames))
	for i, frame := range ev.Frames {
		c, in, err := serve.DecodeBinaryRequest(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("decoding retained frame %d: %v", i, err)
		}
		if c.Name != "sort" {
			t.Fatalf("frame %d is for %q", i, c.Name)
		}
		inputs[i] = in
	}
	offline := core.TrainModel(sortbench.New(), inputs, retrainOpts)
	var buf bytes.Buffer
	if err := core.SaveModel(offline, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), ev.Artifact) {
		t.Fatalf("drift-triggered retrain artifact differs from offline training on the identical retained set (%d vs %d bytes)",
			len(ev.Artifact), buf.Len())
	}

	// The publish went through the hot-reload path: generation bumped,
	// new model carries a summary of the shifted distribution.
	snap, ok := reg.Get("sort")
	if !ok || snap.Generation < 2 {
		t.Fatalf("registry still at generation %d after retrain", snap.Generation)
	}
	if snap.Model.Summary == nil {
		t.Fatal("retrained artifact carries no summary — the next drift cycle would be blind")
	}
}

// TestControllerDisabledOnSummarylessModel: a pre-drift artifact (no
// summary section) must serve normally with the loop inert.
func TestControllerDisabledOnSummarylessModel(t *testing.T) {
	m, _ := fixture(t)
	stripped := *m
	stripped.Summary = nil
	var buf bytes.Buffer
	if err := core.SaveModel(&stripped, &buf); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if err := reg.Register(sortbench.New()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load(buf.Bytes()); err != nil {
		t.Fatalf("summaryless artifact rejected: %v", err)
	}
	svc := serve.NewService(reg, serve.Options{})
	defer svc.Close()
	ctrl := drift.NewController(drift.Options{
		Registry: reg,
		Train:    trainOpts(),
		Detector: drift.DetectorOptions{Window: 16},
		Publish:  func(string, []byte) error { t.Error("publish called for summaryless model"); return nil },
	})
	ctrl.Bind(svc)
	for _, in := range shiftedInputs(100, 3) {
		if _, err := svc.Classify("sort", in); err != nil {
			t.Fatalf("classify failed: %v", err)
		}
	}
	ctrl.Wait()
	st := ctrl.Status()["sort"]
	if st.Drifted || st.Retraining || st.Retrains != 0 {
		t.Fatalf("drift loop active on summaryless model: %+v", st)
	}
}
