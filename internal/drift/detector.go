package drift

import (
	"math"

	"inputtune/internal/core"
)

// DetectorOptions tunes the drift test. Zero values select defaults
// calibrated so that stationary traffic stays quiet across seeds (the
// false-positive bound the table tests enforce) while a genuine
// distribution shift fires within a couple of windows.
type DetectorOptions struct {
	// Window is the number of observed requests per test window
	// (default 256). The detector decides only at window boundaries, so
	// a shift fires after at most 2×Window samples: the tail of the
	// window it arrived in plus one full shifted window.
	Window int
	// EffectThreshold is the standardized mean-shift trigger (default
	// 0.25): the detector fires when any observed feature's live mean,
	// in the training z-score space, moves this many training standard
	// deviations from the training mean. Calibrated against the sort
	// battery at the default window: stationary 256-sample windows stay
	// under ~0.15 across seeds (sample-mean noise ~1/sqrt(256) per
	// feature, maximized over the observed subset), while the registry-
	// workload shift lands at 0.33+ — so 0.25 splits the gap with ~2x
	// margin against false fires.
	EffectThreshold float64
	// AssignThreshold is the total-variation trigger (default 0.15): the
	// detector fires when the live nearest-centroid assignment histogram
	// is this far (in TV distance, 0..1) from the training weights —
	// which were computed with the identical restricted-dims assignment
	// rule (core.SummarizeTraining), so in-distribution traffic sits at
	// zero expected TV plus multinomial window noise (≤ ~0.07 at window
	// 256). Catches shifts that move mass between clusters without
	// moving any single feature's mean far.
	AssignThreshold float64
}

func (o *DetectorOptions) setDefaults() {
	if o.Window <= 0 {
		o.Window = 256
	}
	if o.EffectThreshold <= 0 {
		o.EffectThreshold = 0.25
	}
	if o.AssignThreshold <= 0 {
		o.AssignThreshold = 0.15
	}
}

// Detector is one benchmark's windowed drift test against its model's
// training-distribution summary. Not safe for concurrent use — the
// Controller serializes access; tests drive it directly.
type Detector struct {
	opts    DetectorOptions
	summary *core.Summary
	means   []float64
	stds    []float64

	// indices is the observed feature subset, pinned on first Observe
	// (the production classifier's static subset is constant per model).
	indices []int
	zrow    []float64 // full-width z-score scratch, populated at indices

	n       int       // samples in the current window
	featSum []float64 // per-observed-index z-value sums
	counts  []float64 // per-centroid assignment counts

	fired      bool
	lastEffect float64
	lastTV     float64
}

// NewDetector builds a detector over the model's artifact summary and
// scaler moments. A zero std is treated as 1 (a constant training feature
// carries no drift signal of its own but must not divide by zero).
func NewDetector(summary *core.Summary, means, stds []float64, opts DetectorOptions) *Detector {
	opts.setDefaults()
	return &Detector{opts: opts, summary: summary, means: means, stds: stds}
}

// Observe feeds one served request's feature row (raw, unscaled, with
// only the positions in indices populated — exactly serve.Sample's
// contract) into the current window and returns the input's
// informativeness weight for the retention reservoir: how close it sits
// to the Level-1 decision boundary, as the nearest-over-second-nearest
// centroid distance ratio in (0, 1]. Boundary-hugging inputs (ratio near
// 1) are the ones whose landmark assignment is least certain, so they
// carry the most information about where a retrain should redraw the
// regions.
func (d *Detector) Observe(row []float64, indices []int) (weight float64) {
	if d.indices == nil {
		d.indices = append([]int(nil), indices...)
		d.featSum = make([]float64, len(d.indices))
		d.counts = make([]float64, len(d.summary.Centroids))
		d.zrow = make([]float64, len(d.means))
	}
	for _, f := range indices {
		std := d.stds[f]
		if std <= 0 {
			std = 1
		}
		d.zrow[f] = (row[f] - d.means[f]) / std
	}
	for i, f := range d.indices {
		d.featSum[i] += d.zrow[f]
	}
	best, _, d1, d2 := d.summary.Nearest2(d.zrow, d.indices)
	d.counts[best]++
	d.n++
	if d.n >= d.opts.Window {
		d.closeWindow()
	}
	const eps = 1e-9
	return eps + math.Sqrt((d1+eps)/(d2+eps))
}

// closeWindow evaluates the two drift statistics over the completed
// window and resets the accumulators. Firing is sticky until Reset: once
// the live distribution has been declared drifted, the verdict stands
// until a retrain installs a new baseline.
func (d *Detector) closeWindow() {
	n := float64(d.n)
	effect := 0.0
	for i := range d.featSum {
		// The training distribution is zero-mean unit-variance in z-space,
		// so the live window's mean z-value IS the standardized mean shift.
		if e := math.Abs(d.featSum[i] / n); e > effect {
			effect = e
		}
		d.featSum[i] = 0
	}
	tv := 0.0
	for c := range d.counts {
		tv += math.Abs(d.counts[c]/n - d.summary.Weights[c])
		d.counts[c] = 0
	}
	tv /= 2
	d.lastEffect, d.lastTV = effect, tv
	if effect > d.opts.EffectThreshold || tv > d.opts.AssignThreshold {
		d.fired = true
	}
	d.n = 0
}

// Fired reports whether any completed window has crossed a threshold
// since the last Reset.
func (d *Detector) Fired() bool { return d.fired }

// Stats returns the statistics of the last completed window.
func (d *Detector) Stats() (effect, tv float64) { return d.lastEffect, d.lastTV }

// Reset clears the fired flag and the in-progress window — called when a
// retrain publishes and the baseline changes.
func (d *Detector) Reset() {
	d.fired = false
	d.n = 0
	d.lastEffect, d.lastTV = 0, 0
	for i := range d.featSum {
		d.featSum[i] = 0
	}
	for c := range d.counts {
		d.counts[c] = 0
	}
}
