// Package drift closes the loop the paper leaves open: a model trained
// once on landmark inputs keeps serving while production traffic drifts
// away from the distribution it was tuned for. The package watches served
// requests through the serve.SampleObserver tap (the feature row is
// already extracted on the classification path, so observation is free),
// compares the live feature distribution against the training-
// distribution Summary persisted in the model artifact, retains the most
// informative served inputs in a bounded weighted reservoir, and — when
// the detector fires — retrains the full two-level pipeline on the
// retained set in the background and publishes the new artifact through
// the existing hot-reload path, dropping zero requests.
//
// Three pieces, separable for testing:
//
//   - Detector: windowed two-signal drift test against the artifact
//     summary — per-feature standardized mean shift (the live mean of
//     z-scored features; the training mean is 0 by construction) and the
//     total-variation distance between the live nearest-centroid
//     assignment histogram and the training cluster weights.
//   - Reservoir: bounded information-weighted retention (Efraimidis-
//     Spirakis A-Res) where an input's weight is its proximity to the
//     Level-1 decision boundary (nearest over second-nearest centroid
//     distance), per "Adaptive sampling by information maximization"
//     (PAPERS.md) — inputs near the boundary pin down where landmark
//     regions meet, which is what retraining needs most.
//   - Controller: the serve-side glue — implements serve.SampleObserver,
//     owns per-benchmark detector+reservoir state, runs retrains on a
//     background goroutine via core's deterministic TrainModel, and
//     publishes through a pluggable hook (Service.Load for one replica,
//     fleet.Router.RollingReload fleet-wide).
package drift
