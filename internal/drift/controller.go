package drift

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sync"

	"inputtune/internal/core"
	"inputtune/internal/obs"
	"inputtune/internal/serve"
)

// Options configures a Controller.
type Options struct {
	// Registry resolves benchmark names to live model snapshots — the
	// same registry the serving path reads, so the controller's baseline
	// (summary + scaler) always matches the model that served a sample.
	Registry *serve.Registry
	// Train are the core training options a drift-triggered retrain runs
	// with (seed and all — retrains are as deterministic as offline
	// training; the byte-parity differential test depends on it).
	Train core.Options
	// RetrainBudget caps tuner evaluations per landmark during
	// drift-triggered retrains (core.Options.TunerBudget). 0 keeps
	// Train.TunerBudget as given (usually the meta-tuner's self-tuned
	// default). Continuous retraining competes with serving for the same
	// cores, so operators lower this to trade retrain quality for a
	// shorter publish latency.
	RetrainBudget int
	// Detector tunes the drift test.
	Detector DetectorOptions
	// Capacity bounds the per-benchmark retention reservoir (default 256).
	Capacity int
	// MinRetain is the smallest reservoir occupancy a retrain may start
	// from (default 32, floor 2 — TrainModel needs two inputs).
	MinRetain int
	// Publish ships a retrained artifact: serve.Service.Load for a single
	// replica, fleet.Router.RollingReload fleet-wide. Required for the
	// loop to close; nil means detect-only (status surfaces still work).
	Publish func(benchmark string, artifact []byte) error
	// OnRetrain, when non-nil, observes every retrain attempt after it
	// completes (test hook: carries the exact retained frames and the
	// published artifact bytes for the offline differential).
	OnRetrain func(RetrainEvent)
	// Seed derives the per-benchmark reservoir RNG streams.
	Seed uint64
	// Logger receives structured progress records (detector fires, retrain
	// outcomes, disabled baselines). Nil discards them.
	Logger *slog.Logger
	// Tracer, when non-nil, records one forced lifecycle trace per
	// detector fire: a detector_fire event, then retrain and publish spans
	// from the background goroutine. Nil costs nothing.
	Tracer *obs.Tracer
}

// RetrainEvent reports one completed retrain attempt.
type RetrainEvent struct {
	Benchmark string
	// Frames are the retained binary wire frames the retrain trained on,
	// in arrival order.
	Frames [][]byte
	// Artifact is the serialized retrained model (nil when Err != nil).
	Artifact []byte
	Err      error
}

// benchState is one benchmark's drift-loop state. Its mutex serializes
// the observe path with status reads and retrain completion; the
// background retrain itself runs outside the lock.
type benchState struct {
	mu         sync.Mutex
	generation uint64
	disabled   bool // model carries no summary (pre-drift artifact)
	det        *Detector
	res        *Reservoir
	samples    uint64
	drifted    bool
	retraining bool
	retrains   uint64
}

// Controller implements serve.SampleObserver: it watches served feature
// rows, retains the informative ones, and closes the drift → retrain →
// hot-reload loop in the background. One Controller serves any number of
// benchmarks concurrently.
type Controller struct {
	opts Options

	mu     sync.Mutex
	states map[string]*benchState

	wg sync.WaitGroup
}

// NewController builds a controller. Registry is required.
func NewController(opts Options) *Controller {
	if opts.Registry == nil {
		panic("drift: Options.Registry is required")
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	if opts.MinRetain <= 0 {
		opts.MinRetain = 32
	}
	if opts.MinRetain < 2 {
		opts.MinRetain = 2
	}
	if opts.RetrainBudget > 0 {
		opts.Train.TunerBudget = opts.RetrainBudget
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	return &Controller{opts: opts, states: make(map[string]*benchState)}
}

func (c *Controller) state(benchmark string) *benchState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.states[benchmark]
	if st == nil {
		st = &benchState{}
		c.states[benchmark] = st
	}
	return st
}

// seedFor derives a stable per-benchmark reservoir seed.
func (c *Controller) seedFor(benchmark string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(benchmark))
	return c.opts.Seed ^ h.Sum64()
}

// ObserveSample is the serve.SampleObserver hook: one call per served
// request on the static-subset path. Row and Input are borrowed — any
// retention encodes a private copy before returning.
func (c *Controller) ObserveSample(s serve.Sample) {
	st := c.state(s.Benchmark)
	st.mu.Lock()
	defer st.mu.Unlock()

	if st.det == nil && !st.disabled || st.generation != s.Generation {
		// New baseline: the first sample ever, or the first sample served
		// by a new model generation (a retrain or an operator reload just
		// published). Start the detector fresh against the new model's
		// summary and drop the old reservoir — retained inputs described
		// the previous baseline's traffic.
		snap, ok := c.opts.Registry.Get(s.Benchmark)
		if !ok || snap.Generation != s.Generation {
			// The sample raced a reload; the next request will carry the
			// live generation.
			return
		}
		st.generation = s.Generation
		st.samples = 0
		st.drifted = false
		st.disabled = snap.Model.Summary == nil
		if st.disabled {
			st.det = nil
			c.opts.Logger.Warn("drift detection disabled: artifact has no distribution summary",
				"benchmark", s.Benchmark, "generation", s.Generation)
			return
		}
		st.det = NewDetector(snap.Model.Summary, snap.Model.Scaler.Means, snap.Model.Scaler.Stds, c.opts.Detector)
		if st.res == nil {
			st.res = NewReservoir(c.opts.Capacity, c.seedFor(s.Benchmark))
		} else {
			st.res.Reset()
		}
	}
	if st.disabled {
		return
	}

	st.samples++
	weight := st.det.Observe(s.Row, s.Indices)
	st.res.Offer(weight, func() []byte {
		var buf bytes.Buffer
		if err := serve.EncodeBinaryRequest(&buf, s.Benchmark, s.Input); err != nil {
			return nil
		}
		return buf.Bytes()
	})

	if st.det.Fired() {
		st.drifted = true
		if !st.retraining && st.res.Len() >= c.opts.MinRetain {
			st.retraining = true
			frames := st.res.Snapshot()
			effect, tv := st.det.Stats()
			c.opts.Logger.Info("drift detector fired; retraining",
				"benchmark", s.Benchmark, "effect_size", effect,
				"assignment_tv", tv, "retained", len(frames))
			// The lifecycle trace is forced, never head-sampled: detector
			// fires are rare and each one is worth a record.
			t := c.opts.Tracer.StartForced("drift")
			t.SetBenchmark(s.Benchmark)
			t.Event("detector_fire")
			c.wg.Add(1)
			go c.retrain(s.Benchmark, st, frames, t)
		}
	}
}

// retrain runs the background half of the loop: decode the retained
// frames, re-run the full two-level pipeline, publish the artifact.
// Serving is never paused — the publish path is the same hot reload an
// operator would use.
func (c *Controller) retrain(benchmark string, st *benchState, frames [][]byte, t *obs.Trace) {
	defer c.wg.Done()
	defer c.opts.Tracer.Finish(t)
	rt0 := t.Now()
	artifact, err := RetrainArtifact(benchmark, frames, c.opts.Train)
	t.Span("retrain", rt0)
	if err == nil && c.opts.Publish != nil {
		pt0 := t.Now()
		err = c.opts.Publish(benchmark, artifact)
		t.Span("publish", pt0)
	}
	t.SetError(err)

	st.mu.Lock()
	st.retraining = false
	if err != nil {
		// Leave drifted set (status keeps reporting the condition) but
		// reset the detector window: the next retry needs a freshly fired
		// window, which bounds the retry rate to one per Window samples.
		c.opts.Logger.Error("retrain failed", "benchmark", benchmark, "error", err)
		if st.det != nil {
			st.det.Reset()
		}
	} else {
		st.retrains++
		c.opts.Logger.Info("retrained model published",
			"benchmark", benchmark, "retrains", st.retrains, "inputs", len(frames))
		// The publish bumped the registry generation; the next observed
		// sample rebaselines against the new artifact's summary.
	}
	st.mu.Unlock()

	if c.opts.OnRetrain != nil {
		ev := RetrainEvent{Benchmark: benchmark, Frames: frames, Err: err}
		if err == nil {
			ev.Artifact = artifact
		}
		c.opts.OnRetrain(ev)
	}
}

// RetrainArtifact decodes retained wire frames back into benchmark inputs
// and runs the full offline training pipeline on them, returning the
// serialized artifact. It is deliberately nothing but decode + TrainModel
// + SaveModel: an offline run over the same frames produces the identical
// bytes (the differential the drift tests enforce).
func RetrainArtifact(benchmark string, frames [][]byte, trainOpts core.Options) (_ []byte, err error) {
	defer func() {
		// TrainModel panics on contract violations (e.g. too few inputs);
		// a background retrain must degrade to an error, not take down
		// the serving process.
		if r := recover(); r != nil {
			err = fmt.Errorf("drift: retrain panicked: %v", r)
		}
	}()
	if len(frames) < 2 {
		return nil, fmt.Errorf("drift: %d retained inputs, need at least 2", len(frames))
	}
	var codec *serve.Codec
	inputs := make([]core.Input, 0, len(frames))
	defer func() {
		for _, in := range inputs {
			codec.Release(in)
		}
	}()
	for i, frame := range frames {
		fc, in, derr := serve.DecodeBinaryRequest(bytes.NewReader(frame))
		if derr != nil {
			return nil, fmt.Errorf("drift: decoding retained frame %d: %w", i, derr)
		}
		if fc.Name != benchmark {
			fc.Release(in)
			return nil, fmt.Errorf("drift: retained frame %d is for %q, reservoir is %q", i, fc.Name, benchmark)
		}
		codec = fc
		inputs = append(inputs, in)
	}
	model := core.TrainModel(codec.NewProgram(), inputs, trainOpts)
	var buf bytes.Buffer
	if serr := core.SaveModel(model, &buf); serr != nil {
		return nil, serr
	}
	return buf.Bytes(), nil
}

// Status reports the per-benchmark drift-loop state — the provider the
// serving metrics and health surfaces pull (serve.DriftProvider).
func (c *Controller) Status() map[string]serve.DriftStatus {
	c.mu.Lock()
	states := make(map[string]*benchState, len(c.states))
	for name, st := range c.states {
		states[name] = st
	}
	c.mu.Unlock()
	out := make(map[string]serve.DriftStatus, len(states))
	for name, st := range states {
		st.mu.Lock()
		row := serve.DriftStatus{
			Benchmark:  name,
			Samples:    st.samples,
			Drifted:    st.drifted,
			Retraining: st.retraining,
			Retrains:   st.retrains,
		}
		if st.res != nil {
			row.Retained = st.res.Len()
		}
		if st.det != nil {
			row.EffectSize, row.AssignTV = st.det.Stats()
		}
		st.mu.Unlock()
		out[name] = row
	}
	return out
}

// Retrains reports the completed retrain count for one benchmark.
func (c *Controller) Retrains(benchmark string) uint64 {
	st := c.state(benchmark)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.retrains
}

// Wait blocks until every in-flight background retrain has completed —
// clean shutdown for the daemon and determinism for tests.
func (c *Controller) Wait() { c.wg.Wait() }

// Bind registers the controller on a service: the sample tap feeds the
// loop and the status provider feeds /metrics and the ITH1 health frame.
func (c *Controller) Bind(svc *serve.Service) {
	svc.SetObserver(c)
	svc.SetDriftProvider(c.Status)
}
