package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inputtune/internal/fleet"
	"inputtune/internal/serve"
)

// ClusterBenchOptions sizes the multi-replica fleet benchmark.
type ClusterBenchOptions struct {
	// Case is the Table-1 case to serve (default sort2 — the largest
	// binary-wire win, so routing overhead is measured against the
	// cheapest per-request work).
	Case string
	// Replicas is the fleet-size grid; each entry is one arm against a
	// fresh fleet (default 1, 2, 4). The 1-replica arm is the scaling
	// baseline.
	Replicas []int
	// Clients is the number of concurrent load-generator clients
	// (default 8).
	Clients int
	// Requests is the total request budget per arm, split over the
	// clients (default 2000).
	Requests int
	// Kill injects a replica failure mid-run on every arm with more than
	// one replica: one replica goes down once ~35% of the traffic has
	// completed and comes back at ~70%. The acceptance criterion is zero
	// failed requests across the outage — the router must absorb the kill
	// with retries and ejection. Default true (disable with -kill=false).
	Kill bool
	// QuantizeBits is the router's feature-fingerprint quantization for
	// consistent-hash sharding (default 8). Replica decision caches stay
	// exact regardless — this knob only controls how aggressively nearby
	// inputs collapse onto the same replica.
	QuantizeBits int
	// Scale sets the training budget for the served model.
	Scale Scale
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *ClusterBenchOptions) setDefaults() {
	if o.Case == "" {
		o.Case = "sort2"
	}
	if len(o.Replicas) == 0 {
		o.Replicas = []int{1, 2, 4}
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Requests <= 0 {
		o.Requests = 2000
	}
	if o.QuantizeBits <= 0 {
		o.QuantizeBits = 8
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// FleetReplicaStats is one replica's share of an arm, scraped from the
// fleet roll-up after the load completes.
type FleetReplicaStats struct {
	Name         string  `json:"name"`
	Requests     uint64  `json:"requests"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	P99Micros    float64 `json:"latency_p99_us"`
}

// FleetArmResult is one replica-count arm of the cluster benchmark.
type FleetArmResult struct {
	Replicas int `json:"replicas"`
	// Requests issued; FailedRequests (transport error, non-200, or an
	// undecodable body) and LabelMismatches (a decision differing from
	// the offline classifier) MUST both be zero, kill or no kill.
	Requests        int `json:"requests"`
	FailedRequests  int `json:"failed_requests"`
	LabelMismatches int `json:"label_mismatches"`
	// Kills is the number of injected replica failures (0 or 1); the
	// router-side counters record how the fleet absorbed them.
	Kills        int    `json:"kills"`
	Retries      uint64 `json:"retries"`
	Ejections    uint64 `json:"ejections"`
	Readmissions uint64 `json:"readmissions"`

	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// SpeedupOverSingle is this arm's throughput over the 1-replica
	// arm's (1.0 for the baseline itself; 0 when no baseline arm ran).
	SpeedupOverSingle float64 `json:"speedup_over_single_x"`
	P50Micros         float64 `json:"latency_p50_us"`
	P99Micros         float64 `json:"latency_p99_us"`

	// FleetCacheHitRate is the request-weighted decision-cache hit rate
	// across replicas — sticky sharding keeps it high even as the fleet
	// grows, because each quantized fingerprint always lands on the same
	// replica's cache.
	FleetCacheHitRate float64             `json:"fleet_cache_hit_rate"`
	PerReplica        []FleetReplicaStats `json:"per_replica"`
}

// FleetBenchReport is the "fleet" section of the BENCH trajectory file.
type FleetBenchReport struct {
	Case         string `json:"case"`
	Benchmark    string `json:"benchmark"`
	Clients      int    `json:"clients"`
	Requests     int    `json:"requests_per_arm"`
	QuantizeBits int    `json:"shard_quantize_bits"`
	KillInjected bool   `json:"kill_injected"`
	// SingleCore flags runs where GOMAXPROCS==1: replicas then share one
	// core, so SpeedupOverSingle measures routing overhead rather than
	// parallel scaling, and values near (or below) 1.0 are expected. The
	// correctness criteria — zero failed requests, zero label mismatches
	// through an injected kill — are unaffected.
	SingleCore bool `json:"single_core"`
	// Note makes the single-core caveat self-describing inside the JSON:
	// a reader of the trajectory file sees why speedup_over_single_x
	// hovers near 1.0 without having to find this comment.
	Note string           `json:"note,omitempty"`
	Arms []FleetArmResult `json:"arms"`
}

// RunClusterBench trains one model, then for each fleet size stands up
// that many in-process replicas behind a consistent-hash router fronted
// by a real loopback HTTP server, and drives the fleet with concurrent
// binary-wire clients — killing and restarting a replica mid-run when
// Kill is set. Every decision is checked against the offline classifier.
func RunClusterBench(opts ClusterBenchOptions) (FleetBenchReport, error) {
	opts.setDefaults()
	scase, err := newServedCase("cluster-bench", opts.Case, opts.Scale, opts.Logf)
	if err != nil {
		return FleetBenchReport{}, err
	}
	rep := FleetBenchReport{
		Case:         opts.Case,
		Benchmark:    scase.c.Prog.Name(),
		Clients:      opts.Clients,
		Requests:     opts.Requests,
		QuantizeBits: opts.QuantizeBits,
		KillInjected: opts.Kill,
	}
	rep.SingleCore, rep.Note = singleCoreCaveat(
		"GOMAXPROCS=1: replicas share one core, so speedup_over_single_x measures routing overhead, not parallel scaling")
	for _, n := range opts.Replicas {
		if n < 1 {
			return rep, fmt.Errorf("cluster-bench: replica count %d out of range", n)
		}
		arm, err := runClusterArm(scase, n, opts)
		if err != nil {
			return rep, fmt.Errorf("cluster-bench %d replicas: %w", n, err)
		}
		rep.Arms = append(rep.Arms, arm)
	}
	// Scaling is relative to the 1-replica arm when one ran.
	var base float64
	for _, arm := range rep.Arms {
		if arm.Replicas == 1 {
			base = arm.ThroughputRPS
		}
	}
	if base > 0 {
		for i := range rep.Arms {
			rep.Arms[i].SpeedupOverSingle = rep.Arms[i].ThroughputRPS / base
		}
	}
	return rep, nil
}

// Failed reports whether any arm violated the zero-failure acceptance
// criteria (failed requests or label mismatches).
func (r FleetBenchReport) Failed() bool {
	for _, arm := range r.Arms {
		if arm.FailedRequests > 0 || arm.LabelMismatches > 0 {
			return true
		}
	}
	return false
}

func runClusterArm(scase *servedCase, n int, opts ClusterBenchOptions) (FleetArmResult, error) {
	logf := opts.Logf
	bodies, contentType, err := encodeBodies(scase, serve.WireBinary)
	if err != nil {
		return FleetArmResult{}, err
	}

	// Each replica is a full serving stack with its own registry, decision
	// cache and metrics — exactly what a separate process would run; only
	// the transport hop is elided.
	replicas := make([]*fleet.LocalReplica, n)
	rs := make([]fleet.Replica, n)
	for i := range replicas {
		reg := serve.NewRegistry()
		if err := reg.Register(scase.c.Prog); err != nil {
			return FleetArmResult{}, err
		}
		if _, err := reg.Load(scase.artifact); err != nil {
			return FleetArmResult{}, err
		}
		svc := serve.NewService(reg, serve.Options{})
		defer svc.Close()
		replicas[i] = fleet.NewLocalReplica(fmt.Sprintf("replica-%d", i), svc)
		rs[i] = replicas[i]
	}
	rt := fleet.NewRouter(rs, fleet.Options{
		QuantizeBits:   opts.QuantizeBits,
		HealthInterval: 2 * time.Millisecond,
	})
	defer rt.Close(context.Background())
	srv := httptest.NewServer(fleet.NewHandler(rt))
	defer srv.Close()
	client := srv.Client()
	client.Timeout = 60 * time.Second

	perClient := opts.Requests / opts.Clients
	if perClient < 1 {
		perClient = 1
	}
	total := perClient * opts.Clients
	kill := opts.Kill && n > 1
	logf("[cluster-bench %dx] %d clients x %d requests, kill mid-run: %v",
		n, opts.Clients, perClient, kill)

	latencies := make([][]time.Duration, opts.Clients)
	var failed, mismatched atomic.Uint64
	var completed atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < opts.Clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, perClient)
			for r := 0; r < perClient; r++ {
				i := (g*perClient + r) % len(bodies)
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/classify", bytes.NewReader(bodies[i]))
				if err != nil {
					failed.Add(1)
					completed.Add(1)
					continue
				}
				req.Header.Set("Content-Type", contentType)
				req.Header.Set("Accept", serve.ContentTypeBinary)
				resp, err := client.Do(req)
				if err != nil {
					failed.Add(1)
					completed.Add(1)
					continue
				}
				d, err := serve.DecodeBinaryDecision(resp.Body)
				resp.Body.Close()
				lat = append(lat, time.Since(t0))
				completed.Add(1)
				switch {
				case err != nil || resp.StatusCode != http.StatusOK:
					failed.Add(1)
				case d.Landmark != scase.want[i]:
					mismatched.Add(1)
				}
			}
			latencies[g] = lat
		}(g)
	}
	// The injected fault: one replica refuses all connections once ~35% of
	// the traffic has completed and recovers at ~70% — long enough for the
	// health loop to eject it and readmit it with load still running.
	kills := 0
	if kill {
		victim := replicas[n-1]
		for completed.Load() < uint64(35*total/100) {
			time.Sleep(200 * time.Microsecond)
		}
		victim.SetDown(true)
		kills++
		logf("[cluster-bench %dx] killed %s at %d/%d requests", n, victim.Name(), completed.Load(), total)
		for completed.Load() < uint64(70*total/100) {
			time.Sleep(200 * time.Microsecond)
		}
		victim.SetDown(false)
		logf("[cluster-bench %dx] restarted %s at %d/%d requests", n, victim.Name(), completed.Load(), total)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))].Nanoseconds()) / 1e3
	}

	snap := rt.Snapshot()
	arm := FleetArmResult{
		Replicas:          n,
		Requests:          total,
		FailedRequests:    int(failed.Load()),
		LabelMismatches:   int(mismatched.Load()),
		Kills:             kills,
		Retries:           snap.Router.Retries,
		Ejections:         snap.Router.Ejections,
		Readmissions:      snap.Router.Readmissions,
		WallSeconds:       wall.Seconds(),
		ThroughputRPS:     float64(total) / wall.Seconds(),
		P50Micros:         q(0.50),
		P99Micros:         q(0.99),
		FleetCacheHitRate: snap.FleetHitRate,
	}
	for _, r := range snap.Replicas {
		arm.PerReplica = append(arm.PerReplica, FleetReplicaStats{
			Name:         r.Name,
			Requests:     r.Metrics.Requests,
			CacheHitRate: r.Metrics.DecisionCache.HitRate(),
			P99Micros:    r.Metrics.P99Micros,
		})
	}
	logf("[cluster-bench %dx] %.0f req/s, p50 %.0fµs p99 %.0fµs, %d failed, %d mismatched, %d retries, %d ejections, cache hit %.1f%%",
		n, arm.ThroughputRPS, arm.P50Micros, arm.P99Micros, arm.FailedRequests,
		arm.LabelMismatches, arm.Retries, arm.Ejections, 100*arm.FleetCacheHitRate)
	return arm, nil
}

// RenderClusterBench formats the report as a human-readable table.
func RenderClusterBench(r FleetBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster-bench: case %s, %d clients, %d requests/arm, shard quantize %d bits, kill %v\n",
		r.Case, r.Clients, r.Requests, r.QuantizeBits, r.KillInjected)
	if r.SingleCore {
		fmt.Fprintln(&b, "NOTE: GOMAXPROCS=1 — replicas share one core, so speedup measures routing overhead, not parallel scaling")
	}
	fmt.Fprintf(&b, "%-8s %8s %10s %9s %9s %9s %7s %9s %8s %9s %6s %9s\n",
		"replicas", "req", "thru(r/s)", "speedup", "p50(µs)", "p99(µs)", "failed", "mismatch", "kills", "ejections", "retry", "cacheHit%")
	fmt.Fprintln(&b, strings.Repeat("-", 114))
	for _, arm := range r.Arms {
		fmt.Fprintf(&b, "%-8d %8d %10.0f %8.2fx %9.0f %9.0f %7d %9d %8d %9d %6d %8.1f%%\n",
			arm.Replicas, arm.Requests, arm.ThroughputRPS, arm.SpeedupOverSingle,
			arm.P50Micros, arm.P99Micros, arm.FailedRequests, arm.LabelMismatches,
			arm.Kills, arm.Ejections, arm.Retries, 100*arm.FleetCacheHitRate)
	}
	return b.String()
}

// MergeFleetIntoBench folds a cluster-bench report into the BENCH
// trajectory file at path, replacing only the "fleet" section (the
// training and serve sections are kept when the file exists).
func MergeFleetIntoBench(path string, fb FleetBenchReport) error {
	var rep BenchReport
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("existing %s is not a bench report: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	rep.Fleet = &fb
	data, err := rep.BenchJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
