package exp

import "testing"

// TestDirectSolverBench checks the microbench's deterministic half: the
// metered flops must show the crossover the tuner exploits (every 2D
// size is past it, 3D only from n=63 — the dense 3D apply's 1-flop/MAC
// charge understates it), and the FFT path's error against the dense
// reference must respect the pde package's 1e-12 contract.
func TestDirectSolverBench(t *testing.T) {
	rows := RunDirectSolverBench(QuickScale())
	if len(rows) != len(directSolver2DSizes)+len(directSolver3DSizes) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		wantFaster := r.Benchmark == "poisson2d" || r.N >= 63
		if wantFaster && r.FastFlops >= r.DenseFlops {
			t.Errorf("%s n=%d: fast flops %d not below dense %d",
				r.Benchmark, r.N, r.FastFlops, r.DenseFlops)
		}
		if !wantFaster && r.FastFlops < r.DenseFlops {
			t.Errorf("%s n=%d: expected the pre-crossover size to cost more metered flops (fast %d, dense %d)",
				r.Benchmark, r.N, r.FastFlops, r.DenseFlops)
		}
		if r.MaxRelErr > 1e-12 {
			t.Errorf("%s n=%d: max rel err %g exceeds the 1e-12 contract",
				r.Benchmark, r.N, r.MaxRelErr)
		}
		if r.DenseSeconds <= 0 || r.FastSeconds <= 0 {
			t.Errorf("%s n=%d: non-positive timing (%g, %g)",
				r.Benchmark, r.N, r.DenseSeconds, r.FastSeconds)
		}
	}
}

// TestFastDirectArmDispatch trains the poisson2d arm at a tiny budget and
// checks the report is self-consistent; with every poisson2d size past
// the virtual-cost crossover, the tuner should route test inputs to the
// fast solver.
func TestFastDirectArmDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sc := Scale{TrainInputs: 18, TestInputs: 18, K1: 3, TunerPop: 6, TunerGens: 4, Seed: 42, Parallel: true}
	cases := RunFastDirectArm([]string{"poisson2d", "sort1"}, sc, nil)
	if len(cases) != 1 || cases[0].Benchmark != "poisson2d" {
		t.Fatalf("expected just the poisson2d arm, got %+v", cases)
	}
	c := cases[0]
	if c.TestInputsFastDirect < 0 || c.TestInputsFastDirect > c.TestInputs {
		t.Fatalf("dispatch count %d out of range (%d test inputs)", c.TestInputsFastDirect, c.TestInputs)
	}
	if c.TestInputsFastDirect > 0 && c.LandmarksFastDirect == 0 {
		t.Fatalf("inputs dispatched to fast-direct but no landmark counted")
	}
	if c.TestInputsFastDirect == 0 {
		t.Logf("tuner declined fast-direct at this tiny budget (valid, but unexpected): %+v", c)
	}
	if c.TwoLevelSpeedup <= 0 {
		t.Fatalf("bad speedup %g", c.TwoLevelSpeedup)
	}
}
