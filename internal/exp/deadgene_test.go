package exp

import (
	"testing"

	"inputtune/internal/benchmarks/helmholtz3d"
	"inputtune/internal/benchmarks/poisson2d"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/core"
	"inputtune/internal/rng"
)

// TestDeadGeneMutationNeverChangesEvaluation is the end-to-end property
// behind LiveKey-based dedup: for the real benchmark programs that declare
// selector→tunable dependencies, changing a dead gene's value must leave
// the measured time AND accuracy of every input bit-identical. If this
// fails, a DependsOn declaration claims a tunable is dead under a selector
// that in fact reads it, and the tuner's collapse would merge genuinely
// different behaviours.
func TestDeadGeneMutationNeverChangesEvaluation(t *testing.T) {
	cases := []struct {
		prog   core.Program
		inputs []core.Input
	}{
		{sortbench.New(), sortInputs(sortbench.MixOptions{Count: 6, Seed: 2, MaxSize: 256})},
		{poisson2d.New(), poissonInputs(poisson2d.MixOptions{Count: 4, Seed: 2})},
		{helmholtz3d.New(), helmholtzInputs(helmholtz3d.MixOptions{Count: 3, Seed: 2})},
	}
	for _, tc := range cases {
		t.Run(tc.prog.Name(), func(t *testing.T) {
			space := tc.prog.Space()
			if !space.HasDependencies() {
				t.Fatalf("%s: no declared dependencies", tc.prog.Name())
			}
			r := rng.New(23)
			varied := 0
			for trial := 0; trial < 40; trial++ {
				cfg := space.RandomConfigFlat(r)
				live := space.LiveGenes(cfg)
				for g, isLive := range live {
					if isLive {
						continue
					}
					v := cfg.Clone()
					tun := space.Tunables[g]
					for _, cand := range []float64{tun.Min, tun.Max, (tun.Min + tun.Max) / 2} {
						v.Values[g] = cand
						if err := space.Validate(v); err != nil || v.Values[g] == cfg.Values[g] {
							continue
						}
						varied++
						for ii, in := range tc.inputs {
							t0, a0 := core.Measure(tc.prog, cfg, in)
							t1, a1 := core.Measure(tc.prog, v, in)
							if t0 != t1 || a0 != a1 {
								t.Fatalf("dead gene %s changed evaluation on input %d: (%v,%v) vs (%v,%v)\n cfg: %s\n var: %s",
									tun.Name, ii, t0, a0, t1, a1, cfg, v)
							}
						}
					}
				}
			}
			if varied == 0 {
				t.Fatal("no dead-gene variants exercised")
			}
		})
	}
}
