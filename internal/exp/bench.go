package exp

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"inputtune/internal/engine"
)

// BenchResult is one benchmark program's end-to-end pipeline cost, the
// unit of the repo's performance trajectory (BENCH_1.json). Speedups are
// quality headlines carried along so a perf regression that buys no
// quality is visible immediately.
type BenchResult struct {
	Benchmark    string  `json:"benchmark"`
	WallSeconds  float64 `json:"wall_seconds"`
	TrainSeconds float64 `json:"train_seconds"`
	EvalSeconds  float64 `json:"eval_seconds"`

	// TrainPhases breaks TrainSeconds down by pipeline phase (features /
	// tune / measure / classifiers), so a hot phase — e.g. classifier-zoo
	// training — is visible in the trajectory file, not just in aggregate
	// wall-clock. The slice preserves core.Report.Phases pipeline order,
	// so the JSON shape is deterministic run to run (a map would permute).
	TrainPhases []TrainPhase `json:"train_phases"`

	// ZooTrees is the number of distinct subset trees trained;
	// ZooDedupHits the zoo members served by an identical already-trained
	// job.
	ZooTrees     int `json:"zoo_trees"`
	ZooDedupHits int `json:"zoo_dedup_hits"`

	// TunerEvaluations counts actual program runs the evolutionary tuners
	// paid for; TunerCacheHits the genome evaluations answered by memo.
	TunerEvaluations int `json:"tuner_evaluations"`
	TunerCacheHits   int `json:"tuner_cache_hits"`
	// DeadGeneCollapses counts structurally new genomes the dependency-aware
	// tuner collapsed onto an already-evaluated canonical representative —
	// evaluations saved before they were paid. MetaTunerTrials sums the
	// self-tuning portfolio trials across landmarks. Both are 0 under
	// -flat-tuner, making the A/B arms distinguishable in the JSON.
	DeadGeneCollapses int `json:"dead_gene_collapses"`
	MetaTunerTrials   int `json:"meta_tuner_trials"`

	// Measurement-cache effectiveness over the training session.
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	CacheEvictions uint64  `json:"cache_evictions"`

	// Sub-run solver-state memo effectiveness (engine.Memo), reported by
	// programs that resume solves from shared configuration prefixes —
	// currently the PDE benchmarks. Omitted for the others. Unlike every
	// count above, these may legitimately vary across schedules on
	// multi-core runs (whether a prefix is stored before a concurrent
	// solve looks for it is a race the results are immune to).
	SolverMemoHits   uint64 `json:"solver_memo_hits,omitempty"`
	SolverMemoMisses uint64 `json:"solver_memo_misses,omitempty"`

	TwoLevelSpeedup float64 `json:"two_level_speedup_x"`
	Satisfaction    float64 `json:"two_level_satisfaction"`
}

// TrainPhase is one named slice of the training wall-clock, in pipeline
// order.
type TrainPhase struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// PhaseSeconds returns the named phase's duration (0 when the phase did
// not run).
func (r BenchResult) PhaseSeconds(name string) float64 {
	for _, ph := range r.TrainPhases {
		if ph.Phase == name {
			return ph.Seconds
		}
	}
	return 0
}

// BenchReport is the BENCH_1.json document.
type BenchReport struct {
	Scale    string `json:"scale"`
	Seed     uint64 `json:"seed"`
	Parallel bool   `json:"parallel"`
	Workers  int    `json:"gomaxprocs"`
	// CacheDisabled marks A/B runs through the escape hatch, so a
	// -nocache report can never be mistaken for the real trajectory.
	CacheDisabled bool `json:"cache_disabled"`
	// FlatTuner marks -flat-tuner A/B runs (the legacy single-run GA) the
	// same way, for the same reason.
	FlatTuner bool          `json:"flat_tuner"`
	Results   []BenchResult `json:"results"`
	// DirectSolver is the dense-vs-FFT direct solver microbenchmark and
	// FastDirect the PDE retraining arm with the opt-in fast-direct
	// alternative (see fastdirect.go). Both are populated whenever a PDE
	// case is among the bench's names; the sections are additive, so the
	// shared results stay comparable across trajectory snapshots.
	DirectSolver []DirectSolverRow `json:"direct_solver,omitempty"`
	FastDirect   []FastDirectCase  `json:"fast_direct,omitempty"`
	// Serve is the deployment-side half of the trajectory: throughput and
	// latency of the classification server under concurrent load, written
	// by `experiments serve-bench` (which merges into an existing bench
	// file). Omitted until that runs.
	Serve *ServeBenchReport `json:"serve,omitempty"`
	// Fleet is the multi-replica arm of the serving trajectory: scaling
	// and fault tolerance of the consistent-hash fleet under load with an
	// injected replica kill, written by `experiments cluster-bench`.
	Fleet *FleetBenchReport `json:"fleet,omitempty"`
	// Drift is the online-adaptivity arm: a mid-run input-distribution
	// shift with automatic detection, background retraining and
	// hot-reload, written by `experiments drift-bench`.
	Drift *DriftBenchReport `json:"drift,omitempty"`
}

// RunBench runs the named cases once each and collects the perf trajectory.
func RunBench(names []string, scaleName string, sc Scale, logf func(string, ...any)) BenchReport {
	rep := BenchReport{
		Scale:         scaleName,
		Seed:          sc.Seed,
		Parallel:      sc.Parallel,
		Workers:       runtime.GOMAXPROCS(0),
		CacheDisabled: sc.DisableCache,
		FlatTuner:     sc.FlatTuner,
	}
	for _, name := range names {
		c := BuildCase(name, sc)
		row := RunCase(c, sc, logf)
		// Cache stats span the whole pipeline, matching WallSeconds:
		// training cache plus test-set evaluation cache.
		cs := row.Report.Engine.Add(row.EvalEngine)
		// So does the solver memo: it lives on the Program, which serves
		// both training and test evaluation.
		var ms engine.MemoStats
		if mr, ok := c.Prog.(interface{ SolverMemoStats() engine.MemoStats }); ok {
			ms = mr.SolverMemoStats()
		}
		phases := make([]TrainPhase, 0, len(row.Report.Phases))
		for _, ph := range row.Report.Phases {
			phases = append(phases, TrainPhase{Phase: ph.Name, Seconds: ph.Seconds})
		}
		rep.Results = append(rep.Results, BenchResult{
			Benchmark:         name,
			WallSeconds:       row.TrainSeconds + row.EvalSeconds,
			TrainSeconds:      row.TrainSeconds,
			EvalSeconds:       row.EvalSeconds,
			TrainPhases:       phases,
			ZooTrees:          row.Report.ZooTrees,
			ZooDedupHits:      row.Report.ZooDedupHits,
			TunerEvaluations:  row.Report.TunerEvaluations,
			TunerCacheHits:    row.Report.TunerCacheHits,
			DeadGeneCollapses: row.Report.DeadGeneCollapses,
			MetaTunerTrials:   row.Report.MetaTunerTrials,
			CacheHits:         cs.Hits,
			CacheMisses:       cs.Misses,
			CacheHitRate:      cs.HitRate(),
			CacheEvictions:    cs.Evictions,
			SolverMemoHits:    ms.Hits,
			SolverMemoMisses:  ms.Misses,
			TwoLevelSpeedup:   row.TwoLevelFX,
			Satisfaction:      row.TwoLevelAccuracy,
		})
	}
	hasPDE := false
	for _, name := range names {
		if name == "poisson2d" || name == "helmholtz3d" {
			hasPDE = true
		}
	}
	if hasPDE {
		rep.DirectSolver = RunDirectSolverBench(sc)
		rep.FastDirect = RunFastDirectArm(names, sc, logf)
	}
	return rep
}

// BenchJSON renders the report as indented JSON.
func (r BenchReport) BenchJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RenderBench formats the report as a human-readable table.
func RenderBench(r BenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %9s %10s %10s %9s %7s %9s %9s %9s\n",
		"Benchmark", "wall(s)", "train(s)", "tunerEval", "memoHits", "collapse", "trials", "solvMemo", "cacheHit%", "speedup")
	fmt.Fprintln(&b, strings.Repeat("-", 102))
	for _, res := range r.Results {
		solv := "-"
		if res.SolverMemoHits+res.SolverMemoMisses > 0 {
			solv = fmt.Sprintf("%d", res.SolverMemoHits)
		}
		fmt.Fprintf(&b, "%-12s %9.3f %9.3f %10d %10d %9d %7d %9s %8.1f%% %8.2fx\n",
			res.Benchmark, res.WallSeconds, res.TrainSeconds,
			res.TunerEvaluations, res.TunerCacheHits, res.DeadGeneCollapses, res.MetaTunerTrials,
			solv, 100*res.CacheHitRate, res.TwoLevelSpeedup)
	}
	if len(r.DirectSolver) > 0 {
		b.WriteString("\ndirect-solver microbench (dense vs FFT sine transform):\n")
		b.WriteString(RenderDirectSolver(r.DirectSolver))
	}
	if len(r.FastDirect) > 0 {
		b.WriteString("\nfast-direct retraining arm (opt-in sixth solver alternative):\n")
		b.WriteString(RenderFastDirect(r.FastDirect))
	}
	return b.String()
}
