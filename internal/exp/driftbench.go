package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/core"
	"inputtune/internal/drift"
	"inputtune/internal/serve"
)

// DriftBenchOptions sizes the online drift → retrain → hot-reload
// benchmark.
type DriftBenchOptions struct {
	// Clients is the number of concurrent load-generator clients
	// (default 4 — the drift loop shares the machine with a background
	// retrain, so the load arm stays modest).
	Clients int
	// PreRequests is the pre-shift tranche: in-distribution traffic that
	// must leave the detector quiet (default 512).
	PreRequests int
	// ShiftRequests is the shifted-traffic budget driven while the
	// detector fires and the background retrain runs (default 2048). If
	// the retrain has not published when the budget is spent, extra
	// tranches keep traffic flowing until it does (bounded).
	ShiftRequests int
	// PostRequests is the post-reload tranche: fresh shifted-distribution
	// traffic served entirely by the retrained generation (default 512).
	PostRequests int
	// Window overrides the detector window (0 = the detector's calibrated
	// default). Smaller windows fire sooner and are noisier — the smoke
	// configuration uses 128.
	Window int
	// Capacity bounds the retention reservoir (default 64).
	Capacity int
	// MinRetain is the smallest retained set a retrain may start from
	// (default 24).
	MinRetain int
	// RetrainBudget caps tuner evaluations per landmark during the
	// drift-triggered retrain (0 = the meta-tuner's self-tuned default).
	// The initial offline model always trains at the full budget; only
	// the background retrain is capped, mirroring production where
	// retraining shares cores with serving.
	RetrainBudget int
	// Scale sets the training budget, for the initial model and for the
	// drift-triggered retrain alike.
	Scale Scale
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *DriftBenchOptions) setDefaults() {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.PreRequests <= 0 {
		o.PreRequests = 512
	}
	if o.ShiftRequests <= 0 {
		o.ShiftRequests = 2048
	}
	if o.PostRequests <= 0 {
		o.PostRequests = 512
	}
	if o.Capacity <= 0 {
		o.Capacity = 64
	}
	if o.MinRetain <= 0 {
		o.MinRetain = 24
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// DriftPhaseResult is one phase of the drift benchmark: before the
// distribution shift, during it (served by the pre-shift model while the
// detector fires and the retrain runs), and after the retrained model
// hot-reloaded.
type DriftPhaseResult struct {
	// Phase is "pre_shift", "shifted" or "post_retrain".
	Phase string `json:"phase"`
	// Requests issued; FailedRequests (transport error, non-200 or an
	// undecodable frame) and LabelMismatches (a label differing from the
	// offline classification by the exact generation that served it) MUST
	// both be zero — requests keep succeeding while the model is swapped
	// underneath them.
	Requests        int `json:"requests"`
	FailedRequests  int `json:"failed_requests"`
	LabelMismatches int `json:"label_mismatches"`
	// GenerationsServed lists the model generations that served this
	// phase's traffic, ascending.
	GenerationsServed []uint64 `json:"generations_served"`
	// MeanSlowdown is the phase's decision quality: mean over served
	// requests of (virtual cost of the served configuration) / (virtual
	// cost of the best configuration for that input within the serving
	// generation's own landmark set — the dynamic oracle the paper's
	// two-level classifier is scored against). 1.0 means every request
	// got the best decision its model could have made. The number is
	// comparable within a distribution: shifted and post_retrain serve
	// the same shifted traffic, so post dropping below shifted is the
	// retrain paying off; pre_shift is scored on the old distribution
	// and anchors the recovery bound.
	MeanSlowdown float64 `json:"mean_slowdown_vs_oracle"`
	P50Micros    float64 `json:"latency_p50_us"`
	P99Micros    float64 `json:"latency_p99_us"`
}

// DriftBenchReport is the "drift" section of the BENCH trajectory file.
type DriftBenchReport struct {
	Benchmark string `json:"benchmark"`
	Clients   int    `json:"clients"`
	// Window is the detector window actually used (after defaulting).
	Window            int `json:"window"`
	ReservoirCapacity int `json:"reservoir_capacity"`
	MinRetain         int `json:"min_retain"`
	// RetrainBudget is the per-landmark tuner-evaluation cap the
	// drift-triggered retrain ran under (0 = self-tuned default).
	RetrainBudget int `json:"retrain_budget"`
	// DetectorFired must be true: the injected shift is far outside the
	// detector's calibrated noise band.
	DetectorFired bool `json:"detector_fired"`
	// FiredAfterRequests is the shifted-request count completed when the
	// drifted status was first observed.
	FiredAfterRequests int `json:"fired_after_requests"`
	// Retrains is the number of retrains the controller published during
	// the run (at least 1; the retrained model may itself retrain once if
	// its reservoir-biased summary still mismatches live traffic).
	Retrains uint64 `json:"retrains"`
	// RetrainSeconds is the wall time from the first drifted status to
	// the first published retrain — the exposure window during which the
	// stale model keeps serving.
	RetrainSeconds float64 `json:"retrain_seconds"`
	GenerationEnd  uint64  `json:"generation_end"`
	// QualityRecovered reports the headline acceptance: the post-retrain
	// phase's mean slowdown is back within 15% of the pre-shift
	// baseline's (and no longer worse than the shifted phase's).
	QualityRecovered bool `json:"quality_recovered"`
	// SingleCore flags runs where GOMAXPROCS==1: the background retrain
	// then competes with serving for the one core, so shifted-phase
	// latency includes retrain CPU contention. Note spells that out in
	// the JSON itself.
	SingleCore bool               `json:"single_core"`
	Note       string             `json:"note,omitempty"`
	Phases     []DriftPhaseResult `json:"phases"`
}

// Failed reports whether any phase violated the zero-failure acceptance
// criteria.
func (r DriftBenchReport) Failed() bool {
	for _, p := range r.Phases {
		if p.FailedRequests > 0 || p.LabelMismatches > 0 {
			return true
		}
	}
	return false
}

// driftPhaseRecord is one served request's outcome, kept for the offline
// quality evaluation after the run.
type driftPhaseRecord struct {
	idx   int // index into the phase's input slice
	gen   uint64
	label int
	lat   time.Duration
}

// RunDriftBench closes the full loop end to end over a real loopback HTTP
// server: train on distribution A, serve A-traffic (detector quiet), shift
// the live traffic to distribution B (detector fires, the controller
// retrains from its retained reservoir in the background and hot-publishes
// through the registry), then serve fresh B-traffic on the retrained
// model. Every response is checked against the offline classification of
// the generation that served it, and each phase's decision quality is
// scored against the serving generation's own per-input dynamic oracle.
func RunDriftBench(opts DriftBenchOptions) (DriftBenchReport, error) {
	opts.setDefaults()
	sc := opts.Scale
	logf := opts.Logf

	// Distribution A is the synthetic generator battery at small sizes;
	// distribution B is the registry-like workload (heavy duplication,
	// block structure) at 2-4x the size — the same calibrated pair the
	// drift detector's table tests pin.
	trainIn := driftSortInputs(sortbench.MixOptions{Count: sc.TrainInputs, Seed: sc.Seed, MaxSize: 512})
	logf("[drift-bench] training pre-shift model (%d inputs, K1=%d)", len(trainIn), sc.K1)
	trainOpts := core.Options{
		K1: sc.K1, Seed: sc.Seed, TunerPopulation: sc.TunerPop,
		TunerGenerations: sc.TunerGens, H2: h2, Parallel: sc.Parallel,
		DisableCache: sc.DisableCache,
	}
	model := core.TrainModel(sortbench.New(), trainIn, trainOpts)
	if model.Production.Kind != core.SubsetTree || len(model.Production.Static) == 0 {
		return DriftBenchReport{}, fmt.Errorf("drift-bench: production classifier %q has no static feature subset; the sampling tap has nothing to observe", model.Production.Name)
	}
	var artifact bytes.Buffer
	if err := core.SaveModel(model, &artifact); err != nil {
		return DriftBenchReport{}, err
	}

	reg := serve.NewRegistry()
	if err := reg.Register(sortbench.New()); err != nil {
		return DriftBenchReport{}, err
	}
	if _, err := reg.Load(artifact.Bytes()); err != nil {
		return DriftBenchReport{}, err
	}
	svc := serve.NewService(reg, serve.Options{})
	defer svc.Close()

	// Capture every published generation's artifact for the offline label
	// and quality checks; publishes go through the service hot-reload path.
	var artMu sync.Mutex
	artifacts := map[uint64][]byte{1: artifact.Bytes()}
	var firstPublish atomic.Int64 // unix nanos of the first successful publish
	ctrl := drift.NewController(drift.Options{
		Registry:      reg,
		Train:         trainOpts,
		Detector:      drift.DetectorOptions{Window: opts.Window},
		Capacity:      opts.Capacity,
		MinRetain:     opts.MinRetain,
		RetrainBudget: opts.RetrainBudget,
		Seed:          sc.Seed,
		Logger:        slogFromLogf(logf),
		Publish: func(_ string, art []byte) error {
			snap, err := svc.Load(art)
			if err != nil {
				return err
			}
			artMu.Lock()
			artifacts[snap.Generation] = append([]byte(nil), art...)
			artMu.Unlock()
			firstPublish.CompareAndSwap(0, time.Now().UnixNano())
			return nil
		},
	})
	ctrl.Bind(svc)

	srv := httptest.NewServer(serve.NewHandler(svc))
	defer srv.Close()
	client := srv.Client()
	client.Timeout = 60 * time.Second

	window := drift.DetectorOptions{Window: opts.Window}
	windowUsed := window.Window
	if windowUsed <= 0 {
		windowUsed = 256
	}
	rep := DriftBenchReport{
		Benchmark:         "sort",
		Clients:           opts.Clients,
		Window:            windowUsed,
		ReservoirCapacity: opts.Capacity,
		MinRetain:         opts.MinRetain,
		RetrainBudget:     opts.RetrainBudget,
	}
	rep.SingleCore, rep.Note = singleCoreCaveat(
		"GOMAXPROCS=1: the background retrain shares the core with serving, so shifted-phase latency includes retrain CPU contention")

	// Phase 1 — pre-shift: in-distribution traffic, fresh seed. The
	// detector must stay quiet.
	preIn := driftSortInputs(sortbench.MixOptions{Count: opts.PreRequests, Seed: sc.Seed + 20011, MaxSize: 512})
	logf("[drift-bench] pre-shift phase: %d in-distribution requests", len(preIn))
	preRecs, preFailed, err := driveDriftPhase(srv.URL, client, preIn, opts.Clients, nil)
	if err != nil {
		return rep, fmt.Errorf("pre-shift phase: %w", err)
	}
	if st := ctrl.Status()["sort"]; st.Drifted {
		return rep, fmt.Errorf("drift-bench: detector fired on in-distribution traffic (effect %.3f, tv %.3f) — calibration broken", st.EffectSize, st.AssignTV)
	}

	// Phase 2 — the shift: live traffic jumps to distribution B. A
	// monitor polls the drift status so the report can say how many
	// requests the detector needed and how long the stale model kept
	// serving before the retrain published.
	shiftIn := driftSortInputs(sortbench.MixOptions{Count: opts.ShiftRequests, Seed: sc.Seed + 30013, RealLike: true, MinSize: 1024, MaxSize: 2048})
	logf("[drift-bench] shift phase: %d shifted requests", len(shiftIn))
	var completed atomic.Uint64
	var firedAt atomic.Int64    // unix nanos when drifted status first seen
	var firedAfter atomic.Int64 // completed-request count at that moment
	stopMonitor := make(chan struct{})
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for {
			st := ctrl.Status()["sort"]
			if st.Drifted {
				firedAt.CompareAndSwap(0, time.Now().UnixNano())
				firedAfter.CompareAndSwap(0, int64(completed.Load()))
				return
			}
			select {
			case <-time.After(500 * time.Microsecond):
			case <-stopMonitor:
				return
			}
		}
	}()
	shiftRecs, shiftFailed, err := driveDriftPhase(srv.URL, client, shiftIn, opts.Clients, &completed)
	if err != nil {
		return rep, fmt.Errorf("shift phase: %w", err)
	}
	// Keep traffic flowing in bounded extra tranches until the retrain
	// publishes: the loop closes on live traffic, not on an idle server.
	for extra := 0; ctrl.Retrains("sort") == 0 && extra < 20; extra++ {
		tranche := shiftIn
		if len(tranche) > 256 {
			tranche = tranche[:256]
		}
		recs, failed, err := driveDriftPhase(srv.URL, client, tranche, opts.Clients, &completed)
		if err != nil {
			return rep, fmt.Errorf("shift phase (extra tranche %d): %w", extra, err)
		}
		shiftRecs = append(shiftRecs, recs...)
		shiftFailed += failed
		ctrlStatus := ctrl.Status()["sort"]
		if !ctrlStatus.Drifted && !ctrlStatus.Retraining {
			continue
		}
		ctrl.Wait() // a retrain is in flight; let it publish before re-checking
	}
	ctrl.Wait()
	close(stopMonitor)
	<-monitorDone
	rep.DetectorFired = firedAt.Load() != 0
	rep.FiredAfterRequests = int(firedAfter.Load())
	rep.Retrains = ctrl.Retrains("sort")
	if rep.DetectorFired && firstPublish.Load() != 0 {
		rep.RetrainSeconds = float64(firstPublish.Load()-firedAt.Load()) / 1e9
	}
	if !rep.DetectorFired || rep.Retrains == 0 {
		rep.Phases = summarizeDriftPhases(nil, preIn, preRecs, preFailed, shiftIn, shiftRecs, shiftFailed, nil, nil, 0)
		return rep, fmt.Errorf("drift-bench: detector fired=%v, retrains=%d after %d shifted requests — the loop never closed",
			rep.DetectorFired, rep.Retrains, len(shiftRecs))
	}
	logf("[drift-bench] detector fired after %d shifted requests; retrain published %.2fs later (%d retrains)",
		rep.FiredAfterRequests, rep.RetrainSeconds, rep.Retrains)

	// Phase 3 — post-retrain: fresh shifted-distribution traffic served by
	// the retrained generation.
	postIn := driftSortInputs(sortbench.MixOptions{Count: opts.PostRequests, Seed: sc.Seed + 40031, RealLike: true, MinSize: 1024, MaxSize: 2048})
	logf("[drift-bench] post-retrain phase: %d shifted requests on the new model", len(postIn))
	postRecs, postFailed, err := driveDriftPhase(srv.URL, client, postIn, opts.Clients, nil)
	if err != nil {
		return rep, fmt.Errorf("post-retrain phase: %w", err)
	}
	snap, _ := reg.Get("sort")
	rep.GenerationEnd = snap.Generation

	// Offline evaluation: reload every generation's artifact, check each
	// response's label against the generation that served it, and score
	// decision quality against each generation's dynamic oracle.
	artMu.Lock()
	models := make(map[uint64]*core.Model, len(artifacts))
	for gen, art := range artifacts {
		m, lerr := core.LoadModel(sortbench.New(), bytes.NewReader(art))
		if lerr != nil {
			artMu.Unlock()
			return rep, fmt.Errorf("reloading generation %d artifact: %w", gen, lerr)
		}
		models[gen] = m
	}
	artMu.Unlock()
	logf("[drift-bench] scoring %d+%d+%d responses across %d generations",
		len(preRecs), len(shiftRecs), len(postRecs), len(models))
	rep.Phases = summarizeDriftPhases(models, preIn, preRecs, preFailed, shiftIn, shiftRecs, shiftFailed, postIn, postRecs, postFailed)
	scoreDriftPhases(rep.Phases, models, [][]core.Input{preIn, shiftIn, postIn}, [][]driftPhaseRecord{preRecs, shiftRecs, postRecs})

	pre, shifted, post := rep.Phases[0], rep.Phases[1], rep.Phases[2]
	rep.QualityRecovered = post.MeanSlowdown <= pre.MeanSlowdown*1.15 && post.MeanSlowdown <= shifted.MeanSlowdown
	logf("[drift-bench] slowdown vs oracle: pre %.3f, shifted %.3f, post %.3f (recovered=%v)",
		pre.MeanSlowdown, shifted.MeanSlowdown, post.MeanSlowdown, rep.QualityRecovered)
	return rep, nil
}

func driftSortInputs(o sortbench.MixOptions) []core.Input {
	lists := sortbench.GenerateMix(o)
	out := make([]core.Input, len(lists))
	for i, l := range lists {
		out[i] = l
	}
	return out
}

// driveDriftPhase pushes every input through /v1/classify once over the
// binary wire with the given client concurrency, recording the serving
// generation, label and latency per response. completed, when non-nil, is
// bumped per finished request for the shift-phase monitor.
func driveDriftPhase(url string, client *http.Client, inputs []core.Input, clients int, completed *atomic.Uint64) ([]driftPhaseRecord, int, error) {
	bodies := make([][]byte, len(inputs))
	for i, in := range inputs {
		var buf bytes.Buffer
		if err := serve.EncodeBinaryRequest(&buf, "sort", in); err != nil {
			return nil, 0, err
		}
		bodies[i] = buf.Bytes()
	}
	perClient := len(bodies) / clients
	if perClient < 1 {
		perClient = 1
		clients = len(bodies)
	}
	recs := make([][]driftPhaseRecord, clients)
	var failed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo, hi := g*perClient, (g+1)*perClient
			if g == clients-1 {
				hi = len(bodies)
			}
			out := make([]driftPhaseRecord, 0, hi-lo)
			for i := lo; i < hi; i++ {
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, url+"/v1/classify", bytes.NewReader(bodies[i]))
				if err != nil {
					failed.Add(1)
					bump(completed)
					continue
				}
				req.Header.Set("Content-Type", serve.ContentTypeBinary)
				req.Header.Set("Accept", serve.ContentTypeBinary)
				resp, err := client.Do(req)
				if err != nil {
					failed.Add(1)
					bump(completed)
					continue
				}
				d, err := serve.DecodeBinaryDecision(resp.Body)
				resp.Body.Close()
				bump(completed)
				if err != nil || resp.StatusCode != http.StatusOK {
					failed.Add(1)
					continue
				}
				out = append(out, driftPhaseRecord{idx: i, gen: d.Generation, label: d.Landmark, lat: time.Since(t0)})
			}
			recs[g] = out
		}(g)
	}
	wg.Wait()
	var all []driftPhaseRecord
	for _, r := range recs {
		all = append(all, r...)
	}
	return all, int(failed.Load()), nil
}

func bump(c *atomic.Uint64) {
	if c != nil {
		c.Add(1)
	}
}

// summarizeDriftPhases builds the three phase rows (latency quantiles,
// failure counts, generations served); quality is filled in by
// scoreDriftPhases. A nil models map (the never-fired error path) skips
// the label check.
func summarizeDriftPhases(models map[uint64]*core.Model,
	preIn []core.Input, preRecs []driftPhaseRecord, preFailed int,
	shiftIn []core.Input, shiftRecs []driftPhaseRecord, shiftFailed int,
	postIn []core.Input, postRecs []driftPhaseRecord, postFailed int) []DriftPhaseResult {
	phase := func(name string, inputs []core.Input, recs []driftPhaseRecord, failed int) DriftPhaseResult {
		p := DriftPhaseResult{Phase: name, Requests: len(recs) + failed, FailedRequests: failed}
		seenGen := map[uint64]bool{}
		lats := make([]time.Duration, 0, len(recs))
		for _, r := range recs {
			seenGen[r.gen] = true
			lats = append(lats, r.lat)
		}
		for gen := range seenGen {
			p.GenerationsServed = append(p.GenerationsServed, gen)
		}
		sort.Slice(p.GenerationsServed, func(i, j int) bool { return p.GenerationsServed[i] < p.GenerationsServed[j] })
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		if len(lats) > 0 {
			p.P50Micros = float64(lats[len(lats)/2].Nanoseconds()) / 1e3
			p.P99Micros = float64(lats[int(0.99*float64(len(lats)-1))].Nanoseconds()) / 1e3
		}
		if models != nil {
			// Label check: each response against the offline classification
			// of the exact generation that served it.
			type lk struct {
				gen uint64
				idx int
			}
			checked := map[lk]int{}
			for _, r := range recs {
				k := lk{r.gen, r.idx}
				if want, ok := checked[k]; ok {
					if want != r.label {
						p.LabelMismatches++
					}
					continue
				}
				m := models[r.gen]
				if m == nil {
					p.LabelMismatches++
					continue
				}
				want := m.Production.ClassifyInput(m.Program.Features(), inputs[r.idx], nil)
				checked[k] = want
				if r.label != want {
					p.LabelMismatches++
				}
			}
		}
		return p
	}
	out := []DriftPhaseResult{
		phase("pre_shift", preIn, preRecs, preFailed),
		phase("shifted", shiftIn, shiftRecs, shiftFailed),
	}
	if postIn != nil || postRecs != nil {
		out = append(out, phase("post_retrain", postIn, postRecs, postFailed))
	}
	return out
}

// scoreDriftPhases fills each phase's MeanSlowdown: served virtual cost
// over the per-input dynamic-oracle cost — the best configuration in the
// serving generation's own landmark set, so the score isolates how well
// the classifier picked among the choices it had (the quantity drift
// corrupts and a retrain repairs). Costs are deterministic (cost.Meter
// virtual time), so the same decisions always score the same.
func scoreDriftPhases(phases []DriftPhaseResult, models map[uint64]*core.Model, inputs [][]core.Input, recs [][]driftPhaseRecord) {
	prog := sortbench.New()
	for pi := range phases {
		oracle := map[[2]uint64]float64{} // (gen, idx) -> best landmark cost for that generation
		served := map[[2]uint64]float64{} // (gen, idx) -> served cost
		var sum float64
		var n int
		for _, r := range recs[pi] {
			in := inputs[pi][r.idx]
			m := models[r.gen]
			if m == nil || r.label >= len(m.Landmarks) {
				continue
			}
			k := [2]uint64{r.gen, uint64(r.idx)}
			oc, ok := oracle[k]
			if !ok {
				for _, cfg := range m.Landmarks {
					c, _ := core.Measure(prog, cfg, in)
					if !ok || c < oc {
						oc, ok = c, true
					}
				}
				oracle[k] = oc
			}
			scost, ok2 := served[k]
			if !ok2 {
				scost, _ = core.Measure(prog, m.Landmarks[r.label], in)
				served[k] = scost
			}
			if oc > 0 {
				sum += scost / oc
				n++
			}
		}
		if n > 0 {
			phases[pi].MeanSlowdown = sum / float64(n)
		}
	}
}

// RenderDriftBench formats the report as a human-readable table.
func RenderDriftBench(r DriftBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "drift-bench: benchmark %s, %d clients, window %d, reservoir %d (min retain %d)\n",
		r.Benchmark, r.Clients, r.Window, r.ReservoirCapacity, r.MinRetain)
	fmt.Fprintf(&b, "detector fired after %d shifted requests; %d retrain(s), first published %.2fs after firing; generation %d at end\n",
		r.FiredAfterRequests, r.Retrains, r.RetrainSeconds, r.GenerationEnd)
	if r.Note != "" {
		fmt.Fprintf(&b, "NOTE: %s\n", r.Note)
	}
	fmt.Fprintf(&b, "%-13s %8s %7s %9s %12s %10s %9s %9s\n",
		"Phase", "req", "failed", "mismatch", "generations", "slowdown", "p50(µs)", "p99(µs)")
	fmt.Fprintln(&b, strings.Repeat("-", 84))
	for _, p := range r.Phases {
		gens := make([]string, len(p.GenerationsServed))
		for i, g := range p.GenerationsServed {
			gens[i] = fmt.Sprintf("%d", g)
		}
		fmt.Fprintf(&b, "%-13s %8d %7d %9d %12s %9.3fx %9.0f %9.0f\n",
			p.Phase, p.Requests, p.FailedRequests, p.LabelMismatches,
			strings.Join(gens, ","), p.MeanSlowdown, p.P50Micros, p.P99Micros)
	}
	fmt.Fprintf(&b, "quality recovered to pre-shift baseline: %v\n", r.QualityRecovered)
	return b.String()
}

// MergeDriftIntoBench folds a drift-bench report into the BENCH trajectory
// file at path, replacing only the "drift" section.
func MergeDriftIntoBench(path string, db DriftBenchReport) error {
	var rep BenchReport
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("existing %s is not a bench report: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	rep.Drift = &db
	data, err := rep.BenchJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// slogFromLogf adapts the bench's printf-style progress logger to the
// structured logger the drift controller expects: each record renders as
// one slog text line through logf.
func slogFromLogf(logf func(string, ...any)) *slog.Logger {
	return slog.New(slog.NewTextHandler(logfWriter(logf), nil))
}

// logfWriter funnels slog's text-handler output into a printf-style
// logger, one line per Write.
type logfWriter func(string, ...any)

func (w logfWriter) Write(p []byte) (int, error) {
	w("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
