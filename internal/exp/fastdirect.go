package exp

import (
	"fmt"
	"strings"
	"time"

	"inputtune/internal/autotuner"
	"inputtune/internal/benchmarks/helmholtz3d"
	"inputtune/internal/benchmarks/poisson2d"
	"inputtune/internal/pde"
	"inputtune/internal/rng"
)

// The raw-speed sections of the trajectory file: a dense-vs-fast direct
// solver microbenchmark (the kernel-level A/B behind BENCH_6's headline)
// and a training arm where the autotuner may pick the fast solver as a
// sixth alternative. Both are opt-in extensions of the report — the
// existing results sections stay byte-identical to earlier snapshots.

// DirectSolverRow is one problem size of the dense-vs-FFT direct solver
// A/B. Flops are the meter's deterministic virtual charges; seconds are
// wall-clock (best of several runs) and machine-dependent.
type DirectSolverRow struct {
	Benchmark    string  `json:"benchmark"`
	N            int     `json:"n"`
	DenseSeconds float64 `json:"dense_seconds"`
	FastSeconds  float64 `json:"fast_seconds"`
	SpeedupX     float64 `json:"speedup_x"`
	DenseFlops   int     `json:"dense_flops"`
	FastFlops    int     `json:"fast_flops"`
	// MaxRelErr is max|fast-dense| / max|dense| over the grid: the price
	// of the O(N log N) path, bounded by the pde package's 1e-12 contract.
	MaxRelErr float64 `json:"max_rel_err"`
}

// directSolverSizes are the A/B sizes; every n has 2(n+1) a power of two,
// so the fast path genuinely runs its FFT (not the dense fallback).
var (
	directSolver2DSizes = []int{63, 127, 255}
	directSolver3DSizes = []int{15, 31, 63}
)

// RunDirectSolverBench times the dense sine-transform direct solvers
// against their FFT-backed replacements on the PDE benchmarks' problem
// generators.
func RunDirectSolverBench(sc Scale) []DirectSolverRow {
	var rows []DirectSolverRow
	for _, n := range directSolver2DSizes {
		prob := poisson2d.GenSmooth(n, rng.New(sc.Seed))
		rows = append(rows, directSolverRow("poisson2d", n,
			func(w *pde.Work) []float64 { return pde.DirectPoisson2D(prob.F, w).Data },
			func(w *pde.Work) []float64 { return pde.FastDirectPoisson2D(prob.F, w).Data }))
	}
	for _, n := range directSolver3DSizes {
		prob := helmholtz3d.GenVaryingCoeff(n, rng.New(sc.Seed))
		rows = append(rows, directSolverRow("helmholtz3d", n,
			func(w *pde.Work) []float64 { return pde.DirectHelmholtz3D(prob.Op, prob.F, w).Data },
			func(w *pde.Work) []float64 { return pde.FastDirectHelmholtz3D(prob.Op, prob.F, w).Data }))
	}
	return rows
}

func directSolverRow(name string, n int, dense, fast func(*pde.Work) []float64) DirectSolverRow {
	var dw, fw pde.Work
	du := dense(&dw)
	fu := fast(&fw)
	row := DirectSolverRow{
		Benchmark:    name,
		N:            n,
		DenseSeconds: bestOf(3, func() { var w pde.Work; dense(&w) }),
		FastSeconds:  bestOf(3, func() { var w pde.Work; fast(&w) }),
		DenseFlops:   dw.Flops,
		FastFlops:    fw.Flops,
		MaxRelErr:    maxRelErr(fu, du),
	}
	if row.FastSeconds > 0 {
		row.SpeedupX = row.DenseSeconds / row.FastSeconds
	}
	return row
}

// bestOf returns the fastest of reps timed runs (the standard way to
// strip scheduler noise from a single-kernel measurement).
func bestOf(reps int, f func()) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0).Seconds(); i == 0 || d < best {
			best = d
		}
	}
	return best
}

func maxRelErr(got, want []float64) float64 {
	maxDiff, maxAbs := 0.0, 0.0
	for i := range want {
		if d := got[i] - want[i]; d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
		if a := want[i]; a > maxAbs {
			maxAbs = a
		} else if -a > maxAbs {
			maxAbs = -a
		}
	}
	if maxAbs == 0 {
		return maxDiff
	}
	return maxDiff / maxAbs
}

// FastDirectCase is one PDE benchmark retrained with the opt-in
// "fast-direct" solver alternative. The input sets, seeds and training
// budget match the default arm exactly, so any metric delta is the new
// alternative's doing. Dispatch counts show WHERE the tuner deployed it
// — the input-sensitivity story: it should win at the large sizes whose
// virtual cost favours O(N log N) and lose at the small ones.
type FastDirectCase struct {
	Benchmark string `json:"benchmark"`
	// Sizes is the input-size battery this arm trained over. The
	// helmholtz3d-large arm reaches n=63, past the fast-DST virtual-cost
	// crossover (3-D n≳63), so the tuner can actually deploy the fast
	// solver; the base arms keep their historical sizes.
	Sizes           []int   `json:"sizes,omitempty"`
	TwoLevelSpeedup float64 `json:"two_level_speedup_x"`
	Satisfaction    float64 `json:"two_level_satisfaction"`
	Production      string  `json:"production_classifier"`
	// LandmarksFastDirect counts landmark configurations that dispatched
	// at least one test input to the fast solver; TestInputsFastDirect
	// the test inputs so dispatched (of TestInputs).
	LandmarksFastDirect  int `json:"landmarks_fast_direct"`
	TestInputsFastDirect int `json:"test_inputs_fast_direct"`
	TestInputs           int `json:"test_inputs"`

	TrainSeconds float64 `json:"train_seconds"`
	EvalSeconds  float64 `json:"eval_seconds"`
}

// fastDirectSpec is one retraining arm of the fast-direct experiment.
type fastDirectSpec struct {
	c       Case
	fastAlt int
	sizes   []int
	// budgetFrac/trials override the arm's tuner budget (as a fraction of
	// autotuner.FlatCost, like exp.TunerProfile) — the fast-direct arms
	// search a six-alternative space, so the base benchmark's profile is
	// not automatically right for them. Zero keeps the named profile.
	budgetFrac float64
	trials     int
}

// helmholtzLargeSizes is the helmholtz3d-large battery. The top size sits
// exactly at the fast-DST virtual-cost crossover (fast 60.2M vs dense
// 95.3M flops at n=63; dense still wins at n=31), so a tuner that sees
// these inputs can profitably deploy the fast solver where the base
// {7, 15} battery never could.
var helmholtzLargeSizes = []int{15, 31, 63}

// RunFastDirectArm retrains every PDE case in names with the fast-direct
// alternative enabled and reports where the tuned model routed it. When
// helmholtz3d is among the names it additionally runs the
// helmholtz3d-large arm — the same program over the large-size battery —
// because the crossover where fast-direct wins is unreachable below n=63.
func RunFastDirectArm(names []string, sc Scale, logf func(string, ...any)) []FastDirectCase {
	var specs []fastDirectSpec
	for _, name := range names {
		switch name {
		case "poisson2d":
			n := sc.TrainInputs * 2 / 3 // mirror BuildCase's PDE sizing
			specs = append(specs, fastDirectSpec{
				c: Case{
					Name: name, Prog: poisson2d.NewWithFastDirect(),
					Train: poissonInputs(poisson2d.MixOptions{Count: n, Seed: sc.Seed}),
					Test:  poissonInputs(poisson2d.MixOptions{Count: n, Seed: sc.Seed + 10007}),
				},
				fastAlt: poisson2d.SolverFastDirect,
			})
		case "helmholtz3d":
			n := sc.TrainInputs / 2
			specs = append(specs, fastDirectSpec{
				c: Case{
					Name: name, Prog: helmholtz3d.NewWithFastDirect(),
					Train: helmholtzInputs(helmholtz3d.MixOptions{Count: n, Seed: sc.Seed}),
					Test:  helmholtzInputs(helmholtz3d.MixOptions{Count: n, Seed: sc.Seed + 10007}),
				},
				fastAlt: helmholtz3d.SolverFastDirect,
				// With six alternatives the helmholtz space needs a longer
				// portfolio than the base benchmark's cheap profile: at
				// 0.43x flat cost the search cleanly rejects fast-direct
				// below the crossover (0/45 routed) at 27x speedup, where
				// the 0.17x profile half-deploys it for a worse result.
				budgetFrac: 0.43, trials: 3,
			})
			// The large arm trains fewer inputs: one n=63 instance holds
			// 74x the cells of an n=15 one, and the point is reachability
			// of the crossover, not battery breadth.
			nl := sc.TrainInputs / 3
			specs = append(specs, fastDirectSpec{
				c: Case{
					Name: "helmholtz3d-large", Prog: helmholtz3d.NewWithFastDirect(),
					Train: helmholtzInputs(helmholtz3d.MixOptions{Count: nl, Seed: sc.Seed, Sizes: helmholtzLargeSizes}),
					Test:  helmholtzInputs(helmholtz3d.MixOptions{Count: nl, Seed: sc.Seed + 10007, Sizes: helmholtzLargeSizes}),
				},
				fastAlt:    helmholtz3d.SolverFastDirect,
				sizes:      helmholtzLargeSizes,
				budgetFrac: 0.43, trials: 3,
			})
		}
	}
	var out []FastDirectCase
	for _, spec := range specs {
		c, fastAlt := spec.c, spec.fastAlt
		armSc := sc
		if spec.budgetFrac > 0 && !sc.FlatTuner && sc.TunerBudget == 0 {
			armSc.TunerBudget = int(spec.budgetFrac*float64(autotuner.FlatCost(sc.TunerPop, sc.TunerGens)) + 0.5)
			armSc.TunerMetaTrials = spec.trials
		}
		row := RunCase(c, armSc, logf)
		res := FastDirectCase{
			Benchmark:       c.Name,
			Sizes:           spec.sizes,
			TwoLevelSpeedup: row.TwoLevelFX,
			Satisfaction:    row.TwoLevelAccuracy,
			Production:      row.Report.Production,
			TestInputs:      len(c.Test),
			TrainSeconds:    row.TrainSeconds,
			EvalSeconds:     row.EvalSeconds,
		}
		// Replay the production classifier over the test inputs and ask
		// each dispatched landmark which solver it selects at that input's
		// size (the solver site is site 0 on both PDE programs).
		set := c.Prog.Features()
		seen := make(map[int]bool)
		for _, in := range c.Test {
			lm := row.Model.Production.ClassifyInput(set, in, nil)
			if row.Model.Landmarks[lm].Decide(0, in.Size()) == fastAlt {
				res.TestInputsFastDirect++
				seen[lm] = true
			}
		}
		res.LandmarksFastDirect = len(seen)
		out = append(out, res)
	}
	return out
}

// RenderDirectSolver formats the microbench rows as a table.
func RenderDirectSolver(rows []DirectSolverRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %5s %11s %11s %8s %13s %13s %11s\n",
		"Benchmark", "n", "dense(s)", "fast(s)", "speedup", "denseFlops", "fastFlops", "maxRelErr")
	fmt.Fprintln(&b, strings.Repeat("-", 91))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %5d %11.6f %11.6f %7.1fx %13d %13d %11.2e\n",
			r.Benchmark, r.N, r.DenseSeconds, r.FastSeconds, r.SpeedupX,
			r.DenseFlops, r.FastFlops, r.MaxRelErr)
	}
	return b.String()
}

// RenderFastDirect formats the retraining-arm results as a table.
func RenderFastDirect(cases []FastDirectCase) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %9s %9s %9s %12s %10s %12s\n",
		"Benchmark", "maxN", "speedup", "satisf", "production", "fd-lmarks", "fd-inputs")
	fmt.Fprintln(&b, strings.Repeat("-", 86))
	for _, r := range cases {
		maxN := "-"
		if len(r.Sizes) > 0 {
			maxN = fmt.Sprintf("%d", r.Sizes[len(r.Sizes)-1])
		}
		fmt.Fprintf(&b, "%-18s %9s %8.2fx %8.1f%% %12s %10d %8d/%d\n",
			r.Benchmark, maxN, r.TwoLevelSpeedup, 100*r.Satisfaction, r.Production,
			r.LandmarksFastDirect, r.TestInputsFastDirect, r.TestInputs)
	}
	return b.String()
}
