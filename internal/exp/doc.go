// Package exp is the experiment harness: it wires the six benchmarks into
// the eight tests of the paper's evaluation (Table 1) and regenerates every
// table and figure — Table 1, Figure 6 (per-input speedup distributions),
// Figure 7 (theoretical model), Figure 8 (speedup vs. landmark count), and
// the Section 3.1 landmark-selection ablation.
//
// It also owns the repo's performance trajectory: RunBench runs every case
// end to end and emits the BENCH_*.json document — wall/train/eval
// seconds, a per-phase training breakdown (features / tune / measure /
// classifiers), tuner-evaluation and measurement-cache counters,
// classifier-zoo dedup stats, and the headline speedup/satisfaction
// metrics, so performance work and result quality are diffed together
// across PRs.
//
// Scale selects the workload size: QuickScale for CI, DefaultScale for the
// standard reproduction; the paper's full scale is reachable by raising
// the fields. Everything is deterministic per Scale.Seed.
package exp
