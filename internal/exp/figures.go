package exp

import (
	"fmt"
	"strings"

	"inputtune/internal/core"
	"inputtune/internal/model"
	"inputtune/internal/rng"
	"inputtune/internal/stats"
)

// Fig8Point is one box of Figure 8: the speedup distribution over random
// landmark subsets of one size.
type Fig8Point struct {
	K                        int
	Min, Q1, Median, Q3, Max float64
}

// Fig8Sweep measures, for each subset size, the mean per-input speedup
// over the full static oracle obtained by dispatching every test input to
// its best landmark within a random subset — the paper's Figure 8 protocol
// ("random subsets of the 100 landmarks used in other results"), with
// quartile error bars over trials.
func Fig8Sweep(prog core.Program, d *core.Dataset, staticPerInput []float64, sizes []int, trials int, seed uint64) []Fig8Point {
	k1 := d.NumLandmarks()
	idx := core.AllRows(d)
	h1 := prog.AccuracyThreshold()
	hasAcc := prog.HasAccuracy()
	r := rng.New(seed)
	var out []Fig8Point
	for _, k := range sizes {
		if k > k1 {
			k = k1
		}
		var speedups []float64
		for t := 0; t < trials; t++ {
			subset := r.SampleWithoutReplacement(k1, k)
			sum := 0.0
			for _, i := range idx {
				best := -1
				for _, lm := range subset {
					if hasAcc && d.A[i][lm] < h1 {
						continue
					}
					if best == -1 || d.T[i][lm] < d.T[i][best] {
						best = lm
					}
				}
				if best == -1 {
					// Nothing feasible in the subset: most accurate member.
					best = subset[0]
					for _, lm := range subset[1:] {
						if d.A[i][lm] > d.A[i][best] {
							best = lm
						}
					}
				}
				m := d.T[i][best]
				if m <= 0 {
					m = 1e-12
				}
				sum += staticPerInput[i] / m
			}
			speedups = append(speedups, sum/float64(len(idx)))
		}
		sum := stats.Summarize(speedups)
		out = append(out, Fig8Point{K: k, Min: sum.Min, Q1: sum.Q1, Median: sum.Median, Q3: sum.Q3, Max: sum.Max})
		if k == k1 {
			break
		}
	}
	return out
}

// DefaultFig8Sizes doubles from 1 up to k1.
func DefaultFig8Sizes(k1 int) []int {
	var sizes []int
	for k := 1; k < k1; k *= 2 {
		sizes = append(sizes, k)
	}
	return append(sizes, k1)
}

// RenderFig8 formats the sweep like the paper's per-benchmark panels.
func RenderFig8(name string, pts []Fig8Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure 8 (%s): speedup over static oracle vs #landmarks (min/q1/median/q3/max)\n", name)
	for _, p := range pts {
		fmt.Fprintf(&b, "  k=%3d  %6.2fx %6.2fx %6.2fx %6.2fx %6.2fx\n",
			p.K, p.Min, p.Q1, p.Median, p.Q3, p.Max)
	}
	return b.String()
}

// Fig8CSV renders the sweep as CSV.
func Fig8CSV(name string, pts []Fig8Point) string {
	var b strings.Builder
	b.WriteString("benchmark,k,min,q1,median,q3,max\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%d,%.4f,%.4f,%.4f,%.4f,%.4f\n", name, p.K, p.Min, p.Q1, p.Median, p.Q3, p.Max)
	}
	return b.String()
}

// RenderFig7 prints the theoretical model curves of Figure 7.
func RenderFig7() string {
	var b strings.Builder
	b.WriteString("figure 7a: predicted lost speedup vs region size (uniform s_i)\n")
	b.WriteString("  p:      ")
	ps, _ := model.Fig7aCurve(2, 9)
	for _, p := range ps {
		fmt.Fprintf(&b, "%6.2f", p)
	}
	b.WriteByte('\n')
	for _, k := range []int{2, 3, 4, 5, 6, 7, 8, 9} {
		_, losses := model.Fig7aCurve(k, 9)
		fmt.Fprintf(&b, "  k=%d:    ", k)
		for _, l := range losses {
			fmt.Fprintf(&b, "%6.3f", l)
		}
		fmt.Fprintf(&b, "   (worst-case p* = %.3f)\n", model.WorstCaseRegionSize(k))
	}
	b.WriteString("\nfigure 7b: predicted fraction of full speedup vs #landmarks (worst-case region)\n")
	ks, fr := model.Fig7bCurve(100)
	for i := 0; i < len(ks); i += 10 {
		fmt.Fprintf(&b, "  k=%3d: %.4f\n", ks[i], fr[i])
	}
	fmt.Fprintf(&b, "  k=%3d: %.4f\n", ks[len(ks)-1], fr[len(fr)-1])
	return b.String()
}

// Fig7CSV renders both model curves as CSV.
func Fig7CSV() string {
	var b strings.Builder
	b.WriteString("curve,k,x,y\n")
	for _, k := range []int{2, 3, 4, 5, 6, 7, 8, 9} {
		ps, losses := model.Fig7aCurve(k, 99)
		for i := range ps {
			fmt.Fprintf(&b, "fig7a,%d,%.4f,%.6f\n", k, ps[i], losses[i])
		}
	}
	ks, fr := model.Fig7bCurve(100)
	for i := range ks {
		fmt.Fprintf(&b, "fig7b,%d,%d,%.6f\n", ks[i], ks[i], fr[i])
	}
	return b.String()
}

// AblationResult compares K-means-medoid landmark selection against random
// input selection (paper Section 3.1: ~41% degradation at 5 landmarks).
type AblationResult struct {
	Name           string
	K1             int
	KmeansSpeedup  float64 // dynamic-oracle speedup with K-means landmarks
	RandomSpeedup  float64 // same with randomly chosen tuning inputs
	DegradationPct float64 // (kmeans - random) / kmeans * 100
}

// AblationLandmarks trains two models differing only in landmark
// selection and compares their dynamic-oracle speedups on the test set.
func AblationLandmarks(c Case, sc Scale, logf func(string, ...any)) AblationResult {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	run := func(random bool) float64 {
		m := core.TrainModel(c.Prog, c.Train, core.Options{
			K1:               sc.K1,
			Seed:             sc.Seed,
			TunerPopulation:  sc.TunerPop,
			TunerGenerations: sc.TunerGens,
			H2:               h2,
			Parallel:         sc.Parallel,
			DisableCache:     sc.DisableCache,
			RandomLandmarks:  random,
			Logf:             logf,
		})
		testD := core.BuildDatasetCached(c.Prog, c.Test, m, sc.measurementCache(), sc.Parallel)
		idx := core.AllRows(testD)
		so := core.StaticOracleIndex(c.Prog, m.Train, core.AllRows(m.Train), h2)
		static := core.EvalStatic(c.Prog, testD, idx, so)
		dyn := core.EvalDynamicOracle(c.Prog, testD, idx)
		return static.MeanExec / dyn.MeanExec
	}
	km := run(false)
	rd := run(true)
	return AblationResult{
		Name:           c.Name,
		K1:             sc.K1,
		KmeansSpeedup:  km,
		RandomSpeedup:  rd,
		DegradationPct: 100 * (km - rd) / km,
	}
}

// RenderAblation formats ablation results.
func RenderAblation(results []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %4s %16s %16s %14s\n", "Benchmark", "K1", "kmeans-dynoracle", "random-dynoracle", "degradation")
	fmt.Fprintln(&b, strings.Repeat("-", 68))
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %4d %15.2fx %15.2fx %13.1f%%\n",
			r.Name, r.K1, r.KmeansSpeedup, r.RandomSpeedup, r.DegradationPct)
	}
	return b.String()
}

// TuneSamplesResult compares landmark tuning against a single centroid
// input (the literal reading of the paper) with tuning against a spread of
// cluster members (our PetaBricks-confidence refinement, DESIGN.md §5.2).
type TuneSamplesResult struct {
	Name    string
	Samples int
	// TwoLevelSpeedup and Satisfaction of the resulting deployment.
	TwoLevelSpeedup float64
	Satisfaction    float64
}

// AblationTuneSamples trains models with varying per-landmark sample
// counts and reports the deployed two-level speedup and satisfaction.
func AblationTuneSamples(c Case, sc Scale, samples []int, logf func(string, ...any)) []TuneSamplesResult {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(samples) == 0 {
		samples = []int{1, 3, 6}
	}
	var out []TuneSamplesResult
	for _, n := range samples {
		m := core.TrainModel(c.Prog, c.Train, core.Options{
			K1:               sc.K1,
			Seed:             sc.Seed,
			TunerPopulation:  sc.TunerPop,
			TunerGenerations: sc.TunerGens,
			TuneSamples:      n,
			H2:               h2,
			Parallel:         sc.Parallel,
			DisableCache:     sc.DisableCache,
			Logf:             logf,
		})
		testD := core.BuildDatasetCached(c.Prog, c.Test, m, sc.measurementCache(), sc.Parallel)
		idx := core.AllRows(testD)
		so := core.StaticOracleIndex(c.Prog, m.Train, core.AllRows(m.Train), h2)
		static := core.EvalStatic(c.Prog, testD, idx, so)
		two := core.EvalTwoLevel(m, testD, idx)
		sum := 0.0
		for i := range idx {
			sum += static.PerInputExec[i] / two.PerInputTotal[i]
		}
		out = append(out, TuneSamplesResult{
			Name:            c.Name,
			Samples:         n,
			TwoLevelSpeedup: sum / float64(len(idx)),
			Satisfaction:    two.Satisfaction,
		})
	}
	return out
}

// RenderTuneSamples formats the tuning-samples ablation.
func RenderTuneSamples(results []TuneSamplesResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %18s %14s\n", "Benchmark", "samples", "two-level speedup", "satisfaction")
	fmt.Fprintln(&b, strings.Repeat("-", 56))
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %8d %17.2fx %13.1f%%\n",
			r.Name, r.Samples, r.TwoLevelSpeedup, 100*r.Satisfaction)
	}
	return b.String()
}
