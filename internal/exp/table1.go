package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"inputtune/internal/core"
	"inputtune/internal/engine"
)

// h2 is the satisfaction threshold used throughout the evaluation.
const h2 = 0.95

// Table1Row is one row of the paper's Table 1: mean speedups over the
// static oracle, plus the satisfaction rates the rightmost column reports.
type Table1Row struct {
	Name string

	DynamicOracle float64 // speedup, no feature cost
	TwoLevelNoFX  float64 // speedup ignoring feature-extraction time
	TwoLevelFX    float64 // speedup including feature-extraction time
	OneLevelNoFX  float64
	OneLevelFX    float64

	TwoLevelAccuracy float64 // fraction of test inputs meeting H1
	OneLevelAccuracy float64
	StaticAccuracy   float64

	// StaticMeanTime is the baseline mean execution time (virtual units).
	StaticMeanTime float64
	// StaticPerInput holds the static oracle's per-test-input execution
	// times (the Figure 6 and Figure 8 baselines).
	StaticPerInput []float64

	// PerInputSpeedups are static-exec / two-level-total per test input
	// (Figure 6).
	PerInputSpeedups []float64

	// Report carries the training diagnostics (E6).
	Report core.Report

	// TrainSeconds and EvalSeconds are the wall-clock cost of training and
	// of test-set evaluation — the perf trajectory the bench runner tracks.
	TrainSeconds float64
	EvalSeconds  float64
	// EvalEngine is the test-set measurement cache snapshot (training-side
	// stats live in Report.Engine).
	EvalEngine engine.CacheStats

	// Model and TestData are kept for the Figure 8 sweep.
	Model    *core.Model
	TestData *core.Dataset
}

// RunCase trains the two-level model on the case's training inputs and
// evaluates all four methods on the held-out test inputs.
func RunCase(c Case, sc Scale, logf func(string, ...any)) *Table1Row {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	trainStart := time.Now()
	budget, trials := resolveTuner(c.Name, sc)
	model := core.TrainModel(c.Prog, c.Train, core.Options{
		K1:               sc.K1,
		Seed:             sc.Seed,
		TunerPopulation:  sc.TunerPop,
		TunerGenerations: sc.TunerGens,
		TunerBudget:      budget,
		TunerMetaTrials:  trials,
		FlatTuner:        sc.FlatTuner,
		H2:               h2,
		Parallel:         sc.Parallel,
		DisableCache:     sc.DisableCache,
		Logf:             logf,
	})
	trainSeconds := time.Since(trainStart).Seconds()
	evalStart := time.Now()
	evalCache := sc.measurementCache()
	testD := core.BuildDatasetCached(c.Prog, c.Test, model, evalCache, sc.Parallel)
	idx := core.AllRows(testD)

	so := core.StaticOracleIndex(c.Prog, model.Train, core.AllRows(model.Train), h2)
	static := core.EvalStatic(c.Prog, testD, idx, so)
	dyn := core.EvalDynamicOracle(c.Prog, testD, idx)
	two := core.EvalTwoLevel(model, testD, idx)
	one := core.EvalOneLevel(core.NewOneLevel(model), testD, idx)

	// Table 1 reports MEAN PER-INPUT speedup over the static oracle (the
	// quantity whose distribution Figure 6 plots), not the ratio of total
	// times: each input counts equally, so the large wins on cheap inputs
	// the paper highlights are not drowned out by expensive ones.
	row := &Table1Row{
		Name:             c.Name,
		DynamicOracle:    meanSpeedup(static.PerInputExec, dyn.PerInputExec),
		TwoLevelNoFX:     meanSpeedup(static.PerInputExec, two.PerInputExec),
		TwoLevelFX:       meanSpeedup(static.PerInputExec, two.PerInputTotal),
		OneLevelNoFX:     meanSpeedup(static.PerInputExec, one.PerInputExec),
		OneLevelFX:       meanSpeedup(static.PerInputExec, one.PerInputTotal),
		TwoLevelAccuracy: two.Satisfaction,
		OneLevelAccuracy: one.Satisfaction,
		StaticAccuracy:   static.Satisfaction,
		StaticMeanTime:   static.MeanExec,
		StaticPerInput:   static.PerInputExec,
		Report:           model.Report,
		TrainSeconds:     trainSeconds,
		EvalSeconds:      time.Since(evalStart).Seconds(),
		EvalEngine:       evalCache.Stats(),
		Model:            model,
		TestData:         testD,
	}
	row.PerInputSpeedups = make([]float64, len(idx))
	for j := range idx {
		row.PerInputSpeedups[j] = static.PerInputExec[j] / two.PerInputTotal[j]
	}
	return row
}

// meanSpeedup is the mean of per-input baseline/method time ratios.
func meanSpeedup(baseline, method []float64) float64 {
	sum := 0.0
	for i := range baseline {
		m := method[i]
		if m <= 0 {
			m = 1e-12
		}
		sum += baseline[i] / m
	}
	return sum / float64(len(baseline))
}

// RenderTable1 formats rows in the layout of the paper's Table 1.
func RenderTable1(rows []*Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %12s %12s %10s\n",
		"Benchmark", "Dynamic", "TwoLvl", "TwoLvl", "OneLvl", "OneLvl", "OneLvl")
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %12s %12s %10s\n",
		"", "Oracle", "(w/o fx)", "(w/ fx)", "(w/o fx)", "(w/ fx)", "accuracy")
	fmt.Fprintln(&b, strings.Repeat("-", 84))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %7.2fx %11.2fx %11.2fx %11.2fx %11.2fx %9.1f%%\n",
			r.Name, r.DynamicOracle, r.TwoLevelNoFX, r.TwoLevelFX,
			r.OneLevelNoFX, r.OneLevelFX, 100*r.OneLevelAccuracy)
	}
	return b.String()
}

// Table1CSV renders rows as CSV for downstream plotting.
func Table1CSV(rows []*Table1Row) string {
	var b strings.Builder
	b.WriteString("benchmark,dynamic_oracle,two_level_no_fx,two_level_fx,one_level_no_fx,one_level_fx,one_level_accuracy,two_level_accuracy\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			r.Name, r.DynamicOracle, r.TwoLevelNoFX, r.TwoLevelFX,
			r.OneLevelNoFX, r.OneLevelFX, r.OneLevelAccuracy, r.TwoLevelAccuracy)
	}
	return b.String()
}

// Fig6Series returns the per-input speedups sorted ascending, the layout
// of Figure 6.
func Fig6Series(r *Table1Row) []float64 {
	out := append([]float64(nil), r.PerInputSpeedups...)
	sort.Float64s(out)
	return out
}

// RenderFig6 summarises a case's per-input speedup distribution and draws
// an ASCII version of the sorted curve.
func RenderFig6(r *Table1Row) string {
	s := Fig6Series(r)
	var b strings.Builder
	fmt.Fprintf(&b, "figure 6 (%s): per-input speedup over static oracle, %d inputs\n", r.Name, len(s))
	q := func(f float64) float64 { return s[int(f*float64(len(s)-1))] }
	fmt.Fprintf(&b, "  min %.2fx  q1 %.2fx  median %.2fx  q3 %.2fx  max %.2fx\n",
		s[0], q(0.25), q(0.5), q(0.75), s[len(s)-1])
	b.WriteString(asciiCurve(s, 60, 10))
	return b.String()
}

// asciiCurve draws values (assumed ascending) as a crude monotone curve.
func asciiCurve(vals []float64, width, height int) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[len(vals)-1]
	if hi <= lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for x := 0; x < width; x++ {
		v := vals[x*(len(vals)-1)/max(width-1, 1)]
		y := int(float64(height-1) * (v - lo) / (hi - lo))
		grid[height-1-y][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %.2fx\n", hi)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  %.2fx %s inputs (sorted) %s\n", lo, strings.Repeat("-", width/2-9), strings.Repeat("-", width/2-9))
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
