package exp

import "runtime"

// singleCoreCaveat is the one place every throughput/speedup report
// section derives its GOMAXPROCS=1 caveat from: it reports whether the
// run is pinned to a single core and, when it is, returns note verbatim
// so the caveat lands inside the JSON report itself — a reader of the
// trajectory file sees why a parallel-scaling number is flat without
// hunting for a code comment. On multi-core runs both returns are zero
// values, which `json:",omitempty"` then elides.
func singleCoreCaveat(note string) (bool, string) {
	if runtime.GOMAXPROCS(0) > 1 {
		return false, ""
	}
	return true, note
}
