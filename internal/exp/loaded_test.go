package exp

import (
	"bytes"
	"testing"

	"inputtune/internal/core"
)

// TestEvalLoadedModelMatchesTrained round-trips a trained model through
// SaveModel/LoadModel and checks the loaded artifact deploys identically:
// same labels on every test input, and an evaluation report with the
// Table-1 ordering invariants.
func TestEvalLoadedModelMatchesTrained(t *testing.T) {
	sc := tinyScale()
	c := BuildCase("sort2", sc)
	trained := core.TrainModel(c.Prog, c.Train, core.Options{
		K1: sc.K1, Seed: sc.Seed, TunerPopulation: sc.TunerPop,
		TunerGenerations: sc.TunerGens, H2: h2, Parallel: sc.Parallel,
	})
	var buf bytes.Buffer
	if err := core.SaveModel(trained, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadModel(c.Prog, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range c.Test {
		if got, want := loaded.Infer(in).Landmark, trained.Infer(in).Landmark; got != want {
			t.Fatalf("test input %d: loaded model classifies %d, trained %d", i, got, want)
		}
	}
	ev := EvalLoadedModel(c, loaded, sc, nil)
	if ev.Name != "sort2" || ev.EvalSeconds <= 0 {
		t.Fatalf("eval shape off: %+v", ev)
	}
	if ev.DynamicOracle < ev.TwoLevelNoFX-1e-9 {
		t.Fatalf("two-level (%.2fx) beats the dynamic oracle (%.2fx)?", ev.TwoLevelNoFX, ev.DynamicOracle)
	}
	if ev.TwoLevelFX > ev.TwoLevelNoFX+1e-9 {
		t.Fatalf("feature extraction made two-level faster: %v vs %v", ev.TwoLevelFX, ev.TwoLevelNoFX)
	}
	if ev.StaticOracle < 0 || ev.StaticOracle >= len(loaded.Landmarks) {
		t.Fatalf("static oracle index %d out of range", ev.StaticOracle)
	}
}
