package exp

import (
	"time"

	"inputtune/internal/core"
)

// LoadedEval is the deployment report of a model restored from a SaveModel
// artifact: how the loaded production classifier performs on fresh test
// inputs, with no retraining. A loaded model carries no training dataset
// or Level-1 clusters, so the one-level baseline is unavailable and the
// static-oracle baseline is chosen over the TEST dataset (slightly
// flattering to the static baseline, which makes the reported two-level
// speedup conservative).
type LoadedEval struct {
	Name string
	// StaticOracle is the index of the best single landmark on the test set.
	StaticOracle int
	// Speedups over that static oracle (mean per-input ratio, as Table 1).
	DynamicOracle float64
	TwoLevelNoFX  float64
	TwoLevelFX    float64
	// TwoLevelAccuracy is the fraction of test inputs meeting H1.
	TwoLevelAccuracy float64
	// EvalSeconds is the wall-clock cost of the test-set evaluation.
	EvalSeconds float64
}

// EvalLoadedModel measures a loaded model on the case's held-out test
// inputs — the save → load → deploy loop's verification step.
func EvalLoadedModel(c Case, m *core.Model, sc Scale, logf func(string, ...any)) *LoadedEval {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()
	logf("[%s] evaluating loaded model (%d landmarks, production %s) on %d test inputs",
		c.Name, len(m.Landmarks), m.Production.Name, len(c.Test))
	testD := core.BuildDatasetCached(c.Prog, c.Test, m, sc.measurementCache(), sc.Parallel)
	idx := core.AllRows(testD)
	so := core.StaticOracleIndex(c.Prog, testD, idx, h2)
	static := core.EvalStatic(c.Prog, testD, idx, so)
	dyn := core.EvalDynamicOracle(c.Prog, testD, idx)
	two := core.EvalTwoLevel(m, testD, idx)
	return &LoadedEval{
		Name:             c.Name,
		StaticOracle:     so,
		DynamicOracle:    meanSpeedup(static.PerInputExec, dyn.PerInputExec),
		TwoLevelNoFX:     meanSpeedup(static.PerInputExec, two.PerInputExec),
		TwoLevelFX:       meanSpeedup(static.PerInputExec, two.PerInputTotal),
		TwoLevelAccuracy: two.Satisfaction,
		EvalSeconds:      time.Since(start).Seconds(),
	}
}
