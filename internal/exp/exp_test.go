package exp

import (
	"strings"
	"testing"
)

// tinyScale keeps CI runtimes low; shape checks stay loose accordingly.
func tinyScale() Scale {
	return Scale{TrainInputs: 64, TestInputs: 64, K1: 6, TunerPop: 8, TunerGens: 6, Seed: 7, Parallel: true}
}

func TestBuildAllCases(t *testing.T) {
	sc := tinyScale()
	for _, c := range AllCases(sc) {
		if c.Prog == nil || len(c.Train) == 0 || len(c.Test) == 0 {
			t.Fatalf("case %s incomplete", c.Name)
		}
		// Train and test must not alias the same inputs (different seeds).
		if &c.Train[0] == &c.Test[0] {
			t.Fatalf("case %s shares train/test storage", c.Name)
		}
	}
}

func TestBuildCaseUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildCase("nope", tinyScale())
}

func TestRunCaseSort2Shape(t *testing.T) {
	sc := tinyScale()
	row := RunCase(BuildCase("sort2", sc), sc, nil)
	// Ordering invariants that must hold regardless of scale:
	// dynamic oracle >= two-level (no fx) and two-level fx <= two-level no fx.
	if row.DynamicOracle < row.TwoLevelNoFX-1e-9 {
		t.Fatalf("two-level (%.2fx) beats the dynamic oracle (%.2fx)?", row.TwoLevelNoFX, row.DynamicOracle)
	}
	if row.TwoLevelFX > row.TwoLevelNoFX+1e-9 {
		t.Fatalf("feature extraction made two-level faster: %v vs %v", row.TwoLevelFX, row.TwoLevelNoFX)
	}
	if row.OneLevelFX > row.OneLevelNoFX+1e-9 {
		t.Fatalf("feature extraction made one-level faster: %v vs %v", row.OneLevelFX, row.OneLevelNoFX)
	}
	// The synthetic sort battery is the paper's headline: the two-level
	// method must beat the static oracle.
	if row.TwoLevelFX <= 1.0 {
		t.Fatalf("two-level speedup %.2fx does not beat static oracle", row.TwoLevelFX)
	}
	// One-level pays for every feature at every level: its fx gap must be
	// no smaller than two-level's.
	oneGap := row.OneLevelNoFX - row.OneLevelFX
	twoGap := row.TwoLevelNoFX - row.TwoLevelFX
	if oneGap < twoGap-1e-9 {
		t.Fatalf("one-level fx overhead (%v) below two-level (%v)?", oneGap, twoGap)
	}
	if len(row.PerInputSpeedups) != len(BuildCase("sort2", sc).Test) {
		t.Fatalf("per-input speedups %d", len(row.PerInputSpeedups))
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	sc := tinyScale()
	row := RunCase(BuildCase("binpacking", sc), sc, nil)
	table := RenderTable1([]*Table1Row{row})
	if !strings.Contains(table, "binpacking") || !strings.Contains(table, "Dynamic") {
		t.Fatalf("table render:\n%s", table)
	}
	csv := Table1CSV([]*Table1Row{row})
	if !strings.HasPrefix(csv, "benchmark,") || !strings.Contains(csv, "binpacking,") {
		t.Fatalf("csv render:\n%s", csv)
	}
	fig6 := RenderFig6(row)
	if !strings.Contains(fig6, "median") {
		t.Fatalf("fig6 render:\n%s", fig6)
	}
	series := Fig6Series(row)
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Fatal("Fig6Series not sorted")
		}
	}
}

func TestFig8SweepMonotoneish(t *testing.T) {
	sc := tinyScale()
	row := RunCase(BuildCase("sort2", sc), sc, nil)
	sizes := DefaultFig8Sizes(sc.K1)
	pts := Fig8Sweep(row.Model.Program, row.TestData, row.StaticPerInput, sizes, 12, 3)
	if len(pts) != len(sizes) {
		t.Fatalf("points %d, sizes %d", len(pts), len(sizes))
	}
	// Median speedup with all landmarks must be >= median with one.
	if pts[len(pts)-1].Median < pts[0].Median-1e-9 {
		t.Fatalf("more landmarks reduced median speedup: %v -> %v", pts[0].Median, pts[len(pts)-1].Median)
	}
	// Boxes are ordered.
	for _, p := range pts {
		if !(p.Min <= p.Q1 && p.Q1 <= p.Median && p.Median <= p.Q3 && p.Q3 <= p.Max) {
			t.Fatalf("box out of order: %+v", p)
		}
	}
	out := RenderFig8("sort2", pts)
	if !strings.Contains(out, "k=") {
		t.Fatalf("fig8 render:\n%s", out)
	}
	if !strings.Contains(Fig8CSV("sort2", pts), "sort2,1,") {
		t.Fatal("fig8 csv missing rows")
	}
}

func TestDefaultFig8Sizes(t *testing.T) {
	sizes := DefaultFig8Sizes(16)
	want := []int{1, 2, 4, 8, 16}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v", sizes)
		}
	}
}

func TestRenderFig7(t *testing.T) {
	out := RenderFig7()
	if !strings.Contains(out, "figure 7a") || !strings.Contains(out, "figure 7b") {
		t.Fatalf("fig7 render:\n%s", out)
	}
	csv := Fig7CSV()
	if !strings.Contains(csv, "fig7a,2,") || !strings.Contains(csv, "fig7b,100,") {
		t.Fatal("fig7 csv incomplete")
	}
}

func TestAblationLandmarks(t *testing.T) {
	sc := tinyScale()
	sc.K1 = 4 // the gap is widest at few landmarks (paper: 5)
	res := AblationLandmarks(BuildCase("sort2", sc), sc, nil)
	if res.KmeansSpeedup <= 0 || res.RandomSpeedup <= 0 {
		t.Fatalf("bad ablation result %+v", res)
	}
	out := RenderAblation([]AblationResult{res})
	if !strings.Contains(out, "sort2") {
		t.Fatalf("ablation render:\n%s", out)
	}
}

func TestScalesSane(t *testing.T) {
	for _, sc := range []Scale{QuickScale(), DefaultScale()} {
		if sc.TrainInputs < 50 || sc.K1 < 4 || sc.TunerPop < 8 {
			t.Fatalf("scale too small to be meaningful: %+v", sc)
		}
	}
}

func TestAblationTuneSamples(t *testing.T) {
	sc := tinyScale()
	res := AblationTuneSamples(BuildCase("binpacking", sc), sc, []int{1, 3}, nil)
	if len(res) != 2 || res[0].Samples != 1 || res[1].Samples != 3 {
		t.Fatalf("results = %+v", res)
	}
	for _, r := range res {
		if r.TwoLevelSpeedup <= 0 || r.Satisfaction < 0 || r.Satisfaction > 1 {
			t.Fatalf("bad result %+v", r)
		}
	}
	out := RenderTuneSamples(res)
	if !strings.Contains(out, "binpacking") || !strings.Contains(out, "samples") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRenderAblationOutput(t *testing.T) {
	out := RenderAblation([]AblationResult{{
		Name: "x", K1: 5, KmeansSpeedup: 2, RandomSpeedup: 1.5, DegradationPct: 25,
	}})
	if !strings.Contains(out, "25.0%") {
		t.Fatalf("render:\n%s", out)
	}
}
