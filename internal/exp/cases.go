package exp

import (
	"inputtune/internal/autotuner"
	"inputtune/internal/benchmarks/binpack"
	"inputtune/internal/benchmarks/clustering"
	"inputtune/internal/benchmarks/helmholtz3d"
	"inputtune/internal/benchmarks/poisson2d"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/benchmarks/svd"
	"inputtune/internal/core"
	"inputtune/internal/engine"
)

// Scale sets the workload and training budget. The paper's scale (50-60k
// inputs, K1 = 100, hours of tuning) is reachable by raising these; the
// defaults reproduce the result shapes in seconds (see DESIGN.md
// substitution 5).
type Scale struct {
	TrainInputs int
	TestInputs  int
	K1          int
	TunerPop    int
	TunerGens   int
	Seed        uint64
	Parallel    bool
	// DisableCache turns off the engine's memoized measurement cache (the
	// A/B escape hatch; results are identical either way).
	DisableCache bool
	// TunerBudget caps tuner evaluations per landmark (0 = the
	// meta-tuner's self-tuned default).
	TunerBudget int
	// TunerMetaTrials sets the self-tuning portfolio length (0 = default).
	TunerMetaTrials int
	// FlatTuner reverts to the single-run flat GA — the A/B baseline the
	// bench-smoke CI job compares dependency-aware search against.
	FlatTuner bool
}

// measurementCache returns a fresh test-set measurement cache, or nil when
// the scale runs through the cache-disabled escape hatch.
func (sc Scale) measurementCache() *engine.Cache {
	if sc.DisableCache {
		return nil
	}
	return engine.NewCache(0)
}

// QuickScale is sized for CI: result shapes hold, absolute noise is higher.
func QuickScale() Scale {
	return Scale{TrainInputs: 90, TestInputs: 90, K1: 8, TunerPop: 10, TunerGens: 8, Seed: 42, Parallel: true}
}

// DefaultScale is the standard reproduction scale.
func DefaultScale() Scale {
	return Scale{TrainInputs: 240, TestInputs: 240, K1: 16, TunerPop: 16, TunerGens: 14, Seed: 42, Parallel: true}
}

// Case is one of the eight tests of Table 1.
type Case struct {
	// Name is the paper's test name (sort1, sort2, clustering1, ...).
	Name string
	// Prog is the benchmark program.
	Prog core.Program
	// Train and Test are the input sets.
	Train []core.Input
	// Test inputs are disjoint from training (different generator seeds).
	Test []core.Input
}

// CaseNames lists the eight tests in Table 1 order.
var CaseNames = []string{
	"sort1", "sort2", "clustering1", "clustering2",
	"binpacking", "svd", "poisson2d", "helmholtz3d",
}

// TunerProfile is a benchmark's evaluation-budget profile for the
// dependency-aware self-tuning search: how much of the flat GA's
// evaluation cost each landmark may spend, and how long the meta-loop's
// hyperparameter portfolio is. Profiles are per benchmark because the
// choice-space landscapes differ: smooth spaces (sorting cutoffs, solver
// selectors with dead iteration genes) converge in a fraction of the flat
// budget, while satisfaction-constrained spaces (clustering2) need a
// longer portfolio to keep specialist landmarks feasible.
type TunerProfile struct {
	// BudgetFrac multiplies autotuner.FlatCost(pop, gens) to give the
	// per-landmark evaluation cap. Always < 1: the dependency-aware
	// search must beat the flat GA on strictly fewer evaluations.
	BudgetFrac float64
	// MetaTrials is the portfolio length passed to autotuner.MetaTune.
	MetaTrials int
}

// tunerProfiles maps case name → profile. The fractions were chosen on
// the quick scale (see BENCH trajectory in README.md) and scale with the
// flat cost at other scales.
var tunerProfiles = map[string]TunerProfile{
	"sort1":       {BudgetFrac: 0.17, MetaTrials: 1},
	"sort2":       {BudgetFrac: 0.17, MetaTrials: 1},
	"clustering1": {BudgetFrac: 0.17, MetaTrials: 1},
	"clustering2": {BudgetFrac: 0.51, MetaTrials: 3},
	"binpacking":  {BudgetFrac: 0.345, MetaTrials: 1},
	"svd":         {BudgetFrac: 0.345, MetaTrials: 1},
	"poisson2d":   {BudgetFrac: 0.17, MetaTrials: 1},
	"helmholtz3d": {BudgetFrac: 0.17, MetaTrials: 1},
}

// Profile returns the named case's tuner profile (the zero value selects
// the meta-tuner's self-tuned defaults).
func Profile(name string) TunerProfile { return tunerProfiles[name] }

// resolveTuner returns the (budget, trials) pair for a case at a scale:
// explicit Scale overrides win, then the per-benchmark profile, then the
// meta-tuner defaults (0, 0). The flat tuner ignores both.
func resolveTuner(name string, sc Scale) (budget, trials int) {
	budget, trials = sc.TunerBudget, sc.TunerMetaTrials
	if sc.FlatTuner {
		return budget, trials
	}
	p := tunerProfiles[name]
	if budget == 0 && p.BudgetFrac > 0 {
		budget = int(p.BudgetFrac*float64(autotuner.FlatCost(sc.TunerPop, sc.TunerGens)) + 0.5)
	}
	if trials == 0 {
		trials = p.MetaTrials
	}
	return budget, trials
}

// BuildCase constructs one named case at the given scale.
func BuildCase(name string, sc Scale) Case {
	switch name {
	case "sort1":
		p := sortbench.New()
		return Case{
			Name: name, Prog: p,
			Train: sortInputs(sortbench.MixOptions{Count: sc.TrainInputs, Seed: sc.Seed, RealLike: true, MaxSize: 1024}),
			Test:  sortInputs(sortbench.MixOptions{Count: sc.TestInputs, Seed: sc.Seed + 10007, RealLike: true, MaxSize: 1024}),
		}
	case "sort2":
		p := sortbench.New()
		return Case{
			Name: name, Prog: p,
			Train: sortInputs(sortbench.MixOptions{Count: sc.TrainInputs, Seed: sc.Seed, MaxSize: 1024}),
			Test:  sortInputs(sortbench.MixOptions{Count: sc.TestInputs, Seed: sc.Seed + 10007, MaxSize: 1024}),
		}
	case "clustering1":
		p := clustering.New()
		return Case{
			Name: name, Prog: p,
			Train: clusterInputs(clustering.MixOptions{Count: sc.TrainInputs, Seed: sc.Seed, RealLike: true}),
			Test:  clusterInputs(clustering.MixOptions{Count: sc.TestInputs, Seed: sc.Seed + 10007, RealLike: true}),
		}
	case "clustering2":
		p := clustering.New()
		return Case{
			Name: name, Prog: p,
			Train: clusterInputs(clustering.MixOptions{Count: sc.TrainInputs, Seed: sc.Seed}),
			Test:  clusterInputs(clustering.MixOptions{Count: sc.TestInputs, Seed: sc.Seed + 10007}),
		}
	case "binpacking":
		p := binpack.New()
		return Case{
			Name: name, Prog: p,
			Train: packInputs(binpack.MixOptions{Count: sc.TrainInputs, Seed: sc.Seed}),
			Test:  packInputs(binpack.MixOptions{Count: sc.TestInputs, Seed: sc.Seed + 10007}),
		}
	case "svd":
		p := svd.New()
		return Case{
			Name: name, Prog: p,
			Train: svdInputs(svd.MixOptions{Count: sc.TrainInputs, Seed: sc.Seed}),
			Test:  svdInputs(svd.MixOptions{Count: sc.TestInputs, Seed: sc.Seed + 10007}),
		}
	case "poisson2d":
		p := poisson2d.New()
		n := sc.TrainInputs * 2 / 3 // PDE instances are pricier to measure
		return Case{
			Name: name, Prog: p,
			Train: poissonInputs(poisson2d.MixOptions{Count: n, Seed: sc.Seed}),
			Test:  poissonInputs(poisson2d.MixOptions{Count: n, Seed: sc.Seed + 10007}),
		}
	case "helmholtz3d":
		p := helmholtz3d.New()
		n := sc.TrainInputs / 2
		return Case{
			Name: name, Prog: p,
			Train: helmholtzInputs(helmholtz3d.MixOptions{Count: n, Seed: sc.Seed}),
			Test:  helmholtzInputs(helmholtz3d.MixOptions{Count: n, Seed: sc.Seed + 10007}),
		}
	default:
		panic("exp: unknown case " + name)
	}
}

// AllCases builds every Table 1 test.
func AllCases(sc Scale) []Case {
	out := make([]Case, len(CaseNames))
	for i, n := range CaseNames {
		out[i] = BuildCase(n, sc)
	}
	return out
}

func sortInputs(o sortbench.MixOptions) []core.Input {
	lists := sortbench.GenerateMix(o)
	out := make([]core.Input, len(lists))
	for i, l := range lists {
		out[i] = l
	}
	return out
}

func clusterInputs(o clustering.MixOptions) []core.Input {
	pts := clustering.GenerateMix(o)
	out := make([]core.Input, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out
}

func packInputs(o binpack.MixOptions) []core.Input {
	items := binpack.GenerateMix(o)
	out := make([]core.Input, len(items))
	for i, it := range items {
		out[i] = it
	}
	return out
}

func svdInputs(o svd.MixOptions) []core.Input {
	ms := svd.GenerateMix(o)
	out := make([]core.Input, len(ms))
	for i, m := range ms {
		out[i] = m
	}
	return out
}

func poissonInputs(o poisson2d.MixOptions) []core.Input {
	ps := poisson2d.GenerateMix(o)
	out := make([]core.Input, len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}

func helmholtzInputs(o helmholtz3d.MixOptions) []core.Input {
	ps := helmholtz3d.GenerateMix(o)
	out := make([]core.Input, len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}
