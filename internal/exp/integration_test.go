package exp

import (
	"fmt"
	"testing"
)

// TestAllCasesDefaultScale runs the full Table 1 pipeline — all eight
// tests at the default reproduction scale (~2 minutes) — and asserts the
// paper's qualitative results. Skipped under -short.
func TestAllCasesDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale integration run; use -short to skip")
	}
	sc := DefaultScale()
	var rows []*Table1Row
	for _, name := range CaseNames {
		row := RunCase(BuildCase(name, sc), sc, nil)
		rows = append(rows, row)
		fmt.Printf("%-12s prod=%-42s relabel=%.0f%% twoSat=%.1f%% statSat=%.1f%%\n",
			name, row.Report.Production, 100*row.Report.RelabelFraction,
			100*row.TwoLevelAccuracy, 100*row.StaticAccuracy)
	}
	fmt.Println(RenderTable1(rows))

	adaptiveWins := 0
	oneLevelAccMisses := 0
	for _, r := range rows {
		// The dynamic oracle bounds the two-level method (tolerance for
		// satisfaction-constrained programs, where the oracle is held to
		// the accuracy bar but a classifier may skirt it on a few inputs).
		if r.TwoLevelNoFX > r.DynamicOracle*1.10 {
			t.Errorf("%s: two-level %.2fx above dynamic oracle %.2fx", r.Name, r.TwoLevelNoFX, r.DynamicOracle)
		}
		// Two-level never loses meaningfully to the static oracle (the
		// paper's minimum is 1.04x; ours has a static-oracle fallback
		// candidate, so only feature cost can pull it below 1.0).
		if r.TwoLevelFX < 0.95 {
			t.Errorf("%s: two-level w/ features %.2fx lost to the static oracle", r.Name, r.TwoLevelFX)
		}
		// Feature extraction must cost the one-level method (all features,
		// all levels) at least as much as the two-level method.
		oneGap := r.OneLevelNoFX - r.OneLevelFX
		twoGap := r.TwoLevelNoFX - r.TwoLevelFX
		if oneGap < twoGap-0.02 {
			t.Errorf("%s: one-level fx overhead (%.3f) below two-level (%.3f)", r.Name, oneGap, twoGap)
		}
		// Two-level satisfaction stays near the H2 bar.
		if r.TwoLevelAccuracy < 0.90 {
			t.Errorf("%s: two-level satisfaction %.1f%% collapsed", r.Name, 100*r.TwoLevelAccuracy)
		}
		if r.TwoLevelFX > 1.15 {
			adaptiveWins++
		}
		if r.OneLevelAccuracy < 0.90 {
			oneLevelAccMisses++
		}
	}
	// The headline: input adaptation wins clearly on several benchmarks...
	if adaptiveWins < 3 {
		t.Errorf("only %d benchmarks show a clear two-level win; expected at least 3", adaptiveWins)
	}
	// ...and the one-level method misses the accuracy bar on several
	// (the paper's rightmost Table 1 column).
	if oneLevelAccMisses < 2 {
		t.Errorf("one-level method missed accuracy on only %d benchmarks; expected at least 2", oneLevelAccMisses)
	}
}
