package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"inputtune/internal/serve"
)

// TestRunServeBenchSmoke drives the full serving stack at a tiny scale:
// train, serve over loopback HTTP, hammer with concurrent clients, hot
// reload mid-run. Zero failed requests is the acceptance invariant — a
// failure here means a served label diverged from the offline
// classification or a reload dropped traffic.
func TestRunServeBenchSmoke(t *testing.T) {
	sc := tinyScale()
	rep, err := RunServeBench(ServeBenchOptions{
		Cases:    []string{"sort2"},
		Clients:  4,
		Requests: 80,
		Reloads:  2,
		Scale:    sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The default wire set is the JSON-vs-binary A/B: one arm per format.
	if len(rep.Results) != 2 {
		t.Fatalf("expected 2 results (json + binary arms), got %d", len(rep.Results))
	}
	wires := map[string]bool{}
	for _, res := range rep.Results {
		wires[res.Wire] = true
		if res.FailedRequests != 0 {
			t.Fatalf("%s arm: %d failed requests under hot reload", res.Wire, res.FailedRequests)
		}
		if res.Requests != 80 || res.Reloads != 2 {
			t.Fatalf("result shape off: %+v", res)
		}
		if res.GenerationEnd < 3 { // initial load + 2 reloads
			t.Fatalf("%s arm: generation %d after 2 reloads", res.Wire, res.GenerationEnd)
		}
		if res.ThroughputRPS <= 0 || res.P50Micros <= 0 || res.P99Micros < res.P50Micros {
			t.Fatalf("latency/throughput malformed: %+v", res)
		}
		if res.AllocsPerRequest <= 0 || res.RequestBytes <= 0 {
			t.Fatalf("wire-cost metrics missing: %+v", res)
		}
	}
	if !wires["json"] || !wires["binary"] {
		t.Fatalf("arms ran %v, want both json and binary", wires)
	}
	if out := RenderServeBench(rep); out == "" {
		t.Fatal("empty render")
	}
}

// TestServeBenchCacheOnOffLabelsIdentical runs the A/B arms and checks
// both serve every request correctly (failed counts stay zero), proving
// the decision cache changes no answers over the real wire path.
func TestServeBenchCacheOnOffLabelsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full serve-bench arms")
	}
	sc := tinyScale()
	for _, disable := range []bool{false, true} {
		rep, err := RunServeBench(ServeBenchOptions{
			Cases: []string{"sort2"}, Wires: []serve.Wire{serve.WireJSON},
			Clients: 2, Requests: 64, Reloads: 1,
			DisableDecisionCache: disable, Scale: sc,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Results[0].FailedRequests; got != 0 {
			t.Fatalf("cacheDisabled=%v: %d failed requests", disable, got)
		}
		hits := rep.Results[0].CacheHits
		if disable && hits != 0 {
			t.Fatalf("disabled cache recorded %d hits", hits)
		}
	}
}

// TestRunServeBenchNoReloadBaseline checks that -reloads 0 really means
// zero: no reload fires and the generation stays at the initial load.
func TestRunServeBenchNoReloadBaseline(t *testing.T) {
	rep, err := RunServeBench(ServeBenchOptions{
		Cases: []string{"sort2"}, Wires: []serve.Wire{serve.WireBinary},
		Clients: 2, Requests: 16, Reloads: 0,
		Scale: tinyScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Reloads != 0 || res.GenerationEnd != 1 {
		t.Fatalf("no-reload baseline fired reloads: %+v", res)
	}
	if res.FailedRequests != 0 {
		t.Fatalf("%d failed requests", res.FailedRequests)
	}
}

func TestMergeServeIntoBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")

	// Merge into a fresh file.
	sb := ServeBenchReport{Clients: 2, Requests: 10,
		Results: []ServeCaseResult{{Case: "sort2", Benchmark: "sort", Requests: 10}}}
	if err := MergeServeIntoBench(path, sb); err != nil {
		t.Fatal(err)
	}
	// Merge must preserve existing training-side results.
	existing := BenchReport{Scale: "quick", Seed: 42,
		Results: []BenchResult{{Benchmark: "sort1", WallSeconds: 1}}}
	data, _ := json.Marshal(existing)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeServeIntoBench(path, sb); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var merged BenchReport
	if err := json.Unmarshal(out, &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Scale != "quick" || len(merged.Results) != 1 || merged.Results[0].Benchmark != "sort1" {
		t.Fatalf("merge clobbered training results: %+v", merged)
	}
	if merged.Serve == nil || merged.Serve.Clients != 2 || len(merged.Serve.Results) != 1 {
		t.Fatalf("merge lost serve section: %+v", merged.Serve)
	}

	// A non-bench file must be rejected, not overwritten.
	badPath := filepath.Join(dir, "notbench.json")
	os.WriteFile(badPath, []byte("[1,2,3]"), 0o644)
	if err := MergeServeIntoBench(badPath, sb); err == nil {
		t.Fatal("merged into a non-bench file")
	}
}
