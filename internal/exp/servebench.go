package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inputtune/internal/core"
	"inputtune/internal/obs"
	"inputtune/internal/serve"
)

// ServeBenchOptions sizes the serving load benchmark.
type ServeBenchOptions struct {
	// Cases are the Table-1 case names to serve. The default — sort2,
	// clustering2, binpacking — covers the two largest-input workloads
	// (where wire-format cost shows) plus a variable-accuracy one.
	Cases []string
	// Wires are the wire formats to run, one load arm per format against
	// its own server instance (default: JSON then binary — the A/B).
	Wires []serve.Wire
	// Clients is the number of concurrent load-generator clients
	// (default 8).
	Clients int
	// Requests is the total request budget per case and wire, split over
	// the clients (default 2000).
	Requests int
	// Reloads is how many hot reloads are fired while traffic runs,
	// spaced evenly through the request budget; all must succeed with
	// zero failed requests. Zero means none (the no-reload baseline); the
	// CLI default is 2.
	Reloads int
	// DisableDecisionCache runs the server with the decision cache off —
	// the A/B arm; labels are identical either way.
	DisableDecisionCache bool
	// TraceArm adds one extra binary-wire arm with every request traced
	// (obs sample 1-in-1), so the trajectory records tracing's overhead
	// delta against the untraced binary arm directly.
	TraceArm bool
	// Scale sets the training budget for the served models.
	Scale Scale
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *ServeBenchOptions) setDefaults() {
	if len(o.Cases) == 0 {
		o.Cases = []string{"sort2", "clustering2", "binpacking"}
	}
	if len(o.Wires) == 0 {
		o.Wires = []serve.Wire{serve.WireJSON, serve.WireBinary}
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Requests <= 0 {
		o.Requests = 2000
	}
	if o.Reloads < 0 {
		o.Reloads = 0
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// ServeCaseResult is one benchmark's serving performance under load over
// one wire format.
type ServeCaseResult struct {
	Case      string `json:"case"`
	Benchmark string `json:"benchmark"`
	// Wire is the format this arm ran ("json" or "binary") — the binary
	// arm sends binary request frames AND negotiates ITD1 binary
	// responses, so it measures the full binary round trip.
	Wire string `json:"wire"`
	// Traced marks the trace-overhead arm: same binary round trip, every
	// request traced end to end. TraceOverheadPct is its throughput loss
	// versus the untraced binary arm (negative = noise in its favor).
	Traced           bool    `json:"traced,omitempty"`
	TraceOverheadPct float64 `json:"trace_overhead_pct,omitempty"`
	// Requests actually issued; FailedRequests MUST be zero (non-200, a
	// transport error, or a label differing from the offline
	// classification all count as failures).
	Requests       int `json:"requests"`
	FailedRequests int `json:"failed_requests"`
	// Reloads fired mid-run; GenerationEnd is the registry generation
	// after the last one.
	Reloads       int    `json:"reloads"`
	GenerationEnd uint64 `json:"generation_end"`

	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Micros     float64 `json:"latency_p50_us"`
	P90Micros     float64 `json:"latency_p90_us"`
	P99Micros     float64 `json:"latency_p99_us"`
	MeanMicros    float64 `json:"latency_mean_us"`

	// AllocsPerRequest is the process-wide heap-allocation count per
	// request over the measured run (server plus loopback client; the
	// client-side bookkeeping is identical across wire arms, so the
	// JSON-vs-binary delta is the wire stack's own).
	AllocsPerRequest float64 `json:"allocs_per_request"`
	// RequestBytes is the median request-body size over the test inputs —
	// the wire-efficiency companion to AllocsPerRequest.
	RequestBytes int `json:"request_bytes"`

	CacheHits    uint64  `json:"decision_cache_hits"`
	CacheMisses  uint64  `json:"decision_cache_misses"`
	CacheHitRate float64 `json:"decision_cache_hit_rate"`
}

// ServeBenchReport is the "serve" section of the BENCH trajectory file.
type ServeBenchReport struct {
	Clients       int  `json:"clients"`
	Requests      int  `json:"requests_per_case"`
	DecisionCache bool `json:"decision_cache"`
	// SingleCore + Note: the shared GOMAXPROCS=1 caveat (see caveat.go) —
	// throughput here then measures one core serving and generating load.
	SingleCore bool              `json:"single_core,omitempty"`
	Note       string            `json:"note,omitempty"`
	Results    []ServeCaseResult `json:"results"`
}

// RunServeBench trains a model per case, serves it over a real loopback
// HTTP server through the full serve stack (codec decode, registry,
// decision cache, metrics), and drives it with concurrent clients while
// firing hot reloads — one arm per wire format, so the trajectory file
// carries the JSON-vs-binary A/B directly.
func RunServeBench(opts ServeBenchOptions) (ServeBenchReport, error) {
	opts.setDefaults()
	rep := ServeBenchReport{
		Clients:       opts.Clients,
		Requests:      opts.Requests,
		DecisionCache: !opts.DisableDecisionCache,
	}
	rep.SingleCore, rep.Note = singleCoreCaveat(
		"GOMAXPROCS=1: server and load generator share one core, so throughput measures the combined stack, not serving alone")
	for _, name := range opts.Cases {
		results, err := runServeCase(name, opts)
		if err != nil {
			return rep, fmt.Errorf("serve-bench %s: %w", name, err)
		}
		rep.Results = append(rep.Results, results...)
	}
	return rep, nil
}

// servedCase is the per-case state shared by every wire arm: the trained
// model artifact and the precomputed offline ground truth.
type servedCase struct {
	c        Case
	artifact []byte
	want     []int
}

// newServedCase trains one Table-1 case's model, serialises it to the
// artifact every replica loads, and precomputes the offline ground-truth
// labels every serving arm (serve-bench wires, cluster-bench fleets) is
// checked against.
func newServedCase(tag, name string, sc Scale, logf func(string, ...any)) (*servedCase, error) {
	c := BuildCase(name, sc)
	logf("[%s %s] training model (%d inputs, K1=%d)", tag, name, len(c.Train), sc.K1)
	model := core.TrainModel(c.Prog, c.Train, core.Options{
		K1: sc.K1, Seed: sc.Seed, TunerPopulation: sc.TunerPop,
		TunerGenerations: sc.TunerGens, H2: h2, Parallel: sc.Parallel,
		DisableCache: sc.DisableCache,
	})
	var artifact bytes.Buffer
	if err := core.SaveModel(model, &artifact); err != nil {
		return nil, err
	}
	set := c.Prog.Features()
	want := make([]int, len(c.Test))
	for i, in := range c.Test {
		want[i] = model.Production.ClassifyInput(set, in, nil)
	}
	return &servedCase{c: c, artifact: artifact.Bytes(), want: want}, nil
}

func runServeCase(name string, opts ServeBenchOptions) ([]ServeCaseResult, error) {
	logf := opts.Logf
	scase, err := newServedCase("serve-bench", name, opts.Scale, logf)
	if err != nil {
		return nil, err
	}

	var results []ServeCaseResult
	for _, wire := range opts.Wires {
		res, err := runServeArm(name, scase, wire, false, opts)
		if err != nil {
			return nil, fmt.Errorf("%s wire: %w", wire, err)
		}
		results = append(results, res)
	}
	if opts.TraceArm {
		res, err := runServeArm(name, scase, serve.WireBinary, true, opts)
		if err != nil {
			return nil, fmt.Errorf("traced binary wire: %w", err)
		}
		// The overhead headline compares like with like: the untraced
		// binary arm from this same run.
		for _, base := range results {
			if base.Wire == serve.WireBinary.String() && !base.Traced && base.ThroughputRPS > 0 {
				res.TraceOverheadPct = 100 * (base.ThroughputRPS - res.ThroughputRPS) / base.ThroughputRPS
			}
		}
		results = append(results, res)
	}
	return results, nil
}

// encodeBodies renders every test input as one request body in the given
// wire format, plus the matching Content-Type.
func encodeBodies(sc *servedCase, wire serve.Wire) (bodies [][]byte, contentType string, err error) {
	codec, err := serve.LookupCodec(sc.c.Prog.Name())
	if err != nil {
		return nil, "", err
	}
	bodies = make([][]byte, len(sc.c.Test))
	for i, in := range sc.c.Test {
		var buf bytes.Buffer
		switch wire {
		case serve.WireJSON:
			raw, err := codec.EncodeJSON(in)
			if err != nil {
				return nil, "", err
			}
			bodies[i], err = json.Marshal(struct {
				Benchmark string          `json:"benchmark"`
				Input     json.RawMessage `json:"input"`
			}{sc.c.Prog.Name(), raw})
			if err != nil {
				return nil, "", err
			}
		case serve.WireBinary:
			if err := codec.Encode(serve.WireBinary, &buf, in); err != nil {
				return nil, "", err
			}
			bodies[i] = buf.Bytes()
		}
	}
	return bodies, wire.ContentType(), nil
}

// runServeArm serves one case over one wire format with a fresh service,
// so cache statistics, metrics and pool warmup never leak across arms.
// Every arm runs with a tracer installed — untraced arms at sample 0, so
// allocs_per_request measures the disabled-sampling fast path the
// zero-allocation guarantee covers, not a tracer-free build; the traced
// arm samples every request.
func runServeArm(name string, sc *servedCase, wire serve.Wire, traced bool, opts ServeBenchOptions) (ServeCaseResult, error) {
	logf := opts.Logf
	bodies, contentType, err := encodeBodies(sc, wire)
	if err != nil {
		return ServeCaseResult{}, err
	}

	reg := serve.NewRegistry()
	if err := reg.Register(sc.c.Prog); err != nil {
		return ServeCaseResult{}, err
	}
	sampleEvery := 0
	if traced {
		sampleEvery = 1
	}
	svc := serve.NewService(reg, serve.Options{
		Cache:  serve.CacheOptions{Disable: opts.DisableDecisionCache},
		Tracer: obs.New(obs.Options{SampleEvery: sampleEvery}),
	})
	defer svc.Close()
	if _, err := svc.Load(sc.artifact); err != nil {
		return ServeCaseResult{}, err
	}
	srv := httptest.NewServer(serve.NewHandler(svc))
	defer srv.Close()
	client := srv.Client()
	client.Timeout = 60 * time.Second

	perClient := opts.Requests / opts.Clients
	if perClient < 1 {
		perClient = 1
	}
	total := perClient * opts.Clients
	armLabel := wire.String()
	if traced {
		armLabel += "+traced"
	}
	logf("[serve-bench %s/%s] %d clients x %d requests, %d hot reloads mid-run",
		name, armLabel, opts.Clients, perClient, opts.Reloads)

	latencies := make([][]time.Duration, opts.Clients)
	var failed atomic.Uint64
	var issued atomic.Uint64
	var completed atomic.Uint64 // every attempt, success or not
	var wg sync.WaitGroup
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for g := 0; g < opts.Clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, perClient)
			for r := 0; r < perClient; r++ {
				i := (g*perClient + r) % len(bodies)
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/classify", bytes.NewReader(bodies[i]))
				if err != nil {
					failed.Add(1)
					completed.Add(1)
					continue
				}
				req.Header.Set("Content-Type", contentType)
				if wire == serve.WireBinary {
					// The binary arm measures the full binary round trip:
					// negotiate the ITD1 response frame too.
					req.Header.Set("Accept", serve.ContentTypeBinary)
				}
				resp, err := client.Do(req)
				if err != nil {
					failed.Add(1)
					completed.Add(1)
					continue
				}
				var d serve.Decision
				if resp.Header.Get("Content-Type") == serve.ContentTypeBinary {
					var bd *serve.Decision
					if bd, err = serve.DecodeBinaryDecision(resp.Body); err == nil {
						d = *bd
					}
				} else {
					err = json.NewDecoder(resp.Body).Decode(&d)
				}
				resp.Body.Close()
				lat = append(lat, time.Since(t0))
				issued.Add(1)
				completed.Add(1)
				if err != nil || resp.StatusCode != http.StatusOK || d.Landmark != sc.want[i] {
					failed.Add(1)
				}
			}
			latencies[g] = lat
		}(g)
	}
	// Hot reloads spaced evenly through the request budget (reload r fires
	// once (r+1)/(Reloads+1) of the traffic has completed, so the swap
	// lands on warm-cache steady-state traffic, not the cold start). Each
	// must succeed, and — the acceptance criterion — cost zero failed
	// requests.
	reloadsDone := 0
	for r := 0; r < opts.Reloads; r++ {
		target := uint64((r + 1) * total / (opts.Reloads + 1))
		for completed.Load() < target {
			time.Sleep(500 * time.Microsecond)
		}
		resp, err := client.Post(srv.URL+"/v1/reload", "application/json", bytes.NewReader(sc.artifact))
		if err != nil {
			return ServeCaseResult{}, fmt.Errorf("hot reload %d: %w", r, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return ServeCaseResult{}, fmt.Errorf("hot reload %d: status %d", r, resp.StatusCode)
		}
		reloadsDone++
	}
	wg.Wait()
	wall := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	var all []time.Duration
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1e3
	}
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	mean := 0.0
	if len(all) > 0 {
		mean = float64(sum.Nanoseconds()) / 1e3 / float64(len(all))
	}
	cs := svc.CacheStats()
	snap, _ := reg.Get(sc.c.Prog.Name())
	res := ServeCaseResult{
		Case:             name,
		Benchmark:        sc.c.Prog.Name(),
		Wire:             wire.String(),
		Traced:           traced,
		Requests:         total,
		FailedRequests:   int(failed.Load()),
		Reloads:          reloadsDone,
		GenerationEnd:    snap.Generation,
		WallSeconds:      wall.Seconds(),
		ThroughputRPS:    float64(issued.Load()) / wall.Seconds(),
		P50Micros:        q(0.50),
		P90Micros:        q(0.90),
		P99Micros:        q(0.99),
		MeanMicros:       mean,
		AllocsPerRequest: float64(m1.Mallocs-m0.Mallocs) / float64(total),
		RequestBytes:     medianLen(bodies),
		CacheHits:        cs.Hits,
		CacheMisses:      cs.Misses,
		CacheHitRate:     cs.HitRate(),
	}
	logf("[serve-bench %s/%s] %.0f req/s, p50 %.0fµs p99 %.0fµs, %.0f allocs/req, %d failed, cache hit %.1f%%",
		name, armLabel, res.ThroughputRPS, res.P50Micros, res.P99Micros,
		res.AllocsPerRequest, res.FailedRequests, 100*res.CacheHitRate)
	return res, nil
}

// medianLen returns the median byte length across request bodies.
func medianLen(bodies [][]byte) int {
	if len(bodies) == 0 {
		return 0
	}
	lens := make([]int, len(bodies))
	for i, b := range bodies {
		lens[i] = len(b)
	}
	sort.Ints(lens)
	return lens[len(lens)/2]
}

// RenderServeBench formats the report as a human-readable table.
func RenderServeBench(r ServeBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve-bench: %d clients, %d requests/case/wire, decision cache %v\n",
		r.Clients, r.Requests, r.DecisionCache)
	fmt.Fprintf(&b, "%-12s %-9s %8s %10s %9s %9s %9s %10s %7s %8s %9s\n",
		"Case", "wire", "req", "thru(r/s)", "p50(µs)", "p90(µs)", "p99(µs)", "allocs/req", "failed", "reloads", "cacheHit%")
	fmt.Fprintln(&b, strings.Repeat("-", 110))
	for _, res := range r.Results {
		wireLabel := res.Wire
		if res.Traced {
			wireLabel += "+tr"
		}
		fmt.Fprintf(&b, "%-12s %-9s %8d %10.0f %9.0f %9.0f %9.0f %10.0f %7d %8d %8.1f%%\n",
			res.Case, wireLabel, res.Requests, res.ThroughputRPS, res.P50Micros, res.P90Micros,
			res.P99Micros, res.AllocsPerRequest, res.FailedRequests, res.Reloads, 100*res.CacheHitRate)
		if res.Traced && res.TraceOverheadPct != 0 {
			fmt.Fprintf(&b, "%-12s %-9s trace overhead vs untraced binary: %+.1f%%\n", "", "", res.TraceOverheadPct)
		}
	}
	return b.String()
}

// MergeServeIntoBench folds a serve-bench report into the BENCH
// trajectory file at path: if the file exists its training-side results
// are kept and only the "serve" section is replaced; otherwise a minimal
// report holding just the serve section is written.
func MergeServeIntoBench(path string, sb ServeBenchReport) error {
	var rep BenchReport
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("existing %s is not a bench report: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	rep.Serve = &sb
	data, err := rep.BenchJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
