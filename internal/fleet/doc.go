// Package fleet is the multi-replica serving tier: N inputtuned replicas
// (in-process serve.Service instances or remote processes reached over
// HTTP) fronted by a router that speaks the binary wire.
//
// The router consistent-hash routes on the quantized fingerprint of the
// request frame (serve.InspectBinaryFrame) — the same quantization the
// decision cache keys on — so near-duplicate inputs land on the replica
// whose cache is already warm. Replicas are health-checked over the ITH1
// binary frame, ejected from the ring after consecutive failures and
// readmitted when they recover; requests retry across ring successors so
// a replica dying mid-run costs retries, not failed requests. Rolling
// hot reload walks the fleet one replica at a time, tracking
// per-benchmark generation skew; graceful drain finishes in-flight
// requests before shutdown. Per-replica metrics roll up into one
// fleet-level /metrics surface.
package fleet
