package fleet

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVnodes is the per-member virtual-node count. 128 points per
// member keeps the largest/smallest ownership ratio within ~±20% for
// small fleets (ring_test.go pins the exact tolerance) while a full
// rebuild stays microseconds.
const DefaultVnodes = 128

// Ring is a consistent-hash ring with virtual nodes. Each member owns
// the arc preceding each of its points; a key hashes to a position and
// is owned by the next point clockwise. Removing a member hands its arcs
// to the respective successors and moves no other key — the
// minimal-disruption property the fleet leans on when a replica is
// ejected.
//
// Ring is not goroutine-safe; the router guards it with its own mutex.
type Ring struct {
	vnodes  int
	members map[string]bool
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds an empty ring; vnodes <= 0 selects DefaultVnodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// fnv1a64 is the ring's point/key hash.
func fnv1a64(s string) uint64 {
	const offset64, prime64 = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer. Ring points come from FNV over
// short, near-identical strings ("replica-3#17"), whose low avalanche
// leaves visible arc-length clumping at small fleets; the finalizer
// spreads the points uniformly (ring_test.go pins the tolerance).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:   mix64(fnv1a64(member + "#" + strconv.Itoa(i))),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties break on the member name so ownership is independent
		// of insertion order.
		return r.points[i].member < r.points[j].member
	})
}

// Remove deletes a member (idempotent). Keys the member owned move to
// their arc successors; every other key keeps its owner.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the member owning key, or "" on an empty ring.
func (r *Ring) Lookup(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last hash
	}
	return r.points[i].member
}

// Successors returns up to n distinct members in ring order starting at
// key's owner — the request's preference list: the owner first, then the
// members that would inherit its keys, so a retry after a failure lands
// where the key would hash next anyway.
func (r *Ring) Successors(key uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// String renders a compact summary for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members, %d points)", len(r.members), len(r.points))
}
