package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"inputtune/internal/feature"
	"inputtune/internal/obs"
	"inputtune/internal/serve"
)

// NewHandler builds the fleet's front API — the same surface one
// inputtuned replica exposes, served by the router:
//
//	POST /v1/classify  binary frames route directly; JSON envelopes are
//	                   normalized to a frame through the codec first, so
//	                   both wires shard identically
//	POST /v1/reload    rolling reload across the fleet → Rollout record
//	GET  /metrics      fleet roll-up (Prometheus; ?format=json for JSON)
//	GET  /healthz      200 while ≥1 replica is in the ring, else 503
//
// Responses negotiate like a single replica's: Accept:
// application/x-inputtune yields ITD1 decisions.
func NewHandler(rt *Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		// The router-side trace starts (or joins, via X-Inputtune-Trace)
		// at the fleet's front edge; RouteTraced stamps the same ID into
		// the forwarded frame so replica-side spans merge under it.
		t := startRouterTrace(rt, r)
		if t != nil {
			defer rt.opts.Tracer.Finish(t)
		}
		// Bodies land in pooled byte blocks: the binary frame is routed
		// (fingerprinted in place) and released; the JSON envelope lives
		// only until it is normalized to a frame.
		body, err := readBody(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
			return
		}
		defer feature.PutBytes(body)
		var frame []byte
		switch mediaType(r.Header.Get("Content-Type")) {
		case serve.ContentTypeBinary:
			frame = body
		default:
			// Normalize the JSON envelope to a binary frame: the router
			// fingerprints frames, and both wires must shard identically or
			// a client's format choice would change which cache it warms.
			var req struct {
				Benchmark string          `json:"benchmark"`
				Input     json.RawMessage `json:"input"`
			}
			if err := json.Unmarshal(body, &req); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
				return
			}
			if req.Benchmark == "" || len(req.Input) == 0 {
				writeError(w, http.StatusBadRequest, errors.New("request needs \"benchmark\" and \"input\""))
				return
			}
			c, err := serve.LookupCodec(req.Benchmark)
			if err != nil {
				writeError(w, http.StatusNotFound, err)
				return
			}
			in, err := c.DecodeJSON(req.Input)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decoding %s input: %w", req.Benchmark, err))
				return
			}
			var buf bytes.Buffer
			err = serve.EncodeBinaryRequest(&buf, req.Benchmark, in)
			c.Release(in)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			frame = buf.Bytes()
		}
		d, err := rt.RouteTraced(frame, t)
		if err != nil {
			status := http.StatusServiceUnavailable
			var reqErr *serve.RequestError
			if errors.As(err, &reqErr) {
				status = http.StatusBadRequest
			}
			t.SetError(err)
			writeError(w, status, err)
			return
		}
		if mediaType(r.Header.Get("Accept")) == serve.ContentTypeBinary {
			w.Header().Set("Content-Type", serve.ContentTypeBinary)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(serve.AppendBinaryDecision(nil, d))
			return
		}
		writeJSON(w, http.StatusOK, d)
	})
	mux.HandleFunc("POST /v1/reload", func(w http.ResponseWriter, r *http.Request) {
		artifact, err := io.ReadAll(io.LimitReader(r.Body, serve.MaxRequestBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading artifact: %w", err))
			return
		}
		ro, err := rt.RollingReload(artifact)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, ro)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := rt.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			writeJSON(w, http.StatusOK, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, snap.RenderPrometheus())
	})
	if tr := rt.opts.Tracer; tr != nil {
		mux.Handle("GET /debug/traces", obs.Handler(tr))
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		healthy := rt.HealthyReplicas()
		status := http.StatusOK
		st := "ok"
		if rt.Draining() {
			status, st = http.StatusServiceUnavailable, "draining"
		} else if len(healthy) == 0 {
			status, st = http.StatusServiceUnavailable, "no healthy replicas"
		}
		writeJSON(w, status, map[string]any{
			"status":           st,
			"replicas":         rt.Replicas(),
			"healthy_replicas": healthy,
		})
	})
	return mux
}

// startRouterTrace makes the fleet-edge sampling decision: a request
// carrying a valid X-Inputtune-Trace header joins that trace, anything
// else head-samples. Returns nil — at zero allocation — when tracing is
// off or unsampled.
func startRouterTrace(rt *Router, r *http.Request) *obs.Trace {
	tr := rt.opts.Tracer
	if tr == nil {
		return nil
	}
	if h := r.Header.Get(obs.TraceHeader); h != "" {
		if id, ok := obs.ParseID(h); ok {
			return tr.Join("router", id)
		}
	}
	return tr.Start("router")
}

// readBody reads the whole request body (bounded by MaxRequestBytes) into
// a pooled byte block; the caller must feature.PutBytes it when done.
func readBody(r io.Reader) ([]byte, error) {
	r = io.LimitReader(r, serve.MaxRequestBytes)
	buf := feature.GetBytes(32 << 10)
	for {
		if len(buf) == cap(buf) {
			next := feature.GetBytes(2 * cap(buf))
			next = append(next, buf...)
			feature.PutBytes(buf)
			buf = next
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			feature.PutBytes(buf)
			return nil, err
		}
	}
}

func mediaType(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.ToLower(strings.TrimSpace(ct))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error": "encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
	_, _ = w.Write([]byte{'\n'})
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
