package fleet

import (
	"fmt"
	"testing"
)

// ringKeys returns a deterministic pseudo-random key set (hashes of a
// counter — exactly how real routing keys are produced).
func ringKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = fnv1a64(fmt.Sprintf("key-%d", i))
	}
	return keys
}

// TestRingDistribution pins the load-balance tolerance: with the default
// vnode count, every member's key share stays within a constant factor
// of the fair 1/N share for the fleet sizes the cluster-bench grid runs.
func TestRingDistribution(t *testing.T) {
	const numKeys = 100000
	keys := ringKeys(numKeys)
	for _, n := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("replicas=%d", n), func(t *testing.T) {
			r := NewRing(0)
			for i := 0; i < n; i++ {
				r.Add(fmt.Sprintf("replica-%d", i))
			}
			counts := make(map[string]int, n)
			for _, k := range keys {
				counts[r.Lookup(k)]++
			}
			if len(counts) != n {
				t.Fatalf("keys landed on %d members, want %d", len(counts), n)
			}
			fair := float64(numKeys) / float64(n)
			for member, c := range counts {
				share := float64(c) / fair
				if share < 0.55 || share > 1.55 {
					t.Errorf("member %s owns %d keys (%.2f× fair share), outside [0.55, 1.55]",
						member, c, share)
				}
			}
		})
	}
}

// TestRingMinimalDisruption verifies the property the router's ejection
// path depends on: removing one member remaps ONLY the keys that member
// owned (every other key keeps its owner — exact, not approximate), and
// the moved fraction is the removed member's ~1/N share.
func TestRingMinimalDisruption(t *testing.T) {
	const numKeys = 100000
	keys := ringKeys(numKeys)
	for _, n := range []int{2, 4, 8} {
		for victim := 0; victim < n; victim++ {
			t.Run(fmt.Sprintf("replicas=%d/remove=%d", n, victim), func(t *testing.T) {
				r := NewRing(0)
				for i := 0; i < n; i++ {
					r.Add(fmt.Sprintf("replica-%d", i))
				}
				before := make([]string, len(keys))
				for i, k := range keys {
					before[i] = r.Lookup(k)
				}
				removed := fmt.Sprintf("replica-%d", victim)
				r.Remove(removed)
				moved := 0
				for i, k := range keys {
					after := r.Lookup(k)
					if after == removed {
						t.Fatalf("key %d still routes to removed member", i)
					}
					if before[i] != after {
						if before[i] != removed {
							t.Fatalf("key %d moved %s→%s though %s was removed",
								i, before[i], after, removed)
						}
						moved++
					}
				}
				movedShare := float64(moved) * float64(n) / float64(numKeys)
				if movedShare < 0.55 || movedShare > 1.55 {
					t.Errorf("removing 1 of %d members moved %d keys (%.2f× the 1/N share)",
						n, moved, movedShare)
				}
			})
		}
	}
}

// TestRingAddReadmission verifies re-adding a member restores exactly
// its prior ownership (points are name-derived, so membership is a set,
// not a history).
func TestRingAddReadmission(t *testing.T) {
	keys := ringKeys(10000)
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r.Lookup(k)
	}
	r.Remove("replica-2")
	r.Add("replica-2")
	for i, k := range keys {
		if got := r.Lookup(k); got != before[i] {
			t.Fatalf("key %d: owner %s after remove+readd, want %s", i, got, before[i])
		}
	}
}

// TestRingSuccessors pins the retry preference list: it starts at the
// key's owner, holds distinct members, and is capped by the member count.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	for _, k := range ringKeys(1000) {
		succ := r.Successors(k, 4)
		if len(succ) != 4 {
			t.Fatalf("got %d successors, want 4", len(succ))
		}
		if succ[0] != r.Lookup(k) {
			t.Fatalf("successor list starts at %s, Lookup gives %s", succ[0], r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("duplicate member %s in successor list", m)
			}
			seen[m] = true
		}
	}
	if got := r.Successors(42, 10); len(got) != 4 {
		t.Fatalf("asking for 10 successors of a 4-member ring gave %d", len(got))
	}
	if got := r.Successors(42, 0); got != nil {
		t.Fatalf("asking for 0 successors gave %v", got)
	}
	empty := NewRing(0)
	if got := empty.Lookup(42); got != "" {
		t.Fatalf("empty ring Lookup gave %q", got)
	}
	if got := empty.Successors(42, 3); got != nil {
		t.Fatalf("empty ring Successors gave %v", got)
	}
}
