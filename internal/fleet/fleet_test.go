package fleet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/core"
	"inputtune/internal/serve"
)

// Shared test fixtures: two genuinely different sort models (different
// K1, so even their landmark vocabularies differ) trained once per test
// binary, the artifact bytes for both, the input set, each model's
// offline labels, and one encoded binary frame per input.
var fixtures struct {
	once      sync.Once
	inputs    []core.Input
	frames    [][]byte
	artifactA []byte // generation 1 everywhere
	artifactB []byte // what rolling reloads push
	labelsA   []int  // offline ground truth under model A
	labelsB   []int
}

func loadFixtures(t *testing.T) {
	t.Helper()
	fixtures.once.Do(func() {
		lists := sortbench.GenerateMix(sortbench.MixOptions{Count: 48, Seed: 5, MaxSize: 512})
		fixtures.inputs = make([]core.Input, len(lists))
		for i, l := range lists {
			fixtures.inputs[i] = l
		}
		train := func(opts core.Options) (*core.Model, []byte, []int) {
			m := core.TrainModel(sortbench.New(), fixtures.inputs, opts)
			var buf bytes.Buffer
			if err := core.SaveModel(m, &buf); err != nil {
				panic(err)
			}
			set := m.Program.Features()
			labels := make([]int, len(fixtures.inputs))
			for i, in := range fixtures.inputs {
				labels[i] = m.Production.ClassifyInput(set, in, nil)
			}
			return m, buf.Bytes(), labels
		}
		_, fixtures.artifactA, fixtures.labelsA = train(core.Options{
			K1: 4, Seed: 19, TunerPopulation: 6, TunerGenerations: 4, Parallel: true})
		_, fixtures.artifactB, fixtures.labelsB = train(core.Options{
			K1: 3, Seed: 23, TunerPopulation: 6, TunerGenerations: 4, Parallel: true})
		fixtures.frames = make([][]byte, len(fixtures.inputs))
		for i, in := range fixtures.inputs {
			var buf bytes.Buffer
			if err := serve.EncodeBinaryRequest(&buf, "sort", in); err != nil {
				panic(err)
			}
			fixtures.frames[i] = buf.Bytes()
		}
	})
}

// newLocalFleet builds n local replicas, each a fresh service over its
// own registry with artifact A loaded (generation 1), plus the router.
func newLocalFleet(t *testing.T, n int, opts Options) (*Router, []*LocalReplica) {
	t.Helper()
	loadFixtures(t)
	replicas := make([]*LocalReplica, n)
	ifaces := make([]Replica, n)
	for i := range replicas {
		reg := serve.NewRegistry()
		if err := reg.Register(sortbench.New()); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Load(fixtures.artifactA); err != nil {
			t.Fatal(err)
		}
		svc := serve.NewService(reg, serve.Options{Cache: serve.CacheOptions{Capacity: 4096}})
		replicas[i] = NewLocalReplica(fmt.Sprintf("replica-%d", i), svc)
		ifaces[i] = replicas[i]
	}
	rt := NewRouter(ifaces, opts)
	t.Cleanup(func() {
		for _, r := range replicas {
			r.SetDown(false)
		}
	})
	return rt, replicas
}
