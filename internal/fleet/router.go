package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"inputtune/internal/feature"
	"inputtune/internal/obs"
	"inputtune/internal/serve"
)

// Options configures a Router.
type Options struct {
	// QuantizeBits is the sharding key's quantization: the low mantissa
	// bits zeroed from the frame's float payload before hashing, so
	// near-duplicate inputs route to the same replica (whose decision
	// cache they warm). 0 routes on exact bits.
	QuantizeBits int
	// Vnodes is the consistent-hash ring's virtual-node count per
	// replica (<= 0 selects DefaultVnodes).
	Vnodes int
	// HealthInterval enables the background health loop; 0 disables it
	// (tests drive CheckHealth explicitly).
	HealthInterval time.Duration
	// EjectAfter is how many consecutive failures eject a replica from
	// the ring (default 1: the first transport failure reroutes traffic;
	// readmission is cheap because health checks keep probing).
	EjectAfter int
	// MaxAttempts bounds how many replicas one request tries (<= 0 tries
	// every replica once).
	MaxAttempts int
	// Logf receives routing events (ejections, readmissions, rollouts);
	// nil discards them.
	Logf func(format string, args ...any)
	// Tracer records route/attempt/eject spans for sampled requests and
	// wraps forwarded frames in an ITX1 trace context so replicas join
	// the router's trace; nil disables tracing at zero request cost.
	Tracer *obs.Tracer
}

// RouterStats are the router's own counters (the replicas' serving
// metrics roll up separately; see Snapshot).
type RouterStats struct {
	Requests     uint64 `json:"requests"`
	Errors       uint64 `json:"errors"`
	Retries      uint64 `json:"retries"`
	Ejections    uint64 `json:"ejections"`
	Readmissions uint64 `json:"readmissions"`
	Rollouts     uint64 `json:"rollouts"`
}

// replicaState is the router's view of one replica.
type replicaState struct {
	r        Replica
	healthy  bool
	draining bool
	failures int // consecutive, reset on success
}

// Router fronts a set of replicas: consistent-hash routing on the
// quantized frame fingerprint, health-checked membership with ejection
// and readmission, retry across ring successors, rolling reload, and
// graceful drain. Safe for any number of concurrent callers.
type Router struct {
	opts Options

	mu       sync.Mutex
	replicas map[string]*replicaState
	ring     *Ring

	draining atomic.Bool
	inflight atomic.Int64

	requests     atomic.Uint64
	errors       atomic.Uint64
	retries      atomic.Uint64
	ejections    atomic.Uint64
	readmissions atomic.Uint64
	rollouts     atomic.Uint64

	healthStop chan struct{}
	healthDone chan struct{}
}

// NewRouter assembles a router over the given replicas (all initially
// healthy) and starts the health loop when Options.HealthInterval > 0.
func NewRouter(replicas []Replica, opts Options) *Router {
	if opts.EjectAfter <= 0 {
		opts.EjectAfter = 1
	}
	rt := &Router{
		opts:     opts,
		replicas: make(map[string]*replicaState, len(replicas)),
		ring:     NewRing(opts.Vnodes),
	}
	for _, r := range replicas {
		rt.replicas[r.Name()] = &replicaState{r: r, healthy: true}
		rt.ring.Add(r.Name())
	}
	if opts.HealthInterval > 0 {
		rt.healthStop = make(chan struct{})
		rt.healthDone = make(chan struct{})
		go rt.healthLoop()
	}
	return rt
}

func (rt *Router) logf(format string, args ...any) {
	if rt.opts.Logf != nil {
		rt.opts.Logf(format, args...)
	}
}

// Stats returns the router's counters.
func (rt *Router) Stats() RouterStats {
	return RouterStats{
		Requests:     rt.requests.Load(),
		Errors:       rt.errors.Load(),
		Retries:      rt.retries.Load(),
		Ejections:    rt.ejections.Load(),
		Readmissions: rt.readmissions.Load(),
		Rollouts:     rt.rollouts.Load(),
	}
}

// Replicas returns the replica names, sorted.
func (rt *Router) Replicas() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	names := make([]string, 0, len(rt.replicas))
	for n := range rt.replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HealthyReplicas returns the names currently in the ring, sorted.
func (rt *Router) HealthyReplicas() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.Members()
}

// Owner reports which healthy replica the frame would route to first —
// the sticky-routing contract the cache-warming tests pin down.
func (rt *Router) Owner(frame []byte) (string, error) {
	_, fp, err := serve.InspectBinaryFrame(frame, rt.opts.QuantizeBits)
	if err != nil {
		return "", err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.Lookup(fp), nil
}

// attemptOrder builds a request's preference list: healthy replicas in
// ring-successor order from the key's owner, then (as a last resort, so
// a fleet whose every member was ejected still probes rather than
// instantly failing) the unhealthy ones in name order.
func (rt *Router) attemptOrder(fp uint64) []*replicaState {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	order := make([]*replicaState, 0, len(rt.replicas))
	for _, name := range rt.ring.Successors(fp, len(rt.replicas)) {
		order = append(order, rt.replicas[name])
	}
	if len(order) < len(rt.replicas) {
		rest := make([]string, 0, len(rt.replicas)-len(order))
		for name, st := range rt.replicas {
			if !st.healthy {
				rest = append(rest, name)
			}
		}
		sort.Strings(rest)
		for _, name := range rest {
			order = append(order, rt.replicas[name])
		}
	}
	return order
}

// markFailure records a transport failure, ejecting the replica from the
// ring once failures reach EjectAfter.
func (rt *Router) markFailure(st *replicaState, cause error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st.failures++
	if st.healthy && st.failures >= rt.opts.EjectAfter {
		st.healthy = false
		rt.ring.Remove(st.r.Name())
		rt.ejections.Add(1)
		rt.logf("fleet: ejected replica %s after %d failures: %v", st.r.Name(), st.failures, cause)
	}
}

// markSuccess resets the failure streak and readmits an ejected replica.
func (rt *Router) markSuccess(st *replicaState) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st.failures = 0
	if !st.healthy && !st.draining {
		st.healthy = true
		rt.ring.Add(st.r.Name())
		rt.readmissions.Add(1)
		rt.logf("fleet: readmitted replica %s", st.r.Name())
	}
}

// Route answers one ITW1 binary frame: fingerprint, consistent-hash to
// the owning replica, retry across ring successors on transport failure
// or drain. Malformed frames fail immediately with *serve.RequestError
// (the client's fault — no replica would answer differently); transport
// failures eject and retry; any other replica error retries without
// ejection. The zero-failed-requests guarantee cluster-bench enforces
// rests here: as long as one replica stays up, every well-formed request
// gets an answer.
func (rt *Router) Route(frame []byte) (*serve.Decision, error) {
	return rt.RouteTraced(frame, nil)
}

// RouteTraced is Route recording routing spans on t. The caller owns t
// (the fleet handler starts it and finishes it after the response);
// when t is nil but the frame itself opens with an ITX1 trace context,
// the router joins that trace and finishes its own record here. A
// traced request's frame is re-wrapped with the router's trace ID
// before every replica attempt, so replica-side spans — in-process or
// across the HTTP hop — land under the same trace.
func (rt *Router) RouteTraced(frame []byte, t *obs.Trace) (*serve.Decision, error) {
	rt.inflight.Add(1)
	defer rt.inflight.Add(-1)
	if rt.draining.Load() {
		return nil, serve.ErrDraining
	}
	rt.requests.Add(1)
	// Peel any client-carried trace context: the inner ITW1 frame is
	// what shards and (re-wrapped) what replicas receive. A malformed
	// extension is the client's fault, like a malformed frame.
	inner := frame
	if cid, rest, ok, perr := serve.PeelTraceContext(frame); perr != nil {
		rt.errors.Add(1)
		return nil, perr
	} else if ok {
		inner = rest
		if t == nil {
			if joined := rt.opts.Tracer.Join("router", cid); joined != nil {
				t = joined
				defer func() { rt.opts.Tracer.Finish(joined) }()
			}
		}
	}
	routeStart := t.Now()
	_, fp, err := serve.InspectBinaryFrame(inner, rt.opts.QuantizeBits)
	if err != nil {
		rt.errors.Add(1)
		t.SetError(err)
		return nil, err
	}
	order := rt.attemptOrder(fp)
	if len(order) == 0 {
		rt.errors.Add(1)
		err := errors.New("fleet: no replicas")
		t.SetError(err)
		return nil, err
	}
	send := inner
	if t != nil {
		// Wrap once per request, through the shared byte pool: every
		// attempt forwards the same trace context.
		wrapped := feature.GetBytes(serve.TraceContextLen + len(inner))
		wrapped = serve.AppendTraceContext(wrapped, t.ID())
		wrapped = append(wrapped, inner...)
		send = wrapped
		defer feature.PutBytes(wrapped)
	}
	attempts := rt.opts.MaxAttempts
	if attempts <= 0 || attempts > len(order) {
		attempts = len(order)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		st := order[i]
		if i > 0 {
			rt.retries.Add(1)
		}
		at := t.Now()
		d, err := st.r.ClassifyFrame(send)
		if t != nil { // guard: the label concat must not cost untraced requests
			t.Span("attempt "+st.r.Name(), at)
		}
		switch {
		case err == nil:
			rt.markSuccess(st)
			t.Span("route", routeStart)
			return d, nil
		case errors.Is(err, serve.ErrDraining):
			// Healthy but leaving: reroute without holding it against the
			// replica.
			lastErr = err
		case IsDown(err):
			rt.markFailure(st, err)
			if t != nil {
				t.Event("eject " + st.r.Name())
			}
			lastErr = err
		default:
			var reqErr *serve.RequestError
			if errors.As(err, &reqErr) {
				// The frame itself is bad; no other replica would accept it.
				rt.errors.Add(1)
				t.SetError(err)
				return nil, err
			}
			// A serving-side error (e.g. model not loaded on this replica
			// mid-rollout): retry elsewhere, the replica is not down.
			lastErr = err
		}
	}
	rt.errors.Add(1)
	err = fmt.Errorf("fleet: all %d attempts failed: %w", attempts, lastErr)
	t.SetError(err)
	t.Span("route", routeStart)
	return nil, err
}

// CheckHealth performs one health pass over every replica: failures
// eject, recoveries readmit, and a replica reporting Draining leaves the
// ring without counting as ejected (it is healthy, just finishing up).
func (rt *Router) CheckHealth() {
	rt.mu.Lock()
	states := make([]*replicaState, 0, len(rt.replicas))
	for _, st := range rt.replicas {
		states = append(states, st)
	}
	rt.mu.Unlock()
	for _, st := range states {
		h, err := st.r.Health()
		if err != nil {
			rt.markFailure(st, err)
			continue
		}
		rt.mu.Lock()
		st.draining = h.Draining
		if h.Draining && st.healthy {
			st.healthy = false
			rt.ring.Remove(st.r.Name())
			rt.logf("fleet: replica %s draining, removed from ring", st.r.Name())
		}
		rt.mu.Unlock()
		if !h.Draining {
			rt.markSuccess(st)
		}
	}
}

func (rt *Router) healthLoop() {
	defer close(rt.healthDone)
	t := time.NewTicker(rt.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.healthStop:
			return
		case <-t.C:
			rt.CheckHealth()
		}
	}
}

// Rollout reports one rolling reload across the fleet.
type Rollout struct {
	Benchmark string `json:"benchmark"`
	// Generations maps replica name to the generation it now serves.
	Generations map[string]uint64 `json:"generations"`
	// Skew is the number of distinct model versions live across the
	// reachable fleet for this benchmark at the end of the rollout — 1
	// means converged (see Router.GenerationSkew for how versions are
	// identified).
	// During the rollout the fleet intentionally serves mixed
	// generations; each replica's decision cache is generation-keyed, so
	// skew can never mix cache entries (serve/drain_test.go pins that).
	Skew int `json:"skew"`
	// Failed names the replicas the rollout could not reach, if any.
	Failed []string `json:"failed,omitempty"`
}

// RollingReload loads a model artifact onto every replica, one at a
// time in name order — at any instant at most one replica is mid-load,
// the rest keep serving their generation. Replicas that fail to load
// are recorded and skipped (an unreachable replica will pick up the
// artifact operator-side on restart); the rollout continues so the
// healthy fleet converges. Returns the rollout record; error only when
// the artifact is invalid (first replica rejects it with a non-transport
// error) or no replica accepted it.
func (rt *Router) RollingReload(artifact []byte) (*Rollout, error) {
	var hdr struct {
		Benchmark string `json:"benchmark"`
	}
	if err := json.Unmarshal(artifact, &hdr); err != nil || hdr.Benchmark == "" {
		return nil, &serve.RequestError{Err: fmt.Errorf("fleet: artifact has no benchmark header")}
	}
	ro := &Rollout{Benchmark: hdr.Benchmark, Generations: make(map[string]uint64)}
	rt.mu.Lock()
	names := make([]string, 0, len(rt.replicas))
	for n := range rt.replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	rt.mu.Unlock()
	var lastErr error
	for _, name := range names {
		rt.mu.Lock()
		st := rt.replicas[name]
		rt.mu.Unlock()
		gen, err := st.r.Reload(artifact)
		if err != nil {
			if !IsDown(err) && len(ro.Generations) == 0 {
				// The first reachable replica rejected the artifact: it is
				// bad, stop before poisoning anything else. (Replicas reject
				// atomically — the prior model keeps serving.)
				return nil, err
			}
			ro.Failed = append(ro.Failed, name)
			lastErr = err
			rt.logf("fleet: rollout of %s skipped replica %s: %v", hdr.Benchmark, name, err)
			continue
		}
		ro.Generations[name] = gen
		rt.logf("fleet: rollout of %s: replica %s now at generation %d", hdr.Benchmark, name, gen)
	}
	if len(ro.Generations) == 0 {
		return nil, fmt.Errorf("fleet: rollout of %s reached no replicas: %w", hdr.Benchmark, lastErr)
	}
	ro.Skew = rt.GenerationSkew()[hdr.Benchmark]
	rt.rollouts.Add(1)
	return ro, nil
}

// GenerationSkew reports, per benchmark, how many distinct model
// VERSIONS are live across the reachable fleet right now — the
// observable a rolling reload is expected to return to 1. Versions are
// identified by artifact content hash (registry generation numbers are
// per-replica counters, so two replicas at different generations may
// serve the identical artifact — that is not skew); models installed
// in-process carry no hash and fall back to their generation number.
func (rt *Router) GenerationSkew() map[string]int {
	rt.mu.Lock()
	states := make([]*replicaState, 0, len(rt.replicas))
	for _, st := range rt.replicas {
		states = append(states, st)
	}
	rt.mu.Unlock()
	versions := make(map[string]map[string]bool)
	for _, st := range states {
		h, err := st.r.Health()
		if err != nil {
			continue
		}
		for _, m := range h.Models {
			key := fmt.Sprintf("hash:%x", m.ArtifactHash)
			if m.ArtifactHash == 0 {
				key = fmt.Sprintf("gen:%d", m.Generation)
			}
			if versions[m.Benchmark] == nil {
				versions[m.Benchmark] = make(map[string]bool)
			}
			versions[m.Benchmark][key] = true
		}
	}
	out := make(map[string]int, len(versions))
	for b, v := range versions {
		out[b] = len(v)
	}
	return out
}

// BeginDrain stops admitting new requests (in-flight ones complete).
func (rt *Router) BeginDrain() { rt.draining.Store(true) }

// Draining reports whether the router is draining.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// Inflight reports requests currently being routed.
func (rt *Router) Inflight() int64 { return rt.inflight.Load() }

// Drain begins a graceful drain and waits for in-flight requests.
func (rt *Router) Drain(ctx context.Context) error {
	rt.BeginDrain()
	for rt.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: drain: %d requests still in flight: %w", rt.inflight.Load(), ctx.Err())
		case <-time.After(200 * time.Microsecond):
		}
	}
	return nil
}

// Close drains the router, stops the health loop, and closes every
// replica.
func (rt *Router) Close(ctx context.Context) error {
	err := rt.Drain(ctx)
	if rt.healthStop != nil {
		close(rt.healthStop)
		<-rt.healthDone
		rt.healthStop = nil
	}
	rt.mu.Lock()
	states := make([]*replicaState, 0, len(rt.replicas))
	for _, st := range rt.replicas {
		states = append(states, st)
	}
	rt.mu.Unlock()
	for _, st := range states {
		if cerr := st.r.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
