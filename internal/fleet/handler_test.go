package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"inputtune/internal/serve"
)

// TestHandlerBothWires pins the fleet front door: the JSON envelope and
// the binary frame classify identically (the envelope is normalized to a
// frame before routing, so both shard the same), and the response
// representation follows Accept.
func TestHandlerBothWires(t *testing.T) {
	rt, _ := newLocalFleet(t, 2, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	h := NewHandler(rt)

	for i, in := range fixtures.inputs {
		c, err := serve.LookupCodec("sort")
		if err != nil {
			t.Fatal(err)
		}
		inputJSON, err := c.EncodeJSON(in)
		if err != nil {
			t.Fatal(err)
		}
		envelope, _ := json.Marshal(map[string]json.RawMessage{
			"benchmark": json.RawMessage(`"sort"`),
			"input":     inputJSON,
		})
		req := httptest.NewRequest("POST", "/v1/classify", bytes.NewReader(envelope))
		req.Header.Set("Content-Type", serve.ContentTypeJSON)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("input %d JSON: status %d body %s", i, rec.Code, rec.Body.String())
		}
		var dj serve.Decision
		if err := json.Unmarshal(rec.Body.Bytes(), &dj); err != nil {
			t.Fatal(err)
		}

		req = httptest.NewRequest("POST", "/v1/classify", bytes.NewReader(fixtures.frames[i]))
		req.Header.Set("Content-Type", serve.ContentTypeBinary)
		req.Header.Set("Accept", serve.ContentTypeBinary)
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("input %d binary: status %d body %s", i, rec.Code, rec.Body.String())
		}
		db, err := serve.DecodeBinaryDecision(rec.Body)
		if err != nil {
			t.Fatal(err)
		}
		if dj.Landmark != db.Landmark || dj.Landmark != fixtures.labelsA[i] {
			t.Fatalf("input %d: json label %d, binary label %d, offline %d",
				i, dj.Landmark, db.Landmark, fixtures.labelsA[i])
		}
	}
}

// TestHandlerMetricsAndHealth pins the roll-up surface and the healthz
// fleet semantics (503 only when no replica is in the ring).
func TestHandlerMetricsAndHealth(t *testing.T) {
	rt, replicas := newLocalFleet(t, 2, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	h := NewHandler(rt)

	// Drive some traffic so the roll-up has content.
	for _, frame := range fixtures.frames {
		if _, err := rt.Route(frame); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.TotalRequests != uint64(len(fixtures.frames)) || snap.HealthyReplicas != 2 {
		t.Fatalf("snapshot %+v, want %d total requests over 2 healthy replicas",
			snap.Router, len(fixtures.frames))
	}
	if snap.GenerationSkew["sort"] != 1 {
		t.Fatalf("generation skew %v, want sort=1", snap.GenerationSkew)
	}
	var perReplica uint64
	for _, r := range snap.Replicas {
		if !r.Reachable {
			t.Fatalf("replica %s unreachable in roll-up", r.Name)
		}
		perReplica += r.Metrics.Requests
	}
	if perReplica != snap.TotalRequests {
		t.Fatalf("per-replica requests sum %d != total %d", perReplica, snap.TotalRequests)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	prom := rec.Body.String()
	for _, want := range []string{
		"inputtuned_fleet_router_requests_total",
		"inputtuned_fleet_replicas_healthy 2",
		"inputtuned_fleet_replica_requests_total{replica=\"replica-0\"}",
		"inputtuned_fleet_generation_skew{benchmark=\"sort\"} 1",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus output lacks %q:\n%s", want, prom)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	for _, r := range replicas {
		r.SetDown(true)
	}
	rt.CheckHealth()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("healthz with no healthy replicas: %d, want 503", rec.Code)
	}
}

// TestHandlerReload pins the fleet reload endpoint: a rollout record
// comes back, a bad artifact is a 400.
func TestHandlerReload(t *testing.T) {
	rt, _ := newLocalFleet(t, 2, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	h := NewHandler(rt)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/reload", bytes.NewReader(fixtures.artifactB)))
	if rec.Code != 200 {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body.String())
	}
	var ro Rollout
	if err := json.Unmarshal(rec.Body.Bytes(), &ro); err != nil {
		t.Fatal(err)
	}
	if ro.Benchmark != "sort" || ro.Skew != 1 || len(ro.Generations) != 2 {
		t.Fatalf("rollout %+v", ro)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/reload", strings.NewReader("garbage")))
	if rec.Code != 400 {
		t.Fatalf("garbage reload: %d, want 400", rec.Code)
	}
}
