package fleet

import (
	"fmt"
	"sort"
	"strings"

	"inputtune/internal/serve"
)

// ReplicaSnapshot is one replica's row in the fleet metrics roll-up.
type ReplicaSnapshot struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining,omitempty"`
	// Metrics is the replica's own serving snapshot; zero-valued when the
	// replica was unreachable at scrape time.
	Metrics serve.MetricsSnapshot `json:"metrics"`
	// Reachable reports whether the scrape got through.
	Reachable bool `json:"reachable"`
}

// Snapshot is the fleet-level observability surface: the router's own
// counters plus every replica's serving metrics, rolled up so the
// per-replica cache-hit/latency interaction with the input distribution
// (the thing sharding on the quantized fingerprint exists to exploit) is
// observable in one scrape.
type Snapshot struct {
	Router          RouterStats       `json:"router"`
	HealthyReplicas int               `json:"healthy_replicas"`
	TotalReplicas   int               `json:"total_replicas"`
	GenerationSkew  map[string]int    `json:"generation_skew,omitempty"`
	Replicas        []ReplicaSnapshot `json:"replicas"`
	// Fleet-wide totals across reachable replicas.
	TotalRequests  uint64  `json:"total_requests"`
	TotalErrors    uint64  `json:"total_errors"`
	TotalCacheHits uint64  `json:"total_cache_hits"`
	TotalCacheMiss uint64  `json:"total_cache_misses"`
	FleetHitRate   float64 `json:"fleet_cache_hit_rate"`
	MeanLatencyUs  float64 `json:"latency_mean_us"`
	WorstP99Micros float64 `json:"latency_worst_p99_us"`
	// Drift rolls up the per-replica drift-loop state by benchmark,
	// present only when at least one reachable replica runs the loop.
	Drift map[string]FleetDriftStatus `json:"drift,omitempty"`
}

// FleetDriftStatus aggregates one benchmark's drift state across the
// fleet: how many replicas see drift or are mid-retrain right now, and
// the summed counters. With the coordinated-reload publish path every
// replica shares one controller, so DetectedReplicas > 0 means the fleet
// as a whole has drifted, not that one replica's traffic shard is odd.
type FleetDriftStatus struct {
	DetectedReplicas   int    `json:"detected_replicas"`
	RetrainingReplicas int    `json:"retraining_replicas"`
	TotalRetrains      uint64 `json:"total_retrains"`
	TotalSamples       uint64 `json:"total_samples"`
	TotalRetained      int    `json:"total_retained"`
}

// Snapshot assembles the fleet metrics: router counters, health/skew
// state, and a best-effort scrape of every replica (an unreachable
// replica contributes an empty row, never an error — metrics must stay
// scrapeable mid-outage).
func (rt *Router) Snapshot() Snapshot {
	rt.mu.Lock()
	states := make([]*replicaState, 0, len(rt.replicas))
	for _, st := range rt.replicas {
		states = append(states, st)
	}
	rt.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].r.Name() < states[j].r.Name() })

	snap := Snapshot{
		Router:         rt.Stats(),
		TotalReplicas:  len(states),
		GenerationSkew: rt.GenerationSkew(),
	}
	var latWeight float64
	for _, st := range states {
		rt.mu.Lock()
		row := ReplicaSnapshot{Name: st.r.Name(), Healthy: st.healthy, Draining: st.draining}
		rt.mu.Unlock()
		if row.Healthy {
			snap.HealthyReplicas++
		}
		if m, err := st.r.Metrics(); err == nil {
			row.Reachable = true
			row.Metrics = m
			snap.TotalRequests += m.Requests
			snap.TotalErrors += m.Errors
			snap.TotalCacheHits += m.DecisionCache.Hits
			snap.TotalCacheMiss += m.DecisionCache.Misses
			latWeight += float64(m.Requests) * m.MeanMicros
			if m.P99Micros > snap.WorstP99Micros {
				snap.WorstP99Micros = m.P99Micros
			}
			for _, d := range m.Drift {
				if snap.Drift == nil {
					snap.Drift = make(map[string]FleetDriftStatus)
				}
				agg := snap.Drift[d.Benchmark]
				if d.Drifted {
					agg.DetectedReplicas++
				}
				if d.Retraining {
					agg.RetrainingReplicas++
				}
				agg.TotalRetrains += d.Retrains
				agg.TotalSamples += d.Samples
				agg.TotalRetained += d.Retained
				snap.Drift[d.Benchmark] = agg
			}
		}
		snap.Replicas = append(snap.Replicas, row)
	}
	if total := snap.TotalCacheHits + snap.TotalCacheMiss; total > 0 {
		snap.FleetHitRate = float64(snap.TotalCacheHits) / float64(total)
	}
	if snap.TotalRequests > 0 {
		snap.MeanLatencyUs = latWeight / float64(snap.TotalRequests)
	}
	return snap
}

// RenderPrometheus renders the fleet snapshot in Prometheus text format,
// fleet-level series first, then per-replica series labeled by replica.
func (s Snapshot) RenderPrometheus() string {
	var b strings.Builder
	gauge := func(name string, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name string, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("inputtuned_fleet_router_requests_total", "Requests admitted by the fleet router.", s.Router.Requests)
	counter("inputtuned_fleet_router_errors_total", "Requests the router could not answer.", s.Router.Errors)
	counter("inputtuned_fleet_router_retries_total", "Attempts past the first replica.", s.Router.Retries)
	counter("inputtuned_fleet_router_ejections_total", "Replicas ejected from the ring.", s.Router.Ejections)
	counter("inputtuned_fleet_router_readmissions_total", "Ejected replicas readmitted.", s.Router.Readmissions)
	counter("inputtuned_fleet_rollouts_total", "Rolling reloads completed.", s.Router.Rollouts)
	gauge("inputtuned_fleet_replicas", "Total replicas.", s.TotalReplicas)
	gauge("inputtuned_fleet_replicas_healthy", "Replicas currently in the ring.", s.HealthyReplicas)
	counter("inputtuned_fleet_requests_total", "Requests served across all replicas.", s.TotalRequests)
	counter("inputtuned_fleet_cache_hits_total", "Decision-cache hits across all replicas.", s.TotalCacheHits)
	counter("inputtuned_fleet_cache_misses_total", "Decision-cache misses across all replicas.", s.TotalCacheMiss)
	gauge("inputtuned_fleet_cache_hit_rate", "Fleet-wide decision-cache hit rate.", s.FleetHitRate)
	gauge("inputtuned_fleet_latency_mean_us", "Request-weighted mean latency across replicas.", s.MeanLatencyUs)
	gauge("inputtuned_fleet_latency_worst_p99_us", "Worst per-replica p99 latency.", s.WorstP99Micros)
	if len(s.GenerationSkew) > 0 {
		b.WriteString("# HELP inputtuned_fleet_generation_skew Distinct live model generations per benchmark.\n")
		b.WriteString("# TYPE inputtuned_fleet_generation_skew gauge\n")
		benches := make([]string, 0, len(s.GenerationSkew))
		for bench := range s.GenerationSkew {
			benches = append(benches, bench)
		}
		sort.Strings(benches)
		for _, bench := range benches {
			fmt.Fprintf(&b, "inputtuned_fleet_generation_skew{benchmark=%q} %d\n", bench, s.GenerationSkew[bench])
		}
	}
	if len(s.Drift) > 0 {
		benches := make([]string, 0, len(s.Drift))
		for bench := range s.Drift {
			benches = append(benches, bench)
		}
		sort.Strings(benches)
		b.WriteString("# HELP inputtuned_fleet_drift_detected_replicas Replicas whose drift detector has fired.\n")
		b.WriteString("# TYPE inputtuned_fleet_drift_detected_replicas gauge\n")
		for _, bench := range benches {
			fmt.Fprintf(&b, "inputtuned_fleet_drift_detected_replicas{benchmark=%q} %d\n", bench, s.Drift[bench].DetectedReplicas)
		}
		b.WriteString("# HELP inputtuned_fleet_drift_retraining_replicas Replicas currently retraining.\n")
		b.WriteString("# TYPE inputtuned_fleet_drift_retraining_replicas gauge\n")
		for _, bench := range benches {
			fmt.Fprintf(&b, "inputtuned_fleet_drift_retraining_replicas{benchmark=%q} %d\n", bench, s.Drift[bench].RetrainingReplicas)
		}
		b.WriteString("# HELP inputtuned_fleet_drift_retrains_total Retrain+publish cycles completed across the fleet.\n")
		b.WriteString("# TYPE inputtuned_fleet_drift_retrains_total counter\n")
		for _, bench := range benches {
			fmt.Fprintf(&b, "inputtuned_fleet_drift_retrains_total{benchmark=%q} %d\n", bench, s.Drift[bench].TotalRetrains)
		}
		b.WriteString("# HELP inputtuned_fleet_drift_samples_total Served requests observed by drift detectors across the fleet.\n")
		b.WriteString("# TYPE inputtuned_fleet_drift_samples_total counter\n")
		for _, bench := range benches {
			fmt.Fprintf(&b, "inputtuned_fleet_drift_samples_total{benchmark=%q} %d\n", bench, s.Drift[bench].TotalSamples)
		}
	}
	b.WriteString("# HELP inputtuned_fleet_replica_requests_total Requests served per replica.\n")
	b.WriteString("# TYPE inputtuned_fleet_replica_requests_total counter\n")
	for _, r := range s.Replicas {
		fmt.Fprintf(&b, "inputtuned_fleet_replica_requests_total{replica=%q} %d\n", r.Name, r.Metrics.Requests)
	}
	b.WriteString("# HELP inputtuned_fleet_replica_healthy Replica ring membership (1 = in the ring).\n")
	b.WriteString("# TYPE inputtuned_fleet_replica_healthy gauge\n")
	for _, r := range s.Replicas {
		v := 0
		if r.Healthy {
			v = 1
		}
		fmt.Fprintf(&b, "inputtuned_fleet_replica_healthy{replica=%q} %d\n", r.Name, v)
	}
	b.WriteString("# HELP inputtuned_fleet_replica_cache_hits_total Decision-cache hits per replica.\n")
	b.WriteString("# TYPE inputtuned_fleet_replica_cache_hits_total counter\n")
	for _, r := range s.Replicas {
		fmt.Fprintf(&b, "inputtuned_fleet_replica_cache_hits_total{replica=%q} %d\n", r.Name, r.Metrics.DecisionCache.Hits)
	}
	b.WriteString("# HELP inputtuned_fleet_replica_latency_p99_us Per-replica p99 latency.\n")
	b.WriteString("# TYPE inputtuned_fleet_replica_latency_p99_us gauge\n")
	for _, r := range s.Replicas {
		fmt.Fprintf(&b, "inputtuned_fleet_replica_latency_p99_us{replica=%q} %g\n", r.Name, r.Metrics.P99Micros)
	}
	return b.String()
}
