package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"inputtune/internal/obs"
	"inputtune/internal/serve"
)

// Replica is one serving backend the router can route to. The two
// implementations are LocalReplica (an in-process serve.Service — the
// cluster-bench and test substrate, and what `inputtuned -fleet N` runs)
// and HTTPReplica (a remote inputtuned process reached over the binary
// wire).
type Replica interface {
	// Name identifies the replica; it is the consistent-hash ring member.
	Name() string
	// ClassifyFrame answers one ITW1 binary frame with a decision.
	// Transport-level failures come back as *DownError; malformed frames
	// as *serve.RequestError; a draining replica answers
	// serve.ErrDraining.
	ClassifyFrame(frame []byte) (*serve.Decision, error)
	// Health performs one health check (the ITH1 exchange for remote
	// replicas).
	Health() (serve.Health, error)
	// Reload loads a model artifact, returning the new generation.
	Reload(artifact []byte) (uint64, error)
	// Metrics returns the replica's serving metrics for fleet roll-up.
	Metrics() (serve.MetricsSnapshot, error)
	// Close releases the replica's resources.
	Close() error
}

// DownError marks a replica as unreachable (process died, connection
// refused, mid-stream cut). The router reacts by ejecting the replica
// and retrying elsewhere; every other error is answered or retried
// without ejection.
type DownError struct {
	Replica string
	Err     error
}

func (e *DownError) Error() string {
	return fmt.Sprintf("fleet: replica %s down: %v", e.Replica, e.Err)
}
func (e *DownError) Unwrap() error { return e.Err }

// IsDown reports whether err marks a replica as unreachable.
func IsDown(err error) bool {
	var d *DownError
	return errors.As(err, &d)
}

// LocalReplica adapts an in-process serve.Service to the Replica
// interface. SetDown simulates the process dying — every call fails
// with *DownError until the replica is revived — which is what the
// fault-injection tests and cluster-bench's mid-run kill use.
type LocalReplica struct {
	name string
	svc  *serve.Service
	down atomic.Bool
}

// NewLocalReplica wraps svc as a named replica.
func NewLocalReplica(name string, svc *serve.Service) *LocalReplica {
	return &LocalReplica{name: name, svc: svc}
}

// Service exposes the wrapped service (tests reach through to its cache
// stats and registry).
func (r *LocalReplica) Service() *serve.Service { return r.svc }

// SetDown simulates the replica process dying (true) or restarting
// (false).
func (r *LocalReplica) SetDown(down bool) { r.down.Store(down) }

// Down reports whether the replica is simulating death.
func (r *LocalReplica) Down() bool { return r.down.Load() }

func (r *LocalReplica) Name() string { return r.name }

func (r *LocalReplica) ClassifyFrame(frame []byte) (*serve.Decision, error) {
	if r.down.Load() {
		return nil, &DownError{Replica: r.name, Err: errors.New("connection refused (injected)")}
	}
	return r.svc.ClassifyBinary(bytes.NewReader(frame))
}

func (r *LocalReplica) Health() (serve.Health, error) {
	if r.down.Load() {
		return serve.Health{}, &DownError{Replica: r.name, Err: errors.New("connection refused (injected)")}
	}
	return r.svc.Health(), nil
}

func (r *LocalReplica) Reload(artifact []byte) (uint64, error) {
	if r.down.Load() {
		return 0, &DownError{Replica: r.name, Err: errors.New("connection refused (injected)")}
	}
	snap, err := r.svc.Load(artifact)
	if err != nil {
		return 0, err
	}
	return snap.Generation, nil
}

func (r *LocalReplica) Metrics() (serve.MetricsSnapshot, error) {
	if r.down.Load() {
		return serve.MetricsSnapshot{}, &DownError{Replica: r.name, Err: errors.New("connection refused (injected)")}
	}
	return r.svc.MetricsSnapshot(), nil
}

func (r *LocalReplica) Close() error {
	r.svc.Close()
	return nil
}

// HTTPReplica reaches a remote inputtuned process over its HTTP API,
// requests and decisions on the binary wire, health checks on ITH1.
type HTTPReplica struct {
	name    string
	baseURL string
	client  *http.Client
}

// NewHTTPReplica wraps the inputtuned instance at baseURL (e.g.
// "http://localhost:8077"). A nil client selects http.DefaultClient.
func NewHTTPReplica(name, baseURL string, client *http.Client) *HTTPReplica {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPReplica{name: name, baseURL: strings.TrimSuffix(baseURL, "/"), client: client}
}

func (r *HTTPReplica) Name() string { return r.name }

func (r *HTTPReplica) ClassifyFrame(frame []byte) (*serve.Decision, error) {
	req, err := http.NewRequest(http.MethodPost, r.baseURL+"/v1/classify", bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", serve.ContentTypeBinary)
	req.Header.Set("Accept", serve.ContentTypeBinary)
	// A frame the router wrapped in an ITX1 trace context also announces
	// the trace ID in the header, so the replica joins the trace even on a
	// deployment that strips unknown frame extensions at a proxy.
	if id, _, ok, _ := serve.PeelTraceContext(frame); ok {
		req.Header.Set(obs.TraceHeader, obs.FormatID(id))
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, &DownError{Replica: r.name, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := r.decodeError(resp)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, &serve.RequestError{Err: err}
		}
		return nil, err
	}
	d, err := serve.DecodeBinaryDecision(resp.Body)
	if err != nil {
		// A cut mid-response is indistinguishable from the process dying.
		return nil, &DownError{Replica: r.name, Err: err}
	}
	return d, nil
}

// decodeError maps an HTTP error body back to an error value, recovering
// serve.ErrDraining so the router treats a draining replica as routing
// signal rather than a fault.
func (r *HTTPReplica) decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		if strings.Contains(e.Error, serve.ErrDraining.Error()) {
			return serve.ErrDraining
		}
		return errors.New(e.Error)
	}
	return fmt.Errorf("fleet: replica %s answered status %d", r.name, resp.StatusCode)
}

func (r *HTTPReplica) Health() (serve.Health, error) {
	req, err := http.NewRequest(http.MethodGet, r.baseURL+"/healthz", nil)
	if err != nil {
		return serve.Health{}, err
	}
	req.Header.Set("Accept", serve.ContentTypeBinary)
	resp, err := r.client.Do(req)
	if err != nil {
		return serve.Health{}, &DownError{Replica: r.name, Err: err}
	}
	defer resp.Body.Close()
	// A draining replica answers 503 with a valid frame; both statuses
	// carry the ITH1 body.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return serve.Health{}, &DownError{Replica: r.name,
			Err: fmt.Errorf("healthz status %d", resp.StatusCode)}
	}
	h, err := serve.DecodeHealthFrame(resp.Body)
	if err != nil {
		return serve.Health{}, &DownError{Replica: r.name, Err: err}
	}
	return h, nil
}

func (r *HTTPReplica) Reload(artifact []byte) (uint64, error) {
	resp, err := r.client.Post(r.baseURL+"/v1/reload", serve.ContentTypeJSON, bytes.NewReader(artifact))
	if err != nil {
		return 0, &DownError{Replica: r.name, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, r.decodeError(resp)
	}
	var out struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, &DownError{Replica: r.name, Err: err}
	}
	return out.Generation, nil
}

func (r *HTTPReplica) Metrics() (serve.MetricsSnapshot, error) {
	resp, err := r.client.Get(r.baseURL + "/metrics?format=json")
	if err != nil {
		return serve.MetricsSnapshot{}, &DownError{Replica: r.name, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.MetricsSnapshot{}, r.decodeError(resp)
	}
	var snap serve.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return serve.MetricsSnapshot{}, &DownError{Replica: r.name, Err: err}
	}
	return snap, nil
}

// Close is a no-op: the remote process has its own lifecycle.
func (r *HTTPReplica) Close() error { return nil }
