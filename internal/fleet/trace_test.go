package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/obs"
	"inputtune/internal/serve"
)

// TestTracePropagatesAcrossFleetHop proves one trace ID spans the router
// and the replica across a real HTTP hop: the front handler starts the
// trace, RouteTraced wraps the forwarded frame in an ITX1 context (and
// HTTPReplica mirrors the ID into X-Inputtune-Trace), and the replica —
// an httptest server running the plain serve handler — joins it. Both
// participants write into one shared tracer, exactly like one inputtuned
// process in -fleet mode, so the merged snapshot must show router-side
// and replica-side spans under a single ID. Run under -race this also
// exercises the tracer's concurrent ring writes from both sites.
func TestTracePropagatesAcrossFleetHop(t *testing.T) {
	loadFixtures(t)
	tr := obs.New(obs.Options{SampleEvery: 1})

	reg := serve.NewRegistry()
	if err := reg.Register(sortbench.New()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load(fixtures.artifactA); err != nil {
		t.Fatal(err)
	}
	svc := serve.NewService(reg, serve.Options{
		Cache:     serve.CacheOptions{Capacity: 4096},
		Tracer:    tr,
		TraceSite: "replica-0",
	})
	backend := httptest.NewServer(serve.NewHandler(svc))
	defer backend.Close()

	rt := NewRouter(
		[]Replica{NewHTTPReplica("replica-0", backend.URL, backend.Client())},
		Options{QuantizeBits: 8, Tracer: tr},
	)
	defer rt.Close(context.Background())
	front := httptest.NewServer(NewHandler(rt))
	defer front.Close()

	// Concurrent requests give -race a real interleaving to check: both
	// sites append to the shared ring while the front edge keeps
	// starting and finishing traces.
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(fixtures.frames))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, frame := range fixtures.frames {
				resp, err := front.Client().Post(
					front.URL+"/v1/classify", serve.ContentTypeBinary, bytes.NewReader(frame))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("classify status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("classify through fleet front: %v", err)
	}

	// Every sampled trace must have merged: router-side and replica-side
	// spans under the same trace ID.
	views := tr.Snapshot(1000)
	if len(views) == 0 {
		t.Fatal("no traces sampled")
	}
	crossHop := 0
	for _, v := range views {
		sites := map[string]bool{}
		for _, sp := range v.Spans {
			sites[sp.Site] = true
		}
		if sites["router"] && sites["replica-0"] {
			crossHop++
			if len(v.Sites) < 2 {
				t.Fatalf("merged trace %s lists sites %v", v.ID, v.Sites)
			}
		}
	}
	if crossHop == 0 {
		t.Fatalf("no trace carries both router and replica spans; got %d traces", len(views))
	}
}
