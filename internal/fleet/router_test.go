package fleet

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/serve"
)

// TestRouterLabelsMatchOffline is the fleet half of the offline-vs-served
// differential: every label served through the router is bit-identical to
// what the offline classifier computes for the same input.
func TestRouterLabelsMatchOffline(t *testing.T) {
	rt, _ := newLocalFleet(t, 4, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	for i, frame := range fixtures.frames {
		d, err := rt.Route(frame)
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		if d.Landmark != fixtures.labelsA[i] {
			t.Fatalf("input %d: served label %d, offline label %d", i, d.Landmark, fixtures.labelsA[i])
		}
	}
	stats := rt.Stats()
	if stats.Requests != uint64(len(fixtures.frames)) || stats.Errors != 0 {
		t.Fatalf("router stats %+v, want %d requests and 0 errors", stats, len(fixtures.frames))
	}
}

// TestRouterStickyRouting pins the point of fingerprint sharding: the
// same frame always routes to the same replica, so a repeat request
// finds that replica's decision cache warm.
func TestRouterStickyRouting(t *testing.T) {
	rt, replicas := newLocalFleet(t, 4, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	owners := make([]string, len(fixtures.frames))
	for i, frame := range fixtures.frames {
		owner, err := rt.Owner(frame)
		if err != nil {
			t.Fatal(err)
		}
		owners[i] = owner
		if _, err := rt.Route(frame); err != nil {
			t.Fatal(err)
		}
	}
	// Second pass: same owners, and every request hits a warm cache.
	for i, frame := range fixtures.frames {
		if owner, _ := rt.Owner(frame); owner != owners[i] {
			t.Fatalf("input %d: owner changed %s→%s between passes", i, owners[i], owner)
		}
		d, err := rt.Route(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !d.CacheHit {
			t.Fatalf("input %d: repeat request missed the decision cache", i)
		}
	}
	// The traffic must actually have spread over the fleet.
	used := 0
	for _, r := range replicas {
		if r.Service().MetricsSnapshot().Requests > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("48 inputs landed on %d of 4 replicas; sharding is not spreading", used)
	}
}

// TestRouterKillRestartUnderLoad is the fault-injection suite's core: a
// replica dies mid-load and later restarts, while concurrent clients
// hammer the fleet. Contract: zero failed requests, every label matches
// the offline classifier, the dead replica is ejected and — after its
// restart — readmitted. Run under -race this also shakes the router's
// locking.
func TestRouterKillRestartUnderLoad(t *testing.T) {
	rt, replicas := newLocalFleet(t, 4, Options{QuantizeBits: 8, HealthInterval: time.Millisecond})
	defer rt.Close(context.Background())

	const clients = 8
	const perClient = 150
	var failed, served atomic.Uint64
	var wrong atomic.Uint64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < perClient; i++ {
				idx := (c*perClient + i) % len(fixtures.frames)
				d, err := rt.Route(fixtures.frames[idx])
				if err != nil {
					failed.Add(1)
					t.Errorf("client %d request %d: %v", c, i, err)
					continue
				}
				served.Add(1)
				if d.Landmark != fixtures.labelsA[idx] {
					wrong.Add(1)
				}
			}
		}(c)
	}
	close(start)
	// Kill one replica while the load is in flight, restart it later.
	victim := replicas[1]
	time.Sleep(5 * time.Millisecond)
	victim.SetDown(true)
	time.Sleep(20 * time.Millisecond)
	victim.SetDown(false)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d failed requests; the fleet must absorb a replica kill", failed.Load())
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d served labels diverged from the offline classifier", wrong.Load())
	}
	if served.Load() != clients*perClient {
		t.Fatalf("served %d of %d requests", served.Load(), clients*perClient)
	}
	stats := rt.Stats()
	if stats.Ejections == 0 {
		t.Fatalf("the killed replica was never ejected (stats %+v)", stats)
	}
	// The health loop readmits the restarted replica.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(rt.HealthyReplicas()) == 4 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := rt.HealthyReplicas(); len(got) != 4 {
		t.Fatalf("restarted replica never readmitted; healthy = %v", got)
	}
	if rt.Stats().Readmissions == 0 {
		t.Fatal("readmission counter stayed zero")
	}
}

// TestRouterAllDownThenRecover pins the last-resort path: with every
// replica ejected, requests fail (with an error, not a hang), and the
// first request after a replica returns succeeds and readmits it.
func TestRouterAllDownThenRecover(t *testing.T) {
	rt, replicas := newLocalFleet(t, 2, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	for _, r := range replicas {
		r.SetDown(true)
	}
	if _, err := rt.Route(fixtures.frames[0]); err == nil {
		t.Fatal("routing succeeded with every replica down")
	}
	if len(rt.HealthyReplicas()) != 0 {
		t.Fatalf("healthy = %v after total outage", rt.HealthyReplicas())
	}
	replicas[0].SetDown(false)
	// No health loop here: the request path itself must probe the ejected
	// replicas as a last resort and readmit the recovered one.
	d, err := rt.Route(fixtures.frames[0])
	if err != nil {
		t.Fatalf("routing after recovery: %v", err)
	}
	if d.Landmark != fixtures.labelsA[0] {
		t.Fatalf("label %d after recovery, want %d", d.Landmark, fixtures.labelsA[0])
	}
	if got := rt.HealthyReplicas(); len(got) != 1 || got[0] != "replica-0" {
		t.Fatalf("healthy = %v, want the recovered replica", got)
	}
}

// TestRouterRejectsMalformedFrames pins the no-retry client-fault path: a
// bad frame fails once, immediately, without ejecting anyone.
func TestRouterRejectsMalformedFrames(t *testing.T) {
	rt, _ := newLocalFleet(t, 2, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	var reqErr *serve.RequestError
	if _, err := rt.Route([]byte("garbage")); !errors.As(err, &reqErr) {
		t.Fatalf("got %v, want a RequestError", err)
	}
	if _, err := rt.Route(fixtures.frames[0][:10]); !errors.As(err, &reqErr) {
		t.Fatalf("truncated frame: got %v, want a RequestError", err)
	}
	if st := rt.Stats(); st.Retries != 0 || st.Ejections != 0 {
		t.Fatalf("malformed frames caused retries/ejections: %+v", st)
	}
	if len(rt.HealthyReplicas()) != 2 {
		t.Fatal("a client fault cost a replica its ring membership")
	}
}

// TestRouterDrainingReplicaReroutes: a draining replica refuses with
// ErrDraining; the router reroutes without ejecting it, and the health
// loop takes it out of the ring without counting an ejection.
func TestRouterDrainingReplicaReroutes(t *testing.T) {
	rt, replicas := newLocalFleet(t, 2, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	replicas[0].Service().BeginDrain()
	for i, frame := range fixtures.frames {
		d, err := rt.Route(frame)
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		if d.Landmark != fixtures.labelsA[i] {
			t.Fatalf("input %d: label %d, want %d", i, d.Landmark, fixtures.labelsA[i])
		}
	}
	if st := rt.Stats(); st.Ejections != 0 {
		t.Fatalf("draining replica was ejected: %+v", st)
	}
	rt.CheckHealth()
	if got := rt.HealthyReplicas(); len(got) != 1 || got[0] != "replica-1" {
		t.Fatalf("healthy = %v, want only the non-draining replica", got)
	}
	if st := rt.Stats(); st.Ejections != 0 {
		t.Fatal("drain removal was miscounted as an ejection")
	}
	// Drain ends → health loop puts it back.
	replicas[0].Service().EndDrain()
	rt.CheckHealth()
	if got := rt.HealthyReplicas(); len(got) != 2 {
		t.Fatalf("healthy = %v after drain ended, want both", got)
	}
}

// TestRollingReload pins the reload path: generations advance on every
// replica, skew converges to 1, and the rollout is recorded.
func TestRollingReload(t *testing.T) {
	rt, _ := newLocalFleet(t, 3, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	ro, err := rt.RollingReload(fixtures.artifactB)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Benchmark != "sort" || len(ro.Generations) != 3 || ro.Skew != 1 || len(ro.Failed) != 0 {
		t.Fatalf("rollout %+v, want all 3 replicas at one generation", ro)
	}
	for name, gen := range ro.Generations {
		if gen != 2 {
			t.Fatalf("replica %s at generation %d, want 2", name, gen)
		}
	}
	if skew := rt.GenerationSkew(); skew["sort"] != 1 {
		t.Fatalf("generation skew %v after rollout, want sort=1", skew)
	}
	if rt.Stats().Rollouts != 1 {
		t.Fatal("rollout counter not bumped")
	}
}

// TestRollingReloadSkipsDeadReplica: an unreachable replica is recorded
// and skipped; the healthy fleet converges; skew observably reflects the
// partial rollout once the dead replica returns.
func TestRollingReloadSkipsDeadReplica(t *testing.T) {
	rt, replicas := newLocalFleet(t, 3, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	replicas[2].SetDown(true)
	ro, err := rt.RollingReload(fixtures.artifactB)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.Generations) != 2 || len(ro.Failed) != 1 || ro.Failed[0] != "replica-2" {
		t.Fatalf("rollout %+v, want 2 loaded + replica-2 failed", ro)
	}
	// The dead replica comes back still serving generation 1: skew = 2.
	replicas[2].SetDown(false)
	if skew := rt.GenerationSkew(); skew["sort"] != 2 {
		t.Fatalf("generation skew %v with a stale replica, want sort=2", skew)
	}
	// A repeat rollout converges it.
	if _, err := rt.RollingReload(fixtures.artifactB); err != nil {
		t.Fatal(err)
	}
	if skew := rt.GenerationSkew(); skew["sort"] != 1 {
		t.Fatalf("generation skew %v after repair rollout, want sort=1", skew)
	}
}

// TestRollingReloadRejectsBadArtifact: a bad artifact is rejected by the
// first replica and poisons nothing.
func TestRollingReloadRejectsBadArtifact(t *testing.T) {
	rt, _ := newLocalFleet(t, 2, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	if _, err := rt.RollingReload([]byte("garbage")); err == nil {
		t.Fatal("garbage artifact accepted")
	}
	if _, err := rt.RollingReload([]byte(`{"benchmark": "sort", "nonsense": true}`)); err == nil {
		t.Fatal("structurally bad artifact accepted")
	}
	if skew := rt.GenerationSkew(); skew["sort"] != 1 {
		t.Fatalf("bad artifact disturbed the fleet: skew %v", skew)
	}
	d, err := rt.Route(fixtures.frames[0])
	if err != nil || d.Generation != 1 {
		t.Fatalf("fleet not serving generation 1 after rejected artifacts: d=%+v err=%v", d, err)
	}
}

// TestRollingReloadMixedGenerationDifferential is the generation-skew
// regression at fleet scope: while a rolling reload is mid-flight the
// fleet intentionally serves two generations, and every decision must
// carry a label consistent with the generation it reports — never a
// stale cache entry, never a mix. Clients hammer the fleet (under -race)
// while the rollout walks replica by replica.
func TestRollingReloadMixedGenerationDifferential(t *testing.T) {
	rt, _ := newLocalFleet(t, 3, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())
	// Warm every cache under generation 1 so stale entries exist to leak.
	for _, frame := range fixtures.frames {
		if _, err := rt.Route(frame); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mixed, failed atomic.Uint64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := (c + i) % len(fixtures.frames)
				d, err := rt.Route(fixtures.frames[idx])
				if err != nil {
					failed.Add(1)
					t.Errorf("client %d: %v", c, err)
					continue
				}
				var want int
				switch d.Generation {
				case 1:
					want = fixtures.labelsA[idx]
				case 2:
					want = fixtures.labelsB[idx]
				default:
					t.Errorf("decision reports generation %d", d.Generation)
					continue
				}
				if d.Landmark != want {
					mixed.Add(1)
					t.Errorf("input %d: generation %d served label %d, offline label %d",
						idx, d.Generation, d.Landmark, want)
				}
			}
		}(c)
	}
	time.Sleep(2 * time.Millisecond)
	ro, err := rt.RollingReload(fixtures.artifactB)
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if ro.Skew != 1 || len(ro.Generations) != 3 {
		t.Fatalf("rollout did not converge: %+v", ro)
	}
	if failed.Load() != 0 || mixed.Load() != 0 {
		t.Fatalf("%d failures, %d mixed-generation labels", failed.Load(), mixed.Load())
	}
	// Settled fleet serves generation 2 with model B's labels.
	for i, frame := range fixtures.frames {
		d, err := rt.Route(frame)
		if err != nil {
			t.Fatal(err)
		}
		if d.Generation != 2 || d.Landmark != fixtures.labelsB[i] {
			t.Fatalf("input %d post-rollout: generation %d label %d, want generation 2 label %d",
				i, d.Generation, d.Landmark, fixtures.labelsB[i])
		}
	}
}

// TestRouterDrain pins the router-level graceful drain: new requests are
// refused, and Close completes with all replicas released.
func TestRouterDrain(t *testing.T) {
	rt, _ := newLocalFleet(t, 2, Options{QuantizeBits: 8})
	rt.BeginDrain()
	if _, err := rt.Route(fixtures.frames[0]); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("got %v, want ErrDraining", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestHTTPReplicaFleet runs the same differential through HTTPReplica —
// real inputtuned HTTP surfaces behind httptest — including a mid-run
// server kill (transport-level DownError path) with zero failed requests.
func TestHTTPReplicaFleet(t *testing.T) {
	loadFixtures(t)
	newServer := func() (*httptest.Server, *serve.Service) {
		reg := serve.NewRegistry()
		if err := reg.Register(sortbench.New()); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Load(fixtures.artifactA); err != nil {
			t.Fatal(err)
		}
		svc := serve.NewService(reg, serve.Options{Cache: serve.CacheOptions{Capacity: 4096}})
		return httptest.NewServer(serve.NewHandler(svc)), svc
	}
	srv0, _ := newServer()
	defer srv0.Close()
	srv1, _ := newServer()
	rep0 := NewHTTPReplica("replica-0", srv0.URL, srv0.Client())
	rep1 := NewHTTPReplica("replica-1", srv1.URL, srv1.Client())
	rt := NewRouter([]Replica{rep0, rep1}, Options{QuantizeBits: 8})
	defer rt.Close(context.Background())

	// Health over the wire (ITH1).
	h, err := rep0.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Models) != 1 || h.Models[0].Benchmark != "sort" || h.Models[0].Generation != 1 {
		t.Fatalf("HTTP health = %+v", h)
	}

	for i, frame := range fixtures.frames {
		d, err := rt.Route(frame)
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		if d.Landmark != fixtures.labelsA[i] {
			t.Fatalf("input %d: label %d, want %d", i, d.Landmark, fixtures.labelsA[i])
		}
	}
	// Kill one backing server outright: transport errors, ejection, and
	// still zero failed requests.
	srv1.Close()
	for i, frame := range fixtures.frames {
		d, err := rt.Route(frame)
		if err != nil {
			t.Fatalf("input %d after server kill: %v", i, err)
		}
		if d.Landmark != fixtures.labelsA[i] {
			t.Fatalf("input %d after server kill: label %d, want %d", i, d.Landmark, fixtures.labelsA[i])
		}
	}
	if rt.Stats().Ejections == 0 {
		t.Fatal("dead HTTP replica never ejected")
	}
	// Rolling reload over HTTP skips the dead replica, loads the live one.
	ro, err := rt.RollingReload(fixtures.artifactB)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.Generations) != 1 || ro.Generations["replica-0"] != 2 || len(ro.Failed) != 1 {
		t.Fatalf("HTTP rollout %+v", ro)
	}
	// A malformed frame still comes back as a client fault, not a retry
	// storm: the HTTP replica maps 4xx to RequestError.
	var reqErr *serve.RequestError
	if _, err := rt.Route([]byte("garbage")); !errors.As(err, &reqErr) {
		t.Fatalf("got %v, want RequestError through HTTP", err)
	}
}
