package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestChargeAccumulates(t *testing.T) {
	m := NewMeter()
	m.Charge(Compare, 10)
	m.Charge(Move, 4)
	want := 10*1.0 + 4*1.0
	if got := m.Elapsed(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
	if m.Count(Compare) != 10 || m.Count(Move) != 4 {
		t.Fatalf("counts wrong: %v %v", m.Count(Compare), m.Count(Move))
	}
}

func TestCharge1MatchesChargeN(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	for i := 0; i < 7; i++ {
		a.Charge1(Flop)
	}
	b.Charge(Flop, 7)
	if a.Elapsed() != b.Elapsed() {
		t.Fatalf("Charge1 x7 (%v) != Charge(7) (%v)", a.Elapsed(), b.Elapsed())
	}
}

func TestWeightsApplied(t *testing.T) {
	var w Weights
	w[Compare] = 3
	m := NewMeterWeights(w)
	m.Charge(Compare, 2)
	m.Charge(Move, 100) // zero weight
	if got := m.Elapsed(); got != 6 {
		t.Fatalf("elapsed = %v, want 6", got)
	}
}

func TestSnapshotSince(t *testing.T) {
	m := NewMeter()
	m.Charge(Scan, 10)
	s := m.Snapshot()
	m.Charge(Scan, 6)
	if d := m.Since(s); math.Abs(d-3.0) > 1e-12 { // 6 scans at weight 0.5
		t.Fatalf("Since = %v, want 3", d)
	}
}

func TestReset(t *testing.T) {
	m := NewMeter()
	m.Charge(Branch, 5)
	m.Reset()
	if m.Elapsed() != 0 || m.Count(Branch) != 0 {
		t.Fatal("reset did not clear meter")
	}
	m.Charge(Branch, 1)
	if m.Elapsed() == 0 {
		t.Fatal("weights lost after reset")
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMeter().Charge(Compare, -1)
}

func TestChargeUnits(t *testing.T) {
	m := NewMeter()
	m.ChargeUnits(12.5)
	if m.Elapsed() != 12.5 {
		t.Fatalf("elapsed = %v", m.Elapsed())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative units")
		}
	}()
	m.ChargeUnits(-1)
}

func TestOpString(t *testing.T) {
	names := map[Op]string{Compare: "compare", Move: "move", Flop: "flop",
		Scan: "scan", Branch: "branch", Alloc: "alloc"}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	if !strings.HasPrefix(Op(99).String(), "op(") {
		t.Fatal("unknown op string")
	}
}

func TestMeterStringMentionsUnits(t *testing.T) {
	m := NewMeter()
	m.Charge(Compare, 3)
	if s := m.String(); !strings.Contains(s, "cmp=3") {
		t.Fatalf("String() = %q", s)
	}
}

// Virtual time must be additive: charging in two meters and summing equals
// charging everything in one meter.
func TestAdditivityProperty(t *testing.T) {
	check := func(a, b uint8) bool {
		m1, m2, m3 := NewMeter(), NewMeter(), NewMeter()
		m1.Charge(Compare, int(a))
		m2.Charge(Compare, int(b))
		m3.Charge(Compare, int(a)+int(b))
		return math.Abs((m1.Elapsed()+m2.Elapsed())-m3.Elapsed()) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWallClockMeasuresSomething(t *testing.T) {
	d := WallClock(func() {
		s := 0
		for i := 0; i < 1000; i++ {
			s += i
		}
		_ = s
	})
	if d < 0 {
		t.Fatalf("negative duration %v", d)
	}
}
