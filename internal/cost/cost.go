// Package cost implements the deterministic virtual-time model that stands
// in for the paper's wall-clock measurements (DESIGN.md substitution 1).
//
// Every algorithm in the benchmark suite charges abstract operations —
// comparisons, element moves, floating-point operations, bytes scanned — to
// a Meter. The weighted sum of those charges is the algorithm's "execution
// time" in abstract time units. Because relative operation counts are what
// drive relative runtimes on real machines, virtual time preserves the
// paper's qualitative results (which algorithmic configuration wins on
// which input, and by roughly what factor) while making the entire training
// and evaluation pipeline deterministic and CI-fast.
package cost

import (
	"fmt"
	"time"
)

// Op identifies a class of abstract machine operation.
type Op int

const (
	// Compare is one key comparison.
	Compare Op = iota
	// Move is one element copy or swap half.
	Move
	// Flop is one floating-point add/mul pair.
	Flop
	// Scan is one element read during analysis (feature extraction,
	// histogramming, etc.).
	Scan
	// Branch is one data-dependent branch in control-heavy code.
	Branch
	// Alloc is one element of allocated working storage.
	Alloc
	numOps
)

// String returns the mnemonic name of the op class.
func (o Op) String() string {
	switch o {
	case Compare:
		return "compare"
	case Move:
		return "move"
	case Flop:
		return "flop"
	case Scan:
		return "scan"
	case Branch:
		return "branch"
	case Alloc:
		return "alloc"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Weights maps each op class to its cost in abstract time units. The
// defaults approximate relative costs on a cache-resident workload; the
// exact values only scale results and do not change orderings within an
// op-homogeneous algorithm family.
type Weights [numOps]float64

// DefaultWeights returns the standard weight vector. All default weights
// are dyadic rationals (k/2^m), so weighted totals are exact in binary
// floating point at any realistic op count: Elapsed is the same value
// whether charges arrive one at a time or in bulk, which is what lets hot
// loops batch-charge without perturbing results.
func DefaultWeights() Weights {
	return Weights{
		Compare: 1.0,
		Move:    1.0,
		Flop:    1.5,
		Scan:    0.5,
		Branch:  0.75,
		Alloc:   0.25,
	}
}

// Meter accumulates abstract operation charges. The zero value uses all-zero
// weights; construct with NewMeter. Meter is not safe for concurrent use;
// each worker goroutine gets its own.
//
// Charges are recorded as integer operation counts only; the weighted unit
// total is computed on demand by Elapsed. This keeps the charge path — the
// single hottest instruction stream of the whole pipeline — to one integer
// increment, and makes the reported time an exact function of the final
// counts, independent of the order in which charges arrived.
type Meter struct {
	weights Weights
	counts  [numOps]uint64
	// units holds only raw ChargeUnits additions (pre-weighted charges
	// from child meters); weighted op charges live in counts.
	units float64
}

// NewMeter returns a Meter with the default weights.
func NewMeter() *Meter { return NewMeterWeights(DefaultWeights()) }

// NewMeterWeights returns a Meter with explicit weights.
func NewMeterWeights(w Weights) *Meter { return &Meter{weights: w} }

// Charge adds n operations of class op. Negative n panics.
func (m *Meter) Charge(op Op, n int) {
	if n < 0 {
		panic("cost: negative charge")
	}
	m.counts[op] += uint64(n)
}

// Charge1 adds a single operation of class op.
func (m *Meter) Charge1(op Op) {
	m.counts[op]++
}

// ChargeUnits adds raw pre-weighted time units (used by composite
// sub-operations whose cost was measured on a child meter).
func (m *Meter) ChargeUnits(u float64) {
	if u < 0 {
		panic("cost: negative units")
	}
	m.units += u
}

// Elapsed returns accumulated virtual time in abstract units.
func (m *Meter) Elapsed() float64 {
	u := m.units
	for op, n := range m.counts {
		if n != 0 {
			u += m.weights[op] * float64(n)
		}
	}
	return u
}

// Count returns the number of charged operations of class op.
func (m *Meter) Count(op Op) uint64 { return m.counts[op] }

// Reset zeroes all counters, keeping the weights.
func (m *Meter) Reset() {
	m.counts = [numOps]uint64{}
	m.units = 0
}

// Snapshot returns the current elapsed units; Since subtracts a snapshot,
// giving the units consumed by an enclosed region.
func (m *Meter) Snapshot() float64 { return m.Elapsed() }

// Since returns the units elapsed since the snapshot was taken.
func (m *Meter) Since(snapshot float64) float64 { return m.Elapsed() - snapshot }

// String summarises the meter for debugging.
func (m *Meter) String() string {
	return fmt.Sprintf("cost.Meter{units=%.1f cmp=%d mov=%d flop=%d scan=%d br=%d alloc=%d}",
		m.Elapsed(), m.counts[Compare], m.counts[Move], m.counts[Flop],
		m.counts[Scan], m.counts[Branch], m.counts[Alloc])
}

// WallClock measures the real elapsed time of fn. It exists for
// calibrating the virtual-time weights against hardware (run an algorithm
// under both a Meter and WallClock and compare ratios); the learning
// pipeline itself never uses it, keeping experiments deterministic.
func WallClock(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
