package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/core"
	"inputtune/internal/engine"
)

// postWire sends one classify request in the given wire format and
// returns the decoded Decision.
func postWire(t *testing.T, url string, wire Wire, benchmark string, in *sortbench.List) (*http.Response, Decision) {
	t.Helper()
	var body bytes.Buffer
	if wire == WireBinary {
		if err := EncodeBinaryRequest(&body, benchmark, in); err != nil {
			t.Fatal(err)
		}
	} else {
		codec, err := LookupCodec(benchmark)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := codec.EncodeJSON(in)
		if err != nil {
			t.Fatal(err)
		}
		env, _ := json.Marshal(classifyRequest{Benchmark: benchmark, Input: raw})
		body.Write(env)
	}
	resp, err := http.Post(url+"/v1/classify", wire.ContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d Decision
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &d); err != nil {
			t.Fatalf("decision body %s: %v", data, err)
		}
	}
	return resp, d
}

// TestServedLabelsBitIdenticalAcrossWires is the tentpole acceptance
// invariant: for every input, the offline classification, the JSON-served
// label and the binary-served label are the same number, and the charged
// feature units agree bit-for-bit.
func TestServedLabelsBitIdenticalAcrossWires(t *testing.T) {
	srv, _ := newTestServer(t)
	want := offlineLabels(testModels.sortModel, testModels.sortInputs)
	for i, in := range testModels.sortInputs {
		l := in.(*sortbench.List)
		units := testModels.sortModel.Infer(in).FeatureUnits
		for _, wire := range []Wire{WireJSON, WireBinary} {
			resp, d := postWire(t, srv.URL, wire, "sort", l)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("input %d over %s: status %d", i, wire, resp.StatusCode)
			}
			if d.Landmark != want[i] {
				t.Fatalf("input %d over %s: served %d, offline %d", i, wire, d.Landmark, want[i])
			}
			if d.FeatureUnits != units {
				t.Fatalf("input %d over %s: units %v, offline %v", i, wire, d.FeatureUnits, units)
			}
		}
	}
}

// TestWireRestriction pins the -wire deployment knob: a JSON-only service
// refuses binary frames with 415 and vice versa, and healthz reports the
// accepted set.
func TestWireRestriction(t *testing.T) {
	trainTestModels(t)
	for _, tc := range []struct {
		accept Wire
		refuse Wire
	}{
		{WireJSON, WireBinary},
		{WireBinary, WireJSON},
	} {
		reg := NewRegistry()
		if err := reg.Register(sortbench.New()); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Load(testModels.sortArtifct); err != nil {
			t.Fatal(err)
		}
		svc := NewService(reg, Options{Wires: []Wire{tc.accept}})
		srv := httptest.NewServer(NewHandler(svc))
		in := testModels.sortInputs[0].(*sortbench.List)

		resp, _ := postWire(t, srv.URL, tc.accept, "sort", in)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("accepted wire %s got %d", tc.accept, resp.StatusCode)
		}
		resp, _ = postWire(t, srv.URL, tc.refuse, "sort", in)
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("refused wire %s got %d, want 415", tc.refuse, resp.StatusCode)
		}

		hresp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h healthResponse
		if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if len(h.Wires) != 1 || h.Wires[0] != tc.accept.String() {
			t.Fatalf("healthz wires = %v, want [%s]", h.Wires, tc.accept)
		}
		srv.Close()
		svc.Close()
	}
}

// TestBinaryDecodeLargeVector round-trips a vector far past the
// decoder's pre-allocation guard (vecPreAlloc), exercising the pooled
// re-growth path end to end with exact value equality.
func TestBinaryDecodeLargeVector(t *testing.T) {
	data := make([]float64, 3*vecPreAlloc+17)
	for i := range data {
		data[i] = float64(i%977) * 1.5
	}
	in := &sortbench.List{Data: data}
	var buf bytes.Buffer
	if err := EncodeBinaryRequest(&buf, "sort", in); err != nil {
		t.Fatal(err)
	}
	codec, back, err := DecodeBinaryRequest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bl := back.(*sortbench.List)
	if len(bl.Data) != len(data) {
		t.Fatalf("decoded %d values, want %d", len(bl.Data), len(data))
	}
	for i := range data {
		if bl.Data[i] != data[i] {
			t.Fatalf("value %d corrupted across pooled growth: %v vs %v", i, bl.Data[i], data[i])
		}
	}
	codec.Release(back)
}

func TestQuantizeRow(t *testing.T) {
	// 0 bits is the identity — the default path's bit-identical guarantee.
	vals := []float64{1.0000000001, -3.7, 0, math.Pi}
	orig := append([]float64(nil), vals...)
	quantizeRow(0, vals)
	for i := range vals {
		if math.Float64bits(vals[i]) != math.Float64bits(orig[i]) {
			t.Fatalf("0-bit quantization changed value %d", i)
		}
	}
	// With b bits, values differing only below bit b collapse.
	a, b := math.Pi, math.Float64frombits(math.Float64bits(math.Pi)|((1<<17)-1))
	if a == b {
		t.Fatal("test values should differ")
	}
	pair := []float64{a, b}
	quantizeRow(20, pair)
	if pair[0] != pair[1] {
		t.Fatalf("20-bit quantization did not collapse a 17-low-bit difference: %x %x",
			math.Float64bits(pair[0]), math.Float64bits(pair[1]))
	}
	// ...but not values differing above it.
	pair = []float64{1.0, 2.0}
	quantizeRow(20, pair)
	if pair[0] == pair[1] {
		t.Fatal("quantization collapsed distinct magnitudes")
	}
	if clampQuantizeBits(99) != maxQuantizeBits || clampQuantizeBits(-3) != 0 {
		t.Fatal("clampQuantizeBits out of range")
	}
}

// TestQuantizedKeyCollapsesNearDuplicateRows pins the key semantics the
// opt-in buys: two feature rows differing only below the truncation point
// produce one fingerprint once quantized, while exact keys keep them
// distinct (the default's bit-identical guarantee).
func TestQuantizedKeyCollapsesNearDuplicateRows(t *testing.T) {
	rowA := []float64{0.73125, 12.5, -3.0009765625}
	rowB := make([]float64, len(rowA))
	for i, v := range rowA {
		rowB[i] = math.Float64frombits(math.Float64bits(v) ^ 0x3FF) // low 10 bits
	}
	keyOf := func(bits int, row []float64) string {
		vals := append([]float64(nil), row...)
		quantizeRow(bits, vals)
		return engine.Fingerprint([]uint64{1}, vals)
	}
	if keyOf(0, rowA) == keyOf(0, rowB) {
		t.Fatal("exact keys collapsed rows with different bits")
	}
	if keyOf(16, rowA) != keyOf(16, rowB) {
		t.Fatal("16-bit quantized keys kept near-duplicate rows distinct")
	}
}

// TestQuantizedServiceStillServesAndHits opts a live service into the
// quantized key: duplicate traffic must hit (quantization can never split
// identical inputs) and every label must still match the offline
// classification for the inputs actually sent — the opt-in relaxes the
// guarantee across near-duplicates, not for exact re-sends.
func TestQuantizedServiceStillServesAndHits(t *testing.T) {
	trainTestModels(t)
	want := offlineLabels(testModels.sortModel, testModels.sortInputs)
	reg := NewRegistry()
	if _, err := reg.Install(testModels.sortModel); err != nil {
		t.Fatal(err)
	}
	svc := NewService(reg, Options{Cache: CacheOptions{QuantizeBits: 16}})
	for pass := 0; pass < 2; pass++ {
		for i, in := range testModels.sortInputs {
			d, err := svc.Classify("sort", in)
			if err != nil {
				t.Fatal(err)
			}
			if d.Landmark != want[i] {
				t.Fatalf("pass %d input %d: quantized service served %d, offline %d",
					pass, i, d.Landmark, want[i])
			}
		}
	}
	prod := testModels.sortModel.Production
	if prod.Kind == core.SubsetTree && len(prod.Static) > 0 {
		if stats := svc.CacheStats(); stats.Hits == 0 {
			t.Fatalf("duplicate traffic produced no hits under quantization: %+v", stats)
		}
	}
}
