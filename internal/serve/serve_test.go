package serve

import (
	"bytes"
	"sync"
	"testing"

	"inputtune/internal/benchmarks/binpack"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/core"
)

// Shared tiny models: trained once per test binary, reused by every test.
// Scale is irrelevant — these tests exercise the serving path, not model
// quality.
var testModels struct {
	once        sync.Once
	sortModel   *core.Model
	sortInputs  []core.Input
	packModel   *core.Model
	packInputs  []core.Input
	sortArtifct []byte
}

func trainTestModels(t *testing.T) {
	t.Helper()
	testModels.once.Do(func() {
		opts := core.Options{K1: 4, Seed: 19, TunerPopulation: 6, TunerGenerations: 4, Parallel: true}

		lists := sortbench.GenerateMix(sortbench.MixOptions{Count: 48, Seed: 5, MaxSize: 512})
		sortIn := make([]core.Input, len(lists))
		for i, l := range lists {
			sortIn[i] = l
		}
		testModels.sortInputs = sortIn
		testModels.sortModel = core.TrainModel(sortbench.New(), sortIn, opts)

		items := binpack.GenerateMix(binpack.MixOptions{Count: 48, Seed: 5})
		packIn := make([]core.Input, len(items))
		for i, it := range items {
			packIn[i] = it
		}
		testModels.packInputs = packIn
		testModels.packModel = core.TrainModel(binpack.New(), packIn, opts)

		var buf bytes.Buffer
		if err := core.SaveModel(testModels.sortModel, &buf); err != nil {
			panic(err)
		}
		testModels.sortArtifct = buf.Bytes()
	})
}

// sortServiceRegistry returns a registry with a fresh sort program whose
// model was loaded through the artifact path (the production wire).
func sortServiceRegistry(t *testing.T) *Registry {
	t.Helper()
	trainTestModels(t)
	reg := NewRegistry()
	if err := reg.Register(sortbench.New()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load(testModels.sortArtifct); err != nil {
		t.Fatalf("loading sort artifact: %v", err)
	}
	return reg
}

// offlineLabels computes the ground-truth classification of every input
// through the offline entry point.
func offlineLabels(m *core.Model, inputs []core.Input) []int {
	set := m.Program.Features()
	out := make([]int, len(inputs))
	for i, in := range inputs {
		out[i] = m.Production.ClassifyInput(set, in, nil)
	}
	return out
}
