package serve

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"inputtune/internal/benchmarks/sortbench"
)

func TestRegistryUnknownAndUnloaded(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.Get("sort"); ok {
		t.Fatal("Get on empty registry succeeded")
	}
	if err := reg.Register(sortbench.New()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(sortbench.New()); err == nil {
		t.Fatal("duplicate Register accepted")
	}
	// Registered but nothing loaded yet: requests must fail cleanly.
	if _, ok := reg.Get("sort"); ok {
		t.Fatal("Get before any Load succeeded")
	}
	if len(reg.Snapshots()) != 0 {
		t.Fatal("Snapshots lists an unloaded benchmark")
	}
	if got := reg.Names(); len(got) != 1 || got[0] != "sort" {
		t.Fatalf("Names = %v", got)
	}
}

func TestRegistryLoadRoutesByArtifact(t *testing.T) {
	reg := sortServiceRegistry(t)
	snap, ok := reg.Get("sort")
	if !ok {
		t.Fatal("no snapshot after Load")
	}
	if snap.Benchmark != "sort" || snap.Generation == 0 || snap.ArtifactBytes == 0 {
		t.Fatalf("snapshot %+v malformed", snap)
	}
	// Reload bumps the generation and swaps the pointer.
	snap2, err := reg.Load(testModels.sortArtifct)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Generation <= snap.Generation {
		t.Fatalf("generation did not advance: %d -> %d", snap.Generation, snap2.Generation)
	}
	cur, _ := reg.Get("sort")
	if cur != snap2 {
		t.Fatal("Get does not observe the reloaded snapshot")
	}
}

func TestRegistryBadArtifactKeepsOldModelLive(t *testing.T) {
	reg := sortServiceRegistry(t)
	before, _ := reg.Get("sort")

	bad := [][]byte{
		[]byte("not json at all"),
		[]byte(`{"no_benchmark": true}`),
		[]byte(`{"benchmark": "nosuch", "version": 1}`),
		// Right benchmark, unsupported version: LoadModel must reject.
		bytes.Replace(testModels.sortArtifct, []byte(`"version": 1`), []byte(`"version": 99`), 1),
		// Truncated artifact.
		testModels.sortArtifct[:len(testModels.sortArtifct)/2],
	}
	for i, artifact := range bad {
		if _, err := reg.Load(artifact); err == nil {
			t.Fatalf("bad artifact %d accepted", i)
		}
	}
	after, _ := reg.Get("sort")
	if after != before {
		t.Fatal("a rejected artifact displaced the live model")
	}
	if after.Generation != before.Generation {
		t.Fatal("a rejected artifact advanced the generation")
	}
}

func TestRegistryVersionRejectMessage(t *testing.T) {
	reg := sortServiceRegistry(t)
	mangled := bytes.Replace(testModels.sortArtifct, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	_, err := reg.Load(mangled)
	if err == nil || !strings.Contains(err.Error(), "rejecting artifact") {
		t.Fatalf("expected a rejection error, got %v", err)
	}
}

// TestHotReloadUnderConcurrentRequests swaps the model repeatedly while
// readers hammer classification: zero failed requests and every label
// bit-identical to the offline answer, across all generations. This is the
// atomic.Pointer contract the registry exists for.
func TestHotReloadUnderConcurrentRequests(t *testing.T) {
	reg := sortServiceRegistry(t)
	svc := NewService(reg, Options{})
	want := offlineLabels(testModels.sortModel, testModels.sortInputs)

	const readers = 8
	const rounds = 40
	var failures atomic.Uint64
	var wrong atomic.Uint64
	var readersWg, reloaderWg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < readers; g++ {
		readersWg.Add(1)
		go func() {
			defer readersWg.Done()
			for r := 0; r < rounds; r++ {
				for i, in := range testModels.sortInputs {
					d, err := svc.Classify("sort", in)
					if err != nil {
						failures.Add(1)
						return
					}
					if d.Landmark != want[i] {
						wrong.Add(1)
						return
					}
				}
			}
		}()
	}
	// Reloader: keep swapping (valid and invalid artifacts interleaved)
	// until the readers finish — but never fewer than two live swaps, so
	// the generation assertion below cannot flake when a loaded 1-CPU
	// runner lets the readers drain before this goroutine is scheduled.
	reloaderWg.Add(1)
	go func() {
		defer reloaderWg.Done()
		bad := []byte("junk")
		for i := 0; ; i++ {
			if i >= 3 {
				select {
				case <-stop:
					return
				default:
				}
			}
			if i%3 == 2 {
				if _, err := reg.Load(bad); err == nil {
					failures.Add(1)
					return
				}
			} else if _, err := reg.Load(testModels.sortArtifct); err != nil {
				failures.Add(1)
				return
			}
		}
	}()

	readersWg.Wait()
	close(stop)
	reloaderWg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests/reloads failed during hot reload", n)
	}
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d requests got a wrong label during hot reload", n)
	}
	snap, _ := reg.Get("sort")
	if snap.Generation < 2 {
		t.Fatalf("expected multiple reload generations, at %d", snap.Generation)
	}
}
