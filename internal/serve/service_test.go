package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"inputtune/internal/benchmarks/binpack"
	"inputtune/internal/core"
)

// TestServedLabelsBitIdenticalCacheOnOff is the acceptance invariant:
// served classifications match offline ClassifyInput exactly, with the
// decision cache on and off, on first sight and on cache hits, for both a
// time-only and a variable-accuracy model.
func TestServedLabelsBitIdenticalCacheOnOff(t *testing.T) {
	trainTestModels(t)
	cases := []struct {
		name   string
		model  *core.Model
		inputs []core.Input
	}{
		{"sort", testModels.sortModel, testModels.sortInputs},
		{"binpacking", testModels.packModel, testModels.packInputs},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := offlineLabels(tc.model, tc.inputs)
			wantUnits := make([]float64, len(tc.inputs))
			for i, in := range tc.inputs {
				wantUnits[i] = tc.model.Infer(in).FeatureUnits
			}
			for _, disable := range []bool{false, true} {
				reg := NewRegistry()
				if _, err := reg.Install(tc.model); err != nil {
					t.Fatal(err)
				}
				svc := NewService(reg, Options{Cache: CacheOptions{Disable: disable}})
				// Two passes: the second hits the cache (when enabled and
				// the production classifier is cacheable).
				for pass := 0; pass < 2; pass++ {
					for i, in := range tc.inputs {
						d, err := svc.Classify(tc.name, in)
						if err != nil {
							t.Fatal(err)
						}
						if d.Landmark != want[i] {
							t.Fatalf("cacheDisabled=%v pass %d input %d: served %d, offline %d",
								disable, pass, i, d.Landmark, want[i])
						}
						if d.FeatureUnits != wantUnits[i] {
							t.Fatalf("cacheDisabled=%v pass %d input %d: served units %v, offline %v",
								disable, pass, i, d.FeatureUnits, wantUnits[i])
						}
						if d.Config != tc.model.Landmarks[want[i]] {
							t.Fatalf("decision config is not the selected landmark")
						}
					}
				}
				stats := svc.CacheStats()
				if disable && stats.Hits+stats.Misses != 0 {
					t.Fatalf("disabled cache recorded traffic: %+v", stats)
				}
				if !disable && tc.model.Production.Kind == core.SubsetTree {
					if stats.Hits == 0 {
						t.Fatalf("second pass produced no cache hits: %+v", stats)
					}
				}
			}
		})
	}
}

func TestServiceUnknownBenchmark(t *testing.T) {
	reg := sortServiceRegistry(t)
	svc := NewService(reg, Options{})
	if _, err := svc.Classify("nosuch", testModels.sortInputs[0]); err == nil {
		t.Fatal("classify on unknown benchmark succeeded")
	}
	// Registered but unloaded benchmark: same clean failure.
	if err := reg.Register(binpack.New()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Classify("binpacking", testModels.packInputs[0]); err == nil {
		t.Fatal("classify before any model load succeeded")
	}
}

// TestBatcherParityAndShutdown routes traffic through the sharded
// batching layer and checks labels stay bit-identical, then verifies an
// orderly shutdown.
func TestBatcherParityAndShutdown(t *testing.T) {
	reg := sortServiceRegistry(t)
	svc := NewService(reg, Options{Shards: 2, MaxBatch: 4})
	want := offlineLabels(testModels.sortModel, testModels.sortInputs)

	const goroutines = 12
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, in := range testModels.sortInputs {
				d, err := svc.Classify("sort", in)
				if err != nil {
					errCh <- err
					return
				}
				if d.Landmark != want[i] {
					errCh <- fmt.Errorf("input %d: batched %d, offline %d", i, d.Landmark, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := svc.Classify("sort", testModels.sortInputs[0]); err == nil {
		t.Fatal("classify after Close succeeded")
	}
	svc.Close() // idempotent
}

func TestMetricsSnapshotCounts(t *testing.T) {
	reg := sortServiceRegistry(t)
	svc := NewService(reg, Options{})
	n := 10
	for i := 0; i < n; i++ {
		if _, err := svc.Classify("sort", testModels.sortInputs[i]); err != nil {
			t.Fatal(err)
		}
	}
	svc.Classify("nosuch", testModels.sortInputs[0]) // one error
	if _, err := svc.Load(testModels.sortArtifct); err != nil {
		t.Fatal(err)
	}
	snap := svc.MetricsSnapshot()
	if snap.Requests != uint64(n+1) || snap.Errors != 1 || snap.Reloads != 1 {
		t.Fatalf("snapshot counters off: %+v", snap)
	}
	found := false
	for _, b := range snap.Benchmarks {
		if b.Benchmark == "sort" {
			found = true
			if b.Requests != uint64(n) || b.Generation == 0 {
				t.Fatalf("sort bench snapshot off: %+v", b)
			}
		}
	}
	if !found {
		t.Fatal("no per-benchmark snapshot for sort")
	}
	if snap.P50Micros <= 0 || snap.P99Micros < snap.P50Micros {
		t.Fatalf("latency quantiles malformed: p50=%v p99=%v", snap.P50Micros, snap.P99Micros)
	}
	text := snap.RenderPrometheus()
	for _, needle := range []string{
		"inputtuned_requests_total 11",
		"inputtuned_request_errors_total 1",
		"inputtuned_reloads_total 1",
		"inputtuned_model_generation{benchmark=\"sort\"}",
	} {
		if !strings.Contains(text, needle) {
			t.Fatalf("prometheus text missing %q:\n%s", needle, text)
		}
	}
}
