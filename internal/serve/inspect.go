package serve

import (
	"encoding/binary"
	"fmt"
)

// InspectBinaryFrame walks one complete ITW1 frame held in buf without
// decoding it into an input: it validates the header, resolves the
// benchmark's codec, checks that the field sequence matches the schema
// exactly (including the trailing-byte rule), and returns the benchmark
// name plus a routing fingerprint over the payload.
//
// The fingerprint is FNV-1a 64 over the benchmark name, the raw int
// words, and the float/vector words with their low `bits` mantissa bits
// zeroed — the same quantization CacheOptions.QuantizeBits applies to
// decision-cache keys. A fleet router shards on this value: two
// near-duplicate inputs whose features would collide in a replica's
// quantized decision cache also collide here, so they land on the same
// replica and the second one finds the cache warm. The router never
// extracts model features — the fingerprint is a pure function of the
// frame bytes, so routing is stable across hot reloads that change the
// production classifier's feature subset.
//
// A leading ITX1 trace-context extension is peeled (with strict
// validation) before the walk, and the fingerprint covers only the inner
// ITW1 frame — enabling tracing never changes which replica a request
// shards to.
//
// buf must hold exactly one frame; the walk never allocates.
func InspectBinaryFrame(buf []byte, bits int) (benchmark string, fingerprint uint64, err error) {
	if _, rest, ok, perr := PeelTraceContext(buf); perr != nil {
		return "", 0, perr
	} else if ok {
		buf = rest
	}
	if len(buf) < 5 {
		return "", 0, &RequestError{Err: fmt.Errorf("serve: binary header: frame of %d bytes too short", len(buf))}
	}
	if [4]byte(buf[:4]) != wireMagic {
		return "", 0, &RequestError{Err: fmt.Errorf("serve: bad binary magic %q", buf[:4])}
	}
	n := int(buf[4])
	if n == 0 || n > maxWireName {
		return "", 0, &RequestError{Err: fmt.Errorf("serve: binary name length %d out of range", n)}
	}
	if len(buf) < 5+n {
		return "", 0, &RequestError{Err: fmt.Errorf("serve: binary name: frame truncated")}
	}
	name := string(buf[5 : 5+n])
	c, err := LookupCodec(name)
	if err != nil {
		return "", 0, &RequestError{Err: err}
	}

	// FNV-1a 64 (inlined: hash/fnv would force an interface allocation).
	const offset64, prime64 = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	mask := ^uint64(0) << uint(clampQuantizeBits(bits))

	rest := buf[5+n:]
	word := func() (uint64, bool) {
		if len(rest) < 8 {
			return 0, false
		}
		u := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		return u, true
	}
	mix := func(u uint64) {
		for s := 0; s < 64; s += 8 {
			h = (h ^ (u >> uint(s) & 0xff)) * prime64
		}
	}
	sch := c.sch
	for _, f := range sch.intFields {
		u, ok := word()
		if !ok {
			return name, 0, &RequestError{Err: fmt.Errorf("serve: binary field %q: truncated frame", f)}
		}
		mix(u)
	}
	for _, f := range sch.floatFields {
		u, ok := word()
		if !ok {
			return name, 0, &RequestError{Err: fmt.Errorf("serve: binary field %q: truncated frame", f)}
		}
		mix(u & mask)
	}
	for _, f := range sch.vecFields {
		count, ok := word()
		if !ok {
			return name, 0, &RequestError{Err: fmt.Errorf("serve: binary field %q: truncated frame", f)}
		}
		if count > maxVecElems {
			return name, 0, &RequestError{Err: fmt.Errorf("serve: binary field %q: vector of %d elements exceeds the request limit", f, count)}
		}
		if uint64(len(rest)) < count*8 {
			return name, 0, &RequestError{Err: fmt.Errorf("serve: binary field %q: truncated frame", f)}
		}
		mix(count)
		for i := uint64(0); i < count; i++ {
			mix(binary.LittleEndian.Uint64(rest[i*8:]) & mask)
		}
		rest = rest[count*8:]
	}
	if len(rest) != 0 {
		return name, 0, &RequestError{Err: fmt.Errorf("serve: %d trailing bytes after the last field", len(rest))}
	}
	return name, h, nil
}
