package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"inputtune/internal/benchmarks/sortbench"
)

// The wire codecs face arbitrary network bytes; these fuzz targets pin the
// two properties the stack promises: no input can panic or blow up
// allocation (declared vector counts are validated before trust), and
// every value a codec accepts round-trips losslessly. `go test ./...`
// runs the seed corpus on every CI pass; `go test -fuzz` explores further.

// fuzzSeedFrames returns one valid binary frame per benchmark plus a few
// deliberately broken ones.
func fuzzSeedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	for name, in := range sampleInputs() {
		var buf bytes.Buffer
		if err := EncodeBinaryRequest(&buf, name, in); err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	seeds = append(seeds,
		nil,
		wireMagic[:],
		append(append([]byte{}, wireMagic[:]...), 0),
		func() []byte { // huge declared count
			var b bytes.Buffer
			b.Write(wireMagic[:])
			b.WriteByte(4)
			b.WriteString("sort")
			var w [8]byte
			binary.LittleEndian.PutUint64(w[:], math.MaxUint64)
			b.Write(w[:])
			return b.Bytes()
		}(),
	)
	return seeds
}

// FuzzDecodeBinaryRequest feeds arbitrary bytes to the framed binary
// decoder. Whatever survives decoding must re-encode and re-decode to
// bit-identical feature content (the round-trip half of the contract).
func FuzzDecodeBinaryRequest(f *testing.F) {
	for _, s := range fuzzSeedFrames(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		codec, in, err := DecodeBinaryRequest(bytes.NewReader(data))
		if err != nil {
			return // rejected, and without panicking: fine
		}
		var buf bytes.Buffer
		if err := codec.Encode(WireBinary, &buf, in); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		_, back, err := DecodeBinaryRequest(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		set := codec.NewProgram().Features()
		v1, _ := set.ExtractAll(in)
		v2, _ := set.ExtractAll(back)
		for i := range v1 {
			b1, b2 := math.Float64bits(v1[i]), math.Float64bits(v2[i])
			if b1 != b2 {
				t.Fatalf("feature %d changed across binary round trip: %x vs %x", i, b1, b2)
			}
		}
		codec.Release(in)
		codec.Release(back)
	})
}

// FuzzDecodeJSONInputs feeds arbitrary bytes to every benchmark's JSON
// input decoder (the payload under the envelope): decoding may fail, but
// must never panic, and accepted inputs must round-trip.
func FuzzDecodeJSONInputs(f *testing.F) {
	f.Add([]byte(`{"data": [3, 1, 2]}`))
	f.Add([]byte(`{"x": [1, 2], "y": [3, 4]}`))
	f.Add([]byte(`{"sizes": [0.5, 0.25]}`))
	f.Add([]byte(`{"rows": 2, "cols": 2, "data": [1, 2, 3, 4]}`))
	f.Add([]byte(`{"n": 1, "f": [0.5]}`))
	f.Add([]byte(`{"n": 1, "f": [1], "a": [2], "c": 0.5}`))
	f.Add([]byte(`{"n": 1e99}`))
	f.Add([]byte(`{"data": "not an array"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		for name := range codecByName {
			codec := codecByName[name]
			in, err := codec.DecodeJSON(data)
			if err != nil {
				continue
			}
			reencoded, err := codec.EncodeJSON(in)
			if err != nil {
				t.Fatalf("%s: accepted input failed to re-encode: %v", name, err)
			}
			back, err := codec.DecodeJSON(reencoded)
			if err != nil {
				t.Fatalf("%s: re-encoded input failed to decode: %v", name, err)
			}
			set := codec.NewProgram().Features()
			v1, _ := set.ExtractAll(in)
			v2, _ := set.ExtractAll(back)
			for i := range v1 {
				if math.Float64bits(v1[i]) != math.Float64bits(v2[i]) {
					t.Fatalf("%s: feature %d changed across JSON round trip", name, i)
				}
			}
		}
	})
}

// FuzzSortListBothWires generates sort inputs from raw bytes and checks
// the strongest cross-format property: the JSON wire, the binary wire and
// the original input all extract bit-identical features.
func FuzzSortListBothWires(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		vals := make([]float64, 0, len(data)/8)
		for i := 0; i+8 <= len(data); i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				// JSON cannot carry these; the feature extractors never
				// see them from either wire.
				return
			}
			vals = append(vals, v)
		}
		in := &sortbench.List{Data: vals}
		codec, err := LookupCodec("sort")
		if err != nil {
			t.Fatal(err)
		}
		set := codec.NewProgram().Features()
		want, _ := set.ExtractAll(in)
		for _, wire := range []Wire{WireJSON, WireBinary} {
			var buf bytes.Buffer
			if err := codec.Encode(wire, &buf, in); err != nil {
				t.Fatalf("%s encode: %v", wire, err)
			}
			back, err := codec.Decode(wire, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s decode: %v", wire, err)
			}
			got, _ := set.ExtractAll(back)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("%s: feature %d diverged", wire, i)
				}
			}
			codec.Release(back)
		}
	})
}
