package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"

	"inputtune/internal/benchmarks/sortbench"
)

// The wire codecs face arbitrary network bytes; these fuzz targets pin the
// two properties the stack promises: no input can panic or blow up
// allocation (declared vector counts are validated before trust), and
// every value a codec accepts round-trips losslessly. `go test ./...`
// runs the seed corpus on every CI pass; `go test -fuzz` explores further.

// fuzzSeedFrames returns one valid binary frame per benchmark plus a few
// deliberately broken ones.
func fuzzSeedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	for name, in := range sampleInputs() {
		var buf bytes.Buffer
		if err := EncodeBinaryRequest(&buf, name, in); err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	seeds = append(seeds,
		nil,
		wireMagic[:],
		append(append([]byte{}, wireMagic[:]...), 0),
		func() []byte { // huge declared count
			var b bytes.Buffer
			b.Write(wireMagic[:])
			b.WriteByte(4)
			b.WriteString("sort")
			var w [8]byte
			binary.LittleEndian.PutUint64(w[:], math.MaxUint64)
			b.Write(w[:])
			return b.Bytes()
		}(),
	)
	return seeds
}

// FuzzDecodeBinaryRequest feeds arbitrary bytes to the framed binary
// decoder. Whatever survives decoding must re-encode and re-decode to
// bit-identical feature content (the round-trip half of the contract).
func FuzzDecodeBinaryRequest(f *testing.F) {
	for _, s := range fuzzSeedFrames(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		codec, in, err := DecodeBinaryRequest(bytes.NewReader(data))
		if err != nil {
			return // rejected, and without panicking: fine
		}
		var buf bytes.Buffer
		if err := codec.Encode(WireBinary, &buf, in); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		_, back, err := DecodeBinaryRequest(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		set := codec.NewProgram().Features()
		v1, _ := set.ExtractAll(in)
		v2, _ := set.ExtractAll(back)
		for i := range v1 {
			b1, b2 := math.Float64bits(v1[i]), math.Float64bits(v2[i])
			if b1 != b2 {
				t.Fatalf("feature %d changed across binary round trip: %x vs %x", i, b1, b2)
			}
		}
		codec.Release(in)
		codec.Release(back)
	})
}

// FuzzDecodeJSONInputs feeds arbitrary bytes to every benchmark's JSON
// input decoder (the payload under the envelope): decoding may fail, but
// must never panic, and accepted inputs must round-trip.
func FuzzDecodeJSONInputs(f *testing.F) {
	f.Add([]byte(`{"data": [3, 1, 2]}`))
	f.Add([]byte(`{"x": [1, 2], "y": [3, 4]}`))
	f.Add([]byte(`{"sizes": [0.5, 0.25]}`))
	f.Add([]byte(`{"rows": 2, "cols": 2, "data": [1, 2, 3, 4]}`))
	f.Add([]byte(`{"n": 1, "f": [0.5]}`))
	f.Add([]byte(`{"n": 1, "f": [1], "a": [2], "c": 0.5}`))
	f.Add([]byte(`{"n": 1e99}`))
	f.Add([]byte(`{"data": "not an array"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		for name := range codecByName {
			codec := codecByName[name]
			in, err := codec.DecodeJSON(data)
			if err != nil {
				continue
			}
			reencoded, err := codec.EncodeJSON(in)
			if err != nil {
				t.Fatalf("%s: accepted input failed to re-encode: %v", name, err)
			}
			back, err := codec.DecodeJSON(reencoded)
			if err != nil {
				t.Fatalf("%s: re-encoded input failed to decode: %v", name, err)
			}
			set := codec.NewProgram().Features()
			v1, _ := set.ExtractAll(in)
			v2, _ := set.ExtractAll(back)
			for i := range v1 {
				if math.Float64bits(v1[i]) != math.Float64bits(v2[i]) {
					t.Fatalf("%s: feature %d changed across JSON round trip", name, i)
				}
			}
		}
	})
}

// FuzzDecodeHealthFrame feeds arbitrary bytes to the ITH1 decoder the
// fleet router's health loop runs on replica responses. Accepted frames
// must round-trip: re-encoding the decoded report and decoding again
// yields the identical report (uvarint lengths are non-canonical, so the
// bytes may differ; the value may not).
func FuzzDecodeHealthFrame(f *testing.F) {
	f.Add(AppendHealthFrame(nil, Health{}))
	f.Add(AppendHealthFrame(nil, Health{Draining: true, Wires: []Wire{WireJSON, WireBinary}}))
	f.Add(AppendHealthFrame(nil, Health{Wires: []Wire{WireBinary}, Models: []ModelHealth{
		{Benchmark: "sort", Generation: 3},
		{Benchmark: "poisson2d", Generation: 1 << 40},
	}}))
	f.Add(AppendHealthFrame(nil, Health{Wires: []Wire{WireJSON}, Models: []ModelHealth{
		{Benchmark: "sort", Generation: 7, ArtifactHash: 99, DriftDetected: true},
		{Benchmark: "sort2", Generation: 2, Retraining: true},
	}}))
	f.Add(healthMagic[:])
	f.Add([]byte("ITH1\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHealthFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		back, err := DecodeHealthFrame(bytes.NewReader(AppendHealthFrame(nil, h)))
		if err != nil {
			t.Fatalf("accepted health report failed to re-decode: %v", err)
		}
		if !reflect.DeepEqual(h, back) {
			t.Fatalf("health report changed across round trip: %+v vs %+v", h, back)
		}
	})
}

// FuzzInspectBinaryFrame pins the router's frame walk against the full
// decoder: inspection never panics, and every frame the decoder accepts
// the inspector accepts too, attributing it to the same benchmark with a
// fingerprint that is deterministic and insensitive to which quantization
// the fleet shards on being applied twice. (The reverse implication does
// not hold: the inspector checks frame structure only, while the decoder
// also validates cross-field consistency like rows·cols == len(data).)
func FuzzInspectBinaryFrame(f *testing.F) {
	for _, s := range fuzzSeedFrames(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, bits := range []int{0, 8, 52, 64} {
			name, fp, err := InspectBinaryFrame(data, bits)
			if err != nil {
				continue
			}
			name2, fp2, err2 := InspectBinaryFrame(data, bits)
			if err2 != nil || name2 != name || fp2 != fp {
				t.Fatalf("inspection not deterministic at bits=%d", bits)
			}
		}
		codec, in, err := DecodeBinaryRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		defer codec.Release(in)
		name, _, ierr := InspectBinaryFrame(data, 8)
		if ierr != nil {
			t.Fatalf("decoder accepted a frame the inspector rejects: %v", ierr)
		}
		if name != codec.Name {
			t.Fatalf("inspector attributed frame to %q, decoder to %q", name, codec.Name)
		}
	})
}

// FuzzDecodeBinaryDecision feeds arbitrary bytes to the ITD1 decoder
// (what the fleet router runs on proxied replica responses). Accepted
// decisions must reach an encode fixed point: encode(decode(x)) decodes
// to a value that re-encodes to the same bytes (varint fields make the
// first encoding non-canonical, so x itself need not be reproduced).
func FuzzDecodeBinaryDecision(f *testing.F) {
	codec, err := LookupCodec("sort")
	if err != nil {
		f.Fatal(err)
	}
	cfg := codec.NewProgram().Space().DefaultConfig()
	f.Add(AppendBinaryDecision(nil, &Decision{
		Benchmark: "sort", Generation: 2, Landmark: 1, Config: cfg,
		ConfigDescription: "x", Classifier: "tree", FeatureUnits: 12.5, CacheHit: true,
	}))
	f.Add([]byte("ITD1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeBinaryDecision(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc := AppendBinaryDecision(nil, d)
		back, err := DecodeBinaryDecision(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("accepted decision failed to re-decode: %v", err)
		}
		if again := AppendBinaryDecision(nil, back); !bytes.Equal(enc, again) {
			t.Fatalf("decision encoding did not reach a fixed point")
		}
	})
}

// FuzzSortListBothWires generates sort inputs from raw bytes and checks
// the strongest cross-format property: the JSON wire, the binary wire and
// the original input all extract bit-identical features.
func FuzzSortListBothWires(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		vals := make([]float64, 0, len(data)/8)
		for i := 0; i+8 <= len(data); i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				// JSON cannot carry these; the feature extractors never
				// see them from either wire.
				return
			}
			vals = append(vals, v)
		}
		in := &sortbench.List{Data: vals}
		codec, err := LookupCodec("sort")
		if err != nil {
			t.Fatal(err)
		}
		set := codec.NewProgram().Features()
		want, _ := set.ExtractAll(in)
		for _, wire := range []Wire{WireJSON, WireBinary} {
			var buf bytes.Buffer
			if err := codec.Encode(wire, &buf, in); err != nil {
				t.Fatalf("%s encode: %v", wire, err)
			}
			back, err := codec.Decode(wire, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s decode: %v", wire, err)
			}
			got, _ := set.ExtractAll(back)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("%s: feature %d diverged", wire, i)
				}
			}
			codec.Release(back)
		}
	})
}

// FuzzTraceContext feeds arbitrary bytes to the ITX1 trace-context peel.
// The strict half of the contract: a buffer opening with the ITX1 magic
// either yields a validated nonzero ID or a *RequestError — never a
// silent fallthrough to ITW1. The round-trip half: peeled contexts reach
// an encode fixed point, and the streaming decoder
// (DecodeBinaryRequestContext) accepts exactly the frames that peel +
// DecodeBinaryRequest accept, resolving the same trace ID and benchmark.
func FuzzTraceContext(f *testing.F) {
	for _, s := range fuzzSeedFrames(f) {
		f.Add(s)
		f.Add(append(AppendTraceContext(nil, 0x1234abcd), s...))
	}
	f.Add(AppendTraceContext(nil, 1))
	f.Add(AppendTraceContext(nil, ^uint64(0)))
	f.Add(traceMagic[:])                                      // truncated extension
	f.Add(append(traceMagic[:], make([]byte, 9)...))          // zero trace ID
	f.Add([]byte("ITX1\x01\x00\x00\x00\x00\x00\x00\x00\xff")) // unknown flag bits
	f.Fuzz(func(t *testing.T, data []byte) {
		id, rest, ok, err := PeelTraceContext(data)
		if err != nil {
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("peel error is not a RequestError: %v", err)
			}
			if ok {
				t.Fatal("peel returned ok alongside an error")
			}
			return
		}
		if !ok {
			if !bytes.Equal(rest, data) {
				t.Fatal("non-extension buffer was modified by the peel")
			}
			return
		}
		if id == 0 {
			t.Fatal("peel accepted a zero trace ID")
		}
		if len(data)-len(rest) != TraceContextLen {
			t.Fatalf("peel consumed %d bytes, want %d", len(data)-len(rest), TraceContextLen)
		}
		// Fixed point: the only form we emit (sampled flag set) re-encodes
		// to the identical extension bytes.
		if data[12] == traceFlagSampled {
			if !bytes.Equal(AppendTraceContext(nil, id), data[:TraceContextLen]) {
				t.Fatal("sampled trace context did not reach an encode fixed point")
			}
		}
		reenc := append(AppendTraceContext(nil, id), rest...)
		id2, rest2, ok2, err2 := PeelTraceContext(reenc)
		if err2 != nil || !ok2 || id2 != id || !bytes.Equal(rest2, rest) {
			t.Fatalf("re-encoded context failed to peel: id %x vs %x, ok %v, err %v", id2, id, ok2, err2)
		}

		// Streaming vs buffered agreement, trailing bytes included: the
		// streaming decoder consumes the extension itself and must accept
		// exactly what the peeled inner frame decodes to.
		c, in, tid, derr := DecodeBinaryRequestContext(bytes.NewReader(data))
		ci, ini, ierr := DecodeBinaryRequest(bytes.NewReader(rest))
		if (derr == nil) != (ierr == nil) {
			t.Fatalf("streaming decoder and peel+decode disagree: %v vs %v", derr, ierr)
		}
		if derr == nil {
			if tid != id {
				t.Fatalf("streaming decoder resolved trace ID %x, peel %x", tid, id)
			}
			if c.Name != ci.Name {
				t.Fatalf("decoders attribute the frame to %q vs %q", c.Name, ci.Name)
			}
			c.Release(in)
		}
		if ierr == nil {
			ci.Release(ini)
		}

		// Sharding must be trace-invariant: the inspector fingerprints the
		// inner frame whether or not the extension is present.
		nameExt, fpExt, errExt := InspectBinaryFrame(data, 8)
		nameIn, fpIn, errIn := InspectBinaryFrame(rest, 8)
		if (errExt == nil) != (errIn == nil) {
			t.Fatalf("inspector disagrees with and without extension: %v vs %v", errExt, errIn)
		}
		if errExt == nil && (nameExt != nameIn || fpExt != fpIn) {
			t.Fatal("trace extension changed the shard fingerprint")
		}
	})
}
