package serve

import (
	"sort"

	"inputtune/internal/core"
)

// This file is the serving side of the online drift loop: a sampling hook
// on the classification hot path and a status surface the drift
// controller publishes back through. The serve package deliberately does
// not import internal/drift — the coupling is two small interfaces, so
// the serving runtime stays deployable without the retraining machinery.

// Sample is one served request's feature observation, handed to the
// registered SampleObserver on the classification path. Row and Input are
// pooled/caller-owned storage: they are valid ONLY for the duration of
// the ObserveSample call, and an observer that wants to retain anything
// must copy it before returning. Row is the raw (unscaled) feature row
// with only the positions listed in Indices populated — exactly what the
// production classifier's ExtractSubsetInto pass already paid for, so
// observation adds no extraction work to the request.
type Sample struct {
	Benchmark string
	// Generation is the model snapshot that served the request.
	Generation uint64
	// Input is the decoded request input (valid only during the call).
	Input core.Input
	// Row is the feature row (valid only during the call).
	Row []float64
	// Indices lists which positions of Row were extracted.
	Indices []int
	// Label is the landmark the production classifier selected.
	Label int
}

// SampleObserver receives served-request samples. Implementations must be
// safe for concurrent calls and must not block: they run on the
// classification path (inline or on a shard worker).
type SampleObserver interface {
	ObserveSample(Sample)
}

// DriftStatus is one benchmark's row in the drift observability surface,
// as reported by the registered provider (the drift controller).
type DriftStatus struct {
	Benchmark string `json:"benchmark"`
	// Samples counts observed requests since the current baseline.
	Samples uint64 `json:"samples"`
	// Retained is the current reservoir occupancy.
	Retained int `json:"retained"`
	// Drifted reports that the detector has fired and a retrain is due or
	// under way.
	Drifted bool `json:"drifted"`
	// Retraining reports that a background retrain is running right now.
	Retraining bool `json:"retraining"`
	// Retrains counts retrain+publish cycles completed since startup.
	Retrains uint64 `json:"retrains"`
	// EffectSize is the largest per-feature standardized mean shift seen
	// in the last completed detector window.
	EffectSize float64 `json:"effect_size"`
	// AssignTV is the total-variation distance between the live cluster-
	// assignment histogram and the training weights in the last window.
	AssignTV float64 `json:"assignment_tv"`
}

// DriftProvider reports per-benchmark drift status, keyed by benchmark.
type DriftProvider func() map[string]DriftStatus

// driftProviderBox wraps the provider so atomic.Value sees one concrete
// type even as closures change.
type driftProviderBox struct{ fn DriftProvider }

// SetDriftProvider registers the status provider the metrics and health
// surfaces pull from. Safe to call at any time; nil clears it.
func (s *Service) SetDriftProvider(fn DriftProvider) {
	s.driftProv.Store(driftProviderBox{fn: fn})
}

// DriftStatuses returns the current per-benchmark drift status, or nil
// when no provider is registered (drift loop not running).
func (s *Service) DriftStatuses() map[string]DriftStatus {
	box, _ := s.driftProv.Load().(driftProviderBox)
	if box.fn == nil {
		return nil
	}
	return box.fn()
}

// driftRows flattens the provider map into benchmark-sorted rows.
func driftRows(m map[string]DriftStatus) []DriftStatus {
	if len(m) == 0 {
		return nil
	}
	rows := make([]DriftStatus, 0, len(m))
	for _, st := range m {
		rows = append(rows, st)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].Benchmark < rows[b].Benchmark })
	return rows
}

// observerBox keeps the atomic.Value monomorphic across observer types.
type observerBox struct{ obs SampleObserver }

// SetObserver registers (or, with nil, removes) the sample observer. The
// swap is atomic: in-flight requests may still deliver one sample to the
// previous observer.
func (s *Service) SetObserver(obs SampleObserver) {
	s.observer.Store(observerBox{obs: obs})
}

func (s *Service) sampleObserver() SampleObserver {
	box, _ := s.observer.Load().(observerBox)
	return box.obs
}
