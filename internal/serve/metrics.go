package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inputtune/internal/obs"
)

// latencyBucketBounds are the upper bounds (microseconds, inclusive) of
// the request-latency histogram, log-spaced from 10 µs to 10 s; the last
// bucket is unbounded (+Inf).
var latencyBucketBounds = []float64{
	10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 10_000_000,
}

// histogram is a fixed-bucket, lock-free latency histogram; buckets has
// len(latencyBucketBounds)+1 entries (the last is the +Inf bucket).
type histogram struct {
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumNano atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]atomic.Uint64, len(latencyBucketBounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	us := float64(d.Nanoseconds()) / 1e3
	i := sort.SearchFloat64s(latencyBucketBounds, us)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNano.Add(d.Nanoseconds())
}

// quantile estimates the q-quantile (0..1) in microseconds from the
// bucket counts: linear interpolation within the holding bucket.
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	lower := 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if cum+n >= rank && n > 0 {
			upper := 10e6 // open-ended last bucket: clamp at 10 s
			if i < len(latencyBucketBounds) {
				upper = latencyBucketBounds[i]
			}
			frac := (rank - cum) / n
			return lower + frac*(upper-lower)
		}
		cum += n
		if i < len(latencyBucketBounds) {
			lower = latencyBucketBounds[i]
		}
	}
	return lower
}

// benchCounters are per-benchmark request tallies.
type benchCounters struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	cacheHits atomic.Uint64
}

// Metrics is the serving runtime's observability surface: request and
// error counts (total and per benchmark), a latency histogram, decision-
// cache effectiveness, and reload counts. All counters are atomic; the
// per-benchmark map is guarded by a mutex taken only on first sight of a
// new benchmark name.
type Metrics struct {
	start    time.Time
	requests atomic.Uint64
	errors   atomic.Uint64
	reloads  atomic.Uint64
	latency  *histogram

	mu       sync.RWMutex
	perBench map[string]*benchCounters
}

// NewMetrics returns a zeroed metrics surface.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), latency: newHistogram(), perBench: make(map[string]*benchCounters)}
}

func (m *Metrics) bench(name string) *benchCounters {
	m.mu.RLock()
	c := m.perBench[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.perBench[name]; c == nil {
		c = &benchCounters{}
		m.perBench[name] = c
	}
	return c
}

// ObserveRequest records one classification request.
func (m *Metrics) ObserveRequest(benchmark string, d time.Duration, cacheHit bool, err error) {
	m.requests.Add(1)
	m.latency.observe(d)
	c := m.bench(benchmark)
	c.requests.Add(1)
	if cacheHit {
		c.cacheHits.Add(1)
	}
	if err != nil {
		m.errors.Add(1)
		c.errors.Add(1)
	}
}

// ObserveReload records one successful model reload.
func (m *Metrics) ObserveReload() { m.reloads.Add(1) }

// BenchSnapshot is one benchmark's counters in a MetricsSnapshot.
type BenchSnapshot struct {
	Benchmark  string `json:"benchmark"`
	Requests   uint64 `json:"requests"`
	Errors     uint64 `json:"errors"`
	CacheHits  uint64 `json:"cache_hits"`
	Generation uint64 `json:"generation,omitempty"`
}

// MetricsSnapshot is the JSON form of the metrics surface.
type MetricsSnapshot struct {
	UptimeSeconds float64            `json:"uptime_seconds"`
	Requests      uint64             `json:"requests"`
	Errors        uint64             `json:"errors"`
	Reloads       uint64             `json:"reloads"`
	P50Micros     float64            `json:"latency_p50_us"`
	P90Micros     float64            `json:"latency_p90_us"`
	P99Micros     float64            `json:"latency_p99_us"`
	MeanMicros    float64            `json:"latency_mean_us"`
	DecisionCache DecisionCacheStats `json:"decision_cache"`
	Benchmarks    []BenchSnapshot    `json:"benchmarks"`
	// Drift carries the per-benchmark drift-loop status, present only
	// when a drift provider is registered on the service.
	Drift []DriftStatus `json:"drift,omitempty"`
	// Trace links the latency histogram above to concrete exemplars:
	// tracer counters plus the slowest-N trace IDs, resolvable at
	// /debug/traces?n=. Present only when the service has a tracer.
	Trace *TraceSnapshot `json:"trace,omitempty"`
}

// TraceSnapshot is the tracing summary embedded in a MetricsSnapshot.
type TraceSnapshot struct {
	SampleEvery int            `json:"sample_every"`
	Sampled     uint64         `json:"sampled"`
	Finished    uint64         `json:"finished"`
	Slowest     []obs.Exemplar `json:"slowest,omitempty"`
}

// Snapshot assembles the current metrics, folding in the decision-cache
// stats and the registry's live generations.
func (m *Metrics) Snapshot(cache *DecisionCache, reg *Registry) MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      m.requests.Load(),
		Errors:        m.errors.Load(),
		Reloads:       m.reloads.Load(),
		P50Micros:     m.latency.quantile(0.50),
		P90Micros:     m.latency.quantile(0.90),
		P99Micros:     m.latency.quantile(0.99),
		DecisionCache: cache.Stats(),
	}
	if n := m.latency.count.Load(); n > 0 {
		snap.MeanMicros = float64(m.latency.sumNano.Load()) / 1e3 / float64(n)
	}
	gens := map[string]uint64{}
	if reg != nil {
		for _, s := range reg.Snapshots() {
			gens[s.Benchmark] = s.Generation
		}
	}
	m.mu.RLock()
	for name, c := range m.perBench {
		snap.Benchmarks = append(snap.Benchmarks, BenchSnapshot{
			Benchmark: name,
			Requests:  c.requests.Load(),
			Errors:    c.errors.Load(),
			CacheHits: c.cacheHits.Load(),
		})
	}
	m.mu.RUnlock()
	// Benchmarks with a loaded model but no traffic yet still surface
	// their generation.
	seen := map[string]bool{}
	for i := range snap.Benchmarks {
		snap.Benchmarks[i].Generation = gens[snap.Benchmarks[i].Benchmark]
		seen[snap.Benchmarks[i].Benchmark] = true
	}
	for name, gen := range gens {
		if !seen[name] {
			snap.Benchmarks = append(snap.Benchmarks, BenchSnapshot{Benchmark: name, Generation: gen})
		}
	}
	sort.Slice(snap.Benchmarks, func(a, b int) bool {
		return snap.Benchmarks[a].Benchmark < snap.Benchmarks[b].Benchmark
	})
	return snap
}

// RenderPrometheus formats the snapshot in Prometheus text exposition
// format (the /metrics endpoint body).
func (s MetricsSnapshot) RenderPrometheus() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }
	w("# HELP inputtuned_requests_total Classification requests served.\n")
	w("# TYPE inputtuned_requests_total counter\n")
	w("inputtuned_requests_total %d\n", s.Requests)
	w("# HELP inputtuned_request_errors_total Requests that failed.\n")
	w("# TYPE inputtuned_request_errors_total counter\n")
	w("inputtuned_request_errors_total %d\n", s.Errors)
	w("# HELP inputtuned_reloads_total Successful model hot-reloads.\n")
	w("# TYPE inputtuned_reloads_total counter\n")
	w("inputtuned_reloads_total %d\n", s.Reloads)
	w("# HELP inputtuned_request_latency_us Request latency quantiles (microseconds).\n")
	w("# TYPE inputtuned_request_latency_us gauge\n")
	w("inputtuned_request_latency_us{quantile=\"0.5\"} %.1f\n", s.P50Micros)
	w("inputtuned_request_latency_us{quantile=\"0.9\"} %.1f\n", s.P90Micros)
	w("inputtuned_request_latency_us{quantile=\"0.99\"} %.1f\n", s.P99Micros)
	w("# HELP inputtuned_decision_cache_hits_total Decision-cache hits.\n")
	w("# TYPE inputtuned_decision_cache_hits_total counter\n")
	w("inputtuned_decision_cache_hits_total %d\n", s.DecisionCache.Hits)
	w("# HELP inputtuned_decision_cache_misses_total Decision-cache misses.\n")
	w("# TYPE inputtuned_decision_cache_misses_total counter\n")
	w("inputtuned_decision_cache_misses_total %d\n", s.DecisionCache.Misses)
	w("# HELP inputtuned_decision_cache_evictions_total Decision-cache evictions.\n")
	w("# TYPE inputtuned_decision_cache_evictions_total counter\n")
	w("inputtuned_decision_cache_evictions_total %d\n", s.DecisionCache.Evictions)
	w("# HELP inputtuned_model_generation Registry generation of the live model.\n")
	w("# TYPE inputtuned_model_generation gauge\n")
	for _, bs := range s.Benchmarks {
		if bs.Generation > 0 {
			w("inputtuned_model_generation{benchmark=%q} %d\n", bs.Benchmark, bs.Generation)
		}
	}
	w("# HELP inputtuned_benchmark_requests_total Requests per benchmark.\n")
	w("# TYPE inputtuned_benchmark_requests_total counter\n")
	for _, bs := range s.Benchmarks {
		w("inputtuned_benchmark_requests_total{benchmark=%q} %d\n", bs.Benchmark, bs.Requests)
	}
	if s.Trace != nil {
		w("# HELP inputtuned_traces_sampled_total Requests head-sampled into the trace ring.\n")
		w("# TYPE inputtuned_traces_sampled_total counter\n")
		w("inputtuned_traces_sampled_total %d\n", s.Trace.Sampled)
		w("# HELP inputtuned_trace_slowest_us Slowest traced requests; look the trace_id up at /debug/traces.\n")
		w("# TYPE inputtuned_trace_slowest_us gauge\n")
		for _, ex := range s.Trace.Slowest {
			w("inputtuned_trace_slowest_us{trace_id=%q,benchmark=%q} %.1f\n", ex.TraceID, ex.Benchmark, ex.DurationUs)
		}
	}
	if len(s.Drift) > 0 {
		b01 := func(v bool) int {
			if v {
				return 1
			}
			return 0
		}
		w("# HELP inputtuned_drift_samples_total Served requests observed by the drift detector.\n")
		w("# TYPE inputtuned_drift_samples_total counter\n")
		for _, d := range s.Drift {
			w("inputtuned_drift_samples_total{benchmark=%q} %d\n", d.Benchmark, d.Samples)
		}
		w("# HELP inputtuned_drift_retained Inputs currently retained in the drift reservoir.\n")
		w("# TYPE inputtuned_drift_retained gauge\n")
		for _, d := range s.Drift {
			w("inputtuned_drift_retained{benchmark=%q} %d\n", d.Benchmark, d.Retained)
		}
		w("# HELP inputtuned_drift_detected Drift detector fired for the current baseline (1 = drifted).\n")
		w("# TYPE inputtuned_drift_detected gauge\n")
		for _, d := range s.Drift {
			w("inputtuned_drift_detected{benchmark=%q} %d\n", d.Benchmark, b01(d.Drifted))
		}
		w("# HELP inputtuned_drift_retraining Background retrain in progress (1 = retraining).\n")
		w("# TYPE inputtuned_drift_retraining gauge\n")
		for _, d := range s.Drift {
			w("inputtuned_drift_retraining{benchmark=%q} %d\n", d.Benchmark, b01(d.Retraining))
		}
		w("# HELP inputtuned_drift_retrains_total Retrain+publish cycles completed.\n")
		w("# TYPE inputtuned_drift_retrains_total counter\n")
		for _, d := range s.Drift {
			w("inputtuned_drift_retrains_total{benchmark=%q} %d\n", d.Benchmark, d.Retrains)
		}
	}
	return b.String()
}
