package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"inputtune/internal/choice"
)

// newLocalServer starts an httptest server over an existing service.
func newLocalServer(t *testing.T, svc *Service) string {
	t.Helper()
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	return srv.URL
}

// decisionsEqual compares two decisions field by field, using Config.Key
// for the configuration (pointer identity is lost across the wire).
func decisionsEqual(a, b *Decision) bool {
	cfgEq := (a.Config == nil) == (b.Config == nil)
	if cfgEq && a.Config != nil {
		cfgEq = a.Config.Key() == b.Config.Key()
	}
	return cfgEq &&
		a.Benchmark == b.Benchmark &&
		a.Generation == b.Generation &&
		a.Landmark == b.Landmark &&
		a.ConfigDescription == b.ConfigDescription &&
		a.Classifier == b.Classifier &&
		a.FeatureUnits == b.FeatureUnits &&
		a.CacheHit == b.CacheHit
}

// TestBinaryDecisionRoundTrip: every Decision field survives the ITD1
// frame losslessly, including the binary-encoded Config.
func TestBinaryDecisionRoundTrip(t *testing.T) {
	cfg := &choice.Config{
		Selectors: []choice.Selector{
			{Levels: []choice.Level{{Cutoff: 600, Choice: 1}, {Cutoff: 1420, Choice: 2}}, Else: 0},
			{Else: 1},
		},
		Values: []float64{60, 1.5},
	}
	cases := []*Decision{
		{
			Benchmark: "sort", Generation: 7, Landmark: 2, Config: cfg,
			ConfigDescription: "n<600: a; else: b iters=60",
			Classifier:        "subset-tree", FeatureUnits: 123.456, CacheHit: true,
		},
		{Benchmark: "x", Config: &choice.Config{}},
		{},
	}
	for i, d := range cases {
		frame := AppendBinaryDecision(nil, d)
		got, err := DecodeBinaryDecision(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !decisionsEqual(d, got) {
			t.Fatalf("case %d: round trip changed decision:\n in: %+v\nout: %+v", i, d, got)
		}
	}
}

// TestBinaryDecisionDecodeErrors: truncation at every byte boundary,
// wrong magic, and trailing bytes all fail loudly.
func TestBinaryDecisionDecodeErrors(t *testing.T) {
	d := &Decision{Benchmark: "sort", Generation: 3, Landmark: 1,
		Config: &choice.Config{Values: []float64{1.5}}, Classifier: "c"}
	frame := AppendBinaryDecision(nil, d)
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeBinaryDecision(bytes.NewReader(frame[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(frame))
		}
	}
	if _, err := DecodeBinaryDecision(bytes.NewReader(append(frame, 0))); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, err := DecodeBinaryDecision(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestHTTPBinaryResponseNegotiation: Accept: application/x-inputtune
// yields an ITD1 frame that decodes to exactly the Decision the JSON
// wire reports for the same input — on both request formats.
func TestHTTPBinaryResponseNegotiation(t *testing.T) {
	reg := sortServiceRegistry(t)
	// Cache disabled so repeated requests report identical CacheHit — the
	// comparison below covers every Decision field.
	svc := NewService(reg, Options{Cache: CacheOptions{Disable: true}})
	t.Cleanup(svc.Close)
	srvURL := newLocalServer(t, svc)
	codec, _ := LookupCodec("sort")
	in := testModels.sortInputs[0]

	// Reference: JSON request, JSON response.
	raw, err := codec.EncodeJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, _ := json.Marshal(classifyRequest{Benchmark: "sort", Input: raw})
	resp, data := postJSON(t, srvURL+"/v1/classify", jsonBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json classify: %d %s", resp.StatusCode, data)
	}
	var want Decision
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	post := func(contentType string, body []byte) *http.Response {
		req, err := http.NewRequest("POST", srvURL+"/v1/classify", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		req.Header.Set("Accept", ContentTypeBinary)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	var binBody bytes.Buffer
	if err := EncodeBinaryRequest(&binBody, "sort", in); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name, contentType string
		body              []byte
	}{
		{"binary request", ContentTypeBinary, binBody.Bytes()},
		{"json request", "application/json", jsonBody},
	} {
		resp := post(tc.contentType, tc.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", tc.name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != ContentTypeBinary {
			t.Fatalf("%s: response Content-Type %q", tc.name, ct)
		}
		got, err := DecodeBinaryDecision(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: decoding response: %v", tc.name, err)
		}
		if !decisionsEqual(&want, got) {
			t.Fatalf("%s: binary response differs from JSON:\njson:   %+v\nbinary: %+v", tc.name, want, got)
		}
	}
}

// TestHTTPBinaryResponseRefusedWithoutWire: on a deployment pinned to
// -wire json, Accept: application/x-inputtune is ignored and the
// response stays JSON (request-side binary is already a 415 there).
func TestHTTPBinaryResponseRefusedWithoutWire(t *testing.T) {
	reg := sortServiceRegistry(t)
	svc := NewService(reg, Options{Wires: []Wire{WireJSON}})
	t.Cleanup(svc.Close)
	srv := newLocalServer(t, svc)

	codec, _ := LookupCodec("sort")
	raw, _ := codec.EncodeJSON(testModels.sortInputs[0])
	body, _ := json.Marshal(classifyRequest{Benchmark: "sort", Input: raw})
	req, _ := http.NewRequest("POST", srv+"/v1/classify", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("response Content-Type %q, want JSON", ct)
	}
	var d Decision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPBinaryRequestBatched drives binary frames through a sharded
// service, exercising the undecoded-frame handoff to shard workers:
// every label must match the offline ground truth, and a malformed
// frame must still come back as a 400 even though the decode failure
// happens on a worker goroutine.
func TestHTTPBinaryRequestBatched(t *testing.T) {
	reg := sortServiceRegistry(t)
	svc := NewService(reg, Options{Shards: 2, MaxBatch: 4})
	t.Cleanup(svc.Close)
	srv := newLocalServer(t, svc)
	want := offlineLabels(testModels.sortModel, testModels.sortInputs)

	for i, in := range testModels.sortInputs[:8] {
		var body bytes.Buffer
		if err := EncodeBinaryRequest(&body, "sort", in); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv+"/v1/classify", ContentTypeBinary, &body)
		if err != nil {
			t.Fatal(err)
		}
		var d Decision
		err = json.NewDecoder(resp.Body).Decode(&d)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("input %d: status %d err %v", i, resp.StatusCode, err)
		}
		if d.Landmark != want[i] {
			t.Fatalf("input %d: served %d, offline %d", i, d.Landmark, want[i])
		}
	}

	resp, err := http.Post(srv+"/v1/classify", ContentTypeBinary, bytes.NewReader([]byte("ITW1garbage")))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed frame: status %d body %s", resp.StatusCode, data)
	}
}
