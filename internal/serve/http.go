package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// MaxRequestBytes bounds request bodies (inputs and artifacts alike) so a
// misbehaving client cannot exhaust server memory. Large PDE instances at
// benchmark sizes are a few MB of JSON; 64 MB leaves ample headroom.
const MaxRequestBytes = 64 << 20

// classifyRequest is the POST /v1/classify body.
type classifyRequest struct {
	Benchmark string          `json:"benchmark"`
	Input     json.RawMessage `json:"input"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// reloadResponse is the POST /v1/reload success body.
type reloadResponse struct {
	Benchmark  string `json:"benchmark"`
	Generation uint64 `json:"generation"`
	Bytes      int    `json:"bytes"`
}

// modelInfo is one row of GET /v1/models.
type modelInfo struct {
	Benchmark  string `json:"benchmark"`
	Generation uint64 `json:"generation"`
	Classifier string `json:"classifier"`
	Landmarks  int    `json:"landmarks"`
}

// healthResponse is the GET /healthz body.
type healthResponse struct {
	Status string `json:"status"`
	Models int    `json:"models"`
}

// NewHandler builds the serving API over a service:
//
//	POST /v1/classify  {"benchmark": "...", "input": {...}}  → Decision
//	POST /v1/reload    <SaveModel artifact JSON>             → generation
//	GET  /v1/models                                          → loaded models
//	GET  /metrics                  Prometheus text (?format=json for JSON)
//	GET  /healthz                                            → liveness
//
// Input wire formats are the per-benchmark codecs (codec.go).
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
			return
		}
		var req classifyRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if req.Benchmark == "" || len(req.Input) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("request needs \"benchmark\" and \"input\""))
			return
		}
		codec, err := LookupCodec(req.Benchmark)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		in, err := codec.Decode(req.Input)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding %s input: %w", req.Benchmark, err))
			return
		}
		d, err := svc.Classify(req.Benchmark, in)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, d)
	})
	mux.HandleFunc("POST /v1/reload", func(w http.ResponseWriter, r *http.Request) {
		artifact, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading artifact: %w", err))
			return
		}
		snap, err := svc.Load(artifact)
		if err != nil {
			// The previously loaded model (if any) is still serving; a bad
			// artifact costs the client an error, never the fleet a model.
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, reloadResponse{
			Benchmark:  snap.Benchmark,
			Generation: snap.Generation,
			Bytes:      snap.ArtifactBytes,
		})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		snaps := svc.Registry().Snapshots()
		out := make([]modelInfo, 0, len(snaps))
		for _, s := range snaps {
			out = append(out, modelInfo{
				Benchmark:  s.Benchmark,
				Generation: s.Generation,
				Classifier: s.Model.Production.Name,
				Landmarks:  len(s.Model.Landmarks),
			})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := svc.MetricsSnapshot()
		if r.URL.Query().Get("format") == "json" {
			writeJSON(w, http.StatusOK, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, snap.RenderPrometheus())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthResponse{
			Status: "ok",
			Models: len(svc.Registry().Snapshots()),
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Encoding errors past the header are unrecoverable mid-stream; the
	// client sees a truncated body and retries.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
