package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"inputtune/internal/obs"
)

// MaxRequestBytes bounds request bodies (inputs and artifacts alike) so a
// misbehaving client cannot exhaust server memory. Large PDE instances at
// benchmark sizes are a few MB of JSON; 64 MB leaves ample headroom.
const MaxRequestBytes = 64 << 20

// classifyRequest is the POST /v1/classify JSON envelope. The binary wire
// needs no envelope: its frame names the benchmark itself.
type classifyRequest struct {
	Benchmark string          `json:"benchmark"`
	Input     json.RawMessage `json:"input"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// reloadResponse is the POST /v1/reload success body.
type reloadResponse struct {
	Benchmark  string `json:"benchmark"`
	Generation uint64 `json:"generation"`
	Bytes      int    `json:"bytes"`
}

// modelInfo is one row of GET /v1/models.
type modelInfo struct {
	Benchmark  string `json:"benchmark"`
	Generation uint64 `json:"generation"`
	Classifier string `json:"classifier"`
	Landmarks  int    `json:"landmarks"`
}

// healthResponse is the GET /healthz body.
type healthResponse struct {
	Status string `json:"status"`
	Models int    `json:"models"`
	// Wires lists the accepted request formats.
	Wires []string `json:"wires"`
	// Draining reports a graceful drain in progress (the endpoint also
	// answers 503 so load balancers stop routing without a body parse).
	Draining bool `json:"draining,omitempty"`
}

// bufPool recycles the per-request byte buffers (request bodies on the
// JSON path, response encodings on every path).
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf caps what goes back in the pool, so one oversized request
// cannot pin megabytes for the rest of the process lifetime.
const maxPooledBuf = 1 << 20

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		bufPool.Put(b)
	}
}

// mediaType extracts the media type of a Content-Type header, dropping
// parameters (charset etc.) and normalizing case.
func mediaType(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.ToLower(strings.TrimSpace(ct))
}

// NewHandler builds the serving API over a service:
//
//	POST /v1/classify  content-negotiated on Content-Type:
//	                   application/json (default):
//	                     {"benchmark": "...", "input": {...}}    → Decision
//	                   application/x-inputtune:
//	                     binary frame (see wire.go)              → Decision
//	POST /v1/reload    <SaveModel artifact JSON>                 → generation
//	GET  /v1/models                                              → loaded models
//	GET  /metrics                      Prometheus text (?format=json for JSON)
//	GET  /healthz                                                → liveness
//
// Classify responses are JSON by default; a client that sends
// Accept: application/x-inputtune (on a deployment that negotiates the
// binary wire) receives the Decision as an ITD1 binary frame instead
// (response.go). Every other response stays JSON. Input wire formats are
// the per-benchmark codecs (codec.go) over the shared wire layer
// (wire.go).
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		// The trace starts (or, when the request carries an
		// X-Inputtune-Trace header, joins) at the handler edge so the
		// record covers decode through encode; nil when untraced.
		t := startTrace(svc, r)
		if t != nil {
			defer svc.tracer.Finish(t)
		}
		switch ct := mediaType(r.Header.Get("Content-Type")); ct {
		case ContentTypeBinary:
			if !svc.AcceptsWire(WireBinary) {
				writeError(w, http.StatusUnsupportedMediaType,
					fmt.Errorf("this deployment does not accept %s", ContentTypeBinary))
				return
			}
			// The frame streams straight off the socket: on sharded
			// deployments all the way into the shard worker, which decodes
			// and classifies in one pass — vectors land in pooled buffers
			// exactly once, with no decode-then-channel hop.
			d, err := svc.ClassifyBinaryTraced(io.LimitReader(r.Body, MaxRequestBytes), t)
			if err != nil {
				status := http.StatusServiceUnavailable
				var reqErr *RequestError
				if errors.As(err, &reqErr) {
					status = http.StatusBadRequest
				}
				t.SetError(err)
				writeError(w, status, err)
				return
			}
			writeDecision(w, r, svc, d, t)
		default:
			if !svc.AcceptsWire(WireJSON) {
				writeError(w, http.StatusUnsupportedMediaType,
					fmt.Errorf("this deployment does not accept %s", ContentTypeJSON))
				return
			}
			dt := t.Now()
			body := getBuf()
			if _, err := body.ReadFrom(io.LimitReader(r.Body, MaxRequestBytes)); err != nil {
				putBuf(body)
				t.SetError(err)
				writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
				return
			}
			var req classifyRequest
			err := json.Unmarshal(body.Bytes(), &req)
			putBuf(body) // req.Input is a copy; the raw body is done
			if err != nil {
				t.SetError(err)
				writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
				return
			}
			if req.Benchmark == "" || len(req.Input) == 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("request needs \"benchmark\" and \"input\""))
				return
			}
			c, err := LookupCodec(req.Benchmark)
			if err != nil {
				t.SetError(err)
				writeError(w, http.StatusNotFound, err)
				return
			}
			decoded, err := c.DecodeJSON(req.Input)
			if err != nil {
				t.SetError(err)
				writeError(w, http.StatusBadRequest, fmt.Errorf("decoding %s input: %w", req.Benchmark, err))
				return
			}
			t.Span("decode", dt)
			d, err := svc.ClassifyTraced(req.Benchmark, decoded, t)
			// The decision carries no reference to the input, so its
			// buffers can rejoin the pool before the response is written.
			c.Release(decoded)
			if err != nil {
				t.SetError(err)
				writeError(w, http.StatusServiceUnavailable, err)
				return
			}
			writeDecision(w, r, svc, d, t)
		}
	})
	mux.HandleFunc("POST /v1/reload", func(w http.ResponseWriter, r *http.Request) {
		artifact, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading artifact: %w", err))
			return
		}
		snap, err := svc.Load(artifact)
		if err != nil {
			// The previously loaded model (if any) is still serving; a bad
			// artifact costs the client an error, never the fleet a model.
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, reloadResponse{
			Benchmark:  snap.Benchmark,
			Generation: snap.Generation,
			Bytes:      snap.ArtifactBytes,
		})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		snaps := svc.Registry().Snapshots()
		out := make([]modelInfo, 0, len(snaps))
		for _, s := range snaps {
			out = append(out, modelInfo{
				Benchmark:  s.Benchmark,
				Generation: s.Generation,
				Classifier: s.Model.Production.Name,
				Landmarks:  len(s.Model.Landmarks),
			})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := svc.MetricsSnapshot()
		if r.URL.Query().Get("format") == "json" {
			writeJSON(w, http.StatusOK, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, snap.RenderPrometheus())
	})
	if tr := svc.Tracer(); tr != nil {
		mux.Handle("GET /debug/traces", obs.Handler(tr))
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := svc.Health()
		status := http.StatusOK
		if h.Draining {
			// A draining replica is alive but leaving: 503 tells load
			// balancers and the fleet router to stop routing here.
			status = http.StatusServiceUnavailable
		}
		// The binary health frame (ITH1) is negotiated like decisions:
		// the fleet router's health loop asks for it to skip JSON parses.
		if mediaType(r.Header.Get("Accept")) == ContentTypeBinary {
			buf := getBuf()
			buf.Write(AppendHealthFrame(buf.AvailableBuffer(), h))
			w.Header().Set("Content-Type", ContentTypeBinary)
			w.WriteHeader(status)
			_, _ = w.Write(buf.Bytes())
			putBuf(buf)
			return
		}
		wires := make([]string, 0, len(h.Wires))
		for _, wire := range h.Wires {
			wires = append(wires, wire.String())
		}
		st := "ok"
		if h.Draining {
			st = "draining"
		}
		writeJSON(w, status, healthResponse{
			Status:   st,
			Models:   len(h.Models),
			Wires:    wires,
			Draining: h.Draining,
		})
	})
	return mux
}

// writeDecision writes d in the representation the client's Accept
// header asks for: application/x-inputtune (on a deployment negotiating
// the binary wire) yields the ITD1 binary frame, anything else the JSON
// Decision object. Request and response formats negotiate independently,
// so a JSON request may ask for a binary answer and vice versa.
func writeDecision(w http.ResponseWriter, r *http.Request, svc *Service, d *Decision, t *obs.Trace) {
	et := t.Now()
	if mediaType(r.Header.Get("Accept")) == ContentTypeBinary && svc.AcceptsWire(WireBinary) {
		buf := getBuf()
		buf.Write(AppendBinaryDecision(buf.AvailableBuffer(), d))
		w.Header().Set("Content-Type", ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf.Bytes())
		putBuf(buf)
		t.Span("encode", et)
		return
	}
	writeJSON(w, http.StatusOK, d)
	t.Span("encode", et)
}

// startTrace makes the edge sampling decision for one HTTP request: a
// request carrying a valid X-Inputtune-Trace header joins that trace
// (the upstream hop already sampled it), anything else head-samples.
// Returns nil — at zero allocation — when tracing is off or unsampled.
func startTrace(svc *Service, r *http.Request) *obs.Trace {
	tr := svc.tracer
	if tr == nil {
		return nil
	}
	if h := r.Header.Get(obs.TraceHeader); h != "" {
		if id, ok := obs.ParseID(h); ok {
			return tr.Join(svc.traceSite, id)
		}
	}
	return tr.Start(svc.traceSite)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getBuf()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		putBuf(buf)
		http.Error(w, `{"error": "encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Write errors past the header are unrecoverable mid-stream; the
	// client sees a truncated body and retries.
	_, _ = w.Write(buf.Bytes())
	putBuf(buf)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
