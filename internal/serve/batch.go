package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"inputtune/internal/core"
	"inputtune/internal/engine"
	"inputtune/internal/obs"
)

// DefaultMaxBatch bounds how many queued requests one shard drains into a
// single worker-pool pass when the caller does not say.
const DefaultMaxBatch = 16

// task is one queued classification request; done carries exactly one
// result.
type task struct {
	benchmark string
	in        core.Input
	// frame, when non-nil, is an undecoded binary request: the shard
	// worker decodes it itself, so frame decode rides the same bounded
	// workers as classification instead of paying a decode-then-channel
	// hop on the request goroutine. The enqueueing goroutine blocks on
	// done for the task's whole lifetime, which is what keeps the reader
	// (typically an http.Request body) valid while the worker reads it.
	frame io.Reader
	// tr is the caller's trace record (nil = untraced); enqueued lets the
	// shard worker back-date the batch_wait span to the enqueue time.
	tr       *obs.Trace
	enqueued time.Time
	done     chan taskResult
}

type taskResult struct {
	d *Decision
	// benchmark is the resolved benchmark name, for metrics attribution:
	// frame tasks only learn it during decode (empty when the frame's
	// header never decoded).
	benchmark string
	// tr is the task's trace record after execution: the caller's, or a
	// record freshly joined from a frame's ITX1 trace context.
	tr  *obs.Trace
	err error
}

// Batcher is the sharded worker/batching layer. Incoming requests are
// spread round-robin over S shard queues; each shard goroutine drains its
// queue into batches of at most MaxBatch and classifies the batch on the
// shared engine.Pool. The effect under load: however many request
// goroutines pile up, classification work is performed by S shard workers
// plus whatever helpers the bounded pool grants, and adjacent requests
// amortise scheduling into one pool pass. Under light load a batch is a
// single request and the path degenerates to an inline call plus one
// channel hop.
type Batcher struct {
	svc      *Service
	shards   []chan *task
	maxBatch int
	pool     *engine.Pool
	next     atomic.Uint64
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// NewBatcher starts shards workers feeding the service's inline path.
// maxBatch <= 0 selects DefaultMaxBatch; pool == nil selects the shared
// engine.Default pool.
func NewBatcher(svc *Service, shards, maxBatch int, pool *engine.Pool) *Batcher {
	if shards <= 0 {
		shards = 1
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if pool == nil {
		pool = engine.Default()
	}
	b := &Batcher{svc: svc, maxBatch: maxBatch, pool: pool}
	b.shards = make([]chan *task, shards)
	for i := range b.shards {
		// Buffer a couple of batches per shard: enough to keep the worker
		// fed, small enough that backpressure reaches callers quickly.
		b.shards[i] = make(chan *task, 2*maxBatch)
		b.wg.Add(1)
		go b.run(b.shards[i])
	}
	return b
}

// Classify enqueues the request on a shard and waits for its result.
// enqueued is the caller's request-start timestamp, reused for the
// batch_wait span when the request is traced.
func (b *Batcher) Classify(benchmark string, in core.Input, tr *obs.Trace, enqueued time.Time) (d *Decision, err error) {
	if b.closed.Load() {
		return nil, fmt.Errorf("serve: batcher is shut down")
	}
	t := &task{benchmark: benchmark, in: in, tr: tr, enqueued: enqueued, done: make(chan taskResult, 1)}
	shard := b.shards[b.next.Add(1)%uint64(len(b.shards))]
	defer func() {
		// A send on a channel closed by a concurrent Close panics; convert
		// that unlikely shutdown race into an orderly error.
		if recover() != nil {
			d, err = nil, fmt.Errorf("serve: batcher is shut down")
		}
	}()
	shard <- t
	res := <-t.done
	return res.d, res.err
}

// ClassifyFrame enqueues an undecoded binary frame on a shard and waits
// for its result; the shard worker performs the decode. The returned
// benchmark name is the one the frame resolved to ("" when the frame
// never decoded), so the caller can attribute metrics.
func (b *Batcher) ClassifyFrame(r io.Reader, tr *obs.Trace, enqueued time.Time) (d *Decision, benchmark string, joined *obs.Trace, err error) {
	if b.closed.Load() {
		return nil, "", tr, fmt.Errorf("serve: batcher is shut down")
	}
	t := &task{frame: r, tr: tr, enqueued: enqueued, done: make(chan taskResult, 1)}
	shard := b.shards[b.next.Add(1)%uint64(len(b.shards))]
	defer func() {
		if recover() != nil {
			d, benchmark, joined, err = nil, "", tr, fmt.Errorf("serve: batcher is shut down")
		}
	}()
	shard <- t
	res := <-t.done
	return res.d, res.benchmark, res.tr, res.err
}

// exec performs one task on whatever goroutine the shard scheduled it
// on: frame tasks decode-then-classify in one pass, decoded tasks go
// straight to classification.
func (b *Batcher) exec(t *task) taskResult {
	var execStart time.Time
	if t.tr != nil || b.svc.tracer != nil {
		execStart = time.Now()
	}
	if t.frame != nil {
		d, benchmark, joined, err := b.svc.classifyFrame(t.frame, t.tr)
		// joined may postdate the enqueue (frame-carried contexts only
		// surface during decode); the span's own timestamps stay honest.
		if joined != nil {
			joined.SpanAt("batch_wait", t.enqueued, execStart)
		}
		return taskResult{d: d, benchmark: benchmark, tr: joined, err: err}
	}
	t.tr.SpanAt("batch_wait", t.enqueued, execStart)
	d, err := b.svc.classifyNow(t.benchmark, t.in, t.tr)
	return taskResult{d: d, benchmark: t.benchmark, tr: t.tr, err: err}
}

// run is one shard worker: block for the first task, opportunistically
// drain more up to maxBatch, classify the batch on the pool.
func (b *Batcher) run(queue chan *task) {
	defer b.wg.Done()
	for first := range queue {
		batch := []*task{first}
	drain:
		for len(batch) < b.maxBatch {
			select {
			case t, ok := <-queue:
				if !ok {
					break drain
				}
				batch = append(batch, t)
			default:
				break drain
			}
		}
		if len(batch) == 1 {
			t := batch[0]
			t.done <- b.exec(t)
			continue
		}
		b.pool.ForEach(len(batch), func(i int) {
			t := batch[i]
			t.done <- b.exec(t)
		})
	}
}

// Close stops accepting requests, lets the shard workers drain what is
// queued, and waits for them to exit.
func (b *Batcher) Close() {
	if b.closed.Swap(true) {
		return
	}
	for _, shard := range b.shards {
		close(shard)
	}
	b.wg.Wait()
}
