package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"inputtune/internal/choice"
	"inputtune/internal/core"
	"inputtune/internal/cost"
	"inputtune/internal/engine"
	"inputtune/internal/feature"
	"inputtune/internal/obs"
)

// ErrDraining rejects new requests once a graceful drain has begun.
// Routers treat it as a routing signal (try another replica), not a
// replica fault: a draining replica is healthy, just leaving.
var ErrDraining = errors.New("serve: service is draining")

// RequestError marks an error as the client's fault (a malformed or
// unsupported request), so transports can map it to a 4xx status instead
// of the 5xx reserved for serving failures. It matters on the binary
// path, where decode happens inside the service (possibly on a shard
// worker) rather than in the HTTP handler.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// Decision is the service's answer to one classification request.
type Decision struct {
	Benchmark string `json:"benchmark"`
	// Generation identifies the model snapshot that served the request.
	Generation uint64 `json:"generation"`
	// Landmark is the selected configuration's index.
	Landmark int `json:"landmark"`
	// Config is the selected landmark configuration itself — the payload a
	// deployment applies to its algorithmic choices.
	Config *choice.Config `json:"config"`
	// ConfigDescription renders Config against the program's space.
	ConfigDescription string `json:"config_description"`
	// Classifier names the production classifier that decided.
	Classifier string `json:"classifier"`
	// FeatureUnits is the virtual-time cost of the features extracted for
	// this decision.
	FeatureUnits float64 `json:"feature_units"`
	// CacheHit reports whether the decision cache answered the predict
	// step (feature extraction still ran; with exact keys, hits cannot
	// change answers).
	CacheHit bool `json:"cache_hit"`
}

// Options configures a Service.
type Options struct {
	// Cache configures the decision cache (capacity, the disable escape
	// hatch, and the opt-in quantized key).
	Cache CacheOptions
	// Shards and MaxBatch configure the batching layer; Shards <= 0
	// disables batching and classifies inline on the request goroutine.
	Shards int
	// MaxBatch bounds how many queued requests one shard drains into a
	// single pool pass (default 16).
	MaxBatch int
	// Pool is the worker pool batches run on (nil selects engine.Default).
	Pool *engine.Pool
	// Wires restricts which request wire formats the HTTP layer accepts
	// (nil or empty = all). A deployment pinned to -wire json keeps the
	// PR-4 surface exactly.
	Wires []Wire
	// Observer, when non-nil, receives a Sample per served request on the
	// static-subset classification path (the feature row is already
	// extracted there, so sampling is free). See SetObserver for the
	// lifetime contract.
	Observer SampleObserver
	// Tracer, when non-nil, records per-stage spans for sampled requests
	// (see internal/obs). A nil tracer — or a tracer with head sampling
	// disabled — adds zero allocations to the request path.
	Tracer *obs.Tracer
	// TraceSite names this service in trace records (default "serve");
	// fleet replicas get their replica name so cross-hop merges read.
	TraceSite string
}

// Service is the classification runtime: registry resolution, per-request
// feature extraction on a private meter, decision caching, and metrics.
// One Service is safe for any number of concurrent callers.
type Service struct {
	reg          *Registry
	cache        *DecisionCache
	quantizeBits int
	metrics      *Metrics
	batcher      *Batcher
	wires        [2]bool
	tracer       *obs.Tracer
	traceSite    string

	draining atomic.Bool
	inflight atomic.Int64

	// observer holds an observerBox (sample tap on the classify path);
	// driftProv holds a driftProviderBox (status pulled into /metrics and
	// health frames). Both swap atomically under live traffic.
	observer  atomic.Value
	driftProv atomic.Value
}

// NewService assembles a service over a registry.
func NewService(reg *Registry, opts Options) *Service {
	s := &Service{reg: reg, metrics: NewMetrics(), tracer: opts.Tracer, traceSite: opts.TraceSite}
	if s.traceSite == "" {
		s.traceSite = "serve"
	}
	if !opts.Cache.Disable {
		s.cache = NewDecisionCache(opts.Cache.Capacity)
		s.quantizeBits = clampQuantizeBits(opts.Cache.QuantizeBits)
	}
	if len(opts.Wires) == 0 {
		s.wires = [2]bool{true, true}
	} else {
		for _, w := range opts.Wires {
			if w == WireJSON || w == WireBinary {
				s.wires[w] = true
			}
		}
	}
	if opts.Observer != nil {
		s.SetObserver(opts.Observer)
	}
	if opts.Shards > 0 {
		s.batcher = NewBatcher(s, opts.Shards, opts.MaxBatch, opts.Pool)
	}
	return s
}

// AcceptsWire reports whether the deployment negotiates the given request
// format.
func (s *Service) AcceptsWire(w Wire) bool {
	return w == WireJSON && s.wires[WireJSON] || w == WireBinary && s.wires[WireBinary]
}

// Registry returns the service's registry (for reload endpoints).
func (s *Service) Registry() *Registry { return s.reg }

// Tracer returns the service's tracer (nil when tracing is off).
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// TraceSite returns the service's site label in trace records.
func (s *Service) TraceSite() string { return s.traceSite }

// Metrics returns the service's metrics surface.
func (s *Service) Metrics() *Metrics { return s.metrics }

// MetricsSnapshot assembles the current observability snapshot, folding
// in the drift-loop status when a provider is registered.
func (s *Service) MetricsSnapshot() MetricsSnapshot {
	snap := s.metrics.Snapshot(s.cache, s.reg)
	snap.Drift = driftRows(s.DriftStatuses())
	if s.tracer != nil {
		st := s.tracer.Stats()
		snap.Trace = &TraceSnapshot{
			SampleEvery: st.SampleEvery,
			Sampled:     st.Sampled,
			Finished:    st.Finished,
			Slowest:     s.tracer.Exemplars(),
		}
	}
	return snap
}

// Close shuts down the batching layer (if any), draining queued requests.
func (s *Service) Close() {
	if s.batcher != nil {
		s.batcher.Close()
	}
}

// BeginDrain flips the service into draining mode: requests already past
// admission run to completion, new ones are rejected with ErrDraining.
// Idempotent and reversible via EndDrain (used by fault-injection tests
// to model a replica leaving and rejoining).
func (s *Service) BeginDrain() { s.draining.Store(true) }

// EndDrain returns a draining service to normal admission.
func (s *Service) EndDrain() { s.draining.Store(false) }

// Draining reports whether a graceful drain is in progress.
func (s *Service) Draining() bool { return s.draining.Load() }

// Inflight reports the number of requests currently past admission.
func (s *Service) Inflight() int64 { return s.inflight.Load() }

// Drain begins a graceful drain and blocks until every in-flight request
// has completed or ctx expires. On success the service is idle and can be
// Closed without cutting off a response mid-write.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	for s.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %d requests still in flight: %w", s.inflight.Load(), ctx.Err())
		case <-time.After(200 * time.Microsecond):
		}
	}
	return nil
}

// enter admits one request into the in-flight set, refusing when a drain
// is in progress. The counter is raised BEFORE the draining check so that
// a concurrent Drain observing inflight==0 cannot race with a request
// that passed the check but had not yet registered; a request that loses
// that race sees draining=true, deregisters, and is rejected.
func (s *Service) enter() error {
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Add(-1)
		return ErrDraining
	}
	return nil
}

// exit deregisters a request admitted by enter.
func (s *Service) exit() { s.inflight.Add(-1) }

// Classify answers one request, routing through the batching layer when
// configured. It records request metrics including latency.
func (s *Service) Classify(benchmark string, in core.Input) (*Decision, error) {
	return s.ClassifyTraced(benchmark, in, nil)
}

// ClassifyTraced is Classify recording stage spans on t (nil = untraced;
// the caller owns t and finishes it after the response is written).
func (s *Service) ClassifyTraced(benchmark string, in core.Input, t *obs.Trace) (*Decision, error) {
	if err := s.enter(); err != nil {
		return nil, err
	}
	defer s.exit()
	start := time.Now()
	t.SetBenchmark(benchmark)
	var d *Decision
	var err error
	if s.batcher != nil {
		d, err = s.batcher.Classify(benchmark, in, t, start)
	} else {
		d, err = s.classifyNow(benchmark, in, t)
	}
	hit := d != nil && d.CacheHit
	s.metrics.ObserveRequest(benchmark, time.Since(start), hit, err)
	return d, err
}

// ClassifyBinary answers one binary-framed request, streaming the frame
// off r directly. When batching is configured, the UNDECODED frame rides
// the shard queue and the shard worker performs the decode — vectors land
// in pooled buffers exactly once, on the goroutine that consumes them,
// with no decode-then-channel hop on the request goroutine. That is
// sound because the request goroutine blocks right here until its result
// lands, keeping r (typically an http.Request body) valid for the
// worker's whole read. Decode failures come back wrapped in
// *RequestError; metrics are attributed to the decoded benchmark name
// and skipped when the frame never identified one.
func (s *Service) ClassifyBinary(r io.Reader) (*Decision, error) {
	return s.ClassifyBinaryTraced(r, nil)
}

// ClassifyBinaryTraced is ClassifyBinary recording stage spans on t. When
// t is nil but the decoded frame carries an ITX1 trace context, a record
// joining that trace is created (and finished) here — that is how a
// router-wrapped frame's spans land under the router's trace ID even
// through a plain ClassifyBinary entry point. A caller-provided t stays
// caller-owned: the caller finishes it after writing the response.
func (s *Service) ClassifyBinaryTraced(r io.Reader, t *obs.Trace) (*Decision, error) {
	if err := s.enter(); err != nil {
		return nil, err
	}
	defer s.exit()
	start := time.Now()
	var d *Decision
	var benchmark string
	var err error
	var joined *obs.Trace
	if s.batcher != nil {
		d, benchmark, joined, err = s.batcher.ClassifyFrame(r, t, start)
	} else {
		d, benchmark, joined, err = s.classifyFrame(r, t)
	}
	if joined != nil && joined != t {
		joined.SetError(err)
		s.tracer.Finish(joined)
	}
	if benchmark != "" {
		hit := d != nil && d.CacheHit
		s.metrics.ObserveRequest(benchmark, time.Since(start), hit, err)
	}
	return d, err
}

// classifyFrame decodes one binary frame and classifies it in the same
// pass (the batcher's shard workers call it too). The benchmark name is
// returned even when classification fails — it is known once the header
// decodes — so callers can attribute metrics. The returned trace is t,
// or a fresh record joining the frame's ITX1 trace context when t was
// nil and the service has a tracer; such a record belongs to the caller
// chain that detects joined != t.
func (s *Service) classifyFrame(r io.Reader, t *obs.Trace) (*Decision, string, *obs.Trace, error) {
	var t0 time.Time
	if t != nil || s.tracer != nil {
		t0 = time.Now()
	}
	c, in, traceID, err := DecodeBinaryRequestContext(r)
	if err != nil {
		return nil, "", t, &RequestError{Err: fmt.Errorf("decoding binary request: %w", err)}
	}
	if t == nil && traceID != 0 {
		t = s.tracer.Join(s.traceSite, traceID)
	}
	if t != nil {
		t.SetBenchmark(c.Name)
		t.Span("decode", t0)
	}
	d, cerr := s.classifyNow(c.Name, in, t)
	c.Release(in)
	return d, c.Name, t, cerr
}

// classifyNow is the inline classification path (the batcher's workers
// call it too). All per-request mutable state — the meter, the feature
// row (drawn from the shared buffer pool and returned before the call
// ends) — is private to the call; the model snapshot is resolved once and
// used throughout, so a concurrent hot-reload never splits a request
// across two models.
func (s *Service) classifyNow(benchmark string, in core.Input, t *obs.Trace) (*Decision, error) {
	var ct time.Time
	if t != nil {
		ct = time.Now()
	}
	snap, ok := s.reg.Get(benchmark)
	if !ok {
		return nil, fmt.Errorf("serve: no model loaded for benchmark %q", benchmark)
	}
	model := snap.Model
	prod := model.Production
	set := model.Program.Features()
	meter := cost.NewMeter()

	var label int
	var cacheHit bool
	observer := s.sampleObserver()
	if (s.cache != nil || observer != nil) && prod.Kind == core.SubsetTree && len(prod.Static) > 0 {
		// Static-subset classifiers extract a fixed feature set, so the
		// decision is a pure function of (model snapshot, feature bits):
		// fingerprint those and let the cache skip the tree walk. The
		// extraction itself (the dominant cost, charged to the meter)
		// runs either way, so cached and uncached requests report the
		// same feature units and, by determinism, the same label. With
		// QuantizeBits > 0 the key is bucketed first — see CacheOptions.
		M := set.NumFeatures()
		scratch := feature.GetBuffer(M + len(prod.Static))
		scratch = scratch[:M+len(prod.Static)]
		row := set.ExtractSubsetInto(scratch[:M], in, prod.Static, meter)
		if s.cache != nil {
			vals := scratch[M:]
			for i, f := range prod.Static {
				vals[i] = row[f]
			}
			quantizeRow(s.quantizeBits, vals)
			key := engine.Fingerprint([]uint64{snap.Generation}, vals)
			if cached, hit := s.cache.Get(key); hit {
				label, cacheHit = cached, true
				t.Event("cache_hit")
			} else {
				label, _ = prod.PredictRow(row)
				s.cache.Put(key, label)
				t.Event("cache_miss")
			}
		} else {
			label, _ = prod.PredictRow(row)
		}
		if observer != nil {
			// The row (raw, unquantized — quantizeRow touched only the
			// vals half of scratch) and the input are lent to the observer
			// for the duration of the call; PutBuffer below reclaims them.
			observer.ObserveSample(Sample{
				Benchmark:  benchmark,
				Generation: snap.Generation,
				Input:      in,
				Row:        row,
				Indices:    prod.Static,
				Label:      label,
			})
		}
		feature.PutBuffer(scratch)
	} else {
		// Max-a-priori extracts nothing; the incremental classifier
		// chooses its features adaptively per input — both classify
		// directly. (Caching the incremental path would require paying
		// for a fixed key feature set first, which is exactly the cost
		// it exists to avoid.)
		label = prod.ClassifyInput(set, in, meter)
	}
	t.Span("classify", ct)
	return &Decision{
		Benchmark:         benchmark,
		Generation:        snap.Generation,
		Landmark:          label,
		Config:            model.Landmarks[label],
		ConfigDescription: model.Program.Space().DescribeConfig(model.Landmarks[label]),
		Classifier:        prod.Name,
		FeatureUnits:      meter.Elapsed(),
		CacheHit:          cacheHit,
	}, nil
}

// Load parses and publishes a model artifact (see Registry.Load),
// recording the reload in metrics on success.
func (s *Service) Load(artifact []byte) (*Snapshot, error) {
	snap, err := s.reg.Load(artifact)
	if err == nil {
		s.metrics.ObserveReload()
	}
	return snap, err
}

// CacheStats exposes decision-cache effectiveness (zeros when disabled).
func (s *Service) CacheStats() DecisionCacheStats { return s.cache.Stats() }
