package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"inputtune/internal/choice"
)

// Binary Decision response frame: the response-side counterpart of the
// ITW1 request frame, negotiated via the Accept header on POST
// /v1/classify. It carries every field of Decision losslessly — the
// selected landmark configuration travels in the injective binary Config
// encoding (choice.AppendBinary), not as re-parsed JSON — so a binary
// round trip reproduces exactly the Decision the JSON wire would have
// reported.
//
// Frame layout (integers little-endian, lengths uvarint):
//
//	offset  size        field
//	0       4           magic "ITD1"
//	then, in order:
//	  uvarint L, L bytes  benchmark name
//	  8                   generation (uint64)
//	  varint              landmark index
//	  uvarint L, L bytes  config (binary Config encoding)
//	  uvarint L, L bytes  config description
//	  uvarint L, L bytes  classifier name
//	  8                   feature units (IEEE-754 float64 bits)
//	  1                   cache hit (0 or 1)
//
// The frame is self-delimiting; trailing bytes are a schema mismatch and
// an error, matching the request decoder's strictness.

var decisionMagic = [4]byte{'I', 'T', 'D', '1'}

// maxDecisionField bounds any single variable-length field of a decision
// frame, so a hostile stream cannot make the decoder allocate
// unboundedly. Descriptions are a few hundred bytes in practice.
const maxDecisionField = 1 << 20

// AppendBinaryDecision appends d's binary response frame to dst.
func AppendBinaryDecision(dst []byte, d *Decision) []byte {
	appendStr := func(s string) {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	appendU64 := func(x uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], x)
		dst = append(dst, buf[:]...)
	}
	dst = append(dst, decisionMagic[:]...)
	appendStr(d.Benchmark)
	appendU64(d.Generation)
	dst = binary.AppendVarint(dst, int64(d.Landmark))
	var cfg []byte
	if d.Config != nil {
		cfg = d.Config.AppendBinary(nil)
	}
	dst = binary.AppendUvarint(dst, uint64(len(cfg)))
	dst = append(dst, cfg...)
	appendStr(d.ConfigDescription)
	appendStr(d.Classifier)
	appendU64(math.Float64bits(d.FeatureUnits))
	if d.CacheHit {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return dst
}

// DecodeBinaryDecision reads one binary decision frame from r, verifying
// the magic and that the stream ends exactly at the frame boundary.
func DecodeBinaryDecision(r io.Reader) (*Decision, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("serve: decision header: %w", err)
	}
	if magic != decisionMagic {
		return nil, fmt.Errorf("serve: bad decision magic %q", magic[:])
	}
	readBytes := func(field string) ([]byte, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("serve: decision field %q length: %w", field, err)
		}
		if n > maxDecisionField {
			return nil, fmt.Errorf("serve: decision field %q of %d bytes exceeds limit", field, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("serve: decision field %q: %w", field, err)
		}
		return b, nil
	}
	readU64 := func(field string) (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, fmt.Errorf("serve: decision field %q: %w", field, err)
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	d := &Decision{}
	b, err := readBytes("benchmark")
	if err != nil {
		return nil, err
	}
	d.Benchmark = string(b)
	gen, err := readU64("generation")
	if err != nil {
		return nil, err
	}
	d.Generation = gen
	lm, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("serve: decision field \"landmark\": %w", err)
	}
	d.Landmark = int(lm)
	cfg, err := readBytes("config")
	if err != nil {
		return nil, err
	}
	if len(cfg) > 0 {
		c, err := choice.DecodeConfig(byteSliceReader{rest: &cfg})
		if err != nil {
			return nil, fmt.Errorf("serve: decision config: %w", err)
		}
		if len(cfg) != 0 {
			return nil, fmt.Errorf("serve: decision config has %d trailing bytes", len(cfg))
		}
		d.Config = c
	}
	if b, err = readBytes("config_description"); err != nil {
		return nil, err
	}
	d.ConfigDescription = string(b)
	if b, err = readBytes("classifier"); err != nil {
		return nil, err
	}
	d.Classifier = string(b)
	fu, err := readU64("feature_units")
	if err != nil {
		return nil, err
	}
	d.FeatureUnits = math.Float64frombits(fu)
	hit, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("serve: decision field \"cache_hit\": %w", err)
	}
	switch hit {
	case 0:
	case 1:
		d.CacheHit = true
	default:
		return nil, fmt.Errorf("serve: decision cache_hit byte %d is not 0 or 1", hit)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("serve: trailing bytes after decision frame")
	}
	return d, nil
}

// byteSliceReader is an io.ByteReader over a shrinking slice, so the
// caller can verify the config blob was consumed exactly.
type byteSliceReader struct{ rest *[]byte }

func (s byteSliceReader) ReadByte() (byte, error) {
	b := *s.rest
	if len(b) == 0 {
		return 0, io.EOF
	}
	*s.rest = b[1:]
	return b[0], nil
}
