package serve

import (
	"container/list"
	"math"
	"sync"
)

// DefaultDecisionCacheCapacity bounds a cache built with capacity <= 0.
// Entries are a ~50-byte key plus an int, so the default costs well under
// a megabyte while covering a large working set of distinct inputs.
const DefaultDecisionCacheCapacity = 8192

// CacheOptions configures the decision cache.
type CacheOptions struct {
	// Capacity bounds the cache (entries; <= 0 selects
	// DefaultDecisionCacheCapacity).
	Capacity int
	// Disable turns the decision cache off — the A/B escape hatch; labels
	// are identical either way (test-enforced).
	Disable bool
	// QuantizeBits, when in 1..52, zeroes that many low mantissa bits of
	// each feature value before the cache key is fingerprinted, bucketing
	// near-duplicate inputs onto one entry so they share its label. This
	// raises hit rates on workloads whose inputs differ only in noise, BUT
	// it is an explicit opt-in that trades away the bit-identical
	// guarantee: a hit may return the label computed for a bucket
	// neighbour, which a decision-boundary-straddling bucket can make
	// differ from the label the exact walk would produce. 0 (the default)
	// keys on exact feature bits and never changes an answer.
	QuantizeBits int
}

// maxQuantizeBits is the widest meaningful bucket: zeroing all 52 mantissa
// bits keys on sign+exponent alone.
const maxQuantizeBits = 52

// clampQuantizeBits normalizes a requested mantissa truncation.
func clampQuantizeBits(bits int) int {
	if bits <= 0 {
		return 0
	}
	if bits > maxQuantizeBits {
		return maxQuantizeBits
	}
	return bits
}

// quantizeRow buckets feature values in place by zeroing the low bits of
// their float64 representations. bits == 0 is the identity (the exact,
// bit-identical default path).
func quantizeRow(bits int, vals []float64) {
	if bits <= 0 {
		return
	}
	mask := ^uint64(0) << uint(bits)
	for i, v := range vals {
		vals[i] = math.Float64frombits(math.Float64bits(v) & mask)
	}
}

// DecisionCache is a bounded LRU from feature-vector fingerprints to
// predicted landmarks. Keys are built by the Service with
// engine.Fingerprint over the snapshot generation and the EXACT bit
// patterns of the extracted feature values (Float64bits is the quantizer),
// and feature extraction is deterministic, so two requests sharing a key
// would necessarily receive the same prediction — a hit skips the
// classifier walk without ever changing an answer. Including the
// generation in the key makes a hot reload an implicit cache flush:
// entries from the superseded model can no longer be referenced.
//
// The nil *DecisionCache is valid and disables caching (every Get misses,
// Put is a no-op) — the escape hatch the parity tests and the serve-bench
// A/B mode use.
type DecisionCache struct {
	mu      sync.Mutex
	cap     int
	byKey   map[string]*list.Element
	recency list.List // front = most recently used

	hits, misses, evictions uint64
}

type decisionEntry struct {
	key   string
	label int
}

// NewDecisionCache returns a cache bounded at capacity entries (<= 0
// selects DefaultDecisionCacheCapacity).
func NewDecisionCache(capacity int) *DecisionCache {
	if capacity <= 0 {
		capacity = DefaultDecisionCacheCapacity
	}
	return &DecisionCache{cap: capacity, byKey: make(map[string]*list.Element)}
}

// Get returns the cached landmark for key, refreshing its recency.
func (c *DecisionCache) Get(key string) (label int, ok bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.recency.MoveToFront(el)
	return el.Value.(*decisionEntry).label, true
}

// Put stores the landmark for key, evicting the least recently used entry
// when the cache is full. Storing an existing key refreshes it.
func (c *DecisionCache) Put(key string, label int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*decisionEntry).label = label
		c.recency.MoveToFront(el)
		return
	}
	c.byKey[key] = c.recency.PushFront(&decisionEntry{key: key, label: label})
	for len(c.byKey) > c.cap {
		oldest := c.recency.Back()
		c.recency.Remove(oldest)
		delete(c.byKey, oldest.Value.(*decisionEntry).key)
		c.evictions++
	}
}

// DecisionCacheStats is a point-in-time effectiveness snapshot.
type DecisionCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s DecisionCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the counters. The nil cache reports zeros.
func (c *DecisionCache) Stats() DecisionCacheStats {
	if c == nil {
		return DecisionCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return DecisionCacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.byKey), Capacity: c.cap,
	}
}
