package serve

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"inputtune/internal/obs"
)

// TestTracingDisabledAddsNoAllocations pins the acceptance bar for the
// tracing hooks: a service built with a tracer whose sampling is disabled
// must classify a binary frame with exactly the same number of
// allocations as a service with no tracer at all. The hooks are on the
// hot path unconditionally; only the nil-trace fast path keeps them free.
func TestTracingDisabledAddsNoAllocations(t *testing.T) {
	reg := sortServiceRegistry(t)
	var frame bytes.Buffer
	if err := EncodeBinaryRequest(&frame, "sort", testModels.sortInputs[0]); err != nil {
		t.Fatal(err)
	}

	measure := func(svc *Service) float64 {
		r := bytes.NewReader(nil)
		// Warm up once so lazily-built state (metrics counters, cache
		// shards) doesn't bill its construction to the measured runs.
		r.Reset(frame.Bytes())
		if _, err := svc.ClassifyBinary(r); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() {
			r.Reset(frame.Bytes())
			if _, err := svc.ClassifyBinary(r); err != nil {
				t.Fatal(err)
			}
		})
	}

	bare := measure(NewService(reg, Options{}))
	disabled := measure(NewService(reg, Options{Tracer: obs.New(obs.Options{SampleEvery: 0})}))
	if disabled != bare {
		t.Fatalf("disabled-sampling tracer changed allocations per request: %v with hooks vs %v without", disabled, bare)
	}
}

// TestClassifyBinaryTracedSpans checks the serve-side stage spans land on
// a sampled trace, and that a frame carrying an ITX1 extension joins the
// announced trace ID instead of minting a new one.
func TestClassifyBinaryTracedSpans(t *testing.T) {
	reg := sortServiceRegistry(t)
	tr := obs.New(obs.Options{SampleEvery: 1})
	svc := NewService(reg, Options{Tracer: tr})

	var frame bytes.Buffer
	if err := EncodeBinaryRequest(&frame, "sort", testModels.sortInputs[0]); err != nil {
		t.Fatal(err)
	}

	// Handler-owned trace: spans attach to the trace the caller passes in.
	tc := tr.Start("serve")
	if _, err := svc.ClassifyBinaryTraced(bytes.NewReader(frame.Bytes()), tc); err != nil {
		t.Fatal(err)
	}
	tr.Finish(tc)
	view := findTrace(t, tr, obs.FormatID(tc.ID()))
	if view.Benchmark != "sort" {
		t.Fatalf("trace benchmark: %q", view.Benchmark)
	}
	spans := map[string]bool{}
	for _, sp := range view.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"decode", "classify"} {
		if !spans[want] {
			t.Fatalf("trace missing %q span; recorded %v", want, spans)
		}
	}

	// Frame-extension join: a wrapped frame with no caller trace must
	// produce a record under the ID the extension announces.
	const wireID = 0x7e57ab1e
	wrapped := AppendTraceContext(nil, wireID)
	wrapped = append(wrapped, frame.Bytes()...)
	if _, err := svc.ClassifyBinaryTraced(bytes.NewReader(wrapped), nil); err != nil {
		t.Fatal(err)
	}
	joined := findTrace(t, tr, obs.FormatID(wireID))
	if joined.Benchmark != "sort" {
		t.Fatalf("joined trace benchmark: %q", joined.Benchmark)
	}
}

func findTrace(t *testing.T, tr *obs.Tracer, id string) obs.TraceView {
	t.Helper()
	for _, v := range tr.Snapshot(100) {
		if v.ID == id {
			return v
		}
	}
	t.Fatalf("trace %s not in snapshot", id)
	return obs.TraceView{}
}

// TestTracingDisabledHandlerAllocsIdentical extends the pin through the
// HTTP surface: the full handler path (header sniff, startTrace, binary
// classify, ITD1 encode) allocates identically with a disabled-sampling
// tracer and with none, so the servebench allocs_per_request trajectory
// cannot move when tracing ships dark.
func TestTracingDisabledHandlerAllocsIdentical(t *testing.T) {
	reg := sortServiceRegistry(t)
	var frame bytes.Buffer
	if err := EncodeBinaryRequest(&frame, "sort", testModels.sortInputs[0]); err != nil {
		t.Fatal(err)
	}

	measure := func(svc *Service) float64 {
		h := NewHandler(svc)
		body := bytes.NewReader(nil)
		do := func() {
			body.Reset(frame.Bytes())
			req := httptest.NewRequest("POST", "/v1/classify", body)
			req.Header.Set("Content-Type", ContentTypeBinary)
			req.Header.Set("Accept", ContentTypeBinary)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
		do() // warm-up
		return testing.AllocsPerRun(200, do)
	}

	bare := measure(NewService(reg, Options{}))
	disabled := measure(NewService(reg, Options{Tracer: obs.New(obs.Options{SampleEvery: 0})}))
	if disabled != bare {
		t.Fatalf("disabled-sampling tracer changed handler allocations per request: %v with hooks vs %v without", disabled, bare)
	}
}
