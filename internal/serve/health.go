package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// ITH1 health/handshake frame: the binary-wire counterpart of the JSON
// /healthz body, negotiated via the Accept header. The fleet router
// health-checks its replicas over this frame — one compact read tells it
// whether the replica is accepting traffic, which wire formats it
// negotiates, and the generation of every loaded model (the input to the
// rolling-reload skew accounting) — without a JSON parse on the health
// hot loop.
//
// Frame layout (integers little-endian, lengths uvarint):
//
//	offset  size        field
//	0       4           magic "ITH1"
//	4       1           status byte: bit 0 = draining
//	5       1           wires bitmask: bit 0 = json, bit 1 = binary
//	then:
//	  uvarint             model count
//	  per model:
//	    uvarint L, L bytes  benchmark name
//	    8                   generation (uint64)
//	    8                   artifact content hash (uint64, 0 = in-process)
//	    1                   flags: bit 0 = drift detected, bit 1 = retraining
//
// The frame is self-delimiting; trailing bytes are a schema mismatch and
// an error, matching the ITW1/ITD1 decoders' strictness. The per-model
// flags byte carries the drift loop's state fleet-wide: the router's
// health scrape is how the fleet roll-up learns which replicas have
// detected drift or are mid-retrain, with no extra endpoint.

var healthMagic = [4]byte{'I', 'T', 'H', '1'}

// maxHealthModels bounds the declared model count so a hostile frame
// cannot make the decoder allocate unboundedly; a registry holds one
// entry per builtin benchmark, so real frames carry a handful.
const maxHealthModels = 1024

// ModelHealth is one loaded model as reported by a health check.
type ModelHealth struct {
	Benchmark  string `json:"benchmark"`
	Generation uint64 `json:"generation"`
	// ArtifactHash identifies the model version across replicas (the
	// registry generation is a local counter); 0 when the model was
	// installed in-process rather than loaded from an artifact.
	ArtifactHash uint64 `json:"artifact_hash,omitempty"`
	// DriftDetected and Retraining mirror the replica's drift-loop state
	// for this model (the ITH1 per-model flags byte).
	DriftDetected bool `json:"drift_detected,omitempty"`
	Retraining    bool `json:"retraining,omitempty"`
}

// Health is a service's liveness report: what the /healthz endpoint
// carries in either representation, and what the fleet router's replica
// health checks consume.
type Health struct {
	// Draining reports that the service has begun a graceful drain: it is
	// finishing in-flight requests but rejecting new ones, so routers
	// should stop sending traffic without counting it as a failure.
	Draining bool `json:"draining,omitempty"`
	// Wires lists the accepted request formats.
	Wires []Wire `json:"-"`
	// Models lists every loaded model with its registry generation.
	Models []ModelHealth `json:"models"`
}

// Health assembles the service's current liveness report, folding in the
// drift loop's per-benchmark state when a provider is registered.
func (s *Service) Health() Health {
	h := Health{Draining: s.Draining()}
	for _, w := range []Wire{WireJSON, WireBinary} {
		if s.AcceptsWire(w) {
			h.Wires = append(h.Wires, w)
		}
	}
	drift := s.DriftStatuses()
	for _, snap := range s.reg.Snapshots() {
		st := drift[snap.Benchmark]
		h.Models = append(h.Models, ModelHealth{
			Benchmark:     snap.Benchmark,
			Generation:    snap.Generation,
			ArtifactHash:  snap.ArtifactHash,
			DriftDetected: st.Drifted,
			Retraining:    st.Retraining,
		})
	}
	return h
}

// AppendHealthFrame appends h's ITH1 binary frame to dst.
func AppendHealthFrame(dst []byte, h Health) []byte {
	dst = append(dst, healthMagic[:]...)
	var status byte
	if h.Draining {
		status |= 1
	}
	dst = append(dst, status)
	var wires byte
	for _, w := range h.Wires {
		if w == WireJSON || w == WireBinary {
			wires |= 1 << uint(w)
		}
	}
	dst = append(dst, wires)
	dst = binary.AppendUvarint(dst, uint64(len(h.Models)))
	var buf [8]byte
	for _, m := range h.Models {
		dst = binary.AppendUvarint(dst, uint64(len(m.Benchmark)))
		dst = append(dst, m.Benchmark...)
		binary.LittleEndian.PutUint64(buf[:], m.Generation)
		dst = append(dst, buf[:]...)
		binary.LittleEndian.PutUint64(buf[:], m.ArtifactHash)
		dst = append(dst, buf[:]...)
		var flags byte
		if m.DriftDetected {
			flags |= 1
		}
		if m.Retraining {
			flags |= 2
		}
		dst = append(dst, flags)
	}
	return dst
}

// DecodeHealthFrame reads one ITH1 frame from r, verifying the magic and
// that the stream ends exactly at the frame boundary.
func DecodeHealthFrame(r io.Reader) (Health, error) {
	br := bufio.NewReader(r)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Health{}, fmt.Errorf("serve: health header: %w", err)
	}
	if [4]byte(hdr[:4]) != healthMagic {
		return Health{}, fmt.Errorf("serve: bad health magic %q", hdr[:4])
	}
	if hdr[4] > 1 {
		return Health{}, fmt.Errorf("serve: health status byte %d out of range", hdr[4])
	}
	if hdr[5] > 3 {
		return Health{}, fmt.Errorf("serve: health wires bitmask %d out of range", hdr[5])
	}
	h := Health{Draining: hdr[4]&1 != 0}
	for _, w := range []Wire{WireJSON, WireBinary} {
		if hdr[5]&(1<<uint(w)) != 0 {
			h.Wires = append(h.Wires, w)
		}
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return Health{}, fmt.Errorf("serve: health model count: %w", err)
	}
	if count > maxHealthModels {
		return Health{}, fmt.Errorf("serve: health frame declares %d models, limit %d", count, maxHealthModels)
	}
	for i := uint64(0); i < count; i++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return Health{}, fmt.Errorf("serve: health model %d name length: %w", i, err)
		}
		if n == 0 || n > maxWireName {
			return Health{}, fmt.Errorf("serve: health model %d name length %d out of range", i, n)
		}
		name := make([]byte, n)
		if _, err := io.ReadFull(br, name); err != nil {
			return Health{}, fmt.Errorf("serve: health model %d name: %w", i, err)
		}
		var fixed [17]byte
		if _, err := io.ReadFull(br, fixed[:]); err != nil {
			return Health{}, fmt.Errorf("serve: health model %d generation/hash/flags: %w", i, err)
		}
		if fixed[16] > 3 {
			return Health{}, fmt.Errorf("serve: health model %d flags byte %d out of range", i, fixed[16])
		}
		h.Models = append(h.Models, ModelHealth{
			Benchmark:     string(name),
			Generation:    binary.LittleEndian.Uint64(fixed[:8]),
			ArtifactHash:  binary.LittleEndian.Uint64(fixed[8:16]),
			DriftDetected: fixed[16]&1 != 0,
			Retraining:    fixed[16]&2 != 0,
		})
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return Health{}, fmt.Errorf("serve: trailing bytes after health frame")
	}
	return h, nil
}
