package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer starts an httptest server with the sort model loaded.
func newTestServer(t *testing.T) (*httptest.Server, *Service) {
	t.Helper()
	reg := sortServiceRegistry(t)
	svc := NewService(reg, Options{})
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	t.Cleanup(svc.Close)
	return srv, svc
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHTTPClassify(t *testing.T) {
	srv, _ := newTestServer(t)
	want := offlineLabels(testModels.sortModel, testModels.sortInputs)
	codec, _ := LookupCodec("sort")
	for i, in := range testModels.sortInputs[:8] {
		raw, err := codec.EncodeJSON(in)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(classifyRequest{Benchmark: "sort", Input: raw})
		resp, data := postJSON(t, srv.URL+"/v1/classify", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify input %d: %d %s", i, resp.StatusCode, data)
		}
		var d Decision
		if err := json.Unmarshal(data, &d); err != nil {
			t.Fatal(err)
		}
		if d.Landmark != want[i] {
			t.Fatalf("input %d: served %d, offline %d", i, d.Landmark, want[i])
		}
		if d.Config == nil || d.ConfigDescription == "" || d.Generation == 0 {
			t.Fatalf("decision incomplete: %+v", d)
		}
	}
}

func TestHTTPClassifyErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		body   string
		status int
	}{
		{`{`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"benchmark": "nosuch", "input": {"data": [1]}}`, http.StatusNotFound},
		{`{"benchmark": "sort", "input": {"data": []}}`, http.StatusBadRequest},
		// Registered program, valid input, but no model loaded.
		{`{"benchmark": "svd", "input": {"rows": 1, "cols": 1, "data": [1]}}`, http.StatusServiceUnavailable},
	}
	for i, tc := range cases {
		resp, data := postJSON(t, srv.URL+"/v1/classify", []byte(tc.body))
		if resp.StatusCode != tc.status {
			t.Fatalf("case %d: got %d want %d (%s)", i, resp.StatusCode, tc.status, data)
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Fatalf("case %d: error body malformed: %s", i, data)
		}
	}
}

func TestHTTPReloadAndModels(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, data := postJSON(t, srv.URL+"/v1/reload", testModels.sortArtifct)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, data)
	}
	var rr reloadResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Benchmark != "sort" || rr.Generation < 2 || rr.Bytes != len(testModels.sortArtifct) {
		t.Fatalf("reload response %+v", rr)
	}

	// A bad artifact is a client error and leaves the model serving.
	resp, _ = postJSON(t, srv.URL+"/v1/reload", []byte("garbage"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad reload: %d", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var models []modelInfo
	if err := json.NewDecoder(mresp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Benchmark != "sort" ||
		models[0].Generation != rr.Generation || models[0].Landmarks == 0 {
		t.Fatalf("models %+v", models)
	}
}

func TestHTTPMetricsAndHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	codec, _ := LookupCodec("sort")
	raw, _ := codec.EncodeJSON(testModels.sortInputs[0])
	body, _ := json.Marshal(classifyRequest{Benchmark: "sort", Input: raw})
	postJSON(t, srv.URL+"/v1/classify", body)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "inputtuned_requests_total 1") {
		t.Fatalf("metrics text missing request count:\n%s", text)
	}

	resp, err = http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil || snap.Requests != 1 {
		t.Fatalf("metrics json: %v %+v", err, snap)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || h.Status != "ok" || h.Models != 1 {
		t.Fatalf("healthz: %v %+v", err, h)
	}
}

// TestHTTPConcurrentClassifyDuringReload drives the full HTTP stack from
// several clients while artifacts reload, asserting zero failed requests.
func TestHTTPConcurrentClassifyDuringReload(t *testing.T) {
	srv, _ := newTestServer(t)
	want := offlineLabels(testModels.sortModel, testModels.sortInputs)
	codec, _ := LookupCodec("sort")
	bodies := make([][]byte, len(testModels.sortInputs))
	for i, in := range testModels.sortInputs {
		raw, err := codec.EncodeJSON(in)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i], _ = json.Marshal(classifyRequest{Benchmark: "sort", Input: raw})
	}

	const clients = 6
	errCh := make(chan error, clients+1)
	done := make(chan struct{})
	for c := 0; c < clients; c++ {
		go func() {
			var err error
			defer func() { errCh <- err }()
			for round := 0; round < 4; round++ {
				for i, body := range bodies {
					resp, e := http.Post(srv.URL+"/v1/classify", "application/json", bytes.NewReader(body))
					if e != nil {
						err = e
						return
					}
					var d Decision
					e = json.NewDecoder(resp.Body).Decode(&d)
					resp.Body.Close()
					if e != nil {
						err = e
						return
					}
					if resp.StatusCode != http.StatusOK || d.Landmark != want[i] {
						err = fmt.Errorf("round %d input %d: status %d landmark %d want %d",
							round, i, resp.StatusCode, d.Landmark, want[i])
						return
					}
				}
			}
		}()
	}
	go func() {
		var err error
		defer func() { errCh <- err }()
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, e := http.Post(srv.URL+"/v1/reload", "application/json", bytes.NewReader(testModels.sortArtifct))
			if e != nil {
				err = e
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("reload failed mid-traffic: %d", resp.StatusCode)
				return
			}
		}
	}()
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}
