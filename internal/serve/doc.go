// Package serve is the deployment runtime: it turns trained models (the
// SaveModel artifacts the training pipeline emits) into a concurrent
// classification service with hot reload, a bounded decision cache, a
// sharded batching layer and a metrics surface.
//
// The layering, bottom to top:
//
//   - Registry — named benchmarks, each holding its current model behind
//     an atomic.Pointer. Load validates a new artifact against the
//     benchmark's Program and swaps it in atomically: in-flight requests
//     keep the snapshot they started with, new requests see the new one,
//     and a bad artifact is rejected without disturbing the live model.
//   - DecisionCache — a bounded LRU from fingerprinted feature vectors
//     (exact Float64bits by default; CacheOptions.QuantizeBits opts into
//     bucketed keys) to predicted landmarks. Feature extraction is
//     deterministic, so with exact keys a hit returns exactly the label a
//     fresh prediction would; the cache can only skip work, never change
//     an answer.
//   - Service — the per-request path: resolve the model snapshot, extract
//     features on a private cost.Meter (requests never share mutable
//     state; see core.Model.Infer for the contract), consult the decision
//     cache, predict, and record metrics.
//   - Batcher — optional sharded worker/batching layer: requests are
//     spread round-robin over shards, each shard drains its queue into
//     small batches and classifies them on the shared engine.Pool, so a
//     flood of HTTP goroutines degrades into bounded, batched work
//     instead of unbounded concurrency.
//   - Handler — the stdlib net/http API served by cmd/inputtuned:
//     POST /v1/classify (content-negotiated between the JSON envelope and
//     the binary frame), POST /v1/reload, GET /v1/models, GET /metrics,
//     GET /healthz.
//
// Wire inputs are decoded per benchmark by the schema-driven codecs in
// codec.go over the wire layer in wire.go: one schema per benchmark, two
// negotiated formats (JSON, kept bit-compatible with PR 4, and the
// length-prefixed binary frame whose vectors stream into pooled buffers —
// see docs/ARCHITECTURE.md § Wire protocol). The serve-bench load
// generator (internal/exp) uses the same codecs to encode generated
// inputs, so the bench drives the real wire path, one arm per format.
package serve
