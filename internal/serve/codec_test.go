package serve

import (
	"bytes"
	"encoding/binary"
	"testing"

	"inputtune/internal/benchmarks/binpack"
	"inputtune/internal/benchmarks/clustering"
	"inputtune/internal/benchmarks/helmholtz3d"
	"inputtune/internal/benchmarks/poisson2d"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/benchmarks/svd"
	"inputtune/internal/core"
)

// sampleInputs builds one small generated input per benchmark.
func sampleInputs() map[string]core.Input {
	return map[string]core.Input{
		"sort":        sortbench.GenerateMix(sortbench.MixOptions{Count: 1, Seed: 3, MaxSize: 128})[0],
		"clustering":  clustering.GenerateMix(clustering.MixOptions{Count: 1, Seed: 3, MaxSize: 120})[0],
		"binpacking":  binpack.GenerateMix(binpack.MixOptions{Count: 1, Seed: 3})[0],
		"svd":         svd.GenerateMix(svd.MixOptions{Count: 1, Seed: 3})[0],
		"poisson2d":   poisson2d.GenerateMix(poisson2d.MixOptions{Count: 1, Seed: 3, Sizes: []int{15}})[0],
		"helmholtz3d": helmholtz3d.GenerateMix(helmholtz3d.MixOptions{Count: 1, Seed: 3, Sizes: []int{7}})[0],
	}
}

// TestCodecRoundTripPreservesFeatures encodes each benchmark's input onto
// each wire and back, then checks the decoded input yields bit-identical
// feature vectors — the only thing classification reads — regardless of
// the format it traveled in.
func TestCodecRoundTripPreservesFeatures(t *testing.T) {
	inputs := sampleInputs()
	for name, in := range inputs {
		codec, err := LookupCodec(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		set := codec.NewProgram().Features()
		wantV, wantC := set.ExtractAll(in)
		for _, wire := range []Wire{WireJSON, WireBinary} {
			var buf bytes.Buffer
			if err := codec.Encode(wire, &buf, in); err != nil {
				t.Fatalf("%s %s encode: %v", name, wire, err)
			}
			back, err := codec.Decode(wire, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s %s decode: %v", name, wire, err)
			}
			gotV, gotC := set.ExtractAll(back)
			for f := range wantV {
				if wantV[f] != gotV[f] || wantC[f] != gotC[f] {
					t.Fatalf("%s %s: feature %d diverged after round trip: (%v,%v) vs (%v,%v)",
						name, wire, f, wantV[f], wantC[f], gotV[f], gotC[f])
				}
			}
			codec.Release(back)
		}
	}
}

// TestBinaryRequestRoundTrip exercises the envelope-free framed request
// path (benchmark name inside the frame) for every benchmark.
func TestBinaryRequestRoundTrip(t *testing.T) {
	for name, in := range sampleInputs() {
		var buf bytes.Buffer
		if err := EncodeBinaryRequest(&buf, name, in); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		codec, back, err := DecodeBinaryRequest(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if codec.Name != name {
			t.Fatalf("frame for %s resolved codec %s", name, codec.Name)
		}
		set := codec.NewProgram().Features()
		wantV, _ := set.ExtractAll(in)
		gotV, _ := set.ExtractAll(back)
		for f := range wantV {
			if wantV[f] != gotV[f] {
				t.Fatalf("%s: feature %d diverged over binary request: %v vs %v",
					name, f, wantV[f], gotV[f])
			}
		}
		codec.Release(back)
	}
}

func TestCodecCoverage(t *testing.T) {
	// Every builtin program must have a codec with a matching name, and
	// the builtin registry must register exactly those names.
	codecs := Codecs()
	if len(codecs) != 6 {
		t.Fatalf("expected 6 codecs, got %d", len(codecs))
	}
	for name, c := range codecs {
		if got := c.NewProgram().Name(); got != name {
			t.Fatalf("codec %q constructs program %q", name, got)
		}
	}
	reg := BuiltinRegistry()
	if got := len(reg.Names()); got != 6 {
		t.Fatalf("builtin registry has %d benchmarks", got)
	}
	if _, err := LookupCodec("nosuch"); err == nil {
		t.Fatal("LookupCodec on unknown name succeeded")
	}
}

func TestCodecDecodeRejectsMalformedJSON(t *testing.T) {
	bad := map[string][]string{
		"sort":        {`{}`, `{"data": []}`, `[1,2]`},
		"clustering":  {`{}`, `{"x": [1], "y": []}`},
		"binpacking":  {`{}`, `{"sizes": []}`},
		"svd":         {`{}`, `{"rows": 2, "cols": 2, "data": [1]}`, `{"rows": -1, "cols": 2, "data": []}`},
		"poisson2d":   {`{}`, `{"n": 3, "f": [0]}`},
		"helmholtz3d": {`{}`, `{"n": 3, "f": [0], "a": [0], "c": 1}`},
	}
	for name, payloads := range bad {
		codec, err := LookupCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range payloads {
			if _, err := codec.DecodeJSON([]byte(p)); err == nil {
				t.Fatalf("%s accepted %s", name, p)
			}
		}
	}
}

func TestCodecDecodeRejectsMalformedBinary(t *testing.T) {
	// A valid sort frame to mutate.
	var good bytes.Buffer
	in := &sortbench.List{Data: []float64{3, 1, 2}}
	if err := EncodeBinaryRequest(&good, "sort", in); err != nil {
		t.Fatal(err)
	}
	frame := good.Bytes()

	reject := func(label string, data []byte) {
		t.Helper()
		if _, _, err := DecodeBinaryRequest(bytes.NewReader(data)); err == nil {
			t.Fatalf("binary decode accepted %s", label)
		}
	}
	reject("empty input", nil)
	reject("bad magic", append([]byte("XXXX"), frame[4:]...))
	reject("truncated header", frame[:3])
	reject("truncated name", frame[:6])
	reject("truncated vector", frame[:len(frame)-5])
	reject("trailing bytes", append(append([]byte{}, frame...), 0xFF))
	reject("unknown benchmark", func() []byte {
		var b bytes.Buffer
		b.Write(wireMagic[:])
		b.WriteByte(6)
		b.WriteString("nosuch")
		return b.Bytes()
	}())
	// A count claiming more elements than any request could carry.
	reject("oversized count", func() []byte {
		var b bytes.Buffer
		b.Write(wireMagic[:])
		b.WriteByte(4)
		b.WriteString("sort")
		var word [8]byte
		binary.LittleEndian.PutUint64(word[:], uint64(maxVecElems)+1)
		b.Write(word[:])
		return b.Bytes()
	}())

	// A frame for one benchmark must not decode through another's codec.
	codec, err := LookupCodec("binpacking")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Decode(WireBinary, bytes.NewReader(frame)); err == nil {
		t.Fatal("binpacking codec accepted a sort frame")
	}
}
