package serve

import (
	"encoding/json"
	"testing"

	"inputtune/internal/benchmarks/binpack"
	"inputtune/internal/benchmarks/clustering"
	"inputtune/internal/benchmarks/helmholtz3d"
	"inputtune/internal/benchmarks/poisson2d"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/benchmarks/svd"
	"inputtune/internal/core"
)

// sampleInputs builds one small generated input per benchmark.
func sampleInputs() map[string]core.Input {
	return map[string]core.Input{
		"sort":        sortbench.GenerateMix(sortbench.MixOptions{Count: 1, Seed: 3, MaxSize: 128})[0],
		"clustering":  clustering.GenerateMix(clustering.MixOptions{Count: 1, Seed: 3, MaxSize: 120})[0],
		"binpacking":  binpack.GenerateMix(binpack.MixOptions{Count: 1, Seed: 3})[0],
		"svd":         svd.GenerateMix(svd.MixOptions{Count: 1, Seed: 3})[0],
		"poisson2d":   poisson2d.GenerateMix(poisson2d.MixOptions{Count: 1, Seed: 3, Sizes: []int{15}})[0],
		"helmholtz3d": helmholtz3d.GenerateMix(helmholtz3d.MixOptions{Count: 1, Seed: 3, Sizes: []int{7}})[0],
	}
}

// TestCodecRoundTripPreservesFeatures encodes each benchmark's input to
// the wire and back, then checks the decoded input yields bit-identical
// feature vectors — the only thing classification reads.
func TestCodecRoundTripPreservesFeatures(t *testing.T) {
	inputs := sampleInputs()
	for name, in := range inputs {
		codec, err := LookupCodec(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		raw, err := codec.Encode(in)
		if err != nil {
			t.Fatalf("%s encode: %v", name, err)
		}
		back, err := codec.Decode(raw)
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		set := codec.NewProgram().Features()
		wantV, wantC := set.ExtractAll(in)
		gotV, gotC := set.ExtractAll(back)
		for f := range wantV {
			if wantV[f] != gotV[f] || wantC[f] != gotC[f] {
				t.Fatalf("%s: feature %d diverged after round trip: (%v,%v) vs (%v,%v)",
					name, f, wantV[f], wantC[f], gotV[f], gotC[f])
			}
		}
	}
}

func TestCodecCoverage(t *testing.T) {
	// Every builtin program must have a codec with a matching name, and
	// the builtin registry must register exactly those names.
	codecs := Codecs()
	if len(codecs) != 6 {
		t.Fatalf("expected 6 codecs, got %d", len(codecs))
	}
	for name, c := range codecs {
		if got := c.NewProgram().Name(); got != name {
			t.Fatalf("codec %q constructs program %q", name, got)
		}
	}
	reg := BuiltinRegistry()
	if got := len(reg.Names()); got != 6 {
		t.Fatalf("builtin registry has %d benchmarks", got)
	}
	if _, err := LookupCodec("nosuch"); err == nil {
		t.Fatal("LookupCodec on unknown name succeeded")
	}
}

func TestCodecDecodeRejectsMalformed(t *testing.T) {
	bad := map[string][]string{
		"sort":        {`{}`, `{"data": []}`, `[1,2]`},
		"clustering":  {`{}`, `{"x": [1], "y": []}`},
		"binpacking":  {`{}`, `{"sizes": []}`},
		"svd":         {`{}`, `{"rows": 2, "cols": 2, "data": [1]}`, `{"rows": -1, "cols": 2, "data": []}`},
		"poisson2d":   {`{}`, `{"n": 3, "f": [0]}`},
		"helmholtz3d": {`{}`, `{"n": 3, "f": [0], "a": [0], "c": 1}`},
	}
	for name, payloads := range bad {
		codec, err := LookupCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range payloads {
			if _, err := codec.Decode(json.RawMessage(p)); err == nil {
				t.Fatalf("%s accepted %s", name, p)
			}
		}
	}
}
