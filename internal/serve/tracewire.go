package serve

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Trace-context frame extension: a fixed-size envelope a traced sender
// may prepend to an ITW1 frame so binary-wire hops join the sender's
// trace without an out-of-band channel (the fleet router wraps the
// frames it forwards to replicas; HTTP hops also carry the ID in the
// X-Inputtune-Trace header).
//
// Extension layout (little-endian):
//
//	offset  size  field
//	0       4     magic "ITX1"
//	4       8     trace ID (nonzero uint64)
//	12      1     flags (only bit 0 "sampled" is defined; others reject)
//
// The extension is strictly validated: a frame that opens with the ITX1
// magic but is truncated, carries a zero ID, or sets unknown flag bits
// is a malformed request, not a plain ITW1 frame. The inner frame is
// untouched — fingerprints, decision caches, and consistent-hash
// sharding are functions of the ITW1 bytes only, so turning tracing on
// never moves a request to a different replica.

var traceMagic = [4]byte{'I', 'T', 'X', '1'}

const (
	// TraceContextLen is the extension's fixed wire size.
	TraceContextLen = 13
	// traceFlagSampled marks the trace as head-sampled upstream. It is
	// the only defined flag; currently always set by AppendTraceContext.
	traceFlagSampled = 0x01
)

// AppendTraceContext appends the trace-context extension for id to dst.
// id must be nonzero (a zero ID cannot cross the wire; PeelTraceContext
// rejects it).
func AppendTraceContext(dst []byte, id uint64) []byte {
	dst = append(dst, traceMagic[:]...)
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], id)
	dst = append(dst, word[:]...)
	return append(dst, traceFlagSampled)
}

// validateTraceContext checks the 9 bytes after the magic.
func validateTraceContext(id uint64, flags byte) error {
	if flags&^traceFlagSampled != 0 {
		return &RequestError{Err: fmt.Errorf("serve: trace context: unknown flag bits 0x%02x", flags)}
	}
	if id == 0 {
		return &RequestError{Err: fmt.Errorf("serve: trace context: zero trace ID")}
	}
	return nil
}

// PeelTraceContext strips a leading trace-context extension from a
// buffered frame. When buf does not open with the ITX1 magic it is
// returned unchanged with ok=false and no error; when it does, the
// extension is validated strictly and rest aliases the inner frame.
func PeelTraceContext(buf []byte) (id uint64, rest []byte, ok bool, err error) {
	if len(buf) < 4 || [4]byte(buf[:4]) != traceMagic {
		return 0, buf, false, nil
	}
	if len(buf) < TraceContextLen {
		return 0, buf, false, &RequestError{Err: fmt.Errorf("serve: trace context: truncated extension (%d bytes)", len(buf))}
	}
	id = binary.LittleEndian.Uint64(buf[4:12])
	if err := validateTraceContext(id, buf[12]); err != nil {
		return 0, buf, false, err
	}
	return id, buf[TraceContextLen:], true, nil
}

// readTraceContextBody consumes the 9 extension bytes after an already-
// read ITX1 magic from a stream.
func readTraceContextBody(r io.Reader) (uint64, error) {
	var body [TraceContextLen - 4]byte
	if _, err := io.ReadFull(r, body[:]); err != nil {
		return 0, fmt.Errorf("serve: trace context: %w", err)
	}
	id := binary.LittleEndian.Uint64(body[:8])
	if err := validateTraceContext(id, body[8]); err != nil {
		return 0, err
	}
	return id, nil
}
