package serve

import (
	"bytes"
	"fmt"
	"io"

	"inputtune/internal/benchmarks/binpack"
	"inputtune/internal/benchmarks/clustering"
	"inputtune/internal/benchmarks/helmholtz3d"
	"inputtune/internal/benchmarks/poisson2d"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/benchmarks/svd"
	"inputtune/internal/core"
	"inputtune/internal/linalg"
	"inputtune/internal/pde"
)

// Codec is one benchmark's wire format, symmetric across the negotiated
// encodings: Decode parses a request body into the program's concrete
// input type and Encode renders an input back onto the wire, for both
// WireJSON (the PR-4 format, kept bit-compatible) and WireBinary (the
// length-prefixed format of wire.go). Per benchmark only the schema —
// field names plus the payload↔input conversions — is specific; all
// serialization is generic, so the two formats carry identical content by
// construction and served labels cannot depend on the format (enforced by
// TestServedLabelsBitIdenticalAcrossWires).
//
// The wire carries only what classification needs — the raw data feature
// extractors read. Execution-only details (e.g. the clustering inputs'
// internal decorrelation seed) are deliberately not part of it: the
// serving runtime classifies, it does not run the workload.
type Codec struct {
	// Name is the program name (Program.Name()) the codec serves.
	Name string
	// NewProgram constructs the benchmark program.
	NewProgram func() core.Program

	sch *schema
}

// maxDimField bounds scalar dimension fields (n, rows, cols) so that
// element-count arithmetic (n², n³, rows·cols) can never overflow before
// validation compares it against the actual vector lengths.
const maxDimField = 1 << 20

// codecByName indexes builtinCodecs once for the per-request lookup.
var codecByName = func() map[string]*Codec {
	m := make(map[string]*Codec, len(builtinCodecs))
	for _, c := range builtinCodecs {
		m[c.Name] = c
	}
	return m
}()

// Codecs returns the builtin benchmark codecs keyed by program name.
func Codecs() map[string]*Codec {
	out := make(map[string]*Codec, len(codecByName))
	for name, c := range codecByName {
		out[name] = c
	}
	return out
}

// LookupCodec returns the codec for a program name.
func LookupCodec(name string) (*Codec, error) {
	c, ok := codecByName[name]
	if !ok {
		return nil, fmt.Errorf("serve: no codec for benchmark %q", name)
	}
	return c, nil
}

// BuiltinRegistry returns a registry with every builtin benchmark program
// registered (no models loaded yet).
func BuiltinRegistry() *Registry {
	r := NewRegistry()
	for _, c := range builtinCodecs {
		// Names are distinct by construction; Register cannot fail here.
		if err := r.Register(c.NewProgram()); err != nil {
			panic(err)
		}
	}
	return r
}

// Decode parses one wire body into the benchmark's input type. For
// WireJSON, r carries the input object (the "input" value of the request
// envelope); for WireBinary it carries a full frame, whose benchmark name
// must match the codec's.
func (c *Codec) Decode(wire Wire, r io.Reader) (core.Input, error) {
	switch wire {
	case WireJSON:
		raw, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		return c.DecodeJSON(raw)
	case WireBinary:
		name, err := readBinaryHeader(r)
		if err != nil {
			return nil, err
		}
		if name != c.Name {
			return nil, fmt.Errorf("serve: binary frame is for benchmark %q, codec serves %q", name, c.Name)
		}
		return c.decodeBinaryBody(r)
	default:
		return nil, fmt.Errorf("serve: unknown wire format %d", int(wire))
	}
}

// DecodeJSON parses the benchmark's JSON input object.
func (c *Codec) DecodeJSON(raw []byte) (core.Input, error) {
	p, err := c.sch.decodeJSON(raw)
	if err != nil {
		return nil, err
	}
	return c.buildInput(p)
}

// decodeBinaryBody parses a binary frame whose header has been consumed.
func (c *Codec) decodeBinaryBody(r io.Reader) (core.Input, error) {
	p, err := decodeBinaryPayload(r, c.sch)
	if err != nil {
		return nil, err
	}
	return c.buildInput(p)
}

// buildInput assembles the validated input, returning payload buffers to
// the pool on rejection.
func (c *Codec) buildInput(p *payload) (core.Input, error) {
	in, err := c.sch.build(p)
	if err != nil {
		p.release()
		return nil, err
	}
	return in, nil
}

// Encode renders an input onto w in the chosen wire format: the JSON input
// object for WireJSON, a full self-describing frame for WireBinary.
func (c *Codec) Encode(wire Wire, w io.Writer, in core.Input) error {
	p, err := c.sch.split(in)
	if err != nil {
		return err
	}
	switch wire {
	case WireJSON:
		data, err := c.sch.encodeJSON(p)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	case WireBinary:
		frame, err := c.sch.appendBinary(nil, c.Name, p)
		if err != nil {
			return err
		}
		_, err = w.Write(frame)
		return err
	default:
		return fmt.Errorf("serve: unknown wire format %d", int(wire))
	}
}

// EncodeJSON is Encode(WireJSON) returning the bytes.
func (c *Codec) EncodeJSON(in core.Input) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.Encode(WireJSON, &buf, in); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Release returns a decoded input's vector backings to the shared buffer
// pool. Only the owner of the input may call it — the serving handler
// does, once classification has completed — and the input must not be
// touched afterwards.
func (c *Codec) Release(in core.Input) {
	if in == nil {
		return
	}
	p, err := c.sch.split(in)
	if err != nil {
		return
	}
	p.release()
}

// DecodeBinaryRequest reads one full binary classify request — the frame
// names its benchmark, so no envelope is needed — and returns the codec it
// resolved along with the decoded input. A leading ITX1 trace-context
// extension is accepted and discarded; use DecodeBinaryRequestContext to
// keep the trace ID.
func DecodeBinaryRequest(r io.Reader) (*Codec, core.Input, error) {
	c, in, _, err := DecodeBinaryRequestContext(r)
	return c, in, err
}

// DecodeBinaryRequestContext is DecodeBinaryRequest plus the trace ID of
// an optional leading ITX1 trace-context extension (0 when absent). The
// extension is validated strictly: an ITX1 magic followed by a truncated
// body, zero ID, or unknown flags is an error, never silently skipped.
func DecodeBinaryRequestContext(r io.Reader) (*Codec, core.Input, uint64, error) {
	magic, err := readMagic(r)
	if err != nil {
		return nil, nil, 0, err
	}
	var traceID uint64
	if magic == traceMagic {
		traceID, err = readTraceContextBody(r)
		if err != nil {
			return nil, nil, 0, err
		}
		if magic, err = readMagic(r); err != nil {
			return nil, nil, 0, err
		}
	}
	if magic != wireMagic {
		return nil, nil, 0, fmt.Errorf("serve: bad binary magic %q", magic[:])
	}
	name, err := readBinaryName(r)
	if err != nil {
		return nil, nil, 0, err
	}
	c, err := LookupCodec(name)
	if err != nil {
		return nil, nil, 0, err
	}
	in, err := c.decodeBinaryBody(r)
	if err != nil {
		return nil, nil, 0, err
	}
	return c, in, traceID, nil
}

// EncodeBinaryRequest renders one full binary classify request for the
// named benchmark (the client-side counterpart of DecodeBinaryRequest).
func EncodeBinaryRequest(w io.Writer, benchmark string, in core.Input) error {
	c, err := LookupCodec(benchmark)
	if err != nil {
		return err
	}
	return c.Encode(WireBinary, w, in)
}

var builtinCodecs = []*Codec{
	{
		Name:       "sort",
		NewProgram: func() core.Program { return sortbench.New() },
		sch: (&schema{
			vecFields: []string{"data"},
			build: func(p *payload) (core.Input, error) {
				if len(p.vecs[0]) == 0 {
					return nil, fmt.Errorf("sort input needs a non-empty \"data\" array")
				}
				return &sortbench.List{Data: p.vecs[0]}, nil
			},
			split: func(in core.Input) (*payload, error) {
				l, ok := in.(*sortbench.List)
				if !ok {
					return nil, fmt.Errorf("sort codec: input is %T", in)
				}
				return &payload{vecs: [][]float64{l.Data}}, nil
			},
		}).finalize(),
	},
	{
		Name:       "clustering",
		NewProgram: func() core.Program { return clustering.New() },
		sch: (&schema{
			vecFields: []string{"x", "y"},
			build: func(p *payload) (core.Input, error) {
				x, y := p.vecs[0], p.vecs[1]
				if len(x) == 0 || len(x) != len(y) {
					return nil, fmt.Errorf("clustering input needs equal-length non-empty \"x\" and \"y\" arrays")
				}
				return &clustering.Points{X: x, Y: y}, nil
			},
			split: func(in core.Input) (*payload, error) {
				pt, ok := in.(*clustering.Points)
				if !ok {
					return nil, fmt.Errorf("clustering codec: input is %T", in)
				}
				return &payload{vecs: [][]float64{pt.X, pt.Y}}, nil
			},
		}).finalize(),
	},
	{
		Name:       "binpacking",
		NewProgram: func() core.Program { return binpack.New() },
		sch: (&schema{
			vecFields: []string{"sizes"},
			build: func(p *payload) (core.Input, error) {
				if len(p.vecs[0]) == 0 {
					return nil, fmt.Errorf("binpacking input needs a non-empty \"sizes\" array")
				}
				return &binpack.Items{Sizes: p.vecs[0]}, nil
			},
			split: func(in core.Input) (*payload, error) {
				it, ok := in.(*binpack.Items)
				if !ok {
					return nil, fmt.Errorf("binpacking codec: input is %T", in)
				}
				return &payload{vecs: [][]float64{it.Sizes}}, nil
			},
		}).finalize(),
	},
	{
		Name:       "svd",
		NewProgram: func() core.Program { return svd.New() },
		sch: (&schema{
			intFields: []string{"rows", "cols"},
			vecFields: []string{"data"},
			build: func(p *payload) (core.Input, error) {
				rows, cols := p.ints[0], p.ints[1]
				if rows <= 0 || cols <= 0 || rows > maxDimField || cols > maxDimField ||
					int64(len(p.vecs[0])) != rows*cols {
					return nil, fmt.Errorf("svd input needs rows*cols == len(data), both positive")
				}
				return &svd.MatrixInput{A: &linalg.Matrix{Rows: int(rows), Cols: int(cols), Data: p.vecs[0]}}, nil
			},
			split: func(in core.Input) (*payload, error) {
				m, ok := in.(*svd.MatrixInput)
				if !ok {
					return nil, fmt.Errorf("svd codec: input is %T", in)
				}
				return &payload{
					ints: []int64{int64(m.A.Rows), int64(m.A.Cols)},
					vecs: [][]float64{m.A.Data},
				}, nil
			},
		}).finalize(),
	},
	{
		Name:       "poisson2d",
		NewProgram: func() core.Program { return poisson2d.New() },
		sch: (&schema{
			intFields: []string{"n"},
			vecFields: []string{"f"},
			build: func(p *payload) (core.Input, error) {
				n := p.ints[0]
				if n <= 0 || n > maxDimField || int64(len(p.vecs[0])) != n*n {
					return nil, fmt.Errorf("poisson2d input needs len(f) == n*n, n positive")
				}
				return &poisson2d.Problem{N: int(n), F: &pde.Grid2D{N: int(n), Data: p.vecs[0]}}, nil
			},
			split: func(in core.Input) (*payload, error) {
				pr, ok := in.(*poisson2d.Problem)
				if !ok {
					return nil, fmt.Errorf("poisson2d codec: input is %T", in)
				}
				return &payload{ints: []int64{int64(pr.N)}, vecs: [][]float64{pr.F.Data}}, nil
			},
		}).finalize(),
	},
	{
		Name:       "helmholtz3d",
		NewProgram: func() core.Program { return helmholtz3d.New() },
		sch: (&schema{
			intFields:   []string{"n"},
			floatFields: []string{"c"},
			vecFields:   []string{"f", "a"},
			build: func(p *payload) (core.Input, error) {
				n := p.ints[0]
				if n <= 0 || n > maxDimField {
					return nil, fmt.Errorf("helmholtz3d input needs len(f) == len(a) == n³, n positive")
				}
				n3 := n * n * n
				if int64(len(p.vecs[0])) != n3 || int64(len(p.vecs[1])) != n3 {
					return nil, fmt.Errorf("helmholtz3d input needs len(f) == len(a) == n³, n positive")
				}
				return &helmholtz3d.Problem{
					N:  int(n),
					Op: &pde.Helmholtz3D{A: &pde.Grid3D{N: int(n), Data: p.vecs[1]}, C: p.floats[0]},
					F:  &pde.Grid3D{N: int(n), Data: p.vecs[0]},
				}, nil
			},
			split: func(in core.Input) (*payload, error) {
				pr, ok := in.(*helmholtz3d.Problem)
				if !ok {
					return nil, fmt.Errorf("helmholtz3d codec: input is %T", in)
				}
				return &payload{
					ints:   []int64{int64(pr.N)},
					floats: []float64{pr.Op.C},
					vecs:   [][]float64{pr.F.Data, pr.Op.A.Data},
				}, nil
			},
		}).finalize(),
	},
}
