package serve

import (
	"encoding/json"
	"fmt"

	"inputtune/internal/benchmarks/binpack"
	"inputtune/internal/benchmarks/clustering"
	"inputtune/internal/benchmarks/helmholtz3d"
	"inputtune/internal/benchmarks/poisson2d"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/benchmarks/svd"
	"inputtune/internal/core"
	"inputtune/internal/linalg"
	"inputtune/internal/pde"
)

// Codec is one benchmark's wire format: how the JSON API decodes request
// inputs into the program's concrete input type, and how the serve-bench
// load generator encodes generated inputs back into request bodies (so
// the bench exercises the same decode path real traffic does).
//
// The wire format carries only what classification needs — the raw data
// feature extractors read. Execution-only details (e.g. the clustering
// inputs' internal decorrelation seed) are deliberately not part of it:
// the serving runtime classifies, it does not run the workload.
type Codec struct {
	// Name is the program name (Program.Name()) the codec serves.
	Name string
	// NewProgram constructs the benchmark program.
	NewProgram func() core.Program
	// Decode parses a wire input.
	Decode func(raw json.RawMessage) (core.Input, error)
	// Encode renders an input in wire form.
	Encode func(in core.Input) (json.RawMessage, error)
}

// codecByName indexes builtinCodecs once for the per-request lookup.
var codecByName = func() map[string]Codec {
	m := make(map[string]Codec, len(builtinCodecs))
	for _, c := range builtinCodecs {
		m[c.Name] = c
	}
	return m
}()

// Codecs returns a copy of the builtin benchmark codecs keyed by program
// name.
func Codecs() map[string]Codec {
	out := make(map[string]Codec, len(codecByName))
	for name, c := range codecByName {
		out[name] = c
	}
	return out
}

// LookupCodec returns the codec for a program name.
func LookupCodec(name string) (Codec, error) {
	c, ok := codecByName[name]
	if !ok {
		return Codec{}, fmt.Errorf("serve: no codec for benchmark %q", name)
	}
	return c, nil
}

// BuiltinRegistry returns a registry with every builtin benchmark program
// registered (no models loaded yet).
func BuiltinRegistry() *Registry {
	r := NewRegistry()
	for _, c := range builtinCodecs {
		// Names are distinct by construction; Register cannot fail here.
		if err := r.Register(c.NewProgram()); err != nil {
			panic(err)
		}
	}
	return r
}

type sortWire struct {
	Data []float64 `json:"data"`
}

type clusteringWire struct {
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
}

type binpackWire struct {
	Sizes []float64 `json:"sizes"`
}

type svdWire struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"` // row-major Rows×Cols
}

type poissonWire struct {
	N int       `json:"n"`
	F []float64 `json:"f"` // row-major N×N right-hand side
}

type helmholtzWire struct {
	N int       `json:"n"`
	F []float64 `json:"f"` // N³ right-hand side, index (i*N+j)*N+k
	A []float64 `json:"a"` // N³ coefficient field
	C float64   `json:"c"`
}

var builtinCodecs = []Codec{
	{
		Name:       "sort",
		NewProgram: func() core.Program { return sortbench.New() },
		Decode: func(raw json.RawMessage) (core.Input, error) {
			var w sortWire
			if err := json.Unmarshal(raw, &w); err != nil {
				return nil, err
			}
			if len(w.Data) == 0 {
				return nil, fmt.Errorf("sort input needs a non-empty \"data\" array")
			}
			return &sortbench.List{Data: w.Data}, nil
		},
		Encode: func(in core.Input) (json.RawMessage, error) {
			l, ok := in.(*sortbench.List)
			if !ok {
				return nil, fmt.Errorf("sort codec: input is %T", in)
			}
			return json.Marshal(sortWire{Data: l.Data})
		},
	},
	{
		Name:       "clustering",
		NewProgram: func() core.Program { return clustering.New() },
		Decode: func(raw json.RawMessage) (core.Input, error) {
			var w clusteringWire
			if err := json.Unmarshal(raw, &w); err != nil {
				return nil, err
			}
			if len(w.X) == 0 || len(w.X) != len(w.Y) {
				return nil, fmt.Errorf("clustering input needs equal-length non-empty \"x\" and \"y\" arrays")
			}
			return &clustering.Points{X: w.X, Y: w.Y}, nil
		},
		Encode: func(in core.Input) (json.RawMessage, error) {
			p, ok := in.(*clustering.Points)
			if !ok {
				return nil, fmt.Errorf("clustering codec: input is %T", in)
			}
			return json.Marshal(clusteringWire{X: p.X, Y: p.Y})
		},
	},
	{
		Name:       "binpacking",
		NewProgram: func() core.Program { return binpack.New() },
		Decode: func(raw json.RawMessage) (core.Input, error) {
			var w binpackWire
			if err := json.Unmarshal(raw, &w); err != nil {
				return nil, err
			}
			if len(w.Sizes) == 0 {
				return nil, fmt.Errorf("binpacking input needs a non-empty \"sizes\" array")
			}
			return &binpack.Items{Sizes: w.Sizes}, nil
		},
		Encode: func(in core.Input) (json.RawMessage, error) {
			it, ok := in.(*binpack.Items)
			if !ok {
				return nil, fmt.Errorf("binpacking codec: input is %T", in)
			}
			return json.Marshal(binpackWire{Sizes: it.Sizes})
		},
	},
	{
		Name:       "svd",
		NewProgram: func() core.Program { return svd.New() },
		Decode: func(raw json.RawMessage) (core.Input, error) {
			var w svdWire
			if err := json.Unmarshal(raw, &w); err != nil {
				return nil, err
			}
			if w.Rows <= 0 || w.Cols <= 0 || len(w.Data) != w.Rows*w.Cols {
				return nil, fmt.Errorf("svd input needs rows*cols == len(data), both positive")
			}
			return &svd.MatrixInput{A: &linalg.Matrix{Rows: w.Rows, Cols: w.Cols, Data: w.Data}}, nil
		},
		Encode: func(in core.Input) (json.RawMessage, error) {
			m, ok := in.(*svd.MatrixInput)
			if !ok {
				return nil, fmt.Errorf("svd codec: input is %T", in)
			}
			return json.Marshal(svdWire{Rows: m.A.Rows, Cols: m.A.Cols, Data: m.A.Data})
		},
	},
	{
		Name:       "poisson2d",
		NewProgram: func() core.Program { return poisson2d.New() },
		Decode: func(raw json.RawMessage) (core.Input, error) {
			var w poissonWire
			if err := json.Unmarshal(raw, &w); err != nil {
				return nil, err
			}
			if w.N <= 0 || len(w.F) != w.N*w.N {
				return nil, fmt.Errorf("poisson2d input needs len(f) == n*n, n positive")
			}
			return &poisson2d.Problem{N: w.N, F: &pde.Grid2D{N: w.N, Data: w.F}}, nil
		},
		Encode: func(in core.Input) (json.RawMessage, error) {
			p, ok := in.(*poisson2d.Problem)
			if !ok {
				return nil, fmt.Errorf("poisson2d codec: input is %T", in)
			}
			return json.Marshal(poissonWire{N: p.N, F: p.F.Data})
		},
	},
	{
		Name:       "helmholtz3d",
		NewProgram: func() core.Program { return helmholtz3d.New() },
		Decode: func(raw json.RawMessage) (core.Input, error) {
			var w helmholtzWire
			if err := json.Unmarshal(raw, &w); err != nil {
				return nil, err
			}
			n3 := w.N * w.N * w.N
			if w.N <= 0 || len(w.F) != n3 || len(w.A) != n3 {
				return nil, fmt.Errorf("helmholtz3d input needs len(f) == len(a) == n³, n positive")
			}
			return &helmholtz3d.Problem{
				N:  w.N,
				Op: &pde.Helmholtz3D{A: &pde.Grid3D{N: w.N, Data: w.A}, C: w.C},
				F:  &pde.Grid3D{N: w.N, Data: w.F},
			}, nil
		},
		Encode: func(in core.Input) (json.RawMessage, error) {
			p, ok := in.(*helmholtz3d.Problem)
			if !ok {
				return nil, fmt.Errorf("helmholtz3d codec: input is %T", in)
			}
			return json.Marshal(helmholtzWire{N: p.N, F: p.F.Data, A: p.Op.A.Data, C: p.Op.C})
		},
	},
}
