package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"sync"

	"inputtune/internal/core"
	"inputtune/internal/feature"
)

// This file is the wire layer under the per-benchmark codecs: the
// negotiated format identifiers, the generic JSON serializer (bit-
// compatible with the PR-4 wire structs), and the length-prefixed binary
// format, whose decoder streams vector payloads straight from the request
// body into pooled buffers — the zero-allocation request path.
//
// Binary frame layout (all integers little-endian):
//
//	offset  size      field
//	0       4         magic "ITW1"
//	4       1         benchmark-name length L (1..64)
//	5       L         benchmark name (the codec key)
//	then, in schema order:
//	  each int scalar    8   uint64 (two's complement)
//	  each float scalar  8   IEEE-754 float64 bits
//	  each vector        8   element count n, then n×8 float64 bits
//
// The frame is self-delimiting (every vector is length-prefixed) and
// self-describing down to the benchmark, whose schema fixes the field
// sequence; trailing bytes after the last field are an error.

// Wire identifies a negotiated wire format for classification inputs.
type Wire int

const (
	// WireJSON is the PR-4 JSON format, kept bit-compatible: requests are
	// {"benchmark": ..., "input": {...}} with per-benchmark input objects.
	WireJSON Wire = iota
	// WireBinary is the length-prefixed binary format
	// (Content-Type: application/x-inputtune).
	WireBinary
)

// Content types the classify endpoint negotiates on.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-inputtune"
)

func (w Wire) String() string {
	switch w {
	case WireJSON:
		return "json"
	case WireBinary:
		return "binary"
	default:
		return fmt.Sprintf("wire(%d)", int(w))
	}
}

// ContentType returns the HTTP content type announcing the format.
func (w Wire) ContentType() string {
	if w == WireBinary {
		return ContentTypeBinary
	}
	return ContentTypeJSON
}

// ParseWire resolves a -wire flag value.
func ParseWire(s string) (Wire, error) {
	switch s {
	case "json":
		return WireJSON, nil
	case "binary":
		return WireBinary, nil
	default:
		return 0, fmt.Errorf("serve: unknown wire format %q (want json or binary)", s)
	}
}

var wireMagic = [4]byte{'I', 'T', 'W', '1'}

const (
	// maxWireName bounds the benchmark-name field.
	maxWireName = 64
	// maxVecElems bounds a single vector's declared element count: no
	// well-formed request can carry more than MaxRequestBytes of payload.
	maxVecElems = MaxRequestBytes / 8
	// vecPreAlloc caps how much a decoder pre-allocates on the strength of
	// a declared count alone; a lying header therefore costs at most this
	// many elements before the stream runs dry and errors.
	vecPreAlloc = 1 << 16
)

// scratchPool holds the byte blocks binary decode/encode streams through.
var scratchPool = sync.Pool{New: func() any { b := make([]byte, 32<<10); return &b }}

// payload is the flat decoded content of one request: every wire format
// reduces to it, and every input builds from it, so the two formats cannot
// diverge in what they carry.
type payload struct {
	ints   []int64
	floats []float64
	vecs   [][]float64
}

// release returns the payload's vector backings to the shared buffer pool.
func (p *payload) release() {
	if p == nil {
		return
	}
	for _, v := range p.vecs {
		feature.PutBuffer(v)
	}
	p.vecs = nil
}

// schema describes one benchmark's wire content: named scalar and vector
// fields (the names double as the JSON keys, the order is the binary field
// sequence) plus the two conversions between payload and the benchmark's
// concrete input type. Everything else — JSON, binary, negotiation,
// pooling — is generic over it.
type schema struct {
	intFields   []string
	floatFields []string
	vecFields   []string
	// build validates a payload and assembles the input, taking ownership
	// of the vector backings.
	build func(p *payload) (core.Input, error)
	// split is build's inverse: it exposes an input's wire content. The
	// returned payload aliases the input's slices (no copies).
	split func(in core.Input) (*payload, error)

	// jsonT is the reflect-built struct type whose json tags reproduce the
	// benchmark's wire object; computed once by finalize.
	jsonT reflect.Type
}

// finalize precomputes the generic JSON carrier type.
func (sch *schema) finalize() *schema {
	var fields []reflect.StructField
	add := func(name string, t reflect.Type) {
		fields = append(fields, reflect.StructField{
			Name: fmt.Sprintf("F%d", len(fields)),
			Type: t,
			Tag:  reflect.StructTag(`json:"` + name + `"`),
		})
	}
	for _, n := range sch.intFields {
		add(n, reflect.TypeOf(int64(0)))
	}
	for _, n := range sch.floatFields {
		add(n, reflect.TypeOf(float64(0)))
	}
	for _, n := range sch.vecFields {
		add(n, reflect.TypeOf([]float64(nil)))
	}
	sch.jsonT = reflect.StructOf(fields)
	return sch
}

// numFields returns the total scalar+vector field count.
func (sch *schema) numFields() int {
	return len(sch.intFields) + len(sch.floatFields) + len(sch.vecFields)
}

// decodeJSON parses one wire object (the "input" value of a JSON request)
// into a payload. Unknown keys are ignored and missing fields decode to
// zero values, exactly like the PR-4 wire structs.
func (sch *schema) decodeJSON(raw []byte) (*payload, error) {
	pv := reflect.New(sch.jsonT)
	if err := json.Unmarshal(raw, pv.Interface()); err != nil {
		return nil, err
	}
	v := pv.Elem()
	p := &payload{}
	i := 0
	for range sch.intFields {
		p.ints = append(p.ints, v.Field(i).Int())
		i++
	}
	for range sch.floatFields {
		p.floats = append(p.floats, v.Field(i).Float())
		i++
	}
	for range sch.vecFields {
		p.vecs = append(p.vecs, v.Field(i).Interface().([]float64))
		i++
	}
	return p, nil
}

// encodeJSON renders a payload as the benchmark's JSON wire object.
func (sch *schema) encodeJSON(p *payload) ([]byte, error) {
	pv := reflect.New(sch.jsonT)
	v := pv.Elem()
	i := 0
	for _, x := range p.ints {
		v.Field(i).SetInt(x)
		i++
	}
	for _, x := range p.floats {
		v.Field(i).SetFloat(x)
		i++
	}
	for _, x := range p.vecs {
		v.Field(i).Set(reflect.ValueOf(x))
		i++
	}
	return json.Marshal(pv.Interface())
}

// appendBinary renders the full binary frame (header + payload) for the
// named benchmark into dst.
func (sch *schema) appendBinary(dst []byte, name string, p *payload) ([]byte, error) {
	if len(name) == 0 || len(name) > maxWireName {
		return nil, fmt.Errorf("serve: benchmark name %q does not fit the wire header", name)
	}
	dst = append(dst, wireMagic[:]...)
	dst = append(dst, byte(len(name)))
	dst = append(dst, name...)
	var buf [8]byte
	putU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		dst = append(dst, buf[:]...)
	}
	for _, x := range p.ints {
		putU64(uint64(x))
	}
	for _, x := range p.floats {
		putU64(math.Float64bits(x))
	}
	for _, vec := range p.vecs {
		putU64(uint64(len(vec)))
		for _, x := range vec {
			putU64(math.Float64bits(x))
		}
	}
	return dst, nil
}

// readMagic consumes a 4-byte magic word (ITW1 or the ITX1 trace
// extension) without judging it; callers dispatch on the value.
func readMagic(r io.Reader) ([4]byte, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return m, fmt.Errorf("serve: binary header: %w", err)
	}
	return m, nil
}

// readBinaryName consumes the name-length byte and benchmark name that
// follow a validated ITW1 magic.
func readBinaryName(r io.Reader) (string, error) {
	var lb [1]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return "", fmt.Errorf("serve: binary header: %w", err)
	}
	n := int(lb[0])
	if n == 0 || n > maxWireName {
		return "", fmt.Errorf("serve: binary name length %d out of range", n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(r, name); err != nil {
		return "", fmt.Errorf("serve: binary name: %w", err)
	}
	return string(name), nil
}

// readBinaryHeader consumes the magic and benchmark name.
func readBinaryHeader(r io.Reader) (string, error) {
	m, err := readMagic(r)
	if err != nil {
		return "", err
	}
	if m != wireMagic {
		return "", fmt.Errorf("serve: bad binary magic %q", m[:])
	}
	return readBinaryName(r)
}

// decodeBinaryPayload streams the schema's fields from r. Vector contents
// are converted block-at-a-time through a pooled byte scratch into pooled
// float64 buffers, so a large input is materialized exactly once — as the
// slice the feature extractors will read.
func decodeBinaryPayload(r io.Reader, sch *schema) (*payload, error) {
	var word [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, word[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(word[:]), nil
	}
	p := &payload{}
	fail := func(field string, err error) (*payload, error) {
		p.release()
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("truncated frame: %w", err)
		}
		return nil, fmt.Errorf("serve: binary field %q: %w", field, err)
	}
	for _, name := range sch.intFields {
		u, err := readU64()
		if err != nil {
			return fail(name, err)
		}
		p.ints = append(p.ints, int64(u))
	}
	for _, name := range sch.floatFields {
		u, err := readU64()
		if err != nil {
			return fail(name, err)
		}
		p.floats = append(p.floats, math.Float64frombits(u))
	}
	scratch := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(scratch)
	block := *scratch
	for _, name := range sch.vecFields {
		count, err := readU64()
		if err != nil {
			return fail(name, err)
		}
		if count > maxVecElems {
			return fail(name, fmt.Errorf("vector of %d elements exceeds the request limit", count))
		}
		var acc feature.Accumulator
		if count < vecPreAlloc {
			acc.Grow(int(count))
		} else {
			acc.Grow(vecPreAlloc)
		}
		remaining := int(count)
		for remaining > 0 {
			n := remaining * 8
			if n > len(block) {
				n = len(block)
			}
			if _, err := io.ReadFull(r, block[:n]); err != nil {
				feature.PutBuffer(acc.Finish())
				return fail(name, err)
			}
			for off := 0; off < n; off += 8 {
				acc.AppendOne(math.Float64frombits(binary.LittleEndian.Uint64(block[off:])))
			}
			remaining -= n / 8
		}
		p.vecs = append(p.vecs, acc.Finish())
	}
	// A frame carries exactly its schema's fields: trailing bytes mean a
	// client/server schema mismatch, which must fail loudly, not silently.
	if _, err := io.ReadFull(r, word[:1]); err != io.EOF {
		return fail("frame end", fmt.Errorf("trailing bytes after the last field"))
	}
	return p, nil
}
