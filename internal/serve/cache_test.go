package serve

import (
	"fmt"
	"testing"
)

func TestDecisionCacheLRU(t *testing.T) {
	c := NewDecisionCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if v, ok := c.Get("k0"); !ok || v != 0 {
		t.Fatalf("k0 = %d, %v", v, ok)
	}
	c.Put("k3", 3)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived past capacity; LRU order wrong")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 3 || s.Capacity != 3 {
		t.Fatalf("stats %+v", s)
	}
	// Refreshing an existing key must not grow the cache.
	c.Put("k2", 22)
	if v, _ := c.Get("k2"); v != 22 {
		t.Fatal("Put on existing key did not update")
	}
	if c.Stats().Entries != 3 {
		t.Fatal("refresh grew the cache")
	}
}

func TestDecisionCacheNilDisabled(t *testing.T) {
	var c *DecisionCache
	c.Put("k", 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if s := c.Stats(); s != (DecisionCacheStats{}) {
		t.Fatalf("nil cache stats %+v", s)
	}
}

func TestDecisionCacheDefaultCapacity(t *testing.T) {
	if got := NewDecisionCache(0).Stats().Capacity; got != DefaultDecisionCacheCapacity {
		t.Fatalf("default capacity %d", got)
	}
}

func TestDecisionCacheConcurrent(t *testing.T) {
	c := NewDecisionCache(64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, i%100)
				if v, ok := c.Get(k); ok && v != i%100 {
					panic("cache returned a foreign value")
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
