package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"inputtune/internal/core"
)

// Snapshot is one immutable loaded model: the unit the registry swaps
// atomically under live traffic. Requests resolve a snapshot once and use
// it for their whole lifetime, so a concurrent reload never mixes two
// models inside one request.
type Snapshot struct {
	// Benchmark is the program name the model is bound to.
	Benchmark string
	// Model is the deployable model (safe for concurrent readers).
	Model *core.Model
	// Generation uniquely identifies this load across the whole registry
	// (monotonic, never reused), which also makes it a sound decision-cache
	// key component: entries from superseded models can never alias a new
	// model's entries.
	Generation uint64
	// ArtifactBytes is the size of the JSON artifact this snapshot was
	// loaded from (0 for models registered in-process).
	ArtifactBytes int
	// ArtifactHash is a content hash of the artifact bytes (0 for models
	// installed in-process). Unlike Generation — which is a per-registry
	// counter — it identifies the model VERSION across replicas, which is
	// what fleet generation-skew accounting needs: two replicas at
	// different generation numbers may well serve the same artifact.
	ArtifactHash uint64
}

// hashArtifact is FNV-1a 64 over the artifact bytes.
func hashArtifact(artifact []byte) uint64 {
	const offset64, prime64 = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset64)
	for _, b := range artifact {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// entry is one named benchmark slot.
type entry struct {
	prog core.Program
	// cur is nil until the first successful load.
	cur atomic.Pointer[Snapshot]
	// loadMu serialises loads for this benchmark so snapshot generations
	// are stored in increasing order; the read path never takes it.
	loadMu sync.Mutex
}

// Registry maps benchmark names to hot-swappable model snapshots. The
// read path (Get) is lock-free after an RWMutex-guarded map lookup; Load
// builds and validates the incoming artifact completely before publishing
// it with one atomic pointer store, so traffic observes either the old
// model or the new one, never a partial state, and zero requests drop
// during a reload.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	gen     atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Register declares a benchmark the registry can serve, keyed by
// prog.Name(). Registering the same name twice is an error; models load
// separately via Load (or Install).
func (r *Registry) Register(prog core.Program) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := prog.Name()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("serve: benchmark %q already registered", name)
	}
	r.entries[name] = &entry{prog: prog}
	return nil
}

// lookup returns the entry for name.
func (r *Registry) lookup(name string) (*entry, error) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("serve: unknown benchmark %q", name)
	}
	return e, nil
}

// artifactHeader is the minimal artifact prefix needed to route a reload:
// SaveModel always records the benchmark name.
type artifactHeader struct {
	Benchmark string `json:"benchmark"`
}

// Load parses a SaveModel artifact, validates it against the benchmark
// named INSIDE the artifact, and atomically publishes it. On any error the
// previously published snapshot (if one exists) keeps serving untouched.
func (r *Registry) Load(artifact []byte) (*Snapshot, error) {
	var hdr artifactHeader
	if err := json.Unmarshal(artifact, &hdr); err != nil {
		return nil, fmt.Errorf("serve: unreadable artifact: %w", err)
	}
	if hdr.Benchmark == "" {
		return nil, fmt.Errorf("serve: artifact names no benchmark")
	}
	e, err := r.lookup(hdr.Benchmark)
	if err != nil {
		return nil, err
	}
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	model, err := core.LoadModel(e.prog, bytes.NewReader(artifact))
	if err != nil {
		return nil, fmt.Errorf("serve: rejecting artifact for %q: %w", hdr.Benchmark, err)
	}
	// Lower the production classifier into its compiled (flat-array) form
	// before the snapshot goes live, so every request served from it walks
	// the branch-free path.
	model.CompileClassifiers()
	snap := &Snapshot{
		Benchmark:     hdr.Benchmark,
		Model:         model,
		Generation:    r.gen.Add(1),
		ArtifactBytes: len(artifact),
		ArtifactHash:  hashArtifact(artifact),
	}
	e.cur.Store(snap)
	return snap, nil
}

// ensure returns the entry for prog's name, creating it under one lock
// acquisition so concurrent first-time callers race benignly.
func (r *Registry) ensure(prog core.Program) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := prog.Name()
	if e := r.entries[name]; e != nil {
		return e
	}
	e := &entry{prog: prog}
	r.entries[name] = e
	return e
}

// Install publishes an in-process trained model directly (no artifact
// round-trip), registering the program first if needed. It is the path
// cmd/inputtuned's -train convenience and the tests use.
func (r *Registry) Install(m *core.Model) (*Snapshot, error) {
	e := r.ensure(m.Program)
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	m.CompileClassifiers()
	snap := &Snapshot{Benchmark: m.Program.Name(), Model: m, Generation: r.gen.Add(1)}
	e.cur.Store(snap)
	return snap, nil
}

// Get returns the current snapshot for the named benchmark. The second
// return is false when the benchmark is unknown or no model has been
// loaded yet.
func (r *Registry) Get(name string) (*Snapshot, bool) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return nil, false
	}
	snap := e.cur.Load()
	return snap, snap != nil
}

// Snapshots returns the current snapshot of every benchmark with a loaded
// model, sorted by name (for /v1/models and the metrics surface).
func (r *Registry) Snapshots() []*Snapshot {
	r.mu.RLock()
	out := make([]*Snapshot, 0, len(r.entries))
	for _, e := range r.entries {
		if snap := e.cur.Load(); snap != nil {
			out = append(out, snap)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Benchmark < out[b].Benchmark })
	return out
}

// Names returns every registered benchmark name, sorted, loaded or not.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}
