package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"inputtune/internal/choice"
	"inputtune/internal/core"
	"inputtune/internal/cost"
	"inputtune/internal/feature"
)

// stubInput drives the drain stub program: v is the single feature
// value; when block is non-nil the extractor parks on it after
// signalling started, pinning the request in-flight for as long as the
// test wants.
type stubInput struct {
	v       float64
	block   chan struct{}
	started chan struct{}
}

func (s *stubInput) Size() int { return 1 }

// stubProgram is a minimal core.Program whose single feature extractor
// can be made to block mid-request — the scalpel the drain tests need:
// a request that is provably past admission but not yet complete.
type stubProgram struct {
	name  string
	space *choice.Space
	set   *feature.Set
}

func newStubProgram(name string) *stubProgram {
	sp := choice.NewSpace()
	sp.AddSite("algo", "a", "b")
	return &stubProgram{
		name:  name,
		space: sp,
		set: feature.MustNewSet(feature.Extractor{
			Name: "v",
			Levels: []feature.LevelFunc{func(in feature.Input, m *cost.Meter) float64 {
				si := in.(*stubInput)
				if si.block != nil {
					si.started <- struct{}{}
					<-si.block
				}
				return si.v
			}},
		}),
	}
}

func (p *stubProgram) Name() string           { return p.name }
func (p *stubProgram) Space() *choice.Space   { return p.space }
func (p *stubProgram) Features() *feature.Set { return p.set }
func (p *stubProgram) Run(cfg *choice.Config, in core.Input, meter *cost.Meter) float64 {
	return 1
}
func (p *stubProgram) HasAccuracy() bool          { return false }
func (p *stubProgram) AccuracyThreshold() float64 { return 0 }

// stubModel hand-builds a deployable model over prog: a depth-1 subset
// tree splitting on the single feature at 0 (v<0 → landmark 0, v>0 →
// landmark 1). invert flips the labels — two genuinely different
// generations for the skew tests. The row count clears the subset-tree
// leaf floor so the tree really splits and Static is non-empty (the
// cacheable path under test).
func stubModel(prog *stubProgram, invert bool) *core.Model {
	const rows = 16
	X := make([][]float64, rows)
	y := make([]int, rows)
	for i := range X {
		v := float64(i%8 + 1)
		label := 1
		if i < rows/2 {
			v, label = -v, 0
		}
		if invert {
			label = 1 - label
		}
		X[i] = []float64{v}
		y[i] = label
	}
	prod := core.NewSubsetTree("stub-tree", X, y, []int{0}, 2, nil, 4)
	if len(prod.Static) == 0 {
		panic("stub tree did not split; drain tests need the cacheable static-subset path")
	}
	return &core.Model{
		Program:    prog,
		Landmarks:  []*choice.Config{prog.Space().DefaultConfig(), prog.Space().DefaultConfig()},
		Production: prod,
	}
}

// stubService builds a service over a freshly installed stub model.
func stubService(t *testing.T, opts Options) (*Service, *stubProgram) {
	t.Helper()
	prog := newStubProgram("drainstub")
	reg := NewRegistry()
	if err := reg.Register(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install(stubModel(prog, false)); err != nil {
		t.Fatal(err)
	}
	return NewService(reg, opts), prog
}

// TestDrainWaitsForInflight pins the graceful-drain contract: a request
// past admission completes with a full answer, new requests are refused
// with ErrDraining, and Drain returns only once the in-flight count hits
// zero.
func TestDrainWaitsForInflight(t *testing.T) {
	svc, _ := stubService(t, Options{})
	defer svc.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	type result struct {
		d   *Decision
		err error
	}
	done := make(chan result, 1)
	go func() {
		d, err := svc.Classify("drainstub", &stubInput{v: 3, block: block, started: started})
		done <- result{d, err}
	}()
	<-started // the request is provably in-flight

	svc.BeginDrain()
	if !svc.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	if _, err := svc.Classify("drainstub", &stubInput{v: 1}); !errors.Is(err, ErrDraining) {
		t.Fatalf("new request during drain: got err %v, want ErrDraining", err)
	}
	if got := svc.Inflight(); got != 1 {
		t.Fatalf("Inflight() = %d, want 1", got)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- svc.Drain(ctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) while a request was still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(block) // let the in-flight request finish
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.d == nil || res.d.Landmark != 1 {
		t.Fatalf("in-flight request got decision %+v, want landmark 1", res.d)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := svc.Inflight(); got != 0 {
		t.Fatalf("Inflight() = %d after drain, want 0", got)
	}
}

// TestDrainExpiresOnStuckRequest pins the timeout path: a request that
// never completes makes Drain report context expiry rather than hang.
func TestDrainExpiresOnStuckRequest(t *testing.T) {
	svc, _ := stubService(t, Options{})
	defer svc.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _ = svc.Classify("drainstub", &stubInput{v: 3, block: block, started: started})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain on a stuck request: got %v, want DeadlineExceeded", err)
	}
	close(block)
}

// TestDrainEndDrainReadmits pins drain reversibility (the router's
// replica-rejoin path depends on it).
func TestDrainEndDrainReadmits(t *testing.T) {
	svc, _ := stubService(t, Options{})
	defer svc.Close()
	svc.BeginDrain()
	if _, err := svc.Classify("drainstub", &stubInput{v: 1}); !errors.Is(err, ErrDraining) {
		t.Fatalf("got %v, want ErrDraining", err)
	}
	svc.EndDrain()
	d, err := svc.Classify("drainstub", &stubInput{v: 1})
	if err != nil || d.Landmark != 1 {
		t.Fatalf("after EndDrain: d=%+v err=%v, want landmark 1", d, err)
	}
}

// TestHealthzDrainingHTTP pins the HTTP drain surface: /healthz answers
// 503 + "draining" in both representations, classify answers 503.
func TestHealthzDrainingHTTP(t *testing.T) {
	svc, _ := stubService(t, Options{})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	get := func(accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/healthz", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		NewHandler(svc).ServeHTTP(rec, req)
		return rec
	}

	if rec := get(""); rec.Code != 200 || !bytes.Contains(rec.Body.Bytes(), []byte(`"status":"ok"`)) {
		t.Fatalf("healthy healthz: code=%d body=%s", rec.Code, rec.Body.String())
	}
	rec := get(ContentTypeBinary)
	h, err := DecodeHealthFrame(rec.Body)
	if err != nil || h.Draining {
		t.Fatalf("binary healthz: h=%+v err=%v", h, err)
	}
	if len(h.Models) != 1 || h.Models[0].Benchmark != "drainstub" || h.Models[0].Generation != 1 {
		t.Fatalf("binary healthz models = %+v", h.Models)
	}

	svc.BeginDrain()
	if rec := get(""); rec.Code != 503 || !bytes.Contains(rec.Body.Bytes(), []byte(`"draining":true`)) {
		t.Fatalf("draining healthz: code=%d body=%s", rec.Code, rec.Body.String())
	}
	rec = get(ContentTypeBinary)
	if rec.Code != 503 {
		t.Fatalf("draining binary healthz code = %d, want 503", rec.Code)
	}
	if h, err := DecodeHealthFrame(rec.Body); err != nil || !h.Draining {
		t.Fatalf("draining binary healthz: h=%+v err=%v", h, err)
	}
}

// TestGenerationSkewCacheRegression is the mixed-generation regression
// test: the decision cache keys on the registry generation, so a hot
// reload that flips every label must never serve a stale cached label —
// the first request after the reload misses the cache and classifies
// under the new tree.
func TestGenerationSkewCacheRegression(t *testing.T) {
	prog := newStubProgram("drainstub")
	reg := NewRegistry()
	if err := reg.Register(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install(stubModel(prog, false)); err != nil {
		t.Fatal(err)
	}
	svc := NewService(reg, Options{Cache: CacheOptions{Capacity: 64}})
	defer svc.Close()

	in := func() *stubInput { return &stubInput{v: 5} }
	d1, err := svc.Classify("drainstub", in())
	if err != nil || d1.CacheHit || d1.Landmark != 1 {
		t.Fatalf("first request: d=%+v err=%v, want miss with landmark 1", d1, err)
	}
	d2, err := svc.Classify("drainstub", in())
	if err != nil || !d2.CacheHit || d2.Landmark != 1 {
		t.Fatalf("repeat request: d=%+v err=%v, want cache hit with landmark 1", d2, err)
	}

	// Hot reload to an inverted model: same input, opposite label.
	if _, err := reg.Install(stubModel(prog, true)); err != nil {
		t.Fatal(err)
	}
	d3, err := svc.Classify("drainstub", in())
	if err != nil {
		t.Fatal(err)
	}
	if d3.CacheHit {
		t.Fatalf("first request after reload hit the cache (generation leaked into a stale entry)")
	}
	if d3.Landmark != 0 {
		t.Fatalf("request after reload got landmark %d, want 0 (the new model's label)", d3.Landmark)
	}
	if d3.Generation != d1.Generation+1 {
		t.Fatalf("generation %d after reload, want %d", d3.Generation, d1.Generation+1)
	}
	d4, err := svc.Classify("drainstub", in())
	if err != nil || !d4.CacheHit || d4.Landmark != 0 {
		t.Fatalf("repeat after reload: d=%+v err=%v, want hit with landmark 0", d4, err)
	}
}

// TestHealthFrameRoundTrip pins the ITH1 codec: encode→decode identity,
// and the decoder's strictness on magic, truncation and trailing bytes.
func TestHealthFrameRoundTrip(t *testing.T) {
	cases := []Health{
		{},
		{Draining: true},
		{Wires: []Wire{WireJSON}},
		{Wires: []Wire{WireJSON, WireBinary}, Models: []ModelHealth{{Benchmark: "sort", Generation: 7}}},
		{Draining: true, Wires: []Wire{WireBinary}, Models: []ModelHealth{
			{Benchmark: "sort", Generation: 1, ArtifactHash: 0xdeadbeefcafef00d},
			{Benchmark: "helmholtz3d", Generation: 12345678901},
		}},
	}
	for i, h := range cases {
		frame := AppendHealthFrame(nil, h)
		got, err := DecodeHealthFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", h) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, h)
		}
	}
	frame := AppendHealthFrame(nil, cases[3])
	if _, err := DecodeHealthFrame(bytes.NewReader(append(frame, 0))); err == nil {
		t.Fatal("trailing byte accepted")
	}
	for n := 1; n < len(frame); n++ {
		if _, err := DecodeHealthFrame(bytes.NewReader(frame[:n])); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	bad := append([]byte{}, frame...)
	bad[0] = 'X'
	if _, err := DecodeHealthFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}
