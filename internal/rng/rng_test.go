package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsSeparate(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d times in 1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) value %d count %d far from uniform", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("degenerate IntRange = %d, want 4", got)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	check := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	r := New(23)
	counts := map[[3]int]int{}
	for i := 0; i < 60000; i++ {
		p := []int{0, 1, 2}
		r.ShuffleInts(p)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("shuffle produced %d of 6 arrangements", len(counts))
	}
	for arr, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("arrangement %v count %d far from uniform", arr, c)
		}
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(29)
	counts := [3]int{}
	for i := 0; i < 100000; i++ {
		counts[r.Choice([]float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %v far from 3", ratio)
	}
}

func TestChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	New(1).Choice([]float64{0, 0})
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(31)
	s := r.SampleWithoutReplacement(10, 5)
	if len(s) != 5 {
		t.Fatalf("sample size %d, want 5", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", s)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(37)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestCoin(t *testing.T) {
	r := New(41)
	heads := 0
	for i := 0; i < 100000; i++ {
		if r.Coin(0.25) {
			heads++
		}
	}
	if heads < 23500 || heads > 26500 {
		t.Fatalf("Coin(0.25) hit %d/100000", heads)
	}
}
