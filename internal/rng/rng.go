// Package rng provides a small, fully deterministic pseudo-random number
// generator used throughout the reproduction. Determinism across platforms
// and Go releases matters here: the autotuner, the input generators, and the
// learning pipeline must replay bit-identically so that experiments are
// reproducible, so we implement xoshiro256** seeded via splitmix64 rather
// than depending on math/rand internals.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New. RNG is not safe for concurrent use; create one per goroutine
// (see Split).
type RNG struct {
	s [4]uint64
	// cached second normal variate from Box-Muller
	haveGauss bool
	gauss     float64
}

// New returns a generator seeded from the given seed using splitmix64 so
// that closely spaced seeds still produce well-separated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state, and advancing it does not
// advance r beyond the single draw used to seed it.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation, simplified: the bias
	// for n << 2^64 is negligible for our simulation purposes, but we still
	// reject to keep the draw exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Coin returns true with probability p.
func (r *RNG) Coin(p float64) bool { return r.Float64() < p }

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// IntRange returns a uniform value in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// NormFloat64 returns a standard normal variate via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// Norm returns a normal variate with the given mean and standard deviation.
func (r *RNG) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleFloats permutes p in place (Fisher-Yates).
func (r *RNG) ShuffleFloats(p []float64) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements in place using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly random index weighted by w. All weights must be
// non-negative and at least one must be positive.
func (r *RNG) Choice(w []float64) int {
	total := 0.0
	for _, x := range w {
		if x < 0 {
			panic("rng: negative weight")
		}
		total += x
	}
	if total <= 0 {
		panic("rng: all weights zero")
	}
	t := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if t < acc {
			return i
		}
	}
	return len(w) - 1
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics if k > n.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("rng: sample size exceeds population")
	}
	p := r.Perm(n)
	return p[:k]
}
