package pde

// This file preserves the original (pre-hierarchy) solver implementations
// verbatim. They are the differential-testing reference for the flattened
// kernels and the workspace-based multigrid cycles in grid2d.go, grid3d.go
// and hierarchy.go: differential_test.go proves the production kernels
// produce bit-identical grids and identical op counts against these, the
// same pattern dtree.ReferenceTrain serves for the classifier backbone.
// The reference kernels index exclusively through the bounds-checked At
// accessor and allocate their scratch grids per call, so they stay the
// simplest possible statement of the numerics.

// referenceResidual2D computes r = f + Δu (the residual of -Δu = f) into r.
func referenceResidual2D(u, f, r *Grid2D, w *Work) {
	n := u.N
	inv := 1.0 / (u.h() * u.h())
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lap := (4*u.At(i, j) - u.At(i-1, j) - u.At(i+1, j) - u.At(i, j-1) - u.At(i, j+1)) * inv
			r.Set(i, j, f.At(i, j)-lap)
		}
	}
	w.Flops += 7 * n * n
}

// referenceJacobi2D performs one weighted Jacobi sweep on -Δu = f.
func referenceJacobi2D(u, f *Grid2D, omega float64, w *Work) {
	n := u.N
	h2 := u.h() * u.h()
	next := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			gs := (u.At(i-1, j) + u.At(i+1, j) + u.At(i, j-1) + u.At(i, j+1) + h2*f.At(i, j)) / 4
			next[i*n+j] = u.At(i, j) + omega*(gs-u.At(i, j))
		}
	}
	copy(u.Data, next)
	w.Flops += 8 * n * n
}

// referenceSOR2D performs one successive-over-relaxation sweep on -Δu = f.
func referenceSOR2D(u, f *Grid2D, omega float64, w *Work) {
	n := u.N
	h2 := u.h() * u.h()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			gs := (u.At(i-1, j) + u.At(i+1, j) + u.At(i, j-1) + u.At(i, j+1) + h2*f.At(i, j)) / 4
			u.Set(i, j, u.At(i, j)+omega*(gs-u.At(i, j)))
		}
	}
	w.Flops += 8 * n * n
}

// referenceRestrict2D full-weights the residual to the (n-1)/2 coarse grid.
func referenceRestrict2D(fine *Grid2D, w *Work) *Grid2D {
	nc := (fine.N - 1) / 2
	coarse := NewGrid2D(nc)
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			fi, fj := 2*i+1, 2*j+1
			v := 0.25*fine.At(fi, fj) +
				0.125*(fine.At(fi-1, fj)+fine.At(fi+1, fj)+fine.At(fi, fj-1)+fine.At(fi, fj+1)) +
				0.0625*(fine.At(fi-1, fj-1)+fine.At(fi-1, fj+1)+fine.At(fi+1, fj-1)+fine.At(fi+1, fj+1))
			coarse.Set(i, j, v)
		}
	}
	w.Flops += 12 * nc * nc
	return coarse
}

// referenceProlong2D bilinearly interpolates the coarse correction onto
// fine, adding in place.
func referenceProlong2D(coarse, fine *Grid2D, w *Work) {
	nf := fine.N
	for i := 0; i < nf; i++ {
		for j := 0; j < nf; j++ {
			fine.Set(i, j, fine.At(i, j)+prolongCell2D(coarse, i, j))
		}
	}
	w.Flops += 4 * nf * nf
}

// ReferenceMGCycle2D performs one multigrid cycle on -Δu = f, allocating
// the residual and coarse grids per level per cycle — the original
// MGCycle2D, retained as the byte-exactness reference for Hierarchy2D.
func ReferenceMGCycle2D(u, f *Grid2D, opt MGOptions2D, w *Work) {
	if opt.Gamma < 1 {
		opt.Gamma = 1
	}
	if opt.Omega <= 0 {
		opt.Omega = 1
	}
	n := u.N
	if n <= 3 {
		// Coarsest level: smooth hard (tiny cost).
		for s := 0; s < 8; s++ {
			referenceSOR2D(u, f, 1.0, w)
		}
		return
	}
	for s := 0; s < opt.Pre; s++ {
		referenceSOR2D(u, f, opt.Omega, w)
	}
	r := NewGrid2D(n)
	referenceResidual2D(u, f, r, w)
	coarseF := referenceRestrict2D(r, w)
	coarseU := NewGrid2D(coarseF.N)
	for g := 0; g < opt.Gamma; g++ {
		ReferenceMGCycle2D(coarseU, coarseF, opt, w)
	}
	referenceProlong2D(coarseU, u, w)
	for s := 0; s < opt.Post; s++ {
		referenceSOR2D(u, f, opt.Omega, w)
	}
}

// --- 3D -------------------------------------------------------------------

// referenceResidual3D computes r = f - L u.
func referenceResidual3D(op *Helmholtz3D, u, f, r *Grid3D, w *Work) {
	n := u.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				lu, _ := op.apply(u, i, j, k)
				r.Set(i, j, k, f.At(i, j, k)-lu)
			}
		}
	}
	w.Flops += 15 * n * n * n
}

// referenceJacobi3D performs one weighted Jacobi sweep.
func referenceJacobi3D(op *Helmholtz3D, u, f *Grid3D, omega float64, w *Work) {
	n := u.N
	next := make([]float64, n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				lu, diag := op.apply(u, i, j, k)
				uc := u.At(i, j, k)
				next[(i*n+j)*n+k] = uc + omega*(f.At(i, j, k)-lu)/diag
			}
		}
	}
	copy(u.Data, next)
	w.Flops += 17 * n * n * n
}

// referenceSOR3D performs one SOR sweep (omega = 1 gives Gauss-Seidel).
func referenceSOR3D(op *Helmholtz3D, u, f *Grid3D, omega float64, w *Work) {
	n := u.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				lu, diag := op.apply(u, i, j, k)
				uc := u.At(i, j, k)
				u.Set(i, j, k, uc+omega*(f.At(i, j, k)-lu)/diag)
			}
		}
	}
	w.Flops += 17 * n * n * n
}

// referenceRestrict3D full-weights a fine grid to the (n-1)/2 coarse grid
// using the 27-point kernel.
func referenceRestrict3D(fine *Grid3D, w *Work) *Grid3D {
	nc := (fine.N - 1) / 2
	coarse := NewGrid3D(nc)
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			for k := 0; k < nc; k++ {
				fi, fj, fk := 2*i+1, 2*j+1, 2*k+1
				sum := 0.0
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							wgt := 1.0 / float64(int(1)<<uint(absInt(di)+absInt(dj)+absInt(dk))) / 8.0
							sum += wgt * fine.At(fi+di, fj+dj, fk+dk)
						}
					}
				}
				coarse.Set(i, j, k, sum)
			}
		}
	}
	w.Flops += 30 * nc * nc * nc
	return coarse
}

// referenceProlong3D trilinearly interpolates the coarse correction onto
// fine, adding in place.
func referenceProlong3D(coarse, fine *Grid3D, w *Work) {
	nf := fine.N
	for i := 0; i < nf; i++ {
		for j := 0; j < nf; j++ {
			for k := 0; k < nf; k++ {
				v := trilinear(coarse, i, j, k)
				fine.Set(i, j, k, fine.At(i, j, k)+v)
			}
		}
	}
	w.Flops += 8 * nf * nf * nf
}

// ReferenceMGCycle3D performs one multigrid cycle on the Helmholtz problem,
// re-deriving the coarse operator and allocating the coarse grids per cycle
// — the original MGCycle3D, retained as the byte-exactness reference for
// Hierarchy3D.
func ReferenceMGCycle3D(op *Helmholtz3D, u, f *Grid3D, opt MGOptions3D, w *Work) {
	if opt.Gamma < 1 {
		opt.Gamma = 1
	}
	if opt.Omega <= 0 {
		opt.Omega = 1
	}
	n := u.N
	if n <= 3 {
		for s := 0; s < 8; s++ {
			referenceSOR3D(op, u, f, 1.0, w)
		}
		return
	}
	for s := 0; s < opt.Pre; s++ {
		referenceSOR3D(op, u, f, opt.Omega, w)
	}
	r := NewGrid3D(n)
	referenceResidual3D(op, u, f, r, w)
	coarseF := referenceRestrict3D(r, w)
	coarseU := NewGrid3D(coarseF.N)
	coarseOp := op.coarsen()
	for g := 0; g < opt.Gamma; g++ {
		ReferenceMGCycle3D(coarseOp, coarseU, coarseF, opt, w)
	}
	referenceProlong3D(coarseU, u, w)
	for s := 0; s < opt.Post; s++ {
		referenceSOR3D(op, u, f, opt.Omega, w)
	}
}
