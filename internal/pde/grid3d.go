package pde

import "math"

// Grid3D holds an N×N×N interior grid (Dirichlet zero boundary) on the
// unit cube, h = 1/(N+1), for the variable-coefficient Helmholtz problem
//
//	-∇·(a ∇u) + c·u = f
//
// with a sampled at grid nodes and c a non-negative constant.
type Grid3D struct {
	N    int
	Data []float64 // len N³, index (i*N + j)*N + k
}

// NewGrid3D returns a zero grid.
func NewGrid3D(n int) *Grid3D {
	return &Grid3D{N: n, Data: make([]float64, n*n*n)}
}

// At returns u(i,j,k) honouring the zero boundary.
func (g *Grid3D) At(i, j, k int) float64 {
	if i < 0 || j < 0 || k < 0 || i >= g.N || j >= g.N || k >= g.N {
		return 0
	}
	return g.Data[(i*g.N+j)*g.N+k]
}

// Set assigns u(i,j,k).
func (g *Grid3D) Set(i, j, k int, v float64) { g.Data[(i*g.N+j)*g.N+k] = v }

// Clone deep-copies the grid.
func (g *Grid3D) Clone() *Grid3D {
	out := NewGrid3D(g.N)
	copy(out.Data, g.Data)
	return out
}

// RMS returns the root-mean-square of the grid values.
func (g *Grid3D) RMS() float64 { return rmsOf(g.Data) }

// SubRMS returns RMS(g - o).
func (g *Grid3D) SubRMS(o *Grid3D) float64 { return subRMSOf(g.Data, o.Data) }

func (g *Grid3D) h() float64 { return 1.0 / float64(g.N+1) }

// Helmholtz3D bundles the operator data: coefficient field a, constant c.
type Helmholtz3D struct {
	A *Grid3D // coefficient at nodes (boundary faces reuse interior value)
	C float64
}

// faceA returns the face coefficient between node (i,j,k) and its
// neighbour in the given direction, as the average of the two node values
// (out-of-range neighbours reuse the interior node's coefficient).
func (op *Helmholtz3D) faceA(i, j, k, di, dj, dk int) float64 {
	ac := op.A.At(i, j, k)
	ni, nj, nk := i+di, j+dj, k+dk
	n := op.A.N
	if ni < 0 || nj < 0 || nk < 0 || ni >= n || nj >= n || nk >= n {
		return ac
	}
	return 0.5 * (ac + op.A.At(ni, nj, nk))
}

// apply computes (L u)(i,j,k) and the operator diagonal through the
// bounds-checked accessors. It is both the reference stencil and the
// guarded path the flattened sweeps take on boundary cells, so the two can
// never disagree where they overlap.
func (op *Helmholtz3D) apply(u *Grid3D, i, j, k int) (lu, diag float64) {
	h2 := u.h() * u.h()
	var sumA, flux float64
	dirs := [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	uc := u.At(i, j, k)
	for _, d := range dirs {
		a := op.faceA(i, j, k, d[0], d[1], d[2])
		sumA += a
		flux += a * u.At(i+d[0], j+d[1], k+d[2])
	}
	diag = sumA/h2 + op.C
	lu = (sumA*uc-flux)/h2 + op.C*uc
	return lu, diag
}

// The 3-D sweeps below are boundary-split like their 2-D counterparts: the
// innermost k-run of every interior (i, j) pencil evaluates the seven-point
// flux stencil over raw slices (face coefficients averaged inline, in the
// reference direction order +i, -i, +j, -j, +k, -k), while boundary cells
// fall back to op.apply. Expression shapes and accumulation order match
// the reference kernels exactly, so grids stay bit-identical.

// sorCell3D is the guarded per-cell SOR update.
func sorCell3D(op *Helmholtz3D, u, f *Grid3D, i, j, k int, omega float64) {
	lu, diag := op.apply(u, i, j, k)
	idx := (i*u.N+j)*u.N + k
	uc := u.Data[idx]
	u.Data[idx] = uc + omega*(f.Data[idx]-lu)/diag
}

// SOR3D performs one SOR sweep (omega = 1 gives Gauss-Seidel).
func SOR3D(op *Helmholtz3D, u, f *Grid3D, omega float64, w *Work) {
	n := u.N
	h2 := u.h() * u.h()
	n2 := n * n
	ud, fd, ad := u.Data, f.Data, op.A.Data
	cc := op.C
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == 0 || i == n-1 || j == 0 || j == n-1 {
				for k := 0; k < n; k++ {
					sorCell3D(op, u, f, i, j, k, omega)
				}
				continue
			}
			sorCell3D(op, u, f, i, j, 0, omega)
			base := (i*n + j) * n
			for idx := base + 1; idx < base+n-1; idx++ {
				ac := ad[idx]
				axp := 0.5 * (ac + ad[idx+n2])
				axm := 0.5 * (ac + ad[idx-n2])
				ayp := 0.5 * (ac + ad[idx+n])
				aym := 0.5 * (ac + ad[idx-n])
				azp := 0.5 * (ac + ad[idx+1])
				azm := 0.5 * (ac + ad[idx-1])
				sumA := 0.0
				sumA += axp
				sumA += axm
				sumA += ayp
				sumA += aym
				sumA += azp
				sumA += azm
				flux := 0.0
				flux += axp * ud[idx+n2]
				flux += axm * ud[idx-n2]
				flux += ayp * ud[idx+n]
				flux += aym * ud[idx-n]
				flux += azp * ud[idx+1]
				flux += azm * ud[idx-1]
				uc := ud[idx]
				diag := sumA/h2 + cc
				lu := (sumA*uc-flux)/h2 + cc*uc
				ud[idx] = uc + omega*(fd[idx]-lu)/diag
			}
			sorCell3D(op, u, f, i, j, n-1, omega)
		}
	}
	w.Flops += 17 * n * n * n
}

// jacobiCell3D is the guarded per-cell Jacobi update.
func jacobiCell3D(op *Helmholtz3D, u, f *Grid3D, next []float64, i, j, k int, omega float64) {
	lu, diag := op.apply(u, i, j, k)
	idx := (i*u.N+j)*u.N + k
	uc := u.Data[idx]
	next[idx] = uc + omega*(f.Data[idx]-lu)/diag
}

// Jacobi3D performs one weighted Jacobi sweep.
func Jacobi3D(op *Helmholtz3D, u, f *Grid3D, omega float64, w *Work) {
	jacobi3D(op, u, f, omega, make([]float64, u.N*u.N*u.N), w)
}

// jacobi3D is Jacobi3D over a caller-provided scratch buffer (len n³).
func jacobi3D(op *Helmholtz3D, u, f *Grid3D, omega float64, next []float64, w *Work) {
	n := u.N
	h2 := u.h() * u.h()
	n2 := n * n
	ud, fd, ad := u.Data, f.Data, op.A.Data
	cc := op.C
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == 0 || i == n-1 || j == 0 || j == n-1 {
				for k := 0; k < n; k++ {
					jacobiCell3D(op, u, f, next, i, j, k, omega)
				}
				continue
			}
			jacobiCell3D(op, u, f, next, i, j, 0, omega)
			base := (i*n + j) * n
			for idx := base + 1; idx < base+n-1; idx++ {
				ac := ad[idx]
				axp := 0.5 * (ac + ad[idx+n2])
				axm := 0.5 * (ac + ad[idx-n2])
				ayp := 0.5 * (ac + ad[idx+n])
				aym := 0.5 * (ac + ad[idx-n])
				azp := 0.5 * (ac + ad[idx+1])
				azm := 0.5 * (ac + ad[idx-1])
				sumA := 0.0
				sumA += axp
				sumA += axm
				sumA += ayp
				sumA += aym
				sumA += azp
				sumA += azm
				flux := 0.0
				flux += axp * ud[idx+n2]
				flux += axm * ud[idx-n2]
				flux += ayp * ud[idx+n]
				flux += aym * ud[idx-n]
				flux += azp * ud[idx+1]
				flux += azm * ud[idx-1]
				uc := ud[idx]
				diag := sumA/h2 + cc
				lu := (sumA*uc-flux)/h2 + cc*uc
				next[idx] = uc + omega*(fd[idx]-lu)/diag
			}
			jacobiCell3D(op, u, f, next, i, j, n-1, omega)
		}
	}
	copy(ud, next[:n*n*n])
	w.Flops += 17 * n * n * n
}

// residualCell3D is the guarded per-cell residual.
func residualCell3D(op *Helmholtz3D, u, f, r *Grid3D, i, j, k int) {
	lu, _ := op.apply(u, i, j, k)
	idx := (i*u.N+j)*u.N + k
	r.Data[idx] = f.Data[idx] - lu
}

// Residual3D computes r = f - L u.
func Residual3D(op *Helmholtz3D, u, f, r *Grid3D, w *Work) {
	n := u.N
	h2 := u.h() * u.h()
	n2 := n * n
	ud, fd, rd, ad := u.Data, f.Data, r.Data, op.A.Data
	cc := op.C
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == 0 || i == n-1 || j == 0 || j == n-1 {
				for k := 0; k < n; k++ {
					residualCell3D(op, u, f, r, i, j, k)
				}
				continue
			}
			residualCell3D(op, u, f, r, i, j, 0)
			base := (i*n + j) * n
			for idx := base + 1; idx < base+n-1; idx++ {
				ac := ad[idx]
				axp := 0.5 * (ac + ad[idx+n2])
				axm := 0.5 * (ac + ad[idx-n2])
				ayp := 0.5 * (ac + ad[idx+n])
				aym := 0.5 * (ac + ad[idx-n])
				azp := 0.5 * (ac + ad[idx+1])
				azm := 0.5 * (ac + ad[idx-1])
				sumA := 0.0
				sumA += axp
				sumA += axm
				sumA += ayp
				sumA += aym
				sumA += azp
				sumA += azm
				flux := 0.0
				flux += axp * ud[idx+n2]
				flux += axm * ud[idx-n2]
				flux += ayp * ud[idx+n]
				flux += aym * ud[idx-n]
				flux += azp * ud[idx+1]
				flux += azm * ud[idx-1]
				uc := ud[idx]
				lu := (sumA*uc-flux)/h2 + cc*uc
				rd[idx] = fd[idx] - lu
			}
			residualCell3D(op, u, f, r, i, j, n-1)
		}
	}
	w.Flops += 15 * n * n * n
}

// Restrict3D full-weights a fine grid to the (n-1)/2 coarse grid using the
// 27-point kernel.
func Restrict3D(fine *Grid3D, w *Work) *Grid3D {
	coarse := NewGrid3D((fine.N - 1) / 2)
	Restrict3DInto(fine, coarse, w)
	return coarse
}

// Restrict3DInto full-weights fine into the caller-provided coarse grid.
// On the multigrid shape fine.N = 2·coarse.N + 1 all 27 taps are in range
// and the kernel runs over precomputed offsets without bounds logic.
func Restrict3DInto(fine, coarse *Grid3D, w *Work) {
	nc := coarse.N
	nf := fine.N
	if nf != 2*nc+1 {
		for i := 0; i < nc; i++ {
			for j := 0; j < nc; j++ {
				for k := 0; k < nc; k++ {
					fi, fj, fk := 2*i+1, 2*j+1, 2*k+1
					sum := 0.0
					for di := -1; di <= 1; di++ {
						for dj := -1; dj <= 1; dj++ {
							for dk := -1; dk <= 1; dk++ {
								wgt := 1.0 / float64(int(1)<<uint(absInt(di)+absInt(dj)+absInt(dk))) / 8.0
								sum += wgt * fine.At(fi+di, fj+dj, fk+dk)
							}
						}
					}
					coarse.Set(i, j, k, sum)
				}
			}
		}
		w.Flops += 30 * nc * nc * nc
		return
	}
	// Tap weights and fine-grid offsets in the reference iteration order
	// (di, dj, dk ascending). The weights are exact dyadic rationals.
	var wgt [27]float64
	var off [27]int
	t := 0
	for di := -1; di <= 1; di++ {
		for dj := -1; dj <= 1; dj++ {
			for dk := -1; dk <= 1; dk++ {
				wgt[t] = 1.0 / float64(int(1)<<uint(absInt(di)+absInt(dj)+absInt(dk))) / 8.0
				off[t] = (di*nf+dj)*nf + dk
				t++
			}
		}
	}
	fd, cd := fine.Data, coarse.Data
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			crow := (i*nc + j) * nc
			c := ((2*i+1)*nf+2*j+1)*nf + 1 // fine index at k = 0
			for k := 0; k < nc; k++ {
				sum := 0.0
				for t := 0; t < 27; t++ {
					sum += wgt[t] * fd[c+off[t]]
				}
				cd[crow+k] = sum
				c += 2
			}
		}
	}
	w.Flops += 30 * nc * nc * nc
}

// trilinear evaluates the coarse-grid interpolant at fine point (i,j,k)
// through the bounds-checked accessor — the guarded path for boundary
// cells and non-multigrid shapes.
func trilinear(coarse *Grid3D, i, j, k int) float64 {
	// Along each axis, an odd fine index coincides with a coarse node; an
	// even index averages the two flanking coarse nodes (boundary = 0).
	type axis struct {
		idx  [2]int
		wgt  [2]float64
		nTap int
	}
	mk := func(x int) axis {
		if x%2 == 1 {
			return axis{idx: [2]int{(x - 1) / 2, 0}, wgt: [2]float64{1, 0}, nTap: 1}
		}
		return axis{idx: [2]int{x/2 - 1, x / 2}, wgt: [2]float64{0.5, 0.5}, nTap: 2}
	}
	ax, ay, az := mk(i), mk(j), mk(k)
	sum := 0.0
	for a := 0; a < ax.nTap; a++ {
		for b := 0; b < ay.nTap; b++ {
			for c := 0; c < az.nTap; c++ {
				sum += ax.wgt[a] * ay.wgt[b] * az.wgt[c] *
					coarse.At(ax.idx[a], ay.idx[b], az.idx[c])
			}
		}
	}
	return sum
}

// Prolong3D trilinearly interpolates the coarse correction onto fine,
// adding in place.
func Prolong3D(coarse, fine *Grid3D, w *Work) {
	nf, nc := fine.N, coarse.N
	if nf != 2*nc+1 || nf < 3 {
		for i := 0; i < nf; i++ {
			for j := 0; j < nf; j++ {
				for k := 0; k < nf; k++ {
					fine.Set(i, j, k, fine.At(i, j, k)+trilinear(coarse, i, j, k))
				}
			}
		}
		w.Flops += 8 * nf * nf * nf
		return
	}
	fd, cd := fine.Data, coarse.Data
	for i := 0; i < nf; i++ {
		if i == 0 || i == nf-1 {
			for j := 0; j < nf; j++ {
				base := (i*nf + j) * nf
				for k := 0; k < nf; k++ {
					fd[base+k] += trilinear(coarse, i, j, k)
				}
			}
			continue
		}
		// i-axis taps (coarse plane index and weight).
		var ia [2]int
		var iw [2]float64
		ni := 1
		if i%2 == 1 {
			ia[0], iw[0] = (i-1)/2, 1
		} else {
			ia[0], iw[0] = i/2-1, 0.5
			ia[1], iw[1] = i/2, 0.5
			ni = 2
		}
		for j := 0; j < nf; j++ {
			base := (i*nf + j) * nf
			if j == 0 || j == nf-1 {
				for k := 0; k < nf; k++ {
					fd[base+k] += trilinear(coarse, i, j, k)
				}
				continue
			}
			var ja [2]int
			var jw [2]float64
			nj := 1
			if j%2 == 1 {
				ja[0], jw[0] = (j-1)/2, 1
			} else {
				ja[0], jw[0] = j/2-1, 0.5
				ja[1], jw[1] = j/2, 0.5
				nj = 2
			}
			// Coarse row bases and combined (i, j) weights, in the
			// reference tap order (i-axis outer, j-axis inner). All weights
			// are exact dyadics, so the products carry no rounding.
			var rb [4]int
			var rw [4]float64
			nr := 0
			for a := 0; a < ni; a++ {
				for b := 0; b < nj; b++ {
					rb[nr] = (ia[a]*nc + ja[b]) * nc
					rw[nr] = iw[a] * jw[b]
					nr++
				}
			}
			fd[base] += trilinear(coarse, i, j, 0)
			for k := 1; k < nf-1; k++ {
				sum := 0.0
				if k%2 == 1 {
					ck := (k - 1) / 2
					for t := 0; t < nr; t++ {
						sum += rw[t] * cd[rb[t]+ck]
					}
				} else {
					c0, c1 := k/2-1, k/2
					for t := 0; t < nr; t++ {
						wz := rw[t] * 0.5
						sum += wz * cd[rb[t]+c0]
						sum += wz * cd[rb[t]+c1]
					}
				}
				fd[base+k] += sum
			}
			fd[base+nf-1] += trilinear(coarse, i, j, nf-1)
		}
	}
	w.Flops += 8 * nf * nf * nf
}

// coarsen builds the coarse-grid operator by injecting the coefficient
// field at odd fine nodes; c carries over unchanged.
func (op *Helmholtz3D) coarsen() *Helmholtz3D {
	nc := (op.A.N - 1) / 2
	ca := NewGrid3D(nc)
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			for k := 0; k < nc; k++ {
				ca.Set(i, j, k, op.A.At(2*i+1, 2*j+1, 2*k+1))
			}
		}
	}
	return &Helmholtz3D{A: ca, C: op.C}
}

// MGOptions3D configures a 3-D multigrid cycle.
type MGOptions3D struct {
	Pre, Post int
	Gamma     int
	Omega     float64
}

// MGCycle3D performs one multigrid cycle on the Helmholtz problem. It
// builds a throwaway Hierarchy3D (including the coarsened operator chain)
// per call; loops over many cycles should construct the hierarchy once and
// call its Cycle method instead.
func MGCycle3D(op *Helmholtz3D, u, f *Grid3D, opt MGOptions3D, w *Work) {
	NewHierarchy3D(op).Cycle(u, f, opt, w)
}

// DirectHelmholtz3D solves the CONSTANT-coefficient surrogate of the
// operator (a replaced by its mean) exactly via 3-D sine transforms. For
// genuinely variable coefficients the result is only an approximation —
// which is precisely the accuracy/speed trade the benchmark's autotuner
// must navigate (see the poisson2d/helmholtz3d DESIGN.md entries).
func DirectHelmholtz3D(op *Helmholtz3D, f *Grid3D, w *Work) *Grid3D {
	n := f.N
	h := f.h()
	abar := 0.0
	for _, v := range op.A.Data {
		abar += v
	}
	abar /= float64(len(op.A.Data))
	basis := sineBasisFor(n, h)
	s, lam := basis.s, basis.lam
	fh := dstApply3D(s, f.Data, n)
	w.Flops += 3 * n * n * n * n
	norm := math.Pow(2.0/float64(n+1), 3)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				den := abar*(lam[i]+lam[j]+lam[k]) + op.C
				fh[(i*n+j)*n+k] *= norm / den
			}
		}
	}
	w.Flops += 3 * n * n * n
	out := NewGrid3D(n)
	out.Data = dstApply3D(s, fh, n)
	w.Flops += 3 * n * n * n * n
	return out
}

// dstApply3D applies the sine matrix along all three axes.
func dstApply3D(s [][]float64, x []float64, n int) []float64 {
	cur := append([]float64(nil), x...)
	next := make([]float64, n*n*n)
	// Axis 0.
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				sum := 0.0
				for t := 0; t < n; t++ {
					sum += s[i][t] * cur[(t*n+j)*n+k]
				}
				next[(i*n+j)*n+k] = sum
			}
		}
	}
	cur, next = next, cur
	// Axis 1.
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for t := 0; t < n; t++ {
					sum += s[j][t] * cur[(i*n+t)*n+k]
				}
				next[(i*n+j)*n+k] = sum
			}
		}
	}
	cur, next = next, cur
	// Axis 2.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				sum := 0.0
				for t := 0; t < n; t++ {
					sum += s[k][t] * cur[(i*n+j)*n+t]
				}
				next[(i*n+j)*n+k] = sum
			}
		}
	}
	return next
}
