package pde

import "math"

// Grid3D holds an N×N×N interior grid (Dirichlet zero boundary) on the
// unit cube, h = 1/(N+1), for the variable-coefficient Helmholtz problem
//
//	-∇·(a ∇u) + c·u = f
//
// with a sampled at grid nodes and c a non-negative constant.
type Grid3D struct {
	N    int
	Data []float64 // len N³, index (i*N + j)*N + k
}

// NewGrid3D returns a zero grid.
func NewGrid3D(n int) *Grid3D {
	return &Grid3D{N: n, Data: make([]float64, n*n*n)}
}

// At returns u(i,j,k) honouring the zero boundary.
func (g *Grid3D) At(i, j, k int) float64 {
	if i < 0 || j < 0 || k < 0 || i >= g.N || j >= g.N || k >= g.N {
		return 0
	}
	return g.Data[(i*g.N+j)*g.N+k]
}

// Set assigns u(i,j,k).
func (g *Grid3D) Set(i, j, k int, v float64) { g.Data[(i*g.N+j)*g.N+k] = v }

// Clone deep-copies the grid.
func (g *Grid3D) Clone() *Grid3D {
	out := NewGrid3D(g.N)
	copy(out.Data, g.Data)
	return out
}

// RMS returns the root-mean-square of the grid values.
func (g *Grid3D) RMS() float64 {
	sum := 0.0
	for _, v := range g.Data {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(g.Data)))
}

// SubRMS returns RMS(g - o).
func (g *Grid3D) SubRMS(o *Grid3D) float64 {
	sum := 0.0
	for i, v := range g.Data {
		d := v - o.Data[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(g.Data)))
}

func (g *Grid3D) h() float64 { return 1.0 / float64(g.N+1) }

// Helmholtz3D bundles the operator data: coefficient field a, constant c.
type Helmholtz3D struct {
	A *Grid3D // coefficient at nodes (boundary faces reuse interior value)
	C float64
}

// faceA returns the face coefficient between node (i,j,k) and its
// neighbour in the given direction, as the average of the two node values
// (out-of-range neighbours reuse the interior node's coefficient).
func (op *Helmholtz3D) faceA(i, j, k, di, dj, dk int) float64 {
	ac := op.A.At(i, j, k)
	ni, nj, nk := i+di, j+dj, k+dk
	n := op.A.N
	if ni < 0 || nj < 0 || nk < 0 || ni >= n || nj >= n || nk >= n {
		return ac
	}
	return 0.5 * (ac + op.A.At(ni, nj, nk))
}

// Apply3D computes (L u)(i,j,k) for the Helmholtz operator.
func (op *Helmholtz3D) apply(u *Grid3D, i, j, k int) (lu, diag float64) {
	h2 := u.h() * u.h()
	var sumA, flux float64
	dirs := [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	uc := u.At(i, j, k)
	for _, d := range dirs {
		a := op.faceA(i, j, k, d[0], d[1], d[2])
		sumA += a
		flux += a * u.At(i+d[0], j+d[1], k+d[2])
	}
	diag = sumA/h2 + op.C
	lu = (sumA*uc-flux)/h2 + op.C*uc
	return lu, diag
}

// Residual3D computes r = f - L u.
func Residual3D(op *Helmholtz3D, u, f, r *Grid3D, w *Work) {
	n := u.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				lu, _ := op.apply(u, i, j, k)
				r.Set(i, j, k, f.At(i, j, k)-lu)
			}
		}
	}
	w.Flops += 15 * n * n * n
}

// Jacobi3D performs one weighted Jacobi sweep.
func Jacobi3D(op *Helmholtz3D, u, f *Grid3D, omega float64, w *Work) {
	n := u.N
	next := make([]float64, n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				lu, diag := op.apply(u, i, j, k)
				uc := u.At(i, j, k)
				next[(i*n+j)*n+k] = uc + omega*(f.At(i, j, k)-lu)/diag
			}
		}
	}
	copy(u.Data, next)
	w.Flops += 17 * n * n * n
}

// SOR3D performs one SOR sweep (omega = 1 gives Gauss-Seidel).
func SOR3D(op *Helmholtz3D, u, f *Grid3D, omega float64, w *Work) {
	n := u.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				lu, diag := op.apply(u, i, j, k)
				uc := u.At(i, j, k)
				u.Set(i, j, k, uc+omega*(f.At(i, j, k)-lu)/diag)
			}
		}
	}
	w.Flops += 17 * n * n * n
}

// Restrict3D full-weights a fine grid to the (n-1)/2 coarse grid using the
// 27-point kernel.
func Restrict3D(fine *Grid3D, w *Work) *Grid3D {
	nc := (fine.N - 1) / 2
	coarse := NewGrid3D(nc)
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			for k := 0; k < nc; k++ {
				fi, fj, fk := 2*i+1, 2*j+1, 2*k+1
				sum := 0.0
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							wgt := 1.0 / float64(int(1)<<uint(abs(di)+abs(dj)+abs(dk))) / 8.0
							sum += wgt * fine.At(fi+di, fj+dj, fk+dk)
						}
					}
				}
				coarse.Set(i, j, k, sum)
			}
		}
	}
	w.Flops += 30 * nc * nc * nc
	return coarse
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Prolong3D trilinearly interpolates the coarse correction onto fine,
// adding in place.
func Prolong3D(coarse, fine *Grid3D, w *Work) {
	nf := fine.N
	for i := 0; i < nf; i++ {
		for j := 0; j < nf; j++ {
			for k := 0; k < nf; k++ {
				v := trilinear(coarse, i, j, k)
				fine.Set(i, j, k, fine.At(i, j, k)+v)
			}
		}
	}
	w.Flops += 8 * nf * nf * nf
}

// trilinear evaluates the coarse-grid interpolant at fine point (i,j,k).
func trilinear(coarse *Grid3D, i, j, k int) float64 {
	// Along each axis, an odd fine index coincides with a coarse node; an
	// even index averages the two flanking coarse nodes (boundary = 0).
	type axis struct {
		idx  [2]int
		wgt  [2]float64
		nTap int
	}
	mk := func(x int) axis {
		if x%2 == 1 {
			return axis{idx: [2]int{(x - 1) / 2, 0}, wgt: [2]float64{1, 0}, nTap: 1}
		}
		return axis{idx: [2]int{x/2 - 1, x / 2}, wgt: [2]float64{0.5, 0.5}, nTap: 2}
	}
	ax, ay, az := mk(i), mk(j), mk(k)
	sum := 0.0
	for a := 0; a < ax.nTap; a++ {
		for b := 0; b < ay.nTap; b++ {
			for c := 0; c < az.nTap; c++ {
				sum += ax.wgt[a] * ay.wgt[b] * az.wgt[c] *
					coarse.At(ax.idx[a], ay.idx[b], az.idx[c])
			}
		}
	}
	return sum
}

// coarsen builds the coarse-grid operator by injecting the coefficient
// field at odd fine nodes; c carries over unchanged.
func (op *Helmholtz3D) coarsen() *Helmholtz3D {
	nc := (op.A.N - 1) / 2
	ca := NewGrid3D(nc)
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			for k := 0; k < nc; k++ {
				ca.Set(i, j, k, op.A.At(2*i+1, 2*j+1, 2*k+1))
			}
		}
	}
	return &Helmholtz3D{A: ca, C: op.C}
}

// MGOptions3D configures a 3-D multigrid cycle.
type MGOptions3D struct {
	Pre, Post int
	Gamma     int
	Omega     float64
}

// MGCycle3D performs one multigrid cycle on the Helmholtz problem.
func MGCycle3D(op *Helmholtz3D, u, f *Grid3D, opt MGOptions3D, w *Work) {
	if opt.Gamma < 1 {
		opt.Gamma = 1
	}
	if opt.Omega <= 0 {
		opt.Omega = 1
	}
	n := u.N
	if n <= 3 {
		for s := 0; s < 8; s++ {
			SOR3D(op, u, f, 1.0, w)
		}
		return
	}
	for s := 0; s < opt.Pre; s++ {
		SOR3D(op, u, f, opt.Omega, w)
	}
	r := NewGrid3D(n)
	Residual3D(op, u, f, r, w)
	coarseF := Restrict3D(r, w)
	coarseU := NewGrid3D(coarseF.N)
	coarseOp := op.coarsen()
	for g := 0; g < opt.Gamma; g++ {
		MGCycle3D(coarseOp, coarseU, coarseF, opt, w)
	}
	Prolong3D(coarseU, u, w)
	for s := 0; s < opt.Post; s++ {
		SOR3D(op, u, f, opt.Omega, w)
	}
}

// DirectHelmholtz3D solves the CONSTANT-coefficient surrogate of the
// operator (a replaced by its mean) exactly via 3-D sine transforms. For
// genuinely variable coefficients the result is only an approximation —
// which is precisely the accuracy/speed trade the benchmark's autotuner
// must navigate (see the poisson2d/helmholtz3d DESIGN.md entries).
func DirectHelmholtz3D(op *Helmholtz3D, f *Grid3D, w *Work) *Grid3D {
	n := f.N
	h := f.h()
	abar := 0.0
	for _, v := range op.A.Data {
		abar += v
	}
	abar /= float64(len(op.A.Data))
	s := make([][]float64, n)
	for j := range s {
		s[j] = make([]float64, n)
		for k := range s[j] {
			s[j][k] = math.Sin(float64(j+1) * float64(k+1) * math.Pi / float64(n+1))
		}
	}
	lam := make([]float64, n)
	for j := range lam {
		sv := math.Sin(float64(j+1) * math.Pi / (2 * float64(n+1)))
		lam[j] = 4 * sv * sv / (h * h)
	}
	fh := dstApply3D(s, f.Data, n)
	w.Flops += 3 * n * n * n * n
	norm := math.Pow(2.0/float64(n+1), 3)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				den := abar*(lam[i]+lam[j]+lam[k]) + op.C
				fh[(i*n+j)*n+k] *= norm / den
			}
		}
	}
	w.Flops += 3 * n * n * n
	out := NewGrid3D(n)
	out.Data = dstApply3D(s, fh, n)
	w.Flops += 3 * n * n * n * n
	return out
}

// dstApply3D applies the sine matrix along all three axes.
func dstApply3D(s [][]float64, x []float64, n int) []float64 {
	cur := append([]float64(nil), x...)
	next := make([]float64, n*n*n)
	// Axis 0.
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				sum := 0.0
				for t := 0; t < n; t++ {
					sum += s[i][t] * cur[(t*n+j)*n+k]
				}
				next[(i*n+j)*n+k] = sum
			}
		}
	}
	cur, next = next, cur
	// Axis 1.
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for t := 0; t < n; t++ {
					sum += s[j][t] * cur[(i*n+t)*n+k]
				}
				next[(i*n+j)*n+k] = sum
			}
		}
	}
	cur, next = next, cur
	// Axis 2.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				sum := 0.0
				for t := 0; t < n; t++ {
					sum += s[k][t] * cur[(i*n+j)*n+t]
				}
				next[(i*n+j)*n+k] = sum
			}
		}
	}
	return next
}
