package pde

import (
	"math"
	"sync"
	"testing"

	"inputtune/internal/rng"
)

// Tests for the fast DST-I solvers (dst.go). The numerical contract under
// test is the one the file documents: BIT-identical to the dense direct
// solvers (and their flop charges) at fallback sizes, and within 1e-12
// relative error at FFT sizes, where the transform reassociates sums.

const dstFFTRelTol = 1e-12

func maxRelErr(t *testing.T, got, want []float64) float64 {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length mismatch: %d vs %d", len(got), len(want))
	}
	scale := 0.0
	for _, v := range want {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	worst := 0.0
	for i := range got {
		if e := math.Abs(got[i]-want[i]) / scale; e > worst {
			worst = e
		}
	}
	return worst
}

// TestFastDirectPoisson2DFallbackBitIdentical: at sizes where N+1 is not a
// power of two the fast solver IS the dense solver — same bits, same flop
// charge.
func TestFastDirectPoisson2DFallbackBitIdentical(t *testing.T) {
	for _, n := range []int{2, 5, 6, 10, 12, 21} {
		f := randGrid2D(n, rng.New(uint64(1000+n)))
		var wd, wf Work
		dense := DirectPoisson2D(f, &wd)
		fast := FastDirectPoisson2D(f, &wf)
		for i := range dense.Data {
			if dense.Data[i] != fast.Data[i] {
				t.Fatalf("n=%d: bit mismatch at %d: dense %v fast %v", n, i, dense.Data[i], fast.Data[i])
			}
		}
		if wd.Flops != wf.Flops {
			t.Fatalf("n=%d: flop charge mismatch: dense %d fast %d", n, wd.Flops, wf.Flops)
		}
	}
}

// TestFastDirectHelmholtz3DFallbackBitIdentical mirrors the 2-D fallback
// contract for the Helmholtz surrogate solver.
func TestFastDirectHelmholtz3DFallbackBitIdentical(t *testing.T) {
	for _, n := range []int{2, 5, 6, 9} {
		f := randGrid3D(n, rng.New(uint64(2000+n)))
		a := randGrid3D(n, rng.New(uint64(3000+n)))
		for i := range a.Data {
			a.Data[i] = 1 + 0.3*math.Abs(a.Data[i])
		}
		op := &Helmholtz3D{A: a, C: 0.7}
		var wd, wf Work
		dense := DirectHelmholtz3D(op, f, &wd)
		fast := FastDirectHelmholtz3D(op, f, &wf)
		for i := range dense.Data {
			if dense.Data[i] != fast.Data[i] {
				t.Fatalf("n=%d: bit mismatch at %d: dense %v fast %v", n, i, dense.Data[i], fast.Data[i])
			}
		}
		if wd.Flops != wf.Flops {
			t.Fatalf("n=%d: flop charge mismatch: dense %d fast %d", n, wd.Flops, wf.Flops)
		}
	}
}

// TestFastDirectPoisson2DFFTAccuracy: at multigrid sizes the FFT path must
// agree with the dense solve within the documented tolerance, and charge
// asymptotically fewer flops once N is past the crossover.
func TestFastDirectPoisson2DFFTAccuracy(t *testing.T) {
	for _, n := range []int{3, 7, 15, 31, 63, 127} {
		f := randGrid2D(n, rng.New(uint64(4000+n)))
		var wd, wf Work
		dense := DirectPoisson2D(f, &wd)
		fast := FastDirectPoisson2D(f, &wf)
		if err := maxRelErr(t, fast.Data, dense.Data); err > dstFFTRelTol {
			t.Fatalf("n=%d: max rel err %.3e exceeds %.0e", n, err, dstFFTRelTol)
		}
		if n >= 63 && wf.Flops >= wd.Flops {
			t.Fatalf("n=%d: fast path charged %d flops, dense %d", n, wf.Flops, wd.Flops)
		}
	}
}

// TestFastDirectHelmholtz3DFFTAccuracy mirrors the 2-D FFT contract.
func TestFastDirectHelmholtz3DFFTAccuracy(t *testing.T) {
	for _, n := range []int{3, 7, 15, 31, 63} {
		f := randGrid3D(n, rng.New(uint64(5000+n)))
		a := randGrid3D(n, rng.New(uint64(6000+n)))
		for i := range a.Data {
			a.Data[i] = 1 + 0.3*math.Abs(a.Data[i])
		}
		op := &Helmholtz3D{A: a, C: 0.7}
		var wd, wf Work
		dense := DirectHelmholtz3D(op, f, &wd)
		fast := FastDirectHelmholtz3D(op, f, &wf)
		if err := maxRelErr(t, fast.Data, dense.Data); err > dstFFTRelTol {
			t.Fatalf("n=%d: max rel err %.3e exceeds %.0e", n, err, dstFFTRelTol)
		}
		// The 3-D dense path charges one (understated) flop per MAC, so
		// the fast path's honest FFT charge only undercuts it past n=63.
		if n >= 63 && wf.Flops >= wd.Flops {
			t.Fatalf("n=%d: fast path charged %d flops, dense %d", n, wf.Flops, wd.Flops)
		}
	}
}

// TestDSTRoundTripProperty: DST-I is its own inverse up to the factor
// (N+1)/2, so transforming twice and rescaling must reproduce the input —
// across odd, even, power-of-two-adjacent and arbitrary sizes, on both the
// FFT and dense paths.
func TestDSTRoundTripProperty(t *testing.T) {
	r := rng.New(99)
	sizes := []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 24, 31, 32, 63}
	for trial := 0; trial < 40; trial++ {
		sizes = append(sizes, 1+r.Intn(50))
	}
	for _, n := range sizes {
		in := make([]float64, n)
		for i := range in {
			in[i] = r.Range(-10, 10)
		}
		plan, _ := dstPlanFor(n, 1.0/float64(n+1))
		sc := plan.pool.Get().(*dstScratch)
		mid := make([]float64, n)
		out := make([]float64, n)
		plan.transform1D(in, mid, sc)
		plan.transform1D(mid, out, sc)
		plan.pool.Put(sc)
		scale := 2.0 / float64(n+1)
		worst := 0.0
		for i := range out {
			if e := math.Abs(out[i]*scale - in[i]); e > worst {
				worst = e
			}
		}
		if worst > 1e-10 {
			t.Fatalf("n=%d: round-trip error %.3e", n, worst)
		}
	}
}

// TestDSTMatchesDenseTransform: the 1-D transform must agree with an
// explicit evaluation of the sine sum at every size class.
func TestDSTMatchesDenseTransform(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{1, 2, 3, 6, 7, 10, 15, 20, 31, 33} {
		in := make([]float64, n)
		for i := range in {
			in[i] = r.Range(-5, 5)
		}
		s := computeSineMatrix(n)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += s[i][k] * in[k]
			}
			want[i] = sum
		}
		plan, _ := dstPlanFor(n, 1.0/float64(n+1))
		sc := plan.pool.Get().(*dstScratch)
		got := make([]float64, n)
		plan.transform1D(in, got, sc)
		plan.pool.Put(sc)
		if err := maxRelErr(t, got, want); err > dstFFTRelTol {
			t.Fatalf("n=%d: transform err %.3e", n, err)
		}
	}
}

// FuzzDSTRoundTrip drives the round-trip property from fuzzed inputs:
// arbitrary sizes (odd, even, non-power-of-two) and arbitrary finite
// values must survive transform∘transform rescaling.
func FuzzDSTRoundTrip(f *testing.F) {
	f.Add(uint8(7), int64(1), int64(-2), int64(3))
	f.Add(uint8(8), int64(1000), int64(0), int64(-1000))
	f.Add(uint8(12), int64(-7), int64(7), int64(123456))
	f.Add(uint8(1), int64(42), int64(0), int64(0))
	f.Fuzz(func(t *testing.T, sz uint8, a, b, c int64) {
		n := 1 + int(sz)%64
		in := make([]float64, n)
		seeds := []int64{a, b, c}
		for i := range in {
			in[i] = float64(seeds[i%3]%1000) / 7 * float64(i+1)
		}
		plan, _ := dstPlanFor(n, 1.0/float64(n+1))
		sc := plan.pool.Get().(*dstScratch)
		mid := make([]float64, n)
		out := make([]float64, n)
		plan.transform1D(in, mid, sc)
		plan.transform1D(mid, out, sc)
		plan.pool.Put(sc)
		scale := 2.0 / float64(n+1)
		norm := 0.0
		for _, v := range in {
			if av := math.Abs(v); av > norm {
				norm = av
			}
		}
		tol := 1e-10 * (1 + norm)
		for i := range out {
			if math.Abs(out[i]*scale-in[i]) > tol {
				t.Fatalf("n=%d: round-trip mismatch at %d: got %v want %v", n, i, out[i]*scale, in[i])
			}
		}
	})
}

// TestFastDirectConcurrentDeterministic: plans are shared, workspaces are
// pooled; concurrent solves must still be bitwise equal to a serial solve
// (the determinism invariant the whole pipeline rests on).
func TestFastDirectConcurrentDeterministic(t *testing.T) {
	n := 31
	f := randGrid2D(n, rng.New(77))
	var w Work
	want := FastDirectPoisson2D(f, &w)
	var wg sync.WaitGroup
	results := make([]*Grid2D, 8)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var w Work
			results[g] = FastDirectPoisson2D(f, &w)
		}(g)
	}
	wg.Wait()
	for g, got := range results {
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("goroutine %d: nondeterministic result at %d", g, i)
			}
		}
	}
}
