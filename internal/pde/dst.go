package pde

import (
	"math"
	"sync"
)

// This file is the fast direct-solver substrate: a real DST-I (discrete
// sine transform, type I) that replaces the dense O(N³)/O(N⁴) sine
// transforms of DirectPoisson2D/DirectHelmholtz3D with an O(N² log N)/
// O(N³ log N) FFT-backed path. The dense solvers stay untouched as the
// differential reference (the same role reference.go plays for the
// stencil kernels), and the numerical contract is documented per path:
//
//   - Sizes where N+1 is a power of two (every multigrid ladder size:
//     7, 15, 31, 63, 127, 255, …) run a radix-2 complex FFT over the odd
//     extension of length M = 2(N+1). The FFT reassociates the sine sums,
//     so results agree with the dense transform only to rounding: the
//     package tests enforce a max relative error of 1e-12 against the
//     dense solve (observed ~1e-15 at benchmark sizes).
//   - Every other size falls back to a dense matvec against the shared
//     sine basis with the SAME accumulation order as dstApply2D/3D, so
//     the fast solvers are BIT-identical to the dense ones there — and
//     charge the same flop totals.
//
// Plans are cached per problem size like the sineBasis cache (util.go)
// and own a sync.Pool of scratch workspaces, mirroring how the benchmark
// programs pool Hierarchy2D/3D: concurrent solves at one size share the
// read-only plan and check out private FFT buffers.

// dstPlan is one problem size's DST-I plan: either FFT tables (twiddles +
// bit-reversal permutation) or the dense fallback basis. Immutable after
// construction except for the workspace pool and the eigenvalue cache,
// which dstPlanFor guards with the cache mutex.
type dstPlan struct {
	n int

	// FFT path (n+1 a power of two); nil basis marks it active.
	m    int   // odd-extension / FFT length, 2(n+1)
	logM int   // log2(m)
	rev  []int // bit-reversal permutation
	wre  []float64
	wim  []float64 // wre[k] + i·wim[k] = e^{-2πik/m}, k < m/2
	// flops1D is the virtual cost charged per FFT-backed 1-D transform.
	// Fibers are processed two per complex FFT (transformPair packs one
	// real-odd vector in the real lane and one in the imaginary lane), so
	// the per-fiber charge is half of ~10 flops per butterfly across
	// (m/2)·log2(m) butterflies, plus the pack/unpack pass. The dense
	// fallback charges 2n² (2-D convention) or n² (3-D convention) —
	// exactly what the dense solvers charge.
	flops1D int

	// Dense fallback: the shared symmetric sine matrix.
	basis [][]float64

	// Eigenvalue cache for the grid spacing first seen at this size
	// (callers derive h from n, so one per size); guarded by dstCache.
	h   float64
	lam []float64

	pool sync.Pool // *dstScratch
}

// dstScratch is one solve's private workspace: FFT buffers plus the
// fiber gather/scatter vectors.
type dstScratch struct {
	re, im []float64 // length m (FFT path only)
	vin    []float64 // length n
	vout   []float64 // length n
	vin2   []float64 // second fiber of a transformPair
	vout2  []float64
}

// dstCache mirrors sineCache: a small FIFO keyed by problem size.
var dstCache struct {
	sync.Mutex
	entries map[int]*dstPlan
	fifo    []int
}

// dstPlanFor returns the cached plan and eigenvalues for size n and
// spacing h, building them on first sight. Like sineBasisFor, a repeat
// size with a different spacing reuses the plan but recomputes the
// eigenvalues without caching them.
func dstPlanFor(n int, h float64) (*dstPlan, []float64) {
	dstCache.Lock()
	defer dstCache.Unlock()
	if dstCache.entries == nil {
		dstCache.entries = make(map[int]*dstPlan, sineCacheCap)
	}
	p := dstCache.entries[n]
	if p == nil {
		p = newDSTPlan(n)
		dstCache.entries[n] = p
		dstCache.fifo = append(dstCache.fifo, n)
		for len(dstCache.entries) > sineCacheCap {
			victim := dstCache.fifo[0]
			dstCache.fifo = dstCache.fifo[1:]
			delete(dstCache.entries, victim)
		}
	}
	if p.lam == nil {
		p.h, p.lam = h, computeSineEigenvalues(n, h)
	}
	if p.h == h {
		return p, p.lam
	}
	return p, computeSineEigenvalues(n, h)
}

// newDSTPlan builds the per-size tables.
func newDSTPlan(n int) *dstPlan {
	p := &dstPlan{n: n}
	if m := 2 * (n + 1); m&(m-1) == 0 && m >= 4 {
		p.m = m
		for 1<<p.logM < m {
			p.logM++
		}
		p.rev = make([]int, m)
		for i := 1; i < m; i++ {
			p.rev[i] = p.rev[i>>1]>>1 | (i&1)<<(p.logM-1)
		}
		half := m / 2
		p.wre = make([]float64, half)
		p.wim = make([]float64, half)
		for k := 0; k < half; k++ {
			ang := -2 * math.Pi * float64(k) / float64(m)
			p.wre[k] = math.Cos(ang)
			p.wim[k] = math.Sin(ang)
		}
		p.flops1D = 5*m*p.logM/2 + 2*m
	} else {
		p.basis = computeSineMatrix(n)
	}
	p.pool.New = func() any {
		sc := &dstScratch{
			vin:   make([]float64, n),
			vout:  make([]float64, n),
			vin2:  make([]float64, n),
			vout2: make([]float64, n),
		}
		if p.basis == nil {
			sc.re = make([]float64, p.m)
			sc.im = make([]float64, p.m)
		}
		return sc
	}
	return p
}

// fft runs the iterative radix-2 decimation-in-time transform in place.
func (p *dstPlan) fft(re, im []float64) {
	for i, j := range p.rev {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	m := p.m
	for size := 2; size <= m; size <<= 1 {
		half := size >> 1
		step := m / size
		for start := 0; start < m; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				wr, wi := p.wre[tw], p.wim[tw]
				xr, xi := re[k+half], im[k+half]
				tr := xr*wr - xi*wi
				ti := xr*wi + xi*wr
				re[k+half] = re[k] - tr
				im[k+half] = im[k] - ti
				re[k] += tr
				im[k] += ti
				tw += step
			}
		}
	}
}

// transform1D computes the DST-I of in into out (both length n). in and
// out must not alias. The dense fallback accumulates in ascending index
// order — the exact sum dstApply2D/3D compute — so fallback solves are
// bit-identical to the dense reference.
func (p *dstPlan) transform1D(in, out []float64, sc *dstScratch) {
	if p.basis != nil {
		n := p.n
		for i := 0; i < n; i++ {
			row := p.basis[i]
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += row[k] * in[k]
			}
			out[i] = sum
		}
		return
	}
	// Odd extension y of length m: y[0] = y[n+1] = 0, y[i] = x[i-1],
	// y[m-i] = -x[i-1]. Then DFT(y)[j] = -2i · DST(x)[j-1], so the
	// transform is the negated halved imaginary part of bins 1..n.
	m, n := p.m, p.n
	re, im := sc.re, sc.im
	re[0], im[0] = 0, 0
	re[n+1], im[n+1] = 0, 0
	for i := 1; i <= n; i++ {
		v := in[i-1]
		re[i], im[i] = v, 0
		re[m-i], im[m-i] = -v, 0
	}
	p.fft(re, im)
	for j := 1; j <= n; j++ {
		out[j-1] = -0.5 * im[j]
	}
}

// transformPair computes the DST-I of two fibers with ONE complex FFT:
// inA rides the real lane, inB the imaginary lane. Because each odd-real
// extension transforms to a purely imaginary spectrum, the two interleave
// without mixing: DFT(yA + i·yB)[j] = -2i·XA[j-1] + 2·XB[j-1], so XA is
// read off the imaginary parts and XB off the real parts. This halves the
// FFT work per fiber — the savings flops1D charges for.
func (p *dstPlan) transformPair(inA, inB, outA, outB []float64, sc *dstScratch) {
	if p.basis != nil {
		p.transform1D(inA, outA, sc)
		p.transform1D(inB, outB, sc)
		return
	}
	m, n := p.m, p.n
	re, im := sc.re, sc.im
	re[0], im[0] = 0, 0
	re[n+1], im[n+1] = 0, 0
	for i := 1; i <= n; i++ {
		va, vb := inA[i-1], inB[i-1]
		re[i], im[i] = va, vb
		re[m-i], im[m-i] = -va, -vb
	}
	p.fft(re, im)
	for j := 1; j <= n; j++ {
		outA[j-1] = -0.5 * im[j]
		outB[j-1] = 0.5 * re[j]
	}
}

// gatherFiber copies the strided fiber at base into v.
func gatherFiber(dst []float64, v []float64, base, stride, n int) {
	for k := 0; k < n; k++ {
		v[k] = dst[base+k*stride]
	}
}

// scatterFiber writes v back over the strided fiber at base.
func scatterFiber(dst []float64, v []float64, base, stride, n int) {
	for k := 0; k < n; k++ {
		dst[base+k*stride] = v[k]
	}
}

// transformFibers runs the DST-I over every fiber whose base offsets are
// enumerated by next (returning -1 when done), pairing fibers two per
// complex FFT; a trailing unpaired fiber takes the single path.
func (p *dstPlan) transformFibers(dst []float64, stride int, next func() int, sc *dstScratch) {
	n := p.n
	for {
		a := next()
		if a < 0 {
			return
		}
		b := next()
		if b < 0 {
			gatherFiber(dst, sc.vin, a, stride, n)
			p.transform1D(sc.vin, sc.vout, sc)
			scatterFiber(dst, sc.vout, a, stride, n)
			return
		}
		gatherFiber(dst, sc.vin, a, stride, n)
		gatherFiber(dst, sc.vin2, b, stride, n)
		p.transformPair(sc.vin, sc.vin2, sc.vout, sc.vout2, sc)
		scatterFiber(dst, sc.vout, a, stride, n)
		scatterFiber(dst, sc.vout2, b, stride, n)
	}
}

// baseEnum enumerates count fiber bases, base(i) for i < count.
func baseEnum(count int, base func(i int) int) func() int {
	i := 0
	return func() int {
		if i >= count {
			return -1
		}
		b := base(i)
		i++
		return b
	}
}

// apply2D computes the two-sided sine transform S·X·S of the n×n array
// src into dst (dst may alias src), charging w for the work.
func (p *dstPlan) apply2D(src, dst []float64, w *Work) {
	n := p.n
	sc := p.pool.Get().(*dstScratch)
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	// Axis 0 (columns, stride n), then axis 1 (rows, contiguous).
	p.transformFibers(dst, n, baseEnum(n, func(j int) int { return j }), sc)
	p.transformFibers(dst, 1, baseEnum(n, func(i int) int { return i * n }), sc)
	p.pool.Put(sc)
	if p.basis != nil {
		w.Flops += 4 * n * n * n // the dense charge, for bit-parity
	} else {
		w.Flops += 2 * n * p.flops1D
	}
}

// apply3D computes the three-axis sine transform of the n×n×n array src
// into dst (dst may alias src), charging w for the work.
func (p *dstPlan) apply3D(src, dst []float64, w *Work) {
	n := p.n
	sc := p.pool.Get().(*dstScratch)
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	// Axis 0 (stride n²), axis 1 (stride n), axis 2 (contiguous).
	p.transformFibers(dst, n*n, baseEnum(n*n, func(i int) int { return i }), sc)
	p.transformFibers(dst, n, baseEnum(n*n, func(i int) int {
		return (i/n)*n*n + i%n
	}), sc)
	p.transformFibers(dst, 1, baseEnum(n*n, func(i int) int { return i * n }), sc)
	p.pool.Put(sc)
	if p.basis != nil {
		w.Flops += 3 * n * n * n * n // the dense charge, for bit-parity
	} else {
		w.Flops += 3 * n * n * p.flops1D
	}
}

// FastDirectPoisson2D solves -Δu = f exactly like DirectPoisson2D but via
// the FFT-backed DST-I: O(N² log N) at multigrid sizes instead of O(N³).
// At sizes where N+1 is not a power of two it is bit-identical to
// DirectPoisson2D (same sums, same order, same flop charge); at FFT sizes
// it agrees to rounding (documented contract at the top of this file) and
// charges the FFT's asymptotic cost, which is what makes it a genuinely
// different point in the autotuner's choice space.
func FastDirectPoisson2D(f *Grid2D, w *Work) *Grid2D {
	n := f.N
	h := f.h()
	plan, lam := dstPlanFor(n, h)
	fh := make([]float64, n*n)
	plan.apply2D(f.Data, fh, w)
	// Scale by 1/(λi + λj) and the DST normalisation (2/(N+1))² — the
	// same expression, in the same order, as DirectPoisson2D.
	norm := 4.0 / (float64(n+1) * float64(n+1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			fh[i*n+j] *= norm / (lam[i] + lam[j])
		}
	}
	w.Flops += 2 * n * n
	out := NewGrid2D(n)
	plan.apply2D(fh, out.Data, w)
	return out
}

// FastDirectHelmholtz3D solves the constant-coefficient surrogate exactly
// like DirectHelmholtz3D (same ā averaging, same spectral scaling) but via
// the FFT-backed DST-I: O(N³ log N) at multigrid sizes instead of O(N⁴).
// The fallback/FFT contract matches FastDirectPoisson2D.
func FastDirectHelmholtz3D(op *Helmholtz3D, f *Grid3D, w *Work) *Grid3D {
	n := f.N
	h := f.h()
	abar := 0.0
	for _, v := range op.A.Data {
		abar += v
	}
	abar /= float64(len(op.A.Data))
	plan, lam := dstPlanFor(n, h)
	fh := make([]float64, n*n*n)
	plan.apply3D(f.Data, fh, w)
	norm := math.Pow(2.0/float64(n+1), 3)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				den := abar*(lam[i]+lam[j]+lam[k]) + op.C
				fh[(i*n+j)*n+k] *= norm / den
			}
		}
	}
	w.Flops += 3 * n * n * n
	out := NewGrid3D(n)
	plan.apply3D(fh, out.Data, w)
	return out
}
