package pde

import (
	"math"
	"sync"
)

// Small helpers shared by the 2-D and 3-D solver families. Everything here
// exists in exactly one place so the kernels, the direct solvers and the
// reference implementations cannot drift apart numerically.

// absInt returns |x| for the restriction-weight exponents.
func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// rmsOf returns the root-mean-square of xs.
func rmsOf(xs []float64) float64 {
	sum := 0.0
	for _, v := range xs {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// subRMSOf returns the RMS of the elementwise difference a - b.
func subRMSOf(a, b []float64) float64 {
	sum := 0.0
	for i, v := range a {
		d := v - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a)))
}

// zeroFloats clears xs (the coarse-correction reset inside a cycle).
func zeroFloats(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// sineBasis is one problem size's precomputed direct-solver basis: the
// symmetric sine matrix plus the second-difference eigenvalues for the
// grid spacing h seen at that size (callers derive h from n, so one per
// size; a mismatched h falls back to a fresh eigenvalue computation).
// Cached entries are shared read-only across goroutines — the transforms
// only ever read them.
type sineBasis struct {
	s   [][]float64
	h   float64
	lam []float64
}

// sineCacheCap bounds the basis cache. The benchmark suites use a handful
// of problem sizes; a small FIFO keeps every live size resident while a
// pathological size sweep cannot grow the cache without bound.
const sineCacheCap = 8

var sineCache struct {
	sync.Mutex
	entries map[int]*sineBasis
	fifo    []int
}

// sineBasisFor returns the cached basis for problem size n and spacing h,
// computing and inserting it on first sight. The cached values are the
// exact floats the uncached computation produces — the same math.Sin calls
// in the same order — so Direct* outputs are bit-identical to the
// recompute-per-call original (enforced by TestSineBasisCache and the
// direct-solver tests).
func sineBasisFor(n int, h float64) *sineBasis {
	sineCache.Lock()
	defer sineCache.Unlock()
	if sineCache.entries == nil {
		sineCache.entries = make(map[int]*sineBasis, sineCacheCap)
	}
	if b := sineCache.entries[n]; b != nil {
		if b.h == h {
			return b
		}
		// Same size, different spacing (no production caller does this):
		// reuse the matrix, recompute the eigenvalues without caching.
		return &sineBasis{s: b.s, h: h, lam: computeSineEigenvalues(n, h)}
	}
	b := &sineBasis{s: computeSineMatrix(n), h: h, lam: computeSineEigenvalues(n, h)}
	sineCache.entries[n] = b
	sineCache.fifo = append(sineCache.fifo, n)
	for len(sineCache.entries) > sineCacheCap {
		victim := sineCache.fifo[0]
		sineCache.fifo = sineCache.fifo[1:]
		delete(sineCache.entries, victim)
	}
	return b
}

// computeSineMatrix builds the symmetric sine basis S[j][k] =
// sin((j+1)(k+1)π/(N+1)) shared by both direct sine-transform solvers.
func computeSineMatrix(n int) [][]float64 {
	s := make([][]float64, n)
	for j := range s {
		s[j] = make([]float64, n)
		for k := range s[j] {
			s[j][k] = math.Sin(float64(j+1) * float64(k+1) * math.Pi / float64(n+1))
		}
	}
	return s
}

// computeSineEigenvalues returns the eigenvalues 4·sin²((j+1)π/(2(N+1)))/h²
// of the 1-D second-difference operator, shared by both direct solvers.
func computeSineEigenvalues(n int, h float64) []float64 {
	lam := make([]float64, n)
	for j := range lam {
		sv := math.Sin(float64(j+1) * math.Pi / (2 * float64(n+1)))
		lam[j] = 4 * sv * sv / (h * h)
	}
	return lam
}
