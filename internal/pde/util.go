package pde

import "math"

// Small helpers shared by the 2-D and 3-D solver families. Everything here
// exists in exactly one place so the kernels, the direct solvers and the
// reference implementations cannot drift apart numerically.

// absInt returns |x| for the restriction-weight exponents.
func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// rmsOf returns the root-mean-square of xs.
func rmsOf(xs []float64) float64 {
	sum := 0.0
	for _, v := range xs {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// subRMSOf returns the RMS of the elementwise difference a - b.
func subRMSOf(a, b []float64) float64 {
	sum := 0.0
	for i, v := range a {
		d := v - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a)))
}

// zeroFloats clears xs (the coarse-correction reset inside a cycle).
func zeroFloats(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// sineMatrix builds the symmetric sine basis S[j][k] =
// sin((j+1)(k+1)π/(N+1)) shared by both direct sine-transform solvers.
func sineMatrix(n int) [][]float64 {
	s := make([][]float64, n)
	for j := range s {
		s[j] = make([]float64, n)
		for k := range s[j] {
			s[j][k] = math.Sin(float64(j+1) * float64(k+1) * math.Pi / float64(n+1))
		}
	}
	return s
}

// sineEigenvalues returns the eigenvalues 4·sin²((j+1)π/(2(N+1)))/h² of
// the 1-D second-difference operator, shared by both direct solvers.
func sineEigenvalues(n int, h float64) []float64 {
	lam := make([]float64, n)
	for j := range lam {
		sv := math.Sin(float64(j+1) * math.Pi / (2 * float64(n+1)))
		lam[j] = 4 * sv * sv / (h * h)
	}
	return lam
}
