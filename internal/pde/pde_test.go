package pde

import (
	"math"
	"testing"

	"inputtune/internal/rng"
)

// manufactured2D builds f = -Δu for u = sin(aπx)sin(bπy) (whose exact
// discrete solution we can compare against after solving).
func manufactured2D(n, a, b int) (f, exactU *Grid2D) {
	f = NewGrid2D(n)
	exactU = NewGrid2D(n)
	h := 1.0 / float64(n+1)
	// Discrete eigenvalue of the 5-point Laplacian for mode (a, b).
	sa := math.Sin(float64(a) * math.Pi * h / 2)
	sb := math.Sin(float64(b) * math.Pi * h / 2)
	lam := 4 * (sa*sa + sb*sb) / (h * h)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := float64(i+1) * h
			y := float64(j+1) * h
			u := math.Sin(float64(a)*math.Pi*x) * math.Sin(float64(b)*math.Pi*y)
			exactU.Set(i, j, u)
			f.Set(i, j, lam*u)
		}
	}
	return f, exactU
}

func TestDirectPoisson2DExact(t *testing.T) {
	for _, n := range []int{7, 15, 31} {
		f, exact := manufactured2D(n, 1, 2)
		var w Work
		u := DirectPoisson2D(f, &w)
		if err := u.SubRMS(exact); err > 1e-10 {
			t.Fatalf("n=%d: direct solver error %v", n, err)
		}
		if w.Flops == 0 {
			t.Fatal("no work recorded")
		}
	}
}

func TestSORConvergesOnPoisson(t *testing.T) {
	n := 15
	f, exact := manufactured2D(n, 1, 1)
	u := NewGrid2D(n)
	var w Work
	for it := 0; it < 400; it++ {
		SOR2D(u, f, 1.5, &w)
	}
	if err := u.SubRMS(exact); err > 1e-6*exact.RMS() {
		t.Fatalf("SOR error %v after 400 sweeps", err)
	}
}

func TestJacobiReducesError(t *testing.T) {
	n := 15
	f, exact := manufactured2D(n, 3, 3)
	u := NewGrid2D(n)
	var w Work
	before := u.SubRMS(exact)
	for it := 0; it < 100; it++ {
		Jacobi2D(u, f, 0.8, &w)
	}
	after := u.SubRMS(exact)
	if after >= before/10 {
		t.Fatalf("Jacobi barely converged: %v -> %v", before, after)
	}
}

func TestMultigridFastConvergence2D(t *testing.T) {
	n := 31
	f, exact := manufactured2D(n, 1, 1)
	u := NewGrid2D(n)
	var w Work
	opt := MGOptions2D{Pre: 2, Post: 2, Gamma: 1, Omega: 1.0}
	for c := 0; c < 10; c++ {
		MGCycle2D(u, f, opt, &w)
	}
	rel := u.SubRMS(exact) / exact.RMS()
	if rel > 1e-7 {
		t.Fatalf("multigrid relative error %v after 10 V-cycles", rel)
	}
}

func TestMultigridBeatsSORPerFlop(t *testing.T) {
	n := 63
	f, exact := manufactured2D(n, 1, 1)
	// Multigrid: 8 V-cycles.
	uMG := NewGrid2D(n)
	var wMG Work
	for c := 0; c < 8; c++ {
		MGCycle2D(uMG, f, MGOptions2D{Pre: 2, Post: 2, Gamma: 1, Omega: 1.0}, &wMG)
	}
	errMG := uMG.SubRMS(exact)
	// SOR with the same flop budget.
	uSOR := NewGrid2D(n)
	var wSOR Work
	for wSOR.Flops < wMG.Flops {
		SOR2D(uSOR, f, 1.7, &wSOR)
	}
	errSOR := uSOR.SubRMS(exact)
	if errMG >= errSOR {
		t.Fatalf("multigrid (err %v, %d flops) no better than SOR (err %v, %d flops)",
			errMG, wMG.Flops, errSOR, wSOR.Flops)
	}
}

func TestWCycleDoesMoreWork(t *testing.T) {
	n := 31
	f, _ := manufactured2D(n, 1, 1)
	var wV, wW Work
	uV, uW := NewGrid2D(n), NewGrid2D(n)
	MGCycle2D(uV, f, MGOptions2D{Pre: 1, Post: 1, Gamma: 1, Omega: 1}, &wV)
	MGCycle2D(uW, f, MGOptions2D{Pre: 1, Post: 1, Gamma: 2, Omega: 1}, &wW)
	if wW.Flops <= wV.Flops {
		t.Fatalf("W-cycle flops %d not above V-cycle %d", wW.Flops, wV.Flops)
	}
}

func TestResidualZeroAtSolution(t *testing.T) {
	n := 15
	f, exact := manufactured2D(n, 2, 1)
	r := NewGrid2D(n)
	var w Work
	Residual2D(exact, f, r, &w)
	if rms := r.RMS(); rms > 1e-9*f.RMS() {
		t.Fatalf("residual at exact solution = %v", rms)
	}
}

// --- 3D -------------------------------------------------------------------

// constOp returns a Helmholtz operator with a ≡ 1 and the given c.
func constOp(n int, c float64) *Helmholtz3D {
	a := NewGrid3D(n)
	for i := range a.Data {
		a.Data[i] = 1
	}
	return &Helmholtz3D{A: a, C: c}
}

// manufactured3D builds f = L u for mode (1,1,1) under constant a=1.
func manufactured3D(n int, c float64) (op *Helmholtz3D, f, exact *Grid3D) {
	op = constOp(n, c)
	f = NewGrid3D(n)
	exact = NewGrid3D(n)
	h := 1.0 / float64(n+1)
	s1 := math.Sin(math.Pi * h / 2)
	lam := 3*4*s1*s1/(h*h) + c
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				x, y, z := float64(i+1)*h, float64(j+1)*h, float64(k+1)*h
				u := math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
				exact.Set(i, j, k, u)
				f.Set(i, j, k, lam*u)
			}
		}
	}
	return op, f, exact
}

func TestDirectHelmholtz3DExactForConstantCoeff(t *testing.T) {
	for _, n := range []int{7, 15} {
		op, f, exact := manufactured3D(n, 2.0)
		var w Work
		u := DirectHelmholtz3D(op, f, &w)
		if err := u.SubRMS(exact); err > 1e-10 {
			t.Fatalf("n=%d: direct error %v", n, err)
		}
	}
}

func TestDirectHelmholtz3DApproximateForVariableCoeff(t *testing.T) {
	n := 7
	op, f, exact := manufactured3D(n, 1.0)
	// Perturb the coefficient field: direct now solves the wrong operator.
	r := rng.New(1)
	for i := range op.A.Data {
		op.A.Data[i] = 1 + 0.5*r.Float64()
	}
	var w Work
	u := DirectHelmholtz3D(op, f, &w)
	// The error should be visible (direct is only approximate here)...
	if err := u.SubRMS(exact); err < 1e-8 {
		t.Fatalf("variable-coefficient direct unexpectedly exact (err %v)", err)
	}
	// ...but multigrid on the true operator should beat it easily.
	uMG := NewGrid3D(n)
	var wMG Work
	fTrue := NewGrid3D(n)
	// Build the true RHS for the perturbed operator: f' = L exact.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				lu, _ := op.apply(exact, i, j, k)
				fTrue.Set(i, j, k, lu)
			}
		}
	}
	for c := 0; c < 12; c++ {
		MGCycle3D(op, uMG, fTrue, MGOptions3D{Pre: 2, Post: 2, Gamma: 1, Omega: 1}, &wMG)
	}
	if errMG := uMG.SubRMS(exact); errMG > 1e-6 {
		t.Fatalf("variable-coefficient multigrid error %v", errMG)
	}
}

func TestSOR3DConverges(t *testing.T) {
	n := 7
	op, f, exact := manufactured3D(n, 0.5)
	u := NewGrid3D(n)
	var w Work
	for it := 0; it < 200; it++ {
		SOR3D(op, u, f, 1.5, &w)
	}
	if err := u.SubRMS(exact); err > 1e-8 {
		t.Fatalf("SOR3D error %v", err)
	}
}

func TestJacobi3DReducesError(t *testing.T) {
	n := 7
	op, f, exact := manufactured3D(n, 0)
	u := NewGrid3D(n)
	var w Work
	before := u.SubRMS(exact)
	for it := 0; it < 120; it++ {
		Jacobi3D(op, u, f, 0.8, &w)
	}
	if after := u.SubRMS(exact); after > before/100 {
		t.Fatalf("Jacobi3D barely converged: %v -> %v", before, after)
	}
}

func TestMultigrid3DConverges(t *testing.T) {
	n := 15
	op, f, exact := manufactured3D(n, 1.0)
	u := NewGrid3D(n)
	var w Work
	for c := 0; c < 10; c++ {
		MGCycle3D(op, u, f, MGOptions3D{Pre: 2, Post: 2, Gamma: 1, Omega: 1}, &w)
	}
	rel := u.SubRMS(exact) / exact.RMS()
	if rel > 1e-6 {
		t.Fatalf("3D multigrid relative error %v", rel)
	}
}

func TestRestrictProlongRoundTrip2D(t *testing.T) {
	// Restriction of a smooth field then prolongation should roughly
	// reproduce it (low-pass behaviour).
	n := 31
	g := NewGrid2D(n)
	h := 1.0 / float64(n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.Set(i, j, math.Sin(math.Pi*float64(i+1)*h)*math.Sin(math.Pi*float64(j+1)*h))
		}
	}
	var w Work
	coarse := Restrict2D(g, &w)
	back := NewGrid2D(n)
	Prolong2D(coarse, back, &w)
	if err := back.SubRMS(g); err > 0.05 {
		t.Fatalf("restrict/prolong round-trip error %v", err)
	}
}

func TestGridAccessorsBoundary(t *testing.T) {
	g := NewGrid2D(4)
	if g.At(-1, 0) != 0 || g.At(0, 4) != 0 {
		t.Fatal("2D boundary not zero")
	}
	g3 := NewGrid3D(3)
	if g3.At(3, 0, 0) != 0 || g3.At(0, -1, 0) != 0 {
		t.Fatal("3D boundary not zero")
	}
	g.Set(1, 2, 5)
	if g.At(1, 2) != 5 {
		t.Fatal("2D set/get broken")
	}
	g3.Set(1, 2, 0, 7)
	if g3.At(1, 2, 0) != 7 {
		t.Fatal("3D set/get broken")
	}
}
