package pde

import (
	"math"
	"testing"

	"inputtune/internal/rng"
)

// Differential tests: the flattened boundary-split kernels and the
// hierarchy-based multigrid cycles must produce BIT-identical grids and
// identical op counts versus the reference implementations in
// reference.go, on randomized inputs across sizes (including the
// non-multigrid even sizes the guarded fallbacks handle).

func randGrid2D(n int, r *rng.RNG) *Grid2D {
	g := NewGrid2D(n)
	for i := range g.Data {
		g.Data[i] = r.Norm(0, 1)
	}
	return g
}

func randGrid3D(n int, r *rng.RNG) *Grid3D {
	g := NewGrid3D(n)
	for i := range g.Data {
		g.Data[i] = r.Norm(0, 1)
	}
	return g
}

// randOp3D builds a positive random-coefficient Helmholtz operator.
func randOp3D(n int, r *rng.RNG) *Helmholtz3D {
	a := NewGrid3D(n)
	for i := range a.Data {
		a.Data[i] = r.Range(0.2, 3)
	}
	return &Helmholtz3D{A: a, C: r.Range(0, 4)}
}

// sameBits2D fails the test unless got and want match bit for bit.
func sameBits(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: cell %d differs: %v (%#x) vs %v (%#x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func sameWork(t *testing.T, label string, got, want Work) {
	t.Helper()
	if got != want {
		t.Fatalf("%s: flops %d vs reference %d", label, got.Flops, want.Flops)
	}
}

var diffSizes2D = []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 31}

func TestKernels2DMatchReference(t *testing.T) {
	r := rng.New(7)
	for _, n := range diffSizes2D {
		for _, omega := range []float64{0.8, 1.0, 1.5, 1.93} {
			u := randGrid2D(n, r)
			f := randGrid2D(n, r)

			uRef, uNew := u.Clone(), u.Clone()
			var wRef, wNew Work
			for s := 0; s < 3; s++ { // repeated sweeps compound any drift
				referenceSOR2D(uRef, f, omega, &wRef)
				SOR2D(uNew, f, omega, &wNew)
			}
			sameBits(t, "SOR2D", uNew.Data, uRef.Data)
			sameWork(t, "SOR2D", wNew, wRef)

			uRef, uNew = u.Clone(), u.Clone()
			wRef, wNew = Work{}, Work{}
			for s := 0; s < 3; s++ {
				referenceJacobi2D(uRef, f, omega, &wRef)
				Jacobi2D(uNew, f, omega, &wNew)
			}
			sameBits(t, "Jacobi2D", uNew.Data, uRef.Data)
			sameWork(t, "Jacobi2D", wNew, wRef)

			rRef, rNew := NewGrid2D(n), NewGrid2D(n)
			wRef, wNew = Work{}, Work{}
			referenceResidual2D(u, f, rRef, &wRef)
			Residual2D(u, f, rNew, &wNew)
			sameBits(t, "Residual2D", rNew.Data, rRef.Data)
			sameWork(t, "Residual2D", wNew, wRef)

			if n >= 3 {
				wRef, wNew = Work{}, Work{}
				cRef := referenceRestrict2D(u, &wRef)
				cNew := Restrict2D(u, &wNew)
				sameBits(t, "Restrict2D", cNew.Data, cRef.Data)
				sameWork(t, "Restrict2D", wNew, wRef)

				coarse := randGrid2D((n-1)/2, r)
				fRef, fNew := u.Clone(), u.Clone()
				wRef, wNew = Work{}, Work{}
				referenceProlong2D(coarse, fRef, &wRef)
				Prolong2D(coarse, fNew, &wNew)
				sameBits(t, "Prolong2D", fNew.Data, fRef.Data)
				sameWork(t, "Prolong2D", wNew, wRef)
			}
		}
	}
}

func TestMGCycle2DMatchesReference(t *testing.T) {
	r := rng.New(11)
	opts := []MGOptions2D{
		{Pre: 2, Post: 2, Gamma: 1, Omega: 1},
		{Pre: 0, Post: 1, Gamma: 2, Omega: 1.5},
		{Pre: 3, Post: 0, Gamma: 2, Omega: 1},
		{Pre: 1, Post: 1, Gamma: 1, Omega: 1.2},
		{Pre: 0, Post: 0, Gamma: 1, Omega: 0}, // defaults path
	}
	for _, n := range []int{3, 7, 15, 31} {
		for _, opt := range opts {
			f := randGrid2D(n, r)
			uRef, uNew := NewGrid2D(n), NewGrid2D(n)
			var wRef, wNew Work
			h := NewHierarchy2D(n)
			for c := 0; c < 4; c++ {
				ReferenceMGCycle2D(uRef, f, opt, &wRef)
				h.Cycle(uNew, f, opt, &wNew)
				sameBits(t, "MGCycle2D", uNew.Data, uRef.Data)
				sameWork(t, "MGCycle2D", wNew, wRef)
			}
		}
	}
}

var diffSizes3D = []int{1, 2, 3, 4, 5, 7, 8, 15}

func TestKernels3DMatchReference(t *testing.T) {
	r := rng.New(13)
	for _, n := range diffSizes3D {
		for _, omega := range []float64{0.8, 1.0, 1.6} {
			op := randOp3D(n, r)
			u := randGrid3D(n, r)
			f := randGrid3D(n, r)

			uRef, uNew := u.Clone(), u.Clone()
			var wRef, wNew Work
			for s := 0; s < 2; s++ {
				referenceSOR3D(op, uRef, f, omega, &wRef)
				SOR3D(op, uNew, f, omega, &wNew)
			}
			sameBits(t, "SOR3D", uNew.Data, uRef.Data)
			sameWork(t, "SOR3D", wNew, wRef)

			uRef, uNew = u.Clone(), u.Clone()
			wRef, wNew = Work{}, Work{}
			for s := 0; s < 2; s++ {
				referenceJacobi3D(op, uRef, f, omega, &wRef)
				Jacobi3D(op, uNew, f, omega, &wNew)
			}
			sameBits(t, "Jacobi3D", uNew.Data, uRef.Data)
			sameWork(t, "Jacobi3D", wNew, wRef)

			rRef, rNew := NewGrid3D(n), NewGrid3D(n)
			wRef, wNew = Work{}, Work{}
			referenceResidual3D(op, u, f, rRef, &wRef)
			Residual3D(op, u, f, rNew, &wNew)
			sameBits(t, "Residual3D", rNew.Data, rRef.Data)
			sameWork(t, "Residual3D", wNew, wRef)

			if n >= 3 {
				wRef, wNew = Work{}, Work{}
				cRef := referenceRestrict3D(u, &wRef)
				cNew := Restrict3D(u, &wNew)
				sameBits(t, "Restrict3D", cNew.Data, cRef.Data)
				sameWork(t, "Restrict3D", wNew, wRef)

				coarse := randGrid3D((n-1)/2, r)
				fRef, fNew := u.Clone(), u.Clone()
				wRef, wNew = Work{}, Work{}
				referenceProlong3D(coarse, fRef, &wRef)
				Prolong3D(coarse, fNew, &wNew)
				sameBits(t, "Prolong3D", fNew.Data, fRef.Data)
				sameWork(t, "Prolong3D", wNew, wRef)
			}
		}
	}
}

func TestMGCycle3DMatchesReference(t *testing.T) {
	r := rng.New(17)
	opts := []MGOptions3D{
		{Pre: 2, Post: 2, Gamma: 1, Omega: 1},
		{Pre: 3, Post: 3, Gamma: 2, Omega: 1}, // the exactSolution shape
		{Pre: 0, Post: 1, Gamma: 2, Omega: 1.4},
		{Pre: 0, Post: 0, Gamma: 0, Omega: 0}, // defaults path
	}
	for _, n := range []int{3, 7, 15} {
		for _, opt := range opts {
			op := randOp3D(n, r)
			f := randGrid3D(n, r)
			uRef, uNew := NewGrid3D(n), NewGrid3D(n)
			var wRef, wNew Work
			h := NewHierarchy3D(op)
			for c := 0; c < 3; c++ {
				ReferenceMGCycle3D(op, uRef, f, opt, &wRef)
				h.Cycle(uNew, f, opt, &wNew)
				sameBits(t, "MGCycle3D", uNew.Data, uRef.Data)
				sameWork(t, "MGCycle3D", wNew, wRef)
			}
		}
	}
}

// TestHierarchyReuseIsStateless proves a hierarchy carries no state between
// solves: interleaving two different problems through one hierarchy gives
// the same bits as fresh hierarchies.
func TestHierarchyReuseIsStateless(t *testing.T) {
	r := rng.New(19)
	n := 15
	opt := MGOptions2D{Pre: 2, Post: 1, Gamma: 2, Omega: 1}
	fA, fB := randGrid2D(n, r), randGrid2D(n, r)

	shared := NewHierarchy2D(n)
	var w Work
	uA1, uB, uA2 := NewGrid2D(n), NewGrid2D(n), NewGrid2D(n)
	shared.Cycle(uA1, fA, opt, &w)
	shared.Cycle(uB, fB, opt, &w)
	shared.Cycle(uA2, fA, opt, &w)

	fresh := NewGrid2D(n)
	NewHierarchy2D(n).Cycle(fresh, fA, opt, &w)
	sameBits(t, "hierarchy reuse (first)", uA1.Data, fresh.Data)
	sameBits(t, "hierarchy reuse (after other problem)", uA2.Data, fresh.Data)

	op := randOp3D(n, r)
	f3A, f3B := randGrid3D(n, r), randGrid3D(n, r)
	opt3 := MGOptions3D{Pre: 1, Post: 2, Gamma: 2, Omega: 1}
	h3 := NewHierarchy3DFromChain(NewOpChain3D(op))
	u3A1, u3B, u3A2 := NewGrid3D(n), NewGrid3D(n), NewGrid3D(n)
	h3.Cycle(u3A1, f3A, opt3, &w)
	h3.Cycle(u3B, f3B, opt3, &w)
	h3.Cycle(u3A2, f3A, opt3, &w)
	fresh3 := NewGrid3D(n)
	NewHierarchy3D(op).Cycle(fresh3, f3A, opt3, &w)
	sameBits(t, "hierarchy3D reuse (first)", u3A1.Data, fresh3.Data)
	sameBits(t, "hierarchy3D reuse (after other problem)", u3A2.Data, fresh3.Data)
}

// TestHierarchyJacobiMatchesAllocating proves the scratch-buffer Jacobi
// path equals the allocating public function.
func TestHierarchyJacobiMatchesAllocating(t *testing.T) {
	r := rng.New(23)
	n := 15
	f := randGrid2D(n, r)
	u1 := randGrid2D(n, r)
	uAlloc, uWS := u1.Clone(), u1.Clone()
	h := NewHierarchy2D(n)
	var w1, w2 Work
	for s := 0; s < 5; s++ {
		Jacobi2D(uAlloc, f, 0.8, &w1)
		h.Jacobi(uWS, f, 0.8, &w2)
	}
	sameBits(t, "Hierarchy2D.Jacobi", uWS.Data, uAlloc.Data)
	sameWork(t, "Hierarchy2D.Jacobi", w2, w1)

	op := randOp3D(7, r)
	f3 := randGrid3D(7, r)
	u3 := randGrid3D(7, r)
	uAlloc3, uWS3 := u3.Clone(), u3.Clone()
	h3 := NewHierarchy3D(op)
	w1, w2 = Work{}, Work{}
	for s := 0; s < 5; s++ {
		Jacobi3D(op, uAlloc3, f3, 0.8, &w1)
		h3.Jacobi(uWS3, f3, 0.8, &w2)
		SOR3D(op, uAlloc3, f3, 1.2, &w1)
		h3.SOR(uWS3, f3, 1.2, &w2)
	}
	sameBits(t, "Hierarchy3D.Jacobi/SOR", uWS3.Data, uAlloc3.Data)
	sameWork(t, "Hierarchy3D.Jacobi/SOR", w2, w1)
}

// TestOpChainMatchesPerCycleCoarsening proves the precomputed operator
// chain equals repeated on-the-fly coarsening.
func TestOpChainMatchesPerCycleCoarsening(t *testing.T) {
	r := rng.New(29)
	op := randOp3D(15, r)
	chain := NewOpChain3D(op)
	cur := op
	for l, got := range chain.ops {
		if l > 0 {
			cur = cur.coarsen()
		}
		sameBits(t, "OpChain3D coefficients", got.A.Data, cur.A.Data)
		if got.C != cur.C {
			t.Fatalf("chain level %d: C %v vs %v", l, got.C, cur.C)
		}
	}
}
