package pde

import "fmt"

// This file is the multigrid workspace engine. A Hierarchy owns the full
// restriction ladder of a problem size — residual scratch, coarse
// right-hand sides and coarse corrections at every level, plus (in 3-D)
// the coarsened operator chain — allocated once, so repeated cycles run
// allocation-free. Cycle results are bit-identical to the Reference
// implementations in reference.go: the hierarchy only changes WHERE the
// scratch lives, never the arithmetic performed on it.

// gridLadder returns the level sizes for a fine grid of n points:
// n, (n-1)/2, … down to the first size ≤ 3 (the coarsest level, solved by
// smoothing alone).
func gridLadder(n int) []int {
	sizes := []int{n}
	for sz := n; sz > 3; {
		sz = (sz - 1) / 2
		sizes = append(sizes, sz)
	}
	return sizes
}

// Hierarchy2D is the per-problem-size multigrid workspace for -Δu = f:
// the residual/correction ladder MGCycle2D used to allocate once per cycle
// per level, hoisted to one allocation per hierarchy. A hierarchy is not
// safe for concurrent use; callers that solve one problem from several
// goroutines pool hierarchies instead of sharing one.
type Hierarchy2D struct {
	sizes []int
	res   []*Grid2D // res[l]: residual scratch at level l
	cu    []*Grid2D // cu[l], l ≥ 1: coarse correction at level l
	cf    []*Grid2D // cf[l], l ≥ 1: restricted right-hand side at level l
	next  []float64 // finest-size Jacobi scratch, allocated on first use
}

// NewHierarchy2D allocates the restriction ladder for an n×n fine grid.
func NewHierarchy2D(n int) *Hierarchy2D {
	sizes := gridLadder(n)
	h := &Hierarchy2D{sizes: sizes}
	h.res = make([]*Grid2D, len(sizes))
	h.cu = make([]*Grid2D, len(sizes))
	h.cf = make([]*Grid2D, len(sizes))
	for l, sz := range sizes {
		h.res[l] = NewGrid2D(sz)
		if l > 0 {
			h.cu[l] = NewGrid2D(sz)
			h.cf[l] = NewGrid2D(sz)
		}
	}
	return h
}

// N returns the fine-grid size the hierarchy was built for.
func (h *Hierarchy2D) N() int { return h.sizes[0] }

// Cycle performs one multigrid cycle on -Δu = f, bit-identical to
// ReferenceMGCycle2D. u and f must be h.N()×h.N() grids.
func (h *Hierarchy2D) Cycle(u, f *Grid2D, opt MGOptions2D, w *Work) {
	if u.N != h.sizes[0] {
		panic(fmt.Sprintf("pde: Hierarchy2D built for N=%d used with N=%d", h.sizes[0], u.N))
	}
	if opt.Gamma < 1 {
		opt.Gamma = 1
	}
	if opt.Omega <= 0 {
		opt.Omega = 1
	}
	h.cycle(0, u, f, opt, w)
}

func (h *Hierarchy2D) cycle(l int, u, f *Grid2D, opt MGOptions2D, w *Work) {
	n := u.N
	if n <= 3 {
		// Coarsest level: smooth hard (tiny cost).
		for s := 0; s < 8; s++ {
			SOR2D(u, f, 1.0, w)
		}
		return
	}
	for s := 0; s < opt.Pre; s++ {
		SOR2D(u, f, opt.Omega, w)
	}
	r := h.res[l]
	Residual2D(u, f, r, w)
	cu, cf := h.cu[l+1], h.cf[l+1]
	Restrict2DInto(r, cf, w)
	zeroFloats(cu.Data)
	for g := 0; g < opt.Gamma; g++ {
		h.cycle(l+1, cu, cf, opt, w)
	}
	Prolong2D(cu, u, w)
	for s := 0; s < opt.Post; s++ {
		SOR2D(u, f, opt.Omega, w)
	}
}

// Jacobi performs one weighted Jacobi sweep on the fine grid using the
// hierarchy's scratch buffer instead of allocating one per sweep.
func (h *Hierarchy2D) Jacobi(u, f *Grid2D, omega float64, w *Work) {
	if u.N != h.sizes[0] {
		panic(fmt.Sprintf("pde: Hierarchy2D built for N=%d used with N=%d", h.sizes[0], u.N))
	}
	if h.next == nil {
		h.next = make([]float64, u.N*u.N)
	}
	jacobi2D(u, f, omega, h.next, w)
}

// OpChain3D is the coarsened-operator ladder of one Helmholtz problem:
// ops[0] is the fine operator and ops[l+1] = ops[l].coarsen(). The chain
// is immutable once built, so it is computed once per problem and shared
// by every hierarchy (and every goroutine) solving that problem —
// MGCycle3D used to re-derive it on every cycle at every level.
type OpChain3D struct {
	ops []*Helmholtz3D
}

// NewOpChain3D coarsens op down the same ladder gridLadder yields.
func NewOpChain3D(op *Helmholtz3D) *OpChain3D {
	c := &OpChain3D{ops: []*Helmholtz3D{op}}
	for last := op; last.A.N > 3; {
		last = last.coarsen()
		c.ops = append(c.ops, last)
	}
	return c
}

// N returns the fine-grid size of the chain.
func (c *OpChain3D) N() int { return c.ops[0].A.N }

// Hierarchy3D is the per-problem multigrid workspace for the Helmholtz
// operator: the shared coarsened operator chain plus this hierarchy's own
// residual/correction ladder. Not safe for concurrent use (the chain is;
// pool hierarchies around one chain for concurrent solves).
type Hierarchy3D struct {
	chain *OpChain3D
	sizes []int
	res   []*Grid3D
	cu    []*Grid3D
	cf    []*Grid3D
	next  []float64
}

// NewHierarchy3D builds the operator chain for op and allocates a
// hierarchy over it.
func NewHierarchy3D(op *Helmholtz3D) *Hierarchy3D {
	return NewHierarchy3DFromChain(NewOpChain3D(op))
}

// NewHierarchy3DFromChain allocates a fresh scratch ladder over an
// existing (shareable) operator chain.
func NewHierarchy3DFromChain(chain *OpChain3D) *Hierarchy3D {
	sizes := gridLadder(chain.N())
	h := &Hierarchy3D{chain: chain, sizes: sizes}
	h.res = make([]*Grid3D, len(sizes))
	h.cu = make([]*Grid3D, len(sizes))
	h.cf = make([]*Grid3D, len(sizes))
	for l, sz := range sizes {
		h.res[l] = NewGrid3D(sz)
		if l > 0 {
			h.cu[l] = NewGrid3D(sz)
			h.cf[l] = NewGrid3D(sz)
		}
	}
	return h
}

// N returns the fine-grid size the hierarchy was built for.
func (h *Hierarchy3D) N() int { return h.sizes[0] }

// Cycle performs one multigrid cycle on the Helmholtz problem,
// bit-identical to ReferenceMGCycle3D on the chain's fine operator.
func (h *Hierarchy3D) Cycle(u, f *Grid3D, opt MGOptions3D, w *Work) {
	if u.N != h.sizes[0] {
		panic(fmt.Sprintf("pde: Hierarchy3D built for N=%d used with N=%d", h.sizes[0], u.N))
	}
	if opt.Gamma < 1 {
		opt.Gamma = 1
	}
	if opt.Omega <= 0 {
		opt.Omega = 1
	}
	h.cycle(0, u, f, opt, w)
}

func (h *Hierarchy3D) cycle(l int, u, f *Grid3D, opt MGOptions3D, w *Work) {
	op := h.chain.ops[l]
	n := u.N
	if n <= 3 {
		for s := 0; s < 8; s++ {
			SOR3D(op, u, f, 1.0, w)
		}
		return
	}
	for s := 0; s < opt.Pre; s++ {
		SOR3D(op, u, f, opt.Omega, w)
	}
	r := h.res[l]
	Residual3D(op, u, f, r, w)
	cu, cf := h.cu[l+1], h.cf[l+1]
	Restrict3DInto(r, cf, w)
	zeroFloats(cu.Data)
	for g := 0; g < opt.Gamma; g++ {
		h.cycle(l+1, cu, cf, opt, w)
	}
	Prolong3D(cu, u, w)
	for s := 0; s < opt.Post; s++ {
		SOR3D(op, u, f, opt.Omega, w)
	}
}

// CoarseCorrect performs the coarse-grid correction phase of one fine-
// level cycle — residual, restrict, Gamma recursive coarse cycles,
// prolong — without the fine-level pre/post smooths. A full cycle on a
// fine grid larger than the coarsest level decomposes bitwise as
//
//	Pre × SOR(omega);  CoarseCorrect;  Post × SOR(omega)
//
// which is what lets callers checkpoint and share the intermediate
// states (the phases run the same arithmetic Cycle runs, in the same
// order, on the same scratch). Requires N() > 3: on a coarsest-size fine
// grid Cycle is pure smoothing and has no correction phase to split out.
func (h *Hierarchy3D) CoarseCorrect(u, f *Grid3D, opt MGOptions3D, w *Work) {
	if u.N != h.sizes[0] {
		panic(fmt.Sprintf("pde: Hierarchy3D built for N=%d used with N=%d", h.sizes[0], u.N))
	}
	if u.N <= 3 {
		panic("pde: CoarseCorrect on a coarsest-level grid (Cycle is pure smoothing there)")
	}
	if opt.Gamma < 1 {
		opt.Gamma = 1
	}
	if opt.Omega <= 0 {
		opt.Omega = 1
	}
	r := h.res[0]
	Residual3D(h.chain.ops[0], u, f, r, w)
	cu, cf := h.cu[1], h.cf[1]
	Restrict3DInto(r, cf, w)
	zeroFloats(cu.Data)
	for g := 0; g < opt.Gamma; g++ {
		h.cycle(1, cu, cf, opt, w)
	}
	Prolong3D(cu, u, w)
}

// Jacobi performs one weighted Jacobi sweep with the chain's fine operator
// using the hierarchy's scratch buffer.
func (h *Hierarchy3D) Jacobi(u, f *Grid3D, omega float64, w *Work) {
	if u.N != h.sizes[0] {
		panic(fmt.Sprintf("pde: Hierarchy3D built for N=%d used with N=%d", h.sizes[0], u.N))
	}
	if h.next == nil {
		h.next = make([]float64, u.N*u.N*u.N)
	}
	jacobi3D(h.chain.ops[0], u, f, omega, h.next, w)
}

// SOR performs one SOR sweep with the chain's fine operator (no scratch
// needed; provided so callers can drive every smoother through one
// hierarchy handle).
func (h *Hierarchy3D) SOR(u, f *Grid3D, omega float64, w *Work) {
	SOR3D(h.chain.ops[0], u, f, omega, w)
}
