package pde

import (
	"math"
	"sync"
	"testing"
)

// TestSineBasisCacheBitIdentical pins the satellite invariant: the cached
// basis holds exactly the floats a fresh computation produces, and a
// direct solve is bit-identical whether its basis came from the cache or
// not (the first call populates, the second hits).
func TestSineBasisCacheBitIdentical(t *testing.T) {
	for _, n := range []int{7, 15, 31} {
		h := 1.0 / float64(n+1)
		b := sineBasisFor(n, h)
		s := computeSineMatrix(n)
		lam := computeSineEigenvalues(n, h)
		for j := range s {
			for k := range s[j] {
				if math.Float64bits(b.s[j][k]) != math.Float64bits(s[j][k]) {
					t.Fatalf("n=%d: cached S[%d][%d] differs", n, j, k)
				}
			}
		}
		for j := range lam {
			if math.Float64bits(b.lam[j]) != math.Float64bits(lam[j]) {
				t.Fatalf("n=%d: cached lambda[%d] differs", n, j)
			}
		}
		if again := sineBasisFor(n, h); again != b {
			t.Fatalf("n=%d: second lookup did not hit the cache", n)
		}
	}

	// Solve twice at one size: first call may populate, second must hit,
	// and the grids (plus charged flops) must match exactly.
	n := 15
	f := NewGrid2D(n)
	for i := range f.Data {
		f.Data[i] = math.Sin(float64(3*i)) * 0.7
	}
	var w1, w2 Work
	u1 := DirectPoisson2D(f, &w1)
	u2 := DirectPoisson2D(f, &w2)
	for i := range u1.Data {
		if math.Float64bits(u1.Data[i]) != math.Float64bits(u2.Data[i]) {
			t.Fatalf("direct solve diverged at %d across cache hit", i)
		}
	}
	if w1 != w2 {
		t.Fatalf("work accounting diverged: %+v vs %+v", w1, w2)
	}
}

// TestSineBasisCacheBounded sweeps more sizes than the cache holds and
// checks the bound holds while results stay correct.
func TestSineBasisCacheBounded(t *testing.T) {
	for n := 3; n < 3+2*sineCacheCap; n++ {
		sineBasisFor(n, 1.0/float64(n+1))
	}
	sineCache.Lock()
	entries, fifo := len(sineCache.entries), len(sineCache.fifo)
	sineCache.Unlock()
	if entries > sineCacheCap || fifo > sineCacheCap {
		t.Fatalf("cache grew past its bound: %d entries, %d fifo", entries, fifo)
	}
	// An evicted size recomputes to the same bits.
	n := 3
	h := 1.0 / float64(n+1)
	b := sineBasisFor(n, h)
	s := computeSineMatrix(n)
	if math.Float64bits(b.s[0][0]) != math.Float64bits(s[0][0]) {
		t.Fatal("recomputed basis differs after eviction")
	}
}

// TestSineBasisCacheConcurrent hammers the cache from many goroutines
// under mixed sizes; the race detector does the real work here.
func TestSineBasisCacheConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := 3 + (g+i)%12
				b := sineBasisFor(n, 1.0/float64(n+1))
				if len(b.s) != n || len(b.lam) != n {
					t.Errorf("basis for n=%d has wrong shape", n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
