package pde

import (
	"math"
	"testing"

	"inputtune/internal/rng"
)

// Additional property tests for the multigrid transfer operators and
// smoother stability.

func TestRestrict2DPreservesConstantsApproximately(t *testing.T) {
	// Full weighting of an interior-constant field returns that constant
	// away from the boundary (where the zero halo bleeds in).
	n := 31
	g := NewGrid2D(n)
	for i := range g.Data {
		g.Data[i] = 7
	}
	var w Work
	c := Restrict2D(g, &w)
	mid := c.N / 2
	if v := c.At(mid, mid); math.Abs(v-7) > 1e-12 {
		t.Fatalf("interior restriction of constant = %v", v)
	}
}

func TestProlong2DLinearity(t *testing.T) {
	// Prolongation is linear: P(a+b) = P(a) + P(b).
	nc, nf := 7, 15
	r := rng.New(1)
	a, b := NewGrid2D(nc), NewGrid2D(nc)
	for i := range a.Data {
		a.Data[i] = r.Norm(0, 1)
		b.Data[i] = r.Norm(0, 1)
	}
	sum := NewGrid2D(nc)
	for i := range sum.Data {
		sum.Data[i] = a.Data[i] + b.Data[i]
	}
	var w Work
	pa, pb, ps := NewGrid2D(nf), NewGrid2D(nf), NewGrid2D(nf)
	Prolong2D(a, pa, &w)
	Prolong2D(b, pb, &w)
	Prolong2D(sum, ps, &w)
	for i := range ps.Data {
		if math.Abs(ps.Data[i]-(pa.Data[i]+pb.Data[i])) > 1e-12 {
			t.Fatal("prolongation not linear")
		}
	}
}

func TestRestrict3DProlong3DRoundTrip(t *testing.T) {
	n := 15
	g := NewGrid3D(n)
	h := 1.0 / float64(n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				g.Set(i, j, k, math.Sin(math.Pi*float64(i+1)*h)*
					math.Sin(math.Pi*float64(j+1)*h)*math.Sin(math.Pi*float64(k+1)*h))
			}
		}
	}
	var w Work
	coarse := Restrict3D(g, &w)
	if coarse.N != 7 {
		t.Fatalf("coarse N = %d", coarse.N)
	}
	back := NewGrid3D(n)
	Prolong3D(coarse, back, &w)
	if err := back.SubRMS(g); err > 0.08 {
		t.Fatalf("3D smooth round-trip error %v", err)
	}
}

func TestSORStableForValidOmega(t *testing.T) {
	// SOR must not diverge for omega in (0, 2) on the model problem.
	n := 15
	f, exact := manufactured2D(n, 2, 2)
	for _, omega := range []float64{0.5, 1.0, 1.5, 1.9} {
		u := NewGrid2D(n)
		var w Work
		for it := 0; it < 100; it++ {
			SOR2D(u, f, omega, &w)
		}
		if err := u.SubRMS(exact); math.IsNaN(err) || err > exact.RMS()*10 {
			t.Fatalf("omega=%v diverged (err %v)", omega, err)
		}
	}
}

func TestHelmholtzCTermStabilises(t *testing.T) {
	// Larger c makes the operator more diagonally dominant: Jacobi should
	// converge at least as fast.
	n := 7
	opSmall, f, _ := manufactured3D(n, 0.1)
	opBig := constOp(n, 50)
	uS, uB := NewGrid3D(n), NewGrid3D(n)
	var w Work
	for it := 0; it < 40; it++ {
		Jacobi3D(opSmall, uS, f, 0.8, &w)
		Jacobi3D(opBig, uB, f, 0.8, &w)
	}
	rS, rB := NewGrid3D(n), NewGrid3D(n)
	Residual3D(opSmall, uS, f, rS, &w)
	Residual3D(opBig, uB, f, rB, &w)
	if rB.RMS() > rS.RMS()*1.5 {
		t.Fatalf("large-c residual %v much worse than small-c %v", rB.RMS(), rS.RMS())
	}
}

func TestWorkAccumulates(t *testing.T) {
	n := 15
	f, _ := manufactured2D(n, 1, 1)
	u := NewGrid2D(n)
	var w Work
	SOR2D(u, f, 1.0, &w)
	one := w.Flops
	SOR2D(u, f, 1.0, &w)
	if w.Flops != 2*one {
		t.Fatalf("work not additive: %d then %d", one, w.Flops)
	}
	if one != 8*n*n {
		t.Fatalf("SOR sweep charged %d flops, want %d", one, 8*n*n)
	}
}

func TestDirectSolverSizesMatchTheory(t *testing.T) {
	// Direct 2D is O(N^3): doubling N should ~8x the flops.
	f15, _ := manufactured2D(15, 1, 1)
	f31, _ := manufactured2D(31, 1, 1)
	var w15, w31 Work
	DirectPoisson2D(f15, &w15)
	DirectPoisson2D(f31, &w31)
	ratio := float64(w31.Flops) / float64(w15.Flops)
	if ratio < 6 || ratio > 12 {
		t.Fatalf("direct scaling ratio %v, want ~8-9", ratio)
	}
}
