// Package pde is the numerical substrate of the Poisson 2D and Helmholtz
// 3D benchmarks: finite-difference grids with Dirichlet zero boundaries,
// pointwise smoothers (weighted Jacobi, Gauss-Seidel, SOR), geometric
// multigrid with tunable cycle shape, and sine-transform direct solvers.
// All solvers report their flop work through a Work tally so the
// benchmarks can charge a cost.Meter in one batch per run.
//
// # Kernel layers
//
// Each stencil operation exists in two forms:
//
//   - The production kernels (Residual2D/3D, Jacobi2D/3D, SOR2D/3D,
//     Restrict2DInto/3DInto, Prolong2D/3D) are boundary-split: interior
//     cells run over raw slices with no bounds logic, boundary cells take
//     a guarded per-cell path, and non-multigrid grid shapes fall back to
//     the fully guarded loop.
//   - The reference kernels (reference.go) are the original At-indexed,
//     allocate-per-call implementations — the simplest statement of the
//     numerics, retained as the differential-testing baseline.
//
// The two layers are bit-identical: the production kernels preserve the
// reference floating-point expression shapes and operand order exactly,
// and differential_test.go enforces equality of every grid value (by bit
// pattern) and every op count on randomized inputs.
//
// # Multigrid workspace engine
//
// Hierarchy2D and Hierarchy3D (hierarchy.go) own a problem's full
// restriction ladder — residual scratch, coarse right-hand sides and
// corrections at every level, plus the coarsened Helmholtz operator chain
// (OpChain3D) — allocated once per problem instead of once per cycle, so
// Cycle is an allocation-free inner loop. ReferenceMGCycle2D/3D retain
// the original allocate-per-cycle recursion as the baseline. OpChain3D is
// immutable and shareable across goroutines; hierarchies themselves are
// single-threaded and meant to be pooled.
package pde
