package pde

// Grid2D holds an N×N interior grid (Dirichlet zero boundary) for
// -Δu = f on the unit square, h = 1/(N+1).
type Grid2D struct {
	N    int
	Data []float64 // row-major N×N
}

// NewGrid2D returns a zero grid. Multigrid requires N = 2^k - 1.
func NewGrid2D(n int) *Grid2D {
	return &Grid2D{N: n, Data: make([]float64, n*n)}
}

// At returns u(i, j) honouring the zero boundary for out-of-range indices.
func (g *Grid2D) At(i, j int) float64 {
	if i < 0 || j < 0 || i >= g.N || j >= g.N {
		return 0
	}
	return g.Data[i*g.N+j]
}

// Set assigns u(i, j).
func (g *Grid2D) Set(i, j int, v float64) { g.Data[i*g.N+j] = v }

// Clone deep-copies the grid.
func (g *Grid2D) Clone() *Grid2D {
	out := NewGrid2D(g.N)
	copy(out.Data, g.Data)
	return out
}

// RMS returns the root-mean-square of the grid values.
func (g *Grid2D) RMS() float64 { return rmsOf(g.Data) }

// SubRMS returns RMS(g - o).
func (g *Grid2D) SubRMS(o *Grid2D) float64 { return subRMSOf(g.Data, o.Data) }

// h returns the mesh width.
func (g *Grid2D) h() float64 { return 1.0 / float64(g.N+1) }

// Work tallies the floating-point work a solver performed.
type Work struct {
	Flops int
}

// The 2-D stencil kernels below are boundary-split: the interior of each
// row runs over raw slices with no At bounds logic, and only the outermost
// rows/columns take the guarded per-cell path. Every kernel preserves the
// reference implementation's floating-point expression shapes and operand
// order exactly, so results are bit-identical to reference.go
// (differential-test enforced), and charges the same per-sweep flop count.

// residualCell2D is the guarded per-cell residual for boundary cells.
func residualCell2D(ud, fd, rd []float64, n, i, j int, inv float64) {
	idx := i*n + j
	var up, down, left, right float64
	if i > 0 {
		up = ud[idx-n]
	}
	if i < n-1 {
		down = ud[idx+n]
	}
	if j > 0 {
		left = ud[idx-1]
	}
	if j < n-1 {
		right = ud[idx+1]
	}
	lap := (4*ud[idx] - up - down - left - right) * inv
	rd[idx] = fd[idx] - lap
}

// Residual2D computes r = f + Δu (the residual of -Δu = f) into r.
func Residual2D(u, f, r *Grid2D, w *Work) {
	n := u.N
	inv := 1.0 / (u.h() * u.h())
	ud, fd, rd := u.Data, f.Data, r.Data
	for i := 0; i < n; i++ {
		if i == 0 || i == n-1 {
			for j := 0; j < n; j++ {
				residualCell2D(ud, fd, rd, n, i, j, inv)
			}
			continue
		}
		residualCell2D(ud, fd, rd, n, i, 0, inv)
		row := i * n
		for idx := row + 1; idx < row+n-1; idx++ {
			lap := (4*ud[idx] - ud[idx-n] - ud[idx+n] - ud[idx-1] - ud[idx+1]) * inv
			rd[idx] = fd[idx] - lap
		}
		residualCell2D(ud, fd, rd, n, i, n-1, inv)
	}
	w.Flops += 7 * n * n
}

// jacobiCell2D is the guarded per-cell Jacobi update for boundary cells.
func jacobiCell2D(ud, fd, next []float64, n, i, j int, h2, omega float64) {
	idx := i*n + j
	var up, down, left, right float64
	if i > 0 {
		up = ud[idx-n]
	}
	if i < n-1 {
		down = ud[idx+n]
	}
	if j > 0 {
		left = ud[idx-1]
	}
	if j < n-1 {
		right = ud[idx+1]
	}
	gs := (up + down + left + right + h2*fd[idx]) / 4
	next[idx] = ud[idx] + omega*(gs-ud[idx])
}

// Jacobi2D performs one weighted Jacobi sweep (weight omega) on -Δu = f.
func Jacobi2D(u, f *Grid2D, omega float64, w *Work) {
	jacobi2D(u, f, omega, make([]float64, u.N*u.N), w)
}

// jacobi2D is Jacobi2D over a caller-provided scratch buffer (len n²), the
// allocation-free path Hierarchy2D.Jacobi uses.
func jacobi2D(u, f *Grid2D, omega float64, next []float64, w *Work) {
	n := u.N
	h2 := u.h() * u.h()
	ud, fd := u.Data, f.Data
	for i := 0; i < n; i++ {
		if i == 0 || i == n-1 {
			for j := 0; j < n; j++ {
				jacobiCell2D(ud, fd, next, n, i, j, h2, omega)
			}
			continue
		}
		jacobiCell2D(ud, fd, next, n, i, 0, h2, omega)
		row := i * n
		for idx := row + 1; idx < row+n-1; idx++ {
			gs := (ud[idx-n] + ud[idx+n] + ud[idx-1] + ud[idx+1] + h2*fd[idx]) / 4
			next[idx] = ud[idx] + omega*(gs-ud[idx])
		}
		jacobiCell2D(ud, fd, next, n, i, n-1, h2, omega)
	}
	copy(ud, next[:n*n])
	w.Flops += 8 * n * n
}

// sorCell2D is the guarded per-cell SOR update for boundary cells.
func sorCell2D(ud, fd []float64, n, i, j int, h2, omega float64) {
	idx := i*n + j
	var up, down, left, right float64
	if i > 0 {
		up = ud[idx-n]
	}
	if i < n-1 {
		down = ud[idx+n]
	}
	if j > 0 {
		left = ud[idx-1]
	}
	if j < n-1 {
		right = ud[idx+1]
	}
	gs := (up + down + left + right + h2*fd[idx]) / 4
	ud[idx] = ud[idx] + omega*(gs-ud[idx])
}

// SOR2D performs one successive-over-relaxation sweep (omega = 1 gives
// Gauss-Seidel) on -Δu = f.
func SOR2D(u, f *Grid2D, omega float64, w *Work) {
	n := u.N
	h2 := u.h() * u.h()
	ud, fd := u.Data, f.Data
	for i := 0; i < n; i++ {
		if i == 0 || i == n-1 {
			for j := 0; j < n; j++ {
				sorCell2D(ud, fd, n, i, j, h2, omega)
			}
			continue
		}
		sorCell2D(ud, fd, n, i, 0, h2, omega)
		row := i * n
		for idx := row + 1; idx < row+n-1; idx++ {
			gs := (ud[idx-n] + ud[idx+n] + ud[idx-1] + ud[idx+1] + h2*fd[idx]) / 4
			ud[idx] = ud[idx] + omega*(gs-ud[idx])
		}
		sorCell2D(ud, fd, n, i, n-1, h2, omega)
	}
	w.Flops += 8 * n * n
}

// Restrict2D full-weights the residual to the (n-1)/2 coarse grid.
func Restrict2D(fine *Grid2D, w *Work) *Grid2D {
	coarse := NewGrid2D((fine.N - 1) / 2)
	Restrict2DInto(fine, coarse, w)
	return coarse
}

// Restrict2DInto full-weights fine into the caller-provided coarse grid,
// the allocation-free path the multigrid hierarchy uses. When fine.N is
// odd (the multigrid invariant N = 2·coarse.N + 1) every one of the nine
// stencil taps is in range, so the whole restriction runs without bounds
// logic; other shapes take the guarded path.
func Restrict2DInto(fine, coarse *Grid2D, w *Work) {
	nc := coarse.N
	nf := fine.N
	if nf != 2*nc+1 {
		for i := 0; i < nc; i++ {
			for j := 0; j < nc; j++ {
				fi, fj := 2*i+1, 2*j+1
				v := 0.25*fine.At(fi, fj) +
					0.125*(fine.At(fi-1, fj)+fine.At(fi+1, fj)+fine.At(fi, fj-1)+fine.At(fi, fj+1)) +
					0.0625*(fine.At(fi-1, fj-1)+fine.At(fi-1, fj+1)+fine.At(fi+1, fj-1)+fine.At(fi+1, fj+1))
				coarse.Set(i, j, v)
			}
		}
		w.Flops += 12 * nc * nc
		return
	}
	fd, cd := fine.Data, coarse.Data
	for i := 0; i < nc; i++ {
		crow := i * nc
		c := (2*i+1)*nf + 1 // fine index of (2i+1, 2j+1) at j = 0
		for j := 0; j < nc; j++ {
			v := 0.25*fd[c] +
				0.125*(fd[c-nf]+fd[c+nf]+fd[c-1]+fd[c+1]) +
				0.0625*(fd[c-nf-1]+fd[c-nf+1]+fd[c+nf-1]+fd[c+nf+1])
			cd[crow+j] = v
			c += 2
		}
	}
	w.Flops += 12 * nc * nc
}

// prolongCell2D evaluates the bilinear coarse-grid interpolant at fine
// point (i, j) through the bounds-checked accessor — the guarded path for
// boundary cells and non-multigrid shapes.
func prolongCell2D(coarse *Grid2D, i, j int) float64 {
	// Coarse coordinates (may be half-integral).
	ci, cj := (i-1)/2, (j-1)/2
	var v float64
	switch {
	case i%2 == 1 && j%2 == 1:
		v = coarse.At(ci, cj)
	case i%2 == 1:
		v = 0.5 * (coarse.At(ci, (j-2)/2+0) + coarse.At(ci, j/2))
	case j%2 == 1:
		v = 0.5 * (coarse.At((i-2)/2+0, cj) + coarse.At(i/2, cj))
	default:
		v = 0.25 * (coarse.At((i-2)/2, (j-2)/2) + coarse.At((i-2)/2, j/2) +
			coarse.At(i/2, (j-2)/2) + coarse.At(i/2, j/2))
	}
	return v
}

// Prolong2D bilinearly interpolates the coarse correction onto fine,
// adding in place.
func Prolong2D(coarse, fine *Grid2D, w *Work) {
	nf, nc := fine.N, coarse.N
	if nf != 2*nc+1 || nf < 3 {
		for i := 0; i < nf; i++ {
			for j := 0; j < nf; j++ {
				fine.Set(i, j, fine.At(i, j)+prolongCell2D(coarse, i, j))
			}
		}
		w.Flops += 4 * nf * nf
		return
	}
	fd, cd := fine.Data, coarse.Data
	for i := 0; i < nf; i++ {
		if i == 0 || i == nf-1 {
			row := i * nf
			for j := 0; j < nf; j++ {
				fd[row+j] += prolongCell2D(coarse, i, j)
			}
			continue
		}
		row := i * nf
		fd[row] += prolongCell2D(coarse, i, 0)
		if i%2 == 1 {
			base := ((i - 1) / 2) * nc
			for j := 1; j < nf-1; j++ {
				var v float64
				if j%2 == 1 {
					v = cd[base+(j-1)/2]
				} else {
					v = 0.5 * (cd[base+j/2-1] + cd[base+j/2])
				}
				fd[row+j] += v
			}
		} else {
			b0 := (i/2 - 1) * nc
			b1 := (i / 2) * nc
			for j := 1; j < nf-1; j++ {
				var v float64
				if j%2 == 1 {
					cj := (j - 1) / 2
					v = 0.5 * (cd[b0+cj] + cd[b1+cj])
				} else {
					v = 0.25 * (cd[b0+j/2-1] + cd[b0+j/2] + cd[b1+j/2-1] + cd[b1+j/2])
				}
				fd[row+j] += v
			}
		}
		fd[row+nf-1] += prolongCell2D(coarse, i, nf-1)
	}
	w.Flops += 4 * nf * nf
}

// MGOptions2D configures a multigrid cycle.
type MGOptions2D struct {
	Pre, Post int     // smoothing sweeps before/after coarse correction
	Gamma     int     // 1 = V-cycle, 2 = W-cycle
	Omega     float64 // smoother relaxation (SOR)
}

// MGCycle2D performs one multigrid cycle on -Δu = f. It builds a
// throwaway Hierarchy2D per call; loops over many cycles should construct
// the hierarchy once and call its Cycle method instead.
func MGCycle2D(u, f *Grid2D, opt MGOptions2D, w *Work) {
	NewHierarchy2D(u.N).Cycle(u, f, opt, w)
}

// DirectPoisson2D solves -Δu = f exactly via the 2-D discrete sine
// transform (the matrix decomposition method): O(N³) with dense 1-D
// transforms, no FFT needed at benchmark sizes. The sine basis and
// eigenvalues come from the per-size cache (util.go), so repeated solves
// at one problem size pay for them once.
func DirectPoisson2D(f *Grid2D, w *Work) *Grid2D {
	n := f.N
	h := f.h()
	basis := sineBasisFor(n, h)
	s, lam := basis.s, basis.lam
	// F̂ = S f S (two dense multiplications).
	fh := dstApply2D(s, f.Data, n)
	w.Flops += 4 * n * n * n
	// Scale by 1/(λi + λj) and the DST normalisation (2/(N+1))².
	norm := 4.0 / (float64(n+1) * float64(n+1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			fh[i*n+j] *= norm / (lam[i] + lam[j])
		}
	}
	w.Flops += 2 * n * n
	// u = S û S.
	out := NewGrid2D(n)
	out.Data = dstApply2D(s, fh, n)
	w.Flops += 4 * n * n * n
	return out
}

// dstApply2D computes S · X · S for the symmetric sine matrix S.
func dstApply2D(s [][]float64, x []float64, n int) []float64 {
	tmp := make([]float64, n*n)
	// tmp = S X
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += s[i][k] * x[k*n+j]
			}
			tmp[i*n+j] = sum
		}
	}
	// out = tmp S
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += tmp[i*n+k] * s[k][j]
			}
			out[i*n+j] = sum
		}
	}
	return out
}
