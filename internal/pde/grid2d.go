// Package pde implements the numerical substrate of the Poisson 2D and
// Helmholtz 3D benchmarks: finite-difference grids with Dirichlet
// boundaries, pointwise smoothers (Jacobi, Gauss-Seidel, SOR), geometric
// multigrid with tunable cycle shape, and sine-transform direct solvers.
// All solvers report their flop work so the benchmarks can charge a
// cost.Meter.
package pde

import "math"

// Grid2D holds an N×N interior grid (Dirichlet zero boundary) for
// -Δu = f on the unit square, h = 1/(N+1).
type Grid2D struct {
	N    int
	Data []float64 // row-major N×N
}

// NewGrid2D returns a zero grid. Multigrid requires N = 2^k - 1.
func NewGrid2D(n int) *Grid2D {
	return &Grid2D{N: n, Data: make([]float64, n*n)}
}

// At returns u(i, j) honouring the zero boundary for out-of-range indices.
func (g *Grid2D) At(i, j int) float64 {
	if i < 0 || j < 0 || i >= g.N || j >= g.N {
		return 0
	}
	return g.Data[i*g.N+j]
}

// Set assigns u(i, j).
func (g *Grid2D) Set(i, j int, v float64) { g.Data[i*g.N+j] = v }

// Clone deep-copies the grid.
func (g *Grid2D) Clone() *Grid2D {
	out := NewGrid2D(g.N)
	copy(out.Data, g.Data)
	return out
}

// RMS returns the root-mean-square of the grid values.
func (g *Grid2D) RMS() float64 {
	sum := 0.0
	for _, v := range g.Data {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(g.Data)))
}

// SubRMS returns RMS(g - o).
func (g *Grid2D) SubRMS(o *Grid2D) float64 {
	sum := 0.0
	for i, v := range g.Data {
		d := v - o.Data[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(g.Data)))
}

// h returns the mesh width.
func (g *Grid2D) h() float64 { return 1.0 / float64(g.N+1) }

// Work tallies the floating-point work a solver performed.
type Work struct {
	Flops int
}

// Residual2D computes r = f + Δu (the residual of -Δu = f) into r.
func Residual2D(u, f, r *Grid2D, w *Work) {
	n := u.N
	inv := 1.0 / (u.h() * u.h())
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lap := (4*u.At(i, j) - u.At(i-1, j) - u.At(i+1, j) - u.At(i, j-1) - u.At(i, j+1)) * inv
			r.Set(i, j, f.At(i, j)-lap)
		}
	}
	w.Flops += 7 * n * n
}

// Jacobi2D performs one weighted Jacobi sweep (weight omega) on -Δu = f.
func Jacobi2D(u, f *Grid2D, omega float64, w *Work) {
	n := u.N
	h2 := u.h() * u.h()
	next := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			gs := (u.At(i-1, j) + u.At(i+1, j) + u.At(i, j-1) + u.At(i, j+1) + h2*f.At(i, j)) / 4
			next[i*n+j] = u.At(i, j) + omega*(gs-u.At(i, j))
		}
	}
	copy(u.Data, next)
	w.Flops += 8 * n * n
}

// SOR2D performs one successive-over-relaxation sweep (omega = 1 gives
// Gauss-Seidel) on -Δu = f.
func SOR2D(u, f *Grid2D, omega float64, w *Work) {
	n := u.N
	h2 := u.h() * u.h()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			gs := (u.At(i-1, j) + u.At(i+1, j) + u.At(i, j-1) + u.At(i, j+1) + h2*f.At(i, j)) / 4
			u.Set(i, j, u.At(i, j)+omega*(gs-u.At(i, j)))
		}
	}
	w.Flops += 8 * n * n
}

// Restrict2D full-weights the residual to the (n-1)/2 coarse grid.
func Restrict2D(fine *Grid2D, w *Work) *Grid2D {
	nc := (fine.N - 1) / 2
	coarse := NewGrid2D(nc)
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			fi, fj := 2*i+1, 2*j+1
			v := 0.25*fine.At(fi, fj) +
				0.125*(fine.At(fi-1, fj)+fine.At(fi+1, fj)+fine.At(fi, fj-1)+fine.At(fi, fj+1)) +
				0.0625*(fine.At(fi-1, fj-1)+fine.At(fi-1, fj+1)+fine.At(fi+1, fj-1)+fine.At(fi+1, fj+1))
			coarse.Set(i, j, v)
		}
	}
	w.Flops += 12 * nc * nc
	return coarse
}

// Prolong2D bilinearly interpolates the coarse correction onto fine,
// adding in place.
func Prolong2D(coarse, fine *Grid2D, w *Work) {
	nf := fine.N
	for i := 0; i < nf; i++ {
		for j := 0; j < nf; j++ {
			// Coarse coordinates (may be half-integral).
			ci, cj := (i-1)/2, (j-1)/2
			var v float64
			switch {
			case i%2 == 1 && j%2 == 1:
				v = coarse.At(ci, cj)
			case i%2 == 1:
				v = 0.5 * (coarse.At(ci, (j-2)/2+0) + coarse.At(ci, j/2))
			case j%2 == 1:
				v = 0.5 * (coarse.At((i-2)/2+0, cj) + coarse.At(i/2, cj))
			default:
				v = 0.25 * (coarse.At((i-2)/2, (j-2)/2) + coarse.At((i-2)/2, j/2) +
					coarse.At(i/2, (j-2)/2) + coarse.At(i/2, j/2))
			}
			fine.Set(i, j, fine.At(i, j)+v)
		}
	}
	w.Flops += 4 * nf * nf
}

// MGOptions2D configures a multigrid cycle.
type MGOptions2D struct {
	Pre, Post int     // smoothing sweeps before/after coarse correction
	Gamma     int     // 1 = V-cycle, 2 = W-cycle
	Omega     float64 // smoother relaxation (SOR)
}

// MGCycle2D performs one multigrid cycle on -Δu = f.
func MGCycle2D(u, f *Grid2D, opt MGOptions2D, w *Work) {
	if opt.Gamma < 1 {
		opt.Gamma = 1
	}
	if opt.Omega <= 0 {
		opt.Omega = 1
	}
	n := u.N
	if n <= 3 {
		// Coarsest level: smooth hard (tiny cost).
		for s := 0; s < 8; s++ {
			SOR2D(u, f, 1.0, w)
		}
		return
	}
	for s := 0; s < opt.Pre; s++ {
		SOR2D(u, f, opt.Omega, w)
	}
	r := NewGrid2D(n)
	Residual2D(u, f, r, w)
	coarseF := Restrict2D(r, w)
	coarseU := NewGrid2D(coarseF.N)
	for g := 0; g < opt.Gamma; g++ {
		MGCycle2D(coarseU, coarseF, opt, w)
	}
	Prolong2D(coarseU, u, w)
	for s := 0; s < opt.Post; s++ {
		SOR2D(u, f, opt.Omega, w)
	}
}

// DirectPoisson2D solves -Δu = f exactly via the 2-D discrete sine
// transform (the matrix decomposition method): O(N³) with dense 1-D
// transforms, no FFT needed at benchmark sizes.
func DirectPoisson2D(f *Grid2D, w *Work) *Grid2D {
	n := f.N
	h := f.h()
	// Sine basis S[j][k] = sin((j+1)(k+1)π/(N+1)).
	s := make([][]float64, n)
	for j := range s {
		s[j] = make([]float64, n)
		for k := range s[j] {
			s[j][k] = math.Sin(float64(j+1) * float64(k+1) * math.Pi / float64(n+1))
		}
	}
	// Eigenvalues of the 1-D operator.
	lam := make([]float64, n)
	for j := range lam {
		sv := math.Sin(float64(j+1) * math.Pi / (2 * float64(n+1)))
		lam[j] = 4 * sv * sv / (h * h)
	}
	// F̂ = S f S (two dense multiplications).
	fh := dstApply2D(s, f.Data, n)
	w.Flops += 4 * n * n * n
	// Scale by 1/(λi + λj) and the DST normalisation (2/(N+1))².
	norm := 4.0 / (float64(n+1) * float64(n+1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			fh[i*n+j] *= norm / (lam[i] + lam[j])
		}
	}
	w.Flops += 2 * n * n
	// u = S û S.
	out := NewGrid2D(n)
	out.Data = dstApply2D(s, fh, n)
	w.Flops += 4 * n * n * n
	return out
}

// dstApply2D computes S · X · S for the symmetric sine matrix S.
func dstApply2D(s [][]float64, x []float64, n int) []float64 {
	tmp := make([]float64, n*n)
	// tmp = S X
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += s[i][k] * x[k*n+j]
			}
			tmp[i*n+j] = sum
		}
	}
	// out = tmp S
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += tmp[i*n+k] * s[k][j]
			}
			out[i*n+j] = sum
		}
	}
	return out
}
