package autotuner

import "inputtune/internal/choice"

// Self-tuning meta-loop (after Yang & He, "A Framework for Self-Tuning
// Optimization Algorithms"): instead of running the GA once with fixed
// hyperparameters, MetaTune runs a short portfolio of trials whose
// population size, mutation-operator mix, elite fraction, and crossover
// rate differ, all drawing on one shared evaluation memo and one global
// evaluation budget. Each trial seeds its population with the best
// survivors of the trials before it, so later trials refine rather than
// restart; memoized genomes cost nothing, so re-treading explored ground
// is free. The budget is a hard cap — the meta-loop converges in strictly
// bounded evaluations regardless of how the trials behave.

// MetaOptions configures MetaTune. The embedded Options describe the
// baseline trial; Seed, Space, Eval, objective, and Parallel apply to all
// trials.
type MetaOptions struct {
	Options

	// Trials is the length of the hyperparameter portfolio cycle
	// (default 3). The meta-loop keeps cycling trials — each seeded with
	// the best survivors so far — until the evaluation budget is spent,
	// up to 3×Trials trials.
	Trials int
	// Budget caps total EvalFunc invocations across all trials. 0 selects
	// the self-tuned default: 3/5 of what the flat single-run GA would
	// request (Population + Generations×(Population−Elites)), floored so
	// the first trial can always seed a population.
	Budget int
}

// MetaStats extends Stats with meta-loop accounting.
type MetaStats struct {
	Stats
	// Trials is the number of hyperparameter trials actually run.
	Trials int
	// Budget is the resolved evaluation cap.
	Budget int
}

// metaSpec is one hyperparameter trial of the portfolio.
type metaSpec struct {
	pop, elites, immigrants, stall int
	crossover                      float64
	weights                        choice.MutationWeights
}

// metaSpecs derives the trial portfolio from the baseline options. Trial 0
// is the baseline with early stopping; trial 1 exploits (smaller
// population, perturb-heavy mutation, more crossover); trial 2 explores
// structure (selector-heavy mutation, more immigrants). Further trials
// cycle the portfolio; distinct per-trial seeds keep them from retracing.
func metaSpecs(base Options, n int) []metaSpec {
	cycle := []metaSpec{
		{
			pop: base.Population, elites: base.Elites,
			immigrants: base.Immigrants, stall: 3,
			crossover: base.CrossoverRate, weights: base.Weights,
		},
		{
			pop: maxInt(4, base.Population*2/3), elites: maxInt(1, base.Elites/2),
			immigrants: 2, stall: 2, crossover: 0.25,
			weights: choice.MutationWeights{
				PerturbTunable: 1, ResetTunable: 1,
				MutateCutoff: 3, MutateChoice: 4,
				InsertLevel: 2, DeleteLevel: 1,
			},
		},
		{
			pop: maxInt(4, base.Population/2), elites: 1,
			immigrants: NoImmigrants, stall: 2, crossover: 0.6,
			weights: choice.MutationWeights{
				PerturbTunable: 6, ResetTunable: 1,
				MutateCutoff: 3, MutateChoice: 2,
				InsertLevel: 1, DeleteLevel: 1,
			},
		},
	}
	specs := make([]metaSpec, n)
	for i := range specs {
		specs[i] = cycle[i%len(cycle)]
	}
	return specs
}

// MetaTune runs the self-tuning portfolio and returns the best
// configuration across all trials plus aggregated statistics. Results are
// deterministic per Options.Seed.
func MetaTune(mo MetaOptions) (*choice.Config, MetaStats) {
	base := mo.Options
	base.setDefaults()
	if mo.Trials <= 0 {
		mo.Trials = 3
	}
	if mo.Budget <= 0 {
		flatCost := base.Population + base.Generations*(base.Population-base.Elites)
		mo.Budget = flatCost * 4 / 5
	}
	if mo.Budget < base.Population {
		mo.Budget = base.Population
	}

	memo := newRunMemo()
	specs := metaSpecs(base, mo.Trials)
	var agg Stats
	var bestInd individual
	haveBest := false
	var carry []*choice.Config
	trialsRun := 0
	// Cycle the portfolio until the budget is spent: early-stalled trials
	// leave budget for further restarts, so the cap is always used. Each
	// restart reseeds from the incumbent survivors; memoized ground is
	// free to re-tread. The trial cap is a backstop for saturated memos
	// (no new genomes left to evaluate).
	for t := 0; t < 3*mo.Trials; t++ {
		if t > 0 && memo.evals >= mo.Budget {
			break // budget spent; later trials could only replay the memo
		}
		spec := specs[t%len(specs)]
		o := base
		o.Population = spec.pop
		o.Elites = spec.elites
		o.Immigrants = spec.immigrants
		o.CrossoverRate = spec.crossover
		o.Weights = spec.weights
		if o.Stall <= 0 {
			o.Stall = spec.stall
		}
		// Slice the budget across the portfolio cycle so every trial's
		// hyperparameters get a turn: an uncapped first trial would spend
		// the whole budget before the explore/exploit specs ever run.
		slice := maxInt(spec.pop, mo.Budget/mo.Trials)
		o.MaxEvaluations = minInt(mo.Budget, memo.evals+slice)
		// Golden-ratio seed mixing: deterministic, distinct per trial.
		o.Seed = base.Seed + 0x9e3779b97f4a7c15*uint64(t)
		o.memo = memo
		o.seedPop = carry
		pop, st := tune(o)
		trialsRun++
		agg.Evaluations += st.Evaluations
		agg.CacheHits += st.CacheHits
		agg.DeadGeneCollapses += st.DeadGeneCollapses
		agg.Generations += st.Generations
		if len(pop) > 0 {
			if !haveBest || better(pop[0], bestInd, base.RequireAccuracy, base.AccuracyTarget) {
				bestInd = pop[0]
				haveBest = true
			}
			// Carry the trial's best survivors into the next trial's seed
			// population (the incumbent first, so it can never be lost).
			carry = carry[:0]
			carry = append(carry, bestInd.cfg)
			for i := 0; i < len(pop) && len(carry) < 4; i++ {
				if pop[i].cfg != bestInd.cfg {
					carry = append(carry, pop[i].cfg)
				}
			}
		}
	}

	agg.BestTime = bestInd.res.Time
	agg.BestAcc = bestInd.res.Accuracy
	agg.Feasible = !base.RequireAccuracy || bestInd.res.Accuracy >= base.AccuracyTarget
	cfg := bestInd.cfg
	if !base.Flat && base.Space.HasDependencies() {
		cfg = base.Space.Canonicalize(cfg)
	}
	return cfg, MetaStats{Stats: agg, Trials: trialsRun, Budget: mo.Budget}
}

// FlatCost returns the number of evaluations a flat single-run GA with the
// given population and generations would request (defaults applied) —
// the reference point budgets and budget fractions are expressed against.
func FlatCost(population, generations int) int {
	o := Options{Population: population, Generations: generations}
	o.setDefaults()
	return o.Population + o.Generations*(o.Population-o.Elites)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
