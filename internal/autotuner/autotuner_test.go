package autotuner

import (
	"math"
	"testing"

	"inputtune/internal/choice"
	"inputtune/internal/rng"
)

// toySpace builds a space with one 3-way site and two tunables whose
// optimum is known analytically.
func toySpace() *choice.Space {
	s := choice.NewSpace()
	s.AddSite("algo", "slow", "medium", "fast")
	s.AddInt("cutoff", 1, 1000, 500)
	s.AddFloat("knob", 0, 1, 0)
	return s
}

// toyEval: time is minimised by choosing alternative 2 for size 100 inputs,
// cutoff near 128, knob near 0.75.
func toyEval(cfg *choice.Config) Result {
	alt := cfg.Decide(0, 100)
	base := float64(3-alt) * 100 // fast=100, medium=200, slow=300
	cutPenalty := math.Abs(float64(cfg.Int(0)) - 128)
	knobPenalty := 50 * math.Abs(cfg.Float(1)-0.75)
	return Result{Time: base + cutPenalty + knobPenalty}
}

func TestTuneFindsGoodConfig(t *testing.T) {
	sp := toySpace()
	cfg, st := Tune(Options{
		Space: sp, Eval: toyEval, Seed: 1,
		Population: 32, Generations: 40,
	})
	res := toyEval(cfg)
	// Optimum is 100; accept anything clearly in the right basin.
	if res.Time > 160 {
		t.Fatalf("tuned time %v too far from optimum 100 (config %s)", res.Time, cfg)
	}
	if cfg.Decide(0, 100) != 2 {
		t.Fatalf("tuner picked alternative %d, want 2", cfg.Decide(0, 100))
	}
	if st.Evaluations == 0 || st.Generations != 40 {
		t.Fatalf("stats = %+v", st)
	}
	if err := sp.Validate(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTuneDeterministicPerSeed(t *testing.T) {
	sp := toySpace()
	a, _ := Tune(Options{Space: sp, Eval: toyEval, Seed: 9, Generations: 10})
	b, _ := Tune(Options{Space: sp, Eval: toyEval, Seed: 9, Generations: 10})
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	c, _ := Tune(Options{Space: sp, Eval: toyEval, Seed: 10, Generations: 10})
	_ = c // different seed may or may not differ; only determinism is required
}

func TestTuneParallelMatchesSerial(t *testing.T) {
	sp := toySpace()
	serial, _ := Tune(Options{Space: sp, Eval: toyEval, Seed: 4, Generations: 12})
	parallel, _ := Tune(Options{Space: sp, Eval: toyEval, Seed: 4, Generations: 12, Parallel: true})
	if serial.String() != parallel.String() {
		t.Fatalf("parallel evaluation changed the result:\n%s\n%s", serial, parallel)
	}
}

func TestAccuracyFeasibilityDominates(t *testing.T) {
	sp := choice.NewSpace()
	sp.AddFloat("iters", 0, 10, 0)
	// More iterations: slower but more accurate. Accuracy target 0.9 needs
	// iters >= 9; the time-optimal feasible point is iters = 9.
	eval := func(cfg *choice.Config) Result {
		it := cfg.Float(0)
		return Result{Time: 10 + it, Accuracy: it / 10}
	}
	cfg, st := Tune(Options{
		Space: sp, Eval: eval, Seed: 2,
		RequireAccuracy: true, AccuracyTarget: 0.9,
		Population: 32, Generations: 40,
	})
	if !st.Feasible {
		t.Fatalf("tuner failed to find a feasible config: %+v", st)
	}
	got := cfg.Float(0)
	if got < 9 || got > 9.6 {
		t.Fatalf("iters = %v, want just above 9 (time-optimal feasible)", got)
	}
}

func TestInfeasibleTargetMaximisesAccuracy(t *testing.T) {
	sp := choice.NewSpace()
	sp.AddFloat("iters", 0, 10, 0)
	eval := func(cfg *choice.Config) Result {
		it := cfg.Float(0)
		return Result{Time: 10 + it, Accuracy: it / 20} // max accuracy 0.5 < target
	}
	cfg, st := Tune(Options{
		Space: sp, Eval: eval, Seed: 3,
		RequireAccuracy: true, AccuracyTarget: 0.9,
		Population: 24, Generations: 30,
	})
	if st.Feasible {
		t.Fatal("target is unreachable; Feasible must be false")
	}
	if got := cfg.Float(0); got < 9.5 {
		t.Fatalf("iters = %v; infeasible search should push accuracy to its max", got)
	}
}

func TestBetterOrdering(t *testing.T) {
	fast := individual{res: Result{Time: 1, Accuracy: 0.5}}
	slow := individual{res: Result{Time: 2, Accuracy: 0.99}}
	// Time-only: fast wins.
	if !better(fast, slow, false, 0) {
		t.Fatal("time-only: fast should win")
	}
	// Accuracy-required: only slow is feasible.
	if better(fast, slow, true, 0.9) {
		t.Fatal("accuracy: infeasible fast must lose")
	}
	// Both infeasible: higher accuracy wins.
	a := individual{res: Result{Time: 9, Accuracy: 0.4}}
	b := individual{res: Result{Time: 1, Accuracy: 0.3}}
	if !better(a, b, true, 0.9) {
		t.Fatal("both infeasible: higher accuracy should win")
	}
	// Equal accuracy, both infeasible: lower time wins.
	c := individual{res: Result{Time: 1, Accuracy: 0.4}}
	if !better(c, a, true, 0.9) {
		t.Fatal("tie on accuracy: faster should win")
	}
}

func TestDefaultsClampElites(t *testing.T) {
	o := Options{Population: 4, Elites: 10}
	o.setDefaults()
	if o.Elites >= o.Population {
		t.Fatalf("elites %d not clamped below population %d", o.Elites, o.Population)
	}
	if o.Immigrants > o.Population-o.Elites {
		t.Fatalf("immigrants %d exceed offspring slots", o.Immigrants)
	}
}

func TestEvaluationBudget(t *testing.T) {
	sp := toySpace()
	calls := 0
	eval := func(cfg *choice.Config) Result {
		calls++
		return toyEval(cfg)
	}
	_, st := Tune(Options{Space: sp, Eval: eval, Seed: 5, Population: 10, Generations: 5})
	wantMax := 10 + 5*10 // initial pop + per-generation offspring
	if calls != st.Evaluations {
		t.Fatalf("stats evaluations %d != actual %d", st.Evaluations, calls)
	}
	if calls > wantMax {
		t.Fatalf("evaluations %d exceed budget %d", calls, wantMax)
	}
}

func TestImmigrantsSentinel(t *testing.T) {
	// Zero value selects the default.
	o := Options{}
	o.setDefaults()
	if o.Immigrants != 2 {
		t.Fatalf("default immigrants = %d, want 2", o.Immigrants)
	}
	// NoImmigrants disables immigration instead of silently re-enabling
	// the default (the old behaviour promoted an explicit 0 to 2).
	o = Options{Immigrants: NoImmigrants}
	o.setDefaults()
	if o.Immigrants != 0 {
		t.Fatalf("NoImmigrants -> %d immigrants, want 0", o.Immigrants)
	}
	// Explicit positive values pass through (clamped to offspring slots).
	o = Options{Immigrants: 5}
	o.setDefaults()
	if o.Immigrants != 5 {
		t.Fatalf("explicit immigrants = %d, want 5", o.Immigrants)
	}
}

// TestNoImmigrantsChangesSearch verifies the sentinel reaches the search
// itself: with immigration off, the random-immigrant RNG draws are gone,
// so the run differs from the default while staying deterministic.
func TestNoImmigrantsChangesSearch(t *testing.T) {
	sp := toySpace()
	// Seed chosen so the two trajectories demonstrably diverge.
	opts := Options{Space: sp, Eval: toyEval, Seed: 8, Population: 8, Generations: 6}
	withDefault, _ := Tune(opts)
	opts.Immigrants = NoImmigrants
	a, _ := Tune(opts)
	b, _ := Tune(opts)
	if a.String() != b.String() {
		t.Fatal("NoImmigrants run is not deterministic")
	}
	if a.String() == withDefault.String() {
		t.Fatal("NoImmigrants run matched the default run; the sentinel never reached the search")
	}
}

// TestSortPopStableTies: individuals tied on (time, accuracy) must keep
// their insertion order, so elite survival does not depend on sort
// internals.
func TestSortPopStableTies(t *testing.T) {
	sp := toySpace()
	r := rng.New(1)
	pop := make([]individual, 8)
	for i := range pop {
		pop[i] = individual{cfg: sp.RandomConfig(r), res: Result{Time: 5, Accuracy: 1}}
	}
	// Two strictly better individuals in the middle.
	pop[3].res = Result{Time: 1, Accuracy: 1}
	pop[6].res = Result{Time: 2, Accuracy: 1}
	orig := make([]*choice.Config, len(pop))
	for i, ind := range pop {
		orig[i] = ind.cfg
	}
	sortPop(pop, Options{})
	if pop[0].cfg != orig[3] || pop[1].cfg != orig[6] {
		t.Fatal("better individuals not sorted first")
	}
	// The six tied individuals must appear in original order.
	want := []*choice.Config{orig[0], orig[1], orig[2], orig[4], orig[5], orig[7]}
	for i, w := range want {
		if pop[2+i].cfg != w {
			t.Fatalf("tie order perturbed at %d", i)
		}
	}
}

// TestTuneMemoAccounting: requested evaluations split exactly into actual
// EvalFunc calls and memo hits, and every memo hit corresponds to a genome
// fingerprint already evaluated.
func TestTuneMemoAccounting(t *testing.T) {
	sp := toySpace()
	calls := 0
	eval := func(cfg *choice.Config) Result { calls++; return toyEval(cfg) }
	opts := Options{Space: sp, Eval: eval, Seed: 6, Population: 12, Generations: 10}
	_, st := Tune(opts)
	requested := 12 + 10*(12-4) // initial population + per-generation offspring
	if st.Evaluations+st.CacheHits != requested {
		t.Fatalf("evals %d + hits %d != requested %d", st.Evaluations, st.CacheHits, requested)
	}
	if calls != st.Evaluations {
		t.Fatalf("actual calls %d != reported evaluations %d", calls, st.Evaluations)
	}
}
