package autotuner

import (
	"sync/atomic"
	"testing"

	"inputtune/internal/choice"
)

// metaSpace is a guarded space where the optimum hides behind a selector
// alternative: tunable 0 matters only under alternative 1.
func metaSpace() *choice.Space {
	s := choice.NewSpace()
	s.AddSite("algo", "a", "b", "c")
	s.AddInt("k", 0, 100, 50)
	s.AddFloat("x", 0, 1, 0.5)
	s.DependsOn(0, 0, 1) // k <- {b}
	return s
}

// metaEval rewards alternative b with k near 70 and x near 0.3; under a or
// c only x matters, with a worse floor. Deterministic in the config.
func metaEval(cfg *choice.Config) Result {
	alt := cfg.Decide(0, 1000)
	k := cfg.Int(0)
	x := cfg.Float(1)
	t := 10 + 5*abs(x-0.3)
	if alt == 1 {
		t = 1 + 0.1*abs(float64(k)-70) + 5*abs(x-0.3)
	}
	return Result{Time: t, Accuracy: 1}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestMetaTuneRespectsBudget(t *testing.T) {
	for _, budget := range []int{8, 20, 50} {
		var evals int64
		_, st := MetaTune(MetaOptions{
			Options: Options{
				Space: metaSpace(),
				Eval: func(cfg *choice.Config) Result {
					atomic.AddInt64(&evals, 1)
					return metaEval(cfg)
				},
				Population: 8, Generations: 6, Seed: 7,
			},
			Budget: budget,
		})
		if int(evals) > budget {
			t.Errorf("budget %d: %d actual evaluations", budget, evals)
		}
		if st.Evaluations != int(evals) {
			t.Errorf("budget %d: Stats.Evaluations = %d, counted %d", budget, st.Evaluations, evals)
		}
		if st.Budget != budget {
			t.Errorf("budget %d: Stats.Budget = %d", budget, st.Budget)
		}
	}
}

func TestMetaTuneDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) (string, MetaStats) {
		cfg, st := MetaTune(MetaOptions{
			Options: Options{
				Space: metaSpace(), Eval: metaEval,
				Population: 8, Generations: 6, Seed: seed,
			},
			Budget: 40,
		})
		return cfg.Key(), st
	}
	k1, s1 := run(11)
	k2, s2 := run(11)
	if k1 != k2 || s1 != s2 {
		t.Fatal("MetaTune not deterministic for equal seeds")
	}
	// Parallel evaluation must not change the result either.
	cfg3, _ := MetaTune(MetaOptions{
		Options: Options{
			Space: metaSpace(), Eval: metaEval,
			Population: 8, Generations: 6, Seed: 11, Parallel: true,
		},
		Budget: 40,
	})
	if cfg3.Key() != k1 {
		t.Fatal("parallel MetaTune diverges from serial")
	}
}

// TestMetaTuneBeatsFlatBudget: on the guarded space the meta-loop reaches a
// config at least as good as the flat GA while spending strictly fewer
// evaluations.
func TestMetaTuneBeatsFlatBudget(t *testing.T) {
	var flatEvals int64
	flatCfg, _ := Tune(Options{
		Space: metaSpace(),
		Eval: func(cfg *choice.Config) Result {
			atomic.AddInt64(&flatEvals, 1)
			return metaEval(cfg)
		},
		Population: 10, Generations: 8, Seed: 3, Flat: true,
	})

	var metaEvals int64
	metaCfg, st := MetaTune(MetaOptions{
		Options: Options{
			Space: metaSpace(),
			Eval: func(cfg *choice.Config) Result {
				atomic.AddInt64(&metaEvals, 1)
				return metaEval(cfg)
			},
			Population: 10, Generations: 8, Seed: 3,
		},
	})
	if metaEvals >= flatEvals {
		t.Fatalf("meta %d evals, flat %d — no reduction", metaEvals, flatEvals)
	}
	// Both must land in the guarded branch's basin (time well under the
	// 10+ floor of the unguarded alternatives); exact ranking at a given
	// budget is landscape noise, basin discovery is the property.
	if metaEval(metaCfg).Time > 5 {
		t.Fatalf("meta result %.3f missed the optimum branch (flat found %.3f)",
			metaEval(metaCfg).Time, metaEval(flatCfg).Time)
	}
	if st.Trials < 1 {
		t.Fatal("no trials recorded")
	}
}

// TestMetaTuneCollapsesDeadGenes: with a guarded space the shared memo must
// report dead-gene collapses — structurally distinct genomes answered by
// one canonical representative.
func TestMetaTuneCollapsesDeadGenes(t *testing.T) {
	_, st := MetaTune(MetaOptions{
		Options: Options{
			Space: metaSpace(), Eval: metaEval,
			Population: 10, Generations: 8, Seed: 5,
		},
	})
	if st.DeadGeneCollapses == 0 {
		t.Fatal("no dead-gene collapses on a guarded space")
	}
	if st.Evaluations+st.CacheHits < st.Evaluations {
		t.Fatal("inconsistent accounting")
	}
}

// TestMetaTuneReturnsCanonicalConfig: the returned best is its own
// canonical representative (dead genes at defaults, selectors minimal).
func TestMetaTuneReturnsCanonicalConfig(t *testing.T) {
	s := metaSpace()
	cfg, _ := MetaTune(MetaOptions{
		Options: Options{Space: s, Eval: metaEval, Population: 10, Generations: 8, Seed: 9},
	})
	if cfg.Key() != s.Canonicalize(cfg).Key() {
		t.Fatal("MetaTune returned a non-canonical config")
	}
}

func TestFlatCost(t *testing.T) {
	// pop 10, gens 8, default elites 4: 10 + 8*(10-4).
	if got := FlatCost(10, 8); got != 58 {
		t.Fatalf("FlatCost(10, 8) = %d", got)
	}
	// Defaults: pop 24, gens 24, elites 4.
	if got := FlatCost(0, 0); got != 24+24*20 {
		t.Fatalf("FlatCost(0, 0) = %d", got)
	}
}
