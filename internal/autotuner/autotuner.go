// Package autotuner implements the evolutionary configuration search the
// two-level learner invokes once per input cluster (Level 1, Step 3 of the
// paper). It is a steady-state genetic algorithm over choice.Config
// genomes: tournament selection, structural mutation and crossover from the
// choice package, elitism, and a lexicographic fitness that puts accuracy
// feasibility ahead of execution time — the paper's variable-accuracy dual
// objective.
package autotuner

import (
	"runtime"
	"sync"

	"inputtune/internal/choice"
	"inputtune/internal/rng"
)

// Result is one evaluation of a configuration on the training input: the
// virtual execution time and (for variable-accuracy programs) the achieved
// accuracy.
type Result struct {
	Time     float64
	Accuracy float64
}

// EvalFunc evaluates a configuration. It must be deterministic: the tuner
// may evaluate candidates concurrently and caches nothing across calls.
type EvalFunc func(cfg *choice.Config) Result

// Options configures a tuning run. Zero values select the documented
// defaults.
type Options struct {
	Space *choice.Space
	Eval  EvalFunc

	// RequireAccuracy enables the dual objective: candidates whose accuracy
	// is below AccuracyTarget are dominated by any candidate meeting it.
	RequireAccuracy bool
	AccuracyTarget  float64

	Population  int    // default 24
	Generations int    // default 24
	Elites      int    // default 4
	Tournament  int    // default 3
	Immigrants  int    // random configs injected per generation, default 2
	Seed        uint64 // RNG seed; runs are deterministic per seed
	Parallel    bool   // evaluate each generation's offspring concurrently
}

func (o *Options) setDefaults() {
	if o.Population <= 0 {
		o.Population = 24
	}
	if o.Generations <= 0 {
		o.Generations = 24
	}
	if o.Elites <= 0 {
		o.Elites = 4
	}
	if o.Elites >= o.Population {
		o.Elites = o.Population - 1
	}
	if o.Tournament <= 0 {
		o.Tournament = 3
	}
	if o.Immigrants < 0 {
		o.Immigrants = 0
	}
	if o.Immigrants == 0 {
		o.Immigrants = 2
	}
	if o.Immigrants > o.Population-o.Elites {
		o.Immigrants = o.Population - o.Elites
	}
}

// Stats summarises a tuning run.
type Stats struct {
	Evaluations int
	Generations int
	BestTime    float64
	BestAcc     float64
	// Feasible reports whether the returned best met the accuracy target
	// (always true when RequireAccuracy is false).
	Feasible bool
}

type individual struct {
	cfg *choice.Config
	res Result
}

// better reports whether a beats b under the lexicographic dual objective.
func better(a, b individual, requireAcc bool, target float64) bool {
	if requireAcc {
		af, bf := a.res.Accuracy >= target, b.res.Accuracy >= target
		if af != bf {
			return af
		}
		if !af {
			// Both infeasible: higher accuracy wins, time breaks ties.
			if a.res.Accuracy != b.res.Accuracy {
				return a.res.Accuracy > b.res.Accuracy
			}
			return a.res.Time < b.res.Time
		}
	}
	return a.res.Time < b.res.Time
}

// Tune runs the evolutionary search and returns the best configuration
// found plus run statistics.
func Tune(opts Options) (*choice.Config, Stats) {
	opts.setDefaults()
	if opts.Space == nil || opts.Eval == nil {
		panic("autotuner: Space and Eval are required")
	}
	r := rng.New(opts.Seed)
	var st Stats

	evalAll := func(cfgs []*choice.Config) []individual {
		out := make([]individual, len(cfgs))
		st.Evaluations += len(cfgs)
		if opts.Parallel && len(cfgs) > 1 {
			workers := runtime.GOMAXPROCS(0)
			if workers > len(cfgs) {
				workers = len(cfgs)
			}
			var wg sync.WaitGroup
			ch := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range ch {
						out[i] = individual{cfg: cfgs[i], res: opts.Eval(cfgs[i])}
					}
				}()
			}
			for i := range cfgs {
				ch <- i
			}
			close(ch)
			wg.Wait()
		} else {
			for i, c := range cfgs {
				out[i] = individual{cfg: c, res: opts.Eval(c)}
			}
		}
		return out
	}

	// Initial population: the default config plus random draws, so the
	// search always starts from a sane polyalgorithm-free baseline.
	seedCfgs := make([]*choice.Config, opts.Population)
	seedCfgs[0] = opts.Space.DefaultConfig()
	for i := 1; i < opts.Population; i++ {
		seedCfgs[i] = opts.Space.RandomConfig(r)
	}
	pop := evalAll(seedCfgs)
	sortPop(pop, opts)

	for gen := 0; gen < opts.Generations; gen++ {
		st.Generations++
		// Build the offspring pool.
		nOff := opts.Population - opts.Elites
		offspring := make([]*choice.Config, 0, nOff)
		for i := 0; i < opts.Immigrants; i++ {
			offspring = append(offspring, opts.Space.RandomConfig(r))
		}
		for len(offspring) < nOff {
			a := tournament(pop, opts, r)
			if r.Coin(0.4) {
				b := tournament(pop, opts, r)
				child := opts.Space.Crossover(pop[a].cfg, pop[b].cfg, r)
				offspring = append(offspring, opts.Space.Mutate(child, r))
			} else {
				offspring = append(offspring, opts.Space.Mutate(pop[a].cfg, r))
			}
		}
		evaluated := evalAll(offspring)
		// Elitism: keep the best Elites from the previous generation.
		next := make([]individual, 0, opts.Population)
		next = append(next, pop[:opts.Elites]...)
		next = append(next, evaluated...)
		pop = next
		sortPop(pop, opts)
		pop = pop[:opts.Population]
	}

	best := pop[0]
	st.BestTime = best.res.Time
	st.BestAcc = best.res.Accuracy
	st.Feasible = !opts.RequireAccuracy || best.res.Accuracy >= opts.AccuracyTarget
	return best.cfg, st
}

// sortPop orders the population best-first (insertion sort: populations are
// tiny and this avoids an import).
func sortPop(pop []individual, opts Options) {
	for i := 1; i < len(pop); i++ {
		x := pop[i]
		j := i - 1
		for j >= 0 && better(x, pop[j], opts.RequireAccuracy, opts.AccuracyTarget) {
			pop[j+1] = pop[j]
			j--
		}
		pop[j+1] = x
	}
}

// tournament returns the index of the winner of a k-way tournament.
func tournament(pop []individual, opts Options, r *rng.RNG) int {
	best := r.Intn(len(pop))
	for i := 1; i < opts.Tournament; i++ {
		c := r.Intn(len(pop))
		if better(pop[c], pop[best], opts.RequireAccuracy, opts.AccuracyTarget) {
			best = c
		}
	}
	return best
}
