package autotuner

import (
	"sort"

	"inputtune/internal/choice"
	"inputtune/internal/engine"
	"inputtune/internal/rng"
)

// Result is one evaluation of a configuration on the training input: the
// virtual execution time and (for variable-accuracy programs) the achieved
// accuracy.
type Result struct {
	Time     float64
	Accuracy float64
}

// EvalFunc evaluates a configuration. It must be deterministic: the tuner
// may evaluate candidates concurrently, and it memoizes results by
// configuration fingerprint (choice.Config.Key — or the canonical LiveKey
// when the space declares selector→tunable dependencies), so a genome is
// never evaluated twice within one run, nor is any dead-gene variant of an
// already-evaluated behaviour.
type EvalFunc func(cfg *choice.Config) Result

// NoImmigrants disables the per-generation injection of random
// configurations. The zero value of Options.Immigrants selects the default
// (2), so disabling immigration needs an explicit sentinel.
const NoImmigrants = -1

// Options configures a tuning run. Zero values select the documented
// defaults.
type Options struct {
	Space *choice.Space
	Eval  EvalFunc

	// RequireAccuracy enables the dual objective: candidates whose accuracy
	// is below AccuracyTarget are dominated by any candidate meeting it.
	RequireAccuracy bool
	AccuracyTarget  float64

	Population  int // default 24
	Generations int // default 24
	Elites      int // default 4
	Tournament  int // default 3
	// Immigrants is the number of random configs injected per generation.
	// 0 selects the default (2); pass NoImmigrants to disable immigration.
	Immigrants int
	Seed       uint64 // RNG seed; runs are deterministic per seed
	// Parallel evaluates offspring concurrently on the shared engine
	// pool, which keeps nested parallel loops (the caller's per-landmark
	// loop outside, generations inside) from oversubscribing GOMAXPROCS.
	Parallel bool

	// CrossoverRate is the probability an offspring is bred from two
	// parents rather than mutated from one. 0 selects the default (0.4).
	CrossoverRate float64
	// Weights overrides the mutation-operator mix; zero value = defaults.
	Weights choice.MutationWeights
	// Stall, when positive, stops the search after Stall consecutive
	// generations without improvement of the incumbent.
	Stall int
	// MaxEvaluations, when positive, caps actual EvalFunc invocations:
	// once the cap is reached no further un-memoized genomes are
	// evaluated (they are dropped from the offspring pool) and the
	// generation loop stops. With a shared memo (MetaTune) the cap spans
	// all trials.
	MaxEvaluations int
	// Flat disables dependency-aware search: operators may touch dead
	// genes and dedup uses the full-genome fingerprint. This is the
	// pre-dependency-graph behaviour, kept for A/B comparison.
	Flat bool

	// memo, when set, shares evaluation results (and the evaluation
	// budget) across several tune runs — MetaTune's trials.
	memo *runMemo
	// seedPop prepends known-good configurations to the initial
	// population (after the default config), used by MetaTune to carry
	// survivors across trials.
	seedPop []*choice.Config
}

func (o *Options) setDefaults() {
	if o.Population <= 0 {
		o.Population = 24
	}
	if o.Generations <= 0 {
		o.Generations = 24
	}
	if o.Elites <= 0 {
		o.Elites = 4
	}
	if o.Elites >= o.Population {
		o.Elites = o.Population - 1
	}
	if o.Tournament <= 0 {
		o.Tournament = 3
	}
	if o.Immigrants == 0 {
		o.Immigrants = 2
	}
	if o.Immigrants < 0 { // NoImmigrants (or any negative): disable
		o.Immigrants = 0
	}
	if o.Immigrants > o.Population-o.Elites {
		o.Immigrants = o.Population - o.Elites
	}
	if o.CrossoverRate <= 0 {
		o.CrossoverRate = 0.4
	}
	if o.Weights == (choice.MutationWeights{}) {
		o.Weights = choice.DefaultMutationWeights()
	}
}

// Stats summarises a tuning run.
type Stats struct {
	// Evaluations counts actual EvalFunc invocations (unique behaviours).
	Evaluations int
	// CacheHits counts genome evaluations answered by the in-run memo
	// instead of EvalFunc; Evaluations+CacheHits is the requested total.
	CacheHits   int
	Generations int
	// DeadGeneCollapses counts genomes that were structurally new (their
	// full fingerprint had never been seen) yet collapsed onto an
	// already-evaluated canonical representative — evaluations the
	// dependency graph saved before they were paid.
	DeadGeneCollapses int
	BestTime          float64
	BestAcc           float64
	// Feasible reports whether the returned best met the accuracy target
	// (always true when RequireAccuracy is false).
	Feasible bool
}

type individual struct {
	cfg *choice.Config
	res Result
}

// runMemo is the evaluation memo of one tuning run, shareable across
// MetaTune trials. res is keyed by the dedup key (LiveKey or full Key);
// full records every full fingerprint ever requested, distinguishing true
// repeats from dead-gene collapses; evals counts EvalFunc invocations
// recorded through this memo, the quantity MaxEvaluations caps.
type runMemo struct {
	res   map[string]Result
	full  map[string]struct{}
	evals int
}

func newRunMemo() *runMemo {
	return &runMemo{res: make(map[string]Result), full: make(map[string]struct{})}
}

// better reports whether a beats b under the lexicographic dual objective.
func better(a, b individual, requireAcc bool, target float64) bool {
	if requireAcc {
		af, bf := a.res.Accuracy >= target, b.res.Accuracy >= target
		if af != bf {
			return af
		}
		if !af {
			// Both infeasible: higher accuracy wins, time breaks ties.
			if a.res.Accuracy != b.res.Accuracy {
				return a.res.Accuracy > b.res.Accuracy
			}
			return a.res.Time < b.res.Time
		}
	}
	return a.res.Time < b.res.Time
}

// Tune runs the evolutionary search and returns the best configuration
// found plus run statistics. When the space declares dependencies the
// returned landmark is canonical (dead genes at defaults), so downstream
// caches keyed by Config.Key see the same fingerprint the tuner deduped
// on.
func Tune(opts Options) (*choice.Config, Stats) {
	pop, st := tune(opts)
	cfg := pop[0].cfg
	if !opts.Flat && opts.Space.HasDependencies() {
		cfg = opts.Space.Canonicalize(cfg)
	}
	return cfg, st
}

// tune is the GA core; it returns the final population (best first) so
// MetaTune can carry survivors across trials.
func tune(opts Options) ([]individual, Stats) {
	opts.setDefaults()
	if opts.Space == nil || opts.Eval == nil {
		panic("autotuner: Space and Eval are required")
	}
	r := rng.New(opts.Seed)
	var st Stats
	pool := engine.Default()

	liveAware := !opts.Flat && opts.Space.HasDependencies()
	mo := choice.MutateOptions{Weights: opts.Weights, Flat: opts.Flat}
	xo := choice.CrossoverOptions{Flat: opts.Flat}
	randomCfg := func() *choice.Config {
		if opts.Flat {
			return opts.Space.RandomConfigFlat(r)
		}
		return opts.Space.RandomConfig(r)
	}

	// memo holds every result of this run keyed by behaviour fingerprint,
	// so duplicate genomes (no-op mutations, re-bred crossovers, converged
	// populations) and — under a dependency graph — dead-gene variants of
	// an evaluated behaviour cost a map lookup instead of a program run.
	// EvalFunc is deterministic, so memoized results are bit-identical to
	// re-runs.
	memo := opts.memo
	if memo == nil {
		memo = newRunMemo()
	}
	// evalAll evaluates cfgs, deduping through the memo. minKeep forces at
	// least that many un-memoized genomes to run even over budget, so the
	// initial population can never come back empty.
	evalAll := func(cfgs []*choice.Config, minKeep int) []individual {
		keys := make([]string, len(cfgs))
		drop := make([]bool, len(cfgs))
		var pending []int // first occurrence of each un-memoized behaviour
		for i, c := range cfgs {
			fk := c.Key()
			lk := fk
			if liveAware {
				lk = opts.Space.LiveKey(c)
			}
			keys[i] = lk
			if _, ok := memo.res[lk]; ok {
				st.CacheHits++
				if liveAware {
					if _, seen := memo.full[fk]; !seen {
						st.DeadGeneCollapses++
					}
				}
			} else if opts.MaxEvaluations > 0 &&
				memo.evals+len(pending) >= opts.MaxEvaluations &&
				len(pending) >= minKeep {
				drop[i] = true // budget exhausted: never evaluated
				continue
			} else {
				memo.res[lk] = Result{} // reserve so duplicates dedupe
				pending = append(pending, i)
			}
			memo.full[fk] = struct{}{}
		}
		st.Evaluations += len(pending)
		memo.evals += len(pending)
		results := make([]Result, len(pending))
		run := func(j int) { results[j] = opts.Eval(cfgs[pending[j]]) }
		if opts.Parallel {
			pool.ForEach(len(pending), run)
		} else {
			for j := range pending {
				run(j)
			}
		}
		for j, i := range pending {
			memo.res[keys[i]] = results[j]
		}
		out := make([]individual, 0, len(cfgs))
		for i, c := range cfgs {
			if drop[i] {
				continue
			}
			out = append(out, individual{cfg: c, res: memo.res[keys[i]]})
		}
		return out
	}

	// Initial population: the default config, any carried survivors, then
	// random draws, so the search always starts from a sane
	// polyalgorithm-free baseline.
	seedCfgs := make([]*choice.Config, 0, opts.Population)
	seedCfgs = append(seedCfgs, opts.Space.DefaultConfig())
	for _, c := range opts.seedPop {
		if len(seedCfgs) < opts.Population {
			seedCfgs = append(seedCfgs, c)
		}
	}
	for len(seedCfgs) < opts.Population {
		seedCfgs = append(seedCfgs, randomCfg())
	}
	pop := evalAll(seedCfgs, 1)
	sortPop(pop, opts)

	bestSoFar := pop[0]
	stall := 0
	for gen := 0; gen < opts.Generations; gen++ {
		if opts.MaxEvaluations > 0 && memo.evals >= opts.MaxEvaluations {
			break
		}
		st.Generations++
		// Build the offspring pool.
		nOff := opts.Population - opts.Elites
		offspring := make([]*choice.Config, 0, nOff)
		for i := 0; i < opts.Immigrants; i++ {
			offspring = append(offspring, randomCfg())
		}
		for len(offspring) < nOff {
			a := tournament(pop, opts, r)
			if r.Coin(opts.CrossoverRate) {
				b := tournament(pop, opts, r)
				child := opts.Space.CrossoverWith(pop[a].cfg, pop[b].cfg, r, xo)
				offspring = append(offspring, opts.Space.MutateWith(child, r, mo))
			} else {
				offspring = append(offspring, opts.Space.MutateWith(pop[a].cfg, r, mo))
			}
		}
		evaluated := evalAll(offspring, 0)
		// Elitism: keep the best Elites from the previous generation.
		elite := opts.Elites
		if elite > len(pop) {
			elite = len(pop)
		}
		next := make([]individual, 0, opts.Population)
		next = append(next, pop[:elite]...)
		next = append(next, evaluated...)
		pop = next
		sortPop(pop, opts)
		if len(pop) > opts.Population {
			pop = pop[:opts.Population]
		}
		if better(pop[0], bestSoFar, opts.RequireAccuracy, opts.AccuracyTarget) {
			bestSoFar = pop[0]
			stall = 0
		} else {
			stall++
			if opts.Stall > 0 && stall >= opts.Stall {
				break
			}
		}
	}

	best := pop[0]
	st.BestTime = best.res.Time
	st.BestAcc = best.res.Accuracy
	st.Feasible = !opts.RequireAccuracy || best.res.Accuracy >= opts.AccuracyTarget
	return pop, st
}

// sortPop orders the population best-first under the lexicographic
// comparator. The sort is stable, so individuals tied on (time, accuracy)
// keep their insertion order — elites before offspring, earlier offspring
// first — making elite survival deterministic across Go releases.
func sortPop(pop []individual, opts Options) {
	sort.SliceStable(pop, func(i, j int) bool {
		return better(pop[i], pop[j], opts.RequireAccuracy, opts.AccuracyTarget)
	})
}

// tournament returns the index of the winner of a k-way tournament.
func tournament(pop []individual, opts Options, r *rng.RNG) int {
	best := r.Intn(len(pop))
	for i := 1; i < opts.Tournament; i++ {
		c := r.Intn(len(pop))
		if better(pop[c], pop[best], opts.RequireAccuracy, opts.AccuracyTarget) {
			best = c
		}
	}
	return best
}
