package autotuner

import (
	"sort"

	"inputtune/internal/choice"
	"inputtune/internal/engine"
	"inputtune/internal/rng"
)

// Result is one evaluation of a configuration on the training input: the
// virtual execution time and (for variable-accuracy programs) the achieved
// accuracy.
type Result struct {
	Time     float64
	Accuracy float64
}

// EvalFunc evaluates a configuration. It must be deterministic: the tuner
// may evaluate candidates concurrently, and it memoizes results by
// configuration fingerprint (choice.Config.Key), so a structurally
// identical genome is never evaluated twice within one run.
type EvalFunc func(cfg *choice.Config) Result

// NoImmigrants disables the per-generation injection of random
// configurations. The zero value of Options.Immigrants selects the default
// (2), so disabling immigration needs an explicit sentinel.
const NoImmigrants = -1

// Options configures a tuning run. Zero values select the documented
// defaults.
type Options struct {
	Space *choice.Space
	Eval  EvalFunc

	// RequireAccuracy enables the dual objective: candidates whose accuracy
	// is below AccuracyTarget are dominated by any candidate meeting it.
	RequireAccuracy bool
	AccuracyTarget  float64

	Population  int // default 24
	Generations int // default 24
	Elites      int // default 4
	Tournament  int // default 3
	// Immigrants is the number of random configs injected per generation.
	// 0 selects the default (2); pass NoImmigrants to disable immigration.
	Immigrants int
	Seed       uint64 // RNG seed; runs are deterministic per seed
	// Parallel evaluates offspring concurrently on the shared engine
	// pool, which keeps nested parallel loops (the caller's per-landmark
	// loop outside, generations inside) from oversubscribing GOMAXPROCS.
	Parallel bool
}

func (o *Options) setDefaults() {
	if o.Population <= 0 {
		o.Population = 24
	}
	if o.Generations <= 0 {
		o.Generations = 24
	}
	if o.Elites <= 0 {
		o.Elites = 4
	}
	if o.Elites >= o.Population {
		o.Elites = o.Population - 1
	}
	if o.Tournament <= 0 {
		o.Tournament = 3
	}
	if o.Immigrants == 0 {
		o.Immigrants = 2
	}
	if o.Immigrants < 0 { // NoImmigrants (or any negative): disable
		o.Immigrants = 0
	}
	if o.Immigrants > o.Population-o.Elites {
		o.Immigrants = o.Population - o.Elites
	}
}

// Stats summarises a tuning run.
type Stats struct {
	// Evaluations counts actual EvalFunc invocations (unique genomes).
	Evaluations int
	// CacheHits counts genome evaluations answered by the in-run memo
	// instead of EvalFunc; Evaluations+CacheHits is the requested total.
	CacheHits   int
	Generations int
	BestTime    float64
	BestAcc     float64
	// Feasible reports whether the returned best met the accuracy target
	// (always true when RequireAccuracy is false).
	Feasible bool
}

type individual struct {
	cfg *choice.Config
	res Result
}

// better reports whether a beats b under the lexicographic dual objective.
func better(a, b individual, requireAcc bool, target float64) bool {
	if requireAcc {
		af, bf := a.res.Accuracy >= target, b.res.Accuracy >= target
		if af != bf {
			return af
		}
		if !af {
			// Both infeasible: higher accuracy wins, time breaks ties.
			if a.res.Accuracy != b.res.Accuracy {
				return a.res.Accuracy > b.res.Accuracy
			}
			return a.res.Time < b.res.Time
		}
	}
	return a.res.Time < b.res.Time
}

// Tune runs the evolutionary search and returns the best configuration
// found plus run statistics.
func Tune(opts Options) (*choice.Config, Stats) {
	opts.setDefaults()
	if opts.Space == nil || opts.Eval == nil {
		panic("autotuner: Space and Eval are required")
	}
	r := rng.New(opts.Seed)
	var st Stats
	pool := engine.Default()

	// memo holds every result of this run keyed by genome fingerprint, so
	// duplicate genomes (no-op mutations, re-bred crossovers, converged
	// populations) cost a map lookup instead of a program run. EvalFunc is
	// deterministic, so memoized results are bit-identical to re-runs.
	memo := make(map[string]Result)
	evalAll := func(cfgs []*choice.Config) []individual {
		keys := make([]string, len(cfgs))
		var pending []int // first occurrence of each un-memoized genome
		for i, c := range cfgs {
			keys[i] = c.Key()
			if _, ok := memo[keys[i]]; !ok {
				memo[keys[i]] = Result{} // reserve so duplicates dedupe
				pending = append(pending, i)
			} else {
				st.CacheHits++
			}
		}
		st.Evaluations += len(pending)
		results := make([]Result, len(pending))
		run := func(j int) { results[j] = opts.Eval(cfgs[pending[j]]) }
		if opts.Parallel {
			pool.ForEach(len(pending), run)
		} else {
			for j := range pending {
				run(j)
			}
		}
		for j, i := range pending {
			memo[keys[i]] = results[j]
		}
		out := make([]individual, len(cfgs))
		for i, c := range cfgs {
			out[i] = individual{cfg: c, res: memo[keys[i]]}
		}
		return out
	}

	// Initial population: the default config plus random draws, so the
	// search always starts from a sane polyalgorithm-free baseline.
	seedCfgs := make([]*choice.Config, opts.Population)
	seedCfgs[0] = opts.Space.DefaultConfig()
	for i := 1; i < opts.Population; i++ {
		seedCfgs[i] = opts.Space.RandomConfig(r)
	}
	pop := evalAll(seedCfgs)
	sortPop(pop, opts)

	for gen := 0; gen < opts.Generations; gen++ {
		st.Generations++
		// Build the offspring pool.
		nOff := opts.Population - opts.Elites
		offspring := make([]*choice.Config, 0, nOff)
		for i := 0; i < opts.Immigrants; i++ {
			offspring = append(offspring, opts.Space.RandomConfig(r))
		}
		for len(offspring) < nOff {
			a := tournament(pop, opts, r)
			if r.Coin(0.4) {
				b := tournament(pop, opts, r)
				child := opts.Space.Crossover(pop[a].cfg, pop[b].cfg, r)
				offspring = append(offspring, opts.Space.Mutate(child, r))
			} else {
				offspring = append(offspring, opts.Space.Mutate(pop[a].cfg, r))
			}
		}
		evaluated := evalAll(offspring)
		// Elitism: keep the best Elites from the previous generation.
		next := make([]individual, 0, opts.Population)
		next = append(next, pop[:opts.Elites]...)
		next = append(next, evaluated...)
		pop = next
		sortPop(pop, opts)
		pop = pop[:opts.Population]
	}

	best := pop[0]
	st.BestTime = best.res.Time
	st.BestAcc = best.res.Accuracy
	st.Feasible = !opts.RequireAccuracy || best.res.Accuracy >= opts.AccuracyTarget
	return best.cfg, st
}

// sortPop orders the population best-first under the lexicographic
// comparator. The sort is stable, so individuals tied on (time, accuracy)
// keep their insertion order — elites before offspring, earlier offspring
// first — making elite survival deterministic across Go releases.
func sortPop(pop []individual, opts Options) {
	sort.SliceStable(pop, func(i, j int) bool {
		return better(pop[i], pop[j], opts.RequireAccuracy, opts.AccuracyTarget)
	})
}

// tournament returns the index of the winner of a k-way tournament.
func tournament(pop []individual, opts Options, r *rng.RNG) int {
	best := r.Intn(len(pop))
	for i := 1; i < opts.Tournament; i++ {
		c := r.Intn(len(pop))
		if better(pop[c], pop[best], opts.RequireAccuracy, opts.AccuracyTarget) {
			best = c
		}
	}
	return best
}
