// Package autotuner implements the evolutionary configuration search the
// two-level learner invokes once per input cluster (Level 1, Step 3 of
// the paper). It is a steady-state genetic algorithm over choice.Config
// genomes: tournament selection, structural mutation and crossover from
// the choice package, elitism, and a lexicographic fitness that puts
// accuracy feasibility ahead of execution time — the paper's
// variable-accuracy dual objective. When the accuracy target is
// unreachable on the tuning samples, the infeasible path maximises
// accuracy instead, which is exactly the behaviour the safety landmark
// relies on.
//
// Each run memoizes duplicate genomes by Config.Key (Stats.CacheHits), on
// top of the cross-run engine.Cache its Eval callback usually measures
// through, and evaluates generations on the shared engine.Pool when
// Options.Parallel is set. RandomSearch and HillClimb are the
// equal-budget baseline strategies behind the tuner ablation
// (BenchmarkTunerStrategies).
package autotuner
