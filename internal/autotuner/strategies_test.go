package autotuner

import (
	"testing"

	"inputtune/internal/choice"
)

func TestRandomSearchFindsReasonableConfig(t *testing.T) {
	sp := toySpace()
	cfg, st := RandomSearch(Options{Space: sp, Eval: toyEval, Seed: 1}, 400)
	if st.Evaluations != 400 {
		t.Fatalf("evaluations = %d", st.Evaluations)
	}
	if res := toyEval(cfg); res.Time > 250 {
		t.Fatalf("random search time %v too far from optimum 100", res.Time)
	}
	if err := sp.Validate(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHillClimbImprovesOnDefault(t *testing.T) {
	sp := toySpace()
	defaultRes := toyEval(sp.DefaultConfig())
	cfg, st := HillClimb(Options{Space: sp, Eval: toyEval, Seed: 2}, 400, 15)
	if st.Evaluations > 401 {
		t.Fatalf("budget exceeded: %d", st.Evaluations)
	}
	got := toyEval(cfg)
	if got.Time >= defaultRes.Time {
		t.Fatalf("hill climb (%v) no better than default (%v)", got.Time, defaultRes.Time)
	}
	if err := sp.Validate(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStrategiesDeterministic(t *testing.T) {
	sp := toySpace()
	a, _ := RandomSearch(Options{Space: sp, Eval: toyEval, Seed: 5}, 100)
	b, _ := RandomSearch(Options{Space: sp, Eval: toyEval, Seed: 5}, 100)
	if a.String() != b.String() {
		t.Fatal("random search nondeterministic")
	}
	c, _ := HillClimb(Options{Space: sp, Eval: toyEval, Seed: 5}, 100, 10)
	d, _ := HillClimb(Options{Space: sp, Eval: toyEval, Seed: 5}, 100, 10)
	if c.String() != d.String() {
		t.Fatal("hill climb nondeterministic")
	}
}

func TestStrategiesRespectAccuracy(t *testing.T) {
	sp := choice.NewSpace()
	sp.AddFloat("iters", 0, 10, 0)
	eval := func(cfg *choice.Config) Result {
		it := cfg.Float(0)
		return Result{Time: 10 + it, Accuracy: it / 10}
	}
	opts := Options{Space: sp, Eval: eval, Seed: 3, RequireAccuracy: true, AccuracyTarget: 0.9}
	for name, run := range map[string]func() (*choice.Config, Stats){
		"random": func() (*choice.Config, Stats) { return RandomSearch(opts, 300) },
		"hill":   func() (*choice.Config, Stats) { return HillClimb(opts, 300, 15) },
	} {
		cfg, st := run()
		if !st.Feasible {
			t.Fatalf("%s: no feasible config found", name)
		}
		if got := cfg.Float(0); got < 9 {
			t.Fatalf("%s: iters %v below feasibility", name, got)
		}
	}
}

// On the multimodal toy problem, the evolutionary tuner should match or
// beat random search at equal budgets (the paper's premise that structured
// search pays off).
func TestEvolutionCompetitiveWithRandom(t *testing.T) {
	sp := toySpace()
	budget := 0
	evalCounted := func(cfg *choice.Config) Result {
		budget++
		return toyEval(cfg)
	}
	tuned, _ := Tune(Options{Space: sp, Eval: evalCounted, Seed: 7, Population: 20, Generations: 14})
	usedBudget := budget
	randomCfg, _ := RandomSearch(Options{Space: sp, Eval: toyEval, Seed: 7}, usedBudget)
	tt, rt := toyEval(tuned).Time, toyEval(randomCfg).Time
	// Allow slack: on this small space random can get lucky, but evolution
	// must not be drastically worse.
	if tt > rt*1.5 {
		t.Fatalf("evolution (%v) much worse than random search (%v) at budget %d", tt, rt, usedBudget)
	}
}
