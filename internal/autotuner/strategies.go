package autotuner

import (
	"inputtune/internal/choice"
	"inputtune/internal/rng"
)

// Alternative search strategies under the same evaluation budget as Tune.
// The paper relies on PetaBricks' evolutionary search and argues that
// search beats modelling in these spaces; RandomSearch and HillClimb are
// the standard baselines that claim is measured against (see
// BenchmarkTunerStrategies).

// RandomSearch draws budget random configurations and keeps the best under
// the same lexicographic objective as Tune.
func RandomSearch(opts Options, budget int) (*choice.Config, Stats) {
	opts.setDefaults()
	if opts.Space == nil || opts.Eval == nil {
		panic("autotuner: Space and Eval are required")
	}
	if budget <= 0 {
		budget = opts.Population * (opts.Generations + 1)
	}
	r := rng.New(opts.Seed)
	var st Stats
	best := individual{cfg: opts.Space.DefaultConfig()}
	best.res = opts.Eval(best.cfg)
	st.Evaluations++
	for i := 1; i < budget; i++ {
		cand := individual{cfg: opts.Space.RandomConfig(r)}
		cand.res = opts.Eval(cand.cfg)
		st.Evaluations++
		if better(cand, best, opts.RequireAccuracy, opts.AccuracyTarget) {
			best = cand
		}
	}
	st.BestTime = best.res.Time
	st.BestAcc = best.res.Accuracy
	st.Feasible = !opts.RequireAccuracy || best.res.Accuracy >= opts.AccuracyTarget
	return best.cfg, st
}

// HillClimb runs a (1+1) evolution strategy: repeatedly mutate the
// incumbent and keep the mutant when it is better, restarting from a
// random configuration after `patience` consecutive rejections.
func HillClimb(opts Options, budget, patience int) (*choice.Config, Stats) {
	opts.setDefaults()
	if opts.Space == nil || opts.Eval == nil {
		panic("autotuner: Space and Eval are required")
	}
	if budget <= 0 {
		budget = opts.Population * (opts.Generations + 1)
	}
	if patience <= 0 {
		patience = 20
	}
	r := rng.New(opts.Seed)
	var st Stats
	cur := individual{cfg: opts.Space.DefaultConfig()}
	cur.res = opts.Eval(cur.cfg)
	st.Evaluations++
	best := cur
	rejected := 0
	for st.Evaluations < budget {
		var cand individual
		if rejected >= patience {
			cand = individual{cfg: opts.Space.RandomConfig(r)}
			rejected = 0
		} else {
			cand = individual{cfg: opts.Space.Mutate(cur.cfg, r)}
		}
		cand.res = opts.Eval(cand.cfg)
		st.Evaluations++
		if better(cand, cur, opts.RequireAccuracy, opts.AccuracyTarget) {
			cur = cand
			rejected = 0
			if better(cur, best, opts.RequireAccuracy, opts.AccuracyTarget) {
				best = cur
			}
		} else {
			rejected++
		}
	}
	st.BestTime = best.res.Time
	st.BestAcc = best.res.Accuracy
	st.Feasible = !opts.RequireAccuracy || best.res.Accuracy >= opts.AccuracyTarget
	return best.cfg, st
}
