// Package choice models the PetaBricks configuration space: either…or
// algorithmic choice sites decided at run time by size-threshold selectors
// (the "decision trees" of Figure 2 in the paper), plus scalar tunables
// such as cutoffs, iteration counts and feature-extractor sampling levels.
//
// A Space describes what can be configured; a Config is one point in that
// space. Configs are what the evolutionary autotuner breeds (genetic.go
// supplies the structural mutation and crossover operators) and what the
// two-level learner stores as landmark configurations.
//
// Config.Key() is the injective fingerprint of a configuration — a
// canonical binary encoding of selectors plus quantized tunable values,
// so equal keys hold exactly for structurally identical configurations.
// It is the config half of every engine.Cache measurement key; the
// sub-run solver memo (engine.Memo) deliberately keys on LESS — only the
// parameters the selected solver actually reads — which is how genomes
// that differ only in irrelevant tunables share memoized work the full
// fingerprint would keep apart.
package choice
