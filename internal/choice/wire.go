package choice

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary Config codec: the same injective layout Key() fingerprints —
// uvarint-counted selectors (each a uvarint-counted level list of varint
// cutoff/choice pairs plus a varint else-choice) followed by a
// uvarint-counted value list of big-endian float64 bits — packaged as a
// readable/appendable wire encoding. A decoded config is structurally
// identical to the encoded one: Key() round-trips bit-exactly, which is
// what lets a binary Decision response carry the selected landmark
// losslessly.

// maxConfigElems bounds decoded slice lengths so a hostile frame cannot
// make the decoder allocate unboundedly. Real spaces have a handful of
// sites and tunables.
const maxConfigElems = 1 << 16

// AppendBinary appends c's binary encoding to buf and returns the
// extended slice.
func (c *Config) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(c.Selectors)))
	for _, sel := range c.Selectors {
		buf = binary.AppendUvarint(buf, uint64(len(sel.Levels)))
		for _, l := range sel.Levels {
			buf = binary.AppendVarint(buf, int64(l.Cutoff))
			buf = binary.AppendVarint(buf, int64(l.Choice))
		}
		buf = binary.AppendVarint(buf, int64(sel.Else))
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.Values)))
	for _, v := range c.Values {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeConfig reads one binary-encoded Config from r.
func DecodeConfig(r io.ByteReader) (*Config, error) {
	nSel, err := readCount(r, "selector")
	if err != nil {
		return nil, err
	}
	c := &Config{Selectors: make([]Selector, nSel)}
	for i := range c.Selectors {
		nLev, err := readCount(r, "level")
		if err != nil {
			return nil, err
		}
		sel := &c.Selectors[i]
		if nLev > 0 {
			sel.Levels = make([]Level, nLev)
		}
		for j := range sel.Levels {
			cutoff, err := binary.ReadVarint(r)
			if err != nil {
				return nil, fmt.Errorf("choice: decoding cutoff: %w", err)
			}
			ch, err := binary.ReadVarint(r)
			if err != nil {
				return nil, fmt.Errorf("choice: decoding choice: %w", err)
			}
			sel.Levels[j] = Level{Cutoff: int(cutoff), Choice: int(ch)}
		}
		els, err := binary.ReadVarint(r)
		if err != nil {
			return nil, fmt.Errorf("choice: decoding else-choice: %w", err)
		}
		sel.Else = int(els)
	}
	nVal, err := readCount(r, "value")
	if err != nil {
		return nil, err
	}
	if nVal > 0 {
		c.Values = make([]float64, nVal)
	}
	var word [8]byte
	for i := range c.Values {
		for k := range word {
			b, err := r.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("choice: decoding value: %w", err)
			}
			word[k] = b
		}
		c.Values[i] = math.Float64frombits(binary.BigEndian.Uint64(word[:]))
	}
	return c, nil
}

// readCount reads a uvarint element count and bounds it.
func readCount(r io.ByteReader, what string) (int, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("choice: decoding %s count: %w", what, err)
	}
	if n > maxConfigElems {
		return 0, fmt.Errorf("choice: %s count %d exceeds limit %d", what, n, maxConfigElems)
	}
	return int(n), nil
}
