package choice

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"inputtune/internal/rng"
)

func sortSpace() *Space {
	s := NewSpace()
	s.AddSite("sort", "insertion", "quick", "merge", "radix", "bitonic")
	s.AddInt("mergeWays", 2, 16, 2)
	s.AddFloat("samplingLevel", 0, 1, 0.5)
	return s
}

func TestAddAndLookup(t *testing.T) {
	s := sortSpace()
	if i := s.SiteIndex("sort"); i != 0 {
		t.Fatalf("SiteIndex = %d", i)
	}
	if i := s.SiteIndex("nope"); i != -1 {
		t.Fatalf("missing site index = %d", i)
	}
	if i := s.TunableIndex("mergeWays"); i != 0 {
		t.Fatalf("TunableIndex = %d", i)
	}
	if i := s.TunableIndex("nope"); i != -1 {
		t.Fatalf("missing tunable index = %d", i)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	s := sortSpace()
	c := s.DefaultConfig()
	if err := s.Validate(c); err != nil {
		t.Fatal(err)
	}
	if c.Int(0) != 2 {
		t.Fatalf("default int = %d", c.Int(0))
	}
	if c.Float(1) != 0.5 {
		t.Fatalf("default float = %v", c.Float(1))
	}
	// Default selector always picks alternative 0.
	for _, n := range []int{1, 100, 1 << 19} {
		if got := c.Decide(0, n); got != 0 {
			t.Fatalf("default Decide(%d) = %d", n, got)
		}
	}
}

func TestSelectorDecide(t *testing.T) {
	sel := Selector{
		Levels: []Level{{Cutoff: 600, Choice: 0}, {Cutoff: 1420, Choice: 1}},
		Else:   2,
	}
	// Mirrors Figure 2: insertion < 600, quick < 1420, else merge.
	cases := map[int]int{10: 0, 599: 0, 600: 1, 1419: 1, 1420: 2, 100000: 2}
	for n, want := range cases {
		if got := sel.Decide(n); got != want {
			t.Fatalf("Decide(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRandomConfigAlwaysValid(t *testing.T) {
	s := sortSpace()
	r := rng.New(42)
	for i := 0; i < 500; i++ {
		c := s.RandomConfig(r)
		if err := s.Validate(c); err != nil {
			t.Fatalf("random config %d invalid: %v\n%s", i, err, c)
		}
	}
}

func TestMutatePreservesValidity(t *testing.T) {
	s := sortSpace()
	r := rng.New(7)
	c := s.RandomConfig(r)
	for i := 0; i < 2000; i++ {
		c = s.Mutate(c, r)
		if err := s.Validate(c); err != nil {
			t.Fatalf("mutation %d produced invalid config: %v\n%s", i, err, c)
		}
	}
}

func TestMutateDoesNotAliasParent(t *testing.T) {
	s := sortSpace()
	r := rng.New(11)
	parent := s.RandomConfig(r)
	snapshot := parent.String()
	for i := 0; i < 100; i++ {
		_ = s.Mutate(parent, r)
	}
	if parent.String() != snapshot {
		t.Fatal("Mutate modified its input")
	}
}

func TestCrossoverPreservesValidity(t *testing.T) {
	s := sortSpace()
	r := rng.New(13)
	for i := 0; i < 500; i++ {
		a, b := s.RandomConfig(r), s.RandomConfig(r)
		child := s.Crossover(a, b, r)
		if err := s.Validate(child); err != nil {
			t.Fatalf("crossover %d invalid: %v", i, err)
		}
	}
}

func TestMutationEventuallyChangesEverything(t *testing.T) {
	s := sortSpace()
	r := rng.New(17)
	c := s.DefaultConfig()
	changedValue, changedSelector := false, false
	base := c.String()
	for i := 0; i < 500 && !(changedValue && changedSelector); i++ {
		c = s.Mutate(c, r)
		if c.Values[0] != 2 || c.Values[1] != 0.5 {
			changedValue = true
		}
		if len(c.Selectors[0].Levels) > 0 || c.Selectors[0].Else != 0 {
			changedSelector = true
		}
	}
	if !changedValue || !changedSelector {
		t.Fatalf("mutation failed to explore: value=%v selector=%v (start %s)", changedValue, changedSelector, base)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := sortSpace()
	r := rng.New(19)
	orig := s.RandomConfig(r)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != orig.String() {
		t.Fatalf("round trip mismatch:\n%s\n%s", orig, &back)
	}
	if err := s.Validate(&back); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := sortSpace()
	r := rng.New(23)
	cases := []func(c *Config){
		func(c *Config) { c.Values[0] = 99999 },
		func(c *Config) { c.Selectors[0].Else = 17 },
		func(c *Config) {
			c.Selectors[0].Levels = []Level{{Cutoff: 100, Choice: 0}, {Cutoff: 100, Choice: 1}}
		},
		func(c *Config) { c.Selectors[0].Levels = []Level{{Cutoff: 1, Choice: 0}} },
		func(c *Config) { c.Selectors = c.Selectors[:0] },
		func(c *Config) { c.Values = append(c.Values, 1) },
		func(c *Config) {
			c.Selectors[0].Levels = []Level{{Cutoff: 10, Choice: -1}}
		},
	}
	for i, corrupt := range cases {
		c := s.RandomConfig(r)
		corrupt(c)
		if err := s.Validate(c); err == nil {
			t.Fatalf("corruption %d not caught", i)
		}
	}
}

func TestSelectorNormalize(t *testing.T) {
	sel := Selector{
		Levels: []Level{{Cutoff: 5000, Choice: 1}, {Cutoff: 10, Choice: 9}, {Cutoff: 10, Choice: 2}, {Cutoff: 0, Choice: 0}},
		Else:   -3,
	}
	sel.normalize(3, 1<<20, 3)
	if len(sel.Levels) > 3 {
		t.Fatalf("normalize kept %d levels", len(sel.Levels))
	}
	prev := -1
	for _, l := range sel.Levels {
		if l.Cutoff <= prev {
			t.Fatalf("normalize left unsorted cutoffs: %+v", sel.Levels)
		}
		prev = l.Cutoff
		if l.Choice < 0 || l.Choice > 2 {
			t.Fatalf("normalize left bad choice: %+v", l)
		}
	}
	if sel.Else != 0 {
		t.Fatalf("normalize else = %d", sel.Else)
	}
}

func TestSizeDescription(t *testing.T) {
	s := sortSpace()
	desc := s.SizeDescription()
	if !strings.HasPrefix(desc, "~10^") {
		t.Fatalf("SizeDescription = %q", desc)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := sortSpace()
	r := rng.New(29)
	a := s.RandomConfig(r)
	b := a.Clone()
	if len(a.Selectors[0].Levels) > 0 {
		b.Selectors[0].Levels[0].Cutoff++
		if a.Selectors[0].Levels[0].Cutoff == b.Selectors[0].Levels[0].Cutoff {
			t.Fatal("clone shares level storage")
		}
	}
	b.Values[0]++
	if a.Values[0] == b.Values[0] {
		t.Fatal("clone shares value storage")
	}
}

func TestRandomCutoffRangeProperty(t *testing.T) {
	s := sortSpace()
	r := rng.New(31)
	check := func(_ uint8) bool {
		c := s.randomCutoff(r)
		return c >= 2 && c <= s.MaxCutoff
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateSpaces(t *testing.T) {
	s := NewSpace()
	s.AddSite("only", "sole")
	r := rng.New(37)
	c := s.RandomConfig(r)
	for i := 0; i < 50; i++ {
		c = s.Mutate(c, r)
		if err := s.Validate(c); err != nil {
			t.Fatal(err)
		}
		if c.Decide(0, 100) != 0 {
			t.Fatal("single-alternative site must always pick 0")
		}
	}
	empty := NewSpace()
	ec := empty.DefaultConfig()
	ec2 := empty.Mutate(ec, r) // no-op but must not panic
	if err := empty.Validate(ec2); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorDescribe(t *testing.T) {
	sel := Selector{
		Levels: []Level{{Cutoff: 600, Choice: 0}, {Cutoff: 1420, Choice: 1}},
		Else:   2,
	}
	got := sel.Describe([]string{"InsertionSort", "QuickSort", "MergeSort"})
	want := "n<600: InsertionSort; n<1420: QuickSort; else: MergeSort"
	if got != want {
		t.Fatalf("Describe = %q, want %q", got, want)
	}
	// Out-of-range alternative indices degrade gracefully.
	if got := (&Selector{Else: 9}).Describe(nil); got != "else: alt9" {
		t.Fatalf("degraded Describe = %q", got)
	}
}

func TestDescribeConfig(t *testing.T) {
	s := sortSpace()
	c := s.DefaultConfig()
	got := s.DescribeConfig(c)
	for _, want := range []string{"sort{", "else: insertion", "mergeWays=2", "samplingLevel=0.5"} {
		if !strings.Contains(got, want) {
			t.Fatalf("DescribeConfig = %q missing %q", got, want)
		}
	}
}

// TestConfigKeyUniqueness draws 10k random configurations and checks the
// fingerprint is collision-free: equal keys only for structurally equal
// configs. The encoding is injective, so any collision is a bug.
func TestConfigKeyUniqueness(t *testing.T) {
	s := sortSpace()
	r := rng.New(77)
	seen := make(map[string]string, 10000)
	configs := 0
	for i := 0; i < 10000; i++ {
		c := s.RandomConfig(r)
		key := c.Key()
		repr := c.String()
		if prev, ok := seen[key]; ok {
			if prev != repr {
				t.Fatalf("fingerprint collision:\n%s\n%s", prev, repr)
			}
			continue // genuinely identical random draw
		}
		seen[key] = repr
		configs++
	}
	if configs < 9000 {
		t.Fatalf("only %d distinct configs in 10k draws; space too small for the test", configs)
	}
}

func TestConfigKeyStability(t *testing.T) {
	s := sortSpace()
	r := rng.New(3)
	c := s.RandomConfig(r)
	if c.Key() != c.Key() {
		t.Fatal("Key not stable across calls")
	}
	if c.Clone().Key() != c.Key() {
		t.Fatal("clone fingerprint differs from original")
	}
	// Any structural change must change the key.
	d := c.Clone()
	d.Selectors[0].Else = (d.Selectors[0].Else + 1) % len(s.Sites[0].Alternatives)
	if d.Key() == c.Key() {
		t.Fatal("else-branch change did not change the key")
	}
	e := c.Clone()
	e.Values[0]++
	if e.Key() == c.Key() {
		t.Fatal("tunable change did not change the key")
	}
}

func TestConfigKeyQuantizedEquivalence(t *testing.T) {
	s := sortSpace()
	a := s.DefaultConfig()
	b := s.DefaultConfig()
	// Integer tunables are stored quantized, so two configs reached via
	// different float intermediates fingerprint identically.
	b.Values[0] = s.Tunables[0].quantize(b.Values[0] + 0.3)
	if a.Key() != b.Key() {
		t.Fatal("quantized-equal configs have different keys")
	}
}
