package choice

import (
	"bytes"
	"io"
	"testing"

	"inputtune/internal/rng"
)

// testSpace builds a space with a couple of sites and mixed tunables.
func testSpace() *Space {
	s := NewSpace()
	s.AddSite("solver", "a", "b", "c", "d", "e")
	s.AddSite("order", "x", "y")
	s.AddInt("iters", 1, 300, 60)
	s.AddFloat("omega", 1.0, 1.95, 1.5)
	return s
}

// TestConfigBinaryRoundTrip: decode(encode(c)) is structurally identical
// to c — enforced via Key(), whose injectivity makes it a sound equality
// oracle — across random configurations.
func TestConfigBinaryRoundTrip(t *testing.T) {
	s := testSpace()
	r := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		c := s.RandomConfig(r)
		enc := c.AppendBinary(nil)
		rest := enc
		got, err := DecodeConfig(&sliceReader{b: &rest})
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(rest) != 0 {
			t.Fatalf("trial %d: %d trailing bytes", trial, len(rest))
		}
		if got.Key() != c.Key() {
			t.Fatalf("trial %d: round trip changed config:\n in: %s\nout: %s", trial, c, got)
		}
		if err := s.Validate(got); err != nil {
			t.Fatalf("trial %d: decoded config invalid: %v", trial, err)
		}
	}
}

// TestConfigBinaryMatchesKey: the binary encoding IS the Key() encoding,
// byte for byte, so the two can never drift apart.
func TestConfigBinaryMatchesKey(t *testing.T) {
	s := testSpace()
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		c := s.RandomConfig(r)
		if !bytes.Equal(c.AppendBinary(nil), []byte(c.Key())) {
			t.Fatalf("trial %d: AppendBinary and Key diverge", trial)
		}
	}
}

// TestConfigBinaryTruncated: every strict prefix of a valid encoding
// fails to decode (never succeeds with wrong content or panics).
func TestConfigBinaryTruncated(t *testing.T) {
	s := testSpace()
	c := s.RandomConfig(rng.New(3))
	enc := c.AppendBinary(nil)
	for cut := 0; cut < len(enc); cut++ {
		rest := enc[:cut]
		if _, err := DecodeConfig(&sliceReader{b: &rest}); err == nil && cut < len(enc) {
			// A prefix can only decode successfully if it happens to form a
			// complete encoding, which the injective layout rules out.
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(enc))
		}
	}
}

type sliceReader struct{ b *[]byte }

func (s *sliceReader) ReadByte() (byte, error) {
	b := *s.b
	if len(b) == 0 {
		return 0, io.EOF
	}
	*s.b = b[1:]
	return b[0], nil
}
