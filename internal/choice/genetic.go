package choice

import (
	"math"

	"inputtune/internal/rng"
)

// Mutate returns a mutated copy of c. One of several mutation operators is
// applied, mirroring the PetaBricks autotuner's structural mutations:
//
//   - perturb a tunable (log-normal scaling for ints, Gaussian for floats)
//   - reset a tunable uniformly at random
//   - rescale a selector cutoff
//   - change the algorithm chosen at a selector level (or the else branch)
//   - insert a new selector level
//   - delete a selector level
//
// The result is always valid with respect to the space.
func (s *Space) Mutate(c *Config, r *rng.RNG) *Config {
	out := c.Clone()
	// Collect applicable operator ids; weights favour cheap local moves.
	type op struct {
		weight float64
		apply  func()
	}
	var ops []op
	if len(s.Tunables) > 0 {
		ops = append(ops,
			op{3, func() { s.perturbTunable(out, r) }},
			op{1, func() { s.resetTunable(out, r) }},
		)
	}
	if len(s.Sites) > 0 {
		ops = append(ops,
			op{2, func() { s.mutateCutoff(out, r) }},
			op{3, func() { s.mutateChoice(out, r) }},
			op{1, func() { s.insertLevel(out, r) }},
			op{1, func() { s.deleteLevel(out, r) }},
		)
	}
	if len(ops) == 0 {
		return out
	}
	weights := make([]float64, len(ops))
	for i, o := range ops {
		weights[i] = o.weight
	}
	ops[r.Choice(weights)].apply()
	return out
}

func (s *Space) perturbTunable(c *Config, r *rng.RNG) {
	i := r.Intn(len(s.Tunables))
	t := s.Tunables[i]
	v := c.Values[i]
	if t.Kind == IntKind {
		// Multiplicative jitter works across magnitude scales (cutoff-like
		// tunables), with additive fallback near zero.
		factor := math.Exp(r.Norm(0, 0.5))
		nv := v * factor
		if math.Abs(nv-v) < 1 {
			nv = v + float64(r.IntRange(-2, 2))
		}
		c.Values[i] = t.quantize(nv)
	} else {
		span := t.Max - t.Min
		c.Values[i] = t.quantize(v + r.Norm(0, span/10))
	}
}

func (s *Space) resetTunable(c *Config, r *rng.RNG) {
	i := r.Intn(len(s.Tunables))
	t := s.Tunables[i]
	c.Values[i] = t.quantize(r.Range(t.Min, t.Max))
}

func (s *Space) mutateCutoff(c *Config, r *rng.RNG) {
	i := r.Intn(len(s.Sites))
	sel := &c.Selectors[i]
	if len(sel.Levels) == 0 {
		s.insertLevel(c, r)
		return
	}
	l := r.Intn(len(sel.Levels))
	factor := math.Exp(r.Norm(0, 0.7))
	sel.Levels[l].Cutoff = int(float64(sel.Levels[l].Cutoff) * factor)
	if sel.Levels[l].Cutoff < 2 {
		sel.Levels[l].Cutoff = 2
	}
	sel.normalize(s.MaxSelectorLevels, s.MaxCutoff, len(s.Sites[i].Alternatives))
}

func (s *Space) mutateChoice(c *Config, r *rng.RNG) {
	i := r.Intn(len(s.Sites))
	sel := &c.Selectors[i]
	nAlts := len(s.Sites[i].Alternatives)
	if nAlts < 2 {
		return
	}
	// Pick a slot: levels plus the else branch.
	slot := r.Intn(len(sel.Levels) + 1)
	if slot == len(sel.Levels) {
		sel.Else = differentChoice(sel.Else, nAlts, r)
	} else {
		sel.Levels[slot].Choice = differentChoice(sel.Levels[slot].Choice, nAlts, r)
	}
}

func differentChoice(cur, n int, r *rng.RNG) int {
	if n < 2 {
		return cur
	}
	nv := r.Intn(n - 1)
	if nv >= cur {
		nv++
	}
	return nv
}

func (s *Space) insertLevel(c *Config, r *rng.RNG) {
	i := r.Intn(len(s.Sites))
	sel := &c.Selectors[i]
	if len(sel.Levels) >= s.MaxSelectorLevels {
		return
	}
	nAlts := len(s.Sites[i].Alternatives)
	sel.Levels = append(sel.Levels, Level{
		Cutoff: s.randomCutoff(r),
		Choice: r.Intn(nAlts),
	})
	sel.normalize(s.MaxSelectorLevels, s.MaxCutoff, nAlts)
}

func (s *Space) deleteLevel(c *Config, r *rng.RNG) {
	i := r.Intn(len(s.Sites))
	sel := &c.Selectors[i]
	if len(sel.Levels) == 0 {
		return
	}
	l := r.Intn(len(sel.Levels))
	sel.Levels = append(sel.Levels[:l], sel.Levels[l+1:]...)
}

// Crossover returns a child combining a and b: uniform crossover over
// selectors (whole-selector granularity) and tunables (blend or pick).
func (s *Space) Crossover(a, b *Config, r *rng.RNG) *Config {
	child := a.Clone()
	for i := range child.Selectors {
		if r.Bool() {
			child.Selectors[i] = Selector{
				Levels: append([]Level(nil), b.Selectors[i].Levels...),
				Else:   b.Selectors[i].Else,
			}
		}
	}
	for i := range child.Values {
		t := s.Tunables[i]
		switch r.Intn(3) {
		case 0: // keep a
		case 1: // take b
			child.Values[i] = b.Values[i]
		default: // blend
			alpha := r.Float64()
			child.Values[i] = t.quantize(alpha*a.Values[i] + (1-alpha)*b.Values[i])
		}
	}
	return child
}
