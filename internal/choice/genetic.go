package choice

import (
	"math"

	"inputtune/internal/rng"
)

// MutationWeights assigns relative frequencies to the six mutation
// operators. The zero value means "use defaults".
type MutationWeights struct {
	PerturbTunable float64
	ResetTunable   float64
	MutateCutoff   float64
	MutateChoice   float64
	InsertLevel    float64
	DeleteLevel    float64
}

// DefaultMutationWeights favours cheap local moves, matching the
// PetaBricks-style tuner's historical mix.
func DefaultMutationWeights() MutationWeights {
	return MutationWeights{
		PerturbTunable: 3, ResetTunable: 1,
		MutateCutoff: 2, MutateChoice: 3,
		InsertLevel: 1, DeleteLevel: 1,
	}
}

func (w MutationWeights) isZero() bool {
	return w == MutationWeights{}
}

// MutateOptions parameterise MutateWith.
type MutateOptions struct {
	// Weights overrides the operator mix; zero value = defaults.
	Weights MutationWeights
	// Flat ignores the dependency graph: tunable operators may touch dead
	// genes, the legacy flat-space behaviour.
	Flat bool
}

// Mutate returns a mutated copy of c with default options. One of several
// mutation operators is applied, mirroring the PetaBricks autotuner's
// structural mutations:
//
//   - perturb a tunable (log-normal scaling for ints, Gaussian for floats)
//   - reset a tunable uniformly at random
//   - rescale a selector cutoff
//   - change the algorithm chosen at a selector level (or the else branch)
//   - insert a new selector level
//   - delete a selector level
//
// When the space carries a dependency graph, the two tunable operators
// only ever touch genes live under c's selectors. The result is always
// valid with respect to the space.
func (s *Space) Mutate(c *Config, r *rng.RNG) *Config {
	return s.MutateWith(c, r, MutateOptions{})
}

// MutateWith is Mutate with an explicit operator mix and flatness flag.
func (s *Space) MutateWith(c *Config, r *rng.RNG, mo MutateOptions) *Config {
	w := mo.Weights
	if w.isZero() {
		w = DefaultMutationWeights()
	}
	out := c.Clone()
	// Restrict tunable operators to the live subspace unless flat.
	tunables := make([]int, 0, len(s.Tunables))
	if !mo.Flat && s.HasDependencies() {
		for i, l := range s.LiveGenes(out) {
			if l {
				tunables = append(tunables, i)
			}
		}
	} else {
		for i := range s.Tunables {
			tunables = append(tunables, i)
		}
	}
	// Collect applicable operator ids; weights favour cheap local moves.
	type op struct {
		weight float64
		apply  func()
	}
	var ops []op
	if len(tunables) > 0 {
		ops = append(ops,
			op{w.PerturbTunable, func() { s.perturbTunable(out, r, tunables) }},
			op{w.ResetTunable, func() { s.resetTunable(out, r, tunables) }},
		)
	}
	if len(s.Sites) > 0 {
		ops = append(ops,
			op{w.MutateCutoff, func() { s.mutateCutoff(out, r) }},
			op{w.MutateChoice, func() { s.mutateChoice(out, r) }},
			op{w.InsertLevel, func() { s.insertLevel(out, r) }},
			op{w.DeleteLevel, func() { s.deleteLevel(out, r) }},
		)
	}
	if len(ops) == 0 {
		return out
	}
	weights := make([]float64, len(ops))
	for i, o := range ops {
		weights[i] = o.weight
	}
	ops[r.Choice(weights)].apply()
	return out
}

func (s *Space) perturbTunable(c *Config, r *rng.RNG, idxs []int) {
	i := idxs[r.Intn(len(idxs))]
	t := s.Tunables[i]
	v := c.Values[i]
	if t.Kind == IntKind {
		// Multiplicative jitter works across magnitude scales (cutoff-like
		// tunables), with additive fallback near zero.
		factor := math.Exp(r.Norm(0, 0.5))
		nv := v * factor
		if math.Abs(nv-v) < 1 {
			nv = v + float64(r.IntRange(-2, 2))
		}
		c.Values[i] = t.quantize(nv)
	} else {
		span := t.Max - t.Min
		c.Values[i] = t.quantize(v + r.Norm(0, span/10))
	}
}

func (s *Space) resetTunable(c *Config, r *rng.RNG, idxs []int) {
	i := idxs[r.Intn(len(idxs))]
	t := s.Tunables[i]
	c.Values[i] = t.quantize(r.Range(t.Min, t.Max))
}

func (s *Space) mutateCutoff(c *Config, r *rng.RNG) {
	i := r.Intn(len(s.Sites))
	sel := &c.Selectors[i]
	if len(sel.Levels) == 0 {
		s.insertLevel(c, r)
		return
	}
	l := r.Intn(len(sel.Levels))
	factor := math.Exp(r.Norm(0, 0.7))
	sel.Levels[l].Cutoff = int(float64(sel.Levels[l].Cutoff) * factor)
	if sel.Levels[l].Cutoff < 2 {
		sel.Levels[l].Cutoff = 2
	}
	sel.normalize(s.MaxSelectorLevels, s.MaxCutoff, len(s.Sites[i].Alternatives))
}

func (s *Space) mutateChoice(c *Config, r *rng.RNG) {
	i := r.Intn(len(s.Sites))
	sel := &c.Selectors[i]
	nAlts := len(s.Sites[i].Alternatives)
	if nAlts < 2 {
		return
	}
	// Pick a slot: levels plus the else branch.
	slot := r.Intn(len(sel.Levels) + 1)
	if slot == len(sel.Levels) {
		sel.Else = differentChoice(sel.Else, nAlts, r)
	} else {
		sel.Levels[slot].Choice = differentChoice(sel.Levels[slot].Choice, nAlts, r)
	}
}

func differentChoice(cur, n int, r *rng.RNG) int {
	if n < 2 {
		return cur
	}
	nv := r.Intn(n - 1)
	if nv >= cur {
		nv++
	}
	return nv
}

func (s *Space) insertLevel(c *Config, r *rng.RNG) {
	i := r.Intn(len(s.Sites))
	sel := &c.Selectors[i]
	if len(sel.Levels) >= s.MaxSelectorLevels {
		return
	}
	nAlts := len(s.Sites[i].Alternatives)
	sel.Levels = append(sel.Levels, Level{
		Cutoff: s.randomCutoff(r),
		Choice: r.Intn(nAlts),
	})
	sel.normalize(s.MaxSelectorLevels, s.MaxCutoff, nAlts)
}

func (s *Space) deleteLevel(c *Config, r *rng.RNG) {
	i := r.Intn(len(s.Sites))
	sel := &c.Selectors[i]
	if len(sel.Levels) == 0 {
		return
	}
	l := r.Intn(len(sel.Levels))
	sel.Levels = append(sel.Levels[:l], sel.Levels[l+1:]...)
}

// CrossoverOptions parameterise CrossoverWith.
type CrossoverOptions struct {
	// Flat ignores the dependency graph (legacy behaviour): tunable
	// recombination draws happen for dead genes too.
	Flat bool
}

// Crossover returns a child combining a and b: uniform crossover over
// selectors (whole-selector granularity) and tunables (blend or pick).
// With a dependency graph, only genes live under the child's recombined
// selectors are recombined; dead genes inherit a's values untouched.
func (s *Space) Crossover(a, b *Config, r *rng.RNG) *Config {
	return s.CrossoverWith(a, b, r, CrossoverOptions{})
}

// CrossoverWith is Crossover with an explicit flatness flag.
func (s *Space) CrossoverWith(a, b *Config, r *rng.RNG, co CrossoverOptions) *Config {
	child := a.Clone()
	for i := range child.Selectors {
		if r.Bool() {
			child.Selectors[i] = Selector{
				Levels: append([]Level(nil), b.Selectors[i].Levels...),
				Else:   b.Selectors[i].Else,
			}
		}
	}
	var live []bool
	if !co.Flat && s.HasDependencies() {
		live = s.LiveGenes(child)
	}
	for i := range child.Values {
		if live != nil && !live[i] {
			continue // dead under the child's selectors: no draw, keep a's gene
		}
		t := s.Tunables[i]
		switch r.Intn(3) {
		case 0: // keep a
		case 1: // take b
			child.Values[i] = b.Values[i]
		default: // blend
			alpha := r.Float64()
			child.Values[i] = t.quantize(alpha*a.Values[i] + (1-alpha)*b.Values[i])
		}
	}
	return child
}
