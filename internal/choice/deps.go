package choice

// Dependency graph between selectors and tunables.
//
// Most choice spaces are not flat: a tunable is usually consulted only when
// its guarding selector actually dispatches to the alternative that reads it
// (SOR's over-relaxation factor is meaningless under a direct solver). A
// program declares these edges with DependsOn; the autotuner then restricts
// mutation, crossover, and random draws to the live subspace, and collapses
// dead-gene variants onto one canonical representative *before* paying an
// evaluation (LiveKey). Spaces without declarations behave exactly as
// before: every gene is always live.

// guard records that a tunable is read only when its site's selector can
// dispatch to one of the flagged alternatives.
type guard struct {
	site int
	alts []bool // indexed by alternative; true = tunable live under it
}

// DependsOn declares that tunable t is read only when site's selector can
// choose one of alts. Repeated calls for the same tunable OR-merge the
// alternatives (a tunable shared by several branches of one site). A
// tunable with no declaration is live under every configuration.
func (s *Space) DependsOn(t, site int, alts ...int) {
	if t < 0 || t >= len(s.Tunables) {
		panic("choice: DependsOn tunable index out of range")
	}
	if site < 0 || site >= len(s.Sites) {
		panic("choice: DependsOn site index out of range")
	}
	if len(alts) == 0 {
		panic("choice: DependsOn needs at least one alternative")
	}
	for len(s.guards) < len(s.Tunables) {
		s.guards = append(s.guards, nil)
	}
	g := s.guards[t]
	if g == nil {
		g = &guard{site: site, alts: make([]bool, len(s.Sites[site].Alternatives))}
		s.guards[t] = g
	} else if g.site != site {
		panic("choice: tunable guarded by two different sites")
	}
	for _, a := range alts {
		if a < 0 || a >= len(g.alts) {
			panic("choice: DependsOn alternative index out of range")
		}
		g.alts[a] = true
	}
}

// HasDependencies reports whether any tunable carries a guard.
func (s *Space) HasDependencies() bool {
	for _, g := range s.guards {
		if g != nil {
			return true
		}
	}
	return false
}

// canonSelector returns sel with redundant levels removed: a level whose
// choice equals the decision immediately after it never changes Decide(n)
// for any n, so it is dropped. Walks last-to-first so chains of equal
// choices collapse fully. The returned selector decides identically to sel
// for every n.
func canonSelector(sel Selector) Selector {
	out := Selector{Levels: append([]Level(nil), sel.Levels...), Else: sel.Else}
	for j := len(out.Levels) - 1; j >= 0; j-- {
		next := out.Else
		if j+1 < len(out.Levels) {
			next = out.Levels[j+1].Choice
		}
		if out.Levels[j].Choice == next {
			out.Levels = append(out.Levels[:j], out.Levels[j+1:]...)
		}
	}
	return out
}

// mentioned returns, per alternative, whether the selector can ever decide
// it (some level chooses it, or it is the else branch).
func mentioned(sel Selector, nAlts int) []bool {
	m := make([]bool, nAlts)
	for _, l := range sel.Levels {
		if l.Choice >= 0 && l.Choice < nAlts {
			m[l.Choice] = true
		}
	}
	if sel.Else >= 0 && sel.Else < nAlts {
		m[sel.Else] = true
	}
	return m
}

// LiveGenes reports, per tunable, whether the gene is live under c: either
// unguarded, or guarded by a site whose selector can reach one of the
// enabling alternatives. Reachability is judged on the canonicalized
// selector so configs that decide identically get identical liveness.
func (s *Space) LiveGenes(c *Config) []bool {
	live := make([]bool, len(s.Tunables))
	var ment map[int][]bool // site -> mentioned alternatives, lazily built
	for i := range s.Tunables {
		if i >= len(s.guards) || s.guards[i] == nil {
			live[i] = true
			continue
		}
		g := s.guards[i]
		if ment == nil {
			ment = make(map[int][]bool)
		}
		m, ok := ment[g.site]
		if !ok {
			m = mentioned(canonSelector(c.Selectors[g.site]), len(s.Sites[g.site].Alternatives))
			ment[g.site] = m
		}
		for a, on := range g.alts {
			if on && a < len(m) && m[a] {
				live[i] = true
				break
			}
		}
	}
	return live
}

// Canonicalize maps c onto the canonical representative of its behavioural
// equivalence class: redundant selector levels are dropped (Decide is
// unchanged for every n) and dead tunables are reset to their quantized
// defaults (they are never read). Two configs that behave identically on
// every input canonicalize to the same representative; the result is a new
// Config and Canonicalize is idempotent.
func (s *Space) Canonicalize(c *Config) *Config {
	out := c.Clone()
	for i := range out.Selectors {
		out.Selectors[i] = canonSelector(out.Selectors[i])
	}
	live := s.LiveGenes(out)
	for i, t := range s.Tunables {
		if !live[i] {
			out.Values[i] = t.quantize(t.Default)
		}
	}
	return out
}

// LiveKey returns the fingerprint of c's canonical representative: equal
// across all dead-gene variants of one behaviour, injective on the live
// subspace (it is a Key of a valid Config, and Key is injective). The
// plain Key() encoding is untouched — wire frames, serve caches, and
// stored artifacts keep their byte layout.
func (s *Space) LiveKey(c *Config) string {
	return s.Canonicalize(c).Key()
}
