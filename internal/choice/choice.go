package choice

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"inputtune/internal/rng"
)

// Site is an either…or statement: a named choice point offering a fixed set
// of algorithm alternatives. Each recursive invocation of the site consults
// the selector in the active Config, so a single Config realises a
// polyalgorithm.
type Site struct {
	Name         string
	Alternatives []string
}

// TunableKind distinguishes integer- and real-valued tunables.
type TunableKind int

const (
	// IntKind tunables take integer values in [Min, Max].
	IntKind TunableKind = iota
	// FloatKind tunables take real values in [Min, Max].
	FloatKind
)

// Tunable is a scalar knob exposed to the autotuner, mirroring the paper's
// `tunable` keyword (e.g. `tunable double level (0.0, 1.0)`).
type Tunable struct {
	Name string
	Kind TunableKind
	Min  float64
	Max  float64
	// Default is the initial value; it is clamped into [Min, Max].
	Default float64
}

// Space is the set of choice sites and tunables of one program.
type Space struct {
	Sites    []Site
	Tunables []Tunable
	// MaxSelectorLevels bounds the decision-list depth (default 3).
	MaxSelectorLevels int
	// MaxCutoff bounds selector thresholds (default 1<<20).
	MaxCutoff int
	// guards holds the selector→tunable dependency graph (see deps.go);
	// nil entries mean the tunable is always live.
	guards []*guard
}

// NewSpace returns an empty space with default limits.
func NewSpace() *Space {
	return &Space{MaxSelectorLevels: 3, MaxCutoff: 1 << 20}
}

// AddSite appends a choice site and returns its index.
func (s *Space) AddSite(name string, alternatives ...string) int {
	if len(alternatives) < 1 {
		panic("choice: site needs at least one alternative")
	}
	s.Sites = append(s.Sites, Site{Name: name, Alternatives: alternatives})
	return len(s.Sites) - 1
}

// AddInt appends an integer tunable and returns its index.
func (s *Space) AddInt(name string, min, max, def int) int {
	if max < min {
		panic("choice: tunable max < min")
	}
	s.Tunables = append(s.Tunables, Tunable{
		Name: name, Kind: IntKind, Min: float64(min), Max: float64(max),
		Default: clamp(float64(def), float64(min), float64(max)),
	})
	return len(s.Tunables) - 1
}

// AddFloat appends a real tunable and returns its index.
func (s *Space) AddFloat(name string, min, max, def float64) int {
	if max < min {
		panic("choice: tunable max < min")
	}
	s.Tunables = append(s.Tunables, Tunable{
		Name: name, Kind: FloatKind, Min: min, Max: max,
		Default: clamp(def, min, max),
	})
	return len(s.Tunables) - 1
}

// SiteIndex returns the index of the named site, or -1.
func (s *Space) SiteIndex(name string) int {
	for i, site := range s.Sites {
		if site.Name == name {
			return i
		}
	}
	return -1
}

// TunableIndex returns the index of the named tunable, or -1.
func (s *Space) TunableIndex(name string) int {
	for i, t := range s.Tunables {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// SizeDescription returns a human-readable magnitude of the search space,
// counting selector structures and discretised tunables.
func (s *Space) SizeDescription() string {
	log10 := 0.0
	for _, site := range s.Sites {
		// Each selector level chooses an alternative and a cutoff.
		levels := float64(s.MaxSelectorLevels)
		log10 += levels * (log10of(float64(len(site.Alternatives))) + log10of(float64(s.MaxCutoff)))
	}
	for _, t := range s.Tunables {
		if t.Kind == IntKind {
			log10 += log10of(t.Max - t.Min + 1)
		} else {
			log10 += 3 // ~1000 discretisation steps
		}
	}
	return fmt.Sprintf("~10^%.0f configurations", log10)
}

func log10of(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log10(x)
}

// Level is one decision-list entry: if n < Cutoff use Choice.
type Level struct {
	Cutoff int `json:"cutoff"`
	Choice int `json:"choice"`
}

// Selector is a PetaBricks-style polyalgorithm selector (Figure 2): an
// ordered decision list over the current problem size. Levels are kept
// sorted by ascending cutoff; Else applies when n is at least every cutoff.
type Selector struct {
	Levels []Level `json:"levels"`
	Else   int     `json:"else"`
}

// Decide returns the alternative index for problem size n.
func (sel *Selector) Decide(n int) int {
	for _, l := range sel.Levels {
		if n < l.Cutoff {
			return l.Choice
		}
	}
	return sel.Else
}

// Describe renders the selector as the paper's Figure 2 decision chain,
// e.g. "n<600: InsertionSort; n<1420: QuickSort; else: MergeSort".
func (sel *Selector) Describe(alternatives []string) string {
	name := func(i int) string {
		if i >= 0 && i < len(alternatives) {
			return alternatives[i]
		}
		return fmt.Sprintf("alt%d", i)
	}
	out := ""
	for _, l := range sel.Levels {
		out += fmt.Sprintf("n<%d: %s; ", l.Cutoff, name(l.Choice))
	}
	return out + "else: " + name(sel.Else)
}

// DescribeConfig renders every selector of c against the space's site
// alternatives plus the tunable values — the human-readable form of a
// landmark configuration.
func (s *Space) DescribeConfig(c *Config) string {
	out := ""
	for i, site := range s.Sites {
		if i > 0 {
			out += " | "
		}
		out += site.Name + "{" + c.Selectors[i].Describe(site.Alternatives) + "}"
	}
	for i, t := range s.Tunables {
		if t.Kind == IntKind {
			out += fmt.Sprintf(" %s=%d", t.Name, c.Int(i))
		} else {
			out += fmt.Sprintf(" %s=%.3g", t.Name, c.Float(i))
		}
	}
	return out
}

// normalize sorts levels by cutoff and drops duplicates/cap violations.
func (sel *Selector) normalize(maxLevels, maxCutoff, numAlts int) {
	for i := range sel.Levels {
		if sel.Levels[i].Cutoff < 2 {
			sel.Levels[i].Cutoff = 2
		}
		if sel.Levels[i].Cutoff > maxCutoff {
			sel.Levels[i].Cutoff = maxCutoff
		}
		sel.Levels[i].Choice = clampInt(sel.Levels[i].Choice, 0, numAlts-1)
	}
	sort.Slice(sel.Levels, func(i, j int) bool { return sel.Levels[i].Cutoff < sel.Levels[j].Cutoff })
	// Remove duplicate cutoffs (keep the first).
	out := sel.Levels[:0]
	lastCut := -1
	for _, l := range sel.Levels {
		if l.Cutoff != lastCut {
			out = append(out, l)
			lastCut = l.Cutoff
		}
	}
	sel.Levels = out
	if len(sel.Levels) > maxLevels {
		sel.Levels = sel.Levels[:maxLevels]
	}
	sel.Else = clampInt(sel.Else, 0, numAlts-1)
}

// Config is one point in a Space: a selector per site plus a value per
// tunable. Configs serialise to JSON for storage alongside experiment
// results.
type Config struct {
	Selectors []Selector `json:"selectors"`
	Values    []float64  `json:"values"`
}

// DefaultConfig returns the configuration with single-choice selectors
// (always alternative 0) and default tunable values.
func (s *Space) DefaultConfig() *Config {
	c := &Config{
		Selectors: make([]Selector, len(s.Sites)),
		Values:    make([]float64, len(s.Tunables)),
	}
	for i, t := range s.Tunables {
		c.Values[i] = t.quantize(t.Default)
	}
	return c
}

// RandomConfig draws a uniformly random valid configuration. When the
// space carries a dependency graph, only live tunables are drawn; dead
// genes keep their defaults so the draw samples the live subspace.
func (s *Space) RandomConfig(r *rng.RNG) *Config {
	return s.randomConfig(r, false)
}

// RandomConfigFlat draws ignoring the dependency graph (every tunable is
// sampled) — the legacy flat-space behaviour, kept for A/B comparison.
func (s *Space) RandomConfigFlat(r *rng.RNG) *Config {
	return s.randomConfig(r, true)
}

func (s *Space) randomConfig(r *rng.RNG, flat bool) *Config {
	c := s.DefaultConfig()
	for i := range c.Selectors {
		nAlts := len(s.Sites[i].Alternatives)
		nLevels := r.Intn(s.MaxSelectorLevels + 1)
		for l := 0; l < nLevels; l++ {
			c.Selectors[i].Levels = append(c.Selectors[i].Levels, Level{
				Cutoff: s.randomCutoff(r),
				Choice: r.Intn(nAlts),
			})
		}
		c.Selectors[i].Else = r.Intn(nAlts)
		c.Selectors[i].normalize(s.MaxSelectorLevels, s.MaxCutoff, nAlts)
	}
	var live []bool
	if !flat && s.HasDependencies() {
		live = s.LiveGenes(c)
	}
	for i, t := range s.Tunables {
		if live != nil && !live[i] {
			continue // dead gene: keep the quantized default, burn no draw
		}
		c.Values[i] = t.quantize(r.Range(t.Min, t.Max))
	}
	return c
}

// randomCutoff draws log-uniformly from [2, MaxCutoff] so that small
// cutoffs (where algorithm crossovers actually live) are well represented.
func (s *Space) randomCutoff(r *rng.RNG) int {
	lo, hi := math.Log(2), math.Log(float64(s.MaxCutoff))
	return int(math.Exp(r.Range(lo, hi)))
}

// Clone returns a deep copy of c.
func (c *Config) Clone() *Config {
	out := &Config{
		Selectors: make([]Selector, len(c.Selectors)),
		Values:    append([]float64(nil), c.Values...),
	}
	for i, sel := range c.Selectors {
		out.Selectors[i] = Selector{
			Levels: append([]Level(nil), sel.Levels...),
			Else:   sel.Else,
		}
	}
	return out
}

// Key returns a canonical fingerprint of c: two configurations have equal
// keys if and only if they are structurally identical (same selector
// decision lists and same tunable values). Tunable values are hashed as
// stored, i.e. after the space's per-kind quantization, so an integer
// tunable reached via different float intermediates fingerprints
// identically. The encoding is injective (length-prefixed, fixed-width
// floats), so distinct configurations can never collide — the property the
// engine's measurement cache relies on.
func (c *Config) Key() string {
	// Worst case ~18 bytes per selector level + 8 per value; configs are
	// small, so one allocation usually suffices.
	buf := make([]byte, 0, 16+20*len(c.Selectors)+8*len(c.Values))
	buf = binary.AppendUvarint(buf, uint64(len(c.Selectors)))
	for _, sel := range c.Selectors {
		buf = binary.AppendUvarint(buf, uint64(len(sel.Levels)))
		for _, l := range sel.Levels {
			buf = binary.AppendVarint(buf, int64(l.Cutoff))
			buf = binary.AppendVarint(buf, int64(l.Choice))
		}
		buf = binary.AppendVarint(buf, int64(sel.Else))
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.Values)))
	for _, v := range c.Values {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return string(buf)
}

// Int returns tunable i rounded to an integer.
func (c *Config) Int(i int) int { return int(c.Values[i] + 0.5) }

// Float returns tunable i.
func (c *Config) Float(i int) float64 { return c.Values[i] }

// Decide returns the alternative chosen by site i's selector for size n.
func (c *Config) Decide(site, n int) int { return c.Selectors[site].Decide(n) }

// Validate checks c against the space.
func (s *Space) Validate(c *Config) error {
	if len(c.Selectors) != len(s.Sites) {
		return fmt.Errorf("choice: config has %d selectors, space has %d sites", len(c.Selectors), len(s.Sites))
	}
	if len(c.Values) != len(s.Tunables) {
		return fmt.Errorf("choice: config has %d values, space has %d tunables", len(c.Values), len(s.Tunables))
	}
	for i, sel := range c.Selectors {
		nAlts := len(s.Sites[i].Alternatives)
		if len(sel.Levels) > s.MaxSelectorLevels {
			return fmt.Errorf("choice: site %q selector has %d levels (max %d)", s.Sites[i].Name, len(sel.Levels), s.MaxSelectorLevels)
		}
		prev := -1
		for _, l := range sel.Levels {
			if l.Cutoff <= prev {
				return fmt.Errorf("choice: site %q cutoffs not strictly ascending", s.Sites[i].Name)
			}
			prev = l.Cutoff
			if l.Cutoff < 2 || l.Cutoff > s.MaxCutoff {
				return fmt.Errorf("choice: site %q cutoff %d out of range", s.Sites[i].Name, l.Cutoff)
			}
			if l.Choice < 0 || l.Choice >= nAlts {
				return fmt.Errorf("choice: site %q level choice %d out of range", s.Sites[i].Name, l.Choice)
			}
		}
		if sel.Else < 0 || sel.Else >= nAlts {
			return fmt.Errorf("choice: site %q else-choice %d out of range", s.Sites[i].Name, sel.Else)
		}
	}
	for i, t := range s.Tunables {
		v := c.Values[i]
		if v < t.Min-1e-9 || v > t.Max+1e-9 {
			return fmt.Errorf("choice: tunable %q value %v out of [%v, %v]", t.Name, v, t.Min, t.Max)
		}
	}
	return nil
}

// MarshalJSON/UnmarshalJSON use the default struct encoding; Config also
// offers String for debugging.
func (c *Config) String() string {
	b, err := json.Marshal(c)
	if err != nil {
		return fmt.Sprintf("config<error: %v>", err)
	}
	return string(b)
}

func (t Tunable) quantize(v float64) float64 {
	v = clamp(v, t.Min, t.Max)
	if t.Kind == IntKind {
		return float64(int(v + 0.5))
	}
	return v
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
