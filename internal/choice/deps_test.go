package choice

import (
	"fmt"
	"testing"

	"inputtune/internal/rng"
)

// depSpace models a PDE-style space: a solver site whose iteration and
// relaxation tunables are read only under some alternatives, plus one
// unguarded tunable that is always live.
//
//	solver: multigrid | jacobi | sor | direct
//	iters  — read by jacobi and sor
//	omega  — read by sor only
//	tol    — read by every solver (unguarded)
func depSpace() *Space {
	s := NewSpace()
	s.AddSite("solver", "multigrid", "jacobi", "sor", "direct")
	s.AddInt("iters", 1, 300, 60)
	s.AddFloat("omega", 1.0, 1.95, 1.5)
	s.AddFloat("tol", 0, 1, 0.5)
	s.DependsOn(0, 0, 1, 2) // iters <- {jacobi, sor}
	s.DependsOn(1, 0, 2)    // omega <- {sor}
	return s
}

func TestLiveGenes(t *testing.T) {
	s := depSpace()
	cases := []struct {
		sel  Selector
		want [3]bool
	}{
		{Selector{Else: 0}, [3]bool{false, false, true}}, // multigrid only
		{Selector{Else: 1}, [3]bool{true, false, true}},  // jacobi
		{Selector{Else: 2}, [3]bool{true, true, true}},   // sor
		{Selector{Else: 3}, [3]bool{false, false, true}}, // direct
		{Selector{Levels: []Level{{Cutoff: 64, Choice: 2}}, Else: 3}, [3]bool{true, true, true}},
		// The level's choice equals the else branch: canonicalization
		// drops it, so sor is NOT reachable and its genes stay dead.
		{Selector{Levels: []Level{{Cutoff: 64, Choice: 3}}, Else: 3}, [3]bool{false, false, true}},
	}
	for i, tc := range cases {
		c := s.DefaultConfig()
		c.Selectors[0] = tc.sel
		live := s.LiveGenes(c)
		for g, want := range tc.want {
			if live[g] != want {
				t.Errorf("case %d: live[%d] = %v, want %v", i, g, live[g], want)
			}
		}
	}
}

// TestLiveKeyConstantAcrossDeadGeneVariants: changing only dead genes never
// changes LiveKey, even when the full Key changes.
func TestLiveKeyConstantAcrossDeadGeneVariants(t *testing.T) {
	s := depSpace()
	r := rng.New(41)
	varied := 0
	for trial := 0; trial < 300; trial++ {
		c := s.RandomConfigFlat(r)
		live := s.LiveGenes(c)
		base := s.LiveKey(c)
		for g, isLive := range live {
			if isLive {
				continue
			}
			v := c.Clone()
			tun := s.Tunables[g]
			// Pick a quantized value different from the current one.
			nv := tun.quantize(tun.Min)
			if nv == v.Values[g] {
				nv = tun.quantize(tun.Max)
			}
			if nv == v.Values[g] {
				continue
			}
			v.Values[g] = nv
			varied++
			if v.Key() == c.Key() {
				t.Fatalf("trial %d: variant should differ in full Key", trial)
			}
			if got := s.LiveKey(v); got != base {
				t.Fatalf("trial %d: dead-gene variant changed LiveKey\n  c: %s\n  v: %s", trial, c, v)
			}
		}
	}
	if varied == 0 {
		t.Fatal("no dead-gene variants were exercised")
	}
}

// TestLiveKeyInjectiveOnLiveGenes: changing a live gene to a different
// quantized value always changes LiveKey.
func TestLiveKeyInjectiveOnLiveGenes(t *testing.T) {
	s := depSpace()
	r := rng.New(43)
	varied := 0
	for trial := 0; trial < 300; trial++ {
		c := s.Canonicalize(s.RandomConfigFlat(r))
		live := s.LiveGenes(c)
		base := s.LiveKey(c)
		for g, isLive := range live {
			if !isLive {
				continue
			}
			v := c.Clone()
			tun := s.Tunables[g]
			nv := tun.quantize(tun.Min)
			if nv == v.Values[g] {
				nv = tun.quantize(tun.Max)
			}
			if nv == v.Values[g] {
				continue
			}
			v.Values[g] = nv
			varied++
			if got := s.LiveKey(v); got == base {
				t.Fatalf("trial %d: live-gene change did not change LiveKey\n  c: %s\n  v: %s", trial, c, v)
			}
		}
	}
	if varied == 0 {
		t.Fatal("no live-gene variants were exercised")
	}
}

// TestCanonicalizePreservesDecide: canonicalization never changes what any
// selector decides, for any problem size.
func TestCanonicalizePreservesDecide(t *testing.T) {
	s := depSpace()
	r := rng.New(47)
	for trial := 0; trial < 200; trial++ {
		c := s.RandomConfigFlat(r)
		canon := s.Canonicalize(c)
		if err := s.Validate(canon); err != nil {
			t.Fatalf("trial %d: canonical config invalid: %v", trial, err)
		}
		for site := range s.Sites {
			for _, n := range []int{0, 1, 63, 64, 65, 1000, 1 << 20} {
				if got, want := canon.Decide(site, n), c.Decide(site, n); got != want {
					t.Fatalf("trial %d: Decide(%d, %d) = %d after canonicalization, want %d",
						trial, site, n, got, want)
				}
			}
		}
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	s := depSpace()
	r := rng.New(53)
	for trial := 0; trial < 200; trial++ {
		c := s.RandomConfigFlat(r)
		once := s.Canonicalize(c)
		twice := s.Canonicalize(once)
		if once.Key() != twice.Key() {
			t.Fatalf("trial %d: Canonicalize not idempotent", trial)
		}
	}
}

// TestRandomConfigKeepsDeadGenesAtDefault: the live-aware generator leaves
// dead genes at their quantized defaults, so random draws land on canonical
// representatives more often.
func TestRandomConfigKeepsDeadGenesAtDefault(t *testing.T) {
	s := depSpace()
	r := rng.New(59)
	for trial := 0; trial < 300; trial++ {
		c := s.RandomConfig(r)
		if err := s.Validate(c); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		live := s.LiveGenes(c)
		for g, isLive := range live {
			if isLive {
				continue
			}
			tun := s.Tunables[g]
			if c.Values[g] != tun.quantize(tun.Default) {
				t.Fatalf("trial %d: dead gene %d drawn away from default (%v)", trial, g, c.Values[g])
			}
		}
	}
}

// TestUnguardedSpaceLiveKeyEqualsKeyModuloSelectors: without dependencies,
// LiveKey differs from Key only by redundant-selector-level removal.
func TestUnguardedSpaceAllGenesLive(t *testing.T) {
	s := sortSpace()
	r := rng.New(61)
	for trial := 0; trial < 100; trial++ {
		c := s.RandomConfig(r)
		for g, isLive := range s.LiveGenes(c) {
			if !isLive {
				t.Fatalf("trial %d: gene %d dead in unguarded space", trial, g)
			}
		}
	}
}

func TestDependsOnPanics(t *testing.T) {
	cases := []func(*Space){
		func(s *Space) { s.DependsOn(-1, 0, 1) },
		func(s *Space) { s.DependsOn(9, 0, 1) },
		func(s *Space) { s.DependsOn(0, 9, 1) },
		func(s *Space) { s.DependsOn(0, 0) },
		func(s *Space) { s.DependsOn(0, 0, 99) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			s := depSpace()
			f(s)
		}()
	}
	// Guarding one tunable from two different sites is rejected.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("two-site guard: no panic")
			}
		}()
		s := NewSpace()
		s.AddSite("a", "x", "y")
		s.AddSite("b", "x", "y")
		s.AddInt("t", 0, 10, 5)
		s.DependsOn(0, 0, 1)
		s.DependsOn(0, 1, 1)
	}()
}

// TestConfigKeyGolden pins the exact byte layout of Key()/AppendBinary for
// a hand-built configuration. The encoding is wire format (serve protocol,
// model artifacts) and cache identity in one: any byte-level change breaks
// persisted models and cross-version cache reuse, so this test must only
// ever be updated together with a deliberate, versioned format change.
func TestConfigKeyGolden(t *testing.T) {
	s := testSpace() // solver(5 alts) + order(2 alts), iters int, omega float
	c := s.DefaultConfig()
	c.Selectors[0] = Selector{Levels: []Level{{Cutoff: 600, Choice: 1}, {Cutoff: 1420, Choice: 4}}, Else: 2}
	c.Selectors[1] = Selector{Else: 1}
	c.Values[0] = 120 // iters
	c.Values[1] = 1.5 // omega

	got := fmt.Sprintf("%x", []byte(c.Key()))
	const want = "0202b0090298160804000202405e0000000000003ff8000000000000"
	if got != want {
		t.Fatalf("golden Key bytes changed:\n got %s\nwant %s", got, want)
	}
	if enc := fmt.Sprintf("%x", c.AppendBinary(nil)); enc != got {
		t.Fatalf("AppendBinary diverges from Key: %s", enc)
	}
}
