package dtree

import (
	"encoding/json"
	"fmt"
)

// nodeJSON is the serialised form of a tree node.
type nodeJSON struct {
	Leaf      bool      `json:"leaf"`
	Class     int       `json:"class,omitempty"`
	Feature   int       `json:"feature,omitempty"`
	Threshold float64   `json:"threshold,omitempty"`
	Left      *nodeJSON `json:"left,omitempty"`
	Right     *nodeJSON `json:"right,omitempty"`
}

// treeJSON is the serialised form of a Tree.
type treeJSON struct {
	NumClasses int       `json:"num_classes"`
	Root       *nodeJSON `json:"root"`
}

func toJSON(n *node) *nodeJSON {
	if n == nil {
		return nil
	}
	if n.leaf {
		return &nodeJSON{Leaf: true, Class: n.class}
	}
	return &nodeJSON{
		Feature:   n.feature,
		Threshold: n.threshold,
		Left:      toJSON(n.left),
		Right:     toJSON(n.right),
	}
}

func fromJSON(j *nodeJSON) (*node, error) {
	if j == nil {
		return nil, fmt.Errorf("dtree: missing node")
	}
	if j.Leaf {
		return &node{leaf: true, class: j.Class}, nil
	}
	left, err := fromJSON(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := fromJSON(j.Right)
	if err != nil {
		return nil, err
	}
	return &node{feature: j.Feature, threshold: j.Threshold, left: left, right: right}, nil
}

// MarshalJSON serialises the fitted tree (structure and leaf labels; the
// training options are not retained).
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(treeJSON{NumClasses: t.opts.NumClasses, Root: toJSON(t.root)})
}

// UnmarshalJSON restores a tree serialised by MarshalJSON. FeaturesUsed is
// reconstructed from the structure.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var j treeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	root, err := fromJSON(j.Root)
	if err != nil {
		return err
	}
	t.root = root
	t.opts = Options{NumClasses: j.NumClasses}
	t.usedSet = map[int]bool{}
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || n.leaf {
			return
		}
		t.usedSet[n.feature] = true
		walk(n.left)
		walk(n.right)
	}
	walk(root)
	return nil
}
