package dtree

// Flat tree compilation: the serving hot path walks pointer-linked nodes
// allocated at training (or deserialization) time, scattered across the
// heap. Compile lowers the tree once into a contiguous node array with
// array-index children, so prediction is a tight loop over one cache-warm
// slice with no pointer chasing and a two-way child select the compiler
// can turn into conditional moves.
//
// Layout: nodes are placed in breadth-first order with the heavier child
// subtree (more leaves — the best frequency proxy available once a tree
// has been deserialized, which strips sample counts) enqueued first, so
// the most-travelled spine of the tree occupies the front of the array.
// Leaves are not materialized at all: a negative child reference encodes
// the predicted class directly (ref -1-c means class c), which keeps the
// array to internal nodes only and ends the walk without a final load.
//
// The compiled form is a pure accelerator: it is never serialized
// (SaveModel artifacts are byte-identical with or without it) and package
// tests enforce label-identical output against Tree.Predict on randomized
// trees.

// compiledNode is one internal node: 24 bytes, cache-line friendly.
type compiledNode struct {
	feature   int32
	child     [2]int32 // [0] = feature < threshold, [1] = otherwise
	threshold float64
}

// CompiledTree is the branch-free array form of a Tree. It is immutable
// after Compile and safe for unboundedly concurrent Predict calls.
type CompiledTree struct {
	nodes []compiledNode
	root  int32
}

// leafRef encodes class c as a negative child reference.
func leafRef(c int) int32 { return int32(-1 - c) }

// Compile lowers the tree into its flat form. The source tree is not
// modified and remains usable.
func (t *Tree) Compile() *CompiledTree {
	ct := &CompiledTree{}
	if t.root.leaf {
		ct.root = leafRef(t.root.class)
		return ct
	}
	ct.nodes = make([]compiledNode, 0, t.NumNodes()/2+1)
	// Breadth-first placement, heavier subtree first within each node's
	// children: queue entries remember where the parent's child slot
	// lives so it can be patched once the child is placed.
	type pending struct {
		n      *node
		parent int32 // index of parent in nodes; -1 for the root
		slot   int   // which child slot of the parent to patch
	}
	place := func(ct *CompiledTree, n *node) int32 {
		idx := int32(len(ct.nodes))
		ct.nodes = append(ct.nodes, compiledNode{
			feature:   int32(n.feature),
			threshold: n.threshold,
		})
		return idx
	}
	setRef := func(p pending, ref int32) {
		if p.parent < 0 {
			ct.root = ref
			return
		}
		ct.nodes[p.parent].child[p.slot] = ref
	}
	queue := []pending{{n: t.root, parent: -1}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p.n.leaf {
			setRef(p, leafRef(p.n.class))
			continue
		}
		idx := place(ct, p.n)
		setRef(p, idx)
		l, r := p.n.left, p.n.right
		if leafCount(l) >= leafCount(r) {
			queue = append(queue,
				pending{n: l, parent: idx, slot: 0},
				pending{n: r, parent: idx, slot: 1})
		} else {
			queue = append(queue,
				pending{n: r, parent: idx, slot: 1},
				pending{n: l, parent: idx, slot: 0})
		}
	}
	return ct
}

// leafCount sizes a subtree by its leaves (the heaviness heuristic).
func leafCount(n *node) int {
	if n.leaf {
		return 1
	}
	return leafCount(n.left) + leafCount(n.right)
}

// Predict returns the class for feature vector x. Labels are identical to
// Tree.Predict on the source tree for every input (test-enforced): the
// walk evaluates the same feature/threshold comparisons, only the node
// representation differs.
func (ct *CompiledTree) Predict(x []float64) int {
	ref := ct.root
	nodes := ct.nodes
	for ref >= 0 {
		n := &nodes[ref]
		b := 0
		if x[n.feature] >= n.threshold {
			b = 1
		}
		ref = n.child[b]
	}
	return int(-1 - ref)
}

// NumNodes returns the internal-node count of the compiled form (leaves
// are encoded in child references, not stored).
func (ct *CompiledTree) NumNodes() int { return len(ct.nodes) }
