package dtree

import "sort"

// FeatureMatrix is the presorted-feature training backbone: a column-major
// copy of the training rows plus, per feature, the ascending sort
// permutation of the row indices, computed once and shared by every tree
// trained on any feature subset of the same rows. The classifier zoo of
// the paper trains 3·((z+1)^u−1) trees over one row set; with the matrix,
// per-feature sorting happens once per training run instead of once per
// feature per node per tree.
//
// A FeatureMatrix is immutable after construction and safe for concurrent
// use by any number of TrainMatrix calls.
type FeatureMatrix struct {
	n    int
	cols [][]float64
	perm [][]int32
}

// NewFeatureMatrix transposes rows X into column-major storage and
// presorts every feature column. Ties are broken by row index, so the
// permutations are deterministic; tie order never affects a trained tree
// (splits exist only at distinct-value boundaries, and the label counts at
// a boundary depend only on the multiset of rows on each side).
func NewFeatureMatrix(X [][]float64) *FeatureMatrix {
	return newFeatureMatrixFor(X, nil)
}

// newFeatureMatrixFor transposes and presorts only the listed feature
// columns (nil = all). Train uses it so a tree restricted to a small
// subset never pays for columns it cannot read; the resulting sparse
// matrix supports TrainMatrix only over those features.
func newFeatureMatrixFor(X [][]float64, feats []int) *FeatureMatrix {
	n := len(X)
	if n == 0 {
		panic("dtree: empty feature matrix")
	}
	f := len(X[0])
	fm := &FeatureMatrix{n: n, cols: make([][]float64, f), perm: make([][]int32, f)}
	sel := feats
	if sel == nil {
		sel = make([]int, f)
		for j := range sel {
			sel[j] = j
		}
	}
	flat := make([]float64, n*len(sel))
	idx := make([]int32, n*len(sel))
	for s, j := range sel {
		col := flat[s*n : (s+1)*n]
		for i, row := range X {
			col[i] = row[j]
		}
		p := idx[s*n : (s+1)*n]
		for i := range p {
			p[i] = int32(i)
		}
		sort.Slice(p, func(a, b int) bool {
			va, vb := col[p[a]], col[p[b]]
			if va != vb {
				return va < vb
			}
			return p[a] < p[b]
		})
		fm.cols[j] = col
		fm.perm[j] = p
	}
	return fm
}

// NumRows returns the number of training rows.
func (fm *FeatureMatrix) NumRows() int { return fm.n }

// NumFeatures returns the number of feature columns.
func (fm *FeatureMatrix) NumFeatures() int { return len(fm.cols) }

// Train fits a tree to rows X with integer labels y in [0, NumClasses).
// It builds a one-off FeatureMatrix — presorting only opts.Features when a
// subset is given — and delegates to TrainMatrix; callers training many
// trees over subsets of the same rows (the classifier zoo) should build
// the matrix once and call TrainMatrix directly.
func Train(X [][]float64, y []int, opts Options) *Tree {
	if len(X) == 0 || len(X) != len(y) {
		panic("dtree: bad training data")
	}
	return TrainMatrix(newFeatureMatrixFor(X, opts.Features), y, opts)
}

// TrainMatrix fits a tree on the shared presorted backbone. The trained
// tree is byte-identical (after serialisation) to ReferenceTrain on the
// same rows: split evaluation walks each feature's presorted order with
// incremental label counts — O(n·f) work per node instead of the
// reference's O(n·f·log n) — visiting the same candidate thresholds with
// the same floating-point label-count sums, so gains, tie-breaks and leaf
// labels all coincide exactly.
func TrainMatrix(fm *FeatureMatrix, y []int, opts Options) *Tree {
	if fm == nil || fm.n == 0 || fm.n != len(y) {
		panic("dtree: bad training data")
	}
	if opts.NumClasses <= 0 {
		panic("dtree: NumClasses required")
	}
	opts.setDefaults()
	feats := opts.Features
	if feats == nil {
		for f := 0; f < fm.NumFeatures(); f++ {
			feats = append(feats, f)
		}
	}
	t := &Tree{opts: opts, usedSet: map[int]bool{}}
	if len(feats) == 0 {
		// No splittable features: a lone cost-minimising leaf, exactly as
		// the reference's empty feature loop produces.
		counts := make([]float64, opts.NumClasses)
		for _, label := range y {
			counts[label]++
		}
		class, _ := t.bestLabel(counts)
		t.root = &node{leaf: true, class: class}
		return t
	}
	k := opts.NumClasses
	tr := &matrixTrainer{
		t:        t,
		fm:       fm,
		y:        y,
		feats:    feats,
		lists:    make([][]int32, len(feats)),
		scratch:  make([]int32, 0, fm.n),
		goesLeft: make([]bool, fm.n),
		costTab:  flatCostTable(&opts),
		left:     make([]float64, k),
		right:    make([]float64, k),
		acc:      make([]float64, k),
	}
	// Subset training copies only the presorted permutations it needs —
	// O(n) per feature — and partitions them in place as nodes split, which
	// keeps every child segment sorted without ever calling sort again.
	lists := make([]int32, len(feats)*fm.n)
	for j, f := range feats {
		if fm.perm[f] == nil {
			panic("dtree: feature not presorted in this matrix")
		}
		tr.lists[j] = lists[j*fm.n : (j+1)*fm.n]
		copy(tr.lists[j], fm.perm[f])
	}
	t.root = tr.build(0, fm.n, 0)
	return t
}

// flatCostTable flattens the option's cost function into a k×k row-major
// table holding the exact same float64 values cost(i, j) returns, so the
// split scan's inner loop is a slice load instead of a nil-check and a
// nested index per element.
func flatCostTable(o *Options) []float64 {
	k := o.NumClasses
	tab := make([]float64, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			tab[i*k+j] = o.cost(i, j)
		}
	}
	return tab
}

// matrixTrainer carries the per-tree mutable state of one TrainMatrix
// call: the working presorted index lists (one per selected feature, all
// holding the same row set per node segment) and reusable scan buffers.
type matrixTrainer struct {
	t     *Tree
	fm    *FeatureMatrix
	y     []int
	feats []int
	// lists[j] is the working order for feats[j]; build partitions the
	// segment [lo, hi) of every list around each split, stably, so both
	// children stay sorted per feature.
	lists    [][]int32
	scratch  []int32
	goesLeft []bool
	costTab  []float64
	// left and right are the incremental label-count buffers shared by all
	// split scans, and acc the per-label cost accumulator of bestLabel (a
	// node is done with all three before it recurses).
	left, right, acc []float64
}

// bestLabel mirrors Tree.bestLabel on the flat cost table with the loops
// swapped: each per-label expected cost still accumulates its terms in
// ascending truth-class order with zero counts skipped, so every sum is
// bit-identical to the reference — but the skip branches once per truth
// class instead of once per cell, and the cost table is walked row-major.
func (tr *matrixTrainer) bestLabel(counts []float64) (int, float64) {
	k := tr.t.opts.NumClasses
	acc := tr.acc
	for j := range acc {
		acc[j] = 0
	}
	for i, n := range counts {
		if n > 0 {
			row := tr.costTab[i*k : i*k+k]
			for j, c := range row {
				acc[j] += n * c
			}
		}
	}
	bestJ, bestC := 0, -1.0
	for j, c := range acc {
		if bestC < 0 || c < bestC {
			bestJ, bestC = j, c
		}
	}
	return bestJ, bestC
}

// build grows the subtree over the row segment [lo, hi) of every working
// list. The candidate-split sequence — features in option order, boundaries
// in ascending value order — and every intermediate float match the
// reference trainer exactly; see TrainMatrix.
func (tr *matrixTrainer) build(lo, hi, depth int) *node {
	t := tr.t
	opts := &t.opts
	n := hi - lo
	counts := make([]float64, opts.NumClasses)
	for _, i := range tr.lists[0][lo:hi] {
		counts[tr.y[i]]++
	}
	label, nodeCost := tr.bestLabel(counts)
	if depth >= opts.MaxDepth || n < 2*opts.MinLeaf || nodeCost == 0 {
		return &node{leaf: true, class: label}
	}
	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	for j, f := range tr.feats {
		col := tr.fm.cols[f]
		seg := tr.lists[j][lo:hi]
		if col[seg[0]] == col[seg[n-1]] {
			continue // constant over this node: no boundary to split at
		}
		leftCounts, rightCounts := tr.left, tr.right
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		copy(rightCounts, counts)
		for pos := 0; pos < n-1; pos++ {
			i := seg[pos]
			leftCounts[tr.y[i]]++
			rightCounts[tr.y[i]]--
			v, next := col[i], col[seg[pos+1]]
			if v == next {
				continue // can't split between equal values
			}
			nLeft, nRight := pos+1, n-pos-1
			if nLeft < opts.MinLeaf || nRight < opts.MinLeaf {
				continue
			}
			_, lc := tr.bestLabel(leftCounts)
			_, rc := tr.bestLabel(rightCounts)
			gain := nodeCost - (lc + rc)
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThresh = (v + next) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &node{leaf: true, class: label}
	}
	// Stable-partition every feature's presorted segment around the split.
	// Membership is per row, so one pass over any list decides it for all.
	splitCol := tr.fm.cols[bestFeat]
	nLeft := 0
	for _, i := range tr.lists[0][lo:hi] {
		left := splitCol[i] < bestThresh
		tr.goesLeft[i] = left
		if left {
			nLeft++
		}
	}
	if nLeft == 0 || nLeft == n {
		return &node{leaf: true, class: label}
	}
	for j := range tr.lists {
		seg := tr.lists[j][lo:hi]
		w := 0
		spill := tr.scratch[:0]
		for _, i := range seg {
			if tr.goesLeft[i] {
				seg[w] = i
				w++
			} else {
				spill = append(spill, i)
			}
		}
		copy(seg[w:], spill)
	}
	t.usedSet[bestFeat] = true
	mid := lo + nLeft
	return &node{
		feature:   bestFeat,
		threshold: bestThresh,
		left:      tr.build(lo, mid, depth+1),
		right:     tr.build(mid, hi, depth+1),
	}
}
