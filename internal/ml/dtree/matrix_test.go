package dtree

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"inputtune/internal/rng"
)

// treeBytes serialises a tree for byte-level comparison.
func treeBytes(t *testing.T, tree *Tree) []byte {
	t.Helper()
	b, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// randomDataset builds a duplicate-heavy dataset: values are quantised so
// equal-value runs (the case the presorted scan must skip exactly like the
// reference) occur constantly.
func randomDataset(r *rng.RNG, n, f, k int) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, f)
		for j := range row {
			row[j] = float64(r.Intn(7)) + 0.25*float64(r.Intn(3))
		}
		X[i] = row
		y[i] = r.Intn(k)
	}
	return X, y
}

// randomCostMatrix draws a k×k matrix with zero diagonal and positive
// off-diagonal costs; occasionally degenerate (all-equal) to exercise
// tie-breaking.
func randomCostMatrix(r *rng.RNG, k int) [][]float64 {
	cm := make([][]float64, k)
	uniform := r.Intn(4) == 0
	for i := range cm {
		cm[i] = make([]float64, k)
		for j := range cm[i] {
			if i == j {
				continue
			}
			if uniform {
				cm[i][j] = 1
			} else {
				cm[i][j] = r.Range(0.1, 10)
			}
		}
	}
	return cm
}

// TestTrainMatchesReference is the backbone's core guarantee: across many
// random datasets, feature subsets, cost matrices and tree bounds, the
// presorted trainer and the reference trainer serialise byte-identically.
func TestTrainMatchesReference(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 60; trial++ {
		n := 5 + r.Intn(120)
		f := 1 + r.Intn(6)
		k := 2 + r.Intn(4)
		X, y := randomDataset(r, n, f, k)
		opts := Options{NumClasses: k}
		if r.Intn(2) == 0 {
			opts.CostMatrix = randomCostMatrix(r, k)
		}
		if r.Intn(2) == 0 {
			opts.MaxDepth = 1 + r.Intn(8)
		}
		if r.Intn(2) == 0 {
			opts.MinLeaf = 1 + r.Intn(6)
		}
		if r.Intn(3) == 0 {
			var subset []int
			for j := 0; j < f; j++ {
				if r.Intn(2) == 0 {
					subset = append(subset, j)
				}
			}
			opts.Features = subset // may be nil: all features
		}
		ref := ReferenceTrain(X, y, opts)
		got := Train(X, y, opts)
		a, b := treeBytes(t, ref), treeBytes(t, got)
		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d (n=%d f=%d k=%d opts=%+v): presorted trainer diverged\nreference: %s\npresorted: %s",
				trial, n, f, k, opts, a, b)
		}
	}
}

// TestTrainMatrixSharedAcrossSubsets trains a whole subset zoo from ONE
// FeatureMatrix — the classifier-zoo usage pattern — and checks every tree
// against the reference, proving the in-place partitioned lists never leak
// state between trainings.
func TestTrainMatrixSharedAcrossSubsets(t *testing.T) {
	r := rng.New(77)
	const n, f, k = 90, 4, 3
	X, y := randomDataset(r, n, f, k)
	fm := NewFeatureMatrix(X)
	cm := randomCostMatrix(r, k)
	for mask := 1; mask < 1<<f; mask++ {
		var subset []int
		for j := 0; j < f; j++ {
			if mask&(1<<j) != 0 {
				subset = append(subset, j)
			}
		}
		opts := Options{NumClasses: k, Features: subset, CostMatrix: cm, MinLeaf: 3}
		ref := ReferenceTrain(X, y, opts)
		got := TrainMatrix(fm, y, opts)
		if !bytes.Equal(treeBytes(t, ref), treeBytes(t, got)) {
			t.Fatalf("subset %v diverged from reference", subset)
		}
	}
}

// TestTrainMatrixConcurrent trains from one shared matrix on many
// goroutines at once; the matrix is immutable, so results must match the
// serial reference (run with -race to catch sharing bugs).
func TestTrainMatrixConcurrent(t *testing.T) {
	r := rng.New(99)
	const n, f, k = 120, 5, 4
	X, y := randomDataset(r, n, f, k)
	fm := NewFeatureMatrix(X)
	subsets := [][]int{{0}, {1, 2}, {0, 3, 4}, {2, 4}, {0, 1, 2, 3, 4}}
	want := make([][]byte, len(subsets))
	for i, ss := range subsets {
		want[i] = treeBytes(t, ReferenceTrain(X, y, Options{NumClasses: k, Features: ss}))
	}
	done := make(chan error, 4*len(subsets))
	for g := 0; g < 4; g++ {
		go func() {
			for i, ss := range subsets {
				// No t.Fatal off the test goroutine: report through the
				// channel so a failure can't strand the receiver below.
				got, err := json.Marshal(TrainMatrix(fm, y, Options{NumClasses: k, Features: ss}))
				if err != nil {
					done <- err
					continue
				}
				if !bytes.Equal(want[i], got) {
					done <- fmt.Errorf("subset %v diverged under concurrency", ss)
					continue
				}
				done <- nil
			}
		}()
	}
	for i := 0; i < cap(done); i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFeatureMatrixShape(t *testing.T) {
	fm := NewFeatureMatrix([][]float64{{1, 9}, {3, 8}, {2, 7}})
	if fm.NumRows() != 3 || fm.NumFeatures() != 2 {
		t.Fatalf("shape (%d, %d)", fm.NumRows(), fm.NumFeatures())
	}
	// Column 0 ascending: rows 0, 2, 1. Column 1 ascending: rows 2, 1, 0.
	if got := fm.perm[0]; got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("perm[0] = %v", got)
	}
	if got := fm.perm[1]; got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("perm[1] = %v", got)
	}
}

func TestFeatureMatrixTiesByRowIndex(t *testing.T) {
	fm := NewFeatureMatrix([][]float64{{5}, {5}, {1}, {5}})
	want := []int32{2, 0, 1, 3}
	for i, w := range want {
		if fm.perm[0][i] != w {
			t.Fatalf("perm[0] = %v, want %v", fm.perm[0], want)
		}
	}
}

func TestTrainMatrixZeroFeatures(t *testing.T) {
	// Rows with no columns: both trainers must produce the majority leaf.
	X := [][]float64{{}, {}, {}}
	y := []int{1, 1, 0}
	ref := ReferenceTrain(X, y, Options{NumClasses: 2})
	got := Train(X, y, Options{NumClasses: 2})
	if !bytes.Equal(treeBytes(t, ref), treeBytes(t, got)) {
		t.Fatal("zero-feature trees diverged")
	}
	if got.Predict(nil) != 1 {
		t.Fatal("zero-feature tree should predict majority class")
	}
}

// TestTrainSparsePresort: Train with a feature restriction presorts only
// the selected columns; results still match the reference, and using the
// sparse matrix outside its subset fails loudly rather than silently.
func TestTrainSparsePresort(t *testing.T) {
	r := rng.New(41)
	X, y := randomDataset(r, 80, 6, 3)
	opts := Options{NumClasses: 3, Features: []int{1, 4}}
	ref := ReferenceTrain(X, y, opts)
	got := Train(X, y, opts)
	if !bytes.Equal(treeBytes(t, ref), treeBytes(t, got)) {
		t.Fatal("subset-restricted Train diverged from reference")
	}
	sparse := newFeatureMatrixFor(X, []int{1, 4})
	defer func() {
		if recover() == nil {
			t.Fatal("training outside the presorted subset should panic")
		}
	}()
	TrainMatrix(sparse, y, Options{NumClasses: 3, Features: []int{0}})
}

func TestTrainMatrixPanicsOnBadInput(t *testing.T) {
	fm := NewFeatureMatrix([][]float64{{1}, {2}})
	for name, fn := range map[string]func(){
		"emptyMatrix": func() { NewFeatureMatrix(nil) },
		"mismatched":  func() { TrainMatrix(fm, []int{0}, Options{NumClasses: 2}) },
		"noClasses":   func() { TrainMatrix(fm, []int{0, 1}, Options{}) },
		"nilMatrix":   func() { TrainMatrix(nil, []int{0, 1}, Options{NumClasses: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// BenchmarkZooTraining compares the two trainers on the zoo's workload
// shape: all non-empty subsets of f features over one row set.
func BenchmarkZooTraining(b *testing.B) {
	r := rng.New(5)
	const n, f, k = 160, 6, 8
	X, y := randomDataset(r, n, f, k)
	cm := randomCostMatrix(r, k)
	subsets := make([][]int, 0, 1<<f-1)
	for mask := 1; mask < 1<<f; mask++ {
		var ss []int
		for j := 0; j < f; j++ {
			if mask&(1<<j) != 0 {
				ss = append(ss, j)
			}
		}
		subsets = append(subsets, ss)
	}
	opts := func(ss []int) Options {
		return Options{NumClasses: k, Features: ss, CostMatrix: cm, MinLeaf: 4, MaxDepth: 6}
	}
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, ss := range subsets {
				ReferenceTrain(X, y, opts(ss))
			}
		}
	})
	b.Run("presorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fm := NewFeatureMatrix(X)
			for _, ss := range subsets {
				TrainMatrix(fm, y, opts(ss))
			}
		}
	})
}
