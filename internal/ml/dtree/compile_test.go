package dtree

import (
	"sync"
	"testing"

	"inputtune/internal/rng"
)

// randTree builds a random pointer tree directly (not via training), so
// the differential test covers shapes training would rarely produce:
// degenerate spines, equal thresholds at different depths, single leaves.
func randTree(r *rng.RNG, maxDepth, numFeatures, numClasses int) *Tree {
	var build func(depth int) *node
	build = func(depth int) *node {
		if depth >= maxDepth || r.Coin(0.3) {
			return &node{leaf: true, class: r.Intn(numClasses)}
		}
		return &node{
			feature:   r.Intn(numFeatures),
			threshold: r.Range(-2, 2),
			left:      build(depth + 1),
			right:     build(depth + 1),
		}
	}
	return &Tree{root: build(0), opts: Options{NumClasses: numClasses}, usedSet: map[int]bool{}}
}

// randRow draws a feature vector; with probability ~1/2 one coordinate is
// copied from a threshold in the tree, so the < vs >= boundary is hit.
func randRow(r *rng.RNG, t *Tree, numFeatures int) []float64 {
	x := make([]float64, numFeatures)
	for i := range x {
		x[i] = r.Range(-2.5, 2.5)
	}
	if r.Coin(0.5) {
		n := t.root
		for !n.leaf {
			if r.Coin(0.3) {
				x[n.feature] = n.threshold
				break
			}
			if r.Coin(0.5) {
				n = n.left
			} else {
				n = n.right
			}
		}
	}
	return x
}

// TestCompiledTreeDifferentialRandomized: labels from the compiled walk
// must equal the pointer walk on randomized trees and inputs, including
// inputs that land exactly on split thresholds.
func TestCompiledTreeDifferentialRandomized(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		numFeatures := 1 + r.Intn(10)
		tree := randTree(r, 1+r.Intn(8), numFeatures, 2+r.Intn(6))
		ct := tree.Compile()
		for q := 0; q < 50; q++ {
			x := randRow(r, tree, numFeatures)
			want := tree.Predict(x)
			if got := ct.Predict(x); got != want {
				t.Fatalf("trial %d query %d: compiled %d, pointer %d (x=%v)\n%s",
					trial, q, got, want, x, tree.String())
			}
		}
	}
}

// TestCompiledTreeDifferentialTrained runs the same check against trees
// produced by the actual trainer, where thresholds are data midpoints.
func TestCompiledTreeDifferentialTrained(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		nRows, nFeat, k := 40+r.Intn(60), 2+r.Intn(5), 2+r.Intn(4)
		X := make([][]float64, nRows)
		y := make([]int, nRows)
		for i := range X {
			X[i] = make([]float64, nFeat)
			for j := range X[i] {
				X[i][j] = r.Range(-1, 1)
			}
			y[i] = r.Intn(k)
		}
		tree := Train(X, y, Options{NumClasses: k, MinLeaf: 1 + r.Intn(4)})
		ct := tree.Compile()
		for _, x := range X {
			if got, want := ct.Predict(x), tree.Predict(x); got != want {
				t.Fatalf("trial %d: compiled %d, pointer %d", trial, got, want)
			}
		}
		for q := 0; q < 100; q++ {
			x := make([]float64, nFeat)
			for j := range x {
				x[j] = r.Range(-1.2, 1.2)
			}
			if got, want := ct.Predict(x), tree.Predict(x); got != want {
				t.Fatalf("trial %d: compiled %d, pointer %d", trial, got, want)
			}
		}
	}
}

// TestCompiledTreeLeafOnly: a tree that is a single leaf compiles to an
// empty node array with the class folded into the root reference.
func TestCompiledTreeLeafOnly(t *testing.T) {
	tree := &Tree{root: &node{leaf: true, class: 3}, opts: Options{NumClasses: 5}, usedSet: map[int]bool{}}
	ct := tree.Compile()
	if ct.NumNodes() != 0 {
		t.Fatalf("leaf-only tree compiled to %d nodes", ct.NumNodes())
	}
	if got := ct.Predict([]float64{1, 2, 3}); got != 3 {
		t.Fatalf("leaf-only predict = %d, want 3", got)
	}
}

// TestCompiledTreeConcurrentHammer: one compiled tree, many goroutines,
// label-identical output throughout — the shape the serving path runs
// under, exercised with -race in CI.
func TestCompiledTreeConcurrentHammer(t *testing.T) {
	r := rng.New(1234)
	const numFeatures = 8
	tree := randTree(r, 10, numFeatures, 5)
	ct := tree.Compile()
	rows := make([][]float64, 512)
	want := make([]int, len(rows))
	for i := range rows {
		rows[i] = randRow(r, tree, numFeatures)
		want[i] = tree.Predict(rows[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, x := range rows {
					if got := ct.Predict(x); got != want[i] {
						t.Errorf("goroutine %d: row %d: compiled %d, want %d", g, i, got, want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCompiledTreeFrequencyLayout: the breadth-first heavier-first layout
// places the root at index 0 and keeps every child reference pointing
// forward (no back-edges), the property the walk's locality relies on.
func TestCompiledTreeFrequencyLayout(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		tree := randTree(r, 8, 6, 3)
		ct := tree.Compile()
		if len(ct.nodes) == 0 {
			continue
		}
		if ct.root != 0 {
			t.Fatalf("root placed at %d, want 0", ct.root)
		}
		for i, n := range ct.nodes {
			for _, c := range n.child {
				if c >= 0 && c <= int32(i) {
					t.Fatalf("node %d has non-forward child ref %d", i, c)
				}
			}
		}
	}
}
