package dtree

import (
	"encoding/json"
	"testing"
)

func TestTreeJSONRoundTrip(t *testing.T) {
	X, y := axisData(200, 42)
	orig := Train(X, y, Options{NumClasses: 2})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if orig.Predict(X[i]) != back.Predict(X[i]) {
			t.Fatalf("prediction diverged on row %d", i)
		}
	}
	// Structure metadata restored.
	if orig.NumNodes() != back.NumNodes() || orig.Depth() != back.Depth() {
		t.Fatalf("structure changed: nodes %d->%d depth %d->%d",
			orig.NumNodes(), back.NumNodes(), orig.Depth(), back.Depth())
	}
	of, bf := orig.FeaturesUsed(), back.FeaturesUsed()
	if len(of) != len(bf) {
		t.Fatalf("features used %v -> %v", of, bf)
	}
	for i := range of {
		if of[i] != bf[i] {
			t.Fatalf("features used %v -> %v", of, bf)
		}
	}
}

func TestTreeUnmarshalRejectsGarbage(t *testing.T) {
	var tr Tree
	if err := json.Unmarshal([]byte(`{"num_classes":2}`), &tr); err == nil {
		t.Fatal("missing root accepted")
	}
	if err := json.Unmarshal([]byte(`noise`), &tr); err == nil {
		t.Fatal("non-JSON accepted")
	}
	// Internal node missing a child.
	bad := `{"num_classes":2,"root":{"feature":0,"threshold":1,"left":{"leaf":true,"class":0}}}`
	if err := json.Unmarshal([]byte(bad), &tr); err == nil {
		t.Fatal("truncated tree accepted")
	}
}
