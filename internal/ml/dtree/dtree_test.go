package dtree

import (
	"strings"
	"testing"

	"inputtune/internal/rng"
)

// axisData: class = 0 if x0 < 5, else 1. Perfectly separable on feature 0.
func axisData(n int, seed uint64) ([][]float64, []int) {
	r := rng.New(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		x0 := r.Range(0, 10)
		X[i] = []float64{x0, r.Range(0, 10)} // feature 1 is noise
		if x0 < 5 {
			y[i] = 0
		} else {
			y[i] = 1
		}
	}
	return X, y
}

func TestPerfectSeparation(t *testing.T) {
	X, y := axisData(200, 1)
	tree := Train(X, y, Options{NumClasses: 2})
	for i := range X {
		if tree.Predict(X[i]) != y[i] {
			t.Fatalf("misclassified training point %v (label %d)", X[i], y[i])
		}
	}
	used := tree.FeaturesUsed()
	if len(used) != 1 || used[0] != 0 {
		t.Fatalf("tree used features %v, want [0]", used)
	}
}

func TestGeneralisation(t *testing.T) {
	X, y := axisData(300, 2)
	tree := Train(X[:200], y[:200], Options{NumClasses: 2})
	errs := 0
	for i := 200; i < 300; i++ {
		if tree.Predict(X[i]) != y[i] {
			errs++
		}
	}
	if errs > 5 {
		t.Fatalf("%d/100 held-out errors on a trivially separable problem", errs)
	}
}

func TestXorNeedsDepth(t *testing.T) {
	// XOR pattern requires at least two levels of splits.
	var X [][]float64
	var y []int
	r := rng.New(3)
	for i := 0; i < 400; i++ {
		a, b := r.Range(0, 1), r.Range(0, 1)
		X = append(X, []float64{a, b})
		if (a < 0.5) != (b < 0.5) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	tree := Train(X, y, Options{NumClasses: 2, MaxDepth: 6})
	errs := 0
	for i := range X {
		if tree.Predict(X[i]) != y[i] {
			errs++
		}
	}
	if errs > 20 {
		t.Fatalf("XOR training error %d/400", errs)
	}
	if tree.Depth() < 2 {
		t.Fatalf("XOR solved at depth %d?", tree.Depth())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	X, y := axisData(200, 5)
	tree := Train(X, y, Options{NumClasses: 2, MaxDepth: 1})
	if d := tree.Depth(); d > 1 {
		t.Fatalf("depth %d exceeds max 1", d)
	}
}

func TestFeatureRestriction(t *testing.T) {
	X, y := axisData(200, 7)
	// Restrict to the noise feature: the tree may split on it but must
	// never touch feature 0.
	tree := Train(X, y, Options{NumClasses: 2, Features: []int{1}})
	for _, f := range tree.FeaturesUsed() {
		if f != 1 {
			t.Fatalf("restricted tree used feature %d", f)
		}
	}
}

func TestCostMatrixShiftsPrediction(t *testing.T) {
	// One feature, classes overlap 50/50 at every x. With symmetric costs
	// the majority (class 0, 60%) wins; with a heavy penalty for
	// misclassifying true class 1 as 0, the tree should flip to class 1.
	var X [][]float64
	var y []int
	for i := 0; i < 60; i++ {
		X = append(X, []float64{1})
		y = append(y, 0)
	}
	for i := 0; i < 40; i++ {
		X = append(X, []float64{1})
		y = append(y, 1)
	}
	plain := Train(X, y, Options{NumClasses: 2})
	if got := plain.Predict([]float64{1}); got != 0 {
		t.Fatalf("0/1 loss predicted %d, want majority 0", got)
	}
	costly := Train(X, y, Options{NumClasses: 2, CostMatrix: [][]float64{
		{0, 1},
		{10, 0}, // predicting 0 when truth is 1 costs 10x
	}})
	if got := costly.Predict([]float64{1}); got != 1 {
		t.Fatalf("cost-sensitive tree predicted %d, want 1", got)
	}
}

func TestMultiClass(t *testing.T) {
	r := rng.New(11)
	var X [][]float64
	var y []int
	for c := 0; c < 4; c++ {
		for i := 0; i < 50; i++ {
			X = append(X, []float64{float64(c) + r.Range(0, 0.8)})
			y = append(y, c)
		}
	}
	tree := Train(X, y, Options{NumClasses: 4})
	errs := 0
	for i := range X {
		if tree.Predict(X[i]) != y[i] {
			errs++
		}
	}
	if errs > 4 {
		t.Fatalf("4-class training error %d/200", errs)
	}
}

func TestConstantFeaturesYieldLeaf(t *testing.T) {
	X := [][]float64{{1}, {1}, {1}, {1}}
	y := []int{0, 1, 0, 0}
	tree := Train(X, y, Options{NumClasses: 2})
	if tree.NumNodes() != 1 {
		t.Fatalf("unsplittable data produced %d nodes", tree.NumNodes())
	}
	if tree.Predict([]float64{1}) != 0 {
		t.Fatal("should predict majority class")
	}
}

func TestSingleSample(t *testing.T) {
	tree := Train([][]float64{{3}}, []int{1}, Options{NumClasses: 2})
	if tree.Predict([]float64{99}) != 1 {
		t.Fatal("single-sample tree should predict its only label")
	}
}

func TestCrossValidate(t *testing.T) {
	X, y := axisData(300, 13)
	mean, perFold := CrossValidate(X, y, Options{NumClasses: 2}, 10, 99)
	if len(perFold) != 10 {
		t.Fatalf("perFold size %d", len(perFold))
	}
	if mean > 0.05 {
		t.Fatalf("CV cost %v on separable data", mean)
	}
}

func TestCrossValidateFoldsClamped(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}}
	y := []int{0, 1, 1}
	mean, perFold := CrossValidate(X, y, Options{NumClasses: 2, MinLeaf: 1}, 10, 1)
	if len(perFold) != 3 {
		t.Fatalf("folds not clamped: %d", len(perFold))
	}
	_ = mean
}

func TestStringRendering(t *testing.T) {
	X, y := axisData(100, 17)
	tree := Train(X, y, Options{NumClasses: 2})
	s := tree.String()
	if !strings.Contains(s, "class") || !strings.Contains(s, "f0 <") {
		t.Fatalf("unexpected render:\n%s", s)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":      func() { Train(nil, nil, Options{NumClasses: 2}) },
		"mismatched": func() { Train([][]float64{{1}}, []int{0, 1}, Options{NumClasses: 2}) },
		"noClasses":  func() { Train([][]float64{{1}}, []int{0}, Options{}) },
		"badFolds":   func() { CrossValidate([][]float64{{1}}, []int{0}, Options{NumClasses: 1}, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
