// Package dtree implements the cost-sensitive CART decision trees used by
// the exhaustive feature-subset classifiers of the paper's Level 2
// (Section 3.2). Splits minimise expected misclassification cost under a
// caller-supplied cost matrix C[i][j] — the cost of predicting class j for
// a point whose true label is i — which is how the paper folds the
// performance and accuracy penalties of picking the wrong landmark
// configuration into classifier training.
package dtree

import (
	"fmt"
	"sort"

	"inputtune/internal/rng"
)

// Options configures tree induction. Zero values select defaults.
type Options struct {
	NumClasses int // required
	// Features restricts splitting to these feature indices (nil = all).
	// Prediction reads only these columns, so a tree trained on a feature
	// subset never forces extraction of other features.
	Features []int
	// CostMatrix[i][j] is the cost of predicting j when the truth is i.
	// nil means 0/1 loss.
	CostMatrix [][]float64
	MaxDepth   int // default 12
	MinLeaf    int // default 2
}

func (o *Options) setDefaults() {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 12
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 2
	}
}

func (o *Options) cost(truth, pred int) float64 {
	if o.CostMatrix == nil {
		if truth == pred {
			return 0
		}
		return 1
	}
	return o.CostMatrix[truth][pred]
}

type node struct {
	// Leaf fields.
	leaf  bool
	class int
	// Internal fields.
	feature   int
	threshold float64
	left      *node // feature value < threshold
	right     *node
}

// Tree is a fitted decision tree.
type Tree struct {
	root    *node
	opts    Options
	usedSet map[int]bool
}

// ReferenceTrain fits a tree to rows X with integer labels y in
// [0, NumClasses) by re-sorting the node's rows on every feature at every
// node — O(n·f·log n) per node. It is the original trainer, retained
// verbatim as the differential-testing reference for the presorted-feature
// backbone (Train/TrainMatrix): the two must produce byte-identical
// serialised trees for any input, which the package tests enforce.
func ReferenceTrain(X [][]float64, y []int, opts Options) *Tree {
	if len(X) == 0 || len(X) != len(y) {
		panic("dtree: bad training data")
	}
	if opts.NumClasses <= 0 {
		panic("dtree: NumClasses required")
	}
	opts.setDefaults()
	feats := opts.Features
	if feats == nil {
		for f := 0; f < len(X[0]); f++ {
			feats = append(feats, f)
		}
	}
	t := &Tree{opts: opts, usedSet: map[int]bool{}}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(X, y, idx, feats, 0)
	return t
}

// counts tallies class membership of the index subset.
func classCounts(y []int, idx []int, k int) []float64 {
	c := make([]float64, k)
	for _, i := range idx {
		c[y[i]]++
	}
	return c
}

// bestLabel returns the label minimising expected cost over counts, and
// that minimum total cost.
func (t *Tree) bestLabel(counts []float64) (int, float64) {
	bestJ, bestC := 0, -1.0
	for j := 0; j < t.opts.NumClasses; j++ {
		c := 0.0
		for i, n := range counts {
			if n > 0 {
				c += n * t.opts.cost(i, j)
			}
		}
		if bestC < 0 || c < bestC {
			bestJ, bestC = j, c
		}
	}
	return bestJ, bestC
}

func (t *Tree) build(X [][]float64, y []int, idx []int, feats []int, depth int) *node {
	counts := classCounts(y, idx, t.opts.NumClasses)
	label, nodeCost := t.bestLabel(counts)
	if depth >= t.opts.MaxDepth || len(idx) < 2*t.opts.MinLeaf || nodeCost == 0 {
		return &node{leaf: true, class: label}
	}
	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	sorted := make([]int, len(idx))
	for _, f := range feats {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return X[sorted[a]][f] < X[sorted[b]][f] })
		leftCounts := make([]float64, t.opts.NumClasses)
		rightCounts := append([]float64(nil), counts...)
		for pos := 0; pos < len(sorted)-1; pos++ {
			i := sorted[pos]
			leftCounts[y[i]]++
			rightCounts[y[i]]--
			v, next := X[i][f], X[sorted[pos+1]][f]
			if v == next {
				continue // can't split between equal values
			}
			nLeft, nRight := pos+1, len(sorted)-pos-1
			if nLeft < t.opts.MinLeaf || nRight < t.opts.MinLeaf {
				continue
			}
			_, lc := t.bestLabel(leftCounts)
			_, rc := t.bestLabel(rightCounts)
			gain := nodeCost - (lc + rc)
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThresh = (v + next) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &node{leaf: true, class: label}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if X[i][bestFeat] < bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &node{leaf: true, class: label}
	}
	t.usedSet[bestFeat] = true
	return &node{
		feature:   bestFeat,
		threshold: bestThresh,
		left:      t.build(X, y, leftIdx, feats, depth+1),
		right:     t.build(X, y, rightIdx, feats, depth+1),
	}
}

// Predict returns the class for feature vector x.
func (t *Tree) Predict(x []float64) int {
	n := t.root
	for !n.leaf {
		if x[n.feature] < n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// FeaturesUsed returns the sorted set of feature indices the tree actually
// splits on — possibly a strict subset of Options.Features, which lets the
// classifier selector skip extraction of unused features.
func (t *Tree) FeaturesUsed() []int {
	out := make([]int, 0, len(t.usedSet))
	for f := range t.usedSet {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return countNodes(t.root) }

func countNodes(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// Depth returns the maximum depth (a lone leaf has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// String renders the tree structure for debugging.
func (t *Tree) String() string { return render(t.root, 0) }

func render(n *node, ind int) string {
	pad := ""
	for i := 0; i < ind; i++ {
		pad += "  "
	}
	if n.leaf {
		return fmt.Sprintf("%s=> class %d\n", pad, n.class)
	}
	return fmt.Sprintf("%sf%d < %.4g?\n%s%s", pad, n.feature, n.threshold,
		render(n.left, ind+1), render(n.right, ind+1))
}

// CrossValidate performs k-fold cross validation and returns the mean
// held-out misclassification cost per sample (under the option's cost
// matrix) and the per-fold costs. Folds are assigned by shuffling with the
// given seed. This mirrors the paper's 10-fold protocol for the exhaustive
// feature-subset classifiers.
func CrossValidate(X [][]float64, y []int, opts Options, folds int, seed uint64) (mean float64, perFold []float64) {
	if folds < 2 {
		panic("dtree: need at least 2 folds")
	}
	if folds > len(X) {
		folds = len(X)
	}
	r := rng.New(seed)
	perm := r.Perm(len(X))
	perFold = make([]float64, folds)
	for f := 0; f < folds; f++ {
		var trX [][]float64
		var trY []int
		var teIdx []int
		for pos, i := range perm {
			if pos%folds == f {
				teIdx = append(teIdx, i)
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		if len(trX) == 0 || len(teIdx) == 0 {
			continue
		}
		tree := Train(trX, trY, opts)
		total := 0.0
		for _, i := range teIdx {
			total += opts.cost(y[i], tree.Predict(X[i]))
		}
		perFold[f] = total / float64(len(teIdx))
	}
	sum := 0.0
	for _, c := range perFold {
		sum += c
	}
	return sum / float64(folds), perFold
}
