// Package ml groups the learning components of the two-level framework.
// It contains no code of its own; the machinery lives in three
// subpackages, each deterministic per seed:
//
//   - dtree — cost-sensitive CART decision trees, the exhaustive
//     feature-subset classifiers of Section 3.2. Includes the
//     presorted-feature training backbone (FeatureMatrix/TrainMatrix)
//     that the classifier zoo shares across all (z+1)^u−1 subsets, and
//     the original re-sorting trainer (ReferenceTrain) retained as its
//     byte-exactness reference.
//   - bayes — the incremental feature-examination classifier: features
//     discretised into decision regions, acquired cheapest-first at
//     deployment until a class posterior passes the threshold τ.
//   - kmeans — k-means with k-means++ seeding, the Level-1 input-space
//     clustering step.
//
// The packages depend only on internal/rng and internal/stats, so they
// can be reused (and differentially tested) in isolation from the
// training pipeline in internal/core.
package ml
