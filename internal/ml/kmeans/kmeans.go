// Package kmeans implements K-means clustering with k-means++ seeding, the
// Level-1 input-space clustering step of the paper (Section 3.1, Step 2).
package kmeans

import (
	"inputtune/internal/rng"
	"inputtune/internal/stats"
)

// Options configures a clustering run.
type Options struct {
	K       int
	MaxIter int    // default 100
	Seed    uint64 // deterministic per seed
}

// Result is a fitted clustering.
type Result struct {
	Centroids  [][]float64
	Labels     []int
	Inertia    float64 // sum of squared distances to assigned centroids
	Iterations int
}

// Cluster fits K-means to points (each an equal-length feature vector).
// K is clamped to len(points). It panics on an empty input.
func Cluster(points [][]float64, opts Options) *Result {
	if len(points) == 0 {
		panic("kmeans: no points")
	}
	if opts.K <= 0 {
		panic("kmeans: K must be positive")
	}
	k := opts.K
	if k > len(points) {
		k = len(points)
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	r := rng.New(opts.Seed)
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			panic("kmeans: ragged points")
		}
	}

	centroids := seedPlusPlus(points, k, r)
	labels := make([]int, len(points))
	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := assign(points, centroids, labels)
		recompute(points, centroids, labels, r)
		if !changed && iter > 0 {
			break
		}
	}
	res.Centroids = centroids
	res.Labels = labels
	res.Inertia = inertia(points, centroids, labels)
	return res
}

// seedPlusPlus picks initial centroids with k-means++: first uniform, then
// proportional to squared distance from the nearest chosen centroid.
func seedPlusPlus(points [][]float64, k int, r *rng.RNG) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := r.Intn(len(points))
	centroids = append(centroids, clone(points[first]))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := stats.SquaredEuclidean(p, centroids[0])
			for _, c := range centroids[1:] {
				if d := stats.SquaredEuclidean(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with existing centroids.
			centroids = append(centroids, clone(points[r.Intn(len(points))]))
			continue
		}
		t := r.Float64() * total
		acc := 0.0
		picked := len(points) - 1
		for i, d := range d2 {
			acc += d
			if t < acc {
				picked = i
				break
			}
		}
		centroids = append(centroids, clone(points[picked]))
	}
	return centroids
}

func assign(points, centroids [][]float64, labels []int) bool {
	changed := false
	for i, p := range points {
		best, bestD := 0, stats.SquaredEuclidean(p, centroids[0])
		for c := 1; c < len(centroids); c++ {
			if d := stats.SquaredEuclidean(p, centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if labels[i] != best {
			labels[i] = best
			changed = true
		}
	}
	return changed
}

func recompute(points, centroids [][]float64, labels []int, r *rng.RNG) {
	dim := len(points[0])
	counts := make([]int, len(centroids))
	for c := range centroids {
		for j := 0; j < dim; j++ {
			centroids[c][j] = 0
		}
	}
	for i, p := range points {
		c := labels[i]
		counts[c]++
		for j, v := range p {
			centroids[c][j] += v
		}
	}
	// First pass: turn sums into means for non-empty clusters.
	for c := range centroids {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		for j := 0; j < dim; j++ {
			centroids[c][j] *= inv
		}
	}
	// Second pass: reseed empty clusters at the point farthest from its
	// currently assigned centroid (splits the loosest cluster).
	for c := range centroids {
		if counts[c] != 0 {
			continue
		}
		far, farD := r.Intn(len(points)), -1.0
		for i, p := range points {
			if counts[labels[i]] == 0 {
				continue
			}
			if d := stats.SquaredEuclidean(p, centroids[labels[i]]); d > farD {
				far, farD = i, d
			}
		}
		copy(centroids[c], points[far])
	}
}

func inertia(points, centroids [][]float64, labels []int) float64 {
	total := 0.0
	for i, p := range points {
		total += stats.SquaredEuclidean(p, centroids[labels[i]])
	}
	return total
}

// Nearest returns the index of the centroid closest to point.
func (r *Result) Nearest(point []float64) int {
	best, bestD := 0, stats.SquaredEuclidean(point, r.Centroids[0])
	for c := 1; c < len(r.Centroids); c++ {
		if d := stats.SquaredEuclidean(point, r.Centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// ClusterSizes returns the number of points per cluster.
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, len(r.Centroids))
	for _, l := range r.Labels {
		sizes[l]++
	}
	return sizes
}

// MedoidIndex returns, for cluster c, the index of the member point closest
// to the centroid (the paper autotunes on each cluster's centroid; since a
// centroid need not be a real input, we hand the autotuner the nearest
// actual exemplar — the medoid).
func (r *Result) MedoidIndex(points [][]float64, c int) int {
	best, bestD := -1, 0.0
	for i, p := range points {
		if r.Labels[i] != c {
			continue
		}
		d := stats.SquaredEuclidean(p, r.Centroids[c])
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func clone(p []float64) []float64 { return append([]float64(nil), p...) }
