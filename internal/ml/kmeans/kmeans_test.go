package kmeans

import (
	"testing"

	"inputtune/internal/rng"
	"inputtune/internal/stats"
)

// blobs generates n points around each of the given centers.
func blobs(centers [][]float64, n int, spread float64, seed uint64) [][]float64 {
	r := rng.New(seed)
	var out [][]float64
	for _, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for j := range p {
				p[j] = c[j] + r.Norm(0, spread)
			}
			out = append(out, p)
		}
	}
	return out
}

func TestRecoversWellSeparatedBlobs(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	points := blobs(centers, 50, 0.5, 1)
	res := Cluster(points, Options{K: 3, Seed: 2})
	// Every recovered centroid must be within 1 unit of a true center.
	used := map[int]bool{}
	for _, c := range res.Centroids {
		found := false
		for i, tc := range centers {
			if !used[i] && stats.Euclidean(c, tc) < 1 {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("centroid %v matches no true center", c)
		}
	}
	// All 150 points labelled, 50 per cluster.
	sizes := res.ClusterSizes()
	for _, s := range sizes {
		if s != 50 {
			t.Fatalf("cluster sizes %v, want 50 each", sizes)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	points := blobs([][]float64{{0, 0}, {5, 5}}, 30, 1, 3)
	a := Cluster(points, Options{K: 2, Seed: 7})
	b := Cluster(points, Options{K: 2, Seed: 7})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestLabelsMatchNearestCentroid(t *testing.T) {
	points := blobs([][]float64{{0, 0}, {8, 0}, {0, 8}}, 40, 1, 5)
	res := Cluster(points, Options{K: 3, Seed: 11})
	for i, p := range points {
		if res.Nearest(p) != res.Labels[i] {
			t.Fatalf("point %d label %d but nearest centroid %d", i, res.Labels[i], res.Nearest(p))
		}
	}
}

func TestInertiaDecreasesWithMoreClusters(t *testing.T) {
	points := blobs([][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}, 25, 1.5, 13)
	var prev float64
	for i, k := range []int{1, 2, 4, 8} {
		res := Cluster(points, Options{K: k, Seed: 17})
		if i > 0 && res.Inertia > prev*1.05 {
			t.Fatalf("inertia rose from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestKClampedToPointCount(t *testing.T) {
	points := [][]float64{{0}, {1}, {2}}
	res := Cluster(points, Options{K: 10, Seed: 1})
	if len(res.Centroids) != 3 {
		t.Fatalf("K not clamped: %d centroids", len(res.Centroids))
	}
}

func TestDuplicatePointsHandled(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res := Cluster(points, Options{K: 3, Seed: 9})
	if res.Inertia != 0 {
		t.Fatalf("inertia %v for identical points", res.Inertia)
	}
}

func TestMedoidIsClusterMember(t *testing.T) {
	points := blobs([][]float64{{0, 0}, {20, 20}}, 30, 1, 21)
	res := Cluster(points, Options{K: 2, Seed: 23})
	for c := 0; c < 2; c++ {
		m := res.MedoidIndex(points, c)
		if m < 0 || res.Labels[m] != c {
			t.Fatalf("medoid %d of cluster %d not a member", m, c)
		}
		// Medoid must be at least as close to the centroid as any member.
		md := stats.SquaredEuclidean(points[m], res.Centroids[c])
		for i, p := range points {
			if res.Labels[i] == c && stats.SquaredEuclidean(p, res.Centroids[c]) < md-1e-12 {
				t.Fatalf("member %d closer to centroid than medoid", i)
			}
		}
	}
}

func TestMedoidEmptyClusterReturnsMinusOne(t *testing.T) {
	points := [][]float64{{0}, {1}}
	res := Cluster(points, Options{K: 2, Seed: 1})
	// Construct a label slice with no members of cluster 1.
	res.Labels = []int{0, 0}
	if m := res.MedoidIndex(points, 1); m != -1 {
		t.Fatalf("medoid of empty cluster = %d, want -1", m)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":  func() { Cluster(nil, Options{K: 1}) },
		"zeroK":  func() { Cluster([][]float64{{1}}, Options{K: 0}) },
		"ragged": func() { Cluster([][]float64{{1}, {1, 2}}, Options{K: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
