package bayes

import "encoding/json"

// classifierJSON is the serialised form of a Classifier.
type classifierJSON struct {
	NumClasses int           `json:"num_classes"`
	Threshold  float64       `json:"threshold"`
	Order      []int         `json:"order"`
	Cuts       [][]float64   `json:"cuts"`
	LogCond    [][][]float64 `json:"log_cond"`
	LogPrior   []float64     `json:"log_prior"`
}

// MarshalJSON serialises the fitted classifier.
func (c *Classifier) MarshalJSON() ([]byte, error) {
	return json.Marshal(classifierJSON{
		NumClasses: c.opts.NumClasses,
		Threshold:  c.opts.Threshold,
		Order:      c.opts.Order,
		Cuts:       c.cuts,
		LogCond:    c.logCond,
		LogPrior:   c.logPrior,
	})
}

// UnmarshalJSON restores a classifier serialised by MarshalJSON.
func (c *Classifier) UnmarshalJSON(data []byte) error {
	var j classifierJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	c.opts = Options{
		NumClasses: j.NumClasses,
		Threshold:  j.Threshold,
		Order:      j.Order,
	}
	c.cuts = j.Cuts
	c.logCond = j.LogCond
	c.logPrior = j.LogPrior
	return nil
}
