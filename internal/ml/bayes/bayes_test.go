package bayes

import (
	"math"
	"testing"

	"inputtune/internal/rng"
)

// separableData: feature 0 perfectly separates the classes; feature 1 is
// pure noise.
func separableData(n int, seed uint64) ([][]float64, []int) {
	r := rng.New(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		if r.Bool() {
			X[i] = []float64{r.Range(0, 1), r.Range(0, 10)}
			y[i] = 0
		} else {
			X[i] = []float64{r.Range(2, 3), r.Range(0, 10)}
			y[i] = 1
		}
	}
	return X, y
}

func TestPredictFullAccuracy(t *testing.T) {
	X, y := separableData(400, 1)
	c := Train(X[:300], y[:300], Options{NumClasses: 2})
	errs := 0
	for i := 300; i < 400; i++ {
		if c.PredictFull(X[i]) != y[i] {
			errs++
		}
	}
	if errs > 5 {
		t.Fatalf("%d/100 errors on separable data", errs)
	}
}

func TestIncrementalStopsEarlyOnStrongFeature(t *testing.T) {
	X, y := separableData(500, 2)
	// Eight regions keep the class boundary out of the region containing
	// X[0], so the first feature alone is decisive.
	c := Train(X, y, Options{NumClasses: 2, Threshold: 0.9, Regions: 8})
	// Feature 0 is decisive: classification should stop after acquiring it.
	pred, used := c.Classify(func(f int) float64 { return X[0][f] })
	if pred != y[0] {
		t.Fatalf("predicted %d, want %d", pred, y[0])
	}
	if len(used) != 1 || used[0] != 0 {
		t.Fatalf("acquired features %v, want just [0]", used)
	}
}

func TestIncrementalAcquiresMoreWhenUncertain(t *testing.T) {
	// Feature 0 is useless; feature 1 decides. The classifier must keep
	// acquiring past feature 0.
	r := rng.New(3)
	var X [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		cls := 0
		if r.Bool() {
			cls = 1
		}
		X = append(X, []float64{r.Range(0, 1), float64(cls*10) + r.Range(0, 1)})
		y = append(y, cls)
	}
	c := Train(X, y, Options{NumClasses: 2, Threshold: 0.9})
	correct := 0
	sawMultiFeature := false
	for i := 0; i < 100; i++ {
		pred, used := c.Classify(func(f int) float64 { return X[i][f] })
		if pred == y[i] {
			correct++
		}
		if len(used) > 1 {
			sawMultiFeature = true
		}
	}
	if correct < 90 {
		t.Fatalf("only %d/100 correct", correct)
	}
	if !sawMultiFeature {
		t.Fatal("never acquired the decisive second feature")
	}
}

func TestCustomOrderRespected(t *testing.T) {
	X, y := separableData(300, 5)
	c := Train(X, y, Options{NumClasses: 2, Order: []int{1, 0}, Threshold: 0.99})
	_, used := c.Classify(func(f int) float64 { return X[0][f] })
	if used[0] != 1 {
		t.Fatalf("first acquired feature %d, want 1 (per custom order)", used[0])
	}
}

func TestPriorsDominateWithUselessFeatures(t *testing.T) {
	// 90/10 class imbalance, feature carries no signal: prediction should
	// be the majority class.
	r := rng.New(7)
	var X [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		X = append(X, []float64{r.Range(0, 1)})
		if i%10 == 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	c := Train(X, y, Options{NumClasses: 2})
	wrong := 0
	for i := 0; i < 50; i++ {
		if c.PredictFull([]float64{r.Range(0, 1)}) != 0 {
			wrong++
		}
	}
	if wrong > 5 {
		t.Fatalf("majority prior ignored on %d/50 draws", wrong)
	}
}

func TestRegionsBounded(t *testing.T) {
	// Two distinct values but many requested regions: cuts must deduplicate.
	X := [][]float64{{0}, {0}, {1}, {1}}
	y := []int{0, 0, 1, 1}
	c := Train(X, y, Options{NumClasses: 2, Regions: 32})
	if len(c.cuts[0]) > 2 {
		t.Fatalf("%d cuts for 2 distinct values", len(c.cuts[0]))
	}
	if c.PredictFull([]float64{0}) != 0 || c.PredictFull([]float64{1}) != 1 {
		t.Fatal("two-value problem misclassified")
	}
}

func TestMulticlass(t *testing.T) {
	r := rng.New(9)
	var X [][]float64
	var y []int
	for k := 0; k < 5; k++ {
		for i := 0; i < 60; i++ {
			X = append(X, []float64{float64(k) + r.Range(0, 0.5)})
			y = append(y, k)
		}
	}
	c := Train(X, y, Options{NumClasses: 5, Regions: 10})
	errs := 0
	for i := range X {
		if c.PredictFull(X[i]) != y[i] {
			errs++
		}
	}
	if errs > 15 {
		t.Fatalf("5-class training error %d/300", errs)
	}
}

func TestFitSearchPicksLowScore(t *testing.T) {
	X, y := separableData(200, 11)
	calls := 0
	// Score function that prefers high thresholds.
	c, score := FitSearch(X, y, Options{NumClasses: 2}, []int{4, 8}, []float64{0.6, 0.9}, func(cl *Classifier) float64 {
		calls++
		return 1 - cl.Threshold()
	})
	if calls != 4 {
		t.Fatalf("FitSearch tried %d combos, want 4", calls)
	}
	if c.Threshold() != 0.9 {
		t.Fatalf("picked threshold %v, want 0.9", c.Threshold())
	}
	if math.Abs(score-0.1) > 1e-9 {
		t.Fatalf("score = %v", score)
	}
}

func TestFitSearchDefaults(t *testing.T) {
	X, y := separableData(100, 13)
	c, _ := FitSearch(X, y, Options{NumClasses: 2}, nil, nil, func(cl *Classifier) float64 { return 0 })
	if c == nil {
		t.Fatal("FitSearch returned nil with default grids")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":      func() { Train(nil, nil, Options{NumClasses: 2}) },
		"mismatched": func() { Train([][]float64{{1}}, []int{0, 1}, Options{NumClasses: 2}) },
		"noClasses":  func() { Train([][]float64{{1}}, []int{0}, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
