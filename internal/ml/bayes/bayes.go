// Package bayes implements the paper's Incremental Feature Examination
// classifier (Section 3.2, classifier 4): each feature is discretised into
// decision regions, class-conditional region probabilities are estimated
// from training data, and at deployment features are acquired one at a time
// — cheapest first — until some class's posterior exceeds a threshold τ.
// This gives a variable, input-dependent feature-extraction cost.
package bayes

import (
	"math"
	"sort"
)

// Options configures training.
type Options struct {
	NumClasses int // required
	// Regions is the number of decision regions per feature (default:
	// max(4, NumClasses), capped by the number of distinct values).
	Regions int
	// Threshold is the posterior τ above which classification stops
	// (default 0.85).
	Threshold float64
	// Order is the feature-acquisition order (indices into the feature
	// vector), typically cheapest extraction first. nil = natural order.
	Order []int
	// Laplace is the additive smoothing constant (default 1).
	Laplace float64
}

func (o *Options) setDefaults(numFeatures int) {
	if o.Regions <= 0 {
		o.Regions = o.NumClasses
		if o.Regions < 4 {
			o.Regions = 4
		}
	}
	if o.Threshold <= 0 || o.Threshold >= 1 {
		o.Threshold = 0.85
	}
	if o.Laplace <= 0 {
		o.Laplace = 1
	}
	if o.Order == nil {
		o.Order = make([]int, numFeatures)
		for i := range o.Order {
			o.Order[i] = i
		}
	}
}

// Classifier is a fitted incremental classifier.
type Classifier struct {
	opts Options
	// cuts[f] holds ascending region boundaries for feature f; a value v
	// falls in region r = #boundaries below v.
	cuts [][]float64
	// logCond[f][r][k] = log P(feature f in region r | class k).
	logCond  [][][]float64
	logPrior []float64
}

// Train fits the classifier on rows X with labels y.
func Train(X [][]float64, y []int, opts Options) *Classifier {
	if len(X) == 0 || len(X) != len(y) {
		panic("bayes: bad training data")
	}
	if opts.NumClasses <= 0 {
		panic("bayes: NumClasses required")
	}
	nf := len(X[0])
	opts.setDefaults(nf)
	c := &Classifier{opts: opts}

	// Priors with smoothing.
	counts := make([]float64, opts.NumClasses)
	for _, label := range y {
		counts[label]++
	}
	c.logPrior = make([]float64, opts.NumClasses)
	total := float64(len(y)) + opts.Laplace*float64(opts.NumClasses)
	for k := range c.logPrior {
		c.logPrior[k] = math.Log((counts[k] + opts.Laplace) / total)
	}

	// Decision regions per feature: quantile cuts over the training values.
	c.cuts = make([][]float64, nf)
	c.logCond = make([][][]float64, nf)
	col := make([]float64, len(X))
	for f := 0; f < nf; f++ {
		for i := range X {
			col[i] = X[i][f]
		}
		c.cuts[f] = quantileCuts(col, opts.Regions)
		nr := len(c.cuts[f]) + 1
		// Tally region × class.
		tally := make([][]float64, nr)
		for r := range tally {
			tally[r] = make([]float64, opts.NumClasses)
		}
		for i := range X {
			tally[c.region(f, X[i][f])][y[i]]++
		}
		c.logCond[f] = make([][]float64, nr)
		for r := 0; r < nr; r++ {
			c.logCond[f][r] = make([]float64, opts.NumClasses)
			for k := 0; k < opts.NumClasses; k++ {
				num := tally[r][k] + opts.Laplace
				den := counts[k] + opts.Laplace*float64(nr)
				c.logCond[f][r][k] = math.Log(num / den)
			}
		}
	}
	return c
}

// quantileCuts returns up to regions-1 distinct interior boundaries.
func quantileCuts(col []float64, regions int) []float64 {
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	var cuts []float64
	for r := 1; r < regions; r++ {
		q := float64(r) / float64(regions)
		pos := q * float64(len(sorted)-1)
		v := sorted[int(pos)]
		if len(cuts) == 0 || v > cuts[len(cuts)-1] {
			cuts = append(cuts, v)
		}
	}
	return cuts
}

// region returns the decision region of value v for feature f.
func (c *Classifier) region(f int, v float64) int {
	cuts := c.cuts[f]
	// Linear scan: region counts are tiny (≤ ~10).
	for r, cut := range cuts {
		if v <= cut {
			return r
		}
	}
	return len(cuts)
}

// Classify acquires features through acquire (called lazily, in the
// configured order) until a class posterior exceeds the threshold or all
// features are used. It returns the predicted class and the indices of
// features actually acquired, in acquisition order.
func (c *Classifier) Classify(acquire func(feature int) float64) (class int, used []int) {
	logPost := append([]float64(nil), c.logPrior...)
	for _, f := range c.opts.Order {
		v := acquire(f)
		used = append(used, f)
		r := c.region(f, v)
		for k := range logPost {
			logPost[k] += c.logCond[f][r][k]
		}
		if k, p := posteriorMax(logPost); p > c.opts.Threshold {
			return k, used
		}
	}
	k, _ := posteriorMax(logPost)
	return k, used
}

// PredictFull classifies using the entire feature vector at once (no early
// stopping); used when features were already extracted.
func (c *Classifier) PredictFull(x []float64) int {
	logPost := append([]float64(nil), c.logPrior...)
	for _, f := range c.opts.Order {
		r := c.region(f, x[f])
		for k := range logPost {
			logPost[k] += c.logCond[f][r][k]
		}
	}
	k, _ := posteriorMax(logPost)
	return k
}

// posteriorMax normalises log posteriors and returns the argmax class and
// its probability.
func posteriorMax(logPost []float64) (int, float64) {
	best, maxLog := 0, logPost[0]
	for k, lp := range logPost {
		if lp > maxLog {
			best, maxLog = k, lp
		}
	}
	sum := 0.0
	for _, lp := range logPost {
		sum += math.Exp(lp - maxLog)
	}
	return best, 1 / sum
}

// Threshold returns the posterior threshold in effect.
func (c *Classifier) Threshold() float64 { return c.opts.Threshold }

// Regions returns the configured region count.
func (c *Classifier) Regions() int { return c.opts.Regions }

// FitSearch trains classifiers over a small grid of region counts and
// posterior thresholds and returns the one minimising score (lower is
// better), along with its score. This mirrors the paper's "simple
// continuous parameter search" over decision regions and τ, with the
// domain-specific cost function supplied by the caller (Level 2 plugs in
// the full performance-plus-extraction-cost objective here).
func FitSearch(X [][]float64, y []int, base Options, regionGrid []int, thresholdGrid []float64, score func(*Classifier) float64) (*Classifier, float64) {
	if len(regionGrid) == 0 {
		regionGrid = []int{4, 8, 16}
	}
	if len(thresholdGrid) == 0 {
		thresholdGrid = []float64{0.6, 0.75, 0.85, 0.95}
	}
	var best *Classifier
	bestScore := math.Inf(1)
	for _, nr := range regionGrid {
		for _, th := range thresholdGrid {
			opts := base
			opts.Regions = nr
			opts.Threshold = th
			cand := Train(X, y, opts)
			if s := score(cand); s < bestScore {
				best, bestScore = cand, s
			}
		}
	}
	return best, bestScore
}
