package bayes

import (
	"encoding/json"
	"testing"
)

func TestClassifierJSONRoundTrip(t *testing.T) {
	X, y := separableData(300, 42)
	orig := Train(X, y, Options{NumClasses: 2, Regions: 8, Threshold: 0.9})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Classifier
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if orig.PredictFull(X[i]) != back.PredictFull(X[i]) {
			t.Fatalf("full prediction diverged on row %d", i)
		}
		// Incremental acquisition must behave identically too.
		lo, uo := orig.Classify(func(f int) float64 { return X[i][f] })
		lb, ub := back.Classify(func(f int) float64 { return X[i][f] })
		if lo != lb || len(uo) != len(ub) {
			t.Fatalf("incremental path diverged on row %d", i)
		}
	}
	if orig.Threshold() != back.Threshold() {
		t.Fatal("threshold lost")
	}
}

func TestClassifierUnmarshalGarbage(t *testing.T) {
	var c Classifier
	if err := json.Unmarshal([]byte("nope"), &c); err == nil {
		t.Fatal("non-JSON accepted")
	}
}
