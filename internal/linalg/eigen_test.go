package linalg

import (
	"math"
	"testing"

	"inputtune/internal/rng"
)

// randomSymmetric builds a random symmetric matrix with a diagonal boost.
func randomSymmetric(n int, r *rng.RNG) *Matrix {
	a := Random(n, n, r)
	s := a.Add(a.T()).Scale(0.5)
	return s
}

func TestSymmetricEigenKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, st := SymmetricEigen(a, 0, 0)
	if math.Abs(vals[0]-3) > 1e-9 || math.Abs(vals[1]-1) > 1e-9 {
		t.Fatalf("vals = %v", vals)
	}
	if st.Rotations == 0 {
		t.Fatal("expected at least one rotation")
	}
	// Check A v = λ v for each pair.
	for j := 0; j < 2; j++ {
		v := []float64{vecs.At(0, j), vecs.At(1, j)}
		av := a.MulVec(v)
		for i := range v {
			if math.Abs(av[i]-vals[j]*v[i]) > 1e-9 {
				t.Fatalf("eigenpair %d violated: Av=%v λv=%v", j, av[i], vals[j]*v[i])
			}
		}
	}
}

func TestSymmetricEigenReconstruction(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 5; trial++ {
		n := r.IntRange(2, 10)
		a := randomSymmetric(n, r)
		vals, vecs, _ := SymmetricEigen(a, 0, 0)
		// A = V Λ V^T
		lam := NewMatrix(n, n)
		for i, v := range vals {
			lam.Set(i, i, v)
		}
		recon := vecs.Mul(lam).Mul(vecs.T())
		if !recon.EqualTol(a, 1e-8) {
			t.Fatalf("trial %d: eigen reconstruction failed (n=%d)", trial, n)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
	}
}

func TestPowerIterationDominant(t *testing.T) {
	// Diagonal matrix: dominant eigenvalue trivially 5.
	a := FromRows([][]float64{{5, 0, 0}, {0, 2, 0}, {0, 0, 1}})
	vals, vecs, st := PowerIteration(a, 2, 500, 1e-12, nil)
	if math.Abs(vals[0]-5) > 1e-6 {
		t.Fatalf("dominant eigenvalue = %v, want 5", vals[0])
	}
	if math.Abs(vals[1]-2) > 1e-4 {
		t.Fatalf("second eigenvalue = %v, want 2", vals[1])
	}
	if st.MatVecs == 0 {
		t.Fatal("no matvec work recorded")
	}
	// Dominant eigenvector should align with e1.
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-6 {
		t.Fatalf("dominant eigenvector = %v", vecs)
	}
}

func TestJacobiSVDReconstruction(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 5; trial++ {
		m, n := r.IntRange(3, 10), r.IntRange(2, 8)
		if m < n {
			m, n = n, m
		}
		a := Random(m, n, r)
		res := JacobiSVD(a, 0, 0)
		if !res.Reconstruct().EqualTol(a, 1e-8) {
			t.Fatalf("trial %d: SVD reconstruction failed (%dx%d)", trial, m, n)
		}
		// Singular values non-negative descending.
		for i, s := range res.S {
			if s < 0 {
				t.Fatalf("negative singular value %v", s)
			}
			if i > 0 && s > res.S[i-1]+1e-12 {
				t.Fatalf("singular values not descending: %v", res.S)
			}
		}
		// U columns orthonormal.
		utu := res.U.T().Mul(res.U)
		if !utu.EqualTol(Identity(n), 1e-8) {
			t.Fatal("U columns not orthonormal")
		}
	}
}

func TestJacobiSVDWideMatrix(t *testing.T) {
	r := rng.New(33)
	a := Random(3, 6, r) // wide: exercises the transpose path
	res := JacobiSVD(a, 0, 0)
	if !res.Reconstruct().EqualTol(a, 1e-8) {
		t.Fatal("wide-matrix SVD reconstruction failed")
	}
}

func TestSVDTruncateBestApproximation(t *testing.T) {
	// Rank-1 matrix: truncating to k=1 must reconstruct exactly.
	u := []float64{1, 2, 3}
	v := []float64{4, 5}
	a := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			a.Set(i, j, u[i]*v[j])
		}
	}
	res := JacobiSVD(a, 0, 0).Truncate(1)
	if len(res.S) != 1 {
		t.Fatalf("truncate kept %d values", len(res.S))
	}
	if !res.Reconstruct().EqualTol(a, 1e-8) {
		t.Fatal("rank-1 truncation should be exact for a rank-1 matrix")
	}
}

func TestTruncateClamps(t *testing.T) {
	r := rng.New(3)
	a := Random(4, 3, r)
	res := JacobiSVD(a, 0, 0)
	if got := res.Truncate(99); len(got.S) != 3 {
		t.Fatalf("over-truncate kept %d", len(got.S))
	}
	if got := res.Truncate(0); len(got.S) != 1 {
		t.Fatalf("under-truncate kept %d", len(got.S))
	}
}

func TestEigenSVDMatchesJacobi(t *testing.T) {
	r := rng.New(55)
	a := Random(8, 5, r)
	ref := JacobiSVD(a, 0, 0)
	got := EigenSVD(a, 5, func(g *Matrix) ([]float64, *Matrix, EigenStats) {
		return SymmetricEigen(g, 0, 0)
	})
	for i := range got.S {
		if math.Abs(got.S[i]-ref.S[i]) > 1e-6 {
			t.Fatalf("singular value %d: eigen route %v vs jacobi %v", i, got.S[i], ref.S[i])
		}
	}
	// Reconstruction error of the full-rank EigenSVD should be tiny.
	if diff := got.Reconstruct().Sub(a).FrobeniusNorm(); diff > 1e-6 {
		t.Fatalf("EigenSVD reconstruction error %v", diff)
	}
}

func TestEigenSVDTruncatedError(t *testing.T) {
	// Truncated SVD error must equal sqrt(sum of dropped squared singular values).
	r := rng.New(67)
	a := Random(10, 6, r)
	full := JacobiSVD(a, 0, 0)
	k := 3
	trunc := full.Truncate(k)
	wantErr := 0.0
	for _, s := range full.S[k:] {
		wantErr += s * s
	}
	wantErr = math.Sqrt(wantErr)
	gotErr := trunc.Reconstruct().Sub(a).FrobeniusNorm()
	if math.Abs(gotErr-wantErr) > 1e-8 {
		t.Fatalf("truncation error %v, want %v", gotErr, wantErr)
	}
}
