// Package linalg implements the dense linear algebra needed by the SVD
// benchmark and the PDE direct solvers: row-major matrix/vector
// arithmetic, LU factorisation (plus a tridiagonal solver), Householder
// QR, a cyclic-Jacobi symmetric eigensolver, a one-sided Jacobi SVD, and
// power iteration.
//
// Iterative routines report their work through EigenStats — sweep,
// rotation and matvec counts — so callers can charge a cost.Meter
// without this package depending on the cost model. The benchmark sizes in this reproduction stay small enough
// that no blocking or SIMD tuning is warranted; determinism and
// charge-ability matter more than peak flops here.
package linalg
