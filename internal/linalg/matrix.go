package linalg

import (
	"fmt"
	"math"

	"inputtune/internal/rng"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // length Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("linalg: non-positive matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be non-empty and
// rectangular.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows with empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n-by-n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Random returns a matrix with entries drawn uniformly from [-1, 1).
func Random(rows, cols int, r *rng.RNG) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Range(-1, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.mustMatch(b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.mustMatch(b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("linalg: MulVec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		row := m.Row(i)
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out
}

// FrobeniusNorm returns sqrt(sum of squared entries).
func (m *Matrix) FrobeniusNorm() float64 {
	sum := 0.0
	for _, v := range m.Data {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// RMS returns the root-mean-square of the entries.
func (m *Matrix) RMS() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.FrobeniusNorm() / math.Sqrt(float64(len(m.Data)))
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// EqualTol reports whether m and b agree elementwise within tol.
func (m *Matrix) EqualTol(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func (m *Matrix) mustMatch(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: shape mismatch")
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	for i := range x {
		x[i] /= n
	}
	return n
}
