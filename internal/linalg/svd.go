package linalg

import (
	"math"
	"sort"
)

// SVDResult holds a (possibly truncated) singular value decomposition
// A ≈ U * diag(S) * V^T with singular values in descending order.
type SVDResult struct {
	U *Matrix   // m-by-r
	S []float64 // length r, descending, non-negative
	V *Matrix   // n-by-r
	// Stats reports the iterative work performed so that callers can charge
	// a cost meter.
	Stats EigenStats
}

// JacobiSVD computes the full SVD of an m-by-n matrix (m >= n) using the
// one-sided Jacobi (Hestenes) method: columns of a working copy of A are
// orthogonalised by plane rotations accumulated into V.
func JacobiSVD(a *Matrix, maxSweeps int, tol float64) *SVDResult {
	if a.Rows < a.Cols {
		// Decompose the transpose and swap U/V.
		r := JacobiSVD(a.T(), maxSweeps, tol)
		return &SVDResult{U: r.V, S: r.S, V: r.U, Stats: r.Stats}
	}
	m, n := a.Rows, a.Cols
	w := a.Clone()
	v := Identity(n)
	if maxSweeps <= 0 {
		maxSweeps = 30
	}
	if tol <= 0 {
		tol = 1e-12
	}
	var st EigenStats
	for sweep := 0; sweep < maxSweeps; sweep++ {
		converged := true
		st.Sweeps++
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram submatrix for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					wip, wiq := w.At(i, p), w.At(i, q)
					app += wip * wip
					aqq += wiq * wiq
					apq += wip * wiq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq)+1e-300 {
					continue
				}
				converged = false
				st.Rotations++
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < m; i++ {
					wip, wiq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*wip-s*wiq)
					w.Set(i, q, s*wip+c*wiq)
				}
				for i := 0; i < n; i++ {
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vip-s*viq)
					v.Set(i, q, s*vip+c*viq)
				}
			}
		}
		if converged {
			break
		}
	}
	// Column norms of W are the singular values; normalised columns are U.
	s := make([]float64, n)
	u := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		nrm := 0.0
		for i := 0; i < m; i++ {
			nrm += w.At(i, j) * w.At(i, j)
		}
		nrm = math.Sqrt(nrm)
		s[j] = nrm
		if nrm > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, j, w.At(i, j)/nrm)
			}
		}
	}
	// Sort by descending singular value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return s[idx[x]] > s[idx[y]] })
	ss := make([]float64, n)
	us := NewMatrix(m, n)
	vs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		ss[newCol] = s[oldCol]
		for i := 0; i < m; i++ {
			us.Set(i, newCol, u.At(i, oldCol))
		}
		for i := 0; i < n; i++ {
			vs.Set(i, newCol, v.At(i, oldCol))
		}
	}
	return &SVDResult{U: us, S: ss, V: vs, Stats: st}
}

// Truncate returns a copy of the decomposition keeping only the k leading
// singular triplets (k is clamped to the available rank).
func (r *SVDResult) Truncate(k int) *SVDResult {
	if k >= len(r.S) {
		return r
	}
	if k < 1 {
		k = 1
	}
	u := NewMatrix(r.U.Rows, k)
	v := NewMatrix(r.V.Rows, k)
	for j := 0; j < k; j++ {
		for i := 0; i < r.U.Rows; i++ {
			u.Set(i, j, r.U.At(i, j))
		}
		for i := 0; i < r.V.Rows; i++ {
			v.Set(i, j, r.V.At(i, j))
		}
	}
	return &SVDResult{U: u, S: append([]float64(nil), r.S[:k]...), V: v, Stats: r.Stats}
}

// Reconstruct returns U * diag(S) * V^T.
func (r *SVDResult) Reconstruct() *Matrix {
	m, n, k := r.U.Rows, r.V.Rows, len(r.S)
	out := NewMatrix(m, n)
	for j := 0; j < k; j++ {
		sj := r.S[j]
		if sj == 0 {
			continue
		}
		for i := 0; i < m; i++ {
			uij := r.U.At(i, j) * sj
			if uij == 0 {
				continue
			}
			oi := out.Row(i)
			for c := 0; c < n; c++ {
				oi[c] += uij * r.V.At(c, j)
			}
		}
	}
	return out
}

// EigenSVD computes a rank-k SVD of an m-by-n matrix via the symmetric
// eigendecomposition of A^T A (suitable when n is modest), using the
// provided eigensolver function. It exists so the SVD benchmark can swap
// eigen techniques (full Jacobi vs. power iteration) as algorithmic choices.
func EigenSVD(a *Matrix, k int, eigen func(gram *Matrix) ([]float64, *Matrix, EigenStats)) *SVDResult {
	n := a.Cols
	if k > n {
		k = n
	}
	gram := a.T().Mul(a)
	vals, vecs, st := eigen(gram)
	if len(vals) > k {
		vals = vals[:k]
	}
	kk := len(vals)
	s := make([]float64, kk)
	v := NewMatrix(n, kk)
	for j := 0; j < kk; j++ {
		if vals[j] > 0 {
			s[j] = math.Sqrt(vals[j])
		}
		for i := 0; i < n; i++ {
			v.Set(i, j, vecs.At(i, j))
		}
	}
	// U = A V S^{-1}
	u := NewMatrix(a.Rows, kk)
	for j := 0; j < kk; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = v.At(i, j)
		}
		av := a.MulVec(col)
		if s[j] > 1e-300 {
			for i := range av {
				u.Set(i, j, av[i]/s[j])
			}
		}
	}
	return &SVDResult{U: u, S: s, V: v, Stats: st}
}
