package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"inputtune/internal/rng"
)

func TestBasicOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	sum := a.Add(b)
	if sum.At(0, 0) != 6 || sum.At(1, 1) != 12 {
		t.Fatalf("Add wrong: %+v", sum)
	}
	diff := b.Sub(a)
	if diff.At(0, 0) != 4 || diff.At(1, 1) != 4 {
		t.Fatalf("Sub wrong: %+v", diff)
	}
	sc := a.Scale(2)
	if sc.At(1, 0) != 6 {
		t.Fatalf("Scale wrong: %+v", sc)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !c.EqualTol(want, 1e-12) {
		t.Fatalf("Mul = %+v", c)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := a.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Fatalf("T wrong: %+v", at)
	}
	if !at.T().EqualTol(a, 0) {
		t.Fatal("double transpose not identity")
	}
}

func TestIdentityMulProperty(t *testing.T) {
	r := rng.New(5)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		n := rr.IntRange(1, 8)
		a := Random(n, n, rr)
		return a.Mul(Identity(n)).EqualTol(a, 1e-12) &&
			Identity(n).Mul(a).EqualTol(a, 1e-12)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 4}})
	if n := a.FrobeniusNorm(); math.Abs(n-5) > 1e-12 {
		t.Fatalf("frobenius = %v", n)
	}
	if n := a.MaxAbs(); n != 4 {
		t.Fatalf("maxabs = %v", n)
	}
	if n := a.RMS(); math.Abs(n-2.5) > 1e-12 {
		t.Fatalf("rms = %v", n)
	}
}

func TestVectorHelpers(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %v", d)
	}
	if n := Norm2([]float64{3, 4}); math.Abs(n-5) > 1e-12 {
		t.Fatalf("Norm2 = %v", n)
	}
	y := []float64{1, 1}
	AXPY(2, []float64{10, 20}, y)
	if y[0] != 21 || y[1] != 41 {
		t.Fatalf("AXPY = %v", y)
	}
	x := []float64{0, 3, 4}
	if n := Normalize(x); math.Abs(n-5) > 1e-12 || math.Abs(Norm2(x)-1) > 1e-12 {
		t.Fatalf("Normalize: norm=%v x=%v", n, x)
	}
	z := []float64{0, 0}
	if n := Normalize(z); n != 0 {
		t.Fatalf("Normalize zero vector = %v", n)
	}
}

func TestLUSolve(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{10, 12})
	// 4x+3y=10, 6x+3y=12 -> x=1, y=2
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("solve = %v", x)
	}
	if d := f.Det(); math.Abs(d-(-6)) > 1e-9 {
		t.Fatalf("det = %v, want -6", d)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUSolveRandomProperty(t *testing.T) {
	r := rng.New(77)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed)*31 + r.Uint64()%7)
		n := rr.IntRange(2, 12)
		a := Random(n, n, rr)
		// Diagonal boost to avoid near-singular draws.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rr.Range(-5, 5)
		}
		b := a.MulVec(want)
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTridiagonal(t *testing.T) {
	// System: [2 -1 0; -1 2 -1; 0 -1 2] x = [1 0 1] -> x = [1 1 1]
	x, err := Tridiagonal([]float64{-1, -1}, []float64{2, 2, 2}, []float64{-1, -1}, []float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
}

func TestQRDecomposition(t *testing.T) {
	r := rng.New(123)
	a := Random(6, 4, r)
	f := FactorQR(a)
	// Q orthogonal.
	qtq := f.Q.T().Mul(f.Q)
	if !qtq.EqualTol(Identity(6), 1e-9) {
		t.Fatal("Q not orthogonal")
	}
	// A = Q R.
	if !f.Q.Mul(f.R).EqualTol(a, 1e-9) {
		t.Fatal("QR does not reconstruct A")
	}
	// R upper-trapezoidal.
	for i := 1; i < f.R.Rows; i++ {
		for j := 0; j < f.R.Cols && j < i; j++ {
			if f.R.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %v below diagonal", i, j, f.R.At(i, j))
			}
		}
	}
}

func TestQRLeastSquares(t *testing.T) {
	// Fit y = 2x + 1 exactly.
	a := FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	f := FactorQR(a)
	x, err := f.SolveLeastSquares([]float64{1, 3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("least squares = %v", x)
	}
}
