package linalg

import (
	"math"
	"sort"
)

// EigenStats reports the work performed by an iterative eigensolver so that
// callers can charge a cost.Meter without the solver depending on the cost
// package.
type EigenStats struct {
	Sweeps    int // full Jacobi sweeps or power-iteration restarts
	Rotations int // individual Jacobi rotations applied
	MatVecs   int // matrix-vector products (power iteration)
}

// SymmetricEigen computes the eigendecomposition of a symmetric matrix
// using the cyclic Jacobi method. It returns eigenvalues in descending
// order, the matching eigenvectors as the columns of V, and work stats.
func SymmetricEigen(a *Matrix, maxSweeps int, tol float64) (vals []float64, vecs *Matrix, st EigenStats) {
	if a.Rows != a.Cols {
		panic("linalg: SymmetricEigen of non-square matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)
	if maxSweeps <= 0 {
		maxSweeps = 30
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(2*off) <= tol*w.FrobeniusNorm() {
			break
		}
		st.Sweeps++
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				st.Rotations++
				// Update rows/columns p and q of W.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, st
}

// PowerIteration approximates the k dominant eigenpairs of the symmetric
// matrix a via power iteration with Hotelling deflation. Each eigenpair is
// refined for at most iters iterations or until the eigenvector rotates by
// less than tol between iterations. Returned eigenvalues are in order of
// extraction (descending |λ| in exact arithmetic).
func PowerIteration(a *Matrix, k, iters int, tol float64, seedVec []float64) (vals []float64, vecs *Matrix, st EigenStats) {
	if a.Rows != a.Cols {
		panic("linalg: PowerIteration of non-square matrix")
	}
	n := a.Rows
	if k > n {
		k = n
	}
	if iters <= 0 {
		iters = 100
	}
	if tol <= 0 {
		tol = 1e-10
	}
	work := a.Clone()
	vals = make([]float64, 0, k)
	vecs = NewMatrix(n, k)
	x := make([]float64, n)
	prev := make([]float64, n)
	for e := 0; e < k; e++ {
		// Deterministic start vector, perturbed per eigenpair; callers may
		// pass a seed vector to decorrelate from special structure.
		for i := range x {
			x[i] = 1 + 0.01*float64((i+e)%7)
			if seedVec != nil {
				x[i] += seedVec[i%len(seedVec)]
			}
		}
		Normalize(x)
		st.Sweeps++
		var lambda float64
		for it := 0; it < iters; it++ {
			copy(prev, x)
			y := work.MulVec(x)
			st.MatVecs++
			nrm := Normalize(y)
			if nrm == 0 {
				break
			}
			copy(x, y)
			lambda = Dot(x, work.MulVec(x))
			st.MatVecs++
			// Convergence: direction change below tol (sign-insensitive).
			diff := 0.0
			for i := range x {
				d := math.Abs(x[i]) - math.Abs(prev[i])
				diff += d * d
			}
			if math.Sqrt(diff) < tol {
				break
			}
		}
		vals = append(vals, lambda)
		for i := 0; i < n; i++ {
			vecs.Set(i, e, x[i])
		}
		// Deflate: work -= λ x x^T.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				work.Set(i, j, work.At(i, j)-lambda*x[i]*x[j])
			}
		}
	}
	return vals, vecs, st
}
