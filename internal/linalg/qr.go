package linalg

import "math"

// QR holds a Householder QR factorisation A = Q*R for an m-by-n matrix with
// m >= n.
type QR struct {
	Q *Matrix // m-by-m orthogonal
	R *Matrix // m-by-n upper trapezoidal
}

// FactorQR computes a Householder QR factorisation. It requires
// a.Rows >= a.Cols.
func FactorQR(a *Matrix) *QR {
	if a.Rows < a.Cols {
		panic("linalg: QR requires rows >= cols")
	}
	m, n := a.Rows, a.Cols
	r := a.Clone()
	q := Identity(m)
	v := make([]float64, m)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k.
		alpha := 0.0
		for i := k; i < m; i++ {
			alpha += r.At(i, k) * r.At(i, k)
		}
		alpha = math.Sqrt(alpha)
		if alpha == 0 {
			continue
		}
		if r.At(k, k) > 0 {
			alpha = -alpha
		}
		for i := 0; i < k; i++ {
			v[i] = 0
		}
		v[k] = r.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			v[i] = r.At(i, k)
		}
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			continue
		}
		// Apply H = I - 2 v v^T / (v^T v) to R (from the left)...
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i] * r.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i])
			}
		}
		// ...and accumulate Q = Q * H.
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := k; j < m; j++ {
				dot += q.At(i, j) * v[j]
			}
			f := 2 * dot / vnorm2
			for j := k; j < m; j++ {
				q.Set(i, j, q.At(i, j)-f*v[j])
			}
		}
	}
	// Zero the strictly-lower part of R that should be exactly zero.
	for i := 1; i < m; i++ {
		for j := 0; j < n && j < i; j++ {
			r.Set(i, j, 0)
		}
	}
	return &QR{Q: q, R: r}
}

// SolveLeastSquares returns the minimum-norm-residual solution of A*x ≈ b
// using the factorisation (A must have full column rank).
func (f *QR) SolveLeastSquares(b []float64) ([]float64, error) {
	m, n := f.Q.Rows, f.R.Cols
	if len(b) != m {
		panic("linalg: least-squares dimension mismatch")
	}
	// y = Q^T b
	y := make([]float64, m)
	for j := 0; j < m; j++ {
		sum := 0.0
		for i := 0; i < m; i++ {
			sum += f.Q.At(i, j) * b[i]
		}
		y[j] = sum
	}
	// Back-substitute R x = y (top n rows).
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for j := i + 1; j < n; j++ {
			sum -= f.R.At(i, j) * x[j]
		}
		d := f.R.At(i, i)
		if math.Abs(d) < 1e-14 {
			return nil, ErrSingular
		}
		x[i] = sum / d
	}
	return x, nil
}
