package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorisation encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorisation with partial pivoting: P*A = L*U, with L
// unit-lower-triangular and U upper-triangular packed into a single matrix.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// FactorLU computes the LU factorisation of the square matrix a.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		panic("linalg: LU of non-square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at or below the diagonal.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max, p = v, i
			}
		}
		if max < 1e-14 {
			return nil, ErrSingular
		}
		pivot[k] = p
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			sign = -sign
		}
		pivKk := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivKk
			lu.Set(i, k, m)
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve returns x such that A*x = b for the factored A.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: LU solve dimension mismatch")
	}
	x := append([]float64(nil), b...)
	// Apply the recorded row interchanges.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		sum := x[i]
		for j := 0; j < i; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum / row[i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear factors a and solves a single system in one call.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Tridiagonal solves a tridiagonal system via the Thomas algorithm. sub,
// diag and sup are the sub-, main and super-diagonals; len(diag) == n,
// len(sub) == len(sup) == n-1. The inputs are not modified.
func Tridiagonal(sub, diag, sup, b []float64) ([]float64, error) {
	n := len(diag)
	if len(b) != n || len(sub) != n-1 || len(sup) != n-1 {
		panic("linalg: Tridiagonal dimension mismatch")
	}
	c := append([]float64(nil), sup...)
	d := append([]float64(nil), b...)
	beta := diag[0]
	if math.Abs(beta) < 1e-14 {
		return nil, ErrSingular
	}
	x := make([]float64, n)
	c = append(c, 0) // pad so indexing is uniform
	c[0] = sup[0] / beta
	d[0] = b[0] / beta
	for i := 1; i < n; i++ {
		beta = diag[i] - sub[i-1]*c[i-1]
		if math.Abs(beta) < 1e-14 {
			return nil, ErrSingular
		}
		if i < n-1 {
			c[i] = sup[i] / beta
		}
		d[i] = (b[i] - sub[i-1]*d[i-1]) / beta
	}
	x[n-1] = d[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = d[i] - c[i]*x[i+1]
	}
	return x, nil
}
