package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// FormatID renders a trace ID as the 16-hex-digit wire form used by the
// X-Inputtune-Trace header and /debug/traces.
func FormatID(id uint64) string {
	const hexdig = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdig[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseID parses FormatID output (any-length hex accepted, zero
// rejected).
func ParseID(s string) (uint64, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil || id == 0 {
		return 0, false
	}
	return id, true
}

// SpanView is one span of a merged trace, annotated with the site of
// the record that produced it. Offsets are relative to the merged
// trace's start so a reader sees one timeline across hops.
type SpanView struct {
	Site       string  `json:"site"`
	Name       string  `json:"name"`
	StartUs    float64 `json:"start_us"`
	DurationUs float64 `json:"duration_us"`
}

// TraceView is a merged trace: every finished record sharing one trace
// ID, folded into a single span timeline.
type TraceView struct {
	ID         string     `json:"id"`
	Benchmark  string     `json:"benchmark,omitempty"`
	Error      string     `json:"error,omitempty"`
	Start      time.Time  `json:"start"`
	DurationUs float64    `json:"duration_us"`
	Sites      []string   `json:"sites"`
	Spans      []SpanView `json:"spans"`
}

// records drains the ring and the pinned slowest list into a deduped
// set of finished records.
func (tr *Tracer) records() []*Trace {
	if tr == nil {
		return nil
	}
	seen := make(map[*Trace]bool, len(tr.ring))
	var out []*Trace
	for i := range tr.ring {
		if t := tr.ring[i].Load(); t != nil && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	tr.slowMu.Lock()
	for _, t := range tr.slow {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	tr.slowMu.Unlock()
	return out
}

// merge folds per-participant records into TraceViews keyed by trace ID.
func merge(records []*Trace) []TraceView {
	byID := make(map[uint64][]*Trace)
	for _, t := range records {
		byID[t.id] = append(byID[t.id], t)
	}
	views := make([]TraceView, 0, len(byID))
	for id, group := range byID {
		v := TraceView{ID: FormatID(id)}
		start, end := group[0].start, group[0].end
		for _, t := range group {
			if t.start.Before(start) {
				start = t.start
			}
			if t.end.After(end) {
				end = t.end
			}
			if v.Benchmark == "" {
				v.Benchmark = t.benchmark
			}
			if v.Error == "" {
				v.Error = t.errMsg
			}
			v.Sites = append(v.Sites, t.site)
		}
		sort.Strings(v.Sites)
		v.Sites = dedupSorted(v.Sites)
		v.Start = start
		v.DurationUs = micros(end.Sub(start))
		for _, t := range group {
			for _, s := range t.spans {
				v.Spans = append(v.Spans, SpanView{
					Site:       t.site,
					Name:       s.Name,
					StartUs:    micros(s.Start.Sub(start)),
					DurationUs: micros(s.End.Sub(s.Start)),
				})
			}
		}
		sort.SliceStable(v.Spans, func(i, j int) bool { return v.Spans[i].StartUs < v.Spans[j].StartUs })
		views = append(views, v)
	}
	return views
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}

// Snapshot returns up to limit merged traces, most recently finished
// first (limit <= 0 means all). Safe to call concurrently with Finish.
func (tr *Tracer) Snapshot(limit int) []TraceView {
	views := merge(tr.records())
	sort.Slice(views, func(i, j int) bool {
		si, sj := views[i], views[j]
		ti := si.Start.Add(time.Duration(si.DurationUs * 1e3))
		tj := sj.Start.Add(time.Duration(sj.DurationUs * 1e3))
		return ti.After(tj)
	})
	if limit > 0 && len(views) > limit {
		views = views[:limit]
	}
	return views
}

// Slowest returns the pinned slowest-N merged traces, slowest first.
func (tr *Tracer) Slowest() []TraceView {
	if tr == nil {
		return nil
	}
	tr.slowMu.Lock()
	pinned := append([]*Trace(nil), tr.slow...)
	tr.slowMu.Unlock()
	ids := make(map[uint64]bool, len(pinned))
	for _, t := range pinned {
		ids[t.id] = true
	}
	// Merge with ring records sharing the pinned IDs so a slow exemplar
	// still shows its cross-hop spans.
	var group []*Trace
	for _, t := range tr.records() {
		if ids[t.id] {
			group = append(group, t)
		}
	}
	views := merge(group)
	sort.Slice(views, func(i, j int) bool { return views[i].DurationUs > views[j].DurationUs })
	return views
}

// Exemplar links a slow trace from the metrics surface to /debug/traces.
type Exemplar struct {
	TraceID    string  `json:"trace_id"`
	Benchmark  string  `json:"benchmark,omitempty"`
	DurationUs float64 `json:"duration_us"`
}

// Exemplars returns the slowest-N links for embedding next to latency
// histograms.
func (tr *Tracer) Exemplars() []Exemplar {
	views := tr.Slowest()
	out := make([]Exemplar, 0, len(views))
	for _, v := range views {
		out = append(out, Exemplar{TraceID: v.ID, Benchmark: v.Benchmark, DurationUs: v.DurationUs})
	}
	return out
}

// tracesPage is the /debug/traces response body.
type tracesPage struct {
	Stats   Stats       `json:"stats"`
	Recent  []TraceView `json:"recent"`
	Slowest []TraceView `json:"slowest"`
}

// defaultRecentLimit bounds the recent list unless ?n= asks otherwise.
const defaultRecentLimit = 50

// Handler serves the ring as JSON: GET /debug/traces?n=50.
func Handler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		limit := defaultRecentLimit
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				limit = n
			}
		}
		page := tracesPage{
			Stats:   tr.Stats(),
			Recent:  tr.Snapshot(limit),
			Slowest: tr.Slowest(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(page)
	})
}
